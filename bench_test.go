package rpcscale

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (see DESIGN.md §3 for the index), plus the ablation benches
// DESIGN.md §5 calls out and real-stack microbenchmarks.
//
// Each Fig/Tab benchmark regenerates its figure from a shared simulated
// dataset; run with -v-style inspection via cmd/rpcanalyze instead when
// you want the rendered output. Benchmarks report domain metrics (shares,
// ratios) through b.ReportMetric so the shape results are visible in the
// bench output itself.

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"rpcscale/internal/compressor"
	"rpcscale/internal/core"
	"rpcscale/internal/fleet"
	"rpcscale/internal/loadbalance"
	"rpcscale/internal/monarch"
	"rpcscale/internal/sim"
	"rpcscale/internal/stubby"
	"rpcscale/internal/trace"
	"rpcscale/internal/workload"
)

var (
	fixtureOnce sync.Once
	fxTopo      *sim.Topology
	fxCat       *fleet.Catalog
	fxDS        *workload.Dataset
	fxLatency   *core.PerMethodResult
)

// fixture builds the shared dataset once per bench binary run.
func fixture(b *testing.B) (*sim.Topology, *fleet.Catalog, *workload.Dataset) {
	b.Helper()
	fixtureOnce.Do(func() {
		fxTopo = sim.NewTopology(sim.DefaultTopology())
		fxCat = fleet.New(fleet.Config{Methods: 600, Clusters: len(fxTopo.Clusters), Seed: 5})
		fxDS = workload.Generate(context.Background(), fxCat, fxTopo, workload.RunConfig{
			Seed: 5, MethodSamples: 110, StudiedSamples: 1000,
			VolumeRoots: 30000, Trees: 200, MaxDepth: 8, TreeBudget: 1200,
		})
		fxLatency = core.LatencyByMethod(fxDS)
	})
	return fxTopo, fxCat, fxDS
}

func BenchmarkFig01Growth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		db := monarch.New(24*time.Hour, 0)
		if err := workload.DeclareMetrics(db); err != nil {
			b.Fatal(err)
		}
		if err := workload.WriteGrowthHistory(db, workload.GrowthConfig{Days: 700, Seed: uint64(i + 1)}); err != nil {
			b.Fatal(err)
		}
		res, err := core.GrowthAnalysis(db)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.AnnualGrowth*100, "annual-growth-%")
		}
	}
}

func BenchmarkFig02LatencyHeatmap(b *testing.B) {
	_, _, ds := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := core.LatencyByMethod(ds)
		if i == 0 {
			a := res.Anchors()
			b.ReportMetric(a.FracMedianOver10ms*100, "median>=10.7ms-%")
		}
	}
}

func BenchmarkFig03Popularity(b *testing.B) {
	_, _, ds := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := core.PopularityAnalysis(ds, fxLatency)
		if i == 0 {
			b.ReportMetric(res.Top10Share*100, "top10-share-%")
		}
	}
}

func BenchmarkFig04Descendants(b *testing.B) {
	_, _, ds := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := core.TreeShapeAnalysis(ds)
		if i == 0 {
			b.ReportMetric(res.FracMedianDescUnder13*100, "median-desc<=13-%")
		}
	}
}

func BenchmarkFig05Ancestors(b *testing.B) {
	_, _, ds := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := core.TreeShapeAnalysis(ds)
		if i == 0 {
			b.ReportMetric(res.FracAncP99Under10*100, "anc-P99<10-%")
		}
	}
}

func BenchmarkFig06RequestSize(b *testing.B) {
	_, _, ds := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.RequestSizeByMethod(ds)
	}
}

func BenchmarkFig07SizeRatio(b *testing.B) {
	_, _, ds := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.SizeRatioByMethod(ds)
	}
}

func BenchmarkFig08ServiceShares(b *testing.B) {
	_, _, ds := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := core.ServiceShareAnalysis(ds)
		if i == 0 {
			b.ReportMetric(res.Row("networkdisk").CallShare*100, "networkdisk-calls-%")
		}
	}
}

func BenchmarkTab01Services(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if core.RenderEightServices() == "" {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFig10LatencyTax(b *testing.B) {
	_, _, ds := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := core.TaxAnalysis(ds)
		if i == 0 {
			b.ReportMetric(res.MeanTaxShare*100, "mean-tax-%")
		}
	}
}

func BenchmarkFig11TaxRatio(b *testing.B) {
	_, _, ds := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := core.TaxRatioByMethod(ds)
		if i == 0 {
			b.ReportMetric(res.TopDecileMedian*100, "top-decile-tax-%")
		}
	}
}

func BenchmarkFig12NetworkLatency(b *testing.B) {
	_, _, ds := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := core.TaxComponents(ds)
		if i == 0 {
			b.ReportMetric(float64(res.FastHalfWireP99)/1e6, "fast-half-P99-ms")
		}
	}
}

func BenchmarkFig13Queuing(b *testing.B) {
	_, _, ds := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := core.TaxComponents(ds)
		if i == 0 {
			b.ReportMetric(float64(res.TopQueueP99)/1e6, "top-decile-queue-P99-ms")
		}
	}
}

func BenchmarkFig14ServiceCDF(b *testing.B) {
	_, _, ds := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range fleet.EightServices() {
			core.ServiceBreakdown(ds, s.Method)
		}
	}
}

func BenchmarkFig15WhatIf(b *testing.B) {
	_, _, ds := fixture(b)
	var methods []string
	for _, s := range fleet.EightServices() {
		methods = append(methods, s.Method)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.WhatIf(ds, methods)
	}
}

func BenchmarkFig16ClusterVariation(b *testing.B) {
	_, _, ds := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := core.ClusterVariation(ds, "bigtable/SearchValue", 0)
		if i == 0 && res.Spread > 0 {
			b.ReportMetric(res.Spread, "P95-spread-x")
		}
	}
}

func BenchmarkFig17Exogenous(b *testing.B) {
	_, _, ds := fixture(b)
	methods := []string{"bigtable/SearchValue", "kvstore/Search", "videometadata/GetMetadata"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.ExogenousAnalysis(ds, methods)
	}
}

func BenchmarkFig18Diurnal(b *testing.B) {
	topo, cat, _ := fixture(b)
	for i := 0; i < b.N; i++ {
		db := monarch.New(30*time.Minute, 0)
		if err := workload.DeclareMetrics(db); err != nil {
			b.Fatal(err)
		}
		gen := workload.NewGenerator(cat, topo, nil, uint64(i+11))
		if err := workload.WriteDiurnalDay(db, gen, "bigtable/SearchValue", topo.Clusters[0], 25); err != nil {
			b.Fatal(err)
		}
		if _, err := core.DiurnalAnalysis(db, "bigtable/SearchValue", topo.Clusters[0].Name); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig19CrossCluster(b *testing.B) {
	topo, cat, _ := fixture(b)
	m := cat.MethodByName("spanner/ReadRows")
	server := topo.Clusters[m.HomeClusters[0]]
	for i := 0; i < b.N; i++ {
		gen := workload.NewGenerator(cat, topo, nil, uint64(i+17))
		res, err := core.CrossClusterAnalysis(gen, "spanner/ReadRows", server, 20)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			last := res.Rows[len(res.Rows)-1]
			b.ReportMetric(float64(last.Median)/1e6, "farthest-median-ms")
		}
	}
}

func BenchmarkFig20CycleTax(b *testing.B) {
	_, _, ds := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := core.CycleTax(ds)
		if i == 0 {
			b.ReportMetric(res.TaxShare*100, "cycle-tax-%")
		}
	}
}

func BenchmarkFig21CPUCycles(b *testing.B) {
	_, _, ds := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.CPUByMethod(ds)
		core.CPUCorrelationAnalysis(ds)
	}
}

func BenchmarkFig22LoadBalance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := loadbalance.DefaultConfig()
		cfg.Clusters, cfg.MachinesPerCluster = 8, 8
		cfg.Duration = 500 * time.Millisecond
		cfg.Seed = uint64(i + 1)
		res := loadbalance.Run(cfg)
		if res.Served == 0 {
			b.Fatal("nothing served")
		}
	}
}

func BenchmarkFig23Errors(b *testing.B) {
	_, _, ds := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := core.ErrorAnalysis(ds)
		if i == 0 {
			b.ReportMetric(res.ErrorRate*100, "error-rate-%")
		}
	}
}

// --- Ablation benches (DESIGN.md §5) ---

// BenchmarkAblationHedging compares plain vs hedged calls on the real
// stack against a server with an injected straggler mode: hedging buys
// tail latency with duplicated (cancelled) work, reproducing §4.4.
func BenchmarkAblationHedging(b *testing.B) {
	var n int
	var mu sync.Mutex
	opts := stubby.Options{Workers: 16}
	srv := stubby.NewServer(opts)
	srv.Register("bench/Get", func(ctx context.Context, p []byte) ([]byte, error) {
		mu.Lock()
		n++
		slow := n%20 == 0
		mu.Unlock()
		if slow {
			select {
			case <-time.After(5 * time.Millisecond):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return p, nil
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()
	ch, err := stubby.Dial(l.Addr().String(), "bench", opts)
	if err != nil {
		b.Fatal(err)
	}
	defer ch.Close()
	payload := make([]byte, 128)

	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ch.Call(context.Background(), "bench/Get", payload); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hedged", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ch.CallHedged(context.Background(), "bench/Get", payload, time.Millisecond); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationLoadBalance compares balancing policies at high load;
// power-of-two and least-loaded should report far lower P99 queue waits
// than random.
func BenchmarkAblationLoadBalance(b *testing.B) {
	policies := []loadbalance.Policy{
		&loadbalance.RoundRobin{}, loadbalance.Random{},
		loadbalance.PowerOfTwo{}, loadbalance.LeastLoaded{},
	}
	for _, p := range policies {
		b.Run(p.Name(), func(b *testing.B) {
			// Average the P99 across iterations: single-seed tails are
			// noisy at high load.
			var p99Sum float64
			for i := 0; i < b.N; i++ {
				cfg := loadbalance.DefaultConfig()
				cfg.Clusters, cfg.MachinesPerCluster = 6, 10
				cfg.OfferedLoad = 0.85
				// Uniform cluster demand isolates the intra-cluster
				// policy: with the default imbalance some clusters run
				// saturated, where no within-cluster policy can help.
				cfg.ClusterImbalance = 0
				cfg.Duration = 500 * time.Millisecond
				cfg.Policy = p
				cfg.Seed = uint64(i + 1)
				res := loadbalance.Run(cfg)
				p99Sum += res.Waits.Percentile(99) / 1e6
			}
			b.ReportMetric(p99Sum/float64(b.N), "p99-wait-ms")
		})
	}
}

// BenchmarkAblationCompression measures the cycle-vs-bytes trade of the
// single largest cycle-tax component (Fig. 20): flate on a compressible
// 16 KB payload vs pass-through.
func BenchmarkAblationCompression(b *testing.B) {
	payload := make([]byte, 16*1024)
	for i := range payload {
		payload[i] = byte(i / 64) // compressible structure
	}
	for _, algo := range []compressor.Algorithm{compressor.None, compressor.Flate} {
		b.Run(algo.String(), func(b *testing.B) {
			c := compressor.New(algo, nil)
			b.SetBytes(int64(len(payload)))
			var outLen int
			for i := 0; i < b.N; i++ {
				out, err := c.Compress(payload)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := c.Decompress(out); err != nil {
					b.Fatal(err)
				}
				outLen = len(out)
			}
			b.ReportMetric(float64(outLen)/float64(len(payload)), "ratio")
		})
	}
}

// BenchmarkAblationQueue compares FIFO vs size-aware (SJF) queueing under
// an elephant-and-mice mix — the HOL-blocking discussion of §2.5.
func BenchmarkAblationQueue(b *testing.B) {
	for _, disc := range []sim.Discipline{sim.FIFO, sim.SJF} {
		b.Run(disc.String(), func(b *testing.B) {
			var meanWait float64
			for i := 0; i < b.N; i++ {
				engine := sim.NewEngine()
				srv := sim.NewServer(engine, "m", 1, disc)
				var mouseWait time.Duration
				var mice int
				for j := 0; j < 400; j++ {
					svc := 100 * time.Microsecond // mouse
					if j%20 == 0 {
						svc = 10 * time.Millisecond // elephant
					}
					isMouse := svc < time.Millisecond
					srv.Submit(&sim.Job{Service: svc, Done: func(w time.Duration) {
						if isMouse {
							mouseWait += w
							mice++
						}
					}})
					engine.RunUntil(engine.Now() + 150*time.Microsecond)
				}
				engine.Run()
				meanWait = float64(mouseWait.Microseconds()) / float64(mice)
			}
			b.ReportMetric(meanWait, "mouse-wait-us")
		})
	}
}

// --- Real-stack microbenchmarks ---

// BenchmarkStubbyUnary measures end-to-end unary call latency on the real
// stack over loopback TCP with full encryption.
func BenchmarkStubbyUnary(b *testing.B) {
	for _, size := range []int{128, 1530, 16 * 1024} {
		b.Run(byteLabel(size), func(b *testing.B) {
			opts := stubby.Options{Workers: 8}
			srv := stubby.NewServer(opts)
			srv.Register("bench/Echo", func(ctx context.Context, p []byte) ([]byte, error) {
				return p, nil
			})
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			go srv.Serve(l)
			defer srv.Close()
			ch, err := stubby.Dial(l.Addr().String(), "bench", opts)
			if err != nil {
				b.Fatal(err)
			}
			defer ch.Close()
			payload := make([]byte, size)
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ch.Call(context.Background(), "bench/Echo", payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStubbyUnaryParallel is the client fan-in variant: RunParallel
// drives concurrent callers over one channel, so a `-cpu 1,2,4` sweep
// shows how envelope-lane throughput scales with cores once the codec
// pool and batch writer overlap seal work with the syscall path.
func BenchmarkStubbyUnaryParallel(b *testing.B) {
	for _, size := range []int{128, 16 * 1024} {
		b.Run(byteLabel(size), func(b *testing.B) {
			opts := stubby.Options{Workers: 8}
			srv := stubby.NewServer(opts)
			srv.Register("bench/Echo", func(ctx context.Context, p []byte) ([]byte, error) {
				return p, nil
			})
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			go srv.Serve(l)
			defer srv.Close()
			ch, err := stubby.Dial(l.Addr().String(), "bench", opts)
			if err != nil {
				b.Fatal(err)
			}
			defer ch.Close()
			payload := make([]byte, size)
			b.SetBytes(int64(size))
			b.SetParallelism(8)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := ch.Call(context.Background(), "bench/Echo", payload); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkStubbyBulkUnaryStriped is the connection-striping variant of
// the bulk download bench: the channel opens 2 TCP connections and
// round-robins bulk calls across them (DESIGN.md §16), so the `-cpu`
// sweep exposes whether a second stripe buys throughput once one
// connection's seal/open work saturates a core.
func BenchmarkStubbyBulkUnaryStriped(b *testing.B) {
	const size = 256 * 1024
	opts := stubby.Options{Workers: 8, ConnStripes: 2}
	srv := stubby.NewServer(opts)
	blob := make([]byte, size)
	srv.Register("bench/Get", func(ctx context.Context, p []byte) ([]byte, error) {
		return blob, nil
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()
	ch, err := stubby.Dial(l.Addr().String(), "bench", opts)
	if err != nil {
		b.Fatal(err)
	}
	defer ch.Close()
	req := make([]byte, 16)
	b.SetBytes(size)
	b.SetParallelism(16)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			out, err := ch.Call(context.Background(), "bench/Get", req)
			if err != nil {
				b.Fatal(err)
			}
			stubby.FreeResponse(out)
		}
	})
}

func byteLabel(n int) string {
	switch {
	case n >= 1024:
		return itoa(n/1024) + "KB"
	default:
		return itoa(n) + "B"
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkSpanGeneration measures the simulator's span production rate
// (the cost driver for paper-scale dataset generation).
func BenchmarkSpanGeneration(b *testing.B) {
	topo, cat, _ := fixture(b)
	gen := workload.NewGenerator(cat, topo, nil, 23)
	m := cat.MethodByName("networkdisk/Write")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obs := gen.Call(m, workload.CallOptions{At: time.Duration(i) * time.Millisecond})
		if obs.Span == nil {
			b.Fatal("no span")
		}
	}
}

// BenchmarkTreeReconstruction measures Dapper-style tree building.
func BenchmarkTreeReconstruction(b *testing.B) {
	_, _, ds := fixture(b)
	spans := ds.TreeSpans
	if len(spans) == 0 {
		b.Skip("no tree spans")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if trees := trace.BuildTrees(spans); len(trees) == 0 {
			b.Fatal("no trees")
		}
	}
}

// BenchmarkAblationColocation quantifies the §5.2 co-location what-if:
// tree root latency with and without cluster-manager co-location.
func BenchmarkAblationColocation(b *testing.B) {
	topo, cat, _ := fixture(b)
	for i := 0; i < b.N; i++ {
		res := core.ColocationStudy(func() *workload.Generator {
			return workload.NewGeneratorShard(cat, topo, nil, uint64(i+3), 1)
		}, 80)
		if i == 0 {
			b.ReportMetric(res.CrossRateWithout-res.CrossRateWith, "cross-rate-saved")
		}
	}
}

// BenchmarkOffloadCoverage regenerates the §2.5 Zerializer-style
// accelerator coverage numbers.
func BenchmarkOffloadCoverage(b *testing.B) {
	_, _, ds := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := core.OffloadCoverage(ds, 1500)
		if i == 0 {
			b.ReportMetric(res.MessageCoverage*100, "msg-coverage-%")
			b.ReportMetric(res.ByteCoverage*100, "byte-coverage-%")
		}
	}
}

// --- Streaming accumulator benches ---

// BenchmarkAccumObserve measures the steady-state cost of folding one
// volume span into the report accumulators. After warm-up the observe
// path allocates only on histogram bucket growth and periodic bottom-k
// prunes, so allocs/op should sit near zero — the property that keeps
// StreamReport's memory bounded at any volume.
func BenchmarkAccumObserve(b *testing.B) {
	_, _, ds := fixture(b)
	spans := ds.VolumeSpans
	if len(spans) == 0 {
		b.Skip("no volume spans")
	}
	sink := core.NewReportSink()
	for _, s := range spans {
		sink.VolumeSpan(s)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i, j := 0, 0; i < b.N; i++ {
		sink.VolumeSpan(spans[j])
		j++
		if j == len(spans) {
			j = 0
		}
	}
}

// BenchmarkAccumReplay measures replaying the materialized dataset
// through per-shard accumulators and merging them in shard order — the
// one-time cost FullReport pays before rendering.
func BenchmarkAccumReplay(b *testing.B) {
	_, _, ds := fixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if core.SinkFromDataset(ds) == nil {
			b.Fatal("nil sink")
		}
	}
}

// BenchmarkStubbyStream measures server-streaming throughput on the real
// stack: 64 x 32KB chunks per stream.
func BenchmarkStubbyStream(b *testing.B) {
	opts := stubby.Options{Workers: 8}
	srv := stubby.NewServer(opts)
	chunk := make([]byte, 32*1024)
	srv.RegisterStream("bench/Read", func(ctx context.Context, p []byte, send func([]byte) error) error {
		for i := 0; i < 64; i++ {
			if err := send(chunk); err != nil {
				return err
			}
		}
		return nil
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()
	ch, err := stubby.Dial(l.Addr().String(), "bench", opts)
	if err != nil {
		b.Fatal(err)
	}
	defer ch.Close()
	b.SetBytes(64 * 32 * 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := ch.CallStream(context.Background(), "bench/Read", nil)
		if err != nil {
			b.Fatal(err)
		}
		for {
			_, err := st.Recv()
			if err != nil {
				break
			}
		}
	}
}

// BenchmarkStubbyBulkUnary measures unary download throughput through the
// zero-copy bulk lane: a small request fetches a size-B response, which
// rides back as scatter-gather chunk frames (see DESIGN.md §12). Each
// response buffer is recycled with FreeResponse so the receive path stays
// allocation-free, and calls pipeline so the batch writer coalesces
// frames — the configuration the ≥1 GB/s loopback target in
// BENCH_stubby.json uses.
func BenchmarkStubbyBulkUnary(b *testing.B) {
	for _, size := range []int{16 * 1024, 64 * 1024, 256 * 1024} {
		b.Run(byteLabel(size), func(b *testing.B) {
			opts := stubby.Options{Workers: 8}
			srv := stubby.NewServer(opts)
			blob := make([]byte, size)
			srv.Register("bench/Get", func(ctx context.Context, p []byte) ([]byte, error) {
				return blob, nil
			})
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			go srv.Serve(l)
			defer srv.Close()
			ch, err := stubby.Dial(l.Addr().String(), "bench", opts)
			if err != nil {
				b.Fatal(err)
			}
			defer ch.Close()
			req := make([]byte, 16)
			b.SetBytes(int64(size))
			// Pipeline calls even on one core: in-flight calls keep the
			// batch writer coalescing frames so syscall costs amortize.
			b.SetParallelism(16)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					out, err := ch.Call(context.Background(), "bench/Get", req)
					if err != nil {
						b.Fatal(err)
					}
					stubby.FreeResponse(out)
				}
			})
		})
	}
}

// BenchmarkStubbyStream100 measures a 100-item bidirectional stream over
// the symmetric OpenStream API with per-item credit grants; ReportAllocs
// feeds the stream_allocs_per_op series in BENCH_stubby.json (target:
// ≤100 allocs for the whole 100-item stream).
func BenchmarkStubbyStream100(b *testing.B) {
	const items, itemSize = 100, 1024
	opts := stubby.Options{Workers: 8}
	srv := stubby.NewServer(opts)
	srv.RegisterBidi("bench/Items", func(ctx context.Context, st *stubby.Stream) error {
		item := make([]byte, itemSize)
		for i := 0; i < items; i++ {
			if err := st.Send(item); err != nil {
				return err
			}
		}
		return nil
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()
	ch, err := stubby.Dial(l.Addr().String(), "bench", opts)
	if err != nil {
		b.Fatal(err)
	}
	defer ch.Close()
	b.SetBytes(items * itemSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := ch.OpenStream(context.Background(), "bench/Items")
		if err != nil {
			b.Fatal(err)
		}
		if err := st.CloseSend(); err != nil {
			b.Fatal(err)
		}
		for {
			if _, err := st.Recv(); err != nil {
				break
			}
		}
		st.Close()
	}
}

// BenchmarkPoolCall measures pooled unary calls (4 connections).
func BenchmarkPoolCall(b *testing.B) {
	opts := stubby.Options{Workers: 8}
	srv := stubby.NewServer(opts)
	srv.Register("bench/Echo", func(ctx context.Context, p []byte) ([]byte, error) { return p, nil })
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()
	pool, err := stubby.NewPool(l.Addr().String(), "bench", 4, opts)
	if err != nil {
		b.Fatal(err)
	}
	defer pool.Close()
	payload := make([]byte, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pool.Call(context.Background(), "bench/Echo", payload); err != nil {
			b.Fatal(err)
		}
	}
}
