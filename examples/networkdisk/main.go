// Networkdisk: a miniature of the paper's largest service — the network
// disk that alone receives 28% of all fleet RPC calls (§2.3) and moves
// the most bytes (Fig. 8b). Demonstrates:
//
//   - quorum-replicated writes: the coordinator fans each block out to
//     three replica servers in parallel and acknowledges at two — the
//     replication sub-calls behind the paper's layer-0 fan-outs;
//   - server-streaming bulk reads: large files stream back in chunks
//     (the RPC class the paper's sampling excludes, §2.1);
//   - channel pools and automatic retries from the client library.
package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"rpcscale/internal/codec"
	"rpcscale/internal/stubby"
	"rpcscale/internal/trace"
)

const (
	replicas   = 3
	quorum     = 2
	chunkBytes = 32 * 1024 // Table 1: Network Disk's typical 32 KB RPC
)

// Wire schemas.
var (
	writeReq = codec.MustDescriptor("disk.WriteRequest",
		codec.Field{Number: 1, Name: "block_id", Type: codec.TypeUint64},
		codec.Field{Number: 2, Name: "data", Type: codec.TypeBytes},
	)
	readReq = codec.MustDescriptor("disk.ReadRequest",
		codec.Field{Number: 1, Name: "first_block", Type: codec.TypeUint64},
		codec.Field{Number: 2, Name: "block_count", Type: codec.TypeUint64},
	)
)

// replica is one disk server: a block map.
type replica struct {
	name string
	mu   sync.RWMutex
	data map[uint64][]byte
}

func (r *replica) write(ctx context.Context, payload []byte) ([]byte, error) {
	req, err := codec.Unmarshal(writeReq, payload)
	if err != nil {
		return nil, stubby.Errorf(trace.InvalidArgument, "bad write: %v", err)
	}
	r.mu.Lock()
	r.data[req.GetUint64(1)] = append([]byte(nil), req.GetBytes(2)...)
	r.mu.Unlock()
	return nil, nil
}

// readStream streams the requested block range back chunk by chunk.
func (r *replica) readStream(ctx context.Context, payload []byte, send func([]byte) error) error {
	req, err := codec.Unmarshal(readReq, payload)
	if err != nil {
		return stubby.Errorf(trace.InvalidArgument, "bad read: %v", err)
	}
	first, count := req.GetUint64(1), req.GetUint64(2)
	for b := first; b < first+count; b++ {
		r.mu.RLock()
		block, ok := r.data[b]
		r.mu.RUnlock()
		if !ok {
			return stubby.Errorf(trace.EntityNotFound, "block %d missing on %s", b, r.name)
		}
		if err := send(block); err != nil {
			return err
		}
	}
	return nil
}

// startReplica boots one disk server and returns its address.
func startReplica(name string, opts stubby.Options) (string, func(), error) {
	rep := &replica{name: name, data: make(map[uint64][]byte)}
	srv := stubby.NewServer(opts)
	srv.Register("networkdisk/Write", rep.write)
	srv.RegisterStream("networkdisk/ReadStream", rep.readStream)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	go srv.Serve(l)
	return l.Addr().String(), srv.Close, nil
}

// diskClient is the coordinator-side library: quorum writes, streamed
// reads, pooled connections with retry.
type diskClient struct {
	pools []*stubby.Pool
	call  []stubby.CallFunc // retry-wrapped unary path per replica
}

func dialDisk(addrs []string, opts stubby.Options) (*diskClient, error) {
	c := &diskClient{}
	for _, addr := range addrs {
		pool, err := stubby.NewPool(addr, "disk-"+addr, 2, opts)
		if err != nil {
			return nil, err
		}
		c.pools = append(c.pools, pool)
		retry := stubby.WithRetry(stubby.DefaultRetryPolicy())
		member := pool
		c.call = append(c.call, func(ctx context.Context, method string, p []byte) ([]byte, error) {
			return retry(ctx, method, p, func(ctx context.Context, method string, p []byte) ([]byte, error) {
				return member.Call(ctx, method, p)
			})
		})
	}
	return c, nil
}

func (c *diskClient) close() {
	for _, p := range c.pools {
		p.Close()
	}
}

// writeBlock replicates one block, acknowledging at quorum.
func (c *diskClient) writeBlock(ctx context.Context, id uint64, data []byte) error {
	msg := codec.NewMessage(writeReq).Set(1, id).Set(2, data)
	payload, err := codec.Marshal(msg)
	if err != nil {
		return err
	}
	errs := make(chan error, replicas)
	for i := range c.call {
		call := c.call[i]
		go func() {
			_, err := call(ctx, "networkdisk/Write", payload)
			errs <- err
		}()
	}
	acks, failures := 0, 0
	for i := 0; i < replicas; i++ {
		if err := <-errs; err == nil {
			acks++
			if acks >= quorum {
				return nil // quorum reached; stragglers finish async
			}
		} else {
			failures++
			if failures > replicas-quorum {
				return stubby.Errorf(trace.Unavailable, "quorum failed: %v", err)
			}
		}
	}
	return nil
}

// readFile streams a block range from one replica.
func (c *diskClient) readFile(ctx context.Context, replicaIdx int, first, count uint64) ([]byte, error) {
	msg := codec.NewMessage(readReq).Set(1, first).Set(2, count)
	payload, err := codec.Marshal(msg)
	if err != nil {
		return nil, err
	}
	// Streaming goes through a raw channel of the chosen replica's pool.
	stream, err := c.pools[replicaIdx].CallStreamAny(ctx, "networkdisk/ReadStream", payload)
	if err != nil {
		return nil, err
	}
	var out bytes.Buffer
	for {
		chunk, err := stream.Recv()
		if err == io.EOF {
			return out.Bytes(), nil
		}
		if err != nil {
			return nil, err
		}
		out.Write(chunk)
	}
}

func main() {
	opts := stubby.Options{Workers: 16}

	var addrs []string
	for i := 0; i < replicas; i++ {
		addr, stop, err := startReplica(fmt.Sprintf("replica-%d", i), opts)
		if err != nil {
			log.Fatal(err)
		}
		defer stop()
		addrs = append(addrs, addr)
	}

	client, err := dialDisk(addrs, opts)
	if err != nil {
		log.Fatal(err)
	}
	defer client.close()
	ctx := context.Background()

	// Write a 1 MB "file" as 32 KB blocks, quorum-replicated.
	const nBlocks = 32
	file := make([]byte, nBlocks*chunkBytes)
	for i := range file {
		file[i] = byte(i * 31)
	}
	start := time.Now()
	for b := 0; b < nBlocks; b++ {
		if err := client.writeBlock(ctx, uint64(b), file[b*chunkBytes:(b+1)*chunkBytes]); err != nil {
			log.Fatalf("write block %d: %v", b, err)
		}
	}
	writeTime := time.Since(start)

	// Give straggler replica acks a moment to land before reading.
	time.Sleep(50 * time.Millisecond)

	// Stream it back from replica 1.
	start = time.Now()
	got, err := client.readFile(ctx, 1, 0, nBlocks)
	if err != nil {
		log.Fatal(err)
	}
	readTime := time.Since(start)

	if !bytes.Equal(got, file) {
		log.Fatal("read-back mismatch")
	}
	fmt.Printf("networkdisk: wrote %d KB in %v (%d blocks, %d-way replication, quorum %d)\n",
		len(file)/1024, writeTime.Round(time.Millisecond), nBlocks, replicas, quorum)
	fmt.Printf("networkdisk: streamed %d KB back in %v (%d chunks)\n",
		len(got)/1024, readTime.Round(time.Millisecond), nBlocks)
	fmt.Println("\nthe paper's shape: many small write RPCs dominate call count,")
	fmt.Println("while streamed bulk reads (excluded from its RPC sampling) move the bytes")
}
