// Fleetstudy: the end-to-end reproduction in miniature — build a
// synthetic fleet, simulate a day of traffic plus 700 days of counters,
// run every analysis of the paper, and print the figure-by-figure report.
//
// This is the example to read to understand how the pieces compose:
//
//	sim.Topology  +  fleet.Catalog  ->  workload.Generate  ->  core.*
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"rpcscale/internal/core"
	"rpcscale/internal/fleet"
	"rpcscale/internal/monarch"
	"rpcscale/internal/sim"
	"rpcscale/internal/workload"
)

func main() {
	// 1. The world: regions, datacenters, clusters with diurnal load.
	topo := sim.NewTopology(sim.DefaultTopology())
	fmt.Fprintf(os.Stderr, "topology: %d regions, %d datacenters, %d clusters\n",
		len(topo.Regions), len(topo.Datacenters), len(topo.Clusters))

	// 2. The workload: a method catalog calibrated to the paper.
	cat := fleet.New(fleet.Config{Methods: 800, Clusters: len(topo.Clusters), Seed: 7})
	fmt.Fprintf(os.Stderr, "catalog: %d methods in %d services; top method %s (%.0f%% of calls)\n",
		len(cat.Methods), len(cat.Services),
		cat.TopByPopularity(1)[0].Name, cat.TopByPopularity(1)[0].Popularity*100)

	// 3. Simulate: spans, call trees, CPU profiles.
	ds := workload.Generate(context.Background(), cat, topo, workload.RunConfig{
		Seed: 7, MethodSamples: 110, StudiedSamples: 1200,
		VolumeRoots: 50000, Trees: 400,
	})
	fmt.Fprintf(os.Stderr, "simulated %d volume spans, %d trees\n",
		len(ds.VolumeSpans), len(ds.Trees))

	// 4. 700 days of Monarch counters for the growth analysis.
	db := monarch.NewDB(monarch.WithRetention(710 * 24 * time.Hour))
	if err := workload.DeclareMetrics(db); err != nil {
		log.Fatal(err)
	}
	if err := workload.WriteGrowthHistory(db, workload.GrowthConfig{Days: 700, Seed: 7}); err != nil {
		log.Fatal(err)
	}

	// 5. Every figure of the paper.
	gen := workload.NewGenerator(cat, topo, nil, 99)
	fmt.Print(core.FullReport(ds, core.ReportOptions{
		DB:              db,
		Generator:       gen,
		LoadBalanceSeed: 5,
		DiurnalSamples:  100,
	}))
}
