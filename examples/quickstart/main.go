// Quickstart: the smallest complete use of the RPC stack — start a
// server, register a handler, make a traced call, and print the measured
// nine-component latency breakdown (the paper's Fig. 9 anatomy).
//
// The telemetry plane is the five-line version of the paper's whole
// observability story: one NewTelemetry call plus one WithTelemetry
// option per endpoint gives Monarch time series, Dapper spans, and GWP
// cycle attribution for every call.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"rpcscale"

	"rpcscale/internal/gwp"
	"rpcscale/internal/trace"
)

func main() {
	// The plane observes every call of every endpoint it is plugged into.
	plane := rpcscale.NewTelemetry()
	opts := []rpcscale.Option{
		rpcscale.WithTelemetry(plane),
		rpcscale.WithCluster("quickstart"),
	}

	// Server side: register a handler and serve on loopback.
	srv := rpcscale.NewServer(opts...)
	srv.Register("greeter.Greeter/Hello", func(ctx context.Context, payload []byte) ([]byte, error) {
		time.Sleep(2 * time.Millisecond) // pretend to work
		return []byte("hello, " + string(payload)), nil
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()

	// Client side: dial and call.
	ch, err := rpcscale.Dial(l.Addr().String(), opts...)
	if err != nil {
		log.Fatal(err)
	}
	defer ch.Close()

	resp, err := ch.Call(context.Background(), "greeter.Greeter/Hello", []byte("world"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("response: %s\n\n", resp)

	// Dapper's view: the trace shows where the time went.
	for _, span := range plane.Collector().Spans() {
		fmt.Printf("call %s took %v (tax %.1f%%)\n", span.Method,
			span.Latency().Round(time.Microsecond), span.Breakdown.TaxRatio()*100)
		for c := 0; c < trace.NumComponents; c++ {
			fmt.Printf("  %-30s %v\n", trace.Component(c).Label(),
				span.Breakdown[c].Round(time.Nanosecond))
		}
	}

	// Monarch's view: the same call as a windowed latency series.
	db := plane.Monarch()
	for _, s := range db.Query(rpcscale.MetricLatency, nil, time.Now().Add(-time.Hour), time.Now()) {
		if d := s.Last().Dist; d != nil {
			fmt.Printf("\nmonarch %s{method=%s}: %d calls, P50 %v\n",
				s.Metric, s.Labels["method"], d.Count(),
				time.Duration(int64(d.Quantile(0.5))).Round(time.Microsecond))
		}
	}

	// GWP's view: where the cycles went, by taxonomy category.
	snap := plane.Profiler().Snapshot()
	fmt.Println()
	for cat := gwp.Category(0); int(cat) < gwp.NumCategories; cat++ {
		fmt.Printf("gwp %-14s %5.1f%%\n", cat, snap.CategoryShare(cat)*100)
	}
}
