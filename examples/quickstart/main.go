// Quickstart: the smallest complete use of the RPC stack — start a
// server, register a handler, make a traced call, and print the measured
// nine-component latency breakdown (the paper's Fig. 9 anatomy).
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"rpcscale/internal/stubby"
	"rpcscale/internal/trace"
)

func main() {
	// A collector receives one span per completed call.
	col := trace.NewCollector(1, 0)
	opts := stubby.Options{Collector: col, ClusterName: "quickstart"}

	// Server side: register a handler and serve on loopback.
	srv := stubby.NewServer(opts)
	srv.Register("greeter.Greeter/Hello", func(ctx context.Context, payload []byte) ([]byte, error) {
		time.Sleep(2 * time.Millisecond) // pretend to work
		return []byte("hello, " + string(payload)), nil
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()

	// Client side: dial and call.
	ch, err := stubby.Dial(l.Addr().String(), "quickstart", opts)
	if err != nil {
		log.Fatal(err)
	}
	defer ch.Close()

	resp, err := ch.Call(context.Background(), "greeter.Greeter/Hello", []byte("world"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("response: %s\n\n", resp)

	// The trace shows where the time went.
	for _, span := range col.Spans() {
		fmt.Printf("call %s took %v (tax %.1f%%)\n", span.Method,
			span.Latency().Round(time.Microsecond), span.Breakdown.TaxRatio()*100)
		for c := 0; c < trace.NumComponents; c++ {
			fmt.Printf("  %-30s %v\n", trace.Component(c).Label(),
				span.Breakdown[c].Round(time.Nanosecond))
		}
	}
}
