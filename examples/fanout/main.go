// Fanout: a partition/aggregate search application — the architecture the
// paper identifies behind the fleet's "wider than deep" call trees
// (§2.4). A frontend fans a query out to many shard servers in parallel,
// each shard optionally consults a storage leaf, and the trace collector
// reassembles the whole tree from propagated trace context.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"strings"
	"time"

	"rpcscale/internal/stubby"
	"rpcscale/internal/trace"
)

const shards = 12

func main() {
	col := trace.NewCollector(1, 0)
	opts := stubby.Options{Collector: col, Workers: 32}

	// Storage leaf: a slow lookup the shards depend on.
	leafSrv := stubby.NewServer(opts)
	leafSrv.Register("storage/Read", func(ctx context.Context, p []byte) ([]byte, error) {
		time.Sleep(500 * time.Microsecond)
		return []byte("doc(" + string(p) + ")"), nil
	})
	leafL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go leafSrv.Serve(leafL)
	defer leafSrv.Close()

	leafOpts := opts
	leafOpts.ClusterName = "shard-pool"
	leafCh, err := stubby.Dial(leafL.Addr().String(), "storage-pool", leafOpts)
	if err != nil {
		log.Fatal(err)
	}
	defer leafCh.Close()

	// Shard server: scores its partition, fetching the top hit's body
	// from storage. The incoming ctx carries trace context, so the
	// nested call becomes a child span automatically.
	shardSrv := stubby.NewServer(opts)
	shardSrv.Register("searchshard/Query", func(ctx context.Context, p []byte) ([]byte, error) {
		time.Sleep(200 * time.Microsecond) // scoring work
		doc, err := leafCh.Call(ctx, "storage/Read", p)
		if err != nil {
			return nil, err
		}
		return doc, nil
	})
	shardL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go shardSrv.Serve(shardL)
	defer shardSrv.Close()

	frontOpts := opts
	frontOpts.ClusterName = "frontend-pool"
	shardCh, err := stubby.Dial(shardL.Addr().String(), "shard-pool", frontOpts)
	if err != nil {
		log.Fatal(err)
	}
	defer shardCh.Close()

	// Frontend: fan out to every shard in parallel, aggregate results.
	frontSrv := stubby.NewServer(opts)
	frontSrv.Register("searchfe/Search", func(ctx context.Context, p []byte) ([]byte, error) {
		type result struct {
			doc []byte
			err error
		}
		results := make(chan result, shards)
		for i := 0; i < shards; i++ {
			i := i
			go func() {
				doc, err := shardCh.Call(ctx, "searchshard/Query",
					[]byte(fmt.Sprintf("%s#%d", p, i)))
				results <- result{doc, err}
			}()
		}
		var hits []string
		for i := 0; i < shards; i++ {
			r := <-results
			if r.err != nil {
				return nil, r.err
			}
			hits = append(hits, string(r.doc))
		}
		return []byte(strings.Join(hits, ", ")), nil
	})
	frontL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go frontSrv.Serve(frontL)
	defer frontSrv.Close()

	clientCh, err := stubby.Dial(frontL.Addr().String(), "frontend-pool", opts)
	if err != nil {
		log.Fatal(err)
	}
	defer clientCh.Close()

	start := time.Now()
	out, err := clientCh.Call(context.Background(), "searchfe/Search", []byte("cloud rpc"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("search returned %d hits in %v\n\n", shards, time.Since(start).Round(time.Microsecond))
	_ = out

	// Reconstruct the tree: one root, `shards` children, each with one
	// storage child — wider than deep, exactly the paper's shape.
	trees := trace.BuildTrees(col.Spans())
	for _, tr := range trees {
		if tr.Root.Span.Method != "searchfe/Search" {
			continue
		}
		fmt.Printf("trace tree: %d spans, depth %d, root fan-out %d (wider than deep)\n",
			tr.Spans, tr.Root.Depth(), len(tr.Root.Children))
		fmt.Printf("  root %s: %v (app %v — includes all nested calls)\n",
			tr.Root.Span.Method,
			tr.Root.Span.Latency().Round(time.Microsecond),
			tr.Root.Span.Breakdown[trace.ServerApp].Round(time.Microsecond))
		for i, shard := range tr.Root.Children {
			if i >= 3 {
				fmt.Printf("  ... %d more shards\n", len(tr.Root.Children)-3)
				break
			}
			fmt.Printf("  shard %s: %v, %d storage calls\n",
				shard.Span.Method, shard.Span.Latency().Round(time.Microsecond),
				len(shard.Children))
		}
	}
}
