// Keyvalue: an in-memory KV store served over the RPC stack — the
// latency-sensitive service class of the paper's Table 1 (row 8,
// "KV-Store ... Search value"). It demonstrates:
//
//   - message schemas built with the codec package (no codegen),
//   - hedged reads (the §4.4 tail-latency strategy whose cancellations
//     dominate the fleet's error mix),
//   - the latency cost of an occasionally slow replica, and how hedging
//     removes it from the client-visible tail.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"sort"
	"sync"
	"time"

	"rpcscale"

	"rpcscale/internal/codec"
	"rpcscale/internal/stubby"
	"rpcscale/internal/trace"
)

// Wire schemas for the KV service.
var (
	getReq = codec.MustDescriptor("kv.GetRequest",
		codec.Field{Number: 1, Name: "key", Type: codec.TypeString},
	)
	getResp = codec.MustDescriptor("kv.GetResponse",
		codec.Field{Number: 1, Name: "value", Type: codec.TypeBytes},
		codec.Field{Number: 2, Name: "found", Type: codec.TypeBool},
	)
	setReq = codec.MustDescriptor("kv.SetRequest",
		codec.Field{Number: 1, Name: "key", Type: codec.TypeString},
		codec.Field{Number: 2, Name: "value", Type: codec.TypeBytes},
	)
)

// kvServer is the application: a mutex-protected map with an injected
// slow mode that models a replica hitting a GC pause or hot shard.
type kvServer struct {
	mu   sync.RWMutex
	data map[string][]byte

	slowEvery int // every Nth get stalls
	gets      int
}

func (kv *kvServer) get(ctx context.Context, payload []byte) ([]byte, error) {
	req, err := codec.Unmarshal(getReq, payload)
	if err != nil {
		return nil, stubby.Errorf(trace.InvalidArgument, "bad request: %v", err)
	}
	kv.mu.Lock()
	kv.gets++
	stall := kv.slowEvery > 0 && kv.gets%kv.slowEvery == 0
	val, ok := kv.data[req.GetString(1)]
	kv.mu.Unlock()
	if stall {
		// A straggler: 20x the usual service time.
		select {
		case <-time.After(20 * time.Millisecond):
		case <-ctx.Done(): // hedging cancels us — stop burning cycles
			return nil, ctx.Err()
		}
	}
	resp := codec.NewMessage(getResp).Set(2, ok)
	if ok {
		resp.Set(1, val)
	}
	return codec.Marshal(resp)
}

func (kv *kvServer) set(ctx context.Context, payload []byte) ([]byte, error) {
	req, err := codec.Unmarshal(setReq, payload)
	if err != nil {
		return nil, stubby.Errorf(trace.InvalidArgument, "bad request: %v", err)
	}
	kv.mu.Lock()
	kv.data[req.GetString(1)] = append([]byte(nil), req.GetBytes(2)...)
	kv.mu.Unlock()
	return nil, nil
}

func main() {
	// One telemetry plane observes both endpoints: spans, Monarch series,
	// and GWP attribution for every call, including hedged duplicates.
	plane := rpcscale.NewTelemetry()
	opts := []rpcscale.Option{
		rpcscale.WithTelemetry(plane),
		rpcscale.WithCluster("kv-demo"),
		rpcscale.WithWorkers(16),
	}

	kv := &kvServer{data: make(map[string][]byte), slowEvery: 20}
	srv := rpcscale.NewServer(opts...)
	srv.Register("kvstore/Get", kv.get)
	srv.Register("kvstore/Set", kv.set)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()

	ch, err := rpcscale.Dial(l.Addr().String(), opts...)
	if err != nil {
		log.Fatal(err)
	}
	defer ch.Close()

	ctx := context.Background()

	// Load some data.
	for i := 0; i < 100; i++ {
		msg := codec.NewMessage(setReq).
			Set(1, fmt.Sprintf("user:%03d", i)).
			Set(2, []byte(fmt.Sprintf("profile-%d", i)))
		buf, _ := codec.Marshal(msg)
		if _, err := ch.Call(ctx, "kvstore/Set", buf); err != nil {
			log.Fatal(err)
		}
	}

	// Read back with and without hedging; 1 in 20 reads stalls 20ms.
	readAll := func(hedge bool) []time.Duration {
		var lats []time.Duration
		for i := 0; i < 100; i++ {
			msg := codec.NewMessage(getReq).Set(1, fmt.Sprintf("user:%03d", i))
			buf, _ := codec.Marshal(msg)
			start := time.Now()
			var out []byte
			var err error
			if hedge {
				out, err = ch.CallHedged(ctx, "kvstore/Get", buf, 3*time.Millisecond)
			} else {
				out, err = ch.Call(ctx, "kvstore/Get", buf)
			}
			if err != nil {
				log.Fatal(err)
			}
			lats = append(lats, time.Since(start))
			resp, _ := codec.Unmarshal(getResp, out)
			if !resp.GetBool(2) {
				log.Fatalf("key %d missing", i)
			}
		}
		sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
		return lats
	}

	plain := readAll(false)
	hedged := readAll(true)
	pct := func(l []time.Duration, p int) time.Duration { return l[len(l)*p/100] }

	fmt.Println("KV-Store read latency (1 in 20 reads stalls 20ms):")
	fmt.Printf("  %-10s %12s %12s\n", "", "P50", "P99")
	fmt.Printf("  %-10s %12v %12v\n", "plain", pct(plain, 50).Round(time.Microsecond), pct(plain, 99).Round(time.Microsecond))
	fmt.Printf("  %-10s %12v %12v\n", "hedged", pct(hedged, 50).Round(time.Microsecond), pct(hedged, 99).Round(time.Microsecond))

	// The cost: hedging produced cancelled duplicates (§4.4).
	spans := plane.Collector().Spans()
	var cancelled int
	for _, s := range spans {
		if s.Err == trace.Cancelled || s.Err == trace.DeadlineExceeded {
			cancelled++
		}
	}
	fmt.Printf("\nhedging side effect: %d cancelled/abandoned legs out of %d spans — the paper's most common error type\n",
		cancelled, len(spans))

	// The same story from Monarch: error counts per code, per method.
	db := plane.Monarch()
	for _, s := range db.Query(rpcscale.MetricRPCErrors, rpcscale.Labels{"method": "kvstore/Get"},
		time.Now().Add(-time.Hour), time.Now()) {
		var n float64
		for _, pt := range s.Points {
			n += pt.Value
		}
		fmt.Printf("monarch rpc/errors{method=kvstore/Get, code=%s}: %.0f\n", s.Labels["code"], n)
	}
}
