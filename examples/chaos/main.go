// Chaos: the robustness layer end to end through the public facade — a
// deterministic fault injector on both endpoints, a retry policy with a
// budget capping amplification, a circuit breaker, server-side load
// shedding, and the telemetry plane counting every retry, suppression,
// breaker transition, and shed call.
//
// The injector is seeded: run the example twice and the injected fault
// pattern (and so the error mix) is identical. That is the point — a
// failure you can replay is a failure you can debug.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"rpcscale"
)

func main() {
	plane := rpcscale.NewTelemetry()

	// A seeded fault schedule: a 10% reject floor plus a burst of heavier
	// rejects over calls 200-400 (windows count call IDs, not wall time,
	// so the schedule replays exactly).
	inj := rpcscale.NewFaultInjector(rpcscale.FaultConfig{
		Seed:  7,
		Rules: []rpcscale.FaultRule{{RejectRate: 0.10}},
		Incidents: []rpcscale.FaultIncident{{
			Name: "burst", From: 200, To: 400,
			Rules: []rpcscale.FaultRule{{RejectRate: 0.50}},
		}},
	})

	srv := rpcscale.NewServer(
		rpcscale.WithTelemetry(plane),
		rpcscale.WithCluster("chaos-example"),
		rpcscale.WithLoadShedding(512),
	)
	srv.Register("demo.Store/Get", func(ctx context.Context, p []byte) ([]byte, error) {
		return p, nil
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()

	// The client channel carries the whole robustness kit: the injector
	// (client scope), automatic retries under a shared budget, and a
	// circuit breaker. The plane observes all of it.
	budget := rpcscale.NewRetryBudget(10, 0.1)
	ch, err := rpcscale.Dial(l.Addr().String(),
		rpcscale.WithTelemetry(plane),
		rpcscale.WithCluster("chaos-example"),
		rpcscale.WithFaults(inj),
		rpcscale.WithRetryPolicy(rpcscale.DefaultRetryPolicy()),
		rpcscale.WithRetryBudget(budget),
		rpcscale.WithCircuitBreaker(rpcscale.BreakerConfig{
			FailureThreshold: 25,
			Cooldown:         50 * time.Millisecond,
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer ch.Close()

	var ok, failed int
	for i := 0; i < 600; i++ {
		// The call ID keys the injector's decisions: same seed + same IDs
		// = same faults, every run.
		ctx, cancel := context.WithTimeout(
			rpcscale.ContextWithCallID(context.Background(), uint64(i)), time.Second)
		_, err := ch.Call(ctx, "demo.Store/Get", []byte("key"))
		cancel()
		if err != nil {
			failed++
		} else {
			ok++
		}
	}

	fmt.Printf("calls: %d ok, %d failed (seeded faults; rerun for the identical split)\n", ok, failed)
	fmt.Printf("retries: %d issued, %d suppressed by the budget (%.1f tokens left, cap %.2f)\n",
		plane.RetriesAttempted(), plane.RetriesSuppressed(), budget.Tokens(), budget.Cap())
	fmt.Printf("breaker: %d transitions, final state %v\n",
		plane.BreakerTransitions(), ch.Breaker().State("demo.Store/Get"))
	fmt.Printf("shed: %d calls\n", plane.ShedCalls())

	// The same numbers live in the plane's Monarch DB, as any dashboard
	// would read them.
	db := plane.Monarch()
	now := time.Now()
	var retries float64
	for _, s := range db.Query(rpcscale.MetricRetries, nil, now.Add(-time.Hour), now.Add(time.Hour)) {
		for _, pt := range s.Points {
			retries += pt.Value
		}
	}
	fmt.Printf("monarch %s: %.0f\n", rpcscale.MetricRetries, retries)
}
