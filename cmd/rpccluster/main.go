// Command rpccluster runs the real stubby stack as a multi-process fleet:
// N server processes and M client processes over real TCP, driven by the
// synthetic method catalog with time-compressed diurnal load, comparing
// load-balancing policies on live traffic. It renders the paper's
// Fig. 13–15 per-policy load-imbalance table plus calls/s and p50/p99.
//
// The parent re-executes itself for each child role (CLUSTERCTL_* env
// selects it); see internal/cluster and DESIGN.md §13 for the protocol.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rpcscale/internal/cluster"
)

func main() {
	// Child dispatch must run before flag parsing: children are
	// configured purely by environment and receive no flags.
	if cluster.IsChild() {
		os.Exit(cluster.RunChild())
	}

	var (
		servers      = flag.Int("servers", 4, "server processes")
		clients      = flag.Int("clients", 2, "client processes per policy phase")
		duration     = flag.Duration("duration", 10*time.Second, "wall time per policy phase")
		timeScale    = flag.Float64("time-scale", 600, "diurnal compression: 600x runs a 24h cycle in 144s")
		baseRate     = flag.Float64("base-rate", 2000, "per-client mean calls/s at the diurnal midpoint")
		appTimeScale = flag.Float64("apptime-scale", 0.001, "server handler-time compression (0 = pure echo)")
		policies     = flag.String("policies", strings.Join(cluster.DefaultPolicies, ","), "comma-separated policies to compare")
		methods      = flag.Int("methods", 0, "catalog size (0 = fleet default)")
		seed         = flag.Uint64("seed", 1, "root seed for catalog and load generation")
		pool         = flag.Int("pool", 2, "channels per client-server pool")
		workers      = flag.Int("workers", 0, "server worker goroutines (0 = stubby default)")
		stripes      = flag.Int("stripes", 1, "TCP connections per client channel (bulk/stream striping)")
		jsonOut      = flag.String("json", "", "also write the report as JSON to this file (- for stdout)")
	)
	flag.Parse()

	// SIGTERM/SIGINT drain the whole fleet: cancelling ctx makes Run kill
	// every child, and children themselves treat stdin EOF as a drain
	// signal if the parent dies uncleanly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := cluster.Config{
		Servers:      *servers,
		Clients:      *clients,
		Duration:     *duration,
		TimeScale:    *timeScale,
		BaseRate:     *baseRate,
		AppTimeScale: *appTimeScale,
		Methods:      *methods,
		Seed:         *seed,
		PoolSize:     *pool,
		Workers:      *workers,
		Stripes:      *stripes,
	}
	if *policies != "" {
		cfg.Policies = strings.Split(*policies, ",")
	}

	rep, err := cluster.Run(ctx, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rpccluster:", err)
		os.Exit(1)
	}

	if *jsonOut != "" {
		raw, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "rpccluster:", err)
			os.Exit(1)
		}
		if *jsonOut == "-" {
			fmt.Println(string(raw))
		} else if err := os.WriteFile(*jsonOut, append(raw, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "rpccluster:", err)
			os.Exit(1)
		}
	}
}
