// Command benchjson converts `go test -bench -benchmem` text output into a
// JSON array, one object per benchmark result, for CI artifacts and
// regression tracking.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchmem ./... | benchjson > BENCH.json
//	benchjson bench-output.txt > BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name     string  `json:"name"`
	Iters    int64   `json:"iterations"`
	NsOp     float64 `json:"ns_op"`
	MBs      float64 `json:"mb_s,omitempty"`
	BOp      int64   `json:"b_op"`
	AllocsOp int64   `json:"allocs_op"`
}

// parseBench extracts benchmark results from go test output. Lines that
// are not benchmark results are ignored.
func parseBench(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Name: fields[0], Iters: iters}
		ok := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsOp = v
				ok = true
			case "MB/s":
				res.MBs = v
			case "B/op":
				res.BOp = int64(v)
			case "allocs/op":
				res.AllocsOp = int64(v)
			}
		}
		if ok {
			out = append(out, res)
		}
	}
	return out, sc.Err()
}

func run(in io.Reader, out io.Writer) error {
	results, err := parseBench(in)
	if err != nil {
		return err
	}
	if results == nil {
		results = []Result{}
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

func main() {
	in := io.Reader(os.Stdin)
	if len(os.Args) > 1 {
		f, err := os.Open(os.Args[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	if err := run(in, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
