// Command benchjson converts `go test -bench -benchmem` text output into a
// JSON array, one object per benchmark result, for CI artifacts and
// regression tracking.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchmem ./... | benchjson > BENCH.json
//	benchjson bench-output.txt > BENCH.json
//	benchjson -series bench-output.txt > BENCH.json
//
// With -series the output becomes an object {"results": [...],
// "series": {...}} where series holds the named scalar metrics the bench
// job tracks release-over-release (bulk_16KiB_MBps, stream_allocs_per_op).
//
// With -cluster FILE the series additionally folds in the multi-process
// harness's aggregate throughput and tail latency (cluster_calls_per_sec,
// cluster_p99_ms) from an `rpccluster -json` report, so the cluster smoke
// lands in the same BENCH_stubby.json artifact as the microbenchmarks.
//
// With -fleetgen FILE the series folds in fleetgen's generation rate
// (fleetgen_spans_per_sec) and DAG volume (fleetgen_fanin_edges), parsed
// from the "rate: spans_per_sec=..." line fleetgen prints on stderr.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name     string  `json:"name"`
	Iters    int64   `json:"iterations"`
	NsOp     float64 `json:"ns_op"`
	MBs      float64 `json:"mb_s,omitempty"`
	BOp      int64   `json:"b_op"`
	AllocsOp int64   `json:"allocs_op"`
}

// parseBench extracts benchmark results from go test output. Lines that
// are not benchmark results are ignored.
func parseBench(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Name: stripProcSuffix(fields[0]), Iters: iters}
		ok := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsOp = v
				ok = true
			case "MB/s":
				res.MBs = v
			case "B/op":
				res.BOp = int64(v)
			case "allocs/op":
				res.AllocsOp = int64(v)
			}
		}
		if ok {
			out = append(out, res)
		}
	}
	return out, sc.Err()
}

// stripProcSuffix removes the trailing "-N" GOMAXPROCS marker go test
// appends to benchmark names (BenchmarkFoo-8 → BenchmarkFoo), so series
// lookups and cross-machine diffs key on stable names.
func stripProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i <= 0 || i == len(name)-1 {
		return name
	}
	for _, c := range name[i+1:] {
		if c < '0' || c > '9' {
			return name
		}
	}
	return name[:i]
}

// seriesSpec maps one tracked series name to the benchmark and field it
// is derived from.
type seriesSpec struct {
	series string
	bench  string
	field  func(Result) float64
}

// trackedSeries are the scalar metrics the bench job records in
// BENCH_stubby.json release-over-release: data-plane throughput across the
// unary, bulk, and stream lanes, small-payload latency, and the allocation
// count of a 100-item stream (see ROADMAP targets).
var trackedSeries = []seriesSpec{
	{series: "unary_128B_ns", bench: "BenchmarkStubbyUnary/128B", field: func(r Result) float64 { return r.NsOp }},
	{series: "unary_16KiB_MBps", bench: "BenchmarkStubbyUnary/16KB", field: func(r Result) float64 { return r.MBs }},
	{series: "stream_MBps", bench: "BenchmarkStubbyStream", field: func(r Result) float64 { return r.MBs }},
	{series: "bulk_16KiB_MBps", bench: "BenchmarkStubbyBulkUnary/16KB", field: func(r Result) float64 { return r.MBs }},
	{series: "bulk_256KiB_MBps", bench: "BenchmarkStubbyBulkUnary/256KB", field: func(r Result) float64 { return r.MBs }},
	{series: "stream_allocs_per_op", bench: "BenchmarkStubbyStream100", field: func(r Result) float64 { return float64(r.AllocsOp) }},
}

// deriveSeries extracts the tracked series present in results. Because
// stripProcSuffix collapses a `-cpu 1,2,4` sweep into one name, the same
// benchmark can appear several times; the last occurrence wins, which is
// the highest GOMAXPROCS leg — the configuration the multi-core data-plane
// targets are stated against.
func deriveSeries(results []Result) map[string]float64 {
	series := make(map[string]float64)
	for _, spec := range trackedSeries {
		for _, r := range results {
			if r.Name == spec.bench {
				series[spec.series] = spec.field(r)
			}
		}
	}
	return series
}

// report is the -series output shape.
type report struct {
	Results []Result           `json:"results"`
	Series  map[string]float64 `json:"series"`
}

// clusterSeries extracts the tracked scalar metrics from an
// `rpccluster -json` report.
func clusterSeries(r io.Reader) (map[string]float64, error) {
	var rep struct {
		CallsPerSec float64 `json:"calls_per_sec"`
		P99Ms       float64 `json:"p99_ms"`
	}
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("cluster report: %w", err)
	}
	return map[string]float64{
		"cluster_calls_per_sec": rep.CallsPerSec,
		"cluster_p99_ms":        rep.P99Ms,
	}, nil
}

// fleetgenSeries extracts the tracked generation metrics from fleetgen's
// saved stderr: the last "rate: spans_per_sec=N fanin_edges=N ..." line
// wins, so warm-up runs in the same log are ignored.
func fleetgenSeries(r io.Reader) (map[string]float64, error) {
	var series map[string]float64
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "rate: ") {
			continue
		}
		parsed := make(map[string]float64)
		for _, kv := range strings.Fields(line)[1:] {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				continue
			}
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				continue
			}
			switch k {
			case "spans_per_sec":
				parsed["fleetgen_spans_per_sec"] = f
			case "fanin_edges":
				parsed["fleetgen_fanin_edges"] = f
			}
		}
		if len(parsed) > 0 {
			series = parsed
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("fleetgen log: %w", err)
	}
	if series == nil {
		return nil, fmt.Errorf("fleetgen log: no rate line found")
	}
	return series, nil
}

func run(in io.Reader, out io.Writer, withSeries bool, cluster, fleetgen io.Reader) error {
	results, err := parseBench(in)
	if err != nil {
		return err
	}
	if results == nil {
		results = []Result{}
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if !withSeries {
		return enc.Encode(results)
	}
	series := deriveSeries(results)
	if cluster != nil {
		cs, err := clusterSeries(cluster)
		if err != nil {
			return err
		}
		for k, v := range cs {
			series[k] = v
		}
	}
	if fleetgen != nil {
		fs, err := fleetgenSeries(fleetgen)
		if err != nil {
			return err
		}
		for k, v := range fs {
			series[k] = v
		}
	}
	return enc.Encode(report{Results: results, Series: series})
}

func main() {
	withSeries := flag.Bool("series", false, "emit {results, series} with the tracked scalar metrics instead of a bare array")
	clusterFile := flag.String("cluster", "", "rpccluster -json report whose aggregate metrics join the series (implies -series)")
	fleetgenFile := flag.String("fleetgen", "", "fleetgen stderr log whose rate metrics join the series (implies -series)")
	flag.Parse()
	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	var cluster io.Reader
	if *clusterFile != "" {
		f, err := os.Open(*clusterFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		cluster = f
		*withSeries = true
	}
	var fleetgen io.Reader
	if *fleetgenFile != "" {
		f, err := os.Open(*fleetgenFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		fleetgen = f
		*withSeries = true
	}
	if err := run(in, os.Stdout, *withSeries, cluster, fleetgen); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
