package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: rpcscale
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkStubbyUnary/128B         	  163239	     15980 ns/op	   8.01 MB/s	    1408 B/op	      20 allocs/op
BenchmarkStubbyUnary/16KB         	   61854	     40708 ns/op	 402.48 MB/s	   17668 B/op	      20 allocs/op
BenchmarkStubbyStream             	     838	   3050646 ns/op	 687.45 MB/s	 2132185 B/op	     481 allocs/op
BenchmarkPoolCall                 	  123051	     18939 ns/op	    1792 B/op	      20 allocs/op
PASS
ok  	rpcscale	14.094s
`

func TestParseBench(t *testing.T) {
	results, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("parsed %d results, want 4", len(results))
	}
	r := results[1]
	if r.Name != "BenchmarkStubbyUnary/16KB" || r.Iters != 61854 ||
		r.NsOp != 40708 || r.MBs != 402.48 || r.BOp != 17668 || r.AllocsOp != 20 {
		t.Fatalf("unexpected parse: %+v", r)
	}
	// No MB/s column on PoolCall.
	if results[3].MBs != 0 || results[3].AllocsOp != 20 {
		t.Fatalf("unexpected parse: %+v", results[3])
	}
}

func TestRunEmitsValidJSON(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader(sampleOutput), &out); err != nil {
		t.Fatal(err)
	}
	var decoded []Result
	if err := json.Unmarshal(out.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(decoded) != 4 {
		t.Fatalf("round trip lost results: %d", len(decoded))
	}
}

func TestRunEmptyInput(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader("no benchmarks here\n"), &out); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out.String()) != "[]" {
		t.Fatalf("empty input should emit [], got %q", out.String())
	}
}
