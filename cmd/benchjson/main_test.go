package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: rpcscale
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkStubbyUnary/128B         	  163239	     15980 ns/op	   8.01 MB/s	    1408 B/op	      20 allocs/op
BenchmarkStubbyUnary/16KB         	   61854	     40708 ns/op	 402.48 MB/s	   17668 B/op	      20 allocs/op
BenchmarkStubbyBulkUnary/16KB-8   	   55506	     21401 ns/op	 765.56 MB/s	    1432 B/op	      15 allocs/op
BenchmarkStubbyStream             	     838	   3050646 ns/op	 687.45 MB/s	 2132185 B/op	     481 allocs/op
BenchmarkStubbyStream100          	    1684	    763284 ns/op	 134.16 MB/s	   86002 B/op	      69 allocs/op
BenchmarkPoolCall                 	  123051	     18939 ns/op	    1792 B/op	      20 allocs/op
PASS
ok  	rpcscale	14.094s
`

func TestParseBench(t *testing.T) {
	results, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 6 {
		t.Fatalf("parsed %d results, want 6", len(results))
	}
	r := results[1]
	if r.Name != "BenchmarkStubbyUnary/16KB" || r.Iters != 61854 ||
		r.NsOp != 40708 || r.MBs != 402.48 || r.BOp != 17668 || r.AllocsOp != 20 {
		t.Fatalf("unexpected parse: %+v", r)
	}
	// GOMAXPROCS suffix is stripped for stable names.
	if results[2].Name != "BenchmarkStubbyBulkUnary/16KB" {
		t.Fatalf("proc suffix not stripped: %q", results[2].Name)
	}
	// No MB/s column on PoolCall.
	if results[5].MBs != 0 || results[5].AllocsOp != 20 {
		t.Fatalf("unexpected parse: %+v", results[5])
	}
}

func TestStripProcSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFoo-8":       "BenchmarkFoo",
		"BenchmarkFoo/16KB-32": "BenchmarkFoo/16KB",
		"BenchmarkFoo/16KB":    "BenchmarkFoo/16KB",
		"BenchmarkFoo-":        "BenchmarkFoo-",
		"BenchmarkFoo-x8":      "BenchmarkFoo-x8",
	}
	for in, want := range cases {
		if got := stripProcSuffix(in); got != want {
			t.Errorf("stripProcSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRunEmitsValidJSON(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader(sampleOutput), &out, false, nil, nil); err != nil {
		t.Fatal(err)
	}
	var decoded []Result
	if err := json.Unmarshal(out.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(decoded) != 6 {
		t.Fatalf("round trip lost results: %d", len(decoded))
	}
}

func TestRunSeries(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader(sampleOutput), &out, true, nil, nil); err != nil {
		t.Fatal(err)
	}
	var decoded report
	if err := json.Unmarshal(out.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(decoded.Results) != 6 {
		t.Fatalf("round trip lost results: %d", len(decoded.Results))
	}
	if got := decoded.Series["bulk_16KiB_MBps"]; got != 765.56 {
		t.Fatalf("bulk_16KiB_MBps = %v, want 765.56", got)
	}
	if got := decoded.Series["stream_allocs_per_op"]; got != 69 {
		t.Fatalf("stream_allocs_per_op = %v, want 69", got)
	}
	if got := decoded.Series["unary_128B_ns"]; got != 15980 {
		t.Fatalf("unary_128B_ns = %v, want 15980", got)
	}
	if got := decoded.Series["unary_16KiB_MBps"]; got != 402.48 {
		t.Fatalf("unary_16KiB_MBps = %v, want 402.48", got)
	}
	if got := decoded.Series["stream_MBps"]; got != 687.45 {
		t.Fatalf("stream_MBps = %v, want 687.45", got)
	}
}

// A -cpu 1,2,4 sweep repeats each benchmark under names that collapse to
// one after stripProcSuffix; the series must come from the last (highest
// GOMAXPROCS) leg.
func TestRunSeriesCPUSweepLastWins(t *testing.T) {
	sweep := `BenchmarkStubbyBulkUnary/16KB     	   40000	     30000 ns/op	 550.00 MB/s	    1432 B/op	      15 allocs/op
BenchmarkStubbyBulkUnary/16KB-2   	   50000	     25000 ns/op	 700.00 MB/s	    1432 B/op	      16 allocs/op
BenchmarkStubbyBulkUnary/16KB-4   	   60000	     16000 ns/op	 990.00 MB/s	    1432 B/op	      16 allocs/op
`
	var out bytes.Buffer
	if err := run(strings.NewReader(sweep), &out, true, nil, nil); err != nil {
		t.Fatal(err)
	}
	var decoded report
	if err := json.Unmarshal(out.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if got := decoded.Series["bulk_16KiB_MBps"]; got != 990.00 {
		t.Fatalf("bulk_16KiB_MBps = %v, want the -cpu 4 leg (990)", got)
	}
}

func TestRunClusterSeries(t *testing.T) {
	clusterReport := `{
		"servers": 4, "clients": 2,
		"policies": [{"policy": "round-robin", "calls_per_sec": 3100.0}],
		"calls_per_sec": 2972.4,
		"p99_ms": 4.39
	}`
	var out bytes.Buffer
	if err := run(strings.NewReader(sampleOutput), &out, true, strings.NewReader(clusterReport), nil); err != nil {
		t.Fatal(err)
	}
	var decoded report
	if err := json.Unmarshal(out.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if got := decoded.Series["cluster_calls_per_sec"]; got != 2972.4 {
		t.Fatalf("cluster_calls_per_sec = %v, want 2972.4", got)
	}
	if got := decoded.Series["cluster_p99_ms"]; got != 4.39 {
		t.Fatalf("cluster_p99_ms = %v, want 4.39", got)
	}
	// Microbenchmark series still present alongside the cluster metrics.
	if got := decoded.Series["bulk_16KiB_MBps"]; got != 765.56 {
		t.Fatalf("bulk_16KiB_MBps = %v, want 765.56", got)
	}
}

func TestRunFleetgenSeries(t *testing.T) {
	fleetgenLog := `catalog: 4000 methods
motif fanin: 12 methods
rate: spans_per_sec=18000 fanin_edges=100 motif_nodes=90
rate: spans_per_sec=39265 fanin_edges=453815 motif_nodes=402431
wrote 10000000 spans
`
	var out bytes.Buffer
	if err := run(strings.NewReader(sampleOutput), &out, true, nil, strings.NewReader(fleetgenLog)); err != nil {
		t.Fatal(err)
	}
	var decoded report
	if err := json.Unmarshal(out.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	// The last rate line wins (warm-up runs are ignored).
	if got := decoded.Series["fleetgen_spans_per_sec"]; got != 39265 {
		t.Fatalf("fleetgen_spans_per_sec = %v, want 39265", got)
	}
	if got := decoded.Series["fleetgen_fanin_edges"]; got != 453815 {
		t.Fatalf("fleetgen_fanin_edges = %v, want 453815", got)
	}
	if got := decoded.Series["bulk_16KiB_MBps"]; got != 765.56 {
		t.Fatalf("bulk_16KiB_MBps = %v, want 765.56", got)
	}
}

func TestRunFleetgenSeriesNoRateLine(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader(sampleOutput), &out, true, nil, strings.NewReader("no rate here\n")); err == nil {
		t.Fatal("fleetgen log without a rate line did not error")
	}
}

func TestRunClusterSeriesBadReport(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader(sampleOutput), &out, true, strings.NewReader("not json"), nil); err == nil {
		t.Fatal("malformed cluster report did not error")
	}
}

func TestRunEmptyInput(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader("no benchmarks here\n"), &out, false, nil, nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out.String()) != "[]" {
		t.Fatalf("empty input should emit [], got %q", out.String())
	}
}
