// Command fleetgen generates a synthetic fleet dataset and writes it to
// disk as JSON lines (one span per line, schema trace.SpanRecord), for
// inspection with external tools or replay through cmd/tracequery and
// cmd/rpcanalyze -in.
//
// Usage:
//
//	fleetgen [-methods N] [-volume N] [-trees N] [-seed N] -o spans.jsonl
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"rpcscale/internal/fleet"
	"rpcscale/internal/sim"
	"rpcscale/internal/trace"
	"rpcscale/internal/workload"
)

func main() {
	var (
		methods = flag.Int("methods", 2000, "catalog size (paper: 10000)")
		volume  = flag.Int("volume", 200000, "popularity-weighted call samples")
		trees   = flag.Int("trees", 1000, "materialized call trees")
		samples = flag.Int("samples", 150, "stratified samples per method")
		seed    = flag.Uint64("seed", 1, "master seed")
		out     = flag.String("o", "spans.jsonl", "output path ('-' for stdout)")
	)
	flag.Parse()

	topo := sim.NewTopology(sim.TopologyConfig{
		Regions: 6, DatacentersPer: 2, ClustersPerDC: 3,
		MachinesPerCluster: 16, Seed: *seed,
	})
	cat := fleet.New(fleet.Config{Methods: *methods, Clusters: len(topo.Clusters), Seed: *seed})
	// Ctrl-C stops generation at the next sample boundary; the partial
	// dataset still gets written out.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	start := time.Now()
	ds := workload.Generate(ctx, cat, topo, workload.RunConfig{
		Seed:          *seed,
		MethodSamples: *samples,
		VolumeRoots:   *volume,
		Trees:         *trees,
	})

	var w *os.File
	if *out == "-" {
		w = os.Stdout
	} else {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	spans := ds.AllSpans()
	if err := trace.WriteSpans(w, spans); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %d spans (%d trees, %d methods) in %v\n",
		len(spans), len(ds.Trees), len(cat.Methods), time.Since(start).Round(time.Millisecond))
}
