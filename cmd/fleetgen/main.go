// Command fleetgen generates a synthetic fleet dataset and writes it to
// disk as JSON lines (one span per line, schema trace.SpanRecord), for
// inspection with external tools or replay through cmd/tracequery and
// cmd/rpcanalyze -in.
//
// Spans stream from the generation shards straight to the writer: the
// dataset is never materialized, so memory stays bounded no matter how
// large -volume is. Records interleave across shards (dump order varies
// run to run) but the set of records is deterministic for a fixed seed;
// sort or replay through rpcanalyze -stream, which is order-insensitive.
//
// Usage:
//
//	fleetgen [-methods N] [-volume N] [-trees N] [-seed N] -o spans.jsonl
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"rpcscale/internal/fleet"
	"rpcscale/internal/sim"
	"rpcscale/internal/trace"
	"rpcscale/internal/workload"
)

// streamSink streams every span to a SpanWriter as shards produce them.
// One instance is shared by all shards: the writer serializes records,
// and the only other state is atomic. The first write error is kept and
// reported after the run (sink callbacks cannot return errors).
type streamSink struct {
	w     *trace.SpanWriter
	roots atomic.Uint64
	fanIn atomic.Uint64 // fan-in edges across all graphs
	motif atomic.Uint64 // motif-tagged nodes across all graphs

	mu  sync.Mutex
	err error
}

func (s *streamSink) write(sp *trace.Span) {
	if err := s.w.Write(sp); err != nil {
		s.mu.Lock()
		if s.err == nil {
			s.err = err
		}
		s.mu.Unlock()
	}
}

func (s *streamSink) MethodSpan(sp *trace.Span) { s.write(sp) }
func (s *streamSink) VolumeSpan(sp *trace.Span) { s.write(sp) }
func (s *streamSink) TreeSpan(sp *trace.Span) {
	if sp.ParentID == 0 {
		s.roots.Add(1)
	}
	s.write(sp)
}
func (s *streamSink) TreeShape(string, int, int) {}
func (s *streamSink) GraphShape(g workload.GraphStat) {
	s.fanIn.Add(uint64(g.FanInEdges))
	var nodes uint64
	for m := 1; m < trace.NumMotifs; m++ {
		nodes += uint64(g.Motifs[m])
	}
	s.motif.Add(nodes)
}
func (s *streamSink) ExoSample(string, *trace.Span, sim.Exo) {}

func main() {
	var (
		methods    = flag.Int("methods", 2000, "catalog size (paper: 10000)")
		volume     = flag.Int("volume", 200000, "popularity-weighted call samples")
		trees      = flag.Int("trees", 1000, "materialized call trees")
		samples    = flag.Int("samples", 150, "stratified samples per method")
		motifs     = flag.String("motifs", "", "DAG motif packs to apply: comma list of fanin,cache,sidecar,replica, or 'all'")
		seed       = flag.Uint64("seed", 1, "master seed")
		out        = flag.String("o", "spans.jsonl", "output path ('-' for stdout)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file at exit")
		memstats   = flag.Bool("memstats", false, "print heap statistics to stderr at exit")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	topo := sim.NewTopology(sim.TopologyConfig{
		Regions: 6, DatacentersPer: 2, ClustersPerDC: 3,
		MachinesPerCluster: 16, Seed: *seed,
	})
	cat := fleet.New(fleet.Config{Methods: *methods, Clusters: len(topo.Clusters), Seed: *seed})
	packs, err := fleet.ParseMotifs(*motifs)
	if err != nil {
		fatal(err)
	}
	if len(packs) > 0 {
		counts := fleet.ApplyMotifs(cat, packs, *seed)
		for _, p := range packs {
			fmt.Fprintf(os.Stderr, "motif %s: %d methods\n", p.Name(), counts[p.Name()])
		}
	}
	// Ctrl-C stops generation at the next sample boundary; everything
	// streamed so far is already on its way to the writer.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var w *os.File
	if *out == "-" {
		w = os.Stdout
	} else {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	start := time.Now()
	sink := &streamSink{w: trace.NewSpanWriter(w)}
	workload.Run(ctx, cat, topo, workload.RunConfig{
		Seed:          *seed,
		MethodSamples: *samples,
		VolumeRoots:   *volume,
		Trees:         *trees,
	}, func(int) workload.SpanSink { return sink })
	if err := sink.w.Flush(); err != nil && sink.err == nil {
		sink.err = err
	}
	if sink.err != nil {
		fatal(sink.err)
	}
	elapsed := time.Since(start)
	rate := float64(sink.w.Count()) / elapsed.Seconds()
	fmt.Fprintf(os.Stderr, "wrote %d spans (%d trees, %d methods) in %v\n",
		sink.w.Count(), sink.roots.Load(), len(cat.Methods), elapsed.Round(time.Millisecond))
	fmt.Fprintf(os.Stderr, "rate: spans_per_sec=%.0f fanin_edges=%d motif_nodes=%d\n",
		rate, sink.fanIn.Load(), sink.motif.Load())

	if *memstats {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		fmt.Fprintf(os.Stderr, "memstats: heap_sys_bytes=%d heap_alloc_bytes=%d total_alloc_bytes=%d\n",
			m.HeapSys, m.HeapAlloc, m.TotalAlloc)
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
