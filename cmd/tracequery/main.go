// Command tracequery loads a span dump produced by cmd/fleetgen and
// answers ad-hoc questions: per-method percentiles, call-graph shapes for
// a trace ID, and top-k listings — a miniature of the Dapper query UI.
//
// Usage:
//
//	tracequery -in spans.jsonl method <name>     per-method summary
//	tracequery -in spans.jsonl trace <trace-id>  print one call graph
//	tracequery -in spans.jsonl top [k]           top methods by calls
//	tracequery -in spans.jsonl errors            error mix
//	tracequery -in spans.jsonl motifs            motif/tier census
//
// -motif restricts method/top/errors to spans carrying one motif tag
// (fanin, cache_hit, cache_miss, sidecar, replica). The trace command
// prints the DAG: extra in-edges recorded in linked_parents are shown as
// "also under" annotations on shared nodes.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"time"

	"rpcscale/internal/stats"
	"rpcscale/internal/trace"
)

func load(path string) ([]*trace.Span, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.ReadSpans(f)
}

func main() {
	in := flag.String("in", "spans.jsonl", "span dump from fleetgen")
	motif := flag.String("motif", "", "restrict method/top/errors to spans with this motif tag (fanin, cache_hit, cache_miss, sidecar, replica)")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: tracequery -in spans.jsonl [-motif tag] {method <name> | trace <id> | top [k] | errors | motifs}")
		os.Exit(2)
	}
	spans, err := load(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *motif != "" && args[0] != "trace" && args[0] != "motifs" {
		want := trace.ParseMotif(*motif)
		if want == trace.MotifNone {
			fmt.Fprintf(os.Stderr, "unknown motif %q\n", *motif)
			os.Exit(2)
		}
		var kept []*trace.Span
		for _, s := range spans {
			if s.Motif == want {
				kept = append(kept, s)
			}
		}
		if len(kept) == 0 {
			fmt.Printf("no spans with motif %s\n", want)
			return
		}
		spans = kept
	}
	switch args[0] {
	case "method":
		if len(args) < 2 {
			fmt.Fprintln(os.Stderr, "method requires a name")
			os.Exit(2)
		}
		methodSummary(spans, args[1])
	case "trace":
		if len(args) < 2 {
			fmt.Fprintln(os.Stderr, "trace requires an id")
			os.Exit(2)
		}
		id, err := strconv.ParseUint(args[1], 10, 64)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bad trace id:", err)
			os.Exit(2)
		}
		printTree(spans, trace.TraceID(id))
	case "top":
		k := 20
		if len(args) > 1 {
			if v, err := strconv.Atoi(args[1]); err == nil {
				k = v
			}
		}
		topMethods(spans, k)
	case "errors":
		errorMix(spans)
	case "motifs":
		motifCensus(spans)
	default:
		fmt.Fprintf(os.Stderr, "unknown command %q\n", args[0])
		os.Exit(2)
	}
}

func methodSummary(spans []*trace.Span, method string) {
	h := stats.NewLatencyHist()
	var calls, errs int
	for _, s := range spans {
		if s.Method != method {
			continue
		}
		calls++
		if s.Err.IsError() {
			errs++
			continue
		}
		h.Add(float64(s.Breakdown.Total()))
	}
	if calls == 0 {
		fmt.Printf("no spans for %s\n", method)
		return
	}
	sum := h.Summarize()
	fmt.Printf("%s: %d calls, %d errors\n", method, calls, errs)
	fmt.Printf("  P1 %v  P50 %v  P90 %v  P99 %v  max %v\n",
		time.Duration(int64(sum.P1)).Round(time.Microsecond),
		time.Duration(int64(sum.P50)).Round(time.Microsecond),
		time.Duration(int64(sum.P90)).Round(time.Microsecond),
		time.Duration(int64(sum.P99)).Round(time.Microsecond),
		time.Duration(int64(sum.Max)).Round(time.Microsecond))
}

func printTree(spans []*trace.Span, id trace.TraceID) {
	var subset []*trace.Span
	for _, s := range spans {
		if s.TraceID == id {
			subset = append(subset, s)
		}
	}
	if len(subset) == 0 {
		fmt.Printf("no spans for trace %d\n", id)
		return
	}
	for _, g := range trace.BuildGraphs(subset) {
		if g.FanInEdges() > 0 {
			fmt.Printf("graph: %d spans, %d fan-in edges, depth %d, width %d\n",
				g.Spans, g.FanInEdges(), g.Depth(), g.Width())
		}
		var walk func(n *trace.GraphNode, indent string)
		walk = func(n *trace.GraphNode, indent string) {
			s := n.Span
			status := ""
			if s.Err.IsError() {
				status = "  [" + s.Err.String() + "]"
			}
			if s.Motif != trace.MotifNone {
				status += "  {" + s.Motif.String() + "}"
			}
			if len(s.LinkedParents) > 0 {
				status += fmt.Sprintf("  also under %d more parent(s)", len(s.LinkedParents))
			}
			fmt.Printf("%s%s  %v  (%s -> %s)%s\n", indent, s.Method,
				s.Breakdown.Total().Round(time.Microsecond),
				s.ClientCluster, s.ServerCluster, status)
			for _, c := range n.Children {
				walk(c, indent+"  ")
			}
		}
		walk(g.Root, "")
	}
}

// motifCensus prints the tier and motif composition of the dump: how many
// spans carry each motif tag and each tier label.
func motifCensus(spans []*trace.Span) {
	var motifs [trace.NumMotifs]int
	var tiers [trace.NumTiers]int
	linked := 0
	for _, s := range spans {
		if int(s.Motif) < trace.NumMotifs {
			motifs[s.Motif]++
		}
		if int(s.Tier) < trace.NumTiers {
			tiers[s.Tier]++
		}
		linked += len(s.LinkedParents)
	}
	fmt.Printf("%d spans, %d fan-in edges\n", len(spans), linked)
	fmt.Println("tiers:")
	for t := 0; t < trace.NumTiers; t++ {
		fmt.Printf("  %-10s %8d  (%5.2f%%)\n", trace.Tier(t), tiers[t],
			100*float64(tiers[t])/float64(len(spans)))
	}
	fmt.Println("motifs:")
	for m := 1; m < trace.NumMotifs; m++ {
		fmt.Printf("  %-10s %8d  (%5.2f%%)\n", trace.Motif(m), motifs[m],
			100*float64(motifs[m])/float64(len(spans)))
	}
}

func topMethods(spans []*trace.Span, k int) {
	counts := make(map[string]int)
	for _, s := range spans {
		counts[s.Method]++
	}
	type kv struct {
		m string
		n int
	}
	var sorted []kv
	for m, n := range counts {
		sorted = append(sorted, kv{m, n})
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].n > sorted[j].n })
	if k > len(sorted) {
		k = len(sorted)
	}
	for i := 0; i < k; i++ {
		fmt.Printf("%6.2f%%  %s\n", 100*float64(sorted[i].n)/float64(len(spans)), sorted[i].m)
	}
}

func errorMix(spans []*trace.Span) {
	var errs int
	counts := make(map[trace.ErrorCode]int)
	for _, s := range spans {
		if s.Err.IsError() {
			errs++
			counts[s.Err]++
		}
	}
	fmt.Printf("%d/%d spans errored (%.2f%%)\n", errs, len(spans),
		100*float64(errs)/float64(len(spans)))
	for code, n := range counts {
		fmt.Printf("  %-18s %6.2f%%\n", code, 100*float64(n)/float64(errs))
	}
}
