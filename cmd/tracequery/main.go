// Command tracequery loads a span dump produced by cmd/fleetgen and
// answers ad-hoc questions: per-method percentiles, tree shapes for a
// trace ID, and top-k listings — a miniature of the Dapper query UI.
//
// Usage:
//
//	tracequery -in spans.jsonl method <name>     per-method summary
//	tracequery -in spans.jsonl trace <trace-id>  print one call tree
//	tracequery -in spans.jsonl top [k]           top methods by calls
//	tracequery -in spans.jsonl errors            error mix
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"time"

	"rpcscale/internal/stats"
	"rpcscale/internal/trace"
)

func load(path string) ([]*trace.Span, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.ReadSpans(f)
}

func main() {
	in := flag.String("in", "spans.jsonl", "span dump from fleetgen")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: tracequery -in spans.jsonl {method <name> | trace <id> | top [k] | errors}")
		os.Exit(2)
	}
	spans, err := load(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	switch args[0] {
	case "method":
		if len(args) < 2 {
			fmt.Fprintln(os.Stderr, "method requires a name")
			os.Exit(2)
		}
		methodSummary(spans, args[1])
	case "trace":
		if len(args) < 2 {
			fmt.Fprintln(os.Stderr, "trace requires an id")
			os.Exit(2)
		}
		id, err := strconv.ParseUint(args[1], 10, 64)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bad trace id:", err)
			os.Exit(2)
		}
		printTree(spans, trace.TraceID(id))
	case "top":
		k := 20
		if len(args) > 1 {
			if v, err := strconv.Atoi(args[1]); err == nil {
				k = v
			}
		}
		topMethods(spans, k)
	case "errors":
		errorMix(spans)
	default:
		fmt.Fprintf(os.Stderr, "unknown command %q\n", args[0])
		os.Exit(2)
	}
}

func methodSummary(spans []*trace.Span, method string) {
	h := stats.NewLatencyHist()
	var calls, errs int
	for _, s := range spans {
		if s.Method != method {
			continue
		}
		calls++
		if s.Err.IsError() {
			errs++
			continue
		}
		h.Add(float64(s.Breakdown.Total()))
	}
	if calls == 0 {
		fmt.Printf("no spans for %s\n", method)
		return
	}
	sum := h.Summarize()
	fmt.Printf("%s: %d calls, %d errors\n", method, calls, errs)
	fmt.Printf("  P1 %v  P50 %v  P90 %v  P99 %v  max %v\n",
		time.Duration(int64(sum.P1)).Round(time.Microsecond),
		time.Duration(int64(sum.P50)).Round(time.Microsecond),
		time.Duration(int64(sum.P90)).Round(time.Microsecond),
		time.Duration(int64(sum.P99)).Round(time.Microsecond),
		time.Duration(int64(sum.Max)).Round(time.Microsecond))
}

func printTree(spans []*trace.Span, id trace.TraceID) {
	var subset []*trace.Span
	for _, s := range spans {
		if s.TraceID == id {
			subset = append(subset, s)
		}
	}
	if len(subset) == 0 {
		fmt.Printf("no spans for trace %d\n", id)
		return
	}
	for _, tree := range trace.BuildTrees(subset) {
		var walk func(n *trace.Node, indent string)
		walk = func(n *trace.Node, indent string) {
			s := n.Span
			status := ""
			if s.Err.IsError() {
				status = "  [" + s.Err.String() + "]"
			}
			fmt.Printf("%s%s  %v  (%s -> %s)%s\n", indent, s.Method,
				s.Breakdown.Total().Round(time.Microsecond),
				s.ClientCluster, s.ServerCluster, status)
			for _, c := range n.Children {
				walk(c, indent+"  ")
			}
		}
		walk(tree.Root, "")
	}
}

func topMethods(spans []*trace.Span, k int) {
	counts := make(map[string]int)
	for _, s := range spans {
		counts[s.Method]++
	}
	type kv struct {
		m string
		n int
	}
	var sorted []kv
	for m, n := range counts {
		sorted = append(sorted, kv{m, n})
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].n > sorted[j].n })
	if k > len(sorted) {
		k = len(sorted)
	}
	for i := 0; i < k; i++ {
		fmt.Printf("%6.2f%%  %s\n", 100*float64(sorted[i].n)/float64(len(spans)), sorted[i].m)
	}
}

func errorMix(spans []*trace.Span) {
	var errs int
	counts := make(map[trace.ErrorCode]int)
	for _, s := range spans {
		if s.Err.IsError() {
			errs++
			counts[s.Err]++
		}
	}
	fmt.Printf("%d/%d spans errored (%.2f%%)\n", errs, len(spans),
		100*float64(errs)/float64(len(spans)))
	for code, n := range counts {
		fmt.Printf("  %-18s %6.2f%%\n", code, 100*float64(n)/float64(errs))
	}
}
