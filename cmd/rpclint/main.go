// Command rpclint machine-enforces the repository's determinism,
// locking, ownership, and error-code invariants: the analyzers of
// internal/analysis (wallclock, rngsource, lockheld, statuserr,
// sinkobserve, plus the interprocedural bufown, goroleak, and lockorder)
// over any package pattern.
//
// Standalone:
//
//	rpclint ./...          # human-readable findings, exit 2 if any
//	rpclint -json ./...    # machine-readable [{file,line,col,analyzer,message}]
//
// As a go vet tool (the unitchecker protocol: -V=full, -flags, and
// per-package .cfg invocations; the interprocedural analyzers degrade
// to single-package view there):
//
//	go vet -vettool=$(which rpclint) ./...
//
// Suppress a finding with a justified directive on the flagged line or
// the line above:
//
//	//rpclint:ignore <analyzer> <reason>
//
// A baseline file (standalone mode) mutes known findings so new code is
// gated without first paying down existing debt:
//
//	rpclint -write-baseline -baseline lint.baseline ./...  # record current findings
//	rpclint -baseline lint.baseline ./...                  # report only new ones
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"rpcscale/internal/analysis"
)

// version participates in the go command's tool-ID cache key (-V=full);
// bump it when analyzer behavior changes so cached vet verdicts refresh.
const version = "rpclint version 2.0.0"

var (
	jsonOut  = flag.Bool("json", false, "emit findings as JSON")
	tests    = flag.Bool("tests", false, "also analyze in-package _test.go files (standalone mode)")
	vFlag    = flag.String("V", "", "print version and exit (go vet protocol)")
	flagsOut = flag.Bool("flags", false, "print flag schema as JSON and exit (go vet protocol)")

	baselinePath  = flag.String("baseline", "", "suppress findings recorded in this baseline file (standalone mode)")
	writeBaseline = flag.Bool("write-baseline", false, "write current findings to -baseline instead of reporting them")
)

func init() {
	flag.Var(analysis.DeterministicPackages, "wallclock.packages",
		"comma-separated deterministic packages for the wallclock analyzer")
	flag.Var(analysis.CryptoRandPackages, "rngsource.cryptopackages",
		"comma-separated packages allowed to use crypto/rand")
	flag.Var(analysis.StatusBoundaryPackages, "statuserr.packages",
		"comma-separated packages whose exported API must return status errors")
	flag.Var(analysis.LockheldIOPackages, "lockheld.iopackages",
		"comma-separated packages whose I/O must not run under a held mutex")
	flag.Var(analysis.RPCCallNames, "lockheld.callnames",
		"comma-separated method names treated as RPC dispatch by lockheld")
	flag.Var(analysis.SinkObserveMethods, "sinkobserve.methods",
		"comma-separated accumulator method names checked for argument retention")
	flag.Var(analysis.BufownAcquireFuncs, "bufown.acquire",
		"comma-separated pkg.Func/pkg.Type.Method entries that hand out owned pooled buffers")
	flag.Var(analysis.BufownReleaseFuncs, "bufown.release",
		"comma-separated pkg.Func/pkg.Type.Method entries that release pooled buffers")
	flag.Var(analysis.BufownAliasFuncs, "bufown.alias",
		"comma-separated pkg.Func/pkg.Type.Method entries whose result aliases their first argument")
	flag.Var(analysis.GoroleakExitCalls, "goroleak.exitcalls",
		"comma-separated callee names that bound a goroutine loop from outside")
}

func main() {
	flag.Usage = usage
	flag.Parse()

	if *vFlag != "" {
		// go vet runs `rpclint -V=full` and keys its action cache on the
		// output line.
		fmt.Println(version)
		return
	}
	if *flagsOut {
		printFlagSchema()
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		// Invoked by `go vet -vettool=rpclint`: one package per .cfg.
		unitcheck(args[0])
		return
	}

	if len(args) == 0 {
		args = []string{"./..."}
	}
	findings, err := runStandalone(args)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rpclint:", err)
		os.Exit(1)
	}
	if *writeBaseline {
		if *baselinePath == "" {
			fmt.Fprintln(os.Stderr, "rpclint: -write-baseline requires -baseline <file>")
			os.Exit(1)
		}
		if err := saveBaseline(*baselinePath, findings); err != nil {
			fmt.Fprintln(os.Stderr, "rpclint:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "rpclint: wrote %d finding(s) to %s\n", len(findings), *baselinePath)
		return
	}
	if *baselinePath != "" {
		base, err := loadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rpclint:", err)
			os.Exit(1)
		}
		findings = base.filter(findings)
	}
	emit(findings, *jsonOut)
	if len(findings) > 0 {
		os.Exit(2)
	}
}

func runStandalone(patterns []string) ([]analysis.Finding, error) {
	cwd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		return nil, err
	}
	loader.IncludeTests = *tests
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return nil, err
	}
	return analysis.RunAnalyzers(pkgs, analysis.Analyzers())
}

// emit prints findings in the selected format. The JSON shape
// (file/line/col/analyzer/message) is the stable machine contract for CI
// annotation tooling.
func emit(findings []analysis.Finding, asJSON bool) {
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		if findings == nil {
			findings = []analysis.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "rpclint:", err)
			os.Exit(1)
		}
		return
	}
	for _, f := range findings {
		fmt.Println(f)
	}
}

// printFlagSchema answers `rpclint -flags`, which the go command uses to
// learn which flags the tool accepts.
func printFlagSchema() {
	type jsonFlag struct {
		Name  string `json:"Name"`
		Bool  bool   `json:"Bool"`
		Usage string `json:"Usage"`
	}
	var out []jsonFlag
	flag.VisitAll(func(f *flag.Flag) {
		isBool := false
		if b, ok := f.Value.(interface{ IsBoolFlag() bool }); ok {
			isBool = b.IsBoolFlag()
		}
		out = append(out, jsonFlag{Name: f.Name, Bool: isBool, Usage: f.Usage})
	})
	data, err := json.MarshalIndent(out, "", "\t")
	if err != nil {
		fmt.Fprintln(os.Stderr, "rpclint:", err)
		os.Exit(1)
	}
	os.Stdout.Write(append(data, '\n'))
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: rpclint [flags] [package pattern ...]\n\nAnalyzers:\n")
	for _, a := range analysis.Analyzers() {
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintf(os.Stderr, "\nFlags:\n")
	flag.PrintDefaults()
}
