package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rpcscale/internal/analysis"
)

func TestBaselineRoundTrip(t *testing.T) {
	findings := []analysis.Finding{
		{File: "a.go", Line: 10, Analyzer: "bufown", Message: "leaked"},
		{File: "a.go", Line: 22, Analyzer: "bufown", Message: "leaked"}, // same key, different line
		{File: "b.go", Line: 3, Analyzer: "lockorder", Message: "cycle"},
	}
	path := filepath.Join(t.TempDir(), "lint.baseline")
	if err := saveBaseline(path, findings); err != nil {
		t.Fatal(err)
	}
	base, err := loadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(base.entries); got != 2 {
		t.Fatalf("baseline has %d entries, want 2 (dedup by file/analyzer/message)", got)
	}

	// Every recorded finding is muted, including the same message at a
	// drifted line; a new finding survives.
	fresh := analysis.Finding{File: "c.go", Line: 1, Analyzer: "goroleak", Message: "leak"}
	kept := base.filter(append(append([]analysis.Finding(nil), findings...), fresh))
	if len(kept) != 1 || kept[0] != fresh {
		t.Fatalf("filter kept %v, want only the fresh finding", kept)
	}
}

func TestLoadBaselineRejectsMalformed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.baseline")
	if err := saveBaseline(path, nil); err != nil {
		t.Fatal(err)
	}
	base, err := loadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.entries) != 0 {
		t.Fatalf("empty baseline has %d entries", len(base.entries))
	}

	bad := filepath.Join(t.TempDir(), "malformed.baseline")
	if err := os.WriteFile(bad, []byte("a.go only-one-tab\there\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadBaseline(bad); err == nil || !strings.Contains(err.Error(), "want <file>") {
		t.Fatalf("malformed line not rejected: %v", err)
	}
}
