package main

// The go vet driver protocol ("unitchecker"): `go vet -vettool=rpclint`
// invokes the tool once per package with a JSON .cfg file describing the
// unit — file lists, the import map, and compiler export data for every
// dependency. The tool type-checks the unit against that export data
// (no source re-traversal, works offline), runs the analyzers, and
// reports findings on stderr (exit 2) or, under -json, as the vet JSON
// object on stdout.

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"

	"rpcscale/internal/analysis"
)

// vetConfig mirrors the fields of the go command's vet config that
// rpclint consumes.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func unitcheck(cfgPath string) {
	cfg, err := readVetConfig(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rpclint:", err)
		os.Exit(1)
	}
	// rpclint carries no cross-package facts, but the driver expects the
	// facts file to exist before it will cache the action.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "rpclint:", err)
			os.Exit(1)
		}
	}
	if cfg.VetxOnly {
		return
	}

	pkg, err := loadUnit(cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return
		}
		fmt.Fprintln(os.Stderr, "rpclint:", err)
		os.Exit(1)
	}
	findings, err := analysis.RunAnalyzers([]*analysis.Package{pkg}, analysis.Analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, "rpclint:", err)
		os.Exit(1)
	}
	if len(findings) == 0 {
		return
	}
	if *jsonOut {
		emitVetJSON(cfg.ImportPath, findings)
		return
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s (%s)\n", f.File, f.Line, f.Col, f.Message, f.Analyzer)
	}
	os.Exit(2)
}

func readVetConfig(path string) (*vetConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return cfg, nil
}

// loadUnit parses the unit's files and type-checks them against the
// driver-provided export data.
func loadUnit(cfg *vetConfig) (*analysis.Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(importPath string) (io.ReadCloser, error) {
		canonical, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("no mapping for import %q", importPath)
		}
		file, ok := cfg.PackageFile[canonical]
		if !ok {
			return nil, fmt.Errorf("no export data for %q; run rpclint via go vet", canonical)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &analysis.Package{
		PkgPath:   cfg.ImportPath,
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

// emitVetJSON prints findings in the go vet -json shape:
// {"pkgpath": {"analyzer": [{"posn": ..., "message": ...}]}}.
func emitVetJSON(pkgPath string, findings []analysis.Finding) {
	type diag struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	byAnalyzer := make(map[string][]diag)
	for _, f := range findings {
		byAnalyzer[f.Analyzer] = append(byAnalyzer[f.Analyzer], diag{
			Posn:    fmt.Sprintf("%s:%d:%d", f.File, f.Line, f.Col),
			Message: f.Message,
		})
	}
	out := map[string]map[string][]diag{pkgPath: byAnalyzer}
	data, err := json.MarshalIndent(out, "", "\t")
	if err != nil {
		fmt.Fprintln(os.Stderr, "rpclint:", err)
		os.Exit(1)
	}
	os.Stdout.Write(append(data, '\n'))
}
