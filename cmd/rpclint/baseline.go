package main

import (
	"bufio"
	"fmt"
	"os"
	"sort"
	"strings"

	"rpcscale/internal/analysis"
)

// A baseline mutes known findings so a repository can gate new code on
// rpclint before paying down existing debt. Entries match on file,
// analyzer, and message — not line numbers, which drift with every
// unrelated edit. The file is line-oriented and diff-friendly:
//
//	<file>\t<analyzer>\t<message>
//
// with '#' comments and blank lines ignored. A finding matching an
// entry is dropped; each entry mutes every finding it matches (the
// same message can legitimately recur in one file).

type baseline struct {
	entries map[string]bool
}

// baselineKey is the identity a finding is matched on.
func baselineKey(file, analyzer, message string) string {
	return file + "\t" + analyzer + "\t" + message
}

// loadBaseline reads and parses a baseline file.
func loadBaseline(path string) (*baseline, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	defer f.Close()
	b := &baseline{entries: make(map[string]bool)}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for n := 1; sc.Scan(); n++ {
		line := sc.Text()
		if strings.TrimSpace(line) == "" || strings.HasPrefix(strings.TrimSpace(line), "#") {
			continue
		}
		if strings.Count(line, "\t") < 2 {
			return nil, fmt.Errorf("baseline: %s:%d: want <file>\\t<analyzer>\\t<message>", path, n)
		}
		b.entries[line] = true
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	return b, nil
}

// filter drops the findings recorded in the baseline.
func (b *baseline) filter(findings []analysis.Finding) []analysis.Finding {
	kept := findings[:0]
	for _, f := range findings {
		if !b.entries[baselineKey(f.File, f.Analyzer, f.Message)] {
			kept = append(kept, f)
		}
	}
	return kept
}

// saveBaseline writes the current findings as a baseline, deduplicated
// and sorted for stable diffs.
func saveBaseline(path string, findings []analysis.Finding) error {
	seen := make(map[string]bool, len(findings))
	lines := make([]string, 0, len(findings))
	for _, f := range findings {
		k := baselineKey(f.File, f.Analyzer, f.Message)
		if !seen[k] {
			seen[k] = true
			lines = append(lines, k)
		}
	}
	sort.Strings(lines)
	var sb strings.Builder
	sb.WriteString("# rpclint baseline: known findings muted by -baseline.\n")
	sb.WriteString("# Format: <file>\\t<analyzer>\\t<message>. Regenerate with -write-baseline.\n")
	for _, l := range lines {
		sb.WriteString(l)
		sb.WriteByte('\n')
	}
	return os.WriteFile(path, []byte(sb.String()), 0o644)
}
