package main

// The -sweep mode: throughput vs payload size across the three data
// lanes — the unary envelope path, the zero-copy bulk lane, and credit-
// windowed streams — in the style of the paper's size figures (Figs. 6/7).
// Each cell drives the same loopback server with a fixed byte budget so
// small payloads get many calls and large ones few, keeping wall time
// bounded across the 128 B … 1 MiB range.

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"rpcscale"
)

// sweepSizes spans the paper's payload range: the 128 B mice through the
// 1 MiB tail (beyond the 563 KB P99 response of Fig. 7).
var sweepSizes = []int{128, 512, 2 * 1024, 8 * 1024, 16 * 1024, 64 * 1024, 256 * 1024, 1024 * 1024}

// sweepBudget is the byte volume driven per (size, lane) cell.
const sweepBudget = 32 << 20

type sweepConfig struct {
	Conc    int // concurrent unary callers
	Streams int // concurrent streams per size; 0 disables the stream lane
	// Stripes and CodecWorkers are the multi-core data-plane axes
	// (DESIGN.md §16): TCP connections per channel, and per-connection
	// seal/open workers (0 = auto, <0 = inline).
	Stripes      int
	CodecWorkers int
}

func sweepCalls(size int) int {
	n := sweepBudget / size
	if n > 8192 {
		return 8192
	}
	if n < 64 {
		return 64
	}
	return n
}

// runSweep measures each lane at each payload size and prints the table.
func runSweep(cfg sweepConfig) error {
	opts := []rpcscale.Option{
		rpcscale.WithWorkers(cfg.Conc),
		rpcscale.WithConnStripes(cfg.Stripes),
		rpcscale.WithCodecWorkers(cfg.CodecWorkers),
	}
	srv := rpcscale.NewServer(opts...)
	srv.Register("bench.Sweep/Echo", func(ctx context.Context, p []byte) ([]byte, error) {
		return p, nil
	})
	srv.RegisterBidi("bench.Sweep/Pump", func(ctx context.Context, st *rpcscale.Stream) error {
		for {
			msg, err := st.Recv()
			if err != nil {
				return nil // EOF or reset: the client is done
			}
			if err := st.Send(msg); err != nil {
				return err
			}
		}
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go srv.Serve(l)
	defer srv.Close()
	ch, err := rpcscale.Dial(l.Addr().String(), opts...)
	if err != nil {
		return err
	}
	defer ch.Close()

	stripes := cfg.Stripes
	if stripes < 1 {
		stripes = 1
	}
	fmt.Printf("rpcbench sweep: %d unary callers, %d streams, %d stripe(s), %d MiB per cell\n\n",
		cfg.Conc, cfg.Streams, stripes, sweepBudget>>20)
	fmt.Printf("  %-10s %14s %14s", "payload", "unary MB/s", "bulk MB/s")
	if cfg.Streams > 0 {
		fmt.Printf(" %14s", "stream MB/s")
	}
	fmt.Println()

	for _, size := range sweepSizes {
		payload := make([]byte, size)
		for i := range payload {
			payload[i] = byte(i)
		}
		calls := sweepCalls(size)

		unary, err := sweepUnary(ch, payload, calls, cfg.Conc, rpcscale.WithBulkLane(false))
		if err != nil {
			return fmt.Errorf("unary %s: %w", sizeLabel(size), err)
		}
		bulk, err := sweepUnary(ch, payload, calls, cfg.Conc, rpcscale.WithBulkLane(true))
		if err != nil {
			return fmt.Errorf("bulk %s: %w", sizeLabel(size), err)
		}
		fmt.Printf("  %-10s %14.1f %14.1f", sizeLabel(size), unary, bulk)
		if cfg.Streams > 0 {
			stream, err := sweepStreams(ch, payload, calls, cfg.Streams)
			if err != nil {
				return fmt.Errorf("stream %s: %w", sizeLabel(size), err)
			}
			fmt.Printf(" %14.1f", stream)
		}
		fmt.Println()
	}
	fmt.Println("\n  MB/s is one-way payload throughput; every lane echoes the payload back.")
	return nil
}

// sweepUnary drives calls echo round trips with conc concurrent callers
// on the given lane and returns one-way payload MB/s.
func sweepUnary(ch *rpcscale.Channel, payload []byte, calls, conc int, lane rpcscale.CallOption) (float64, error) {
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	start := time.Now()
	per := calls / conc
	if per == 0 {
		per = 1
	}
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				out, err := ch.Call(context.Background(), "bench.Sweep/Echo", payload, lane)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				rpcscale.FreeResponse(out)
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return 0, firstErr
	}
	elapsed := time.Since(start).Seconds()
	return float64(per*conc) * float64(len(payload)) / elapsed / 1e6, nil
}

// sweepStreams ping-pongs items across n concurrent streams on the one
// connection and returns aggregate one-way MB/s.
func sweepStreams(ch *rpcscale.Channel, payload []byte, items, n int) (float64, error) {
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	start := time.Now()
	per := items / n
	if per == 0 {
		per = 1
	}
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fail := func(err error) {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
			// A window of 2x the item covers the in-flight echo in each
			// direction; small items keep the default-sized 256 KiB window.
			win := 2 * len(payload)
			if win < 256<<10 {
				win = 256 << 10
			}
			st, err := ch.OpenStream(context.Background(), "bench.Sweep/Pump",
				rpcscale.WithStreamWindow(win))
			if err != nil {
				fail(err)
				return
			}
			defer st.Close()
			for i := 0; i < per; i++ {
				if err := st.Send(payload); err != nil {
					fail(err)
					return
				}
				if _, err := st.Recv(); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return 0, firstErr
	}
	elapsed := time.Since(start).Seconds()
	return float64(per*n) * float64(len(payload)) / elapsed / 1e6, nil
}

func sizeLabel(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMiB", n>>20)
	case n >= 1024:
		return fmt.Sprintf("%dKiB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
