package main

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"net"
	"strings"
	"time"

	"rpcscale"

	"rpcscale/internal/faultplane"
	"rpcscale/internal/stubby"
	"rpcscale/internal/trace"
)

// Chaos mode drives the stack through a deterministic fault schedule and
// renders the paper's error-code distribution (§4, Fig. 14) plus a retry
// amplification table from live loopback traffic. Every fault decision is
// a pure function of (seed, call ID, attempt), so two runs with the same
// seed produce byte-identical reports: the error-code mix is an output of
// the schedule, not of scheduling noise.
//
// Faults are injected at the client scope only. Server-scope injection
// works (and is unit-tested), but server-side delays occupy workers and
// would couple one call's outcome to its queue neighbors — exactly the
// timing dependence chaos mode is designed to exclude.

// chaosConfig parameterizes one chaos run.
type chaosConfig struct {
	Seed     uint64
	Calls    int
	Conc     int
	Payload  int // bytes; floor 16 (8-byte checksum + body)
	Budget   bool
	Deadline time.Duration
}

// The fault schedule: a low-grade base fault floor, plus an "incident"
// over the middle third of the call sequence. The incident's reject storm
// is what the retry budget is for; its delays exceed the deadline so the
// outcome (DeadlineExceeded) is deterministic rather than racing the
// clock.
const (
	chaosBaseReject  = 0.02
	chaosBaseDrop    = 0.005
	chaosBaseDelayP  = 0.02
	chaosBaseDelay   = 2 * time.Millisecond
	chaosBaseCorrupt = 0.01

	chaosIncReject = 0.60
	chaosIncDelayP = 0.10
	chaosIncDelay  = 150 * time.Millisecond
)

const chaosMethod = "chaos.Target/Call"

// Phases of the call sequence, for the amplification table.
const (
	phaseBaseline = iota
	phaseIncident
	phaseRecovery
	numPhases
)

var phaseNames = [numPhases]string{"baseline", "incident", "recovery"}

// chaosSchedule builds the injector config for a run.
func chaosSchedule(seed uint64, calls int) faultplane.Config {
	return faultplane.Config{
		Seed: seed,
		Rules: []faultplane.Rule{{
			Methods:     chaosMethod,
			RejectRate:  chaosBaseReject,
			RejectCode:  trace.Unavailable,
			DropRate:    chaosBaseDrop,
			DelayRate:   chaosBaseDelayP,
			Delay:       chaosBaseDelay,
			CorruptRate: chaosBaseCorrupt,
		}},
		Incidents: []faultplane.Incident{{
			Name: "overload",
			From: uint64(calls / 3),
			To:   uint64(2 * calls / 3),
			Rules: []faultplane.Rule{{
				Methods:    chaosMethod,
				RejectRate: chaosIncReject,
				RejectCode: trace.Unavailable,
				DelayRate:  chaosIncDelayP,
				Delay:      chaosIncDelay,
			}},
		}},
	}
}

// chaosObserver counts retries for one worker. Retry callbacks run
// synchronously on the worker's goroutine, so plain ints suffice.
type chaosObserver struct {
	retries    uint64
	suppressed uint64
}

func (o *chaosObserver) RetryAttempt(string)                                                { o.retries++ }
func (o *chaosObserver) RetrySuppressed(string)                                             { o.suppressed++ }
func (o *chaosObserver) BreakerTransition(string, stubby.BreakerState, stubby.BreakerState) {}
func (o *chaosObserver) CallShed(string)                                                    {}

// workerTally accumulates one worker's deterministic outcome counts.
type workerTally struct {
	calls      [numPhases]uint64
	attempts   [numPhases]uint64
	suppressed [numPhases]uint64
	byCode     [numPhases][trace.NumErrorCodes]uint64
}

// chaosPayload builds a payload whose first 8 bytes checksum the rest, so
// the handler detects injected corruption at the application boundary
// (the transport's AEAD makes wire-level corruption connection-fatal,
// which is why the fault plane mangles payloads instead).
func chaosPayload(size int) []byte {
	if size < 16 {
		size = 16
	}
	p := make([]byte, size)
	for i := 8; i < size; i++ {
		p[i] = byte(i)
	}
	h := fnv.New64a()
	h.Write(p[8:])
	binary.BigEndian.PutUint64(p[:8], h.Sum64())
	return p
}

func chaosIntact(p []byte) bool {
	if len(p) < 16 {
		return false
	}
	h := fnv.New64a()
	h.Write(p[8:])
	return binary.BigEndian.Uint64(p[:8]) == h.Sum64()
}

// chaosResult is one run's outcome: the deterministic report plus the
// raw tallies and wall-clock timing (the latter is NOT deterministic and
// stays out of the report).
type chaosResult struct {
	Report  string
	Elapsed time.Duration
	Tally   workerTally // merged across workers
}

// Amplification returns attempts per logical call for one phase, or for
// the whole run when phase < 0.
func (r *chaosResult) Amplification(phase int) float64 {
	var calls, attempts uint64
	for ph := 0; ph < numPhases; ph++ {
		if phase >= 0 && ph != phase {
			continue
		}
		calls += r.Tally.calls[ph]
		attempts += r.Tally.attempts[ph]
	}
	if calls == 0 {
		return 0
	}
	return float64(attempts) / float64(calls)
}

// runChaos executes the chaos scenario. The report is deterministic:
// same config (and, when Conc > 1, Budget off) => identical string.
func runChaos(cfg chaosConfig) (*chaosResult, error) {
	if cfg.Conc < 1 {
		cfg.Conc = 1
	}
	if cfg.Deadline <= 0 {
		cfg.Deadline = 40 * time.Millisecond
	}
	per := cfg.Calls / cfg.Conc
	total := per * cfg.Conc // drive a whole number of calls per worker

	inj := rpcscale.NewFaultInjector(chaosSchedule(cfg.Seed, total))

	srv := stubby.NewServer(stubby.Options{})
	srv.Register(chaosMethod, func(ctx context.Context, p []byte) ([]byte, error) {
		if !chaosIntact(p) {
			return nil, &stubby.Status{Code: trace.InvalidArgument, Message: "payload integrity check failed"}
		}
		return p, nil
	})
	l, lerr := net.Listen("tcp", "127.0.0.1:0")
	if lerr != nil {
		return nil, lerr
	}
	go srv.Serve(l)
	defer srv.Close()

	// One budget shared across workers, as a pool would share it: the
	// amplification cap covers the aggregate stream.
	var budget *rpcscale.RetryBudget
	if cfg.Budget {
		budget = rpcscale.NewRetryBudget(10, 0.1)
	}

	payload := chaosPayload(cfg.Payload)
	phaseOf := func(id uint64) int {
		switch {
		case id < uint64(total/3):
			return phaseBaseline
		case id < uint64(2*total/3):
			return phaseIncident
		default:
			return phaseRecovery
		}
	}

	tallies := make([]workerTally, cfg.Conc)
	errs := make(chan error, cfg.Conc)
	start := time.Now()
	for w := 0; w < cfg.Conc; w++ {
		go func(w int) {
			obs := &chaosObserver{}
			policy := rpcscale.DefaultRetryPolicy()
			policy.MaxAttempts = 4
			policy.BaseBackoff = time.Millisecond
			policy.MaxBackoff = 8 * time.Millisecond
			policy.Budget = budget
			ch, derr := stubby.Dial(l.Addr().String(), "chaos", stubby.Options{
				Faults:     inj,
				Retry:      &policy,
				Robustness: obs,
			})
			if derr != nil {
				errs <- derr
				return
			}
			defer ch.Close()
			t := &tallies[w]
			for i := 0; i < per; i++ {
				id := uint64(w*per + i)
				ph := phaseOf(id)
				beforeRetries, beforeSupp := obs.retries, obs.suppressed
				ctx, cancel := context.WithTimeout(
					rpcscale.ContextWithCallID(context.Background(), id), cfg.Deadline)
				_, cerr := ch.Call(ctx, chaosMethod, payload)
				cancel()
				code := trace.OK
				if cerr != nil {
					code = stubby.Code(cerr)
				}
				t.calls[ph]++
				t.attempts[ph] += 1 + (obs.retries - beforeRetries)
				t.suppressed[ph] += obs.suppressed - beforeSupp
				if int(code) < trace.NumErrorCodes {
					t.byCode[ph][code]++
				}
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < cfg.Conc; w++ {
		if werr := <-errs; werr != nil {
			return nil, werr
		}
	}
	elapsed := time.Since(start)

	// Merge per-worker tallies; the sums are interleaving-independent.
	var merged workerTally
	for i := range tallies {
		for ph := 0; ph < numPhases; ph++ {
			merged.calls[ph] += tallies[i].calls[ph]
			merged.attempts[ph] += tallies[i].attempts[ph]
			merged.suppressed[ph] += tallies[i].suppressed[ph]
			for c := 0; c < trace.NumErrorCodes; c++ {
				merged.byCode[ph][c] += tallies[i].byCode[ph][c]
			}
		}
	}

	return &chaosResult{
		Report:  chaosReport(cfg, total, inj, &merged, budget),
		Elapsed: elapsed,
		Tally:   merged,
	}, nil
}

// chaosReport renders the deterministic section.
func chaosReport(cfg chaosConfig, total int, inj *rpcscale.FaultInjector, m *workerTally, budget *rpcscale.RetryBudget) string {
	var b strings.Builder
	budgetLabel := "off"
	if budget != nil {
		budgetLabel = fmt.Sprintf("on (cap %.2f)", budget.Cap())
	}
	fmt.Fprintf(&b, "rpcbench chaos: seed %d, %d calls, %d workers, deadline %v, retry budget %s\n",
		cfg.Seed, total, cfg.Conc, cfg.Deadline, budgetLabel)
	fmt.Fprintf(&b, "  schedule: base reject %.1f%% drop %.1f%% delay %v@%.0f%% corrupt %.0f%%\n",
		100*chaosBaseReject, 100*chaosBaseDrop, chaosBaseDelay, 100*chaosBaseDelayP, 100*chaosBaseCorrupt)
	fmt.Fprintf(&b, "  incident \"overload\" over calls [%d,%d): reject %.0f%%, delay %v@%.0f%%\n\n",
		total/3, 2*total/3, 100*chaosIncReject, chaosIncDelay, 100*chaosIncDelayP)

	// Error-code distribution per phase — the live Fig. 14 counterpart.
	fmt.Fprintf(&b, "  %-18s %9s %9s %9s %9s %7s\n",
		"outcome", "baseline", "incident", "recovery", "total", "share")
	var grand uint64
	for ph := 0; ph < numPhases; ph++ {
		grand += m.calls[ph]
	}
	for c := 0; c < trace.NumErrorCodes; c++ {
		var row [numPhases]uint64
		var sum uint64
		for ph := 0; ph < numPhases; ph++ {
			row[ph] = m.byCode[ph][c]
			sum += row[ph]
		}
		if sum == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-18s %9d %9d %9d %9d %6.2f%%\n",
			trace.ErrorCode(c).String(), row[phaseBaseline], row[phaseIncident],
			row[phaseRecovery], sum, 100*float64(sum)/float64(grand))
	}

	// Retry amplification: attempts per logical call, per phase. With the
	// budget on, the overall figure stays under the configured cap; with
	// it off, the incident's reject storm multiplies traffic unchecked.
	fmt.Fprintf(&b, "\n  %-10s %9s %9s %12s %14s\n",
		"phase", "calls", "attempts", "suppressed", "amplification")
	var calls, attempts, suppressed uint64
	for ph := 0; ph < numPhases; ph++ {
		calls += m.calls[ph]
		attempts += m.attempts[ph]
		suppressed += m.suppressed[ph]
		amp := 0.0
		if m.calls[ph] > 0 {
			amp = float64(m.attempts[ph]) / float64(m.calls[ph])
		}
		fmt.Fprintf(&b, "  %-10s %9d %9d %12d %14.3f\n",
			phaseNames[ph], m.calls[ph], m.attempts[ph], m.suppressed[ph], amp)
	}
	overall := 0.0
	if calls > 0 {
		overall = float64(attempts) / float64(calls)
	}
	fmt.Fprintf(&b, "  %-10s %9d %9d %12d %14.3f\n", "overall", calls, attempts, suppressed, overall)

	st := inj.Stats()
	fmt.Fprintf(&b, "\n  injector (client scope): %d decisions, %d rejects, %d drops, %d delays, %d corrupts\n",
		st.Decisions[faultplane.ScopeClient], st.Rejects[faultplane.ScopeClient],
		st.Drops[faultplane.ScopeClient], st.Delays[faultplane.ScopeClient],
		st.Corrupts[faultplane.ScopeClient])
	return b.String()
}
