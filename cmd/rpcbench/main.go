// Command rpcbench measures the real RPC stack on this machine: it starts
// a Stubby-style server on a loopback TCP socket, drives it with unary
// calls, and prints the measured nine-component latency breakdown and
// cycle-proxy statistics — the live-hardware counterpart of the paper's
// Figs. 9/10 methodology.
//
// Usage:
//
//	rpcbench [-n N] [-payload BYTES] [-conc N] [-compress] [-apptime D]
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"sort"
	"sync"
	"time"

	"rpcscale/internal/compressor"
	"rpcscale/internal/secure"
	"rpcscale/internal/stats"
	"rpcscale/internal/stubby"
	"rpcscale/internal/trace"
)

func main() {
	var (
		n        = flag.Int("n", 20000, "number of calls")
		payload  = flag.Int("payload", 1530, "request payload bytes (paper median)")
		conc     = flag.Int("conc", 8, "concurrent callers")
		compress = flag.Bool("compress", false, "enable flate compression")
		appTime  = flag.Duration("apptime", 0, "simulated handler time (0 = echo only)")
	)
	flag.Parse()

	col := trace.NewCollector(1, 0)
	cs := &compressor.Stats{}
	es := &secure.Stats{}
	opts := stubby.Options{
		Collector:       col,
		ClusterName:     "loopback",
		CompressorStats: cs,
		EncryptionStats: es,
		Workers:         *conc,
	}
	if *compress {
		opts.Compression = compressor.Flate
	}

	srv := stubby.NewServer(opts)
	srv.Register("bench.Echo/Echo", func(ctx context.Context, p []byte) ([]byte, error) {
		if *appTime > 0 {
			time.Sleep(*appTime)
		}
		return p, nil
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	go srv.Serve(l)
	defer srv.Close()

	ch, err := stubby.Dial(l.Addr().String(), "loopback", opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer ch.Close()

	req := make([]byte, *payload)
	for i := range req {
		req[i] = byte(i)
	}

	// Warm up connections and pools.
	for i := 0; i < 100; i++ {
		if _, err := ch.Call(context.Background(), "bench.Echo/Echo", req); err != nil {
			fmt.Fprintln(os.Stderr, "warmup:", err)
			os.Exit(1)
		}
	}
	col.Reset()

	start := time.Now()
	var wg sync.WaitGroup
	per := *n / *conc
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := ch.Call(context.Background(), "bench.Echo/Echo", req); err != nil {
					fmt.Fprintln(os.Stderr, "call:", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	spans := col.Spans()
	fmt.Printf("rpcbench: %d calls, payload %dB, %d callers, compression=%v\n",
		len(spans), *payload, *conc, *compress)
	fmt.Printf("  throughput: %.0f RPC/s   wall: %v\n\n",
		float64(len(spans))/elapsed.Seconds(), elapsed.Round(time.Millisecond))

	// Component distributions.
	comps := make([]*stats.Sample, trace.NumComponents)
	total := stats.NewSample(len(spans))
	var taxSum, totalSum float64
	for c := range comps {
		comps[c] = stats.NewSample(len(spans))
	}
	for _, s := range spans {
		for c := 0; c < trace.NumComponents; c++ {
			comps[c].Add(float64(s.Breakdown[c]))
		}
		total.Add(float64(s.Breakdown.Total()))
		taxSum += float64(s.Breakdown.Tax())
		totalSum += float64(s.Breakdown.Total())
	}
	fmt.Printf("  %-30s %10s %10s %10s\n", "component", "P50", "P95", "P99")
	order := make([]int, trace.NumComponents)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return comps[order[a]].Quantile(0.5) > comps[order[b]].Quantile(0.5)
	})
	for _, c := range order {
		fmt.Printf("  %-30s %10v %10v %10v\n", trace.Component(c).Label(),
			time.Duration(int64(comps[c].Quantile(0.5))).Round(time.Nanosecond),
			time.Duration(int64(comps[c].Quantile(0.95))).Round(time.Nanosecond),
			time.Duration(int64(comps[c].Quantile(0.99))).Round(time.Nanosecond))
	}
	fmt.Printf("  %-30s %10v %10v %10v\n", "TOTAL",
		time.Duration(int64(total.Quantile(0.5))).Round(time.Nanosecond),
		time.Duration(int64(total.Quantile(0.95))).Round(time.Nanosecond),
		time.Duration(int64(total.Quantile(0.99))).Round(time.Nanosecond))
	fmt.Printf("\n  measured RPC latency tax: %.1f%% of completion time\n", 100*taxSum/totalSum)
	if *compress {
		fmt.Printf("  compression: %d calls, ratio %.2f\n", cs.CompressCalls.Load(), cs.Ratio())
	}
	fmt.Printf("  encryption: %d seals, %d bytes\n", es.Seals.Load(), es.BytesEncrypted.Load())
}
