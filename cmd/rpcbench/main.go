// Command rpcbench measures the real RPC stack on this machine: it starts
// a Stubby-style server on a loopback TCP socket, drives it with unary
// calls, and renders the study's figure-by-figure report from the live
// telemetry plane — the same Monarch / Dapper / GWP pipeline the paper
// mines, fed by real traffic instead of the simulator.
//
// Usage:
//
//	rpcbench [-n N] [-payload BYTES] [-conc N] [-compress] [-apptime D]
//	         [-sample N] [-errorrate F] [-full]
//	rpcbench -sweep [-conc N] [-streams N]
//	rpcbench -chaos [-seed N] [-budget] [-n N] [-conc N] [-payload BYTES]
//
// Sweep mode drives payload sizes from 128 B to 1 MiB through the unary
// envelope lane, the zero-copy bulk lane, and (with -streams > 0) credit-
// windowed streams, printing a throughput-vs-payload table in the style
// of the paper's size figures.
//
// Chaos mode replaces the throughput bench with a deterministic
// fault-injection scenario: a seeded fault schedule (rejects, drops,
// delays, corruption, plus a mid-run overload incident) drives the
// stack's retry and budget machinery, and the report shows the resulting
// error-code distribution and retry amplification per phase. The same
// seed reproduces the report byte for byte (with -budget, determinism
// additionally requires -conc 1, since a shared token bucket is
// order-sensitive).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand/v2"
	"net"
	"os"
	"os/signal"
	"sort"
	"sync"
	"syscall"
	"time"

	"rpcscale"

	"rpcscale/internal/stats"
	"rpcscale/internal/trace"
)

func main() {
	var (
		n         = flag.Int("n", 20000, "number of calls")
		payload   = flag.Int("payload", 1530, "request payload bytes (paper median)")
		conc      = flag.Int("conc", 8, "concurrent callers")
		compress  = flag.Bool("compress", false, "enable flate compression")
		appTime   = flag.Duration("apptime", 0, "simulated handler time (0 = echo only)")
		sample    = flag.Uint64("sample", 1, "trace 1-in-N calls (Monarch/GWP still see all)")
		errorRate = flag.Float64("errorrate", 0, "fraction of calls the handler fails")
		chaos     = flag.Bool("chaos", false, "run the deterministic fault-injection scenario instead")
		seed      = flag.Uint64("seed", 42, "fault-schedule / -errorrate injection seed")
		budget    = flag.Bool("budget", false, "chaos: cap retry amplification with a retry budget")
		sweep     = flag.Bool("sweep", false, "run the payload sweep (128 B … 1 MiB) across unary/bulk/stream lanes instead")
		streams   = flag.Int("streams", 4, "sweep: concurrent streams per payload size (0 disables the stream lane)")
		stripes   = flag.Int("stripes", 1, "TCP connections per channel; bulk calls and streams stripe across them")
		codecWork = flag.Int("codec-workers", 0, "per-connection seal/open workers (0 = auto from GOMAXPROCS, <0 = inline)")
	)
	flag.Parse()

	if *sweep {
		if err := runSweep(sweepConfig{
			Conc: *conc, Streams: *streams,
			Stripes: *stripes, CodecWorkers: *codecWork,
		}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *chaos {
		res, err := runChaos(chaosConfig{
			Seed:    *seed,
			Calls:   *n,
			Conc:    *conc,
			Payload: *payload,
			Budget:  *budget,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(res.Report)
		fmt.Printf("\n  wall (not seed-deterministic): %v, %.0f calls/s\n",
			res.Elapsed.Round(time.Millisecond),
			float64(*n)/res.Elapsed.Seconds())
		return
	}

	// One plane observes both ends: spans, Monarch series, and GWP cycle
	// attribution for every call flow through it.
	plane := rpcscale.NewTelemetry(rpcscale.WithSampleEvery(*sample))

	stack := []rpcscale.Option{
		rpcscale.WithTelemetry(plane),
		rpcscale.WithCluster("loopback"),
		rpcscale.WithWorkers(*conc),
		rpcscale.WithConnStripes(*stripes),
		rpcscale.WithCodecWorkers(*codecWork),
	}
	if *compress {
		stack = append(stack, rpcscale.WithCompression(rpcscale.CompressionFlate, 0))
	}

	srv := rpcscale.NewServer(stack...)
	var calls uint64
	var callMu sync.Mutex
	// Error injection draws from a rand seeded by -seed (never the global
	// source) so a fixed seed fails the same calls run after run.
	rng := rand.New(rand.NewPCG(*seed, 0))
	srv.Register("bench.Echo/Echo", func(ctx context.Context, p []byte) ([]byte, error) {
		if *errorRate > 0 {
			callMu.Lock()
			calls++
			fail := rng.Float64() < *errorRate
			callMu.Unlock()
			if fail {
				return nil, errors.New("injected failure")
			}
		}
		if *appTime > 0 {
			time.Sleep(*appTime)
		}
		return p, nil
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	go srv.Serve(l)
	defer srv.Close()

	ch, err := rpcscale.Dial(l.Addr().String(), stack...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer ch.Close()

	req := make([]byte, *payload)
	for i := range req {
		req[i] = byte(i)
	}

	// Warm up connections and pools, then drop the warmup from the plane.
	for i := 0; i < 100; i++ {
		if _, err := ch.Call(context.Background(), "bench.Echo/Echo", req); err != nil && *errorRate == 0 {
			fmt.Fprintln(os.Stderr, "warmup:", err)
			os.Exit(1)
		}
	}
	plane.Reset()

	// Ctrl-C or SIGTERM (CI job cancellation) stops the drive loop and
	// lets in-flight calls drain; the report covers what ran.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	var wg sync.WaitGroup
	per := *n / *conc
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if ctx.Err() != nil {
					return
				}
				if _, err := ch.Call(ctx, "bench.Echo/Echo", req); err != nil && *errorRate == 0 {
					fmt.Fprintln(os.Stderr, "call:", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	spans := plane.Collector().Spans()
	fmt.Printf("rpcbench: %d calls (%d traced), payload %dB, %d callers, compression=%v\n",
		plane.Calls(), len(spans), *payload, *conc, *compress)
	fmt.Printf("  throughput: %.0f RPC/s   wall: %v   errors: %d\n\n",
		float64(plane.Calls())/elapsed.Seconds(), elapsed.Round(time.Millisecond), plane.Errors())

	componentTable(spans)

	cs := plane.CompressorStats()
	if *compress {
		fmt.Printf("\n  compression: %d calls, ratio %.2f\n", cs.CompressCalls.Load(), cs.Ratio())
	}
	es := plane.EncryptionStats()
	fmt.Printf("  encryption: %d seals, %d bytes\n\n", es.Seals.Load(), es.BytesEncrypted.Load())

	// Per-method Monarch series, straight from the plane's DB: the view a
	// service owner would dashboard.
	monarchSummary(plane)

	// The study report over the live dataset. Sections that need the
	// simulator (diurnal, cross-cluster, load-balance) are skipped because
	// no Generator is supplied; span-derived figures run on real traffic.
	ds := plane.Dataset()
	fmt.Print(rpcscale.Report(ds, rpcscale.ReportOptions{DB: plane.Monarch()}))
}

// componentTable prints the measured nine-component breakdown (the
// live-hardware counterpart of the paper's Figs. 9/10 methodology).
func componentTable(spans []*trace.Span) {
	if len(spans) == 0 {
		return
	}
	comps := make([]*stats.Sample, trace.NumComponents)
	total := stats.NewSample(len(spans))
	var taxSum, totalSum float64
	for c := range comps {
		comps[c] = stats.NewSample(len(spans))
	}
	for _, s := range spans {
		for c := 0; c < trace.NumComponents; c++ {
			comps[c].Add(float64(s.Breakdown[c]))
		}
		total.Add(float64(s.Breakdown.Total()))
		taxSum += float64(s.Breakdown.Tax())
		totalSum += float64(s.Breakdown.Total())
	}
	fmt.Printf("  %-30s %10s %10s %10s\n", "component", "P50", "P95", "P99")
	order := make([]int, trace.NumComponents)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return comps[order[a]].Quantile(0.5) > comps[order[b]].Quantile(0.5)
	})
	for _, c := range order {
		fmt.Printf("  %-30s %10v %10v %10v\n", trace.Component(c).Label(),
			time.Duration(int64(comps[c].Quantile(0.5))).Round(time.Nanosecond),
			time.Duration(int64(comps[c].Quantile(0.95))).Round(time.Nanosecond),
			time.Duration(int64(comps[c].Quantile(0.99))).Round(time.Nanosecond))
	}
	fmt.Printf("  %-30s %10v %10v %10v\n", "TOTAL",
		time.Duration(int64(total.Quantile(0.5))).Round(time.Nanosecond),
		time.Duration(int64(total.Quantile(0.95))).Round(time.Nanosecond),
		time.Duration(int64(total.Quantile(0.99))).Round(time.Nanosecond))
	if totalSum > 0 {
		fmt.Printf("\n  measured RPC latency tax: %.1f%% of completion time\n", 100*taxSum/totalSum)
	}
}

// monarchSummary queries the plane's Monarch DB per method and prints
// window-aligned counts and latency percentiles.
func monarchSummary(plane *rpcscale.Plane) {
	db := plane.Monarch()
	now := time.Now()
	from := now.Add(-24 * time.Hour)
	fmt.Printf("  Monarch series (window %v):\n", db.Window())
	fmt.Printf("  %-24s %10s %8s %12s %12s %12s\n",
		"method", "calls", "errors", "P50", "P99", "windows")
	counts := db.Query(rpcscale.MetricRPCCount, nil, from, now)
	byMethod := map[string]float64{}
	windows := map[string]int{}
	for _, s := range counts {
		m := s.Labels["method"]
		for _, pt := range s.Points {
			byMethod[m] += pt.Value
		}
		if len(s.Points) > windows[m] {
			windows[m] = len(s.Points)
		}
	}
	errs := map[string]float64{}
	for _, s := range db.Query(rpcscale.MetricRPCErrors, nil, from, now) {
		for _, pt := range s.Points {
			errs[s.Labels["method"]] += pt.Value
		}
	}
	methods := make([]string, 0, len(byMethod))
	for m := range byMethod {
		methods = append(methods, m)
	}
	sort.Slice(methods, func(a, b int) bool { return byMethod[methods[a]] > byMethod[methods[b]] })
	for _, m := range methods {
		lat := stats.NewLatencyHist()
		for _, s := range db.Query(rpcscale.MetricLatency, rpcscale.Labels{"method": m}, from, now) {
			for _, pt := range s.Points {
				if pt.Dist != nil {
					lat.Merge(pt.Dist)
				}
			}
		}
		fmt.Printf("  %-24s %10.0f %8.0f %12v %12v %12d\n",
			m, byMethod[m], errs[m],
			time.Duration(int64(lat.Quantile(0.5))).Round(time.Microsecond),
			time.Duration(int64(lat.Quantile(0.99))).Round(time.Microsecond),
			windows[m])
	}
	fmt.Println()
}
