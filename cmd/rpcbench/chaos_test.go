package main

import (
	"strings"
	"testing"
	"time"
)

// Two runs with the same seed must render byte-identical reports. With
// the budget off, worker interleaving is irrelevant even concurrently:
// every fault decision keys on (callID, attempt), not arrival order.
func TestChaosDeterministicConcurrent(t *testing.T) {
	cfg := chaosConfig{Seed: 7, Calls: 600, Conc: 4, Deadline: 100 * time.Millisecond}
	a, err := runChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Report != b.Report {
		t.Fatalf("same seed, different reports:\n--- run 1\n%s\n--- run 2\n%s", a.Report, b.Report)
	}
}

// With the budget on, the shared token bucket is order-sensitive, so the
// determinism guarantee holds at one worker.
func TestChaosDeterministicSequentialWithBudget(t *testing.T) {
	cfg := chaosConfig{Seed: 7, Calls: 600, Conc: 1, Budget: true, Deadline: 100 * time.Millisecond}
	a, err := runChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Report != b.Report {
		t.Fatalf("same seed, different reports:\n--- run 1\n%s\n--- run 2\n%s", a.Report, b.Report)
	}
}

// Different seeds must produce different fault schedules.
func TestChaosSeedsDiffer(t *testing.T) {
	a, err := runChaos(chaosConfig{Seed: 1, Calls: 600, Conc: 4, Deadline: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	b, err := runChaos(chaosConfig{Seed: 2, Calls: 600, Conc: 4, Deadline: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if a.Report == b.Report {
		t.Fatal("seeds 1 and 2 produced identical reports")
	}
}

// The incident's reject storm must amplify traffic well past the budget
// cap when no budget is set, and the budget must hold overall
// amplification under its cap (1 + successCredit = 1.1) with slack for
// the initial token burst.
func TestChaosBudgetCapsAmplification(t *testing.T) {
	uncapped, err := runChaos(chaosConfig{Seed: 7, Calls: 900, Conc: 3, Deadline: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if amp := uncapped.Amplification(phaseIncident); amp < 1.5 {
		t.Fatalf("uncapped incident amplification = %.3f, want >= 1.5\n%s", amp, uncapped.Report)
	}

	capped, err := runChaos(chaosConfig{Seed: 7, Calls: 900, Conc: 3, Budget: true, Deadline: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	const budgetCap = 1.1 // NewRetryBudget(10, 0.1) in runChaos
	if amp := capped.Amplification(-1); amp > budgetCap+0.05 {
		t.Fatalf("budgeted overall amplification = %.3f, want <= %.2f\n%s", amp, budgetCap+0.05, capped.Report)
	}
	var suppressed uint64
	for ph := 0; ph < numPhases; ph++ {
		suppressed += capped.Tally.suppressed[ph]
	}
	if suppressed == 0 {
		t.Fatalf("budget suppressed nothing under the incident:\n%s", capped.Report)
	}
	if !strings.Contains(capped.Report, "retry budget on") {
		t.Fatal("report does not mention the budget")
	}
}

// The integrity checksum must survive intact payloads and detect the
// injector's corruption pattern.
func TestChaosPayloadIntegrity(t *testing.T) {
	p := chaosPayload(64)
	if !chaosIntact(p) {
		t.Fatal("fresh payload fails its own checksum")
	}
}
