// Command rpcanalyze regenerates the paper's evaluation: it builds a
// synthetic fleet, simulates its traffic, runs every per-figure analysis,
// and prints the complete report.
//
// Usage:
//
//	rpcanalyze [-methods N] [-volume N] [-samples N] [-trees N]
//	           [-motifs packs] [-seed N] [-days N] [-lb] [-quick] [-stream]
//
// -quick shrinks everything for a fast smoke run; paper-scale is
// -methods 10000 -volume 2000000.
//
// -stream switches both modes to the single-pass accumulator plane:
// simulation feeds per-shard accumulators and never materializes the
// dataset, and -in scans the dump one record at a time, so memory stays
// bounded regardless of -volume or dump size. The out-of-core workflow is
//
//	fleetgen -volume 2000000 -o - | rpcanalyze -stream -in -
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"time"

	"rpcscale/internal/core"
	"rpcscale/internal/fleet"
	"rpcscale/internal/gwp"
	"rpcscale/internal/monarch"
	"rpcscale/internal/sim"
	"rpcscale/internal/trace"
	"rpcscale/internal/workload"
)

func main() {
	var (
		methods    = flag.Int("methods", 2000, "catalog size (paper: 10000)")
		volume     = flag.Int("volume", 200000, "popularity-weighted call samples")
		samples    = flag.Int("samples", 150, "stratified samples per method")
		trees      = flag.Int("trees", 1000, "materialized call trees")
		motifs     = flag.String("motifs", "", "DAG motif packs to apply: comma list of fanin,cache,sidecar,replica, or 'all'")
		seed       = flag.Uint64("seed", 1, "master seed")
		days       = flag.Int("days", 700, "growth history days (Fig. 1)")
		lb         = flag.Bool("lb", true, "run the Fig. 22 load-balance experiment")
		quick      = flag.Bool("quick", false, "small fast run")
		in         = flag.String("in", "", "analyze a span dump (fleetgen output, '-' for stdin) instead of simulating")
		stream     = flag.Bool("stream", false, "single-pass bounded-memory analysis (never materialize the dataset)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	defer writeMemProfile(*memprofile)

	if *in != "" {
		analyzeDump(*in, *stream)
		return
	}

	if *quick {
		*methods, *volume, *samples, *trees = 500, 30000, 100, 200
	}

	start := time.Now()
	fmt.Fprintf(os.Stderr, "building topology and %d-method catalog...\n", *methods)
	topo := sim.NewTopology(sim.TopologyConfig{
		Regions: 6, DatacentersPer: 2, ClustersPerDC: 3,
		MachinesPerCluster: 16, Seed: *seed,
	})
	cat := fleet.New(fleet.Config{Methods: *methods, Clusters: len(topo.Clusters), Seed: *seed})
	packs, err := fleet.ParseMotifs(*motifs)
	if err != nil {
		fatal(err)
	}
	if len(packs) > 0 {
		counts := fleet.ApplyMotifs(cat, packs, *seed)
		for _, p := range packs {
			fmt.Fprintf(os.Stderr, "motif %s: %d methods\n", p.Name(), counts[p.Name()])
		}
	}

	// Ctrl-C cancels generation at the next sample boundary; the report
	// then runs over whatever the shards produced so far.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	cfg := workload.RunConfig{
		Seed:          *seed,
		MethodSamples: *samples,
		VolumeRoots:   *volume,
		Trees:         *trees,
	}

	fmt.Fprintf(os.Stderr, "writing %d-day Monarch history...\n", *days)
	db := monarch.NewDB(monarch.WithRetention(time.Duration(*days+10) * 24 * time.Hour))
	if err := workload.DeclareMetrics(db); err != nil {
		fatal(fmt.Errorf("monarch: %w", err))
	}
	if err := workload.WriteGrowthHistory(db, workload.GrowthConfig{Days: *days, Seed: *seed}); err != nil {
		fatal(fmt.Errorf("growth: %w", err))
	}

	gen := workload.NewGenerator(cat, topo, nil, *seed+7)
	opts := core.ReportOptions{
		DB:             db,
		Generator:      gen,
		DiurnalSamples: 120,
	}
	if *lb {
		opts.LoadBalanceSeed = *seed + 13
	}

	if *stream {
		// Single pass: shards feed accumulators; no dataset is built. For
		// a fixed (seed, shards) the output is byte-identical to the
		// materialized path below.
		fmt.Fprintf(os.Stderr, "streaming fleet traffic (%d volume samples) through accumulators...\n", *volume)
		fmt.Print(core.StreamReport(ctx, cat, topo, cfg, opts))
	} else {
		fmt.Fprintf(os.Stderr, "simulating fleet traffic (%d volume samples)...\n", *volume)
		ds := workload.Generate(ctx, cat, topo, cfg)
		fmt.Fprintf(os.Stderr, "running analyses...\n")
		fmt.Print(core.FullReport(ds, opts))
	}
	fmt.Fprintf(os.Stderr, "done in %v\n", time.Since(start).Round(time.Millisecond))
}

// analyzeDump runs the span-level analyses over a fleetgen dump. Figures
// that need the simulator (17-19, 22) or Monarch history (1, 18) are
// skipped; everything span-derived is reproduced from the file.
//
// With streaming enabled the dump is scanned one record at a time into a
// single accumulator set (every span counts toward both the per-method
// distributions and the volume mix, exactly like the materialized
// reconstruction), so dumps far larger than memory analyze fine. Tree
// reconstruction needs all spans at once, so the streaming path leaves
// the Fig. 4/5 shape panel empty; its output is otherwise the same
// analysis, though not byte-identical to the materialized dump path,
// which replays reconstructed trees.
func analyzeDump(path string, stream bool) {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}

	if !stream {
		ds, err := workload.LoadDataset(r)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "loaded %d spans, %d methods, %d trees\n",
			len(ds.VolumeSpans), len(ds.MethodSpans), len(ds.Trees))
		fmt.Print(core.FullReport(ds, core.ReportOptions{}))
		return
	}

	sink := core.NewReportSink()
	prof := gwp.New()
	var n uint64
	err := trace.ScanSpans(r, func(s *trace.Span) error {
		n++
		sink.MethodSpan(s)
		sink.VolumeSpan(s)
		switch {
		case s.HasCPUSplit():
			for cat, cycles := range s.CPUByCategory {
				prof.Record(s.Service, s.Method, gwp.Category(cat), cycles)
			}
		case s.CPUCycles > 0:
			prof.Record(s.Service, s.Method, gwp.Application, s.CPUCycles)
		}
		return nil
	})
	if err != nil {
		fatal(err)
	}
	if n == 0 {
		fatal(fmt.Errorf("rpcanalyze: span dump is empty"))
	}
	fmt.Fprintf(os.Stderr, "scanned %d spans out-of-core\n", n)
	fmt.Print(core.ReportFromSink(sink, prof.Snapshot(), core.ReportOptions{}))
}

func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
