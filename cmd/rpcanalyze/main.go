// Command rpcanalyze regenerates the paper's evaluation: it builds a
// synthetic fleet, simulates its traffic, runs every per-figure analysis,
// and prints the complete report.
//
// Usage:
//
//	rpcanalyze [-methods N] [-volume N] [-samples N] [-trees N]
//	           [-seed N] [-days N] [-lb] [-quick]
//
// -quick shrinks everything for a fast smoke run; paper-scale is
// -methods 10000 -volume 2000000.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"rpcscale/internal/core"
	"rpcscale/internal/fleet"
	"rpcscale/internal/monarch"
	"rpcscale/internal/sim"
	"rpcscale/internal/workload"
)

func main() {
	var (
		methods = flag.Int("methods", 2000, "catalog size (paper: 10000)")
		volume  = flag.Int("volume", 200000, "popularity-weighted call samples")
		samples = flag.Int("samples", 150, "stratified samples per method")
		trees   = flag.Int("trees", 1000, "materialized call trees")
		seed    = flag.Uint64("seed", 1, "master seed")
		days    = flag.Int("days", 700, "growth history days (Fig. 1)")
		lb      = flag.Bool("lb", true, "run the Fig. 22 load-balance experiment")
		quick   = flag.Bool("quick", false, "small fast run")
		in      = flag.String("in", "", "analyze a span dump (fleetgen output) instead of simulating")
	)
	flag.Parse()

	if *in != "" {
		analyzeDump(*in)
		return
	}

	if *quick {
		*methods, *volume, *samples, *trees = 500, 30000, 100, 200
	}

	start := time.Now()
	fmt.Fprintf(os.Stderr, "building topology and %d-method catalog...\n", *methods)
	topo := sim.NewTopology(sim.TopologyConfig{
		Regions: 6, DatacentersPer: 2, ClustersPerDC: 3,
		MachinesPerCluster: 16, Seed: *seed,
	})
	cat := fleet.New(fleet.Config{Methods: *methods, Clusters: len(topo.Clusters), Seed: *seed})

	// Ctrl-C cancels generation at the next sample boundary; the report
	// then runs over whatever the shards produced so far.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	fmt.Fprintf(os.Stderr, "simulating fleet traffic (%d volume samples)...\n", *volume)
	ds := workload.Generate(ctx, cat, topo, workload.RunConfig{
		Seed:          *seed,
		MethodSamples: *samples,
		VolumeRoots:   *volume,
		Trees:         *trees,
	})

	fmt.Fprintf(os.Stderr, "writing %d-day Monarch history...\n", *days)
	db := monarch.NewDB(monarch.WithRetention(time.Duration(*days+10) * 24 * time.Hour))
	if err := workload.DeclareMetrics(db); err != nil {
		fmt.Fprintln(os.Stderr, "monarch:", err)
		os.Exit(1)
	}
	if err := workload.WriteGrowthHistory(db, workload.GrowthConfig{Days: *days, Seed: *seed}); err != nil {
		fmt.Fprintln(os.Stderr, "growth:", err)
		os.Exit(1)
	}

	gen := workload.NewGenerator(cat, topo, nil, *seed+7)
	opts := core.ReportOptions{
		DB:             db,
		Generator:      gen,
		DiurnalSamples: 120,
	}
	if *lb {
		opts.LoadBalanceSeed = *seed + 13
	}
	fmt.Fprintf(os.Stderr, "running analyses...\n")
	fmt.Print(core.FullReport(ds, opts))
	fmt.Fprintf(os.Stderr, "done in %v\n", time.Since(start).Round(time.Millisecond))
}

// analyzeDump runs the span-level analyses over a fleetgen dump. Figures
// that need the simulator (17-19, 22) or Monarch history (1, 18) are
// skipped; everything span-derived is reproduced from the file.
func analyzeDump(path string) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	ds, err := workload.LoadDataset(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "loaded %d spans, %d methods, %d trees\n",
		len(ds.VolumeSpans), len(ds.MethodSpans), len(ds.Trees))
	fmt.Print(core.FullReport(ds, core.ReportOptions{}))
}
