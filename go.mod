module rpcscale

go 1.24
