package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"rpcscale/internal/stats"
	"rpcscale/internal/workload"
)

// TaxResult is Fig. 10: fleet-wide RPC latency tax, on average and at the
// P95 tail, with the queue/stack/wire decomposition.
type TaxResult struct {
	// MeanTaxShare is total tax time / total completion time (the
	// paper's "average tax is 2.0%").
	MeanTaxShare float64
	// Wire/Stack/QueueShare decompose MeanTaxShare (paper: 1.1%, 0.49%,
	// 0.43%).
	WireShare  float64
	StackShare float64
	QueueShare float64

	// Tail variants: the same quantities over spans whose completion
	// time is at or beyond the fleet P95.
	TailTaxShare   float64
	TailWireShare  float64
	TailStackShare float64
	TailQueueShare float64

	P95Threshold time.Duration
	Spans        int
}

// TaxAnalysis computes Fig. 10 over the volume mix. The tail panel
// (Fig. 10c/d) selects spans at or beyond their *own method's* P95 —
// "RPCs with P95 tail latency" in the paper's phrasing — rather than a
// fleet-absolute threshold, which would merely select the slowest
// methods.
func TaxAnalysis(ds *workload.Dataset) *TaxResult {
	return sinkFor(ds).TaxAnalysis()
}

// TaxAnalysis computes Fig. 10 from accumulated state. The mean panel is
// a ratio of exact integer nanosecond sums; the tail panel sums the
// per-bucket component sums of each method's completion-time histogram at
// and beyond its P95-rank bucket, the bounded-memory stand-in for
// selecting raw spans at or beyond the method's exact P95.
func (k *ReportSink) TaxAnalysis() *TaxResult {
	names := sortedKeys(k.tax)
	p95s := stats.NewSample(len(names))
	var tTotal, tWire, tStack, tQueue int64
	for _, name := range names {
		t := k.tax[name]
		p95s.Add(t.hist.Quantile(0.95))
		tail := t.tail(0.95)
		tTotal += tail[0]
		tWire += tail[1]
		tStack += tail[2]
		tQueue += tail[3]
	}
	// Representative threshold for display: the median method's P95.
	res := &TaxResult{P95Threshold: time.Duration(int64(p95s.Quantile(0.5))), Spans: k.taxSpans}
	if k.taxTot > 0 {
		res.WireShare = float64(k.taxWire) / float64(k.taxTot)
		res.StackShare = float64(k.taxStack) / float64(k.taxTot)
		res.QueueShare = float64(k.taxQueue) / float64(k.taxTot)
		res.MeanTaxShare = res.WireShare + res.StackShare + res.QueueShare
	}
	if tTotal > 0 {
		res.TailWireShare = float64(tWire) / float64(tTotal)
		res.TailStackShare = float64(tStack) / float64(tTotal)
		res.TailQueueShare = float64(tQueue) / float64(tTotal)
		res.TailTaxShare = res.TailWireShare + res.TailStackShare + res.TailQueueShare
	}
	return res
}

// Render formats Fig. 10.
func (r *TaxResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig.10  Fleet-wide RPC latency tax (%d spans, P95=%v)\n", r.Spans, r.P95Threshold.Round(time.Millisecond))
	fmt.Fprintf(&b, "  mean:  tax %.2f%%  (wire %.2f%%, stack %.2f%%, queue %.2f%%)\n",
		r.MeanTaxShare*100, r.WireShare*100, r.StackShare*100, r.QueueShare*100)
	fmt.Fprintf(&b, "  P95+:  tax %.2f%%  (wire %.2f%%, stack %.2f%%, queue %.2f%%)\n",
		r.TailTaxShare*100, r.TailWireShare*100, r.TailStackShare*100, r.TailQueueShare*100)
	return b.String()
}

// TaxRatioByMethod is Fig. 11: the per-method distribution of the tax
// ratio (tax / completion time).
type TaxRatioByMethodResult struct {
	Rows []MethodDist // unit: ratio; sorted by median

	MedianMethodMedian float64 // paper: 0.086
	TopDecileMedian    float64 // paper: 0.38 (10% highest-overhead methods)
	TopDecileP90       float64 // paper: 0.96
}

// TaxRatioByMethod computes Fig. 11 from stratified samples.
func TaxRatioByMethod(ds *workload.Dataset) *TaxRatioByMethodResult {
	return sinkFor(ds).TaxRatioByMethod()
}

// TaxRatioByMethod computes Fig. 11 from accumulated state.
func (k *ReportSink) TaxRatioByMethod() *TaxRatioByMethodResult {
	base := k.perMethodResult("tax ratio", "ratio", func(a *methodAccum) *stats.Hist { return a.taxRatio })
	res := &TaxRatioByMethodResult{Rows: base.Rows}
	n := len(res.Rows)
	if n == 0 {
		return res
	}
	res.MedianMethodMedian = res.Rows[n/2].Summary.P50
	// Top decile by median ratio: last 10% of the sorted rows.
	top := res.Rows[n-n/10:]
	meds := stats.NewSample(len(top))
	p90s := stats.NewSample(len(top))
	for _, row := range top {
		meds.Add(row.Summary.P50)
		p90s.Add(row.Summary.P90)
	}
	res.TopDecileMedian = meds.Quantile(0.5)
	res.TopDecileP90 = p90s.Quantile(0.5)
	return res
}

// Render formats Fig. 11.
func (r *TaxRatioByMethodResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig.11  Per-method tax ratio (%d methods)\n", len(r.Rows))
	fmt.Fprintf(&b, "  median method's median ratio: %.1f%%\n", r.MedianMethodMedian*100)
	fmt.Fprintf(&b, "  top-overhead decile: median %.1f%%, P90 %.1f%%\n",
		r.TopDecileMedian*100, r.TopDecileP90*100)
	return b.String()
}

// TaxComponentsResult covers Figs. 12 and 13: per-method network
// wire+stack latency and per-method queuing latency.
type TaxComponentsResult struct {
	WireNet *PerMethodResult // Fig. 12
	Queue   *PerMethodResult // Fig. 13

	// Fig. 12 anchors.
	FastHalfWireP99 time.Duration // paper: <= 115 ms
	Slow10pWireP99  time.Duration // paper: >= 271 ms
	Slow1pWireP99   time.Duration // paper: ~826 ms
	// Fig. 13 anchors.
	MedianQueueMedian time.Duration // paper: ~360 us
	MedianQueueP99    time.Duration // paper: ~102 ms
	TopQueueMedian    time.Duration // paper: ~1.1 ms
	TopQueueP99       time.Duration // paper: ~611 ms
}

// TaxComponents computes Figs. 12/13.
func TaxComponents(ds *workload.Dataset) *TaxComponentsResult {
	return sinkFor(ds).TaxComponents()
}

// TaxComponents computes Figs. 12/13 from accumulated state.
func (k *ReportSink) TaxComponents() *TaxComponentsResult {
	res := &TaxComponentsResult{
		WireNet: k.perMethodResult("wire + stack latency", "ns", func(a *methodAccum) *stats.Hist { return a.wireNet }),
		Queue:   k.perMethodResult("queuing latency", "ns", func(a *methodAccum) *stats.Hist { return a.queue }),
	}
	// Fig. 12: methods sorted by median wire+stack; anchor P99s.
	if n := len(res.WireNet.Rows); n > 0 {
		p99s := make([]float64, n)
		for i, row := range res.WireNet.Rows {
			p99s[i] = row.Summary.P99
		}
		sorted := append([]float64(nil), p99s...)
		sort.Float64s(sorted)
		res.FastHalfWireP99 = time.Duration(int64(sorted[n/2]))
		res.Slow10pWireP99 = time.Duration(int64(sorted[n-n/10-1]))
		res.Slow1pWireP99 = time.Duration(int64(sorted[n-max(n/100, 1)]))
	}
	// Fig. 13 anchors.
	if n := len(res.Queue.Rows); n > 0 {
		mid := res.Queue.Rows[n/2]
		res.MedianQueueMedian = time.Duration(int64(mid.Summary.P50))
		res.MedianQueueP99 = time.Duration(int64(mid.Summary.P99))
		top := res.Queue.Rows[n-n/10:]
		meds := stats.NewSample(len(top))
		p99s := stats.NewSample(len(top))
		for _, row := range top {
			meds.Add(row.Summary.P50)
			p99s.Add(row.Summary.P99)
		}
		res.TopQueueMedian = time.Duration(int64(meds.Quantile(0.5)))
		res.TopQueueP99 = time.Duration(int64(p99s.Quantile(0.5)))
	}
	return res
}

// Render formats Figs. 12/13 anchors.
func (r *TaxComponentsResult) Render() string {
	var b strings.Builder
	b.WriteString("Fig.12  Per-method wire+stack latency\n")
	fmt.Fprintf(&b, "  P99 of fastest half of methods:  <= %v\n", r.FastHalfWireP99.Round(time.Millisecond))
	fmt.Fprintf(&b, "  P99 of slowest decile:           >= %v\n", r.Slow10pWireP99.Round(time.Millisecond))
	fmt.Fprintf(&b, "  P99 of slowest 1%%:               %v\n", r.Slow1pWireP99.Round(time.Millisecond))
	b.WriteString("Fig.13  Per-method queuing latency\n")
	fmt.Fprintf(&b, "  median method: median %v, P99 %v\n",
		r.MedianQueueMedian.Round(time.Microsecond), r.MedianQueueP99.Round(time.Millisecond))
	fmt.Fprintf(&b, "  top queue decile: median %v, P99 %v\n",
		r.TopQueueMedian.Round(time.Microsecond), r.TopQueueP99.Round(time.Millisecond))
	return b.String()
}
