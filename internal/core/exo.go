package core

import (
	"fmt"
	"strings"
	"time"

	"rpcscale/internal/monarch"
	"rpcscale/internal/stats"
	"rpcscale/internal/workload"
)

// ExoVariable names one of Table 2's exogenous variables.
type ExoVariable string

// The four exogenous variables of Table 2.
const (
	VarCPUUtil ExoVariable = "cpu-util"
	VarMemBW   ExoVariable = "mem-bw"
	VarWakeup  ExoVariable = "long-wakeup-rate"
	VarCPI     ExoVariable = "cycles-per-inst"
)

// ExoVariables lists all four.
func ExoVariables() []ExoVariable {
	return []ExoVariable{VarCPUUtil, VarMemBW, VarWakeup, VarCPI}
}

// ExoPanel is one (method, variable) panel of Fig. 17: bucketized
// exogenous value vs. mean near-P95 latency, plus the correlation.
type ExoPanel struct {
	Method   string
	Variable ExoVariable
	Centers  []float64       // bucket centers (variable units)
	MeanLat  []time.Duration // mean tail latency per bucket
	Pearson  float64
	Samples  int
}

// ExogenousAnalysis computes Fig. 17: for each requested method and each
// exogenous variable, the relationship between cluster state and RPC
// latency. Following the paper's methodology, only intra-cluster calls
// are considered (network noise excluded), samples are bucketized by the
// exogenous value, and the relationship is measured over the per-bucket
// mean latencies — which is exactly what Fig. 17 plots.
func ExogenousAnalysis(ds *workload.Dataset, methods []string) []ExoPanel {
	return exogenousFromObs(ds.ExoByMethod, methods)
}

// ExogenousAnalysis computes Fig. 17 from accumulated observations.
func (k *ReportSink) ExogenousAnalysis(methods []string) []ExoPanel {
	return exogenousFromObs(k.exo, methods)
}

func exogenousFromObs(obsBy map[string][]workload.ExoObservation, methods []string) []ExoPanel {
	var panels []ExoPanel
	for _, method := range methods {
		obs := obsBy[method]
		if len(obs) < 100 {
			continue
		}
		for _, v := range ExoVariables() {
			var xs, ys []float64
			for _, o := range obs {
				if !o.Span.SameCluster() || o.Span.Err.IsError() {
					continue
				}
				xs = append(xs, exoValue(o, v))
				ys = append(ys, float64(o.Span.Breakdown.Total()))
			}
			centers, means := stats.Bucketize(xs, ys, 8)
			panel := ExoPanel{
				Method: method, Variable: v,
				Pearson: stats.Pearson(centers, means),
				Samples: len(xs),
			}
			for i := range centers {
				panel.Centers = append(panel.Centers, centers[i])
				panel.MeanLat = append(panel.MeanLat, time.Duration(int64(means[i])))
			}
			panels = append(panels, panel)
		}
	}
	return panels
}

func exoValue(o workload.ExoObservation, v ExoVariable) float64 {
	switch v {
	case VarCPUUtil:
		return o.Exo.CPUUtil
	case VarMemBW:
		return o.Exo.MemBW
	case VarWakeup:
		return o.Exo.LongWakeupRate
	case VarCPI:
		return o.Exo.CPI
	}
	return 0
}

// RenderExoPanels formats Fig. 17.
func RenderExoPanels(panels []ExoPanel) string {
	var b strings.Builder
	b.WriteString("Fig.17  Exogenous variables vs. tail latency\n")
	for _, p := range panels {
		fmt.Fprintf(&b, "  %-28s %-18s r=%+.2f  (%d tail samples)\n",
			p.Method, p.Variable, p.Pearson, p.Samples)
	}
	return b.String()
}

// DiurnalSeries is one cluster's Fig. 18 panel: 24 hours of windows with
// P95 latency and exogenous gauges, plus latency-vs-variable correlations.
type DiurnalSeries struct {
	Cluster string
	Times   []time.Time
	P95     []time.Duration
	Exo     map[ExoVariable][]float64
	// Correlation of P95 latency with each variable over the day.
	Correlation map[ExoVariable]float64
}

// DiurnalAnalysis reads one cluster's day from Monarch (written by
// workload.WriteDiurnalDay) and computes Fig. 18's co-movement.
func DiurnalAnalysis(db *monarch.DB, method, cluster string) (*DiurnalSeries, error) {
	sel := monarch.Labels{"method": method, "cluster": cluster}
	lat := db.Query(workload.MetricLatP95, sel, time.Time{}, time.Time{})
	if len(lat) == 0 {
		return nil, fmt.Errorf("core: no diurnal data for %s in %s", method, cluster)
	}
	res := &DiurnalSeries{
		Cluster:     cluster,
		Exo:         make(map[ExoVariable][]float64),
		Correlation: make(map[ExoVariable]float64),
	}
	var latVals []float64
	for _, p := range lat[0].Points {
		res.Times = append(res.Times, p.At)
		res.P95 = append(res.P95, time.Duration(int64(p.Value)))
		latVals = append(latVals, p.Value)
	}
	metricOf := map[ExoVariable]string{
		VarCPUUtil: workload.MetricCPUUtil,
		VarMemBW:   workload.MetricMemBW,
		VarWakeup:  workload.MetricWakeup,
		VarCPI:     workload.MetricCPI,
	}
	for v, metric := range metricOf {
		series := db.Query(metric, sel, time.Time{}, time.Time{})
		if len(series) == 0 {
			continue
		}
		var vals []float64
		for _, p := range series[0].Points {
			vals = append(vals, p.Value)
		}
		res.Exo[v] = vals
		if len(vals) == len(latVals) {
			res.Correlation[v] = stats.Pearson(vals, latVals)
		}
	}
	return res, nil
}

// Render formats one Fig. 18 panel.
func (r *DiurnalSeries) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig.18  %s: 24h P95 latency vs exogenous state\n", r.Cluster)
	for _, v := range ExoVariables() {
		fmt.Fprintf(&b, "  corr(P95, %s) = %+.2f\n", v, r.Correlation[v])
	}
	step := len(r.P95) / 8
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(r.P95); i += step {
		fmt.Fprintf(&b, "  %s  P95 %v\n", r.Times[i].Format("15:04"), r.P95[i].Round(time.Microsecond))
	}
	return b.String()
}
