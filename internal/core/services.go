package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"rpcscale/internal/fleet"
	"rpcscale/internal/gwp"
	"rpcscale/internal/stats"
	"rpcscale/internal/trace"
	"rpcscale/internal/workload"
)

// ServiceShareRow is one service's slice of Fig. 8.
type ServiceShareRow struct {
	Service    string
	CallShare  float64
	ByteShare  float64
	CycleShare float64
}

// ServiceShareResult is Fig. 8: the fraction of fleet calls, bytes, and
// CPU cycles per service.
type ServiceShareResult struct {
	Rows []ServiceShareRow // sorted by call share descending
	// Top8CallShare is the paper's "top 8 applications account for 60%
	// of total invocations".
	Top8CallShare float64
}

// ServiceShareAnalysis computes Fig. 8 from the volume mix and the GWP
// profile.
func ServiceShareAnalysis(ds *workload.Dataset) *ServiceShareResult {
	return sinkFor(ds).ServiceShares(ds.Profile)
}

// ServiceShares computes Fig. 8 from accumulated per-service counts
// (hedge duplicates excluded at accumulation time) plus the run's GWP
// profile, which is carried separately from the span stream.
func (k *ReportSink) ServiceShares(prof *gwp.Snapshot) *ServiceShareResult {
	var totalCalls uint64
	var totalBytes int64
	for _, sv := range k.svc {
		totalCalls += sv.calls
		totalBytes += sv.bytes
	}
	cycles := make(map[string]float64)
	var totalCycles float64
	if prof != nil {
		for _, sp := range prof.Services {
			cycles[sp.Service] = sp.Total()
			totalCycles += sp.Total()
		}
	}
	res := &ServiceShareResult{}
	for _, svc := range sortedKeys(k.svc) {
		sv := k.svc[svc]
		row := ServiceShareRow{Service: svc, CallShare: float64(sv.calls) / float64(totalCalls)}
		if totalBytes > 0 {
			row.ByteShare = float64(sv.bytes) / float64(totalBytes)
		}
		if totalCycles > 0 {
			row.CycleShare = cycles[svc] / totalCycles
		}
		res.Rows = append(res.Rows, row)
	}
	sort.Slice(res.Rows, func(i, j int) bool {
		if res.Rows[i].CallShare != res.Rows[j].CallShare {
			return res.Rows[i].CallShare > res.Rows[j].CallShare
		}
		return res.Rows[i].Service < res.Rows[j].Service
	})
	for i, r := range res.Rows {
		if i >= 8 {
			break
		}
		res.Top8CallShare += r.CallShare
	}
	return res
}

// Row finds a service's row, or a zero row.
func (r *ServiceShareResult) Row(service string) ServiceShareRow {
	for _, row := range r.Rows {
		if row.Service == service {
			return row
		}
	}
	return ServiceShareRow{Service: service}
}

// Render formats Fig. 8.
func (r *ServiceShareResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig.8  Service shares (top-8 call share %.1f%%)\n", r.Top8CallShare*100)
	fmt.Fprintf(&b, "  %-16s %8s %8s %8s\n", "service", "calls", "bytes", "cycles")
	limit := 12
	for i, row := range r.Rows {
		if i >= limit {
			break
		}
		fmt.Fprintf(&b, "  %-16s %7.2f%% %7.2f%% %7.2f%%\n",
			row.Service, row.CallShare*100, row.ByteShare*100, row.CycleShare*100)
	}
	return b.String()
}

// RenderEightServices formats Table 1.
func RenderEightServices() string {
	var b strings.Builder
	b.WriteString("Table 1  Studied services\n")
	fmt.Fprintf(&b, "  %-14s %-14s %-9s %-28s %-9s %s\n",
		"server", "client", "size", "method", "class", "dominant")
	for _, s := range fleet.EightServices() {
		fmt.Fprintf(&b, "  %-14s %-14s %-9s %-28s %-9s %s\n",
			s.Service, s.Client, fmtBytes(float64(s.RPCSize)), s.Method, s.Class, s.Dominant)
	}
	return b.String()
}

// PercentileBreakdown is one x-position of a Fig. 14 CDF: the spans near
// one completion-time percentile, averaged per component.
type PercentileBreakdown struct {
	Pct        float64
	Total      time.Duration
	Components trace.Breakdown
}

// ServiceBreakdownResult is one studied service's Fig. 14 panel.
type ServiceBreakdownResult struct {
	Method string
	Spans  int
	Curve  []PercentileBreakdown

	Dominant      trace.Component
	DominantAtP50 float64 // dominant component's share of total at the median
	DominantAtP95 float64
	P95OverMedian float64 // paper: 1.86x - 10.6x
}

// ServiceBreakdown computes a Fig. 14 panel from intra-cluster spans of
// the studied method.
func ServiceBreakdown(ds *workload.Dataset, method string) *ServiceBreakdownResult {
	return serviceBreakdownFor(method, ds.SpansForMethod(method))
}

// ServiceBreakdown computes a Fig. 14 panel from the sink's retained
// studied-method spans.
func (k *ReportSink) ServiceBreakdown(method string) *ServiceBreakdownResult {
	return serviceBreakdownFor(method, k.StudiedSpans(method))
}

func serviceBreakdownFor(method string, methodSpans []*trace.Span) *ServiceBreakdownResult {
	spans := intraCluster(methodSpans)
	res := &ServiceBreakdownResult{Method: method, Spans: len(spans)}
	if len(spans) < 20 {
		return res
	}
	sort.Slice(spans, func(i, j int) bool {
		return spans[i].Breakdown.Total() < spans[j].Breakdown.Total()
	})
	pcts := []float64{5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 95, 99}
	for _, p := range pcts {
		lo := int(float64(len(spans)) * (p - 2) / 100)
		hi := int(float64(len(spans)) * (p + 2) / 100)
		if lo < 0 {
			lo = 0
		}
		if hi <= lo {
			hi = lo + 1
		}
		if hi > len(spans) {
			hi = len(spans)
		}
		var avg trace.Breakdown
		for _, s := range spans[lo:hi] {
			avg.Add(&s.Breakdown)
		}
		avg.Scale(hi - lo)
		res.Curve = append(res.Curve, PercentileBreakdown{
			Pct: p, Total: avg.Total(), Components: avg,
		})
	}
	// Dominant component at the median band.
	med := res.at(50)
	res.Dominant = med.Components.Dominant()
	if med.Total > 0 {
		res.DominantAtP50 = float64(med.Components[res.Dominant]) / float64(med.Total)
	}
	p95 := res.at(95)
	if p95.Total > 0 {
		res.DominantAtP95 = float64(p95.Components[res.Dominant]) / float64(p95.Total)
	}
	if med.Total > 0 {
		res.P95OverMedian = float64(p95.Total) / float64(med.Total)
	}
	return res
}

func (r *ServiceBreakdownResult) at(pct float64) PercentileBreakdown {
	for _, c := range r.Curve {
		if c.Pct == pct {
			return c
		}
	}
	return PercentileBreakdown{}
}

func intraCluster(spans []*trace.Span) []*trace.Span {
	out := make([]*trace.Span, 0, len(spans))
	for _, s := range spans {
		if s.SameCluster() && !s.Err.IsError() {
			out = append(out, s)
		}
	}
	return out
}

// DominantGroup classifies the dominant component into the paper's three
// §3.3.1 categories.
func DominantGroup(c trace.Component) string {
	switch c {
	case trace.ServerApp:
		return "app"
	case trace.ClientSendQueue, trace.ServerRecvQueue, trace.ServerSendQueue, trace.ClientRecvQueue:
		return "queue"
	default:
		return "stack"
	}
}

// Render formats one Fig. 14 panel.
func (r *ServiceBreakdownResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig.14  %s (%d intra-cluster spans)\n", r.Method, r.Spans)
	fmt.Fprintf(&b, "  dominant component: %s (%s) — %.0f%% of total at P50, %.0f%% at P95; P95/P50 = %.2fx\n",
		r.Dominant.Label(), DominantGroup(r.Dominant),
		r.DominantAtP50*100, r.DominantAtP95*100, r.P95OverMedian)
	fmt.Fprintf(&b, "  %-5s %12s %12s %12s %12s\n", "pct", "total", "app", "queue", "wire+stack")
	for _, c := range r.Curve {
		fmt.Fprintf(&b, "  P%-4.0f %12v %12v %12v %12v\n", c.Pct,
			c.Total.Round(time.Microsecond),
			c.Components[trace.ServerApp].Round(time.Microsecond),
			c.Components.Queue().Round(time.Microsecond),
			(c.Components.Wire() + c.Components.Stack()).Round(time.Microsecond))
	}
	return b.String()
}

// WhatIfRow is Fig. 15: the percentage of P95-tail RPCs that drop below
// the former P95 threshold when one component is reset to its median.
type WhatIfRow struct {
	Method    string
	Reduction [trace.NumComponents]float64 // percentage points, 0..100
}

// WhatIf computes Fig. 15 for the studied methods.
func WhatIf(ds *workload.Dataset, methods []string) []WhatIfRow {
	return whatIfFor(methods, ds.SpansForMethod)
}

// WhatIf computes Fig. 15 from the sink's retained studied-method spans.
func (k *ReportSink) WhatIf(methods []string) []WhatIfRow {
	return whatIfFor(methods, k.StudiedSpans)
}

func whatIfFor(methods []string, spansOf func(string) []*trace.Span) []WhatIfRow {
	var rows []WhatIfRow
	for _, method := range methods {
		spans := intraCluster(spansOf(method))
		if len(spans) < 50 {
			rows = append(rows, WhatIfRow{Method: method})
			continue
		}
		totals := stats.NewSample(len(spans))
		var medians trace.Breakdown
		// Component medians over all spans.
		for c := 0; c < trace.NumComponents; c++ {
			cs := stats.NewSample(len(spans))
			for _, s := range spans {
				cs.Add(float64(s.Breakdown[c]))
			}
			medians[c] = time.Duration(int64(cs.Quantile(0.5)))
		}
		for _, s := range spans {
			totals.Add(float64(s.Breakdown.Total()))
		}
		p95 := time.Duration(int64(totals.Quantile(0.95)))

		var tail []*trace.Span
		for _, s := range spans {
			if s.Breakdown.Total() >= p95 {
				tail = append(tail, s)
			}
		}
		row := WhatIfRow{Method: method}
		if len(tail) == 0 {
			rows = append(rows, row)
			continue
		}
		for c := 0; c < trace.NumComponents; c++ {
			rescued := 0
			for _, s := range tail {
				adj := s.Breakdown
				if adj[c] > medians[c] {
					adj[c] = medians[c]
				}
				if adj.Total() < p95 {
					rescued++
				}
			}
			row.Reduction[c] = 100 * float64(rescued) / float64(len(tail))
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderWhatIf formats Fig. 15 as the paper's matrix.
func RenderWhatIf(rows []WhatIfRow) string {
	var b strings.Builder
	b.WriteString("Fig.15  What-if: % of P95-tail RPCs made non-tail by resetting a component to its median\n")
	fmt.Fprintf(&b, "  %-28s", "method")
	for c := 0; c < trace.NumComponents; c++ {
		fmt.Fprintf(&b, " %6s", shortComponent(trace.Component(c)))
	}
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-28s", r.Method)
		for c := 0; c < trace.NumComponents; c++ {
			fmt.Fprintf(&b, " %6.1f", r.Reduction[c])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func shortComponent(c trace.Component) string {
	switch c {
	case trace.ClientSendQueue:
		return "CSQ"
	case trace.ReqProcStack:
		return "ReqPS"
	case trace.ReqNetworkWire:
		return "ReqNW"
	case trace.ServerRecvQueue:
		return "SRQ"
	case trace.ServerApp:
		return "App"
	case trace.ServerSendQueue:
		return "SSQ"
	case trace.RespProcStack:
		return "RspPS"
	case trace.RespNetworkWire:
		return "RspNW"
	case trace.ClientRecvQueue:
		return "CRQ"
	}
	return "?"
}

// ClusterBreakdown is one cluster's P95 latency breakdown for a method
// (one bar of Fig. 16).
type ClusterBreakdown struct {
	Cluster    string
	Spans      int
	P95        time.Duration
	Components trace.Breakdown // average over the P95 band
	Dominant   trace.Component
}

// ClusterVariationResult is one studied service's Fig. 16 panel.
type ClusterVariationResult struct {
	Method   string
	Clusters []ClusterBreakdown // sorted by P95 ascending
	// Spread is max/min P95 across clusters (paper: 1.24x - 10x).
	Spread float64
	// DominantStable reports whether the dominant component is the same
	// in most clusters (paper: it is).
	DominantStable bool
}

// ClusterVariation computes Fig. 16 for one studied method.
func ClusterVariation(ds *workload.Dataset, method string, minSpansPerCluster int) *ClusterVariationResult {
	return clusterVariationFor(method, ds.SpansForMethod(method), minSpansPerCluster)
}

// ClusterVariation computes Fig. 16 from the sink's retained
// studied-method spans.
func (k *ReportSink) ClusterVariation(method string, minSpansPerCluster int) *ClusterVariationResult {
	return clusterVariationFor(method, k.StudiedSpans(method), minSpansPerCluster)
}

func clusterVariationFor(method string, methodSpans []*trace.Span, minSpansPerCluster int) *ClusterVariationResult {
	if minSpansPerCluster <= 0 {
		minSpansPerCluster = 30
	}
	byCluster := make(map[string][]*trace.Span)
	for _, s := range intraCluster(methodSpans) {
		byCluster[s.ServerCluster] = append(byCluster[s.ServerCluster], s)
	}
	res := &ClusterVariationResult{Method: method}
	for _, cl := range sortedKeys(byCluster) {
		spans := byCluster[cl]
		if len(spans) < minSpansPerCluster {
			continue
		}
		sort.Slice(spans, func(i, j int) bool {
			return spans[i].Breakdown.Total() < spans[j].Breakdown.Total()
		})
		lo := int(float64(len(spans)) * 0.90)
		band := spans[lo:]
		var avg trace.Breakdown
		for _, s := range band {
			avg.Add(&s.Breakdown)
		}
		avg.Scale(len(band))
		res.Clusters = append(res.Clusters, ClusterBreakdown{
			Cluster:    cl,
			Spans:      len(spans),
			P95:        spans[int(float64(len(spans))*0.95)].Breakdown.Total(),
			Components: avg,
			Dominant:   avg.Dominant(),
		})
	}
	sort.Slice(res.Clusters, func(i, j int) bool { return res.Clusters[i].P95 < res.Clusters[j].P95 })
	if n := len(res.Clusters); n > 1 {
		res.Spread = float64(res.Clusters[n-1].P95) / float64(res.Clusters[0].P95)
		counts := make(map[trace.Component]int)
		for _, c := range res.Clusters {
			counts[c.Dominant]++
		}
		for _, n2 := range counts {
			if float64(n2) >= 0.6*float64(n) {
				res.DominantStable = true
			}
		}
	}
	return res
}

// Render formats a Fig. 16 panel.
func (r *ClusterVariationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig.16  %s across %d clusters  (P95 spread %.2fx, dominant stable: %v)\n",
		r.Method, len(r.Clusters), r.Spread, r.DominantStable)
	for i, c := range r.Clusters {
		if i%4 != 0 && i != len(r.Clusters)-1 {
			continue // decimate for readability
		}
		fmt.Fprintf(&b, "  %-22s P95 %10v  dominant %s\n",
			c.Cluster, c.P95.Round(time.Microsecond), shortComponent(c.Dominant))
	}
	return b.String()
}
