package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"rpcscale/internal/fleet"
	"rpcscale/internal/loadbalance"
	"rpcscale/internal/stats"
)

// LoadBalanceRow is one service's Fig. 22 panel: CPU usage/limit CDFs
// across clusters and across machines within clusters.
type LoadBalanceRow struct {
	Service string
	// ClusterUsage and MachineUsage are sorted ascending (CDF order).
	ClusterUsage []float64
	MachineUsage []float64
	// Spreads: P90-P10 gap, a compact imbalance measure.
	ClusterSpread float64
	MachineSpread float64
}

// LoadBalanceResult is Fig. 22 over the studied services.
type LoadBalanceResult struct {
	Rows []LoadBalanceRow
}

// lbParams derives per-service experiment parameters from the studied
// service's class: data-dependent services (Spanner, F1, ML Inference,
// §4.3) get shard affinity, which unbalances machines.
func lbParams(s fleet.StudiedService, seed uint64) loadbalance.Config {
	cfg := loadbalance.DefaultConfig()
	cfg.Seed = seed
	cfg.Policy = loadbalance.PowerOfTwo{}
	cfg.Duration = 2 * time.Second
	switch s.Service {
	case "spanner", "f1", "mlinference":
		cfg.KeySkew = 0.6 // data-dependent routing
	}
	if s.Class == fleet.Compute {
		cfg.MeanService = 8 * time.Millisecond
		cfg.ServiceSigma = 1.2
	}
	if s.Class == fleet.LatencySensitive {
		cfg.MeanService = 300 * time.Microsecond
		cfg.ServiceSigma = 0.4
	}
	return cfg
}

// LoadBalanceAnalysis runs the Fig. 22 experiment for each studied
// service.
func LoadBalanceAnalysis(seed uint64) *LoadBalanceResult {
	res := &LoadBalanceResult{}
	for i, s := range fleet.EightServices() {
		cfg := lbParams(s, seed+uint64(i))
		r := loadbalance.Run(cfg)
		row := LoadBalanceRow{Service: s.Service}
		row.ClusterUsage = append(row.ClusterUsage, r.ClusterUsage...)
		sort.Float64s(row.ClusterUsage)
		// Machine usage is normalized by its cluster's mean: the paper's
		// dashed lines compare machines within a cluster, so the
		// inter-cluster imbalance must not leak in.
		for c, machines := range r.MachineUsage {
			mean := r.ClusterUsage[c]
			if mean <= 0 {
				continue
			}
			for _, u := range machines {
				row.MachineUsage = append(row.MachineUsage, u/mean)
			}
		}
		sort.Float64s(row.MachineUsage)
		row.ClusterSpread = spreadP90P10(row.ClusterUsage)
		row.MachineSpread = spreadP90P10(row.MachineUsage)
		res.Rows = append(res.Rows, row)
	}
	return res
}

func spreadP90P10(sorted []float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	s := stats.NewSample(len(sorted))
	for _, v := range sorted {
		s.Add(v)
	}
	return s.Quantile(0.9) - s.Quantile(0.1)
}

// Render formats Fig. 22.
func (r *LoadBalanceResult) Render() string {
	var b strings.Builder
	b.WriteString("Fig.22  CPU usage/limit: clusters vs machines (P90-P10 spread)\n")
	fmt.Fprintf(&b, "  %-16s %14s %14s\n", "service", "cluster spread", "machine spread")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-16s %13.2f%% %13.2f%%\n",
			row.Service, row.ClusterSpread*100, row.MachineSpread*100)
	}
	return b.String()
}
