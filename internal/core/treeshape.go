package core

import (
	"fmt"
	"sort"
	"strings"

	"rpcscale/internal/stats"
	"rpcscale/internal/workload"
)

// ShapeRow is one method's call-tree shape statistics.
type ShapeRow struct {
	Method     string
	Samples    int
	DescMedian float64
	DescP90    float64
	DescP99    float64
	AncMedian  float64
	AncP99     float64
}

// TreeShapeResult covers Figs. 4 and 5: per-method descendant and
// ancestor counts, plus the paper's aggregate claims.
type TreeShapeResult struct {
	Rows []ShapeRow // sorted by median descendants ascending

	// FracMedianDescUnder13: half of methods have median <= 13 (§2.4).
	FracMedianDescUnder13 float64
	// FracAncP99Under10: half of methods have P99 ancestors < 10.
	FracAncP99Under10 float64
	// MaxDepth observed anywhere.
	MaxDepth float64
}

// minShapeSamples is the minimum per-method shape-sample count for a
// method to appear in the Figs. 4/5 tables: below 20 samples the P99
// descendant estimate is dominated by a single draw, so sparse methods
// (e.g. ones only seen deep inside reconstructed trees) are excluded
// rather than reported with meaningless tails.
const minShapeSamples = 20

// TreeShapeAnalysis computes Figs. 4/5 from the per-method shape samples
// a materialized Dataset gathered during generation.
func TreeShapeAnalysis(ds *workload.Dataset) *TreeShapeResult {
	return treeShapeFrom(ds.DescendantsByMethod, ds.AncestorsByMethod)
}

// TreeShapeAnalysis computes Figs. 4/5 from the shape samples this sink
// accumulated while streaming.
func (k *ReportSink) TreeShapeAnalysis() *TreeShapeResult {
	return treeShapeFrom(k.desc, k.anc)
}

func treeShapeFrom(descBy, ancBy map[string]*stats.Sample) *TreeShapeResult {
	res := &TreeShapeResult{}
	for _, name := range sortedKeys(descBy) {
		desc := descBy[name]
		anc := ancBy[name]
		if desc == nil || desc.Len() < minShapeSamples {
			continue
		}
		row := ShapeRow{
			Method:     name,
			Samples:    desc.Len(),
			DescMedian: desc.Quantile(0.5),
			DescP90:    desc.Quantile(0.9),
			DescP99:    desc.Quantile(0.99),
		}
		if anc != nil && anc.Len() > 0 {
			row.AncMedian = anc.Quantile(0.5)
			row.AncP99 = anc.Quantile(0.99)
			if m := anc.Quantile(1); m > res.MaxDepth {
				res.MaxDepth = m
			}
		}
		res.Rows = append(res.Rows, row)
	}
	sort.Slice(res.Rows, func(i, j int) bool { return res.Rows[i].DescMedian < res.Rows[j].DescMedian })
	if n := len(res.Rows); n > 0 {
		under13, ancUnder10 := 0, 0
		for _, r := range res.Rows {
			if r.DescMedian <= 13 {
				under13++
			}
			if r.AncP99 < 10 {
				ancUnder10++
			}
		}
		res.FracMedianDescUnder13 = float64(under13) / float64(n)
		res.FracAncP99Under10 = float64(ancUnder10) / float64(n)
	}
	return res
}

// WiderThanDeep reports whether the fleet's trees are wider than deep:
// the median-method P99 descendant count exceeds the median-method P99
// ancestor count by a wide margin.
func (r *TreeShapeResult) WiderThanDeep() bool {
	if len(r.Rows) == 0 {
		return false
	}
	desc := stats.NewSample(len(r.Rows))
	anc := stats.NewSample(len(r.Rows))
	for _, row := range r.Rows {
		desc.Add(row.DescP99)
		anc.Add(row.AncP99)
	}
	return desc.Quantile(0.5) > 2*anc.Quantile(0.5)
}

// Render formats Figs. 4 and 5.
func (r *TreeShapeResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig.4/5  Call-tree shape (%d methods)\n", len(r.Rows))
	fmt.Fprintf(&b, "  methods with median descendants <= 13: %.1f%%\n", r.FracMedianDescUnder13*100)
	fmt.Fprintf(&b, "  methods with P99 ancestors < 10:       %.1f%%\n", r.FracAncP99Under10*100)
	fmt.Fprintf(&b, "  max observed depth: %.0f   wider-than-deep: %v\n", r.MaxDepth, r.WiderThanDeep())
	fmt.Fprintf(&b, "  %-8s %10s %10s %10s %8s %8s\n", "methods", "desc P50", "desc P90", "desc P99", "anc P50", "anc P99")
	step := len(r.Rows) / 8
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(r.Rows); i += step {
		row := r.Rows[i]
		fmt.Fprintf(&b, "  rank%-4d %10.0f %10.0f %10.0f %8.0f %8.0f\n",
			i, row.DescMedian, row.DescP90, row.DescP99, row.AncMedian, row.AncP99)
	}
	return b.String()
}
