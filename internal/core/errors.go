package core

import (
	"fmt"
	"sort"
	"strings"

	"rpcscale/internal/trace"
	"rpcscale/internal/workload"
)

// ErrorRow is one error type's slice of Fig. 23.
type ErrorRow struct {
	Code       trace.ErrorCode
	CountShare float64 // share of all errors
	CycleShare float64 // share of wasted cycles
}

// ErrorResult is Fig. 23 plus §4.4's headline rate.
type ErrorResult struct {
	ErrorRate float64 // errors / all calls (paper: 0.019)
	Rows      []ErrorRow
	// HedgeCancelShare is the fraction of cancellations carrying the
	// hedged flag, supporting the paper's hedging hypothesis.
	HedgeCancelShare float64
}

// ErrorAnalysis computes Fig. 23 over the volume mix.
func ErrorAnalysis(ds *workload.Dataset) *ErrorResult {
	return sinkFor(ds).ErrorAnalysis()
}

// ErrorAnalysis computes Fig. 23 from accumulated per-code counters.
func (k *ReportSink) ErrorAnalysis() *ErrorResult {
	res := &ErrorResult{}
	if k.errCalls > 0 {
		res.ErrorRate = float64(k.errErrs) / float64(k.errCalls)
	}
	for code := trace.ErrorCode(0); int(code) < trace.NumErrorCodes; code++ {
		n := k.errCounts[code]
		if n == 0 {
			continue
		}
		row := ErrorRow{Code: code, CountShare: float64(n) / float64(k.errErrs)}
		if k.wastedCycles > 0 {
			row.CycleShare = k.errCycles[code] / k.wastedCycles
		}
		res.Rows = append(res.Rows, row)
	}
	sort.Slice(res.Rows, func(i, j int) bool {
		if res.Rows[i].CountShare != res.Rows[j].CountShare {
			return res.Rows[i].CountShare > res.Rows[j].CountShare
		}
		return res.Rows[i].Code < res.Rows[j].Code
	})
	if k.cancels > 0 {
		res.HedgeCancelShare = float64(k.hedgedCancels) / float64(k.cancels)
	}
	return res
}

// Row returns the entry for one code (zero row if absent).
func (r *ErrorResult) Row(code trace.ErrorCode) ErrorRow {
	for _, row := range r.Rows {
		if row.Code == code {
			return row
		}
	}
	return ErrorRow{Code: code}
}

// Render formats Fig. 23.
func (r *ErrorResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig.23  RPC errors: %.2f%% of all calls fail; hedged share of cancellations %.0f%%\n",
		r.ErrorRate*100, r.HedgeCancelShare*100)
	fmt.Fprintf(&b, "  %-18s %10s %10s\n", "type", "count", "cycles")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-18s %9.1f%% %9.1f%%\n", row.Code, row.CountShare*100, row.CycleShare*100)
	}
	return b.String()
}
