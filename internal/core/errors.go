package core

import (
	"fmt"
	"sort"
	"strings"

	"rpcscale/internal/trace"
	"rpcscale/internal/workload"
)

// ErrorRow is one error type's slice of Fig. 23.
type ErrorRow struct {
	Code       trace.ErrorCode
	CountShare float64 // share of all errors
	CycleShare float64 // share of wasted cycles
}

// ErrorResult is Fig. 23 plus §4.4's headline rate.
type ErrorResult struct {
	ErrorRate float64 // errors / all calls (paper: 0.019)
	Rows      []ErrorRow
	// HedgeCancelShare is the fraction of cancellations carrying the
	// hedged flag, supporting the paper's hedging hypothesis.
	HedgeCancelShare float64
}

// ErrorAnalysis computes Fig. 23 over the volume mix.
func ErrorAnalysis(ds *workload.Dataset) *ErrorResult {
	var calls, errs float64
	counts := make(map[trace.ErrorCode]float64)
	cycles := make(map[trace.ErrorCode]float64)
	var wastedTotal float64
	var cancels, hedgedCancels float64
	for _, s := range ds.VolumeSpans {
		calls++
		if !s.Err.IsError() {
			continue
		}
		errs++
		counts[s.Err]++
		cycles[s.Err] += s.CPUCycles
		wastedTotal += s.CPUCycles
		if s.Err == trace.Cancelled {
			cancels++
			if s.Hedged {
				hedgedCancels++
			}
		}
	}
	res := &ErrorResult{}
	if calls > 0 {
		res.ErrorRate = errs / calls
	}
	for code, n := range counts {
		row := ErrorRow{Code: code, CountShare: n / errs}
		if wastedTotal > 0 {
			row.CycleShare = cycles[code] / wastedTotal
		}
		res.Rows = append(res.Rows, row)
	}
	sort.Slice(res.Rows, func(i, j int) bool { return res.Rows[i].CountShare > res.Rows[j].CountShare })
	if cancels > 0 {
		res.HedgeCancelShare = hedgedCancels / cancels
	}
	return res
}

// Row returns the entry for one code (zero row if absent).
func (r *ErrorResult) Row(code trace.ErrorCode) ErrorRow {
	for _, row := range r.Rows {
		if row.Code == code {
			return row
		}
	}
	return ErrorRow{Code: code}
}

// Render formats Fig. 23.
func (r *ErrorResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig.23  RPC errors: %.2f%% of all calls fail; hedged share of cancellations %.0f%%\n",
		r.ErrorRate*100, r.HedgeCancelShare*100)
	fmt.Fprintf(&b, "  %-18s %10s %10s\n", "type", "count", "cycles")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-18s %9.1f%% %9.1f%%\n", row.Code, row.CountShare*100, row.CycleShare*100)
	}
	return b.String()
}
