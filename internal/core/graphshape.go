package core

import (
	"fmt"
	"sort"
	"strings"

	"rpcscale/internal/trace"
	"rpcscale/internal/workload"
)

// GraphShapeResult covers the call-graph DAG figures: the graph-size
// CCDF, the depth-vs-width joint distribution, fan-in prevalence, motif
// frequency, and the per-tier span census ("Complexity at Scale"-style
// graph characterization on top of the paper's tree figures).
type GraphShapeResult struct {
	// Graphs is how many call graphs were summarized.
	Graphs uint64

	// Size quantiles over graph node counts.
	SizeP50, SizeP90, SizeP99, SizeMax float64
	// SizeCCDF[i] is the fraction of graphs with at least SizeThresholds[i]
	// nodes.
	SizeThresholds []int
	SizeCCDF       []float64

	// FanInGraphFrac is the fraction of graphs with at least one fan-in
	// edge (i.e. true DAGs rather than trees).
	FanInGraphFrac float64
	// FanInEdgesPerGraph is the mean count of extra in-edges per graph.
	FanInEdgesPerGraph float64
	// SharedNodes is the total count of nodes with more than one parent.
	SharedNodes uint64

	// DepthWidth maps primary-tree depth to graph counts per log2 width
	// bucket (bucket b covers widths [2^(b-1), 2^b)).
	DepthWidth []DepthWidthRow

	// MotifNodes counts graph nodes by motif kind (index trace.Motif).
	MotifNodes [trace.NumMotifs]uint64

	// CensusSpans is the size of the per-span census; TierSpans and
	// MotifSpans split it by tier and motif.
	CensusSpans uint64
	TierSpans   [trace.NumTiers]uint64
	MotifSpans  [trace.NumMotifs]uint64
}

// DepthWidthRow is one depth's slice of the joint distribution.
type DepthWidthRow struct {
	Depth  int
	Widths []uint64 // graphs per log2 width bucket
	Total  uint64
}

// GraphShapeAnalysis computes the call-graph figures from a materialized
// Dataset's graph summaries.
func GraphShapeAnalysis(ds *workload.Dataset) *GraphShapeResult {
	return sinkFor(ds).GraphShapeAnalysis()
}

// GraphShapeAnalysis computes the call-graph figures from the graph
// summaries this sink accumulated while streaming.
func (k *ReportSink) GraphShapeAnalysis() *GraphShapeResult {
	a := &k.graph
	res := &GraphShapeResult{
		Graphs:      a.graphs,
		SharedNodes: a.sharedNodes,
		MotifNodes:  a.motifNodes,
		CensusSpans: a.censusSpans,
		TierSpans:   a.tierSpans,
		MotifSpans:  a.motifSpans,
	}
	if a.graphs == 0 {
		return res
	}
	res.SizeP50 = a.size.Quantile(0.5)
	res.SizeP90 = a.size.Quantile(0.9)
	res.SizeP99 = a.size.Quantile(0.99)
	res.SizeMax = a.size.Max()
	for t := 2; float64(t) <= res.SizeMax && len(res.SizeThresholds) < 12; t *= 4 {
		res.SizeThresholds = append(res.SizeThresholds, t)
		res.SizeCCDF = append(res.SizeCCDF,
			float64(a.size.CountAbove(float64(t)-0.5))/float64(a.graphs))
	}
	res.FanInGraphFrac = float64(a.fanInGraphs) / float64(a.graphs)
	res.FanInEdgesPerGraph = float64(a.fanInEdges) / float64(a.graphs)

	byDepth := make(map[int][]uint64)
	for key, n := range a.depthWidth {
		depth, wb := key[0], key[1]
		row := byDepth[depth]
		for len(row) <= wb {
			row = append(row, 0)
		}
		row[wb] += n
		byDepth[depth] = row
	}
	depths := make([]int, 0, len(byDepth))
	for d := range byDepth {
		depths = append(depths, d)
	}
	sort.Ints(depths)
	for _, d := range depths {
		row := DepthWidthRow{Depth: d, Widths: byDepth[d]}
		for _, n := range row.Widths {
			row.Total += n
		}
		res.DepthWidth = append(res.DepthWidth, row)
	}
	return res
}

// Render formats the call-graph shape figure.
func (r *GraphShapeResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig.G  Call-graph shape (%d graphs, DAG model)\n", r.Graphs)
	if r.Graphs == 0 {
		// The per-span census below still renders: an out-of-core dump
		// scan has no graph summaries but sees every span's tier/motif.
		b.WriteString("  (no graph summaries: volume-only run or pre-DAG dump)\n")
		r.renderCensus(&b)
		return b.String()
	}
	fmt.Fprintf(&b, "  graph size (spans): P50 %.0f  P90 %.0f  P99 %.0f  max %.0f\n",
		r.SizeP50, r.SizeP90, r.SizeP99, r.SizeMax)
	if len(r.SizeThresholds) > 0 {
		b.WriteString("  size CCDF:")
		for i, t := range r.SizeThresholds {
			fmt.Fprintf(&b, "  >=%d %.1f%%", t, r.SizeCCDF[i]*100)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "  graphs with fan-in: %.1f%%   fan-in edges/graph: %.2f   shared nodes: %d\n",
		r.FanInGraphFrac*100, r.FanInEdgesPerGraph, r.SharedNodes)

	if len(r.DepthWidth) > 0 {
		maxBuckets := 0
		for _, row := range r.DepthWidth {
			if len(row.Widths) > maxBuckets {
				maxBuckets = len(row.Widths)
			}
		}
		b.WriteString("  depth x max-width (graphs):\n")
		b.WriteString("  depth")
		for wb := 0; wb < maxBuckets; wb++ {
			lo := 0
			if wb > 0 {
				lo = 1 << (wb - 1)
			}
			fmt.Fprintf(&b, " %8s", fmt.Sprintf("w>=%d", lo))
		}
		b.WriteByte('\n')
		for _, row := range r.DepthWidth {
			fmt.Fprintf(&b, "  %5d", row.Depth)
			for wb := 0; wb < maxBuckets; wb++ {
				n := uint64(0)
				if wb < len(row.Widths) {
					n = row.Widths[wb]
				}
				fmt.Fprintf(&b, " %8d", n)
			}
			b.WriteByte('\n')
		}
	}

	b.WriteString("  motif nodes:")
	any := false
	for m := 1; m < trace.NumMotifs; m++ {
		fmt.Fprintf(&b, "  %s %d", trace.Motif(m).String(), r.MotifNodes[m])
		if r.MotifNodes[m] > 0 {
			any = true
		}
	}
	if !any {
		b.WriteString("  (none: tree-shaped run)")
	}
	b.WriteByte('\n')

	r.renderCensus(&b)
	return b.String()
}

// renderCensus appends the per-span tier/motif census lines.
func (r *GraphShapeResult) renderCensus(b *strings.Builder) {
	if r.CensusSpans == 0 {
		return
	}
	fmt.Fprintf(b, "  span census (%d spans):", r.CensusSpans)
	for t := 0; t < trace.NumTiers; t++ {
		fmt.Fprintf(b, "  %s %.1f%%", trace.Tier(t).String(),
			100*float64(r.TierSpans[t])/float64(r.CensusSpans))
	}
	b.WriteByte('\n')
	fmt.Fprintf(b, "  motif spans:")
	for m := 1; m < trace.NumMotifs; m++ {
		fmt.Fprintf(b, "  %s %.2f%%", trace.Motif(m).String(),
			100*float64(r.MotifSpans[m])/float64(r.CensusSpans))
	}
	b.WriteByte('\n')
}
