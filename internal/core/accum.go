package core

import (
	"math/bits"
	"sync"

	"rpcscale/internal/fleet"
	"rpcscale/internal/sim"
	"rpcscale/internal/stats"
	"rpcscale/internal/trace"
	"rpcscale/internal/workload"
)

// ReportSink is the streaming accumulator behind every figure of the
// report: a workload.SpanSink that folds each span into bounded per-figure
// state (log-bucketed histograms, integer sums, a bottom-k sketch, and
// capped studied-method retention) the moment it is produced. One sink per
// generation shard, merged in shard-index order, yields results that are
// byte-identical to materializing the Dataset first and replaying it —
// which is exactly what the legacy XAnalysis(ds) wrappers now do.
//
// A sink is not safe for concurrent use; workload.Run drives each shard's
// sink from a single goroutine, and Merge is called after all shards
// finish.
type ReportSink struct {
	methods    map[string]*methodAccum
	studiedSet map[string]bool
	studied    map[string][]*trace.Span

	vol map[string]*volAccum
	svc map[string]*svcAccum
	tax map[string]*taxAccum

	// Fleet-wide tax sums over non-error volume spans, exact nanoseconds.
	taxTot, taxWire, taxStack, taxQueue int64
	taxSpans                            int

	// Fig. 23 error accounting over all volume spans.
	errCalls, errErrs      uint64
	errCounts              [trace.NumErrorCodes]uint64
	errCycles              [trace.NumErrorCodes]float64
	wastedCycles           float64
	cancels, hedgedCancels uint64

	// §2.5 offload coverage at the report's MTU.
	offCalls, offCallsCov uint64
	offMsgs, offMsgsCov   uint64
	offBytes, offBytesCov int64

	// Fig. 21 correlation subsample: an order-independent bottom-k sketch
	// keyed by a hash of the span identity, holding (size, latency, cpu).
	corr *stats.BottomK

	// Figs. 4/5 shape samples and Fig. 17 exogenous observations.
	desc map[string]*stats.Sample
	anc  map[string]*stats.Sample
	exo  map[string][]workload.ExoObservation

	// Call-graph DAG shape state (whole-graph summaries plus the per-span
	// tier/motif census).
	graph graphAccum
}

// graphAccum is the DAG-shape accumulator behind the call-graph figures:
// whole-graph summaries fed by GraphShape (size histogram, depth-by-width
// joint counts, fan-in totals, per-motif node counts) plus a per-span
// tier/motif census folded from every span channel. All state is integer
// counters or exact-merge histograms, so accumulation is invariant to
// shard routing and fold order — the property that keeps streaming and
// materialized reports byte-identical.
type graphAccum struct {
	graphs      uint64
	fanInGraphs uint64 // graphs with at least one fan-in edge
	fanInEdges  uint64
	sharedNodes uint64
	size        *stats.Hist       // graph node counts (the size CCDF)
	depthWidth  map[[2]int]uint64 // (depth, log2 width bucket) -> graphs
	motifNodes  [trace.NumMotifs]uint64

	censusSpans uint64
	tierSpans   [trace.NumTiers]uint64
	motifSpans  [trace.NumMotifs]uint64
}

func newGraphAccum() graphAccum {
	return graphAccum{
		size:       stats.NewHist(1, stats.DefaultGrowth),
		depthWidth: make(map[[2]int]uint64),
	}
}

// censusSpan folds one span into the tier/motif census.
func (a *graphAccum) censusSpan(s *trace.Span) {
	a.censusSpans++
	if int(s.Tier) < trace.NumTiers {
		a.tierSpans[s.Tier]++
	}
	if int(s.Motif) < trace.NumMotifs {
		a.motifSpans[s.Motif]++
	}
}

func (a *graphAccum) merge(o *graphAccum) {
	a.graphs += o.graphs
	a.fanInGraphs += o.fanInGraphs
	a.fanInEdges += o.fanInEdges
	a.sharedNodes += o.sharedNodes
	a.size.Merge(o.size)
	for k, v := range o.depthWidth {
		a.depthWidth[k] += v
	}
	for i := range a.motifNodes {
		a.motifNodes[i] += o.motifNodes[i]
	}
	a.censusSpans += o.censusSpans
	for i := range a.tierSpans {
		a.tierSpans[i] += o.tierSpans[i]
	}
	for i := range a.motifSpans {
		a.motifSpans[i] += o.motifSpans[i]
	}
}

// reportMTU is the single-MTU accelerator size the report quotes (§2.5).
const reportMTU = 1500

// corrSubsample bounds the Fig. 21 correlation state. 16Ki points keep
// Spearman estimates within a couple hundredths of the full-stream value
// while the sketch stays a fixed few hundred KiB at any volume.
const corrSubsample = 1 << 14

// methodAccum is the per-method stratified-sample state: one histogram
// per per-method figure. Each histogram's count doubles as that figure's
// call count (a value is counted iff it is added).
type methodAccum struct {
	spans uint64 // all stratified samples, errors included (the >=100 gate)

	lat      *stats.Hist // Fig. 2 completion time, ns
	req      *stats.Hist // Fig. 6a request bytes
	resp     *stats.Hist // Fig. 6b response bytes
	ratio    *stats.Hist // Fig. 7 response/request
	cpu      *stats.Hist // Fig. 21 cycles
	taxRatio *stats.Hist // Fig. 11 tax ratio
	wireNet  *stats.Hist // Fig. 12 wire+stack, ns
	queue    *stats.Hist // Fig. 13 queuing, ns
}

func newMethodAccum() *methodAccum {
	return &methodAccum{
		lat:      stats.NewHist(100, stats.DefaultGrowth),
		req:      stats.NewHist(1, stats.DefaultGrowth),
		resp:     stats.NewHist(1, stats.DefaultGrowth),
		ratio:    stats.NewHist(1e-4, 1.1),
		cpu:      stats.NewHist(1e-4, 1.1),
		taxRatio: stats.NewHist(1e-6, 1.1),
		wireNet:  stats.NewHist(100, stats.DefaultGrowth),
		queue:    stats.NewHist(100, stats.DefaultGrowth),
	}
}

func (a *methodAccum) merge(o *methodAccum) {
	a.spans += o.spans
	a.lat.Merge(o.lat)
	a.req.Merge(o.req)
	a.resp.Merge(o.resp)
	a.ratio.Merge(o.ratio)
	a.cpu.Merge(o.cpu)
	a.taxRatio.Merge(o.taxRatio)
	a.wireNet.Merge(o.wireNet)
	a.queue.Merge(o.queue)
}

// volAccum is the per-method volume-mix state (Fig. 3 popularity and the
// §5.2 optimization-coverage table). Counts and nanosecond sums are
// integers, so accumulation order cannot perturb them.
type volAccum struct {
	calls  uint64
	timeNs int64
}

// svcAccum is the per-service volume-mix state (Fig. 8).
type svcAccum struct {
	calls uint64
	bytes int64
}

// taxAccum is one method's Fig. 10 state: the completion-time histogram
// plus, per histogram bucket, exact nanosecond sums of (total, wire,
// stack, queue) conditioned on the span landing in that bucket. The tail
// panel then sums the buckets at or beyond the method's P95 rank — the
// streaming replacement for retaining raw per-method samples.
type taxAccum struct {
	hist    *stats.Hist
	under   [4]int64
	buckets [][4]int64
}

func newTaxAccum() *taxAccum {
	return &taxAccum{hist: stats.NewLatencyHist()}
}

func (t *taxAccum) observe(tot, wire, stack, queue int64) {
	b := t.hist.BucketIndex(float64(tot))
	t.hist.Add(float64(tot))
	sums := &t.under
	if b >= 0 {
		for len(t.buckets) <= b {
			t.buckets = append(t.buckets, [4]int64{})
		}
		sums = &t.buckets[b]
	}
	sums[0] += tot
	sums[1] += wire
	sums[2] += stack
	sums[3] += queue
}

func (t *taxAccum) merge(o *taxAccum) {
	t.hist.Merge(o.hist)
	for i := range t.under {
		t.under[i] += o.under[i]
	}
	for len(t.buckets) < len(o.buckets) {
		t.buckets = append(t.buckets, [4]int64{})
	}
	for b := range o.buckets {
		for i := range o.buckets[b] {
			t.buckets[b][i] += o.buckets[b][i]
		}
	}
}

// tail sums the per-bucket sums at or beyond the q-rank bucket.
func (t *taxAccum) tail(q float64) [4]int64 {
	var out [4]int64
	b := t.hist.RankBucket(q)
	if b < 0 {
		// The rank falls in the underflow bucket: every span qualifies.
		out = t.under
		b = 0
	}
	for i := b; i < len(t.buckets); i++ {
		for j := range out {
			out[j] += t.buckets[i][j]
		}
	}
	return out
}

// NewReportSink returns an empty accumulator set.
func NewReportSink() *ReportSink {
	k := &ReportSink{
		methods:    make(map[string]*methodAccum),
		studiedSet: make(map[string]bool),
		studied:    make(map[string][]*trace.Span),
		vol:        make(map[string]*volAccum),
		svc:        make(map[string]*svcAccum),
		tax:        make(map[string]*taxAccum),
		corr:       stats.NewBottomK(corrSubsample),
		desc:       make(map[string]*stats.Sample),
		anc:        make(map[string]*stats.Sample),
		exo:        make(map[string][]workload.ExoObservation),
	}
	k.graph = newGraphAccum()
	for _, s := range fleet.EightServices() {
		k.studiedSet[s.Method] = true
	}
	return k
}

// MethodSpan folds one stratified per-method sample (workload.SpanSink).
func (k *ReportSink) MethodSpan(s *trace.Span) {
	k.graph.censusSpan(s)
	a := k.methods[s.Method]
	if a == nil {
		a = newMethodAccum()
		k.methods[s.Method] = a
	}
	a.spans++
	if k.studiedSet[s.Method] {
		// Figs. 14-16 need raw spans; retention is bounded by the eight
		// studied methods times their stratified sample count.
		//rpclint:ignore sinkobserve studied-method figures need raw spans; retention bounded to the eight studied methods
		k.studied[s.Method] = append(k.studied[s.Method], s)
	}
	if s.Err.IsError() {
		return // the paper excludes error RPC latency (§2.1)
	}
	a.lat.Add(float64(s.Breakdown.Total()))
	a.req.Add(float64(s.RequestBytes))
	a.resp.Add(float64(s.ResponseBytes))
	if s.RequestBytes != 0 {
		a.ratio.Add(float64(s.ResponseBytes) / float64(s.RequestBytes))
	}
	if s.CPUCycles > 0 {
		a.cpu.Add(s.CPUCycles)
	}
	ratio := s.Breakdown.TaxRatio()
	if ratio <= 0 {
		ratio = 1e-6
	}
	a.taxRatio.Add(ratio)
	a.wireNet.Add(float64(s.Breakdown.Wire() + s.Breakdown.Stack()))
	a.queue.Add(float64(s.Breakdown.Queue()))
}

// VolumeSpan folds one span of the fleet call mix (workload.SpanSink).
func (k *ReportSink) VolumeSpan(s *trace.Span) {
	k.graph.censusSpan(s)
	// Fig. 23: every span counts, errors and hedges included.
	k.errCalls++
	if s.Err.IsError() {
		k.errErrs++
		if int(s.Err) < len(k.errCounts) {
			k.errCounts[s.Err]++
			k.errCycles[s.Err] += s.CPUCycles
		}
		k.wastedCycles += s.CPUCycles
		if s.Err == trace.Cancelled {
			k.cancels++
			if s.Hedged {
				k.hedgedCancels++
			}
		}
	}

	// §2.5 offload coverage: every span, both directions.
	k.offCalls++
	k.offMsgs += 2
	for _, sz := range [2]int64{s.RequestBytes, s.ResponseBytes} {
		k.offBytes += sz
		if sz <= reportMTU {
			k.offMsgsCov++
			k.offBytesCov += sz
		}
	}
	if s.RequestBytes <= reportMTU && s.ResponseBytes <= reportMTU {
		k.offCallsCov++
	}

	if !s.Hedged {
		// Fig. 3 / §5.2: hedge duplicates are not independent calls.
		v := k.vol[s.Method]
		if v == nil {
			v = &volAccum{}
			k.vol[s.Method] = v
		}
		v.calls++
		v.timeNs += int64(s.Breakdown.Total())
		sv := k.svc[s.Service]
		if sv == nil {
			sv = &svcAccum{}
			k.svc[s.Service] = sv
		}
		sv.calls++
		sv.bytes += s.RequestBytes + s.ResponseBytes
	}

	if s.Err.IsError() {
		return
	}
	// Fig. 10 tax decomposition.
	t := k.tax[s.Method]
	if t == nil {
		t = newTaxAccum()
		k.tax[s.Method] = t
	}
	tot := int64(s.Breakdown.Total())
	wire := int64(s.Breakdown.Wire())
	stack := int64(s.Breakdown.Stack())
	queue := int64(s.Breakdown.Queue())
	t.observe(tot, wire, stack, queue)
	k.taxTot += tot
	k.taxWire += wire
	k.taxStack += stack
	k.taxQueue += queue
	k.taxSpans++

	// Fig. 21 correlations.
	if s.CPUCycles > 0 {
		key := stats.Mix64(uint64(s.TraceID) ^ uint64(s.SpanID))
		k.corr.Offer(key, uint64(s.SpanID), [3]float64{
			float64(s.RequestBytes + s.ResponseBytes),
			float64(s.Breakdown.Total()),
			s.CPUCycles,
		})
	}
}

// TreeSpan folds one materialized call-graph span (workload.SpanSink):
// only the tier/motif census consumes it — graph structure arrives via
// GraphShape and TreeShape — so no span is retained.
func (k *ReportSink) TreeSpan(s *trace.Span) { k.graph.censusSpan(s) }

// GraphShape folds one whole-graph summary (workload.SpanSink).
func (k *ReportSink) GraphShape(g workload.GraphStat) {
	a := &k.graph
	a.graphs++
	a.size.Add(float64(g.Spans))
	if g.FanInEdges > 0 {
		a.fanInGraphs++
	}
	a.fanInEdges += uint64(g.FanInEdges)
	a.sharedNodes += uint64(g.SharedNodes)
	a.depthWidth[[2]int{g.Depth, widthBucket(g.Width)}]++
	for i, n := range g.Motifs {
		a.motifNodes[i] += uint64(n)
	}
}

// widthBucket log2-buckets a graph width: bucket b covers widths
// [2^(b-1), 2^b).
func widthBucket(w int) int {
	if w < 0 {
		w = 0
	}
	return bits.Len(uint(w))
}

// TreeShape folds one call observation's shape (workload.SpanSink).
func (k *ReportSink) TreeShape(method string, descendants, ancestors int) {
	d := k.desc[method]
	if d == nil {
		d = stats.NewSample(0)
		k.desc[method] = d
	}
	d.Add(float64(descendants))
	a := k.anc[method]
	if a == nil {
		a = stats.NewSample(0)
		k.anc[method] = a
	}
	a.Add(float64(ancestors))
}

// ExoSample folds one studied-method exogenous pairing (workload.SpanSink).
func (k *ReportSink) ExoSample(method string, s *trace.Span, exo sim.Exo) {
	//rpclint:ignore sinkobserve exogenous-factor regression (Fig. 17) needs the paired raw spans; bounded by studied-method sampling
	k.exo[method] = append(k.exo[method], workload.ExoObservation{Span: s, Exo: exo})
}

// Merge folds another sink into k. Every floating-point quantity is keyed
// (per method, service, or error code) and combined with one addition per
// key per merge, so merging a fixed sequence of sinks — shards in index
// order — is a deterministic fold regardless of map iteration order.
func (k *ReportSink) Merge(o *ReportSink) {
	if o == nil {
		return
	}
	for name, oa := range o.methods {
		a := k.methods[name]
		if a == nil {
			k.methods[name] = oa
			continue
		}
		a.merge(oa)
	}
	for name, spans := range o.studied {
		k.studied[name] = append(k.studied[name], spans...)
	}
	for name, ov := range o.vol {
		v := k.vol[name]
		if v == nil {
			k.vol[name] = ov
			continue
		}
		v.calls += ov.calls
		v.timeNs += ov.timeNs
	}
	for name, os := range o.svc {
		sv := k.svc[name]
		if sv == nil {
			k.svc[name] = os
			continue
		}
		sv.calls += os.calls
		sv.bytes += os.bytes
	}
	for name, ot := range o.tax {
		t := k.tax[name]
		if t == nil {
			k.tax[name] = ot
			continue
		}
		t.merge(ot)
	}
	k.taxTot += o.taxTot
	k.taxWire += o.taxWire
	k.taxStack += o.taxStack
	k.taxQueue += o.taxQueue
	k.taxSpans += o.taxSpans

	k.errCalls += o.errCalls
	k.errErrs += o.errErrs
	for i := range k.errCounts {
		k.errCounts[i] += o.errCounts[i]
		k.errCycles[i] += o.errCycles[i]
	}
	k.wastedCycles += o.wastedCycles
	k.cancels += o.cancels
	k.hedgedCancels += o.hedgedCancels

	k.offCalls += o.offCalls
	k.offCallsCov += o.offCallsCov
	k.offMsgs += o.offMsgs
	k.offMsgsCov += o.offMsgsCov
	k.offBytes += o.offBytes
	k.offBytesCov += o.offBytesCov

	k.corr.Merge(o.corr)

	mergeShapeSamples(k.desc, o.desc)
	mergeShapeSamples(k.anc, o.anc)
	for name, obs := range o.exo {
		k.exo[name] = append(k.exo[name], obs...)
	}
	k.graph.merge(&o.graph)
}

func mergeShapeSamples(dst, src map[string]*stats.Sample) {
	for name, s := range src {
		d := dst[name]
		if d == nil {
			d = stats.NewSample(s.Len())
			dst[name] = d
		}
		for _, v := range s.Values() {
			d.Add(v)
		}
	}
}

// StudiedSpans returns the retained stratified spans of a studied method,
// in generation order (identical to Dataset.SpansForMethod for the same
// run). Non-studied methods return nil.
func (k *ReportSink) StudiedSpans(method string) []*trace.Span { return k.studied[method] }

// maxReplayShards caps how many per-shard sinks a replay will build.
// Generator span IDs carry the shard index in their top 16 bits; dumps
// from foreign tools may not, and fall back to a single sink.
const maxReplayShards = 1 << 12

// SinkFromDataset replays a materialized Dataset through per-shard
// ReportSinks and merges them in shard-index order — the same routing,
// per-shard observation order, and merge fold the streaming path uses, so
// every accumulated quantity (floating-point sums included) is
// bit-identical to a streaming run with the same (Seed, Shards).
//
// Spans are routed by the shard index embedded in their SpanID's top 16
// bits; trace IDs are hashed and carry no shard information.
func SinkFromDataset(ds *workload.Dataset) *ReportSink {
	shards := 1
	note := func(spans []*trace.Span) {
		for _, s := range spans {
			if n := int(uint64(s.SpanID)>>48) + 1; n > shards {
				shards = n
			}
		}
	}
	for _, spans := range ds.MethodSpans {
		note(spans)
	}
	note(ds.VolumeSpans)
	note(ds.TreeSpans)
	if shards > maxReplayShards {
		shards = 1
	}
	shardOf := func(s *trace.Span) int {
		if shards == 1 {
			return 0
		}
		return int(uint64(s.SpanID) >> 48)
	}

	sinks := make([]*ReportSink, shards)
	for i := range sinks {
		sinks[i] = NewReportSink()
	}
	for _, name := range sortedKeys(ds.MethodSpans) {
		for _, s := range ds.MethodSpans[name] {
			sinks[shardOf(s)].MethodSpan(s)
		}
	}
	for _, s := range ds.VolumeSpans {
		sinks[shardOf(s)].VolumeSpan(s)
	}
	for _, s := range ds.TreeSpans {
		sinks[shardOf(s)].TreeSpan(s)
	}
	// Graph summaries are plain integer-count values, so (like shape
	// samples below) their accumulation is invariant to sink assignment;
	// the whole set goes through the first sink.
	for _, g := range ds.GraphStats {
		sinks[0].GraphShape(g)
	}
	// Shape samples and exogenous observations carry no shard marker, but
	// their analyses are invariant to how they are split across sinks
	// (quantiles over the merged multiset, per-method list appends), so
	// the whole set goes through the first sink.
	for _, name := range sortedKeys(ds.DescendantsByMethod) {
		dv := ds.DescendantsByMethod[name].Values()
		var av []float64
		if a := ds.AncestorsByMethod[name]; a != nil {
			av = a.Values()
		}
		for i, d := range dv {
			anc := 0.0
			if i < len(av) {
				anc = av[i]
			}
			sinks[0].TreeShape(name, int(d), int(anc))
		}
	}
	for _, name := range sortedKeys(ds.ExoByMethod) {
		for _, o := range ds.ExoByMethod[name] {
			sinks[0].ExoSample(name, o.Span, o.Exo)
		}
	}

	root := sinks[0]
	for _, s := range sinks[1:] {
		root.Merge(s)
	}
	return root
}

// sinkCache memoizes SinkFromDataset per Dataset so the thin XAnalysis
// wrappers replay a dataset at most once between them.
var sinkCache sync.Map // *workload.Dataset -> *ReportSink

func sinkFor(ds *workload.Dataset) *ReportSink {
	if v, ok := sinkCache.Load(ds); ok {
		return v.(*ReportSink)
	}
	v, _ := sinkCache.LoadOrStore(ds, SinkFromDataset(ds))
	return v.(*ReportSink)
}
