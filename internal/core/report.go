package core

import (
	"fmt"
	"strings"
	"time"

	"rpcscale/internal/fleet"
	"rpcscale/internal/monarch"
	"rpcscale/internal/sim"
	"rpcscale/internal/workload"
)

// ReportOptions selects what the full report includes.
type ReportOptions struct {
	// Growth includes the 700-day Fig. 1 analysis (requires a Monarch DB
	// populated with growth history).
	DB *monarch.DB
	// Generator enables analyses that generate on demand (Figs. 18, 19).
	Generator *workload.Generator
	// LoadBalanceSeed enables Fig. 22 (0 disables, it is the slowest).
	LoadBalanceSeed uint64
	// DiurnalSamples sizes Fig. 18 windows (0 disables).
	DiurnalSamples int
}

// FullReport runs every analysis of the study over a dataset and renders
// the complete figure-by-figure report. It is what cmd/rpcanalyze and the
// fleetstudy example print.
func FullReport(ds *workload.Dataset, opts ReportOptions) string {
	var b strings.Builder
	line := func(s string) {
		b.WriteString(s)
		if !strings.HasSuffix(s, "\n") {
			b.WriteByte('\n')
		}
		b.WriteByte('\n')
	}

	b.WriteString("=== A Cloud-Scale Characterization of RPCs: reproduction report ===\n\n")

	// Fig. 1
	if opts.DB != nil {
		if growth, err := GrowthAnalysis(opts.DB); err == nil {
			line(growth.Render())
		} else {
			line(fmt.Sprintf("Fig.1  (skipped: %v)", err))
		}
	}

	// Figs. 2-3
	lat := LatencyByMethod(ds)
	line(lat.Render())
	line(lat.RenderHeatmap(64))
	a := lat.Anchors()
	line(fmt.Sprintf("Fig.2 anchors: P1<=657us %.0f%% | median>=10.7ms %.0f%% | P99>=1ms %.1f%% | P99>=225ms %.0f%% | slow-5%% P99 %v",
		a.FracP1Under657us*100, a.FracMedianOver10ms*100, a.FracP99Over1ms*100,
		a.FracP99Over225ms*100, a.Slow5pP99.Round(time.Millisecond)))
	line(PopularityAnalysis(ds, lat).Render())

	// Figs. 4-5
	line(TreeShapeAnalysis(ds).Render())

	// Figs. 6-7
	line(RequestSizeByMethod(ds).Render())
	line(ResponseSizeByMethod(ds).Render())
	line(SizeRatioByMethod(ds).Render())

	// Fig. 8 + Table 1
	line(ServiceShareAnalysis(ds).Render())
	line(RenderEightServices())

	// Figs. 10-13
	line(TaxAnalysis(ds).Render())
	line(TaxRatioByMethod(ds).Render())
	line(TaxComponents(ds).Render())

	// Fig. 14 panels + Fig. 15
	var studied []string
	for _, s := range fleet.EightServices() {
		studied = append(studied, s.Method)
		line(ServiceBreakdown(ds, s.Method).Render())
	}
	line(RenderWhatIf(WhatIf(ds, studied)))

	// Fig. 16
	for _, method := range []string{"bigtable/SearchValue", "networkdisk/Write", "kvstore/Search"} {
		line(ClusterVariation(ds, method, 0).Render())
	}

	// Fig. 17
	line(RenderExoPanels(ExogenousAnalysis(ds, []string{
		"bigtable/SearchValue", "kvstore/Search", "videometadata/GetMetadata",
	})))

	// Fig. 18
	if opts.Generator != nil && opts.DiurnalSamples > 0 && opts.DB != nil {
		fast, slow := extremeClusters(opts.Generator.Topo)
		for _, cl := range []*sim.Cluster{fast, slow} {
			if err := workload.WriteDiurnalDay(opts.DB, opts.Generator, "bigtable/SearchValue", cl, opts.DiurnalSamples); err == nil {
				if d, err := DiurnalAnalysis(opts.DB, "bigtable/SearchValue", cl.Name); err == nil {
					line(d.Render())
				}
			}
		}
	}

	// Fig. 19
	if opts.Generator != nil {
		m := opts.Generator.Cat.MethodByName("spanner/ReadRows")
		if m != nil {
			server := opts.Generator.Topo.Clusters[m.HomeClusters[0]]
			if cc, err := CrossClusterAnalysis(opts.Generator, "spanner/ReadRows", server, 0); err == nil {
				line(cc.Render())
			}
		}
	}

	// Figs. 20-21
	line(CycleTax(ds).Render())
	line(CPUByMethod(ds).Render())
	corr := CPUCorrelationAnalysis(ds)
	line(fmt.Sprintf("Fig.21 correlations: size-vs-CPU %.3f, latency-vs-CPU %.3f (paper: none)",
		corr.SizeVsCPU, corr.LatencyVsCPU))

	// Fig. 22
	if opts.LoadBalanceSeed != 0 {
		line(LoadBalanceAnalysis(opts.LoadBalanceSeed).Render())
	}

	// Fig. 23
	line(ErrorAnalysis(ds).Render())

	// §2.5 / §5.2 implication studies.
	line(OffloadCoverage(ds, 1500).Render())
	line(OptimizationCoverage(ds).Render())
	if opts.Generator != nil {
		gen := opts.Generator
		line(ColocationStudy(func() *workload.Generator {
			return workload.NewGenerator(gen.Cat, gen.Topo, nil, 4242)
		}, 250).Render())
	}

	return b.String()
}

// extremeClusters returns the fastest and slowest clusters by platform
// speed (the Fig. 18 fast/slow pair).
func extremeClusters(topo *sim.Topology) (fast, slow *sim.Cluster) {
	fast, slow = topo.Clusters[0], topo.Clusters[0]
	for _, c := range topo.Clusters {
		if c.SpeedFactor < fast.SpeedFactor {
			fast = c
		}
		if c.SpeedFactor > slow.SpeedFactor {
			slow = c
		}
	}
	return fast, slow
}
