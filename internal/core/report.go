package core

import (
	"context"
	"fmt"
	"strings"
	"time"

	"rpcscale/internal/fleet"
	"rpcscale/internal/gwp"
	"rpcscale/internal/monarch"
	"rpcscale/internal/sim"
	"rpcscale/internal/workload"
)

// ReportOptions selects what the full report includes.
type ReportOptions struct {
	// Growth includes the 700-day Fig. 1 analysis (requires a Monarch DB
	// populated with growth history).
	DB *monarch.DB
	// Generator enables analyses that generate on demand (Figs. 18, 19).
	Generator *workload.Generator
	// LoadBalanceSeed enables Fig. 22 (0 disables, it is the slowest).
	LoadBalanceSeed uint64
	// DiurnalSamples sizes Fig. 18 windows (0 disables).
	DiurnalSamples int
}

// FullReport runs every analysis of the study over a dataset and renders
// the complete figure-by-figure report. It is what cmd/rpcanalyze and the
// fleetstudy example print.
//
// Internally the dataset is replayed once through the streaming
// accumulator plane (see ReportSink); for a fixed (Seed, Shards) pair the
// output is byte-identical to StreamReport, which never materializes the
// dataset at all.
func FullReport(ds *workload.Dataset, opts ReportOptions) string {
	return renderReport(sinkFor(ds), ds.Profile, opts)
}

// StreamReport generates the workload and renders the full report without
// ever materializing a Dataset: each shard feeds its own ReportSink, the
// sinks merge in shard-index order, and the figures render from the
// merged accumulators. Memory stays bounded by the accumulator state (plus
// the eight studied methods' retained spans) regardless of VolumeRoots.
func StreamReport(ctx context.Context, cat *fleet.Catalog, topo *sim.Topology, cfg workload.RunConfig, opts ReportOptions) string {
	sinks := make([]*ReportSink, 0, 16)
	prof, _ := workload.Run(ctx, cat, topo, cfg, func(shard int) workload.SpanSink {
		k := NewReportSink()
		sinks = append(sinks, k)
		return k
	})
	root := NewReportSink()
	for _, k := range sinks {
		root.Merge(k)
	}
	return renderReport(root, prof, opts)
}

// ReportFromSink renders the report from an externally-driven sink plus
// a CPU profile snapshot. It is how cmd/rpcanalyze analyzes span dumps
// out-of-core: scan the dump, feed each span to the sink, then render.
func ReportFromSink(sink *ReportSink, prof *gwp.Snapshot, opts ReportOptions) string {
	return renderReport(sink, prof, opts)
}

// renderReport renders the figure-by-figure report from accumulated
// state. Both report paths (materialized and streaming) end here.
func renderReport(sink *ReportSink, prof *gwp.Snapshot, opts ReportOptions) string {
	var b strings.Builder
	line := func(s string) {
		b.WriteString(s)
		if !strings.HasSuffix(s, "\n") {
			b.WriteByte('\n')
		}
		b.WriteByte('\n')
	}

	b.WriteString("=== A Cloud-Scale Characterization of RPCs: reproduction report ===\n\n")

	// Fig. 1
	if opts.DB != nil {
		if growth, err := GrowthAnalysis(opts.DB); err == nil {
			line(growth.Render())
		} else {
			line(fmt.Sprintf("Fig.1  (skipped: %v)", err))
		}
	}

	// Figs. 2-3
	lat := sink.LatencyByMethod()
	line(lat.Render())
	line(lat.RenderHeatmap(64))
	a := lat.Anchors()
	line(fmt.Sprintf("Fig.2 anchors: P1<=657us %.0f%% | median>=10.7ms %.0f%% | P99>=1ms %.1f%% | P99>=225ms %.0f%% | slow-5%% P99 %v",
		a.FracP1Under657us*100, a.FracMedianOver10ms*100, a.FracP99Over1ms*100,
		a.FracP99Over225ms*100, a.Slow5pP99.Round(time.Millisecond)))
	line(sink.PopularityAnalysis(lat).Render())

	// Figs. 4-5
	line(sink.TreeShapeAnalysis().Render())

	// Call-graph DAG shape (fan-in, motifs, tiers).
	line(sink.GraphShapeAnalysis().Render())

	// Figs. 6-7
	line(sink.RequestSizeByMethod().Render())
	line(sink.ResponseSizeByMethod().Render())
	line(sink.SizeRatioByMethod().Render())

	// Fig. 8 + Table 1
	line(sink.ServiceShares(prof).Render())
	line(RenderEightServices())

	// Figs. 10-13
	line(sink.TaxAnalysis().Render())
	line(sink.TaxRatioByMethod().Render())
	line(sink.TaxComponents().Render())

	// Fig. 14 panels + Fig. 15
	var studied []string
	for _, s := range fleet.EightServices() {
		studied = append(studied, s.Method)
		line(sink.ServiceBreakdown(s.Method).Render())
	}
	line(RenderWhatIf(sink.WhatIf(studied)))

	// Fig. 16
	for _, method := range []string{"bigtable/SearchValue", "networkdisk/Write", "kvstore/Search"} {
		line(sink.ClusterVariation(method, 0).Render())
	}

	// Fig. 17
	line(RenderExoPanels(sink.ExogenousAnalysis([]string{
		"bigtable/SearchValue", "kvstore/Search", "videometadata/GetMetadata",
	})))

	// Fig. 18
	if opts.Generator != nil && opts.DiurnalSamples > 0 && opts.DB != nil {
		fast, slow := extremeClusters(opts.Generator.Topo)
		for _, cl := range []*sim.Cluster{fast, slow} {
			if err := workload.WriteDiurnalDay(opts.DB, opts.Generator, "bigtable/SearchValue", cl, opts.DiurnalSamples); err == nil {
				if d, err := DiurnalAnalysis(opts.DB, "bigtable/SearchValue", cl.Name); err == nil {
					line(d.Render())
				}
			}
		}
	}

	// Fig. 19
	if opts.Generator != nil {
		m := opts.Generator.Cat.MethodByName("spanner/ReadRows")
		if m != nil {
			server := opts.Generator.Topo.Clusters[m.HomeClusters[0]]
			if cc, err := CrossClusterAnalysis(opts.Generator, "spanner/ReadRows", server, 0); err == nil {
				line(cc.Render())
			}
		}
	}

	// Figs. 20-21
	line(CycleTaxFromProfile(prof).Render())
	line(sink.CPUByMethod().Render())
	corr := sink.CPUCorrelationAnalysis()
	line(fmt.Sprintf("Fig.21 correlations: size-vs-CPU %.3f, latency-vs-CPU %.3f (paper: none)",
		corr.SizeVsCPU, corr.LatencyVsCPU))

	// Fig. 22
	if opts.LoadBalanceSeed != 0 {
		line(LoadBalanceAnalysis(opts.LoadBalanceSeed).Render())
	}

	// Fig. 23
	line(sink.ErrorAnalysis().Render())

	// §2.5 / §5.2 implication studies.
	line(sink.OffloadCoverage().Render())
	line(sink.OptimizationCoverage().Render())
	if opts.Generator != nil {
		gen := opts.Generator
		line(ColocationStudy(func() *workload.Generator {
			return workload.NewGenerator(gen.Cat, gen.Topo, nil, 4242)
		}, 250).Render())
	}

	return b.String()
}

// extremeClusters returns the fastest and slowest clusters by platform
// speed (the Fig. 18 fast/slow pair).
func extremeClusters(topo *sim.Topology) (fast, slow *sim.Cluster) {
	fast, slow = topo.Clusters[0], topo.Clusters[0]
	for _, c := range topo.Clusters {
		if c.SpeedFactor < fast.SpeedFactor {
			fast = c
		}
		if c.SpeedFactor > slow.SpeedFactor {
			slow = c
		}
	}
	return fast, slow
}
