package core

import (
	"fmt"
	"sort"
	"strings"

	"rpcscale/internal/workload"
)

// PopularityResult is Fig. 3: method popularity against the
// median-latency ordering, with the §2.3 skew anchors.
type PopularityResult struct {
	// ShareByLatencyRank follows the catalog's latency ordering.
	ShareByLatencyRank []MethodShare

	Top10Share      float64 // paper: 0.58
	Top100Share     float64 // paper: 0.91
	TopMethod       string  // paper: networkdisk Write
	TopMethodShare  float64 // paper: 0.28
	Lowest100Share  float64 // paper: 0.40
	SlowDecileCalls float64 // paper: 0.011
	SlowDecileTime  float64 // paper: 0.89 of total RPC time
}

// MethodShare is one method's observed share of calls.
type MethodShare struct {
	Method string
	Share  float64
}

// PopularityAnalysis computes Fig. 3 from the volume mix. Latency
// ordering comes from the stratified per-method medians so the result is
// purely observational (catalog internals are not consulted).
func PopularityAnalysis(ds *workload.Dataset, latencyOrder *PerMethodResult) *PopularityResult {
	counts := make(map[string]float64)
	timeTotal := make(map[string]float64)
	var total float64
	for _, s := range ds.VolumeSpans {
		if s.Hedged {
			continue // hedge duplicates are not independent calls
		}
		counts[s.Method]++
		total++
		timeTotal[s.Method] += float64(s.Breakdown.Total())
	}
	res := &PopularityResult{}
	// Order by the latency ranking (methods without volume samples get
	// zero share rows so the x-axis matches Fig. 2's).
	for _, row := range latencyOrder.Rows {
		res.ShareByLatencyRank = append(res.ShareByLatencyRank, MethodShare{
			Method: row.Method,
			Share:  counts[row.Method] / total,
		})
	}
	// Popularity-sorted anchors.
	type kv struct {
		m string
		v float64
	}
	var sorted []kv
	for m, c := range counts {
		sorted = append(sorted, kv{m, c / total})
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].v > sorted[j].v })
	for i, e := range sorted {
		if i < 10 {
			res.Top10Share += e.v
		}
		if i < 100 {
			res.Top100Share += e.v
		}
	}
	if len(sorted) > 0 {
		res.TopMethod, res.TopMethodShare = sorted[0].m, sorted[0].v
	}
	// Lowest-latency "100 methods": the paper's 100-of-10,000 is the
	// fastest 1% of the catalog, so at smaller scales the equivalent
	// set is N/100 methods (floor 5).
	n := len(res.ShareByLatencyRank)
	low := n / 100
	if low < 5 {
		low = 5
	}
	if low > 100 {
		low = 100
	}
	if low > n {
		low = n
	}
	for _, e := range res.ShareByLatencyRank[:low] {
		res.Lowest100Share += e.Share
	}
	// Slowest decile: call share and time share.
	cut := n - n/10
	var slowTime, allTime float64
	for m, t := range timeTotal {
		allTime += t
		_ = m
	}
	for _, e := range res.ShareByLatencyRank[cut:] {
		res.SlowDecileCalls += e.Share
		slowTime += timeTotal[e.Method]
	}
	if allTime > 0 {
		res.SlowDecileTime = slowTime / allTime
	}
	return res
}

// Render formats Fig. 3.
func (r *PopularityResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig.3  Method popularity (latency-rank order, %d methods)\n", len(r.ShareByLatencyRank))
	fmt.Fprintf(&b, "  top method:          %-24s %.1f%% of calls\n", r.TopMethod, r.TopMethodShare*100)
	fmt.Fprintf(&b, "  top-10 methods:      %.1f%% of calls\n", r.Top10Share*100)
	fmt.Fprintf(&b, "  top-100 methods:     %.1f%% of calls\n", r.Top100Share*100)
	fmt.Fprintf(&b, "  lowest-latency 100:  %.1f%% of calls\n", r.Lowest100Share*100)
	fmt.Fprintf(&b, "  slowest decile:      %.2f%% of calls, %.1f%% of total RPC time\n",
		r.SlowDecileCalls*100, r.SlowDecileTime*100)
	return b.String()
}
