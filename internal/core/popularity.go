package core

import (
	"fmt"
	"sort"
	"strings"

	"rpcscale/internal/workload"
)

// PopularityResult is Fig. 3: method popularity against the
// median-latency ordering, with the §2.3 skew anchors.
type PopularityResult struct {
	// ShareByLatencyRank follows the catalog's latency ordering.
	ShareByLatencyRank []MethodShare

	Top10Share      float64 // paper: 0.58
	Top100Share     float64 // paper: 0.91
	TopMethod       string  // paper: networkdisk Write
	TopMethodShare  float64 // paper: 0.28
	Lowest100Share  float64 // paper: 0.40
	SlowDecileCalls float64 // paper: 0.011
	SlowDecileTime  float64 // paper: 0.89 of total RPC time
}

// MethodShare is one method's observed share of calls.
type MethodShare struct {
	Method string
	Share  float64
}

// PopularityAnalysis computes Fig. 3 from the volume mix. Latency
// ordering comes from the stratified per-method medians so the result is
// purely observational (catalog internals are not consulted).
func PopularityAnalysis(ds *workload.Dataset, latencyOrder *PerMethodResult) *PopularityResult {
	return sinkFor(ds).PopularityAnalysis(latencyOrder)
}

// PopularityAnalysis computes Fig. 3 from accumulated volume counts
// (hedge duplicates excluded at accumulation time).
func (k *ReportSink) PopularityAnalysis(latencyOrder *PerMethodResult) *PopularityResult {
	var totalCalls uint64
	var allTimeNs int64
	for _, v := range k.vol {
		totalCalls += v.calls
		allTimeNs += v.timeNs
	}
	total := float64(totalCalls)
	res := &PopularityResult{}
	// Order by the latency ranking (methods without volume samples get
	// zero share rows so the x-axis matches Fig. 2's).
	for _, row := range latencyOrder.Rows {
		var share float64
		if v := k.vol[row.Method]; v != nil {
			share = float64(v.calls) / total
		}
		res.ShareByLatencyRank = append(res.ShareByLatencyRank, MethodShare{
			Method: row.Method,
			Share:  share,
		})
	}
	// Popularity-sorted anchors, name-ascending on share ties so the
	// ranking is unique.
	type kv struct {
		m string
		v float64
	}
	var sorted []kv
	for _, m := range sortedKeys(k.vol) {
		sorted = append(sorted, kv{m, float64(k.vol[m].calls) / total})
	}
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].v != sorted[j].v {
			return sorted[i].v > sorted[j].v
		}
		return sorted[i].m < sorted[j].m
	})
	for i, e := range sorted {
		if i < 10 {
			res.Top10Share += e.v
		}
		if i < 100 {
			res.Top100Share += e.v
		}
	}
	if len(sorted) > 0 {
		res.TopMethod, res.TopMethodShare = sorted[0].m, sorted[0].v
	}
	// Lowest-latency "100 methods": the paper's 100-of-10,000 is the
	// fastest 1% of the catalog, so at smaller scales the equivalent
	// set is N/100 methods (floor 5).
	n := len(res.ShareByLatencyRank)
	low := n / 100
	if low < 5 {
		low = 5
	}
	if low > 100 {
		low = 100
	}
	if low > n {
		low = n
	}
	for _, e := range res.ShareByLatencyRank[:low] {
		res.Lowest100Share += e.Share
	}
	// Slowest decile: call share and time share.
	cut := n - n/10
	var slowTimeNs int64
	for _, e := range res.ShareByLatencyRank[cut:] {
		res.SlowDecileCalls += e.Share
		if v := k.vol[e.Method]; v != nil {
			slowTimeNs += v.timeNs
		}
	}
	if allTimeNs > 0 {
		res.SlowDecileTime = float64(slowTimeNs) / float64(allTimeNs)
	}
	return res
}

// Render formats Fig. 3.
func (r *PopularityResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig.3  Method popularity (latency-rank order, %d methods)\n", len(r.ShareByLatencyRank))
	fmt.Fprintf(&b, "  top method:          %-24s %.1f%% of calls\n", r.TopMethod, r.TopMethodShare*100)
	fmt.Fprintf(&b, "  top-10 methods:      %.1f%% of calls\n", r.Top10Share*100)
	fmt.Fprintf(&b, "  top-100 methods:     %.1f%% of calls\n", r.Top100Share*100)
	fmt.Fprintf(&b, "  lowest-latency 100:  %.1f%% of calls\n", r.Lowest100Share*100)
	fmt.Fprintf(&b, "  slowest decile:      %.2f%% of calls, %.1f%% of total RPC time\n",
		r.SlowDecileCalls*100, r.SlowDecileTime*100)
	return b.String()
}
