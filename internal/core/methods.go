package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"rpcscale/internal/stats"
	"rpcscale/internal/workload"
)

// MethodDist is one row of a per-method distribution figure: a method and
// the percentile summary of one of its per-call quantities.
type MethodDist struct {
	Method  string
	Calls   uint64
	Summary stats.Summary
}

// PerMethodResult is the generic per-method figure: rows sorted by the
// row median (the paper sorts every such figure by median), plus the
// cross-method distribution of selected percentiles ("CDF of the CDFs").
type PerMethodResult struct {
	What string // which quantity (for rendering)
	Unit string // "ns", "B", "cycles", "ratio"
	Rows []MethodDist
}

// minSamplesPerMethod mirrors the paper's rule: only methods with at
// least 100 samples are analyzed, so P99 is well defined.
const minSamplesPerMethod = 100

// perMethodResult assembles a per-method figure from one accumulated
// histogram per method: methods below the sample gate are skipped, each
// histogram's count is the figure's call count (a value is counted iff it
// was added), and rows sort by median as in every such paper figure.
func (k *ReportSink) perMethodResult(what, unit string, hist func(*methodAccum) *stats.Hist) *PerMethodResult {
	res := &PerMethodResult{What: what, Unit: unit}
	for _, name := range sortedKeys(k.methods) {
		a := k.methods[name]
		if a.spans < minSamplesPerMethod {
			continue
		}
		h := hist(a)
		if h.Count() == 0 {
			continue
		}
		res.Rows = append(res.Rows, MethodDist{Method: name, Calls: h.Count(), Summary: h.Summarize()})
	}
	sort.Slice(res.Rows, func(i, j int) bool { return res.Rows[i].Summary.P50 < res.Rows[j].Summary.P50 })
	return res
}

// CrossMethod returns the distribution of one percentile across methods
// (e.g., "the P99 column of Fig. 2b").
func (r *PerMethodResult) CrossMethod(get func(stats.Summary) float64) *stats.Sample {
	s := stats.NewSample(len(r.Rows))
	for _, row := range r.Rows {
		s.Add(get(row.Summary))
	}
	return s
}

// FractionOfMethods counts rows satisfying pred.
func (r *PerMethodResult) FractionOfMethods(pred func(stats.Summary) bool) float64 {
	if len(r.Rows) == 0 {
		return 0
	}
	n := 0
	for _, row := range r.Rows {
		if pred(row.Summary) {
			n++
		}
	}
	return float64(n) / float64(len(r.Rows))
}

// LatencyByMethod is Fig. 2: per-method RPC completion time, sorted by
// median.
func LatencyByMethod(ds *workload.Dataset) *PerMethodResult {
	return sinkFor(ds).LatencyByMethod()
}

// LatencyByMethod is Fig. 2 from accumulated state.
func (k *ReportSink) LatencyByMethod() *PerMethodResult {
	return k.perMethodResult("RPC completion time", "ns", func(a *methodAccum) *stats.Hist { return a.lat })
}

// LatencyAnchors summarizes Fig. 2's headline claims for EXPERIMENTS.md.
type LatencyAnchors struct {
	FracP1Under657us   float64 // paper: 0.90
	FracMedianOver10ms float64 // paper: 0.90
	FracP99Over1ms     float64 // paper: 0.995
	FracP99Over225ms   float64 // paper: 0.50
	Slow5pP1           time.Duration
	Slow5pP99          time.Duration
}

// Anchors computes the §2.3 anchor statistics from a Fig. 2 result.
func (r *PerMethodResult) Anchors() LatencyAnchors {
	a := LatencyAnchors{
		FracP1Under657us: r.FractionOfMethods(func(s stats.Summary) bool {
			return s.P1 <= float64(657*time.Microsecond)
		}),
		FracMedianOver10ms: r.FractionOfMethods(func(s stats.Summary) bool {
			return s.P50 >= float64(10700*time.Microsecond)
		}),
		FracP99Over1ms: r.FractionOfMethods(func(s stats.Summary) bool {
			return s.P99 >= float64(time.Millisecond)
		}),
		FracP99Over225ms: r.FractionOfMethods(func(s stats.Summary) bool {
			return s.P99 >= float64(225*time.Millisecond)
		}),
	}
	// Slowest 5% of methods (by median): their smallest P1 and P99.
	if n := len(r.Rows); n > 0 {
		cut := n - n/20
		p1 := stats.NewSample(n / 20)
		p99 := stats.NewSample(n / 20)
		for _, row := range r.Rows[cut:] {
			p1.Add(row.Summary.P1)
			p99.Add(row.Summary.P99)
		}
		a.Slow5pP1 = time.Duration(int64(p1.Quantile(0.5)))
		a.Slow5pP99 = time.Duration(int64(p99.Quantile(0.5)))
	}
	return a
}

// RequestSizeByMethod is Fig. 6a/b.
func RequestSizeByMethod(ds *workload.Dataset) *PerMethodResult {
	return sinkFor(ds).RequestSizeByMethod()
}

// RequestSizeByMethod is Fig. 6a from accumulated state.
func (k *ReportSink) RequestSizeByMethod() *PerMethodResult {
	return k.perMethodResult("request size", "B", func(a *methodAccum) *stats.Hist { return a.req })
}

// ResponseSizeByMethod complements Fig. 6 (the paper quotes response
// anchors in the text).
func ResponseSizeByMethod(ds *workload.Dataset) *PerMethodResult {
	return sinkFor(ds).ResponseSizeByMethod()
}

// ResponseSizeByMethod is Fig. 6b from accumulated state.
func (k *ReportSink) ResponseSizeByMethod() *PerMethodResult {
	return k.perMethodResult("response size", "B", func(a *methodAccum) *stats.Hist { return a.resp })
}

// SizeRatioByMethod is Fig. 7: response/request per call, per method.
func SizeRatioByMethod(ds *workload.Dataset) *PerMethodResult {
	return sinkFor(ds).SizeRatioByMethod()
}

// SizeRatioByMethod is Fig. 7 from accumulated state.
func (k *ReportSink) SizeRatioByMethod() *PerMethodResult {
	return k.perMethodResult("response/request ratio", "ratio", func(a *methodAccum) *stats.Hist { return a.ratio })
}

// CPUByMethod is Fig. 21: per-method normalized CPU cycles.
func CPUByMethod(ds *workload.Dataset) *PerMethodResult {
	return sinkFor(ds).CPUByMethod()
}

// CPUByMethod is Fig. 21 from accumulated state.
func (k *ReportSink) CPUByMethod() *PerMethodResult {
	return k.perMethodResult("CPU cost", "cycles", func(a *methodAccum) *stats.Hist { return a.cpu })
}

// CPUCorrelations reports the §4.2 finding that neither size nor latency
// predicts CPU cost (rank correlations near zero).
type CPUCorrelations struct {
	SizeVsCPU    float64
	LatencyVsCPU float64
}

// CPUCorrelationAnalysis computes rank correlations over the volume mix.
func CPUCorrelationAnalysis(ds *workload.Dataset) CPUCorrelations {
	return sinkFor(ds).CPUCorrelationAnalysis()
}

// CPUCorrelationAnalysis computes rank correlations over the accumulated
// correlation subsample: a hash-ordered bottom-k sketch of the volume mix,
// so the estimate is independent of stream order and sharding while the
// state stays a fixed size.
func (k *ReportSink) CPUCorrelationAnalysis() CPUCorrelations {
	items := k.corr.Items()
	sizes := make([]float64, 0, len(items))
	lats := make([]float64, 0, len(items))
	cpus := make([]float64, 0, len(items))
	for _, it := range items {
		sizes = append(sizes, it.Vals[0])
		lats = append(lats, it.Vals[1])
		cpus = append(cpus, it.Vals[2])
	}
	return CPUCorrelations{
		SizeVsCPU:    stats.SpearmanRank(sizes, cpus),
		LatencyVsCPU: stats.SpearmanRank(lats, cpus),
	}
}

// Render formats a per-method figure as a decile table plus cross-method
// percentile rows.
func (r *PerMethodResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Per-method %s (%d methods, sorted by median)\n", r.What, len(r.Rows))
	fmt.Fprintf(&b, "  %-8s %12s %12s %12s %12s\n", "methods", "P1", "P50", "P99", "max")
	step := len(r.Rows) / 10
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(r.Rows); i += step {
		row := r.Rows[i]
		fmt.Fprintf(&b, "  rank%-4d %12s %12s %12s %12s\n", i,
			r.fmtVal(row.Summary.P1), r.fmtVal(row.Summary.P50),
			r.fmtVal(row.Summary.P99), r.fmtVal(row.Summary.Max))
	}
	meds := r.CrossMethod(func(s stats.Summary) float64 { return s.P50 })
	p99s := r.CrossMethod(func(s stats.Summary) float64 { return s.P99 })
	fmt.Fprintf(&b, "  across methods: median-of-medians %s, median-of-P99s %s\n",
		r.fmtVal(meds.Quantile(0.5)), r.fmtVal(p99s.Quantile(0.5)))
	return b.String()
}

func (r *PerMethodResult) fmtVal(v float64) string {
	switch r.Unit {
	case "ns":
		return time.Duration(int64(v)).Round(time.Microsecond).String()
	case "B":
		return fmtBytes(v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

func fmtBytes(v float64) string {
	switch {
	case v >= 1<<20:
		return fmt.Sprintf("%.1fMB", v/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.1fKB", v/(1<<10))
	default:
		return fmt.Sprintf("%.0fB", v)
	}
}
