package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"rpcscale/internal/fleet"
	"rpcscale/internal/stats"
	"rpcscale/internal/workload"
)

// OffloadCoverageResult quantifies the §2.5 implication: an on-NIC
// (de)serialization offload like Zerializer that only handles messages
// within a single MTU "would be able to accelerate the majority of RPCs
// but would miss the tail".
type OffloadCoverageResult struct {
	MTU int64

	// MessageCoverage is the fraction of messages (requests and
	// responses counted separately — the unit a deserialization offload
	// processes) that fit in one MTU.
	MessageCoverage float64
	// CallCoverage is the fraction of RPCs whose request AND response
	// both fit.
	CallCoverage float64
	// ByteCoverage is the fraction of transferred bytes in covered
	// messages — the part the accelerator actually offloads.
	ByteCoverage float64
}

// OffloadCoverage computes accelerator coverage over the volume mix. The
// report's fixed MTU (1500) is served from accumulated counters; other
// MTUs replay the retained volume spans.
func OffloadCoverage(ds *workload.Dataset, mtu int64) *OffloadCoverageResult {
	if mtu <= 0 {
		mtu = 1500
	}
	if mtu == reportMTU {
		return sinkFor(ds).OffloadCoverage()
	}
	res := &OffloadCoverageResult{MTU: mtu}
	var calls, callsCovered float64
	var msgs, msgsCovered float64
	var bytes, coveredBytes float64
	for _, s := range ds.VolumeSpans {
		calls++
		msgs += 2
		for _, sz := range [2]int64{s.RequestBytes, s.ResponseBytes} {
			bytes += float64(sz)
			if sz <= mtu {
				msgsCovered++
				coveredBytes += float64(sz)
			}
		}
		if s.RequestBytes <= mtu && s.ResponseBytes <= mtu {
			callsCovered++
		}
	}
	if calls > 0 {
		res.CallCoverage = callsCovered / calls
		res.MessageCoverage = msgsCovered / msgs
	}
	if bytes > 0 {
		res.ByteCoverage = coveredBytes / bytes
	}
	return res
}

// OffloadCoverage computes §2.5 coverage at the report MTU from
// accumulated counters.
func (k *ReportSink) OffloadCoverage() *OffloadCoverageResult {
	res := &OffloadCoverageResult{MTU: reportMTU}
	if k.offCalls > 0 {
		res.CallCoverage = float64(k.offCallsCov) / float64(k.offCalls)
		res.MessageCoverage = float64(k.offMsgsCov) / float64(k.offMsgs)
	}
	if k.offBytes > 0 {
		res.ByteCoverage = float64(k.offBytesCov) / float64(k.offBytes)
	}
	return res
}

// Render formats the offload coverage finding.
func (r *OffloadCoverageResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Offload coverage (single-MTU accelerator, MTU=%dB; §2.5)\n", r.MTU)
	fmt.Fprintf(&b, "  messages covered:       %.1f%%\n", r.MessageCoverage*100)
	fmt.Fprintf(&b, "  RPCs fully covered:     %.1f%% of calls\n", r.CallCoverage*100)
	fmt.Fprintf(&b, "  bytes covered:          %.1f%% (the tail escapes)\n", r.ByteCoverage*100)
	return b.String()
}

// OptimizationCoverageResult quantifies §5.2's method-specific
// optimization argument: how much of fleet volume and time a top-K
// optimization program reaches.
type OptimizationCoverageResult struct {
	// Ks are the program sizes evaluated.
	Ks []int
	// CallCoverage[i] is the call share of the Ks[i] most popular
	// methods; TimeCoverage[i] the share of total RPC time.
	CallCoverage []float64
	TimeCoverage []float64
}

// OptimizationCoverage computes coverage for standard program sizes.
func OptimizationCoverage(ds *workload.Dataset) *OptimizationCoverageResult {
	return sinkFor(ds).OptimizationCoverage()
}

// OptimizationCoverage computes the §5.2 table from accumulated
// per-method volume counters (hedge duplicates excluded at accumulation
// time).
func (k *ReportSink) OptimizationCoverage() *OptimizationCoverageResult {
	var totalCalls uint64
	var totalTimeNs int64
	for _, v := range k.vol {
		totalCalls += v.calls
		totalTimeNs += v.timeNs
	}
	type kv struct {
		m string
		v uint64
	}
	sorted := make([]kv, 0, len(k.vol))
	for _, m := range sortedKeys(k.vol) {
		sorted = append(sorted, kv{m, k.vol[m].calls})
	}
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].v != sorted[j].v {
			return sorted[i].v > sorted[j].v
		}
		return sorted[i].m < sorted[j].m
	})

	res := &OptimizationCoverageResult{Ks: []int{1, 10, 100, 1000}}
	for _, topK := range res.Ks {
		var c uint64
		var t int64
		for i := 0; i < topK && i < len(sorted); i++ {
			c += sorted[i].v
			t += k.vol[sorted[i].m].timeNs
		}
		res.CallCoverage = append(res.CallCoverage, float64(c)/float64(totalCalls))
		res.TimeCoverage = append(res.TimeCoverage, float64(t)/float64(totalTimeNs))
	}
	return res
}

// Render formats the optimization-coverage table.
func (r *OptimizationCoverageResult) Render() string {
	var b strings.Builder
	b.WriteString("Method-specific optimization coverage (§5.2)\n")
	fmt.Fprintf(&b, "  %-10s %10s %10s\n", "top-K", "calls", "RPC time")
	for i, k := range r.Ks {
		fmt.Fprintf(&b, "  %-10d %9.1f%% %9.1f%%\n", k, r.CallCoverage[i]*100, r.TimeCoverage[i]*100)
	}
	return b.String()
}

// ColocationResult is the §5.2 co-location what-if: "adding support to a
// cluster manager for co-locating RPCs from the same RPC tree could
// significantly reduce latency."
type ColocationResult struct {
	Trees int

	// With/Without are root completion-time summaries with production
	// co-location (boost 0.75) vs none (nested calls placed by raw
	// locality only).
	WithP50, WithP99       time.Duration
	WithoutP50, WithoutP99 time.Duration
	// CrossRateWith/Without are the fractions of nested calls leaving
	// their parent's cluster.
	CrossRateWith    float64
	CrossRateWithout float64
}

// ColocationStudy runs the co-location experiment: the same tree
// workload under two placement regimes, built from the given generator
// factory (seeded identically so the workloads match).
func ColocationStudy(mk func() *workload.Generator, trees int) *ColocationResult {
	if trees <= 0 {
		trees = 300
	}
	run := func(boost float64) (*stats.Sample, float64) {
		gen := mk()
		gen.ColocateBoost = boost
		roots := stats.NewSample(trees)
		var nested, cross float64
		for i := 0; i < trees; i++ {
			m := pickEntry(gen.Cat, i)
			at := time.Duration(i) * 173 * time.Millisecond
			gen.Call(m, workload.CallOptions{
				At: at, MaxDepth: 6, Budget: 600, Materialize: true,
				Observe: func(o workload.CallObservation) {
					if o.Span.ParentID == 0 {
						roots.Add(float64(o.Span.Breakdown.Total()))
						return
					}
					nested++
					if !o.Span.SameCluster() {
						cross++
					}
				},
			})
		}
		rate := 0.0
		if nested > 0 {
			rate = cross / nested
		}
		return roots, rate
	}
	with, rateWith := run(0.75)
	without, rateWithout := run(0)
	return &ColocationResult{
		Trees:            trees,
		WithP50:          time.Duration(int64(with.Quantile(0.5))),
		WithP99:          time.Duration(int64(with.Quantile(0.99))),
		WithoutP50:       time.Duration(int64(without.Quantile(0.5))),
		WithoutP99:       time.Duration(int64(without.Quantile(0.99))),
		CrossRateWith:    rateWith,
		CrossRateWithout: rateWithout,
	}
}

// pickEntry deterministically selects high-layer entry methods.
func pickEntry(cat *fleet.Catalog, i int) *fleet.Method {
	var entries []*fleet.Method
	for _, m := range cat.Methods {
		if m.Layer >= 2 && len(m.Callees) > 0 {
			entries = append(entries, m)
		}
	}
	if len(entries) == 0 {
		entries = cat.Methods
	}
	return entries[i%len(entries)]
}

// Render formats the co-location what-if.
func (r *ColocationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Co-location what-if (%d trees; §5.2)\n", r.Trees)
	fmt.Fprintf(&b, "  %-24s %12s %12s %16s\n", "placement", "root P50", "root P99", "nested cross-rate")
	fmt.Fprintf(&b, "  %-24s %12v %12v %15.1f%%\n", "tree co-location",
		r.WithP50.Round(time.Microsecond), r.WithP99.Round(time.Microsecond), r.CrossRateWith*100)
	fmt.Fprintf(&b, "  %-24s %12v %12v %15.1f%%\n", "locality only",
		r.WithoutP50.Round(time.Microsecond), r.WithoutP99.Round(time.Microsecond), r.CrossRateWithout*100)
	return b.String()
}
