package core

import (
	"fmt"
	"strings"

	"rpcscale/internal/gwp"
	"rpcscale/internal/workload"
)

// CycleTaxResult is Fig. 20: the fleet's RPC cycle tax and its category
// breakdown.
type CycleTaxResult struct {
	TaxShare float64 // paper: 0.071
	ByCat    map[gwp.Category]float64
}

// CycleTax computes Fig. 20 from a dataset's GWP profile.
func CycleTax(ds *workload.Dataset) *CycleTaxResult {
	return CycleTaxFromProfile(ds.Profile)
}

// CycleTaxFromProfile computes Fig. 20 from a GWP snapshot directly, for
// callers that never materialize a Dataset.
func CycleTaxFromProfile(prof *gwp.Snapshot) *CycleTaxResult {
	res := &CycleTaxResult{
		TaxShare: prof.TaxShare(),
		ByCat:    make(map[gwp.Category]float64),
	}
	for _, c := range gwp.TaxCategories() {
		res.ByCat[c] = prof.CategoryShare(c)
	}
	return res
}

// Render formats Fig. 20.
func (r *CycleTaxResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig.20  RPC cycle tax: %.2f%% of all fleet cycles\n", r.TaxShare*100)
	for _, c := range gwp.TaxCategories() {
		fmt.Fprintf(&b, "  %-14s %.2f%%\n", c, r.ByCat[c]*100)
	}
	return b.String()
}
