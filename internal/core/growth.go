// Package core is the characterization library: one analysis per figure
// or table of the paper, each consuming the datasets produced by
// internal/workload (trace spans, Monarch series, GWP profiles) and
// returning a structured result plus a text rendering.
//
// DESIGN.md §3 maps every paper figure to its analysis here; EXPERIMENTS.md
// records paper-reported vs. measured values.
package core

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"rpcscale/internal/monarch"
	"rpcscale/internal/workload"
)

// GrowthResult is Fig. 1: normalized RPS-per-CPU-cycle over the
// observation period.
type GrowthResult struct {
	Days       []time.Time
	Normalized []float64 // daily RPS/CPU divided by day-0 value

	// AnnualGrowth is the fitted exponential growth rate per year.
	AnnualGrowth float64
	// TotalGrowth is last/first - 1 over the whole period (the paper
	// reports +64% over 700 days).
	TotalGrowth float64
}

// GrowthAnalysis computes Fig. 1 from the fleet counters in db.
func GrowthAnalysis(db *monarch.DB) (*GrowthResult, error) {
	rps := db.Query(workload.MetricRPS, nil, time.Time{}, time.Time{})
	cpu := db.Query(workload.MetricCPU, nil, time.Time{}, time.Time{})
	if len(rps) == 0 || len(cpu) == 0 {
		return nil, fmt.Errorf("core: growth counters missing")
	}
	rpsAll := monarch.SumAcross(rps)
	cpuAll := monarch.SumAcross(cpu)
	cpuAt := make(map[time.Time]float64, len(cpuAll.Points))
	for _, p := range cpuAll.Points {
		cpuAt[p.At] = p.Value
	}
	res := &GrowthResult{}
	for _, p := range rpsAll.Points {
		c, ok := cpuAt[p.At]
		if !ok || c == 0 {
			continue
		}
		res.Days = append(res.Days, p.At)
		res.Normalized = append(res.Normalized, p.Value/c)
	}
	if len(res.Normalized) < 2 {
		return nil, fmt.Errorf("core: not enough growth samples")
	}
	base := res.Normalized[0]
	for i := range res.Normalized {
		res.Normalized[i] /= base
	}
	// Least-squares fit of log(ratio) over years.
	var xs, ys []float64
	for i, d := range res.Days {
		xs = append(xs, d.Sub(res.Days[0]).Hours()/24/365)
		ys = append(ys, math.Log(res.Normalized[i]))
	}
	slope := fitSlope(xs, ys)
	res.AnnualGrowth = math.Exp(slope) - 1
	res.TotalGrowth = res.Normalized[len(res.Normalized)-1]/res.Normalized[0] - 1
	return res, nil
}

func fitSlope(xs, ys []float64) float64 {
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}

// Render formats the result as the Fig. 1 text report.
func (r *GrowthResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig.1  Normalized RPS per CPU cycle over %d days\n", len(r.Days))
	fmt.Fprintf(&b, "  annual growth: %+.1f%%   total over period: %+.1f%%\n",
		r.AnnualGrowth*100, r.TotalGrowth*100)
	// Sparkline-style decimation: 10 evenly spaced samples.
	step := len(r.Normalized) / 10
	if step == 0 {
		step = 1
	}
	b.WriteString("  day    ratio\n")
	for i := 0; i < len(r.Normalized); i += step {
		fmt.Fprintf(&b, "  %4d   %.3f\n", i, r.Normalized[i])
	}
	return b.String()
}

// sortedByMedian is a shared helper: sorts per-method summaries by median
// ascending (the x-axis of every per-method figure).
func sortedKeys[T any](m map[string]T) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
