package core

import (
	"strings"
	"testing"

	"rpcscale/internal/workload"
)

func TestOffloadCoverage(t *testing.T) {
	res := OffloadCoverage(testDS, 1500)
	// §2.5: a single-MTU offload accelerates the majority of messages...
	if res.MessageCoverage < 0.5 {
		t.Errorf("message coverage = %.3f, want majority", res.MessageCoverage)
	}
	// ...but misses the byte tail: byte coverage well below message
	// coverage.
	if res.ByteCoverage >= res.MessageCoverage {
		t.Errorf("byte coverage %.3f >= message coverage %.3f; tail should escape",
			res.ByteCoverage, res.MessageCoverage)
	}
	if res.MessageCoverage < res.CallCoverage {
		t.Error("message coverage must be >= both-directions coverage")
	}
	if !strings.Contains(res.Render(), "Offload") {
		t.Error("render broken")
	}
	// Default MTU applies.
	if OffloadCoverage(testDS, 0).MTU != 1500 {
		t.Error("default MTU not applied")
	}
}

func TestOptimizationCoverage(t *testing.T) {
	res := OptimizationCoverage(testDS)
	if len(res.Ks) != 4 {
		t.Fatalf("Ks = %v", res.Ks)
	}
	// Coverage is monotone in K and matches the popularity anchors.
	for i := 1; i < len(res.CallCoverage); i++ {
		if res.CallCoverage[i] < res.CallCoverage[i-1] {
			t.Fatal("call coverage not monotone")
		}
		if res.TimeCoverage[i] < res.TimeCoverage[i-1] {
			t.Fatal("time coverage not monotone")
		}
	}
	// top-10 ~58%, top-100 ~91% (§2.3 / §5.2).
	if res.CallCoverage[1] < 0.5 || res.CallCoverage[1] > 0.68 {
		t.Errorf("top-10 coverage = %.3f, want ~0.58", res.CallCoverage[1])
	}
	if res.CallCoverage[2] < 0.83 {
		t.Errorf("top-100 coverage = %.3f, want ~0.91", res.CallCoverage[2])
	}
	// Time coverage of the popular head is far below its call coverage
	// (the slow tail owns the time).
	if res.TimeCoverage[1] >= res.CallCoverage[1] {
		t.Errorf("top-10 time %.3f >= calls %.3f; slow tail should own time",
			res.TimeCoverage[1], res.CallCoverage[1])
	}
	_ = res.Render()
}

func TestColocationStudy(t *testing.T) {
	res := ColocationStudy(func() *workload.Generator {
		return workload.NewGenerator(testCat, testTopo, nil, 77)
	}, 150)
	if res.Trees != 150 {
		t.Fatalf("trees = %d", res.Trees)
	}
	// Co-location must reduce the nested cross-cluster rate...
	if res.CrossRateWith >= res.CrossRateWithout {
		t.Errorf("co-location did not reduce cross rate: %.3f vs %.3f",
			res.CrossRateWith, res.CrossRateWithout)
	}
	// ...and with it the root latency (P50 at least directionally).
	if res.WithP50 > res.WithoutP50*3/2 {
		t.Errorf("co-located P50 %v much worse than scattered %v", res.WithP50, res.WithoutP50)
	}
	if !strings.Contains(res.Render(), "Co-location") {
		t.Error("render broken")
	}
}

func TestRenderHeatmap(t *testing.T) {
	lat := LatencyByMethod(testDS)
	out := lat.RenderHeatmap(48)
	if !strings.Contains(out, "Heatmap") {
		t.Fatal("missing header")
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 16 {
		t.Fatalf("heatmap too short: %d lines", len(lines))
	}
	// Columns bounded by pipes of the requested width.
	for _, l := range lines {
		if i := strings.IndexByte(l, '|'); i >= 0 && strings.HasSuffix(l, "|") {
			if got := len(l) - i - 2; got != 48 {
				t.Fatalf("row width %d, want 48: %q", got, l)
			}
		}
	}
	// Degenerate inputs do not panic.
	empty := &PerMethodResult{What: "x", Unit: "ns"}
	if !strings.Contains(empty.RenderHeatmap(10), "no methods") {
		t.Error("empty heatmap mishandled")
	}
}

func TestFullReport(t *testing.T) {
	gen := workload.NewGenerator(testCat, testTopo, nil, 88)
	out := FullReport(testDS, ReportOptions{Generator: gen})
	for _, want := range []string{
		"Fig.2 anchors", "Fig.3", "Fig.4/5", "Fig.8", "Table 1",
		"Fig.10", "Fig.11", "Fig.12", "Fig.14", "Fig.15", "Fig.16",
		"Fig.17", "Fig.19", "Fig.20", "Fig.23", "Heatmap",
		"Offload coverage", "optimization coverage", "Co-location",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// Without a generator or DB, the optional sections are skipped but
	// the report still renders.
	out2 := FullReport(testDS, ReportOptions{})
	if strings.Contains(out2, "Fig.19") {
		t.Error("Fig.19 should require a generator")
	}
	if !strings.Contains(out2, "Fig.20") {
		t.Error("core sections missing without generator")
	}
}
