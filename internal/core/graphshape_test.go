package core

import (
	"context"
	"strings"
	"testing"

	"rpcscale/internal/fleet"
	"rpcscale/internal/sim"
	"rpcscale/internal/workload"
)

// motifWorld builds a motif-wired catalog plus topology. Each caller gets
// a fresh catalog: ApplyMotifs mutates it, and the generator-driven
// figures consume RNG state, so worlds are never shared between paths.
func motifWorld(t *testing.T) (*fleet.Catalog, *sim.Topology) {
	t.Helper()
	topo := sim.NewTopology(sim.DefaultTopology())
	cat := fleet.New(fleet.Config{Methods: 250, Clusters: len(topo.Clusters), Seed: 9})
	packs, err := fleet.ParseMotifs("all")
	if err != nil {
		t.Fatal(err)
	}
	counts := fleet.ApplyMotifs(cat, packs, 9)
	for _, p := range packs {
		if counts[p.Name()] == 0 {
			t.Fatalf("motif pack %s tagged no methods", p.Name())
		}
	}
	return cat, topo
}

// The DAG extension of the tentpole guarantee: with every motif pack
// applied — fan-in links, cache branches, sidecar hops, replica writes —
// the streaming report stays byte-identical to the materialized one at
// every shard count, and reproducible run-to-run.
func TestGraphShapeStreamMatchesFullWithMotifs(t *testing.T) {
	ctx := context.Background()
	cfg := workload.RunConfig{
		Seed: 5, MethodSamples: 40, StudiedSamples: 300,
		VolumeRoots: 6000, Trees: 100, MaxDepth: 6, TreeBudget: 600,
	}
	for _, shards := range []int{1, 4, 8} {
		cfg.Shards = shards

		cat, topo := motifWorld(t)
		first := StreamReport(ctx, cat, topo, cfg, ReportOptions{})
		second := StreamReport(ctx, cat, topo, cfg, ReportOptions{})
		if first != second {
			t.Fatalf("shards=%d: motif streaming report not reproducible", shards)
		}

		cat2, topo2 := motifWorld(t)
		full := FullReport(workload.Generate(ctx, cat2, topo2, cfg), ReportOptions{})
		if full != first {
			firstDiff(t, full, first)
		}

		if !strings.Contains(first, "Fig.G") {
			t.Fatal("report is missing the graph-shape figure")
		}
		if !strings.Contains(first, "graphs with fan-in") {
			t.Fatal("motif report has no fan-in line")
		}
	}
}

func TestGraphShapeAnalysisNoMotifs(t *testing.T) {
	topo := sim.NewTopology(sim.DefaultTopology())
	cat := fleet.New(fleet.Config{Methods: 250, Clusters: len(topo.Clusters), Seed: 9})
	ds := workload.Generate(context.Background(), cat, topo, workload.RunConfig{
		Seed: 5, MethodSamples: 10, StudiedSamples: 50,
		VolumeRoots: 1000, Trees: 40, MaxDepth: 5, TreeBudget: 300,
	})
	res := GraphShapeAnalysis(ds)
	if res.Graphs == 0 {
		t.Fatal("no graphs summarized")
	}
	if res.FanInGraphFrac != 0 || res.FanInEdgesPerGraph != 0 || res.SharedNodes != 0 {
		t.Fatalf("tree-shaped run reports fan-in: %+v", res)
	}
	if res.CensusSpans == 0 {
		t.Fatal("span census empty")
	}
	if res.SizeP50 <= 0 || res.SizeMax < res.SizeP99 {
		t.Fatalf("size quantiles inconsistent: %+v", res)
	}
	out := res.Render()
	if !strings.Contains(out, "Fig.G") {
		t.Fatalf("render missing header:\n%s", out)
	}
}
