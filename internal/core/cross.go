package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"rpcscale/internal/sim"
	"rpcscale/internal/stats"
	"rpcscale/internal/trace"
	"rpcscale/internal/workload"
)

// CrossClusterRow is one client cluster's view of a fixed server (one bar
// of Fig. 19).
type CrossClusterRow struct {
	ClientCluster string
	Proximity     sim.Proximity
	DistanceKm    float64
	Median        time.Duration
	Components    trace.Breakdown // medians per component
	MinWireRTT    time.Duration   // speed-of-light bound for this pair
}

// CrossClusterResult is Fig. 19: median latency breakdown of calls to one
// serving cluster from clients at increasing distance.
type CrossClusterResult struct {
	Method        string
	ServerCluster string
	Rows          []CrossClusterRow // sorted by distance

	// WireDominatedBeyondRegion reports the §3.3.5 conclusion: for
	// cross-region calls the wire component is the majority of total
	// median latency and closely tracks the propagation bound.
	WireDominatedBeyondRegion bool
}

// CrossClusterAnalysis generates Fig. 19 with the generator directly:
// n calls from every cluster to a pinned server cluster.
func CrossClusterAnalysis(gen *workload.Generator, method string, server *sim.Cluster, perCluster int) (*CrossClusterResult, error) {
	m := gen.Cat.MethodByName(method)
	if m == nil {
		return nil, fmt.Errorf("core: unknown method %q", method)
	}
	if perCluster <= 0 {
		perCluster = 120
	}
	res := &CrossClusterResult{Method: method, ServerCluster: server.Name}
	for _, client := range gen.Topo.Clusters {
		totals := stats.NewSample(perCluster)
		comps := make([]*stats.Sample, trace.NumComponents)
		for c := range comps {
			comps[c] = stats.NewSample(perCluster)
		}
		for i := 0; i < perCluster; i++ {
			obs := gen.Call(m, workload.CallOptions{
				Client: client, Server: server,
				At: time.Duration(i) * time.Minute, MaxDepth: 2, Budget: 32,
			})
			totals.Add(float64(obs.Span.Breakdown.Total()))
			for c := 0; c < trace.NumComponents; c++ {
				comps[c].Add(float64(obs.Span.Breakdown[c]))
			}
		}
		row := CrossClusterRow{
			ClientCluster: client.Name,
			Proximity:     gen.Topo.ProximityOf(client, server),
			DistanceKm:    gen.Topo.DistanceKm(client, server),
			Median:        time.Duration(int64(totals.Quantile(0.5))),
			MinWireRTT:    gen.Topo.MinRTT(client, server),
		}
		for c := 0; c < trace.NumComponents; c++ {
			row.Components[c] = time.Duration(int64(comps[c].Quantile(0.5)))
		}
		res.Rows = append(res.Rows, row)
	}
	sort.Slice(res.Rows, func(i, j int) bool { return res.Rows[i].DistanceKm < res.Rows[j].DistanceKm })

	// Verify the wire-dominance conclusion on cross-region rows.
	crossRegion, wireDominated := 0, 0
	for _, row := range res.Rows {
		if row.Proximity != sim.DifferentRegion {
			continue
		}
		crossRegion++
		wire := row.Components[trace.ReqNetworkWire] + row.Components[trace.RespNetworkWire]
		if wire*2 > row.Median {
			wireDominated++
		}
	}
	res.WireDominatedBeyondRegion = crossRegion > 0 && wireDominated*3 >= crossRegion*2
	return res, nil
}

// Render formats Fig. 19.
func (r *CrossClusterResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig.19  %s -> server %s: median latency by client distance\n", r.Method, r.ServerCluster)
	fmt.Fprintf(&b, "  wire-dominated beyond region: %v\n", r.WireDominatedBeyondRegion)
	fmt.Fprintf(&b, "  %-22s %-18s %9s %12s %12s %12s\n",
		"client", "proximity", "km", "median", "wire(med)", "min RTT")
	for i, row := range r.Rows {
		if i%3 != 0 && i != len(r.Rows)-1 {
			continue
		}
		wire := row.Components[trace.ReqNetworkWire] + row.Components[trace.RespNetworkWire]
		fmt.Fprintf(&b, "  %-22s %-18s %9.0f %12v %12v %12v\n",
			row.ClientCluster, row.Proximity, row.DistanceKm,
			row.Median.Round(time.Microsecond), wire.Round(time.Microsecond),
			row.MinWireRTT.Round(time.Microsecond))
	}
	return b.String()
}
