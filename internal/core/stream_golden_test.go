package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"rpcscale/internal/fleet"
	"rpcscale/internal/monarch"
	"rpcscale/internal/sim"
	"rpcscale/internal/workload"
)

// goldenWorld builds a fresh catalog/topology pair plus report options
// with their own Monarch DB and generator. Each report path gets its own
// world: the generator-driven figures (18, 19, co-location) consume RNG
// state and write to the DB, so sharing them across paths would make the
// second report see different state.
func goldenWorld(t *testing.T, methods int) (*fleet.Catalog, *sim.Topology, ReportOptions) {
	t.Helper()
	topo := sim.NewTopology(sim.DefaultTopology())
	cat := fleet.New(fleet.Config{Methods: methods, Clusters: len(topo.Clusters), Seed: 9})
	db := monarch.New(24*time.Hour, 0)
	if err := workload.DeclareMetrics(db); err != nil {
		t.Fatal(err)
	}
	if err := workload.WriteGrowthHistory(db, workload.GrowthConfig{Days: 700, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	return cat, topo, ReportOptions{
		DB:             db,
		Generator:      workload.NewGenerator(cat, topo, nil, 8),
		DiurnalSamples: 12,
	}
}

func firstDiff(t *testing.T, a, b string) {
	t.Helper()
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	n := len(al)
	if len(bl) < n {
		n = len(bl)
	}
	for i := 0; i < n; i++ {
		if al[i] != bl[i] {
			t.Fatalf("reports diverge at line %d:\n  full:   %q\n  stream: %q", i+1, al[i], bl[i])
		}
	}
	t.Fatalf("reports diverge in length: %d vs %d lines", len(al), len(bl))
}

// The tentpole guarantee: the streaming report — per-shard accumulators
// merged in shard order, no Dataset ever materialized — is byte-identical
// to materializing the Dataset and replaying it through FullReport, at
// the default run configuration's seed.
func TestStreamReportMatchesFullReport(t *testing.T) {
	if testing.Short() {
		t.Skip("full-report golden comparison is slow")
	}
	cfg := workload.DefaultRun()
	ctx := context.Background()

	cat, topo, opts := goldenWorld(t, 400)
	full := FullReport(workload.Generate(ctx, cat, topo, cfg), opts)

	cat2, topo2, opts2 := goldenWorld(t, 400)
	stream := StreamReport(ctx, cat2, topo2, cfg, opts2)

	if full != stream {
		firstDiff(t, full, stream)
	}
	if !strings.Contains(full, "Fig.23") || !strings.Contains(full, "Fig.2 anchors") {
		t.Fatal("golden report is missing expected figures")
	}
}

// For every shard count the streaming path must be (a) reproducible and
// (b) byte-identical to the materialized path at that same shard count —
// the merge is a deterministic fold over shard-index order, never over
// goroutine completion order.
func TestStreamReportShardDeterminism(t *testing.T) {
	ctx := context.Background()
	cfg := workload.RunConfig{
		Seed: 5, MethodSamples: 40, StudiedSamples: 300,
		VolumeRoots: 6000, Trees: 100, MaxDepth: 6, TreeBudget: 600,
	}
	for _, shards := range []int{1, 4, 8} {
		cfg.Shards = shards
		topo := sim.NewTopology(sim.DefaultTopology())
		cat := fleet.New(fleet.Config{Methods: 250, Clusters: len(topo.Clusters), Seed: 9})

		first := StreamReport(ctx, cat, topo, cfg, ReportOptions{})
		second := StreamReport(ctx, cat, topo, cfg, ReportOptions{})
		if first != second {
			t.Fatalf("shards=%d: streaming report not reproducible", shards)
		}
		full := FullReport(workload.Generate(ctx, cat, topo, cfg), ReportOptions{})
		if full != first {
			firstDiff(t, full, first)
		}
	}
}
