package core

import (
	"context"
	"math"
	"strings"
	"testing"
	"time"

	"rpcscale/internal/fleet"
	"rpcscale/internal/monarch"
	"rpcscale/internal/sim"
	"rpcscale/internal/stats"
	"rpcscale/internal/trace"
	"rpcscale/internal/workload"
)

// One shared dataset for the whole package: generation dominates test
// cost and the analyses are read-only.
var (
	testTopo = sim.NewTopology(sim.DefaultTopology())
	testCat  = fleet.New(fleet.Config{Methods: 500, Clusters: len(testTopo.Clusters), Seed: 21})
	testDS   = workload.Generate(context.Background(), testCat, testTopo, workload.RunConfig{
		Seed: 21, MethodSamples: 120, StudiedSamples: 2500,
		VolumeRoots: 40000, Trees: 300, MaxDepth: 8, TreeBudget: 1500,
	})
)

func studiedMethods() []string {
	var out []string
	for _, s := range fleet.EightServices() {
		out = append(out, s.Method)
	}
	return out
}

func TestGrowthAnalysis(t *testing.T) {
	db := monarch.New(24*time.Hour, 0)
	if err := workload.DeclareMetrics(db); err != nil {
		t.Fatal(err)
	}
	if err := workload.WriteGrowthHistory(db, workload.GrowthConfig{Days: 700, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	res, err := GrowthAnalysis(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Normalized) != 700 {
		t.Fatalf("days = %d", len(res.Normalized))
	}
	if res.Normalized[0] != 1 {
		t.Error("series not normalized to day 0")
	}
	// Paper: ~30%/yr, +64% total.
	if res.AnnualGrowth < 0.20 || res.AnnualGrowth > 0.40 {
		t.Errorf("annual growth = %.3f, want ~0.30", res.AnnualGrowth)
	}
	if res.TotalGrowth < 0.45 || res.TotalGrowth > 0.90 {
		t.Errorf("total growth = %.3f, want ~0.64", res.TotalGrowth)
	}
	if !strings.Contains(res.Render(), "Fig.1") {
		t.Error("render missing header")
	}

	if _, err := GrowthAnalysis(monarch.New(0, 0)); err == nil {
		t.Error("empty DB should error")
	}
}

func TestLatencyByMethod(t *testing.T) {
	res := LatencyByMethod(testDS)
	if len(res.Rows) < 400 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Sorted by median.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Summary.P50 < res.Rows[i-1].Summary.P50 {
			t.Fatal("rows not sorted by median")
		}
	}
	a := res.Anchors()
	// The real stack's floors (wire + stack + residual queueing) sit
	// under every sample, so the emergent P1 lands above the paper's
	// 657 us for a larger minority of methods than in production;
	// EXPERIMENTS.md records the gap.
	if a.FracP1Under657us < 0.50 {
		t.Errorf("P1<=657us fraction = %.3f, paper ~0.90", a.FracP1Under657us)
	}
	if a.FracMedianOver10ms < 0.75 {
		t.Errorf("median>=10.7ms fraction = %.3f, paper ~0.90", a.FracMedianOver10ms)
	}
	if a.FracP99Over1ms < 0.98 {
		t.Errorf("P99>=1ms fraction = %.3f, paper ~0.995", a.FracP99Over1ms)
	}
	if a.FracP99Over225ms < 0.30 || a.FracP99Over225ms > 0.93 {
		t.Errorf("P99>=225ms fraction = %.3f, paper ~0.50", a.FracP99Over225ms)
	}
	if a.Slow5pP99 < 2*time.Second {
		t.Errorf("slow-5%% P99 = %v, paper >= 5s", a.Slow5pP99)
	}
	if !strings.Contains(res.Render(), "Per-method") {
		t.Error("render broken")
	}
}

func TestPopularityAnalysis(t *testing.T) {
	lat := LatencyByMethod(testDS)
	res := PopularityAnalysis(testDS, lat)
	if math.Abs(res.Top10Share-0.58) > 0.06 {
		t.Errorf("top-10 share = %.3f, paper 0.58", res.Top10Share)
	}
	if math.Abs(res.Top100Share-0.91) > 0.06 {
		t.Errorf("top-100 share = %.3f, paper 0.91", res.Top100Share)
	}
	if res.TopMethod != "networkdisk/Write" {
		t.Errorf("top method = %s", res.TopMethod)
	}
	if math.Abs(res.TopMethodShare-0.28) > 0.04 {
		t.Errorf("top method share = %.3f, paper 0.28", res.TopMethodShare)
	}
	if res.Lowest100Share < 0.25 || res.Lowest100Share > 0.60 {
		t.Errorf("lowest-100 share = %.3f, paper ~0.40", res.Lowest100Share)
	}
	if res.SlowDecileCalls > 0.05 {
		t.Errorf("slow-decile calls = %.4f, paper 0.011", res.SlowDecileCalls)
	}
	if res.SlowDecileTime < 0.35 {
		t.Errorf("slow-decile time share = %.3f, paper 0.89 (dominant)", res.SlowDecileTime)
	}
	_ = res.Render()
}

func TestTreeShapeAnalysis(t *testing.T) {
	res := TreeShapeAnalysis(testDS)
	if len(res.Rows) < 300 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if !res.WiderThanDeep() {
		t.Error("trees should be wider than deep")
	}
	if res.MaxDepth > 12 {
		t.Errorf("max depth = %v, beyond cap", res.MaxDepth)
	}
	if res.FracMedianDescUnder13 < 0.30 {
		t.Errorf("median-desc<=13 fraction = %.3f, paper ~0.50", res.FracMedianDescUnder13)
	}
	if res.FracAncP99Under10 < 0.40 {
		t.Errorf("anc-P99<10 fraction = %.3f, paper ~0.50", res.FracAncP99Under10)
	}
	_ = res.Render()
}

func TestSizeAnalyses(t *testing.T) {
	req := RequestSizeByMethod(testDS)
	resp := ResponseSizeByMethod(testDS)
	ratio := SizeRatioByMethod(testDS)
	if len(req.Rows) < 400 || len(resp.Rows) < 400 || len(ratio.Rows) < 400 {
		t.Fatal("missing rows")
	}
	// Minimum 64B floor.
	for _, row := range req.Rows {
		if row.Summary.P1 < 60 {
			t.Fatalf("%s P1 request %v below floor", row.Method, row.Summary.P1)
		}
	}
	// Heavy tails: fleet P99 request far above median-of-medians.
	meds := req.CrossMethod(func(s stats.Summary) float64 { return s.P50 })
	p99s := req.CrossMethod(func(s stats.Summary) float64 { return s.P99 })
	if p99s.Quantile(0.9) < 8*meds.Quantile(0.5) {
		t.Error("request tails too light")
	}
	// Write dominance: most methods' median ratio < 1.
	writeDom := ratio.FractionOfMethods(func(s stats.Summary) bool { return s.P50 < 1 })
	if writeDom < 0.5 {
		t.Errorf("write-dominant fraction = %.3f, paper: majority", writeDom)
	}
	_ = req.Render()
	_ = ratio.Render()
}

func TestServiceShareAnalysis(t *testing.T) {
	res := ServiceShareAnalysis(testDS)
	if res.Rows[0].Service != "networkdisk" {
		t.Errorf("top service = %s", res.Rows[0].Service)
	}
	nd := res.Row("networkdisk")
	if math.Abs(nd.CallShare-0.35) > 0.04 {
		t.Errorf("networkdisk call share = %.3f, paper 0.35", nd.CallShare)
	}
	// Network Disk moves proportionally more bytes than calls... its
	// 32KB writes at 35% of calls dominate bytes.
	if nd.ByteShare < nd.CallShare {
		t.Errorf("networkdisk bytes %.3f < calls %.3f; paper: byte-heavy", nd.ByteShare, nd.CallShare)
	}
	// ...but disproportionately few cycles (paper: <2%).
	if nd.CycleShare > 0.15 {
		t.Errorf("networkdisk cycle share = %.3f, paper <0.02", nd.CycleShare)
	}
	// ML inference: more cycles than calls.
	ml := res.Row("mlinference")
	if ml.CycleShare < 2*ml.CallShare {
		t.Errorf("mlinference cycles %.4f vs calls %.4f; paper: cycle-heavy", ml.CycleShare, ml.CallShare)
	}
	if res.Top8CallShare < 0.5 {
		t.Errorf("top-8 share = %.3f, paper 0.60", res.Top8CallShare)
	}
	_ = res.Render()
	if !strings.Contains(RenderEightServices(), "networkdisk") {
		t.Error("Table 1 render broken")
	}
}

func TestTaxAnalysis(t *testing.T) {
	res := TaxAnalysis(testDS)
	if res.MeanTaxShare <= 0 || res.MeanTaxShare > 0.25 {
		t.Errorf("mean tax share = %.4f, paper 0.02", res.MeanTaxShare)
	}
	sum := res.WireShare + res.StackShare + res.QueueShare
	if math.Abs(sum-res.MeanTaxShare) > 1e-9 {
		t.Error("tax decomposition does not sum")
	}
	// Tail skews toward network (paper Fig. 10c/d).
	if res.TailTaxShare <= 0 {
		t.Error("no tail tax")
	}
	_ = res.Render()
}

func TestTaxRatioByMethod(t *testing.T) {
	res := TaxRatioByMethod(testDS)
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	if res.MedianMethodMedian <= 0 || res.MedianMethodMedian > 0.5 {
		t.Errorf("median-method tax ratio = %.4f, paper 0.086", res.MedianMethodMedian)
	}
	if res.TopDecileMedian <= res.MedianMethodMedian {
		t.Error("top decile should exceed the median method")
	}
	_ = res.Render()
}

func TestTaxComponents(t *testing.T) {
	res := TaxComponents(testDS)
	if res.FastHalfWireP99 <= 0 || res.Slow10pWireP99 < res.FastHalfWireP99 {
		t.Errorf("wire anchors inverted: %v %v", res.FastHalfWireP99, res.Slow10pWireP99)
	}
	if res.MedianQueueMedian <= 0 || res.MedianQueueP99 < res.MedianQueueMedian {
		t.Errorf("queue anchors inverted: %v %v", res.MedianQueueMedian, res.MedianQueueP99)
	}
	if res.TopQueueP99 < res.MedianQueueP99 {
		t.Error("top queue decile should be worse than the median method")
	}
	_ = res.Render()
}

func TestServiceBreakdown(t *testing.T) {
	checked := 0
	for _, s := range fleet.EightServices() {
		res := ServiceBreakdown(testDS, s.Method)
		if res.Spans < 100 {
			continue
		}
		checked++
		// Curve totals must be non-decreasing in percentile.
		for i := 1; i < len(res.Curve); i++ {
			if res.Curve[i].Total < res.Curve[i-1].Total {
				t.Errorf("%s: curve not monotone", s.Method)
				break
			}
		}
		if res.P95OverMedian < 1 {
			t.Errorf("%s: P95/P50 = %.2f < 1", s.Method, res.P95OverMedian)
		}
		_ = res.Render()
	}
	if checked < 5 {
		t.Fatalf("only %d studied services had enough intra-cluster spans", checked)
	}
	// Class behavior: ssdcache is queue-heavy, mlinference app-heavy.
	ssd := ServiceBreakdown(testDS, "ssdcache/Lookup")
	if ssd.Spans > 100 && DominantGroup(ssd.Dominant) != "queue" {
		t.Errorf("ssdcache dominant = %s (%s), paper: queue", ssd.Dominant, DominantGroup(ssd.Dominant))
	}
	ml := ServiceBreakdown(testDS, "mlinference/Infer")
	if ml.Spans > 100 && DominantGroup(ml.Dominant) != "app" {
		t.Errorf("mlinference dominant = %s, paper: app", ml.Dominant)
	}
}

func TestWhatIf(t *testing.T) {
	rows := WhatIf(testDS, studiedMethods())
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		var best float64
		for _, v := range r.Reduction {
			if v < 0 || v > 100 {
				t.Fatalf("%s reduction out of range: %v", r.Method, v)
			}
			if v > best {
				best = v
			}
		}
		if best == 0 {
			t.Errorf("%s: no component rescues any tail RPC", r.Method)
		}
	}
	// The dominant-component hypothesis: for an app-heavy service,
	// resetting ServerApp rescues the most.
	for _, r := range rows {
		if r.Method != "mlinference/Infer" {
			continue
		}
		bestC := 0
		for c, v := range r.Reduction {
			if v > r.Reduction[bestC] {
				bestC = c
			}
		}
		if trace.Component(bestC) != trace.ServerApp {
			t.Errorf("mlinference best what-if component = %v, want ServerApp", trace.Component(bestC))
		}
	}
	if !strings.Contains(RenderWhatIf(rows), "Fig.15") {
		t.Error("render broken")
	}
}

func TestClusterVariation(t *testing.T) {
	res := ClusterVariation(testDS, "bigtable/SearchValue", 20)
	if len(res.Clusters) < 3 {
		t.Skipf("only %d clusters with enough spans", len(res.Clusters))
	}
	if res.Spread < 1.1 {
		t.Errorf("cluster P95 spread = %.2f, paper 1.24-10x", res.Spread)
	}
	for i := 1; i < len(res.Clusters); i++ {
		if res.Clusters[i].P95 < res.Clusters[i-1].P95 {
			t.Fatal("clusters not sorted by P95")
		}
	}
	_ = res.Render()
}

func TestExogenousAnalysis(t *testing.T) {
	panels := ExogenousAnalysis(testDS, []string{"bigtable/SearchValue", "kvstore/Search", "videometadata/GetMetadata"})
	if len(panels) != 12 {
		t.Fatalf("panels = %d, want 3 methods x 4 variables", len(panels))
	}
	// bigtable (app-heavy) must correlate positively with CPU util.
	for _, p := range panels {
		if p.Method == "bigtable/SearchValue" && p.Variable == VarCPUUtil {
			if p.Pearson < 0.02 {
				t.Errorf("bigtable tail latency vs CPU util r=%.3f, want positive", p.Pearson)
			}
		}
		if len(p.Centers) == 0 {
			t.Errorf("panel %s/%s empty", p.Method, p.Variable)
		}
	}
	_ = RenderExoPanels(panels)
}

func TestDiurnalAnalysis(t *testing.T) {
	db := monarch.New(30*time.Minute, 0)
	if err := workload.DeclareMetrics(db); err != nil {
		t.Fatal(err)
	}
	gen := workload.NewGenerator(testCat, testTopo, nil, 33)
	// Fast vs slow cluster by speed factor.
	fast, slow := testTopo.Clusters[0], testTopo.Clusters[0]
	for _, c := range testTopo.Clusters {
		if c.SpeedFactor < fast.SpeedFactor {
			fast = c
		}
		if c.SpeedFactor > slow.SpeedFactor {
			slow = c
		}
	}
	for _, cl := range []*sim.Cluster{fast, slow} {
		if err := workload.WriteDiurnalDay(db, gen, "bigtable/SearchValue", cl, 60); err != nil {
			t.Fatal(err)
		}
	}
	fr, err := DiurnalAnalysis(db, "bigtable/SearchValue", fast.Name)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := DiurnalAnalysis(db, "bigtable/SearchValue", slow.Name)
	if err != nil {
		t.Fatal(err)
	}
	if len(fr.P95) != 48 || len(sr.P95) != 48 {
		t.Fatalf("windows: fast %d slow %d", len(fr.P95), len(sr.P95))
	}
	// Latency must co-move with utilization in at least one cluster.
	if fr.Correlation[VarCPUUtil] < 0.1 && sr.Correlation[VarCPUUtil] < 0.1 {
		t.Errorf("no util-latency co-movement: fast %.2f slow %.2f",
			fr.Correlation[VarCPUUtil], sr.Correlation[VarCPUUtil])
	}
	_ = fr.Render()
	if _, err := DiurnalAnalysis(db, "bigtable/SearchValue", "no-such-cluster"); err == nil {
		t.Error("missing cluster should error")
	}
}

func TestCrossClusterAnalysis(t *testing.T) {
	gen := workload.NewGenerator(testCat, testTopo, nil, 44)
	m := testCat.MethodByName("spanner/ReadRows")
	server := testTopo.Clusters[m.HomeClusters[0]]
	res, err := CrossClusterAnalysis(gen, "spanner/ReadRows", server, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(testTopo.Clusters) {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Distance-sorted medians: the farthest client must be much slower
	// than the same-cluster client.
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if last.Median < 4*first.Median {
		t.Errorf("distance effect weak: near %v far %v", first.Median, last.Median)
	}
	if !res.WireDominatedBeyondRegion {
		t.Error("cross-region latency should be wire-dominated (§3.3.5)")
	}
	// Median latency should track the speed-of-light bound.
	if last.Median < last.MinWireRTT {
		t.Errorf("median %v below light bound %v", last.Median, last.MinWireRTT)
	}
	_ = res.Render()
	if _, err := CrossClusterAnalysis(gen, "nope", server, 10); err == nil {
		t.Error("unknown method should error")
	}
}

func TestCycleTax(t *testing.T) {
	res := CycleTax(testDS)
	if math.Abs(res.TaxShare-0.071) > 0.02 {
		t.Errorf("cycle tax = %.4f, paper 0.071", res.TaxShare)
	}
	_ = res.Render()
}

func TestCPUByMethodAndCorrelations(t *testing.T) {
	res := CPUByMethod(testDS)
	if len(res.Rows) < 400 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Heavy per-method tails: P99/median >= 5x for most methods.
	heavy := res.FractionOfMethods(func(s stats.Summary) bool { return s.P99 >= 5*s.P50 })
	if heavy < 0.6 {
		t.Errorf("heavy-tail fraction = %.3f", heavy)
	}
	corr := CPUCorrelationAnalysis(testDS)
	if math.Abs(corr.SizeVsCPU) > 0.35 || math.Abs(corr.LatencyVsCPU) > 0.35 {
		t.Errorf("CPU correlations too strong: size %.3f latency %.3f (paper: none)",
			corr.SizeVsCPU, corr.LatencyVsCPU)
	}
}

func TestErrorAnalysis(t *testing.T) {
	res := ErrorAnalysis(testDS)
	if res.ErrorRate < 0.005 || res.ErrorRate > 0.04 {
		t.Errorf("error rate = %.4f, paper 0.019", res.ErrorRate)
	}
	cancelled := res.Row(trace.Cancelled)
	if math.Abs(cancelled.CountShare-0.45) > 0.15 {
		t.Errorf("cancelled count share = %.3f, paper 0.45", cancelled.CountShare)
	}
	notFound := res.Row(trace.EntityNotFound)
	if math.Abs(notFound.CountShare-0.20*(1-cancelled.CountShare)/0.55) > 0.12 {
		t.Errorf("not-found count share = %.3f, paper ~0.20", notFound.CountShare)
	}
	if res.HedgeCancelShare < 0.5 {
		t.Errorf("hedged share of cancellations = %.3f, want dominant", res.HedgeCancelShare)
	}
	_ = res.Render()
}

func TestLoadBalanceAnalysis(t *testing.T) {
	res := LoadBalanceAnalysis(1)
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byName := make(map[string]LoadBalanceRow)
	for _, r := range res.Rows {
		byName[r.Service] = r
		// Clusters are imbalanced relative to machines for well-balanced
		// services (the §4.3 core finding).
		if r.ClusterSpread <= 0 {
			t.Errorf("%s: no cluster spread", r.Service)
		}
	}
	// Data-dependent services have wider machine spread than bigtable.
	if byName["spanner"].MachineSpread <= byName["bigtable"].MachineSpread {
		t.Errorf("spanner machine spread %.3f <= bigtable %.3f (paper: data-dependent skew)",
			byName["spanner"].MachineSpread, byName["bigtable"].MachineSpread)
	}
	_ = res.Render()
}
