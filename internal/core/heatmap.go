package core

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// RenderHeatmap draws the Fig. 2a-style per-method latency heatmap as
// ASCII art: the x-axis is the latency-sorted method rank (downsampled to
// the given width), the y-axis is a log-scaled latency grid, and each
// cell's shade is the fraction of the column method's calls landing in
// that latency band — the textual twin of the paper's color map.
func (r *PerMethodResult) RenderHeatmap(width int) string {
	if len(r.Rows) == 0 {
		return "(no methods)\n"
	}
	if width <= 0 {
		width = 60
	}
	if width > len(r.Rows) {
		width = len(r.Rows)
	}

	// Latency grid: log-spaced between the fleet's P1 floor and P999
	// ceiling.
	lo, hi := math.Inf(1), 0.0
	for _, row := range r.Rows {
		if row.Summary.P1 > 0 && row.Summary.P1 < lo {
			lo = row.Summary.P1
		}
		if row.Summary.P999 > hi {
			hi = row.Summary.P999
		}
	}
	if !(lo > 0) || hi <= lo {
		return "(degenerate distribution)\n"
	}
	const bands = 16
	logLo, logHi := math.Log(lo), math.Log(hi)

	bandOf := func(v float64) int {
		if v <= lo {
			return 0
		}
		if v >= hi {
			return bands - 1
		}
		return int((math.Log(v) - logLo) / (logHi - logLo) * (bands - 1))
	}

	// For each downsampled column, mark the percentile curve positions.
	type column struct {
		cells [bands]byte
	}
	shades := []byte{' ', '.', ':', '*', '#', '@'}
	cols := make([]column, width)
	for x := 0; x < width; x++ {
		row := r.Rows[x*len(r.Rows)/width]
		s := row.Summary
		// Approximate the method's latency density by the mass between
		// adjacent summary percentiles.
		marks := []struct {
			v    float64
			mass float64
		}{
			{s.P1, 0.01}, {s.P10, 0.09}, {s.P25, 0.15}, {s.P50, 0.25},
			{s.P75, 0.25}, {s.P90, 0.15}, {s.P95, 0.05}, {s.P99, 0.04}, {s.P999, 0.01},
		}
		var density [bands]float64
		prev := s.P1
		for _, m := range marks {
			loB, hiB := bandOf(prev), bandOf(m.v)
			if hiB < loB {
				loB, hiB = hiB, loB
			}
			span := float64(hiB - loB + 1)
			for b := loB; b <= hiB; b++ {
				density[b] += m.mass / span
			}
			prev = m.v
		}
		for b := 0; b < bands; b++ {
			shade := int(density[b] * float64(len(shades)) * 3)
			if shade >= len(shades) {
				shade = len(shades) - 1
			}
			cols[x].cells[b] = shades[shade]
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Heatmap: per-method %s (x: %d methods by median; y: log latency)\n",
		r.What, len(r.Rows))
	for band := bands - 1; band >= 0; band-- {
		label := ""
		if band%4 == 0 || band == bands-1 {
			v := math.Exp(logLo + float64(band)/(bands-1)*(logHi-logLo))
			label = r.heatLabel(v)
		}
		fmt.Fprintf(&b, "  %10s |", label)
		for x := 0; x < width; x++ {
			b.WriteByte(cols[x].cells[band])
		}
		b.WriteString("|\n")
	}
	fmt.Fprintf(&b, "  %10s +%s+\n", "", strings.Repeat("-", width))
	if width >= 26 {
		fmt.Fprintf(&b, "  %10s  fast methods %s slow methods\n", "", strings.Repeat(" ", width-26))
	}
	return b.String()
}

func (r *PerMethodResult) heatLabel(v float64) string {
	if r.Unit == "ns" {
		return time.Duration(int64(v)).Round(time.Microsecond).String()
	}
	return fmt.Sprintf("%.3g%s", v, r.Unit)
}
