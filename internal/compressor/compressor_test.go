package compressor

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"
)

func TestNoneIsPassThrough(t *testing.T) {
	c := New(None, nil)
	in := []byte("payload")
	out, err := c.Compress(in)
	if err != nil {
		t.Fatal(err)
	}
	if &out[0] != &in[0] {
		t.Error("None should not copy")
	}
	back, err := c.Decompress(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, in) {
		t.Error("round trip mismatch")
	}
	if c.Stats().Ratio() != 1 {
		t.Errorf("ratio = %v", c.Stats().Ratio())
	}
}

func TestFlateRoundTrip(t *testing.T) {
	c := New(Flate, nil)
	in := bytes.Repeat([]byte("compressible data "), 200)
	out, err := c.Compress(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) >= len(in) {
		t.Errorf("repetitive input did not shrink: %d -> %d", len(in), len(out))
	}
	back, err := c.Decompress(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, in) {
		t.Error("round trip mismatch")
	}
	if r := c.Stats().Ratio(); r >= 1 {
		t.Errorf("ratio = %v, want < 1", r)
	}
}

func TestFlateRoundTripProperty(t *testing.T) {
	c := New(Flate, nil)
	f := func(payload []byte) bool {
		out, err := c.Compress(payload)
		if err != nil {
			return false
		}
		back, err := c.Decompress(out)
		if err != nil {
			return false
		}
		return bytes.Equal(back, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEmptyPayload(t *testing.T) {
	c := New(Flate, nil)
	out, err := c.Compress(nil)
	if err != nil {
		t.Fatal(err)
	}
	back, err := c.Decompress(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 0 {
		t.Errorf("empty round trip gave %d bytes", len(back))
	}
}

func TestDecompressGarbage(t *testing.T) {
	c := New(Flate, nil)
	if _, err := c.Decompress([]byte{0xDE, 0xAD, 0xBE, 0xEF}); err == nil {
		t.Error("garbage should not decompress")
	}
}

func TestStatsAccounting(t *testing.T) {
	stats := &Stats{}
	c := New(Flate, stats)
	in := bytes.Repeat([]byte("x"), 1000)
	out, _ := c.Compress(in)
	_, _ = c.Decompress(out)
	if got := stats.CompressCalls.Load(); got != 1 {
		t.Errorf("compress calls = %d", got)
	}
	if got := stats.DecompressCalls.Load(); got != 1 {
		t.Errorf("decompress calls = %d", got)
	}
	if got := stats.BytesIn.Load(); got != 1000 {
		t.Errorf("bytes in = %d", got)
	}
	if got := stats.BytesOut.Load(); got != uint64(len(out)) {
		t.Errorf("bytes out = %d, want %d", got, len(out))
	}
}

func TestConcurrentCompress(t *testing.T) {
	c := New(Flate, nil)
	in := bytes.Repeat([]byte("concurrent payload "), 100)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, err := c.Compress(in)
			if err != nil {
				errs <- err
				return
			}
			back, err := c.Decompress(out)
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(back, in) {
				errs <- bytes.ErrTooLarge // any sentinel
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestAlgorithmString(t *testing.T) {
	if None.String() != "none" || Flate.String() != "flate" {
		t.Error("algorithm names wrong")
	}
	if Algorithm(99).String() == "" {
		t.Error("unknown algorithm should still format")
	}
}
