// Package compressor provides the payload compression stage of the RPC
// stack. Compression is the single largest component of the paper's RPC
// cycle tax (3.1% of all fleet cycles, Fig. 20), so the package meters
// bytes in/out and an explicit work counter that the GWP profiler uses for
// attribution.
package compressor

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// Algorithm selects a compression scheme.
type Algorithm uint8

// Supported algorithms. None passes payloads through untouched; Flate is
// DEFLATE at a fast level, standing in for the fleet's production
// compressors.
const (
	None Algorithm = iota
	Flate
)

// String returns the algorithm name.
func (a Algorithm) String() string {
	switch a {
	case None:
		return "none"
	case Flate:
		return "flate"
	default:
		return fmt.Sprintf("algorithm(%d)", a)
	}
}

// Stats accumulates compression work across a process, mirroring the
// counters a production RPC stack exports for profiling. Skips and
// SkippedBytes count payloads an adaptive-compression gate sent
// uncompressed — cycles the compression tax did not spend.
type Stats struct {
	CompressCalls   atomic.Uint64
	DecompressCalls atomic.Uint64
	BytesIn         atomic.Uint64 // uncompressed bytes fed to Compress
	BytesOut        atomic.Uint64 // compressed bytes produced
	Skips           atomic.Uint64 // payloads the adaptive gate left uncompressed
	SkippedBytes    atomic.Uint64 // payload bytes those skips covered
}

// Ratio returns the aggregate compression ratio (out/in), or 1 when no
// bytes have been compressed.
func (s *Stats) Ratio() float64 {
	in := s.BytesIn.Load()
	if in == 0 {
		return 1
	}
	return float64(s.BytesOut.Load()) / float64(in)
}

// Compressor compresses and decompresses RPC payloads. It is safe for
// concurrent use; flate writers are pooled.
type Compressor struct {
	algo  Algorithm
	stats *Stats
	wpool sync.Pool // *flate.Writer
}

// New returns a compressor using the given algorithm. stats may be nil.
func New(algo Algorithm, stats *Stats) *Compressor {
	if stats == nil {
		stats = &Stats{}
	}
	c := &Compressor{algo: algo, stats: stats}
	c.wpool.New = func() any {
		w, err := flate.NewWriter(io.Discard, flate.BestSpeed)
		if err != nil {
			panic(err) // BestSpeed is always a valid level
		}
		return w
	}
	return c
}

// Algorithm returns the configured algorithm.
func (c *Compressor) Algorithm() Algorithm { return c.algo }

// Stats returns the shared counters.
func (c *Compressor) Stats() *Stats { return c.stats }

// Compress returns the compressed form of payload. With algorithm None the
// input is returned unchanged (no copy).
func (c *Compressor) Compress(payload []byte) ([]byte, error) {
	c.stats.CompressCalls.Add(1)
	c.stats.BytesIn.Add(uint64(len(payload)))
	if c.algo == None {
		c.stats.BytesOut.Add(uint64(len(payload)))
		return payload, nil
	}
	var buf bytes.Buffer
	buf.Grow(len(payload)/2 + 64)
	w := c.wpool.Get().(*flate.Writer)
	w.Reset(&buf)
	if _, err := w.Write(payload); err != nil {
		c.wpool.Put(w)
		return nil, fmt.Errorf("compressor: %w", err)
	}
	if err := w.Close(); err != nil {
		c.wpool.Put(w)
		return nil, fmt.Errorf("compressor: %w", err)
	}
	c.wpool.Put(w)
	out := buf.Bytes()
	c.stats.BytesOut.Add(uint64(len(out)))
	return out, nil
}

// Decompress reverses Compress.
func (c *Compressor) Decompress(payload []byte) ([]byte, error) {
	c.stats.DecompressCalls.Add(1)
	if c.algo == None {
		return payload, nil
	}
	r := flate.NewReader(bytes.NewReader(payload))
	defer r.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("compressor: %w", err)
	}
	return out, nil
}
