// Package codec implements the message serialization layer of the RPC
// stack: a compact field-tagged binary encoding in the spirit of protocol
// buffers, driven by message descriptors rather than generated code.
//
// The paper attributes 1.2% of all fleet CPU cycles to serialization
// (Fig. 20); this package meters the bytes it produces and the work it
// performs so the GWP profiler can attribute cycles the same way.
package codec

import (
	"errors"
	"fmt"
	"math"

	"rpcscale/internal/wire"
)

// FieldType enumerates supported field kinds.
type FieldType uint8

// Supported field types.
const (
	TypeUint64 FieldType = iota
	TypeInt64
	TypeDouble
	TypeBool
	TypeString
	TypeBytes
	TypeMessage // nested message
)

// wire types, protobuf-style: 0 = varint, 1 = 64-bit fixed, 2 = length-
// delimited.
const (
	wtVarint  = 0
	wtFixed64 = 1
	wtBytes   = 2
)

func (t FieldType) wireType() uint64 {
	switch t {
	case TypeUint64, TypeInt64, TypeBool:
		return wtVarint
	case TypeDouble:
		return wtFixed64
	default:
		return wtBytes
	}
}

// Field describes one field of a message type.
type Field struct {
	Number   uint64 // tag number, >= 1, unique within the message
	Name     string
	Type     FieldType
	Repeated bool
	// Msg is the descriptor for TypeMessage fields.
	Msg *Descriptor
}

// Descriptor describes a message type: an ordered list of fields. It plays
// the role of a compiled .proto message for a stack without codegen.
type Descriptor struct {
	Name   string
	Fields []Field
	byNum  map[uint64]*Field
}

// NewDescriptor validates and indexes a message descriptor.
func NewDescriptor(name string, fields ...Field) (*Descriptor, error) {
	d := &Descriptor{Name: name, Fields: fields, byNum: make(map[uint64]*Field, len(fields))}
	for i := range fields {
		f := &d.Fields[i]
		if f.Number == 0 {
			return nil, fmt.Errorf("codec: %s.%s has field number 0", name, f.Name)
		}
		if _, dup := d.byNum[f.Number]; dup {
			return nil, fmt.Errorf("codec: %s has duplicate field number %d", name, f.Number)
		}
		if f.Type == TypeMessage && f.Msg == nil {
			return nil, fmt.Errorf("codec: %s.%s is a message field without a descriptor", name, f.Name)
		}
		d.byNum[f.Number] = f
	}
	return d, nil
}

// MustDescriptor is NewDescriptor that panics on error; for package-level
// descriptor construction.
func MustDescriptor(name string, fields ...Field) *Descriptor {
	d, err := NewDescriptor(name, fields...)
	if err != nil {
		panic(err)
	}
	return d
}

// FieldByNumber returns the field with the given tag, or nil.
func (d *Descriptor) FieldByNumber(n uint64) *Field { return d.byNum[n] }

// Message is a dynamic message: field number -> value(s). Values are
// uint64, int64, float64, bool, string, []byte, or *Message according to
// the descriptor; repeated fields hold slices of those.
type Message struct {
	Desc   *Descriptor
	fields map[uint64]any
}

// NewMessage returns an empty message of the given type.
func NewMessage(d *Descriptor) *Message {
	return &Message{Desc: d, fields: make(map[uint64]any)}
}

// Set assigns a singular field value. It panics on an unknown field number
// or a type mismatch — these are programming errors, equivalent to a
// compile error under codegen.
func (m *Message) Set(num uint64, v any) *Message {
	f := m.Desc.FieldByNumber(num)
	if f == nil {
		panic(fmt.Sprintf("codec: %s has no field %d", m.Desc.Name, num))
	}
	if f.Repeated {
		panic(fmt.Sprintf("codec: %s.%s is repeated; use Append", m.Desc.Name, f.Name))
	}
	checkType(f, v)
	m.fields[num] = v
	return m
}

// Append adds a value to a repeated field.
func (m *Message) Append(num uint64, v any) *Message {
	f := m.Desc.FieldByNumber(num)
	if f == nil {
		panic(fmt.Sprintf("codec: %s has no field %d", m.Desc.Name, num))
	}
	if !f.Repeated {
		panic(fmt.Sprintf("codec: %s.%s is singular; use Set", m.Desc.Name, f.Name))
	}
	checkType(f, v)
	cur, _ := m.fields[num].([]any)
	m.fields[num] = append(cur, v)
	return m
}

func checkType(f *Field, v any) {
	ok := false
	switch f.Type {
	case TypeUint64:
		_, ok = v.(uint64)
	case TypeInt64:
		_, ok = v.(int64)
	case TypeDouble:
		_, ok = v.(float64)
	case TypeBool:
		_, ok = v.(bool)
	case TypeString:
		_, ok = v.(string)
	case TypeBytes:
		_, ok = v.([]byte)
	case TypeMessage:
		_, ok = v.(*Message)
	}
	if !ok {
		panic(fmt.Sprintf("codec: field %s has type %d, got %T", f.Name, f.Type, v))
	}
}

// Get returns a singular field value and whether it was set.
func (m *Message) Get(num uint64) (any, bool) {
	v, ok := m.fields[num]
	return v, ok
}

// GetUint64 returns the field value or 0.
func (m *Message) GetUint64(num uint64) uint64 {
	if v, ok := m.fields[num].(uint64); ok {
		return v
	}
	return 0
}

// GetInt64 returns the field value or 0.
func (m *Message) GetInt64(num uint64) int64 {
	if v, ok := m.fields[num].(int64); ok {
		return v
	}
	return 0
}

// GetDouble returns the field value or 0.
func (m *Message) GetDouble(num uint64) float64 {
	if v, ok := m.fields[num].(float64); ok {
		return v
	}
	return 0
}

// GetBool returns the field value or false.
func (m *Message) GetBool(num uint64) bool {
	if v, ok := m.fields[num].(bool); ok {
		return v
	}
	return false
}

// GetString returns the field value or "".
func (m *Message) GetString(num uint64) string {
	if v, ok := m.fields[num].(string); ok {
		return v
	}
	return ""
}

// GetBytes returns the field value or nil.
func (m *Message) GetBytes(num uint64) []byte {
	if v, ok := m.fields[num].([]byte); ok {
		return v
	}
	return nil
}

// GetMessage returns a nested message or nil.
func (m *Message) GetMessage(num uint64) *Message {
	if v, ok := m.fields[num].(*Message); ok {
		return v
	}
	return nil
}

// GetRepeated returns the values of a repeated field (possibly nil).
func (m *Message) GetRepeated(num uint64) []any {
	v, _ := m.fields[num].([]any)
	return v
}

// Len returns the number of set fields.
func (m *Message) Len() int { return len(m.fields) }

// Marshal encodes the message.
func Marshal(m *Message) ([]byte, error) {
	return appendMessage(nil, m)
}

func appendMessage(buf []byte, m *Message) ([]byte, error) {
	// Encode fields in descriptor order for deterministic output.
	for i := range m.Desc.Fields {
		f := &m.Desc.Fields[i]
		v, ok := m.fields[f.Number]
		if !ok {
			continue
		}
		if f.Repeated {
			for _, item := range v.([]any) {
				var err error
				buf, err = appendField(buf, f, item)
				if err != nil {
					return nil, err
				}
			}
			continue
		}
		var err error
		buf, err = appendField(buf, f, v)
		if err != nil {
			return nil, err
		}
	}
	return buf, nil
}

func appendField(buf []byte, f *Field, v any) ([]byte, error) {
	key := f.Number<<3 | f.Type.wireType()
	buf = wire.AppendUvarint(buf, key)
	switch f.Type {
	case TypeUint64:
		buf = wire.AppendUvarint(buf, v.(uint64))
	case TypeInt64:
		buf = wire.AppendVarint(buf, v.(int64))
	case TypeBool:
		b := uint64(0)
		if v.(bool) {
			b = 1
		}
		buf = wire.AppendUvarint(buf, b)
	case TypeDouble:
		bits := math.Float64bits(v.(float64))
		buf = append(buf, byte(bits), byte(bits>>8), byte(bits>>16), byte(bits>>24),
			byte(bits>>32), byte(bits>>40), byte(bits>>48), byte(bits>>56))
	case TypeString:
		s := v.(string)
		buf = wire.AppendUvarint(buf, uint64(len(s)))
		buf = append(buf, s...)
	case TypeBytes:
		b := v.([]byte)
		buf = wire.AppendUvarint(buf, uint64(len(b)))
		buf = append(buf, b...)
	case TypeMessage:
		sub, err := appendMessage(nil, v.(*Message))
		if err != nil {
			return nil, err
		}
		buf = wire.AppendUvarint(buf, uint64(len(sub)))
		buf = append(buf, sub...)
	default:
		return nil, fmt.Errorf("codec: unsupported field type %d", f.Type)
	}
	return buf, nil
}

// ErrTruncated reports a message that ends mid-field.
var ErrTruncated = errors.New("codec: truncated message")

// Unmarshal decodes buf into a new message of type d. Unknown fields are
// skipped (forward compatibility), mirroring protobuf semantics.
func Unmarshal(d *Descriptor, buf []byte) (*Message, error) {
	m := NewMessage(d)
	for len(buf) > 0 {
		key, n := wire.Uvarint(buf)
		if n <= 0 {
			return nil, ErrTruncated
		}
		buf = buf[n:]
		num, wt := key>>3, key&0x7
		f := d.FieldByNumber(num)
		var v any
		switch wt {
		case wtVarint:
			x, n := wire.Uvarint(buf)
			if n <= 0 {
				return nil, ErrTruncated
			}
			buf = buf[n:]
			if f != nil {
				switch f.Type {
				case TypeUint64:
					v = x
				case TypeInt64:
					// Re-decode as zig-zag: we encoded with AppendVarint.
					v = int64(x>>1) ^ -int64(x&1)
				case TypeBool:
					v = x != 0
				default:
					return nil, fmt.Errorf("codec: field %s: wire type mismatch", f.Name)
				}
			}
		case wtFixed64:
			if len(buf) < 8 {
				return nil, ErrTruncated
			}
			bits := uint64(buf[0]) | uint64(buf[1])<<8 | uint64(buf[2])<<16 | uint64(buf[3])<<24 |
				uint64(buf[4])<<32 | uint64(buf[5])<<40 | uint64(buf[6])<<48 | uint64(buf[7])<<56
			buf = buf[8:]
			if f != nil {
				if f.Type != TypeDouble {
					return nil, fmt.Errorf("codec: field %s: wire type mismatch", f.Name)
				}
				v = math.Float64frombits(bits)
			}
		case wtBytes:
			length, n := wire.Uvarint(buf)
			if n <= 0 || uint64(len(buf)-n) < length {
				return nil, ErrTruncated
			}
			payload := buf[n : n+int(length)]
			buf = buf[n+int(length):]
			if f != nil {
				switch f.Type {
				case TypeString:
					v = string(payload)
				case TypeBytes:
					v = append([]byte(nil), payload...)
				case TypeMessage:
					sub, err := Unmarshal(f.Msg, payload)
					if err != nil {
						return nil, err
					}
					v = sub
				default:
					return nil, fmt.Errorf("codec: field %s: wire type mismatch", f.Name)
				}
			}
		default:
			return nil, fmt.Errorf("codec: unknown wire type %d", wt)
		}
		if f == nil || v == nil {
			continue // unknown field skipped
		}
		if f.Repeated {
			m.Append(num, v)
		} else {
			m.Set(num, v)
		}
	}
	return m, nil
}

// Size returns the encoded size of m without allocating the encoding.
func Size(m *Message) int {
	size := 0
	for i := range m.Desc.Fields {
		f := &m.Desc.Fields[i]
		v, ok := m.fields[f.Number]
		if !ok {
			continue
		}
		if f.Repeated {
			for _, item := range v.([]any) {
				size += fieldSize(f, item)
			}
		} else {
			size += fieldSize(f, v)
		}
	}
	return size
}

func fieldSize(f *Field, v any) int {
	key := wire.SizeUvarint(f.Number<<3 | f.Type.wireType())
	switch f.Type {
	case TypeUint64:
		return key + wire.SizeUvarint(v.(uint64))
	case TypeInt64:
		x := v.(int64)
		return key + wire.SizeUvarint(uint64(x<<1)^uint64(x>>63))
	case TypeBool:
		return key + 1
	case TypeDouble:
		return key + 8
	case TypeString:
		n := len(v.(string))
		return key + wire.SizeUvarint(uint64(n)) + n
	case TypeBytes:
		n := len(v.([]byte))
		return key + wire.SizeUvarint(uint64(n)) + n
	case TypeMessage:
		n := Size(v.(*Message))
		return key + wire.SizeUvarint(uint64(n)) + n
	}
	return 0
}
