package codec

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func testDescriptor(t *testing.T) *Descriptor {
	t.Helper()
	inner := MustDescriptor("Inner",
		Field{Number: 1, Name: "id", Type: TypeUint64},
		Field{Number: 2, Name: "tag", Type: TypeString},
	)
	return MustDescriptor("Outer",
		Field{Number: 1, Name: "u", Type: TypeUint64},
		Field{Number: 2, Name: "i", Type: TypeInt64},
		Field{Number: 3, Name: "d", Type: TypeDouble},
		Field{Number: 4, Name: "b", Type: TypeBool},
		Field{Number: 5, Name: "s", Type: TypeString},
		Field{Number: 6, Name: "raw", Type: TypeBytes},
		Field{Number: 7, Name: "inner", Type: TypeMessage, Msg: inner},
		Field{Number: 8, Name: "list", Type: TypeUint64, Repeated: true},
		Field{Number: 9, Name: "msgs", Type: TypeMessage, Msg: inner, Repeated: true},
	)
}

func TestMarshalUnmarshalAllTypes(t *testing.T) {
	d := testDescriptor(t)
	inner := NewMessage(d.FieldByNumber(7).Msg).Set(1, uint64(5)).Set(2, "five")
	m := NewMessage(d).
		Set(1, uint64(42)).
		Set(2, int64(-7)).
		Set(3, 3.14159).
		Set(4, true).
		Set(5, "hello world").
		Set(6, []byte{1, 2, 3}).
		Set(7, inner).
		Append(8, uint64(10)).
		Append(8, uint64(20))
	m.Append(9, NewMessage(d.FieldByNumber(7).Msg).Set(1, uint64(1)))
	m.Append(9, NewMessage(d.FieldByNumber(7).Msg).Set(1, uint64(2)))

	buf, err := Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if got := Size(m); got != len(buf) {
		t.Errorf("Size = %d, encoded = %d", got, len(buf))
	}

	out, err := Unmarshal(d, buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.GetUint64(1) != 42 {
		t.Errorf("u = %d", out.GetUint64(1))
	}
	if out.GetInt64(2) != -7 {
		t.Errorf("i = %d", out.GetInt64(2))
	}
	if math.Abs(out.GetDouble(3)-3.14159) > 1e-12 {
		t.Errorf("d = %v", out.GetDouble(3))
	}
	if !out.GetBool(4) {
		t.Error("b = false")
	}
	if out.GetString(5) != "hello world" {
		t.Errorf("s = %q", out.GetString(5))
	}
	if !bytes.Equal(out.GetBytes(6), []byte{1, 2, 3}) {
		t.Errorf("raw = %v", out.GetBytes(6))
	}
	if in := out.GetMessage(7); in == nil || in.GetUint64(1) != 5 || in.GetString(2) != "five" {
		t.Errorf("inner = %+v", in)
	}
	list := out.GetRepeated(8)
	if len(list) != 2 || list[0].(uint64) != 10 || list[1].(uint64) != 20 {
		t.Errorf("list = %v", list)
	}
	msgs := out.GetRepeated(9)
	if len(msgs) != 2 || msgs[1].(*Message).GetUint64(1) != 2 {
		t.Errorf("msgs = %v", msgs)
	}
}

func TestEmptyMessage(t *testing.T) {
	d := testDescriptor(t)
	m := NewMessage(d)
	buf, err := Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != 0 {
		t.Errorf("empty message encodes to %d bytes", len(buf))
	}
	out, err := Unmarshal(d, buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Errorf("decoded empty message has %d fields", out.Len())
	}
}

func TestUnknownFieldsSkipped(t *testing.T) {
	// Encode with a wide descriptor, decode with a narrow one.
	wide := MustDescriptor("Wide",
		Field{Number: 1, Name: "keep", Type: TypeUint64},
		Field{Number: 2, Name: "dropV", Type: TypeUint64},
		Field{Number: 3, Name: "dropS", Type: TypeString},
		Field{Number: 4, Name: "dropD", Type: TypeDouble},
	)
	narrow := MustDescriptor("Narrow",
		Field{Number: 1, Name: "keep", Type: TypeUint64},
	)
	m := NewMessage(wide).Set(1, uint64(1)).Set(2, uint64(2)).Set(3, "x").Set(4, 1.5)
	buf, err := Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Unmarshal(narrow, buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.GetUint64(1) != 1 || out.Len() != 1 {
		t.Errorf("decoded %+v", out)
	}
}

func TestTruncatedInput(t *testing.T) {
	d := testDescriptor(t)
	m := NewMessage(d).Set(5, "some string data").Set(3, 2.5)
	buf, _ := Marshal(m)
	for cut := 1; cut < len(buf); cut++ {
		if _, err := Unmarshal(d, buf[:cut]); err == nil {
			// Some prefixes are valid messages (complete fields); only
			// mid-field cuts must error. Verify by checking the decode
			// consumed exactly the prefix — Unmarshal errors otherwise.
			continue
		}
	}
	// A cut inside the string length payload must fail.
	if _, err := Unmarshal(d, buf[:len(buf)-1]); err == nil {
		t.Error("expected error for truncated tail")
	}
}

func TestWireTypeMismatch(t *testing.T) {
	// Field 1 encoded as varint but declared as string in the decoder.
	enc := MustDescriptor("E", Field{Number: 1, Name: "v", Type: TypeUint64})
	dec := MustDescriptor("D", Field{Number: 1, Name: "v", Type: TypeString})
	buf, _ := Marshal(NewMessage(enc).Set(1, uint64(9)))
	if _, err := Unmarshal(dec, buf); err == nil {
		t.Error("expected wire type mismatch error")
	}
}

func TestDescriptorValidation(t *testing.T) {
	if _, err := NewDescriptor("Bad", Field{Number: 0, Name: "zero", Type: TypeUint64}); err == nil {
		t.Error("field number 0 should be rejected")
	}
	if _, err := NewDescriptor("Bad",
		Field{Number: 1, Name: "a", Type: TypeUint64},
		Field{Number: 1, Name: "b", Type: TypeUint64}); err == nil {
		t.Error("duplicate field numbers should be rejected")
	}
	if _, err := NewDescriptor("Bad", Field{Number: 1, Name: "m", Type: TypeMessage}); err == nil {
		t.Error("message field without descriptor should be rejected")
	}
}

func TestSetValidation(t *testing.T) {
	d := testDescriptor(t)
	m := NewMessage(d)
	for _, fn := range []func(){
		func() { m.Set(999, uint64(1)) },     // unknown field
		func() { m.Set(1, "not a uint") },    // type mismatch
		func() { m.Set(8, uint64(1)) },       // repeated via Set
		func() { m.Append(1, uint64(1)) },    // singular via Append
		func() { m.Append(999, uint64(1)) },  // unknown repeated
		func() { m.Append(8, "wrong type") }, // repeated type mismatch
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestGettersZeroValues(t *testing.T) {
	d := testDescriptor(t)
	m := NewMessage(d)
	if m.GetUint64(1) != 0 || m.GetInt64(2) != 0 || m.GetDouble(3) != 0 ||
		m.GetBool(4) || m.GetString(5) != "" || m.GetBytes(6) != nil ||
		m.GetMessage(7) != nil || m.GetRepeated(8) != nil {
		t.Error("unset getters should return zero values")
	}
	if _, ok := m.Get(1); ok {
		t.Error("Get on unset field should report !ok")
	}
}

func TestZigZagNegativeRoundTrip(t *testing.T) {
	d := MustDescriptor("Z", Field{Number: 1, Name: "i", Type: TypeInt64})
	f := func(x int64) bool {
		buf, err := Marshal(NewMessage(d).Set(1, x))
		if err != nil {
			return false
		}
		out, err := Unmarshal(d, buf)
		if err != nil {
			return false
		}
		return out.GetInt64(1) == x
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMarshalDeterministic(t *testing.T) {
	d := testDescriptor(t)
	build := func() *Message {
		return NewMessage(d).Set(5, "det").Set(1, uint64(1)).Set(4, true)
	}
	a, _ := Marshal(build())
	b, _ := Marshal(build())
	if !bytes.Equal(a, b) {
		t.Error("marshal output not deterministic")
	}
}

func TestSizeMatchesEncodingProperty(t *testing.T) {
	d := testDescriptor(t)
	f := func(u uint64, i int64, s string, raw []byte, b bool) bool {
		m := NewMessage(d).Set(1, u).Set(2, i).Set(5, s).Set(4, b)
		if raw != nil {
			m.Set(6, raw)
		}
		buf, err := Marshal(m)
		if err != nil {
			return false
		}
		return Size(m) == len(buf)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDeepNesting(t *testing.T) {
	leaf := MustDescriptor("Leaf", Field{Number: 1, Name: "v", Type: TypeUint64})
	d := leaf
	// Build a 20-deep recursive descriptor chain.
	for i := 0; i < 20; i++ {
		d = MustDescriptor("Node",
			Field{Number: 1, Name: "child", Type: TypeMessage, Msg: d},
		)
	}
	// And a 20-deep message.
	m := NewMessage(leaf).Set(1, uint64(7))
	desc := leaf
	for i := 0; i < 20; i++ {
		parentDesc := MustDescriptor("Node",
			Field{Number: 1, Name: "child", Type: TypeMessage, Msg: desc},
		)
		m = NewMessage(parentDesc).Set(1, m)
		desc = parentDesc
	}
	buf, err := Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Unmarshal(desc, buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		out = out.GetMessage(1)
		if out == nil {
			t.Fatalf("nesting lost at depth %d", i)
		}
	}
	if out.GetUint64(1) != 7 {
		t.Errorf("leaf value = %d", out.GetUint64(1))
	}
}

func TestUnmarshalGarbage(t *testing.T) {
	d := testDescriptor(t)
	for _, garbage := range [][]byte{
		{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF},
		{0x0F}, // wire type 7 (invalid)
		{0x2A}, // field 5 (string) with no length
	} {
		if _, err := Unmarshal(d, garbage); err == nil {
			t.Errorf("garbage %x decoded without error", garbage)
		}
	}
}
