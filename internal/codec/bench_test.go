package codec

import "testing"

var benchDesc = MustDescriptor("Bench",
	Field{Number: 1, Name: "id", Type: TypeUint64},
	Field{Number: 2, Name: "name", Type: TypeString},
	Field{Number: 3, Name: "payload", Type: TypeBytes},
	Field{Number: 4, Name: "score", Type: TypeDouble},
	Field{Number: 5, Name: "tags", Type: TypeUint64, Repeated: true},
)

func benchMessage() *Message {
	m := NewMessage(benchDesc).
		Set(1, uint64(123456)).
		Set(2, "bench message with a medium-length name").
		Set(3, make([]byte, 1024)).
		Set(4, 3.14159)
	for i := 0; i < 8; i++ {
		m.Append(5, uint64(i*7))
	}
	return m
}

func BenchmarkMarshal(b *testing.B) {
	m := benchMessage()
	size := Size(m)
	b.SetBytes(int64(size))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Marshal(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshal(b *testing.B) {
	buf, err := Marshal(benchMessage())
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(benchDesc, buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSize(b *testing.B) {
	m := benchMessage()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if Size(m) == 0 {
			b.Fatal("zero size")
		}
	}
}
