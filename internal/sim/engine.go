// Package sim provides the fleet simulation substrate standing in for the
// production environment the paper measured: a discrete-event engine, a
// geographic topology with a speed-of-light WAN latency model, per-cluster
// exogenous state (CPU utilization, memory bandwidth, scheduling wakeup
// delays, CPI) with diurnal dynamics, and queueing models for server
// residence time.
//
// The workload layer (internal/workload) drives these models to produce
// trace spans whose distributions are emergent — the simulator never
// fabricates a figure's numbers directly; it produces per-RPC component
// latencies from structural models, and the analyses aggregate them.
package sim

import (
	"container/heap"
	"time"
)

// Engine is a single-threaded discrete-event scheduler. Time is a
// time.Duration offset from the simulation epoch. Engines are not safe
// for concurrent use: all model code runs inside event callbacks.
type Engine struct {
	now    time.Duration
	seq    uint64
	events eventHeap
}

// NewEngine returns an engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulation time.
func (e *Engine) Now() time.Duration { return e.now }

// At schedules fn at absolute simulation time t. Scheduling in the past
// (t < Now) fires the event at the current time instead, preserving
// causal order.
func (e *Engine) At(t time.Duration, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.events, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn d after the current time.
func (e *Engine) After(d time.Duration, fn func()) { e.At(e.now+d, fn) }

// Step runs the next event, reporting whether one existed.
func (e *Engine) Step() bool {
	if e.events.Len() == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*event)
	e.now = ev.at
	ev.fn()
	return true
}

// Run executes events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events up to and including time t; the clock ends at
// t even if the event queue drains earlier.
func (e *Engine) RunUntil(t time.Duration) {
	for e.events.Len() > 0 && e.events[0].at <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// Pending returns the number of scheduled events.
func (e *Engine) Pending() int { return e.events.Len() }

// event is one scheduled callback; seq breaks ties FIFO.
type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
