package sim

import (
	"time"

	"rpcscale/internal/stats"
)

// QueueWait samples the time a request spends waiting in a server-side
// queue whose utilization is util, for a job whose mean service time is
// meanService. The model is an M/G/1-flavored approximation: with
// probability util the arrival finds the server busy and waits an
// exponential residual scaled by util/(1-util); scheduler wakeup delay is
// added on top. This keeps the emergent property the paper leans on —
// queuing latency explodes at the tail as utilization climbs — without
// simulating every machine of a 10K-method fleet at event granularity.
// (The event-granularity Server below is used where individual-machine
// dynamics matter: load balancing and queue-discipline ablations.)
func QueueWait(rng *stats.RNG, meanService time.Duration, util float64, exo Exo) time.Duration {
	wait := exo.WakeupDelay(rng)
	if util > 0.95 {
		util = 0.95
	}
	if util > 0 && rng.Bool(util) {
		mean := float64(meanService) * util / (1 - util)
		wait += time.Duration(rng.ExpFloat64() * mean)
	}
	return wait
}

// Discipline selects the service order of a Server's queue.
type Discipline int

// Queue disciplines.
const (
	// FIFO serves in arrival order; a mouse behind an elephant waits
	// (the HOL blocking of §2.5).
	FIFO Discipline = iota
	// SJF serves the shortest expected job first, the size-aware
	// discipline the paper's HOL discussion motivates.
	SJF
)

// String returns the discipline name.
func (d Discipline) String() string {
	if d == SJF {
		return "sjf"
	}
	return "fifo"
}

// Job is one unit of work submitted to a Server.
type Job struct {
	// Service is the job's service time demand.
	Service time.Duration
	// Done receives the job's queue wait once it completes.
	Done func(wait time.Duration)

	enqueued time.Duration
}

// Server is an event-level model of one machine's RPC worker pool: a
// bounded number of concurrent executors fed by a queue with a chosen
// discipline. It drives the load-balancing (Fig. 22) and queue-discipline
// ablation experiments.
type Server struct {
	Name string

	engine     *Engine
	capacity   int
	discipline Discipline

	busy  int
	queue []*Job

	// Accounting.
	served    uint64
	busyTime  time.Duration
	lastBusy  time.Duration
	maxQueue  int
	totalWait time.Duration
}

// NewServer returns a server with the given concurrent capacity.
func NewServer(engine *Engine, name string, capacity int, discipline Discipline) *Server {
	if capacity <= 0 {
		capacity = 1
	}
	return &Server{Name: name, engine: engine, capacity: capacity, discipline: discipline}
}

// Submit enqueues a job at the current simulation time.
func (s *Server) Submit(j *Job) {
	j.enqueued = s.engine.Now()
	if s.busy < s.capacity {
		s.start(j)
		return
	}
	s.queue = append(s.queue, j)
	if len(s.queue) > s.maxQueue {
		s.maxQueue = len(s.queue)
	}
}

func (s *Server) start(j *Job) {
	now := s.engine.Now()
	wait := now - j.enqueued
	s.totalWait += wait
	if s.busy == 0 {
		s.lastBusy = now
	}
	s.busy++
	s.engine.After(j.Service, func() {
		s.busy--
		s.served++
		if s.busy == 0 {
			s.busyTime += s.engine.Now() - s.lastBusy
		}
		if j.Done != nil {
			j.Done(wait)
		}
		s.dispatch()
	})
}

// dispatch starts the next queued job, honoring the discipline.
func (s *Server) dispatch() {
	if len(s.queue) == 0 || s.busy >= s.capacity {
		return
	}
	idx := 0
	if s.discipline == SJF {
		for i, j := range s.queue {
			if j.Service < s.queue[idx].Service {
				idx = i
			}
		}
	}
	j := s.queue[idx]
	s.queue = append(s.queue[:idx], s.queue[idx+1:]...)
	s.start(j)
}

// QueueLen returns the current queue depth.
func (s *Server) QueueLen() int { return len(s.queue) }

// InFlight returns how many jobs are executing.
func (s *Server) InFlight() int { return s.busy }

// Load returns the server's instantaneous load estimate — queue depth
// plus executing jobs. It implements loadbalance.Endpoint, so balancing
// policies pick over simulated machines and live pools alike.
func (s *Server) Load() int { return len(s.queue) + s.busy }

// Served returns the number of completed jobs.
func (s *Server) Served() uint64 { return s.served }

// MaxQueue returns the high-water queue depth.
func (s *Server) MaxQueue() int { return s.maxQueue }

// MeanWait returns the average queue wait of completed jobs.
func (s *Server) MeanWait() time.Duration {
	if s.served == 0 {
		return 0
	}
	return s.totalWait / time.Duration(s.served)
}

// Utilization returns the fraction of elapsed time the server was busy.
// Valid after the run completes (while idle).
func (s *Server) Utilization() float64 {
	now := s.engine.Now()
	if now == 0 {
		return 0
	}
	bt := s.busyTime
	if s.busy > 0 {
		bt += now - s.lastBusy
	}
	return float64(bt) / float64(now)
}
