package sim

import (
	"fmt"
	"math"
	"time"

	"rpcscale/internal/stats"
)

// Region is a geographic area hosting datacenters. Coordinates are in
// kilometres on a plane — crude relative to great-circle geometry but
// sufficient to reproduce the paper's distance-dominated cross-cluster
// latencies (Fig. 19), whose maximum WAN RTT is ~200 ms.
type Region struct {
	Name string
	X, Y float64 // km
}

// Datacenter groups clusters at one site.
type Datacenter struct {
	Name   string
	Region *Region
	X, Y   float64 // km, absolute
}

// Cluster is the placement unit of the study: a set of machines in one
// datacenter sharing a local network. The paper's per-cluster analyses
// (Figs. 16–18, 22) vary over these.
type Cluster struct {
	Name       string
	Datacenter *Datacenter
	Index      int // global index

	// Machines is the number of servers available to each service task
	// pool in this cluster (scaled down from production).
	Machines int

	// SpeedFactor scales compute speed: <1 is a newer/faster platform,
	// >1 older/slower. Drives the fast-vs-slow cluster split of Fig. 18.
	SpeedFactor float64

	// Exo holds the cluster's exogenous state model.
	Exo *ExoModel
}

// Topology is the fleet: regions, datacenters, clusters, and the derived
// inter-cluster wire latency model.
type Topology struct {
	Regions     []*Region
	Datacenters []*Datacenter
	Clusters    []*Cluster

	byName map[string]*Cluster
}

// worldRegions places six regions with rough real-world separations; the
// farthest pairs are ~17,000 km apart, giving ~170 ms fiber RTT, matching
// the paper's ~200 ms maximum WAN round trip with congestion included.
var worldRegions = []Region{
	{Name: "us-east", X: 0, Y: 0},
	{Name: "us-west", X: -4000, Y: 300},
	{Name: "europe", X: 6500, Y: 600},
	{Name: "asia", X: 11000, Y: -800},
	{Name: "southamerica", X: 1000, Y: -7500},
	{Name: "australia", X: 15000, Y: -7000},
}

// TopologyConfig sizes a generated topology.
type TopologyConfig struct {
	Regions            int // number of regions to use (<= 6)
	DatacentersPer     int // datacenters per region
	ClustersPerDC      int // clusters per datacenter
	MachinesPerCluster int
	Seed               uint64
}

// DefaultTopology is a medium fleet: 6 regions x 2 DCs x 3 clusters.
func DefaultTopology() TopologyConfig {
	return TopologyConfig{Regions: 6, DatacentersPer: 2, ClustersPerDC: 3, MachinesPerCluster: 16, Seed: 1}
}

// NewTopology generates a fleet topology. Cluster speed factors and
// exogenous baselines are drawn deterministically from the seed.
func NewTopology(cfg TopologyConfig) *Topology {
	if cfg.Regions <= 0 || cfg.Regions > len(worldRegions) {
		cfg.Regions = len(worldRegions)
	}
	if cfg.DatacentersPer <= 0 {
		cfg.DatacentersPer = 1
	}
	if cfg.ClustersPerDC <= 0 {
		cfg.ClustersPerDC = 1
	}
	if cfg.MachinesPerCluster <= 0 {
		cfg.MachinesPerCluster = 8
	}
	rng := stats.NewRNG(cfg.Seed).Child("topology")
	topo := &Topology{byName: make(map[string]*Cluster)}
	idx := 0
	for r := 0; r < cfg.Regions; r++ {
		region := worldRegions[r]
		topo.Regions = append(topo.Regions, &region)
		for d := 0; d < cfg.DatacentersPer; d++ {
			dc := &Datacenter{
				Name:   fmt.Sprintf("%s-dc%d", region.Name, d),
				Region: &region,
				X:      region.X + (rng.Float64()-0.5)*600,
				Y:      region.Y + (rng.Float64()-0.5)*600,
			}
			topo.Datacenters = append(topo.Datacenters, dc)
			for c := 0; c < cfg.ClustersPerDC; c++ {
				cl := &Cluster{
					Name:        fmt.Sprintf("%s-c%d", dc.Name, c),
					Datacenter:  dc,
					Index:       idx,
					Machines:    cfg.MachinesPerCluster,
					SpeedFactor: 0.8 + 0.5*rng.Float64(), // 0.8x..1.3x
					Exo:         NewExoModel(rng.Child(fmt.Sprintf("exo-%d", idx))),
				}
				idx++
				topo.Clusters = append(topo.Clusters, cl)
				topo.byName[cl.Name] = cl
			}
		}
	}
	return topo
}

// ClusterByName looks up a cluster, returning nil when absent.
func (t *Topology) ClusterByName(name string) *Cluster { return t.byName[name] }

// DistanceKm returns the straight-line distance between two clusters'
// datacenters.
func (t *Topology) DistanceKm(a, b *Cluster) float64 {
	dx := a.Datacenter.X - b.Datacenter.X
	dy := a.Datacenter.Y - b.Datacenter.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Proximity classifies a cluster pair the way Fig. 19's x-axis groups
// them.
type Proximity int

// Proximity classes, nearest first.
const (
	SameCluster Proximity = iota
	SameDatacenter
	SameRegion
	DifferentRegion
)

// String returns the class name.
func (p Proximity) String() string {
	switch p {
	case SameCluster:
		return "same-cluster"
	case SameDatacenter:
		return "same-datacenter"
	case SameRegion:
		return "same-region"
	default:
		return "different-region"
	}
}

// ProximityOf classifies a cluster pair.
func (t *Topology) ProximityOf(a, b *Cluster) Proximity {
	switch {
	case a == b:
		return SameCluster
	case a.Datacenter == b.Datacenter:
		return SameDatacenter
	case a.Datacenter.Region.Name == b.Datacenter.Region.Name:
		return SameRegion
	default:
		return DifferentRegion
	}
}

// Network latency model constants.
const (
	// intraClusterOneWay is the baseline one-way latency between two
	// machines in one cluster (ToR + fabric hops).
	intraClusterOneWay = 25 * time.Microsecond

	// interClusterSameDCOneWay adds the DC spine crossing.
	interClusterSameDCOneWay = 150 * time.Microsecond
)

// fiberOneWay converts a distance to one-way propagation delay in fiber
// (refractive index ~1.47 -> ~204,000 km/s -> ~4.9 microseconds per km).
func fiberOneWay(km float64) time.Duration {
	return time.Duration(km * 4.9 * float64(time.Microsecond))
}

// WireOneWay samples the one-way network latency between clusters for a
// message of size bytes, at background utilization netUtil (0..1):
// propagation + transmission + congestion-dependent queuing.
//
// Congestion follows the paper's finding that WAN tails exceed the maximum
// propagation delay: queuing delay is exponential in the common case with
// a Pareto spike tail whose probability rises with utilization.
func (t *Topology) WireOneWay(rng *stats.RNG, a, b *Cluster, bytes int64, netUtil float64) time.Duration {
	var base time.Duration
	switch t.ProximityOf(a, b) {
	case SameCluster:
		base = intraClusterOneWay
	case SameDatacenter:
		base = interClusterSameDCOneWay
	default:
		base = interClusterSameDCOneWay + fiberOneWay(t.DistanceKm(a, b))
	}
	// Transmission at ~10 Gb/s effective per-flow throughput.
	transmit := time.Duration(float64(bytes) * 0.8) // 0.8 ns per byte
	// Switch/fabric queuing: exponential with mean growing with load.
	if netUtil > 0.95 {
		netUtil = 0.95
	}
	meanQ := 20*time.Microsecond + time.Duration(float64(base)*0.05*netUtil/(1-netUtil))
	queuing := time.Duration(rng.ExpFloat64() * float64(meanQ))
	// Occasional congestion spikes (bursts, retransmits): probability and
	// magnitude grow with utilization.
	if rng.Bool(0.002 + 0.02*netUtil) {
		spike := stats.Pareto{Min: float64(5 * time.Millisecond), Alpha: 1.2, Max: float64(600 * time.Millisecond)}
		queuing += time.Duration(spike.Sample(rng))
	}
	return base + transmit + queuing
}

// MinRTT returns the no-load round-trip wire time between two clusters,
// used by the Fig. 19 cross-validation that wire latency, not congestion,
// dominates average cross-cluster RPCs.
func (t *Topology) MinRTT(a, b *Cluster) time.Duration {
	var base time.Duration
	switch t.ProximityOf(a, b) {
	case SameCluster:
		base = intraClusterOneWay
	case SameDatacenter:
		base = interClusterSameDCOneWay
	default:
		base = interClusterSameDCOneWay + fiberOneWay(t.DistanceKm(a, b))
	}
	return 2 * base
}
