package sim

import (
	"math"
	"time"

	"rpcscale/internal/stats"
)

// Exo is a snapshot of a cluster's exogenous variables (Table 2 of the
// paper): the system-level state that correlates with RPC latency.
type Exo struct {
	CPUUtil        float64 // fraction of cluster CPU utilized, 0..1
	MemBW          float64 // memory bandwidth utilized, GB/s
	LongWakeupRate float64 // fraction of scheduling wakeups > 50 us
	CPI            float64 // cycles per instruction
}

// ExoModel generates a cluster's exogenous state over time: a diurnal
// utilization wave (user-facing traffic follows the sun) on top of a
// cluster-specific baseline, with correlated memory bandwidth, scheduling
// wakeup delays, and CPI, plus short-timescale noise.
//
// The structure encodes the paper's Fig. 17/18 mechanism: wakeup rate and
// CPI degrade superlinearly as utilization climbs, which is what couples
// cluster load to RPC tail latency.
type ExoModel struct {
	seed uint64 // noise is derived from (seed, time), so At is pure

	baseUtil float64 // mean utilization
	amp      float64 // diurnal amplitude
	phase    float64 // diurnal phase offset, hours
	maxBW    float64 // memory bandwidth at saturation, GB/s
	baseCPI  float64 // CPI at low load

	noise float64 // relative noise scale
}

// NewExoModel draws a cluster's exogenous parameters.
func NewExoModel(rng *stats.RNG) *ExoModel {
	return &ExoModel{
		seed:     rng.Uint64(),
		baseUtil: 0.35 + 0.35*rng.Float64(), // 35%..70% mean utilization
		amp:      0.10 + 0.15*rng.Float64(),
		phase:    24 * rng.Float64(),
		maxBW:    80 + 40*rng.Float64(), // 80..120 GB/s platform ceiling
		baseCPI:  0.85 + 0.25*rng.Float64(),
		noise:    0.05 + 0.05*rng.Float64(),
	}
}

// At returns the exogenous state at simulation time t. The result is a
// pure function of (model, t): noise is derived from the time bucket, so
// concurrent and repeated queries are deterministic and consistent.
// State varies at one-minute granularity, well below the paper's
// 30-minute observation windows.
func (m *ExoModel) At(t time.Duration) Exo {
	bucket := uint64(t / time.Minute)
	rng := stats.NewRNG(m.seed ^ bucket*0x9e3779b97f4a7c15)

	hours := t.Hours()
	diurnal := m.amp * math.Sin(2*math.Pi*(hours-m.phase)/24)
	util := m.baseUtil + diurnal + m.noise*rng.NormFloat64()
	util = clamp(util, 0.03, 0.98)

	// Memory bandwidth tracks utilization with its own noise; heavily
	// loaded clusters saturate toward the platform ceiling.
	bw := m.maxBW * clamp(0.25+0.75*util+0.5*m.noise*rng.NormFloat64(), 0.05, 1.0)

	// Long-wakeup rate: scheduler delays grow superlinearly with load.
	wakeup := (0.002 + 0.018*math.Pow(util, 3)) * (1 + 0.3*rng.NormFloat64())
	wakeup = clamp(wakeup, 0.0005, 0.06)

	// CPI rises with memory pressure and contention.
	cpi := m.baseCPI * (1 + 0.25*math.Pow(util, 2) + 0.1*(bw/m.maxBW)) * (1 + 0.02*rng.NormFloat64())

	return Exo{CPUUtil: util, MemBW: bw, LongWakeupRate: wakeup, CPI: cpi}
}

// MeanUtil returns the cluster's mean utilization level (no noise).
func (m *ExoModel) MeanUtil() float64 { return m.baseUtil }

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// SlowdownFactor converts exogenous state into a multiplicative slowdown
// on compute-bound work: CPI stretches instruction streams and memory
// bandwidth saturation stalls them. The superlinear utilization term
// makes heavily loaded clusters roughly double compute latency vs. idle,
// the coupling behind Figs. 17/18.
func (e Exo) SlowdownFactor() float64 {
	cpiTerm := e.CPI // direct: latency scales with cycles per instruction
	u := e.CPUUtil
	bwTerm := 1 + 0.2*u*u + 0.8*u*u*u*u
	return cpiTerm * bwTerm
}

// WakeupDelay samples a scheduling wakeup delay: most wakeups are fast,
// but a LongWakeupRate fraction exceed 50 us, with a heavy tail — the
// paper's "long wakeup" exogenous variable made concrete.
func (e Exo) WakeupDelay(rng *stats.RNG) time.Duration {
	if rng.Bool(e.LongWakeupRate) {
		// Long wakeup: 50 us up to ~10 ms, Pareto-tailed.
		d := stats.Pareto{Min: float64(50 * time.Microsecond), Alpha: 1.5, Max: float64(10 * time.Millisecond)}
		return time.Duration(d.Sample(rng))
	}
	return time.Duration(rng.ExpFloat64() * float64(4*time.Microsecond))
}
