package sim

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"rpcscale/internal/stats"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30*time.Millisecond, func() { order = append(order, 3) })
	e.At(10*time.Millisecond, func() { order = append(order, 1) })
	e.At(20*time.Millisecond, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 30*time.Millisecond {
		t.Errorf("final time = %v", e.Now())
	}
}

func TestEngineTieBreakFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.At(time.Millisecond, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var at []time.Duration
	e.At(time.Millisecond, func() {
		e.After(2*time.Millisecond, func() { at = append(at, e.Now()) })
	})
	e.Run()
	if len(at) != 1 || at[0] != 3*time.Millisecond {
		t.Fatalf("nested event at %v", at)
	}
}

func TestEnginePastSchedulingClamped(t *testing.T) {
	e := NewEngine()
	var fired time.Duration
	e.At(10*time.Millisecond, func() {
		e.At(time.Millisecond, func() { fired = e.Now() }) // in the past
	})
	e.Run()
	if fired != 10*time.Millisecond {
		t.Fatalf("past event fired at %v", fired)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.At(time.Millisecond, func() { ran++ })
	e.At(time.Hour, func() { ran++ })
	e.RunUntil(time.Minute)
	if ran != 1 {
		t.Fatalf("ran = %d", ran)
	}
	if e.Now() != time.Minute {
		t.Errorf("clock = %v, want 1m", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d", e.Pending())
	}
}

func TestTopologyGeneration(t *testing.T) {
	topo := NewTopology(TopologyConfig{Regions: 3, DatacentersPer: 2, ClustersPerDC: 2, MachinesPerCluster: 4, Seed: 7})
	if len(topo.Regions) != 3 || len(topo.Datacenters) != 6 || len(topo.Clusters) != 12 {
		t.Fatalf("sizes: %d regions %d dcs %d clusters",
			len(topo.Regions), len(topo.Datacenters), len(topo.Clusters))
	}
	for _, c := range topo.Clusters {
		if topo.ClusterByName(c.Name) != c {
			t.Fatalf("lookup failed for %s", c.Name)
		}
		if c.SpeedFactor < 0.8 || c.SpeedFactor > 1.3 {
			t.Errorf("speed factor %v out of range", c.SpeedFactor)
		}
		if c.Exo == nil {
			t.Fatal("cluster missing exo model")
		}
	}
}

func TestTopologyDeterministic(t *testing.T) {
	cfg := DefaultTopology()
	a, b := NewTopology(cfg), NewTopology(cfg)
	for i := range a.Clusters {
		if a.Clusters[i].Name != b.Clusters[i].Name ||
			a.Clusters[i].SpeedFactor != b.Clusters[i].SpeedFactor {
			t.Fatal("topology generation not deterministic")
		}
	}
}

func TestProximityClassification(t *testing.T) {
	topo := NewTopology(TopologyConfig{Regions: 2, DatacentersPer: 2, ClustersPerDC: 2, Seed: 1})
	c := topo.Clusters
	if got := topo.ProximityOf(c[0], c[0]); got != SameCluster {
		t.Errorf("self = %v", got)
	}
	if got := topo.ProximityOf(c[0], c[1]); got != SameDatacenter {
		t.Errorf("same dc = %v", got)
	}
	if got := topo.ProximityOf(c[0], c[2]); got != SameRegion {
		t.Errorf("same region = %v", got)
	}
	if got := topo.ProximityOf(c[0], c[4]); got != DifferentRegion {
		t.Errorf("cross region = %v", got)
	}
}

func TestWireLatencyOrdering(t *testing.T) {
	topo := NewTopology(DefaultTopology())
	rng := stats.NewRNG(2)
	c := topo.Clusters
	// Compare medians: congestion spikes are deliberately heavy-tailed
	// and would dominate a mean.
	med := func(a, b *Cluster) time.Duration {
		s := stats.NewSample(301)
		for i := 0; i < 301; i++ {
			s.Add(float64(topo.WireOneWay(rng, a, b, 1000, 0.3)))
		}
		return time.Duration(s.Quantile(0.5))
	}
	same := med(c[0], c[0])
	sameDC := med(c[0], c[1])
	crossRegion := med(c[0], c[len(c)-1])
	if !(same < sameDC && sameDC < crossRegion) {
		t.Fatalf("latency ordering violated: %v %v %v", same, sameDC, crossRegion)
	}
	// Cross-region must be dominated by propagation: >= fiber one-way.
	minFiber := fiberOneWay(topo.DistanceKm(c[0], c[len(c)-1]))
	if crossRegion < minFiber {
		t.Errorf("cross-region %v below speed of light %v", crossRegion, minFiber)
	}
}

func TestWireLatencyCongestionGrowsWithUtil(t *testing.T) {
	topo := NewTopology(DefaultTopology())
	c := topo.Clusters
	avg := func(util float64, seed uint64) time.Duration {
		rng := stats.NewRNG(seed)
		var total time.Duration
		const n = 2000
		for i := 0; i < n; i++ {
			total += topo.WireOneWay(rng, c[0], c[1], 1000, util)
		}
		return total / n
	}
	low, high := avg(0.1, 3), avg(0.9, 3)
	if high <= low {
		t.Fatalf("congestion did not grow with utilization: %v vs %v", low, high)
	}
}

func TestMinRTTMatchesPaperScale(t *testing.T) {
	topo := NewTopology(DefaultTopology())
	var maxRTT time.Duration
	for _, a := range topo.Clusters {
		for _, b := range topo.Clusters {
			if rtt := topo.MinRTT(a, b); rtt > maxRTT {
				maxRTT = rtt
			}
		}
	}
	// Paper: longest WAN RTT ~200 ms. Our world should land 100-250 ms.
	if maxRTT < 100*time.Millisecond || maxRTT > 250*time.Millisecond {
		t.Errorf("max WAN RTT = %v, want ~200ms scale", maxRTT)
	}
}

func TestExoDiurnalCycle(t *testing.T) {
	m := NewExoModel(stats.NewRNG(5))
	// Sample utilization over 24h; the diurnal wave must produce a spread
	// of at least ~amp around the base.
	var lo, hi = 1.0, 0.0
	for h := 0; h < 24; h++ {
		var day float64
		for rep := 0; rep < 20; rep++ {
			day += m.At(time.Duration(h) * time.Hour).CPUUtil
		}
		day /= 20
		if day < lo {
			lo = day
		}
		if day > hi {
			hi = day
		}
	}
	if hi-lo < m.amp {
		t.Errorf("diurnal spread %v < amplitude %v", hi-lo, m.amp)
	}
}

func TestExoBoundsAndCorrelation(t *testing.T) {
	m := NewExoModel(stats.NewRNG(6))
	var utils, wakeups, cpis []float64
	for i := 0; i < 2000; i++ {
		e := m.At(time.Duration(i) * 10 * time.Minute)
		if e.CPUUtil < 0.03 || e.CPUUtil > 0.98 {
			t.Fatalf("util %v out of bounds", e.CPUUtil)
		}
		if e.MemBW <= 0 || e.LongWakeupRate <= 0 || e.CPI <= 0 {
			t.Fatal("non-positive exogenous value")
		}
		utils = append(utils, e.CPUUtil)
		wakeups = append(wakeups, e.LongWakeupRate)
		cpis = append(cpis, e.CPI)
	}
	// Wakeup rate and CPI must correlate positively with utilization —
	// that is the causal structure of Figs. 17/18.
	if r := stats.Pearson(utils, wakeups); r < 0.3 {
		t.Errorf("util-wakeup correlation = %v, want strongly positive", r)
	}
	if r := stats.Pearson(utils, cpis); r < 0.3 {
		t.Errorf("util-CPI correlation = %v, want strongly positive", r)
	}
}

func TestSlowdownFactorMonotone(t *testing.T) {
	low := Exo{CPUUtil: 0.1, CPI: 0.9, MemBW: 30}
	high := Exo{CPUUtil: 0.95, CPI: 1.3, MemBW: 110}
	if low.SlowdownFactor() >= high.SlowdownFactor() {
		t.Error("slowdown must grow with load")
	}
}

func TestWakeupDelayTail(t *testing.T) {
	rng := stats.NewRNG(7)
	e := Exo{LongWakeupRate: 0.5} // force frequent long wakeups
	long := 0
	for i := 0; i < 1000; i++ {
		if e.WakeupDelay(rng) >= 50*time.Microsecond {
			long++
		}
	}
	if long < 350 || long > 650 {
		t.Errorf("long wakeups = %d/1000, want ~500", long)
	}
}

func TestQueueWaitGrowsWithUtil(t *testing.T) {
	exo := Exo{LongWakeupRate: 0.001}
	mean := func(util float64) time.Duration {
		rng := stats.NewRNG(8)
		var total time.Duration
		const n = 5000
		for i := 0; i < n; i++ {
			total += QueueWait(rng, time.Millisecond, util, exo)
		}
		return total / n
	}
	w10, w50, w90 := mean(0.1), mean(0.5), mean(0.9)
	if !(w10 < w50 && w50 < w90) {
		t.Fatalf("queue wait not monotone in util: %v %v %v", w10, w50, w90)
	}
	// At 90% utilization the M/M/1 mean wait is ~9x service.
	if w90 < 3*time.Millisecond {
		t.Errorf("high-util wait %v implausibly low", w90)
	}
}

func TestServerFIFOAndUtilization(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "m0", 1, FIFO)
	var waits []time.Duration
	for i := 0; i < 3; i++ {
		s.Submit(&Job{Service: 10 * time.Millisecond, Done: func(w time.Duration) { waits = append(waits, w) }})
	}
	e.Run()
	if s.Served() != 3 {
		t.Fatalf("served = %d", s.Served())
	}
	if waits[0] != 0 || waits[1] != 10*time.Millisecond || waits[2] != 20*time.Millisecond {
		t.Errorf("waits = %v", waits)
	}
	if u := s.Utilization(); math.Abs(u-1.0) > 1e-9 {
		t.Errorf("utilization = %v, want 1.0 (back-to-back)", u)
	}
}

func TestServerSJFAvoidsHOLBlocking(t *testing.T) {
	// Submit an elephant then many mice while the server is busy; SJF
	// must serve mice before the elephant, FIFO must not.
	run := func(d Discipline) (mouseWait time.Duration) {
		e := NewEngine()
		s := NewServer(e, "m0", 1, d)
		s.Submit(&Job{Service: time.Millisecond}) // occupies server
		s.Submit(&Job{Service: 100 * time.Millisecond})
		var wait time.Duration
		s.Submit(&Job{Service: time.Millisecond, Done: func(w time.Duration) { wait = w }})
		e.Run()
		return wait
	}
	fifoWait := run(FIFO)
	sjfWait := run(SJF)
	if sjfWait >= fifoWait {
		t.Fatalf("SJF wait %v >= FIFO wait %v", sjfWait, fifoWait)
	}
	if fifoWait < 100*time.Millisecond {
		t.Errorf("FIFO mouse did not suffer HOL blocking: %v", fifoWait)
	}
}

func TestServerCapacityParallelism(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "m0", 4, FIFO)
	done := 0
	for i := 0; i < 4; i++ {
		s.Submit(&Job{Service: 10 * time.Millisecond, Done: func(time.Duration) { done++ }})
	}
	e.Run()
	if e.Now() != 10*time.Millisecond {
		t.Errorf("4 parallel jobs took %v, want 10ms", e.Now())
	}
	if done != 4 {
		t.Errorf("done = %d", done)
	}
}

func TestServerQueueStats(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "m0", 1, FIFO)
	for i := 0; i < 5; i++ {
		s.Submit(&Job{Service: time.Millisecond})
	}
	if s.QueueLen() != 4 || s.InFlight() != 1 {
		t.Errorf("qlen=%d inflight=%d", s.QueueLen(), s.InFlight())
	}
	e.Run()
	if s.MaxQueue() != 4 {
		t.Errorf("max queue = %d", s.MaxQueue())
	}
	if s.MeanWait() != 2*time.Millisecond {
		t.Errorf("mean wait = %v, want 2ms", s.MeanWait())
	}
}

func TestProximityString(t *testing.T) {
	names := map[Proximity]string{
		SameCluster: "same-cluster", SameDatacenter: "same-datacenter",
		SameRegion: "same-region", DifferentRegion: "different-region",
	}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("%d -> %q", p, p.String())
		}
	}
	if FIFO.String() != "fifo" || SJF.String() != "sjf" {
		t.Error("discipline names wrong")
	}
}

func TestEngineOrderingProperty(t *testing.T) {
	// Whatever order events are scheduled in, they fire in time order
	// with FIFO tie-breaking.
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		e := NewEngine()
		n := 50 + rng.Intn(200)
		var fired []time.Duration
		for i := 0; i < n; i++ {
			at := time.Duration(rng.Intn(1000)) * time.Millisecond
			e.At(at, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != n {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestServerConservationProperty(t *testing.T) {
	// Every submitted job is eventually served exactly once.
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		e := NewEngine()
		srv := NewServer(e, "m", 1+rng.Intn(4), Discipline(rng.Intn(2)))
		n := 1 + rng.Intn(300)
		done := 0
		for i := 0; i < n; i++ {
			srv.Submit(&Job{
				Service: time.Duration(1+rng.Intn(1000)) * time.Microsecond,
				Done:    func(time.Duration) { done++ },
			})
			if rng.Bool(0.5) {
				e.RunUntil(e.Now() + time.Duration(rng.Intn(500))*time.Microsecond)
			}
		}
		e.Run()
		return done == n && srv.Served() == uint64(n) && srv.QueueLen() == 0 && srv.InFlight() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
