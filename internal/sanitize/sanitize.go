// Package sanitize compiles runtime assertion shims into the data plane
// under the `sanitize` build tag: a lock-rank checker that panics the
// moment two instrumented locks are acquired against the documented
// order (turning a once-in-a-million deadlock into a deterministic test
// failure), alongside the pool poisoning wire installs in GetBuf/PutBuf.
// Without the tag Enabled is a false constant and every entry point is
// an empty function, so instrumented call sites compile to nothing in
// normal builds. Guard each call with `if sanitize.Enabled { ... }`.
//
// The checker enforces the same order the static lockorder analyzer
// derives (see DESIGN.md §15): within one goroutine, instrumented locks
// must be acquired in strictly increasing rank. The ranks below leave
// gaps so new classes can slot in without renumbering.
package sanitize

// Lock ranks for the instrumented classes, innermost last. A goroutine
// holding a lock of rank r may only acquire locks of rank > r; equal
// ranks mark classes that must never nest (two instances of one class,
// or sibling locks owned by different goroutines).
const (
	RankStreamSend    = 10 // stubby.Stream.sendMu: serializes Send/CloseSend
	RankStreamRecv    = 20 // stubby.Stream.recvMu: inbound queue and terminal state
	RankTransportSend = 30 // stubby.transport.sendMu: frame batching and flush
	RankTransportRecv = 35 // stubby.transport.recvMu: shared frame reader
	RankCodecQueue    = 80 // stubby.codecPool.mu: job free list and submitter gate
	RankBufPool       = 90 // wire size-class pool mutexes: leaf, no calls out
)
