//go:build !sanitize

package sanitize

// Enabled reports whether sanitizer shims are compiled in. It is a
// constant so that `if sanitize.Enabled { ... }` guards are eliminated
// entirely in normal builds.
const Enabled = false

// LockAcquired records nothing in normal builds.
func LockAcquired(rank int, class string) {}

// LockReleased records nothing in normal builds.
func LockReleased(rank int) {}
