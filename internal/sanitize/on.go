//go:build sanitize

package sanitize

import (
	"fmt"
	"runtime"
	"sync"
)

// Enabled reports whether sanitizer shims are compiled in.
const Enabled = true

type heldLock struct {
	rank  int
	class string
}

var (
	mu   sync.Mutex
	held = make(map[uint64][]heldLock) // goroutine id -> lock stack
)

// LockAcquired pushes an instrumented lock onto the calling goroutine's
// stack, panicking if its rank does not exceed the innermost held rank:
// that acquisition order, run against a goroutine taking the same two
// classes the other way, deadlocks. Call it immediately after Lock.
func LockAcquired(rank int, class string) {
	g := goid()
	mu.Lock()
	stack := held[g]
	if n := len(stack); n > 0 && stack[n-1].rank >= rank {
		top := stack[n-1]
		mu.Unlock()
		panic(fmt.Sprintf(
			"sanitize: lock rank inversion: acquiring %s (rank %d) while holding %s (rank %d); see the rank order in internal/sanitize",
			class, rank, top.class, top.rank))
	}
	held[g] = append(stack, heldLock{rank: rank, class: class})
	mu.Unlock()
}

// LockReleased pops the innermost held lock of the given rank. Call it
// immediately before Unlock. Out-of-order (non-LIFO) release is legal,
// matching sync.Mutex.
func LockReleased(rank int) {
	g := goid()
	mu.Lock()
	stack := held[g]
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i].rank == rank {
			stack = append(stack[:i], stack[i+1:]...)
			break
		}
	}
	if len(stack) == 0 {
		delete(held, g)
	} else {
		held[g] = stack
	}
	mu.Unlock()
}

// goid parses the current goroutine's id from the first line of its
// stack trace ("goroutine N [running]:"). Slow, which is fine: this
// code only exists under the sanitize tag.
func goid() uint64 {
	var buf [40]byte
	n := runtime.Stack(buf[:], false)
	s := buf[len("goroutine "):n]
	var id uint64
	for _, c := range s {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}
