//go:build sanitize

package sanitize

import (
	"strings"
	"testing"
)

func TestRankOrderAllowed(t *testing.T) {
	LockAcquired(RankStreamSend, "stubby.Stream.sendMu")
	LockAcquired(RankTransportSend, "stubby.transport.sendMu")
	LockAcquired(RankBufPool, "wire.bufPools")
	LockReleased(RankBufPool)
	LockReleased(RankTransportSend)
	LockReleased(RankStreamSend)
}

func TestRankInversionPanics(t *testing.T) {
	LockAcquired(RankTransportSend, "stubby.transport.sendMu")
	defer LockReleased(RankTransportSend)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic on rank inversion")
		}
		if msg, _ := r.(string); !strings.Contains(msg, "rank inversion") {
			t.Fatalf("panic = %v, want rank inversion report", r)
		}
	}()
	LockAcquired(RankStreamRecv, "stubby.Stream.recvMu")
}

func TestSameRankPanics(t *testing.T) {
	LockAcquired(RankStreamRecv, "stubby.Stream.recvMu")
	defer LockReleased(RankStreamRecv)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on same-rank nesting")
		}
	}()
	LockAcquired(RankStreamRecv, "stubby.Stream.recvMu")
}

// TestNonLIFORelease mirrors sync.Mutex semantics: locks need not be
// released innermost-first, and the stack must stay consistent.
func TestNonLIFORelease(t *testing.T) {
	LockAcquired(RankStreamSend, "a")
	LockAcquired(RankTransportSend, "b")
	LockReleased(RankStreamSend)
	LockAcquired(RankBufPool, "c") // still fine: innermost held is rank 30
	LockReleased(RankBufPool)
	LockReleased(RankTransportSend)
}
