package monarch

import (
	"math"
	"sync"
	"testing"
	"time"

	"rpcscale/internal/stats"
)

var t0 = time.Date(2020, 12, 1, 0, 0, 0, 0, time.UTC)

func newTestDB(t *testing.T) *DB {
	t.Helper()
	db := New(30*time.Minute, 700*24*time.Hour)
	for m, k := range map[string]Kind{
		"rpc/count":   Counter,
		"cpu/util":    Gauge,
		"rpc/latency": Distribution,
	} {
		if err := db.Declare(m, k); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestCounterAccumulatesWithinWindow(t *testing.T) {
	db := newTestDB(t)
	labels := Labels{"cluster": "aa"}
	for i := 0; i < 5; i++ {
		if err := db.Write("rpc/count", labels, t0.Add(time.Duration(i)*time.Minute), 10); err != nil {
			t.Fatal(err)
		}
	}
	series := db.Query("rpc/count", labels, time.Time{}, time.Time{})
	if len(series) != 1 {
		t.Fatalf("series = %d", len(series))
	}
	if len(series[0].Points) != 1 {
		t.Fatalf("points = %d, want 1 (same window)", len(series[0].Points))
	}
	if got := series[0].Points[0].Value; got != 50 {
		t.Errorf("counter = %v, want 50", got)
	}
}

func TestGaugeOverwritesWithinWindow(t *testing.T) {
	db := newTestDB(t)
	labels := Labels{"cluster": "aa"}
	_ = db.Write("cpu/util", labels, t0, 10)
	_ = db.Write("cpu/util", labels, t0.Add(time.Minute), 70)
	series := db.Query("cpu/util", labels, time.Time{}, time.Time{})
	if got := series[0].Points[0].Value; got != 70 {
		t.Errorf("gauge = %v, want 70 (latest wins)", got)
	}
}

func TestWindowAlignment(t *testing.T) {
	db := newTestDB(t)
	labels := Labels{"cluster": "aa"}
	_ = db.Write("rpc/count", labels, t0.Add(29*time.Minute), 1)
	_ = db.Write("rpc/count", labels, t0.Add(31*time.Minute), 1)
	series := db.Query("rpc/count", labels, time.Time{}, time.Time{})
	pts := series[0].Points
	if len(pts) != 2 {
		t.Fatalf("points = %d, want 2 windows", len(pts))
	}
	if !pts[0].At.Equal(t0) || !pts[1].At.Equal(t0.Add(30*time.Minute)) {
		t.Errorf("window starts: %v, %v", pts[0].At, pts[1].At)
	}
}

func TestUndeclaredMetricRejected(t *testing.T) {
	db := newTestDB(t)
	if err := db.Write("nope", nil, t0, 1); err == nil {
		t.Error("undeclared metric accepted")
	}
	if err := db.WriteDist("nope", nil, t0, stats.NewLatencyHist()); err == nil {
		t.Error("undeclared dist metric accepted")
	}
}

func TestKindMismatchRejected(t *testing.T) {
	db := newTestDB(t)
	if err := db.Write("rpc/latency", nil, t0, 1); err == nil {
		t.Error("scalar write to distribution accepted")
	}
	if err := db.WriteDist("rpc/count", nil, t0, stats.NewLatencyHist()); err == nil {
		t.Error("dist write to counter accepted")
	}
	if err := db.Declare("rpc/count", Gauge); err == nil {
		t.Error("redeclare with different kind accepted")
	}
	if err := db.Declare("rpc/count", Counter); err != nil {
		t.Error("identical redeclare should be fine")
	}
}

func TestDistributionMerging(t *testing.T) {
	db := newTestDB(t)
	labels := Labels{"method": "m"}
	h1 := stats.NewLatencyHist()
	h1.Add(1e6)
	h2 := stats.NewLatencyHist()
	h2.Add(2e6)
	_ = db.WriteDist("rpc/latency", labels, t0, h1)
	_ = db.WriteDist("rpc/latency", labels, t0.Add(time.Minute), h2)
	series := db.Query("rpc/latency", labels, time.Time{}, time.Time{})
	if len(series[0].Points) != 1 {
		t.Fatalf("points = %d", len(series[0].Points))
	}
	if got := series[0].Points[0].Dist.Count(); got != 2 {
		t.Errorf("merged count = %d", got)
	}
}

func TestQueryLabelSelector(t *testing.T) {
	db := newTestDB(t)
	_ = db.Write("rpc/count", Labels{"cluster": "aa", "svc": "s1"}, t0, 1)
	_ = db.Write("rpc/count", Labels{"cluster": "bb", "svc": "s1"}, t0, 2)
	_ = db.Write("rpc/count", Labels{"cluster": "aa", "svc": "s2"}, t0, 4)

	if got := len(db.Query("rpc/count", nil, time.Time{}, time.Time{})); got != 3 {
		t.Errorf("nil selector matched %d", got)
	}
	if got := len(db.Query("rpc/count", Labels{"cluster": "aa"}, time.Time{}, time.Time{})); got != 2 {
		t.Errorf("cluster=aa matched %d", got)
	}
	if got := len(db.Query("rpc/count", Labels{"cluster": "aa", "svc": "s2"}, time.Time{}, time.Time{})); got != 1 {
		t.Errorf("two-label selector matched %d", got)
	}
	if got := len(db.Query("rpc/count", Labels{"cluster": "zz"}, time.Time{}, time.Time{})); got != 0 {
		t.Errorf("absent selector matched %d", got)
	}
}

func TestQueryTimeRange(t *testing.T) {
	db := newTestDB(t)
	labels := Labels{"c": "x"}
	for d := 0; d < 10; d++ {
		_ = db.Write("rpc/count", labels, t0.Add(time.Duration(d)*24*time.Hour), 1)
	}
	from := t0.Add(2 * 24 * time.Hour)
	to := t0.Add(5 * 24 * time.Hour)
	series := db.Query("rpc/count", labels, from, to)
	if got := len(series[0].Points); got != 4 {
		t.Errorf("range points = %d, want 4", got)
	}
}

func TestRetentionEviction(t *testing.T) {
	db := New(30*time.Minute, 10*24*time.Hour)
	_ = db.Declare("m", Counter)
	labels := Labels{"c": "x"}
	_ = db.Write("m", labels, t0, 1)
	_ = db.Write("m", labels, t0.Add(20*24*time.Hour), 1) // advances horizon past t0
	series := db.Query("m", labels, time.Time{}, time.Time{})
	if got := len(series[0].Points); got != 1 {
		t.Errorf("points after retention = %d, want 1", got)
	}
	if !series[0].Points[0].At.Equal(t0.Add(20 * 24 * time.Hour).Truncate(30 * time.Minute)) {
		t.Error("wrong point survived retention")
	}
}

func TestOutOfOrderWrites(t *testing.T) {
	db := newTestDB(t)
	labels := Labels{"c": "x"}
	_ = db.Write("rpc/count", labels, t0.Add(2*time.Hour), 1)
	_ = db.Write("rpc/count", labels, t0, 2)                // before existing
	_ = db.Write("rpc/count", labels, t0.Add(time.Hour), 4) // between
	pts := db.Query("rpc/count", labels, time.Time{}, time.Time{})[0].Points
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if !pts[i].At.After(pts[i-1].At) {
			t.Fatalf("points out of order: %v", pts)
		}
	}
	if pts[0].Value != 2 || pts[1].Value != 4 || pts[2].Value != 1 {
		t.Errorf("values = %v %v %v", pts[0].Value, pts[1].Value, pts[2].Value)
	}
}

func TestQueryReturnsCopies(t *testing.T) {
	db := newTestDB(t)
	labels := Labels{"c": "x"}
	h := stats.NewLatencyHist()
	h.Add(5e6)
	_ = db.WriteDist("rpc/latency", labels, t0, h)
	got := db.Query("rpc/latency", labels, time.Time{}, time.Time{})
	got[0].Points[0].Dist.Add(1e6) // mutate the copy
	again := db.Query("rpc/latency", labels, time.Time{}, time.Time{})
	if again[0].Points[0].Dist.Count() != 1 {
		t.Error("query returned a live reference, not a copy")
	}
}

func TestSumAcross(t *testing.T) {
	a := Series{Points: []Point{{At: t0, Value: 1}, {At: t0.Add(time.Hour), Value: 2}}}
	b := Series{Points: []Point{{At: t0, Value: 10}}}
	sum := SumAcross([]Series{a, b})
	if len(sum.Points) != 2 {
		t.Fatalf("points = %d", len(sum.Points))
	}
	if sum.Points[0].Value != 11 || sum.Points[1].Value != 2 {
		t.Errorf("sum = %v", sum.Points)
	}
}

func TestMergeDistAcross(t *testing.T) {
	h1, h2 := stats.NewLatencyHist(), stats.NewLatencyHist()
	h1.Add(1e6)
	h2.Add(3e6)
	merged := MergeDistAcross([]Series{
		{Points: []Point{{At: t0, Dist: h1}}},
		{Points: []Point{{At: t0, Dist: h2}, {At: t0.Add(time.Hour)}}}, // nil-dist point skipped
	})
	if merged.Count() != 2 {
		t.Errorf("merged count = %d", merged.Count())
	}
}

func TestDownsample(t *testing.T) {
	var s Series
	for h := 0; h < 48; h++ {
		s.Points = append(s.Points, Point{At: t0.Add(time.Duration(h) * time.Hour), Value: 1})
	}
	daily := Downsample(s, 24*time.Hour, Counter)
	if len(daily.Points) != 2 {
		t.Fatalf("daily points = %d", len(daily.Points))
	}
	if daily.Points[0].Value != 24 {
		t.Errorf("daily sum = %v", daily.Points[0].Value)
	}
	avg := Downsample(s, 24*time.Hour, Gauge)
	if math.Abs(avg.Points[0].Value-1) > 1e-9 {
		t.Errorf("daily avg = %v", avg.Points[0].Value)
	}
}

func TestConcurrentWrites(t *testing.T) {
	db := newTestDB(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			labels := Labels{"cluster": string(rune('a' + g))}
			for i := 0; i < 500; i++ {
				_ = db.Write("rpc/count", labels, t0.Add(time.Duration(i)*time.Minute), 1)
			}
		}(g)
	}
	wg.Wait()
	series := db.Query("rpc/count", nil, time.Time{}, time.Time{})
	if len(series) != 8 {
		t.Fatalf("series = %d", len(series))
	}
	var total float64
	for _, s := range series {
		for _, p := range s.Points {
			total += p.Value
		}
	}
	if total != 4000 {
		t.Errorf("total = %v, want 4000", total)
	}
}

func TestLabelsCanonicalOrderInsensitive(t *testing.T) {
	a := Labels{"x": "1", "y": "2"}
	b := Labels{"y": "2", "x": "1"}
	if a.canonical() != b.canonical() {
		t.Error("canonical form depends on insertion order")
	}
}

func TestSeriesLast(t *testing.T) {
	var s Series
	if !s.Last().At.IsZero() {
		t.Error("empty Last should be zero")
	}
	s.Points = []Point{{At: t0, Value: 1}, {At: t0.Add(time.Hour), Value: 9}}
	if s.Last().Value != 9 {
		t.Error("Last wrong")
	}
}

func TestKindString(t *testing.T) {
	if Counter.String() != "counter" || Gauge.String() != "gauge" || Distribution.String() != "distribution" {
		t.Error("kind names wrong")
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind should format")
	}
}
