// Package monarch implements an in-memory time-series monitoring database
// in the spirit of Google's Monarch: metrics carry label sets, points are
// either scalar counters/gauges or full latency distributions, samples
// land on a fixed alignment grid (the paper's 30-minute windows), and a
// retention policy bounds history (the paper's 700 days).
//
// The fleet simulator exports per-window counters into a DB, and the
// growth and diurnal analyses (Figs. 1, 18) query it exactly the way the
// paper queried production Monarch.
package monarch

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"rpcscale/internal/stats"
)

// Kind describes how a metric's values combine.
type Kind uint8

// Metric kinds.
const (
	// Counter points accumulate within a window and sum across streams.
	Counter Kind = iota
	// Gauge points overwrite within a window and average across streams.
	Gauge
	// Distribution points carry histograms that merge across streams.
	Distribution
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case Counter:
		return "counter"
	case Gauge:
		return "gauge"
	case Distribution:
		return "distribution"
	default:
		return fmt.Sprintf("kind(%d)", k)
	}
}

// Labels identifies one stream of a metric (e.g. cluster, service,
// method). Label maps are canonicalized internally; callers may reuse and
// mutate maps after the Write returns.
type Labels map[string]string

// canonical renders labels in sorted k=v form for use as a map key.
func (l Labels) canonical() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(l[k])
	}
	return b.String()
}

// clone copies a label map so the DB owns its keys.
func (l Labels) clone() Labels {
	out := make(Labels, len(l))
	for k, v := range l {
		out[k] = v
	}
	return out
}

// Matches reports whether l contains every pair in sel.
func (l Labels) Matches(sel Labels) bool {
	for k, v := range sel {
		if l[k] != v {
			return false
		}
	}
	return true
}

// Point is one aligned sample of a stream.
type Point struct {
	At    time.Time
	Value float64     // Counter/Gauge value
	Dist  *stats.Hist // Distribution value (nil otherwise)
}

// Series is one stream: a metric name, a label set, and aligned points in
// time order.
type Series struct {
	Metric string
	Labels Labels
	Points []Point
}

// Last returns the most recent point, or a zero Point when empty.
func (s *Series) Last() Point {
	if len(s.Points) == 0 {
		return Point{}
	}
	return s.Points[len(s.Points)-1]
}

// DB is the monitoring database. It is safe for concurrent use.
type DB struct {
	window    time.Duration // alignment grid, e.g. 30 minutes
	retention time.Duration // e.g. 700 days

	mu      sync.RWMutex
	kinds   map[string]Kind
	streams map[string]*stream // key: metric + "|" + labels.canonical()
	latest  time.Time
}

type stream struct {
	metric string
	labels Labels
	points []Point
}

// DefaultWindow is the paper's Monarch sampling window.
const DefaultWindow = 30 * time.Minute

// DefaultRetention is the paper's observation period.
const DefaultRetention = 700 * 24 * time.Hour

// Option configures a DB built with NewDB.
type Option func(*DB)

// WithWindow sets the sampling alignment grid. Non-positive values keep
// the paper's 30-minute default.
func WithWindow(d time.Duration) Option {
	return func(db *DB) {
		if d > 0 {
			db.window = d
		}
	}
}

// WithRetention sets how much history is kept before eviction.
// Non-positive values keep the paper's 700-day default.
func WithRetention(d time.Duration) Option {
	return func(db *DB) {
		if d > 0 {
			db.retention = d
		}
	}
}

// NewDB returns a monitoring DB. With no options it uses the paper's
// 30-minute window and 700-day retention.
func NewDB(opts ...Option) *DB {
	db := &DB{
		window:    DefaultWindow,
		retention: DefaultRetention,
		kinds:     make(map[string]Kind),
		streams:   make(map[string]*stream),
	}
	for _, o := range opts {
		o(db)
	}
	return db
}

// New returns a DB with the given alignment window and retention. Zero
// values select the paper's defaults.
//
// Deprecated: use NewDB with WithWindow and WithRetention; the positional
// form survives for existing callers.
func New(window, retention time.Duration) *DB {
	return NewDB(WithWindow(window), WithRetention(retention))
}

// Window returns the alignment grid.
func (db *DB) Window() time.Duration { return db.window }

// Retention reports the horizon beyond which points are dropped.
func (db *DB) Retention() time.Duration { return db.retention }

// Declare registers a metric with its kind. Writing an undeclared metric
// is an error; redeclaring with a different kind is an error.
func (db *DB) Declare(metric string, kind Kind) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if existing, ok := db.kinds[metric]; ok && existing != kind {
		return fmt.Errorf("monarch: metric %q already declared as %v", metric, existing)
	}
	db.kinds[metric] = kind
	return nil
}

// align floors t onto the sampling grid.
func (db *DB) align(t time.Time) time.Time {
	return t.Truncate(db.window)
}

// Write records a scalar sample. Counter samples accumulate within their
// window; gauge samples overwrite.
func (db *DB) Write(metric string, labels Labels, at time.Time, value float64) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	kind, ok := db.kinds[metric]
	if !ok {
		return fmt.Errorf("monarch: metric %q not declared", metric)
	}
	if kind == Distribution {
		return fmt.Errorf("monarch: metric %q is a distribution; use WriteDist", metric)
	}
	st := db.stream(metric, labels)
	aligned := db.align(at)
	db.advance(aligned)
	p := db.windowPoint(st, aligned)
	if kind == Counter {
		p.Value += value
	} else {
		p.Value = value
	}
	return nil
}

// WriteDist merges a histogram sample into the stream's current window.
func (db *DB) WriteDist(metric string, labels Labels, at time.Time, dist *stats.Hist) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	kind, ok := db.kinds[metric]
	if !ok {
		return fmt.Errorf("monarch: metric %q not declared", metric)
	}
	if kind != Distribution {
		return fmt.Errorf("monarch: metric %q is %v; use Write", metric, kind)
	}
	st := db.stream(metric, labels)
	aligned := db.align(at)
	db.advance(aligned)
	p := db.windowPoint(st, aligned)
	if p.Dist == nil {
		p.Dist = dist.Clone()
	} else {
		p.Dist.Merge(dist)
	}
	return nil
}

// stream finds or creates a stream. Caller holds db.mu.
func (db *DB) stream(metric string, labels Labels) *stream {
	key := metric + "|" + labels.canonical()
	st, ok := db.streams[key]
	if !ok {
		st = &stream{metric: metric, labels: labels.clone()}
		db.streams[key] = st
	}
	return st
}

// windowPoint finds or appends the point for the aligned window. Points
// arrive roughly in time order; out-of-order writes within history are
// located by scan from the tail. Caller holds db.mu.
func (db *DB) windowPoint(st *stream, aligned time.Time) *Point {
	for i := len(st.points) - 1; i >= 0; i-- {
		switch {
		case st.points[i].At.Equal(aligned):
			return &st.points[i]
		case st.points[i].At.Before(aligned):
			// Insert after i.
			st.points = append(st.points, Point{})
			copy(st.points[i+2:], st.points[i+1:])
			st.points[i+1] = Point{At: aligned}
			return &st.points[i+1]
		}
	}
	st.points = append(st.points, Point{})
	copy(st.points[1:], st.points)
	st.points[0] = Point{At: aligned}
	return &st.points[0]
}

// advance updates the retention horizon and evicts expired points.
// Caller holds db.mu.
func (db *DB) advance(at time.Time) {
	if at.After(db.latest) {
		db.latest = at
	}
	horizon := db.latest.Add(-db.retention)
	for _, st := range db.streams {
		cut := 0
		for cut < len(st.points) && st.points[cut].At.Before(horizon) {
			cut++
		}
		if cut > 0 {
			st.points = append(st.points[:0], st.points[cut:]...)
		}
	}
}

// Query returns copies of all streams of a metric whose labels match sel,
// restricted to points in [from, to]. A nil sel matches everything; zero
// times mean unbounded.
func (db *DB) Query(metric string, sel Labels, from, to time.Time) []Series {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []Series
	for _, st := range db.streams {
		if st.metric != metric || !st.labels.Matches(sel) {
			continue
		}
		s := Series{Metric: st.metric, Labels: st.labels.clone()}
		for _, p := range st.points {
			if !from.IsZero() && p.At.Before(from) {
				continue
			}
			if !to.IsZero() && p.At.After(to) {
				continue
			}
			cp := p
			if p.Dist != nil {
				cp.Dist = p.Dist.Clone()
			}
			s.Points = append(s.Points, cp)
		}
		if len(s.Points) > 0 {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Labels.canonical() < out[j].Labels.canonical()
	})
	return out
}

// SumAcross element-wise sums scalar series onto a common grid, returning
// one combined series. Useful for fleet-wide totals from per-cluster
// streams.
func SumAcross(series []Series) Series {
	byTime := make(map[time.Time]float64)
	for _, s := range series {
		for _, p := range s.Points {
			byTime[p.At] += p.Value
		}
	}
	out := Series{Metric: "sum"}
	for at, v := range byTime {
		out.Points = append(out.Points, Point{At: at, Value: v})
	}
	sort.Slice(out.Points, func(i, j int) bool { return out.Points[i].At.Before(out.Points[j].At) })
	return out
}

// MergeDistAcross merges distribution series into a single histogram over
// the queried range.
func MergeDistAcross(series []Series) *stats.Hist {
	var merged *stats.Hist
	for _, s := range series {
		for _, p := range s.Points {
			if p.Dist == nil {
				continue
			}
			if merged == nil {
				merged = p.Dist.Clone()
			} else {
				merged.Merge(p.Dist)
			}
		}
	}
	return merged
}

// Downsample re-buckets a scalar series onto a coarser grid (e.g. daily),
// summing counters or averaging gauges according to kind.
func Downsample(s Series, grid time.Duration, kind Kind) Series {
	type agg struct {
		sum float64
		n   int
	}
	byTime := make(map[time.Time]*agg)
	for _, p := range s.Points {
		t := p.At.Truncate(grid)
		a := byTime[t]
		if a == nil {
			a = &agg{}
			byTime[t] = a
		}
		a.sum += p.Value
		a.n++
	}
	out := Series{Metric: s.Metric, Labels: s.Labels}
	for at, a := range byTime {
		v := a.sum
		if kind == Gauge && a.n > 0 {
			v = a.sum / float64(a.n)
		}
		out.Points = append(out.Points, Point{At: at, Value: v})
	}
	sort.Slice(out.Points, func(i, j int) bool { return out.Points[i].At.Before(out.Points[j].At) })
	return out
}
