package workload

import (
	"rpcscale/internal/trace"
)

// GraphStat summarizes the shape of one generated (or reconstructed)
// call graph: the raw material of the graph-shape figures (size CCDF,
// depth-vs-width joint distribution, motif frequency). It is a plain
// value — integer counts only — so accumulating GraphStats is invariant
// to shard routing and fold order, which is what keeps the streaming and
// materialized reports byte-identical.
type GraphStat struct {
	// Root is the graph's entry method.
	Root string
	// Spans is the number of nodes in the graph (shared dependencies
	// count once however many parents reach them).
	Spans int
	// Depth is the height of the primary-parent spanning tree.
	Depth int
	// Width is the maximum node count at any single primary depth.
	Width int
	// FanInEdges counts in-edges beyond the spanning tree (0 for trees).
	FanInEdges int
	// SharedNodes counts nodes with more than one parent.
	SharedNodes int
	// Motifs counts nodes by motif kind (index trace.Motif; index 0 is
	// unused — plain calls are Spans minus the rest).
	Motifs [trace.NumMotifs]uint32
}

// GraphStatOf summarizes a reconstructed trace.Graph — the dump-replay
// counterpart of the generator's in-flight accounting.
func GraphStatOf(g *trace.Graph) GraphStat {
	st := GraphStat{
		Spans:       g.Spans,
		Depth:       g.Depth(),
		Width:       g.Width(),
		FanInEdges:  g.FanInEdges(),
		SharedNodes: g.SharedNodes(),
	}
	if g.Root != nil {
		st.Root = g.Root.Span.Method
	}
	for _, n := range g.Nodes {
		if m := n.Span.Motif; m != trace.MotifNone && int(m) < trace.NumMotifs {
			st.Motifs[m]++
		}
	}
	return st
}
