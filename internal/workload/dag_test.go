package workload

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"rpcscale/internal/fleet"
	"rpcscale/internal/trace"
)

// motifCat builds a fresh motif-wired catalog. ApplyMotifs mutates the
// catalog, so tests must never wire the shared testCat.
func motifCat() *fleet.Catalog {
	cat := fleet.New(fleet.Config{Methods: 400, Clusters: len(testTopo.Clusters), Seed: 11})
	fleet.ApplyMotifs(cat, fleet.DefaultMotifs(), 11)
	return cat
}

var dagCfg = RunConfig{
	Seed: 17, MethodSamples: 10, StudiedSamples: 20,
	VolumeRoots: 2000, Trees: 60, MaxDepth: 6, TreeBudget: 400,
}

func TestNoMotifRunStaysTreeShaped(t *testing.T) {
	ds := Generate(context.Background(), testCat, testTopo, dagCfg)
	if len(ds.GraphStats) == 0 {
		t.Fatal("no graph summaries emitted")
	}
	for _, g := range ds.GraphStats {
		if g.FanInEdges != 0 || g.SharedNodes != 0 {
			t.Fatalf("no-motif graph %s has fan-in: %+v", g.Root, g)
		}
		for m, n := range g.Motifs {
			if trace.Motif(m) != trace.MotifNone && n != 0 {
				t.Fatalf("no-motif graph %s tagged %d %s nodes", g.Root, n, trace.Motif(m))
			}
		}
	}
	for _, s := range ds.AllSpans() {
		if len(s.LinkedParents) != 0 || s.Motif != trace.MotifNone {
			t.Fatalf("no-motif span %s/%s carries DAG fields", s.Service, s.Method)
		}
	}
}

func TestMotifRunDeterministic(t *testing.T) {
	a := Generate(context.Background(), motifCat(), testTopo, dagCfg)
	b := Generate(context.Background(), motifCat(), testTopo, dagCfg)
	if !reflect.DeepEqual(a.GraphStats, b.GraphStats) {
		t.Fatal("graph summaries differ between identical runs")
	}
	var fanIn, motifs int
	for _, g := range a.GraphStats {
		fanIn += g.FanInEdges
		for m, n := range g.Motifs {
			if trace.Motif(m) != trace.MotifNone {
				motifs += int(n)
			}
		}
	}
	if fanIn == 0 {
		t.Error("motif run produced no fan-in edges")
	}
	if motifs == 0 {
		t.Error("motif run tagged no nodes")
	}
}

func TestGraphStatWithinBudget(t *testing.T) {
	ds := Generate(context.Background(), motifCat(), testTopo, dagCfg)
	for _, g := range ds.GraphStats {
		if g.Spans < 1 {
			t.Fatalf("graph %s has %d spans", g.Root, g.Spans)
		}
		// Sidecar proxies can add a node per edge beyond the budget.
		if g.Spans > 2*dagCfg.TreeBudget {
			t.Fatalf("graph %s has %d spans, budget %d", g.Root, g.Spans, dagCfg.TreeBudget)
		}
		if g.Depth < 0 || g.Width < 1 && g.Spans > 0 {
			t.Fatalf("graph %s has depth %d width %d", g.Root, g.Depth, g.Width)
		}
		if g.SharedNodes > g.FanInEdges {
			t.Fatalf("graph %s: %d shared nodes but %d fan-in edges",
				g.Root, g.SharedNodes, g.FanInEdges)
		}
	}
}

func TestMotifDumpRoundTrip(t *testing.T) {
	ds := Generate(context.Background(), motifCat(), testTopo, dagCfg)
	var buf bytes.Buffer
	if err := trace.WriteSpans(&buf, ds.AllSpans()); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.GraphStats) == 0 {
		t.Fatal("no graph summaries reconstructed from dump")
	}
	var fanIn int
	for _, g := range loaded.GraphStats {
		fanIn += g.FanInEdges
	}
	if fanIn == 0 {
		t.Error("reconstructed graphs lost their fan-in edges")
	}
	var linked, tagged bool
	for _, s := range loaded.VolumeSpans {
		if len(s.LinkedParents) > 0 {
			linked = true
		}
		if s.Motif != trace.MotifNone {
			tagged = true
		}
	}
	if !linked {
		t.Error("linked_parents lost in the dump round-trip")
	}
	if !tagged {
		t.Error("motif tags lost in the dump round-trip")
	}
}
