package workload

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"rpcscale/internal/fleet"
	"rpcscale/internal/gwp"
	"rpcscale/internal/sim"
	"rpcscale/internal/stats"
	"rpcscale/internal/trace"
)

// RunConfig sizes a dataset generation run. Zero fields select defaults
// that keep `go test` fast; cmd/fleetgen scales them to paper volume.
type RunConfig struct {
	Seed uint64

	// MethodSamples is the per-method stratified sample count (the
	// paper requires >= 100 samples per method for well-defined P99s).
	MethodSamples int
	// StudiedSamples is the per-method sample count for the eight
	// studied services (Figs. 14-18 need more resolution).
	StudiedSamples int
	// VolumeRoots is the number of popularity-weighted call samples
	// (fleet-mix figures).
	VolumeRoots int
	// Trees is the number of materialized call trees.
	Trees int
	// MaxDepth and TreeBudget bound each tree.
	MaxDepth   int
	TreeBudget int

	// Shards is the generation parallelism. Results are deterministic
	// for a fixed (Seed, Shards) pair; the default is 8.
	Shards int

	// RetainSpans makes Run buffer every generated span into a Dataset
	// on top of streaming it to the caller's sinks. Generate forces it;
	// pure streaming consumers leave it false and run at bounded memory
	// regardless of the configured volume.
	RetainSpans bool
}

// DefaultRun returns the test-scale run configuration.
func DefaultRun() RunConfig {
	return RunConfig{
		Seed:           1,
		MethodSamples:  120,
		StudiedSamples: 1500,
		VolumeRoots:    60000,
		Trees:          800,
		MaxDepth:       8,
		TreeBudget:     3000,
	}
}

func (c RunConfig) withDefaults() RunConfig {
	d := DefaultRun()
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	if c.MethodSamples == 0 {
		c.MethodSamples = d.MethodSamples
	}
	if c.StudiedSamples == 0 {
		c.StudiedSamples = d.StudiedSamples
	}
	if c.VolumeRoots == 0 {
		c.VolumeRoots = d.VolumeRoots
	}
	if c.Trees == 0 {
		c.Trees = d.Trees
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = d.MaxDepth
	}
	if c.TreeBudget == 0 {
		c.TreeBudget = d.TreeBudget
	}
	if c.Shards <= 0 {
		c.Shards = 8
	}
	return c
}

// ExoObservation pairs a studied-service span with the exogenous state of
// its serving cluster at call time (Fig. 17/18 raw material).
type ExoObservation struct {
	Span *trace.Span
	Exo  sim.Exo
}

// Dataset is everything one generation run produces. All downstream
// analyses (internal/core) consume Datasets.
type Dataset struct {
	Cat  *fleet.Catalog
	Topo *sim.Topology

	// MethodSpans holds the stratified per-method samples, keyed by
	// method name. Client/server placement follows each method's
	// locality model; times are uniform over 24h.
	MethodSpans map[string][]*trace.Span

	// VolumeSpans is the popularity-weighted fleet call mix, including
	// hedging-induced cancellations.
	VolumeSpans []*trace.Span

	// TreeSpans and Trees are the materialized call-tree sample.
	TreeSpans []*trace.Span
	Trees     []*trace.Tree

	// DescendantsByMethod / AncestorsByMethod are exact per-method
	// samples gathered during generation (no materialization needed).
	DescendantsByMethod map[string]*stats.Sample
	AncestorsByMethod   map[string]*stats.Sample

	// ExoByMethod holds studied-method spans paired with cluster state.
	ExoByMethod map[string][]ExoObservation

	// GraphStats summarizes every fully-generated call graph (stratified
	// and materialized roots; depth-truncated volume roots are excluded).
	GraphStats []GraphStat

	// Profile is the GWP cycle attribution accumulated over the run.
	Profile *gwp.Snapshot
}

// Generate runs the full pipeline and materializes everything into a
// Dataset. It is Run with span retention forced on and no caller sinks:
// the buffered path that existing figure analyses and tests consume.
//
// Cancelling ctx stops every shard at its next sample boundary; the
// partial dataset accumulated so far is still returned (and is still
// deterministic up to the truncation point), so long runs can be
// interrupted without losing everything.
func Generate(ctx context.Context, cat *fleet.Catalog, topo *sim.Topology, cfg RunConfig) *Dataset {
	cfg = cfg.withDefaults()
	cfg.RetainSpans = true
	_, ds := Run(ctx, cat, topo, cfg, nil)
	return ds
}

// Run executes the generation pipeline, sharded across cfg.Shards
// goroutines, streaming each shard's output to the sink built by factory
// for that shard index. factory is called sequentially for shards
// 0..Shards-1 before any generation starts and may be nil (or return
// nil) when only retention or the CPU profile is wanted; each returned
// sink is used by a single shard goroutine only, so sinks need no
// internal locking.
//
// Output is deterministic for a fixed (Seed, Shards) pair: each shard's
// stream depends only on its own derived seed, each shard records cycles
// into a private profiler, and profilers (like any caller-side shard
// accumulators) are merged in shard-index order.
//
// The returned Dataset is nil unless cfg.RetainSpans is set, in which
// case every span is additionally buffered Dataset-style (this is what
// Generate does). With RetainSpans off, memory stays bounded by the
// sinks' own state however large the configured volume is.
func Run(ctx context.Context, cat *fleet.Catalog, topo *sim.Topology, cfg RunConfig, factory func(shard int) SpanSink) (*gwp.Snapshot, *Dataset) {
	cfg = cfg.withDefaults()

	studied := make(map[string]bool)
	for _, s := range fleet.EightServices() {
		studied[s.Method] = true
	}
	roots := entryMethods(cat)

	var dsSinks []*datasetSink
	if cfg.RetainSpans {
		dsSinks = make([]*datasetSink, cfg.Shards)
	}
	sinks := make([]SpanSink, cfg.Shards)
	profs := make([]*gwp.Profiler, cfg.Shards)
	for shard := 0; shard < cfg.Shards; shard++ {
		var parts teeSink
		if factory != nil {
			if s := factory(shard); s != nil {
				parts = append(parts, s)
			}
		}
		if cfg.RetainSpans {
			dsSinks[shard] = newDatasetSink()
			parts = append(parts, dsSinks[shard])
		}
		switch len(parts) {
		case 0:
			sinks[shard] = nopSink{}
		case 1:
			sinks[shard] = parts[0]
		default:
			sinks[shard] = parts
		}
		profs[shard] = gwp.New()
	}

	var wg sync.WaitGroup
	for shard := 0; shard < cfg.Shards; shard++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			runShard(ctx, cat, topo, profs[shard], cfg, studied, roots, shard, sinks[shard])
		}(shard)
	}
	wg.Wait()

	// Merge per-shard profilers in shard order for deterministic
	// floating-point accumulation.
	prof := gwp.New()
	for _, p := range profs {
		prof.Merge(p)
	}
	snap := prof.Snapshot()

	if !cfg.RetainSpans {
		return snap, nil
	}
	ds := &Dataset{
		Cat:                 cat,
		Topo:                topo,
		MethodSpans:         make(map[string][]*trace.Span, len(cat.Methods)),
		DescendantsByMethod: make(map[string]*stats.Sample),
		AncestorsByMethod:   make(map[string]*stats.Sample),
		ExoByMethod:         make(map[string][]ExoObservation),
	}
	for _, d := range dsSinks {
		for name, spans := range d.methodSpans {
			ds.MethodSpans[name] = append(ds.MethodSpans[name], spans...)
		}
		ds.VolumeSpans = append(ds.VolumeSpans, d.volume...)
		ds.TreeSpans = append(ds.TreeSpans, d.treeSpans...)
		mergeSamples(ds.DescendantsByMethod, d.desc)
		mergeSamples(ds.AncestorsByMethod, d.anc)
		for name, obs := range d.exo {
			ds.ExoByMethod[name] = append(ds.ExoByMethod[name], obs...)
		}
		ds.GraphStats = append(ds.GraphStats, d.graphs...)
	}
	ds.Trees = trace.BuildTrees(ds.TreeSpans)
	ds.Profile = snap
	return snap, ds
}

func mergeSamples(dst, src map[string]*stats.Sample) {
	for name, s := range src {
		d := dst[name]
		if d == nil {
			d = stats.NewSample(s.Len())
			dst[name] = d
		}
		for _, v := range s.Values() {
			d.Add(v)
		}
	}
}

// runShard produces one shard's slice of the generation stream: every
// method's stratified samples are split across shards, as are the volume
// roots and trees. Each span is handed to the sink the moment it exists.
// Cancellation is checked between samples, so a shard never tears down a
// half-generated call tree.
func runShard(ctx context.Context, cat *fleet.Catalog, topo *sim.Topology, prof *gwp.Profiler, cfg RunConfig, studied map[string]bool, roots []*fleet.Method, shard int, sink SpanSink) {
	done := ctx.Done()
	cancelled := func() bool {
		select {
		case <-done:
			return true
		default:
			return false
		}
	}
	gen := NewGeneratorShard(cat, topo, prof, cfg.Seed, shard)
	rng := stats.NewRNG(cfg.Seed).Child(fmt.Sprintf("dataset-%d", shard))
	share := func(total int) int {
		n := total / cfg.Shards
		if shard < total%cfg.Shards {
			n++
		}
		return n
	}

	// --- Stratified per-method samples. ---
	for _, m := range cat.Methods {
		total := cfg.MethodSamples
		if studied[m.Name] {
			total = cfg.StudiedSamples
		}
		n := share(total)
		for i := 0; i < n; i++ {
			if cancelled() {
				return
			}
			at := time.Duration(rng.Float64() * float64(24*time.Hour))
			obs := gen.Call(m, CallOptions{At: at, MaxDepth: cfg.MaxDepth, Budget: cfg.TreeBudget})
			sink.MethodSpan(obs.Span)
			sink.TreeShape(m.Name, obs.Descendants, obs.Ancestors)
			sink.GraphShape(obs.Graph)
			if studied[m.Name] {
				sink.ExoSample(m.Name, obs.Span, obs.Exo)
			}
		}
	}

	// --- Volume run: the fleet call mix. ---
	nVolume := share(cfg.VolumeRoots)
	for i := 0; i < nVolume; i++ {
		if cancelled() {
			return
		}
		m := cat.SampleMethod(rng)
		at := time.Duration(rng.Float64() * float64(24*time.Hour))
		// Volume samples skip deep recursion: the popularity model is
		// already the marginal distribution over all calls, so each
		// sample stands for itself, with a shallow child layer for the
		// parent-includes-children latency semantics.
		obs := gen.Call(m, CallOptions{At: at, MaxDepth: 2, Budget: 64})
		sink.VolumeSpan(obs.Span)
		// Hedging-induced cancellations at the fleet mix level.
		if rng.Bool(m.HedgeProb * cancelPerHedge) {
			sink.VolumeSpan(gen.HedgedCancellation(m, at))
		}
	}

	// --- Tree run: materialized call trees rooted at entry points. ---
	for i := 0; i < share(cfg.Trees); i++ {
		if cancelled() {
			return
		}
		m := roots[rng.Intn(len(roots))]
		at := time.Duration(rng.Float64() * float64(24*time.Hour))
		obs := gen.Call(m, CallOptions{
			At: at, MaxDepth: cfg.MaxDepth, Budget: cfg.TreeBudget,
			Materialize: true,
			Observe: func(o CallObservation) {
				sink.TreeSpan(o.Span)
				sink.TreeShape(o.Span.Method, o.Descendants, o.Ancestors)
			},
		})
		sink.GraphShape(obs.Graph)
	}
}

// entryMethods returns the call-tree roots: the highest-layer methods,
// popularity-weighted sampling pool.
func entryMethods(cat *fleet.Catalog) []*fleet.Method {
	var out []*fleet.Method
	for _, m := range cat.Methods {
		if m.Layer >= 2 {
			out = append(out, m)
		}
	}
	if len(out) == 0 {
		out = cat.Methods
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Popularity > out[j].Popularity })
	if len(out) > 200 {
		out = out[:200]
	}
	return out
}

// AllSpans returns the union of every span set (for fleet-wide error and
// byte accounting that wants maximum sample volume). The returned slice
// is freshly allocated on every call — it copies nothing but the span
// pointers, and callers may reorder or truncate it freely — so streaming
// consumers that only need to visit each span once should prefer feeding
// a SpanSink via Run instead of paying for the union.
func (ds *Dataset) AllSpans() []*trace.Span {
	out := make([]*trace.Span, 0,
		len(ds.VolumeSpans)+len(ds.TreeSpans)+len(ds.MethodSpans)*8)
	out = append(out, ds.VolumeSpans...)
	out = append(out, ds.TreeSpans...)
	for _, spans := range ds.MethodSpans {
		out = append(out, spans...)
	}
	return out
}

// SpansForMethod returns the stratified spans of one method.
func (ds *Dataset) SpansForMethod(name string) []*trace.Span { return ds.MethodSpans[name] }
