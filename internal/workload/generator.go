// Package workload executes the synthetic fleet catalog against the
// simulator to produce the study's datasets: trace spans with full
// nine-component breakdowns, call trees, per-method descendant/ancestor
// counts, GWP cycle attribution, and Monarch counter series.
//
// The generator is the simulation counterpart of production traffic: every
// span's components come from structural models (method profile x cluster
// state x topology), so the figures computed downstream are emergent, not
// transcribed.
package workload

import (
	"fmt"
	"time"

	"rpcscale/internal/fleet"
	"rpcscale/internal/gwp"
	"rpcscale/internal/sim"
	"rpcscale/internal/stats"
	"rpcscale/internal/trace"
)

// Epoch anchors simulation time zero on the wall clock (the start of the
// paper's observation window, December 2020).
var Epoch = time.Date(2020, 12, 1, 0, 0, 0, 0, time.UTC)

// Generator produces spans for (method, cluster, time) triples. It is not
// safe for concurrent use; clone per goroutine via NewGenerator with
// distinct seeds.
type Generator struct {
	Cat  *fleet.Catalog
	Topo *sim.Topology
	Prof *gwp.Profiler

	rng        *stats.RNG
	nonCancel  *fleet.ErrorMix
	nextTrace  uint64
	nextSpanID uint64

	// idBase namespaces trace/span IDs per shard (see NewGeneratorShard).
	idBase uint64

	// ColocateBoost is how strongly the cluster manager co-locates
	// nested calls with their parent: the residual cross-cluster
	// probability of a nested call is (1-locality)*(1-ColocateBoost).
	// The default 0.75 models production placement; the co-location
	// what-if study (§5.2) compares against 0.
	ColocateBoost float64

	// Per-graph accounting, reset at the top of Call. depthNodes[d] is
	// the node count at primary depth d; shared tracks this graph's
	// shared-dependency spans so later callers add in-edges instead of
	// regenerating subtrees; pending holds observations of shared spans,
	// deferred to the end of the graph so fan-in edges recorded by later
	// callers are present when the span is observed (and serialized).
	depthNodes  []int
	motifCount  [trace.NumMotifs]uint32
	fanInEdges  int
	sharedNodes int
	shared      map[*fleet.Method]*sharedEntry
	pending     []CallObservation
}

// sharedEntry tracks one shared dependency within the graph being
// generated: the span (once built), in-edges recorded before it exists,
// and how many extra parents reached it.
type sharedEntry struct {
	primary trace.SpanID   // the spanning-tree parent
	span    *trace.Span    // nil until built, or when not materializing
	extra   []trace.SpanID // in-edges recorded before the span exists
	links   int            // extra in-edges gained so far
	motif   trace.Motif    // motif the node was first generated with
}

// hasEdge reports whether parent p already has an edge to this node
// (primary or fan-in); a repeated call to the same shared dependency from
// one parent is a single graph edge.
func (e *sharedEntry) hasEdge(p trace.SpanID) bool {
	if p == e.primary {
		return true
	}
	edges := e.extra
	if e.span != nil {
		edges = e.span.LinkedParents
	}
	for _, q := range edges {
		if q == p {
			return true
		}
	}
	return false
}

// Tax-cycle attribution rates. The per-span cycle tax averages
// taxRate of application cycles — the paper's 7.1%-of-total
// (7.1/92.9 = 7.64% of application cycles) — and splits across the
// Fig. 20 categories in the paper's proportions (3.1 : 1.7 : 1.2 : 1.1).
const (
	taxRate        = 0.0764
	compShare      = 3.1 / 7.1
	netShare       = 1.7 / 7.1
	serShare       = 1.2 / 7.1
	libShare       = 1.1 / 7.1
	perByteStack   = 0.35 // ns of stack processing per payload byte
	cancelPerHedge = 0.07 // P(visible cancellation | hedged call)

	// childDispatch is the parent-side cost of issuing one nested call.
	childDispatch = 5 * time.Microsecond
)

// NewGenerator builds a generator. prof may be nil (a private profiler is
// created).
func NewGenerator(cat *fleet.Catalog, topo *sim.Topology, prof *gwp.Profiler, seed uint64) *Generator {
	return NewGeneratorShard(cat, topo, prof, seed, 0)
}

// NewGeneratorShard builds a generator whose trace and span IDs live in a
// disjoint namespace (shard index in the top bits), so multiple
// generators can produce spans for one dataset concurrently without ID
// collisions. Each shard's stream is deterministic in (seed, shard).
func NewGeneratorShard(cat *fleet.Catalog, topo *sim.Topology, prof *gwp.Profiler, seed uint64, shard int) *Generator {
	if prof == nil {
		prof = gwp.New()
	}
	// Errors other than Cancelled come from this mix; cancellations are
	// produced structurally by hedging (§4.4), so excluding them here
	// avoids double counting. Weights are the Fig. 23 remainder.
	nonCancel := fleet.NewErrorMix(
		[]trace.ErrorCode{
			trace.EntityNotFound, trace.NoResource, trace.NoPermission,
			trace.DeadlineExceeded, trace.Unavailable, trace.Internal,
			trace.InvalidArgument,
		},
		[]float64{0.36, 0.16, 0.15, 0.13, 0.09, 0.07, 0.04},
	)
	return &Generator{
		Cat:           cat,
		Topo:          topo,
		Prof:          prof,
		rng:           stats.NewRNG(seed).Child(fmt.Sprintf("workload-%d", shard)),
		nonCancel:     nonCancel,
		ColocateBoost: 0.75,
		idBase:        uint64(shard) << 48,
	}
}

// CallObservation reports one generated call to optional hooks.
type CallObservation struct {
	Span        *trace.Span // always populated
	Method      *fleet.Method
	Server      *sim.Cluster
	Client      *sim.Cluster
	Exo         sim.Exo // server cluster state at call time
	Descendants int
	Ancestors   int

	// Graph summarizes the whole call graph. It is populated only on the
	// observation Call returns (the root), after the graph is complete.
	Graph GraphStat
}

// CallOptions controls one tree generation.
type CallOptions struct {
	// Client pins the caller's cluster; nil picks per the method's
	// locality model.
	Client *sim.Cluster
	// Server pins the root call's serving cluster (nested calls still
	// place per their own models). Used by the cross-cluster latency
	// study (Fig. 19).
	Server *sim.Cluster
	// SameClusterOnly forces client == server (the §3.3 intra-cluster
	// filter).
	SameClusterOnly bool
	// At is the call time within the observation window.
	At time.Duration
	// MaxDepth bounds nesting (<=0 selects the default of 8).
	MaxDepth int
	// Budget bounds the subtree's span count (<=0 selects 4000).
	Budget int
	// Materialize emits spans for nested calls too; otherwise only the
	// root call's span is built (descendant counts are still exact).
	Materialize bool
	// Observe receives every materialized call, and the root call even
	// when Materialize is false.
	Observe func(CallObservation)
}

type callResult struct {
	rct   time.Duration
	nodes int // calls in the subtree including self
}

// Call generates one RPC (and, recursively, its subtree) and returns the
// root observation.
func (g *Generator) Call(m *fleet.Method, opts CallOptions) CallObservation {
	if opts.MaxDepth <= 0 {
		opts.MaxDepth = 8
	}
	if opts.Budget <= 0 {
		opts.Budget = 4000
	}
	budget := opts.Budget
	tid := g.newTraceID()
	g.resetGraph()
	var rootObs CallObservation
	inner := opts.Observe
	opts.Observe = func(o CallObservation) {
		if o.Span.ParentID == 0 {
			rootObs = o
		}
		if inner != nil {
			inner(o)
		}
	}
	client := opts.Client
	if client == nil {
		client = g.pickClient(m, opts)
	}
	res := g.genCall(m, client, opts.At, 0, &budget, tid, 0, &opts, true, trace.MotifNone)
	// Shared-dependency spans were held back so fan-in edges recorded by
	// later callers made it onto the span; flush them in generation order.
	for _, o := range g.pending {
		opts.Observe(o)
	}
	depth, width := 0, 0
	for d, n := range g.depthNodes {
		if n == 0 {
			continue
		}
		if d > depth {
			depth = d
		}
		if n > width {
			width = n
		}
	}
	rootObs.Graph = GraphStat{
		Root:        m.Name,
		Spans:       res.nodes,
		Depth:       depth,
		Width:       width,
		FanInEdges:  g.fanInEdges,
		SharedNodes: g.sharedNodes,
		Motifs:      g.motifCount,
	}
	return rootObs
}

// resetGraph clears the per-graph accounting at the top of Call.
func (g *Generator) resetGraph() {
	g.depthNodes = g.depthNodes[:0]
	g.motifCount = [trace.NumMotifs]uint32{}
	g.fanInEdges = 0
	g.sharedNodes = 0
	for k := range g.shared {
		delete(g.shared, k)
	}
	g.pending = g.pending[:0]
}

// noteNode records one graph node at its primary depth.
func (g *Generator) noteNode(depth int) {
	for len(g.depthNodes) <= depth {
		g.depthNodes = append(g.depthNodes, 0)
	}
	g.depthNodes[depth]++
}

// pickClient chooses the caller's cluster for a root call: usually one of
// the method's home clusters (locality), otherwise anywhere.
func (g *Generator) pickClient(m *fleet.Method, opts CallOptions) *sim.Cluster {
	clusters := g.Topo.Clusters
	if opts.SameClusterOnly || g.rng.Bool(m.Locality) {
		return clusters[m.HomeClusters[g.rng.Intn(len(m.HomeClusters))]]
	}
	return clusters[g.rng.Intn(len(clusters))]
}

// pickServer chooses the serving cluster given the client. Nested calls
// get a locality boost: a partition/aggregate parent overwhelmingly fans
// out within its own cluster (the cluster manager co-locates trees).
func (g *Generator) pickServer(m *fleet.Method, client *sim.Cluster, sameOnly, nested bool) *sim.Cluster {
	if sameOnly {
		return client
	}
	locality := m.Locality
	if nested {
		locality = 1 - (1-locality)*(1-g.ColocateBoost)
	}
	if g.rng.Bool(locality) {
		// Co-located placement: the parent's own cluster when the
		// method serves there, otherwise the nearest home cluster.
		for _, h := range m.HomeClusters {
			if g.Topo.Clusters[h] == client {
				return client
			}
		}
		best := g.Topo.Clusters[m.HomeClusters[0]]
		for _, h := range m.HomeClusters[1:] {
			cand := g.Topo.Clusters[h]
			if g.Topo.DistanceKm(client, cand) < g.Topo.DistanceKm(client, best) {
				best = cand
			}
		}
		return best
	}
	return g.Topo.Clusters[m.HomeClusters[g.rng.Intn(len(m.HomeClusters))]]
}

func (g *Generator) newTraceID() trace.TraceID {
	g.nextTrace++
	x := g.idBase | g.nextTrace
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return trace.TraceID(x ^ (x >> 31))
}

func (g *Generator) newSpanID() trace.SpanID {
	g.nextSpanID++
	return trace.SpanID(g.idBase | g.nextSpanID)
}

// genCall generates one call and the graph below it. motif tags the span
// when it was produced by a motif branch (cache hit/miss); plain calls
// pass trace.MotifNone.
func (g *Generator) genCall(m *fleet.Method, client *sim.Cluster, at time.Duration, depth int, budget *int, tid trace.TraceID, parent trace.SpanID, opts *CallOptions, isRoot bool, motif trace.Motif) callResult {
	*budget--
	g.noteNode(depth)
	if motif != trace.MotifNone {
		g.motifCount[motif]++
	}
	rng := g.rng
	var server *sim.Cluster
	switch {
	case isRoot && opts.Server != nil:
		server = opts.Server
	case isRoot && opts.SameClusterOnly:
		server = client
	default:
		server = g.pickServer(m, client, false, !isRoot)
	}
	exo := server.Exo.At(at)
	clientExo := client.Exo.At(at)

	req, resp := m.SampleSizes(rng)
	spanID := g.newSpanID() // allocated before recursion so children can link

	// Register shared dependencies up front so any caller reached later in
	// this graph links to this span instead of spawning a new subtree.
	var sharedE *sharedEntry
	if m.SharedDep && !isRoot {
		if g.shared == nil {
			g.shared = make(map[*fleet.Method]*sharedEntry)
		}
		sharedE = &sharedEntry{primary: parent, motif: motif}
		g.shared[m] = sharedE
	}

	// Application time target: catalog profile scaled by platform speed
	// and exogenous slowdown (the Fig. 16/17 cluster-state coupling).
	// Per the paper (§2.1), this time *includes* waiting on nested
	// calls — the nesting is invisible to the caller — so children run
	// inside the target and only extend it when a straggler child
	// outlives it.
	appTarget := time.Duration(float64(m.SampleAppTime(rng)) * server.SpeedFactor * exo.SlowdownFactor())

	// Nested calls: children run in parallel with this server as their
	// client (partition/aggregate), so the slowest child gates the
	// parent, plus a small per-child dispatch cost.
	nodes := 1
	dispatched := 0
	var slowest time.Duration

	// Cache-aside: consult the cache tier first. The branch is a pure
	// function of (trace ID, span ID), so graph shapes replay exactly for
	// a fixed seed; a hit elides the backing subtree entirely.
	cacheHit := false
	if m.Cache != nil && depth < opts.MaxDepth && *budget > 0 {
		cacheHit = cacheHitFor(tid, spanID, m.Cache.HitRate)
		cm := trace.MotifCacheMiss
		if cacheHit {
			cm = trace.MotifCacheHit
		}
		cr := g.genCall(m.Cache.Method, server, at, depth+1, budget, tid, spanID, opts, false, cm)
		nodes += cr.nodes
		if cr.rct > slowest {
			slowest = cr.rct
		}
		dispatched++
	}
	if !cacheHit && depth < opts.MaxDepth && *budget > 0 {
		fan := m.SampleFanOut(rng)
		if fan > *budget {
			fan = *budget
		}
		for i := 0; i < fan && *budget > 0; i++ {
			child := m.PickCallee(rng)
			cr := g.genChild(child, server, at, depth+1, budget, tid, spanID, opts)
			nodes += cr.nodes
			if cr.rct > slowest {
				slowest = cr.rct
			}
		}
		dispatched += fan
	}
	// Cross-datacenter replication: synchronous replica writes fan out to
	// the method's other home datacenters, each acked before the call
	// completes (so the farthest replica gates the parent).
	if m.Replicas > 0 && depth < opts.MaxDepth && *budget > 0 {
		for r := 0; r < m.Replicas && *budget > 0; r++ {
			rct := g.genReplica(m, server, at, depth+1, budget, tid, spanID, opts)
			nodes++
			if rct > slowest {
				slowest = rct
			}
			dispatched++
		}
	}
	var childTime time.Duration
	if dispatched > 0 {
		childTime = slowest + time.Duration(dispatched)*childDispatch
	}
	app := appTarget
	if childTime > app {
		// Straggler children push the handler past its own target —
		// but only partially: production parents mitigate stragglers
		// with hedged backup requests (§4.4), so extreme child tails
		// are soft-clamped rather than inherited wholesale.
		excess := childTime - app
		if limit := 3 * appTarget; excess > limit {
			excess = limit + (excess-limit)/5
		}
		app += excess + appTarget/10
	}
	localApp := appTarget

	// Queue components. Server receive queuing scales with the pool's
	// effective utilization: the method's queue factor pushes a
	// congested pool's utilization toward saturation (queue-heavy
	// services run light handlers behind deep queues) and relaxes it
	// for over-provisioned pools.
	qSvc := localApp * 3 / 10
	if qSvc > 5*time.Millisecond {
		qSvc = 5 * time.Millisecond
	}
	if qSvc < 30*time.Microsecond {
		qSvc = 30 * time.Microsecond
	}
	effUtil := exo.CPUUtil
	if m.QueueFactor > 1 {
		effUtil = 1 - (1-effUtil)/m.QueueFactor
	} else if m.QueueFactor > 0 {
		effUtil *= m.QueueFactor
	}
	var b trace.Breakdown
	b[trace.ServerApp] = app
	b[trace.ClientSendQueue] = sim.QueueWait(rng, 20*time.Microsecond, clientExo.CPUUtil*0.6, clientExo)
	b[trace.ServerRecvQueue] = sim.QueueWait(rng, qSvc, effUtil, exo)
	b[trace.ServerSendQueue] = sim.QueueWait(rng, 30*time.Microsecond, exo.CPUUtil*0.5, exo)
	b[trace.ClientRecvQueue] = sim.QueueWait(rng, 30*time.Microsecond, clientExo.CPUUtil*0.5, clientExo)

	// RPC processing + network stack: per-call base plus per-byte
	// serialization/compression/encryption work.
	b[trace.ReqProcStack] = time.Duration((m.StackBase.Sample(rng) + float64(req)*perByteStack) * exo.SlowdownFactor())
	b[trace.RespProcStack] = time.Duration((m.StackBase.Sample(rng)*0.8 + float64(resp)*perByteStack) * exo.SlowdownFactor())

	// Network wire both ways; background network load tracks compute
	// load diurnally.
	netUtil := 0.2 + 0.6*exo.CPUUtil
	b[trace.ReqNetworkWire] = g.Topo.WireOneWay(rng, client, server, req, netUtil)
	b[trace.RespNetworkWire] = g.Topo.WireOneWay(rng, server, client, resp, netUtil)

	// Outcome. Non-cancel errors from the mix; cancellations emerge from
	// hedging below. Failed calls end early, truncating both their
	// latency and the cycles they burned — which is why cancellations
	// (which run nearly to completion before the winner lands) consume
	// an out-sized share of wasted cycles in Fig. 23b.
	code := trace.OK
	errFrac := 1.0
	if rng.Bool(m.ErrorRate * 0.55) {
		code = g.nonCancel.Sample(rng)
		errFrac = 0.1 + 0.5*rng.Float64()
		for i := range b {
			b[i] = time.Duration(float64(b[i]) * errFrac)
		}
		resp = 64
	}

	// CPU attribution. The per-category split rides on the span too, so
	// datasets reconstructed from span dumps keep Fig. 20's taxonomy.
	appCPU := m.CPUCost.Sample(rng) * errFrac
	jitter := 0.7 + 0.6*rng.Float64()
	tax := appCPU * taxRate * jitter
	byCat := [gwp.NumCategories]float64{
		gwp.Application:   appCPU,
		gwp.Compression:   tax * compShare,
		gwp.Networking:    tax * netShare,
		gwp.Serialization: tax * serShare,
		gwp.RPCLibrary:    tax * libShare,
	}
	for cat, cycles := range byCat {
		g.Prof.Record(m.Service.Name, m.Name, gwp.Category(cat), cycles)
	}

	span := &trace.Span{
		TraceID:       tid,
		SpanID:        spanID,
		ParentID:      parent,
		Method:        m.Name,
		Service:       m.Service.Name,
		ClientCluster: client.Name,
		ServerCluster: server.Name,
		Start:         at,
		Breakdown:     b,
		RequestBytes:  req,
		ResponseBytes: resp,
		CPUCycles:     appCPU + tax,
		CPUByCategory: byCat,
		Err:           code,
		Tier:          m.Tier,
		Motif:         motif,
	}

	// Hedging: some calls are issued twice; when the loser's
	// cancellation is visible it appears as a Cancelled span that burned
	// most of its cycles (the paper's §4.4 hedging economics).
	hedged := rng.Bool(m.HedgeProb)
	if hedged && rng.Bool(cancelPerHedge) && opts.Materialize && opts.Observe != nil && parent != 0 {
		dup := *span
		dup.SpanID = g.newSpanID()
		dup.Hedged = true
		dup.Err = trace.Cancelled
		dupFrac := 0.4 + 0.6*rng.Float64()
		for i := range dup.Breakdown {
			dup.Breakdown[i] = time.Duration(float64(dup.Breakdown[i]) * dupFrac)
		}
		dupCPU := 0.6 + 0.4*rng.Float64()
		dup.CPUCycles = span.CPUCycles * dupCPU
		for cat := range dup.CPUByCategory {
			dup.CPUByCategory[cat] = span.CPUByCategory[cat] * dupCPU
			g.Prof.Record(m.Service.Name, m.Name, gwp.Category(cat), dup.CPUByCategory[cat])
		}
		opts.Observe(CallObservation{
			Span: &dup, Method: m, Server: server, Client: client, Exo: exo,
			Descendants: 0, Ancestors: depth + 1,
		})
	}

	rct := b.Total()
	if sharedE != nil {
		sharedE.span = span
		if len(sharedE.extra) > 0 {
			span.LinkedParents = sharedE.extra
		}
		if sharedE.links > 0 {
			span.Motif = trace.MotifFanIn
		}
	}
	if opts.Observe != nil && (opts.Materialize || isRoot) {
		obs := CallObservation{
			Span: span, Method: m, Server: server, Client: client, Exo: exo,
			Descendants: nodes - 1, Ancestors: depth,
		}
		if sharedE != nil && !isRoot {
			// Held back: later callers may still add in-edges; Call
			// flushes the pending observations once the graph is done.
			g.pending = append(g.pending, obs)
		} else {
			opts.Observe(obs)
		}
	}
	return callResult{rct: rct, nodes: nodes}
}

// genChild dispatches one nested call, applying the edge-level motifs:
// fan-in reuse of shared dependencies and sidecar proxy hops. Plain
// children fall through to genCall directly, drawing exactly the same
// randomness as the pre-DAG generator.
func (g *Generator) genChild(child *fleet.Method, client *sim.Cluster, at time.Duration, depth int, budget *int, tid trace.TraceID, parent trace.SpanID, opts *CallOptions) callResult {
	// Fan-in: a shared dependency already reached in this graph gains an
	// extra in-edge instead of a fresh subtree. The shared result is
	// consumed concurrently, so the edge adds no nodes and no wait.
	if child.SharedDep {
		if e := g.shared[child]; e != nil {
			if e.hasEdge(parent) {
				// Repeated call from the same parent: the edge exists.
				return callResult{}
			}
			e.links++
			g.fanInEdges++
			if e.links == 1 {
				g.sharedNodes++
				if e.motif != trace.MotifNone {
					g.motifCount[e.motif]--
				}
				g.motifCount[trace.MotifFanIn]++
			}
			if e.span != nil {
				e.span.LinkedParents = append(e.span.LinkedParents, parent)
				e.span.Motif = trace.MotifFanIn
			} else {
				e.extra = append(e.extra, parent)
			}
			return callResult{}
		}
	}
	// Sidecar: the call is routed through a service-mesh proxy hop.
	if child.SidecarProb > 0 && *budget > 1 && g.rng.Bool(child.SidecarProb) {
		return g.genSidecar(child, client, at, depth, budget, tid, parent, opts)
	}
	return g.genCall(child, client, at, depth, budget, tid, parent, opts, false, trace.MotifNone)
}

// genSidecar interposes a mesh proxy span between parent and child: the
// proxy runs beside the caller, forwards the request, and waits out the
// proxied call, so its response time dominates the child's.
func (g *Generator) genSidecar(m *fleet.Method, client *sim.Cluster, at time.Duration, depth int, budget *int, tid trace.TraceID, parent trace.SpanID, opts *CallOptions) callResult {
	rng := g.rng
	*budget--
	g.noteNode(depth)
	g.motifCount[trace.MotifSidecar]++
	sidecarID := g.newSpanID()
	cr := g.genCall(m, client, at, depth+1, budget, tid, sidecarID, opts, false, trace.MotifNone)

	exo := client.Exo.At(at)
	req, resp := m.SampleSizes(rng)
	// Loopback hop: tiny fixed stack and wire costs plus a light queue on
	// the proxy, with the proxied call riding inside the handler time.
	var b trace.Breakdown
	b[trace.ServerApp] = cr.rct + 20*time.Microsecond
	b[trace.ClientSendQueue] = 2 * time.Microsecond
	b[trace.ServerRecvQueue] = sim.QueueWait(rng, 10*time.Microsecond, exo.CPUUtil*0.5, exo)
	b[trace.ServerSendQueue] = 2 * time.Microsecond
	b[trace.ClientRecvQueue] = 2 * time.Microsecond
	b[trace.ReqProcStack] = time.Duration(3000 + float64(req)*perByteStack*0.2)
	b[trace.RespProcStack] = time.Duration(3000 + float64(resp)*perByteStack*0.2)
	b[trace.ReqNetworkWire] = time.Microsecond
	b[trace.RespNetworkWire] = time.Microsecond

	// Proxy CPU in the catalog's normalized cycle units (method cost
	// floor ~0.016): a forwarding hop burns roughly half a minimal
	// handler plus a per-byte copy term, all RPC-stack work.
	proxyCPU := 0.008 + 1e-6*float64(req+resp)
	g.Prof.Record(m.Service.Name, m.Service.Name+"/sidecar", gwp.Networking, proxyCPU)

	span := &trace.Span{
		TraceID:       tid,
		SpanID:        sidecarID,
		ParentID:      parent,
		Method:        m.Service.Name + "/sidecar",
		Service:       m.Service.Name,
		ClientCluster: client.Name,
		ServerCluster: client.Name,
		Start:         at,
		Breakdown:     b,
		RequestBytes:  req,
		ResponseBytes: resp,
		CPUCycles:     proxyCPU,
		Tier:          trace.TierStateless,
		Motif:         trace.MotifSidecar,
	}
	span.CPUByCategory[gwp.Networking] = proxyCPU
	if opts.Observe != nil && opts.Materialize {
		opts.Observe(CallObservation{
			Span: span, Method: m, Server: client, Client: client, Exo: exo,
			Descendants: cr.nodes, Ancestors: depth,
		})
	}
	return callResult{rct: b.Total(), nodes: cr.nodes + 1}
}

// genReplica generates one synchronous cross-datacenter replica write:
// the serving cluster forwards the request to another of the method's
// home datacenters and waits for a small ack.
func (g *Generator) genReplica(m *fleet.Method, primary *sim.Cluster, at time.Duration, depth int, budget *int, tid trace.TraceID, parent trace.SpanID, opts *CallOptions) time.Duration {
	rng := g.rng
	*budget--
	g.noteNode(depth)
	g.motifCount[trace.MotifReplica]++

	target := g.Topo.Clusters[m.HomeClusters[rng.Intn(len(m.HomeClusters))]]
	if target == primary {
		for _, h := range m.HomeClusters {
			if c := g.Topo.Clusters[h]; c != primary {
				target = c
				break
			}
		}
	}
	exo := target.Exo.At(at)
	req, _ := m.SampleSizes(rng)
	resp := int64(64) // replica ack
	app := time.Duration(float64(m.SampleAppTime(rng)) * 0.5 * target.SpeedFactor * exo.SlowdownFactor())

	var b trace.Breakdown
	b[trace.ServerApp] = app
	b[trace.ClientSendQueue] = sim.QueueWait(rng, 20*time.Microsecond, primary.Exo.At(at).CPUUtil*0.6, primary.Exo.At(at))
	b[trace.ServerRecvQueue] = sim.QueueWait(rng, 30*time.Microsecond, exo.CPUUtil, exo)
	b[trace.ServerSendQueue] = sim.QueueWait(rng, 30*time.Microsecond, exo.CPUUtil*0.5, exo)
	b[trace.ClientRecvQueue] = 2 * time.Microsecond
	b[trace.ReqProcStack] = time.Duration((m.StackBase.Sample(rng) + float64(req)*perByteStack) * exo.SlowdownFactor())
	b[trace.RespProcStack] = time.Duration(m.StackBase.Sample(rng) * 0.5)
	netUtil := 0.2 + 0.6*exo.CPUUtil
	b[trace.ReqNetworkWire] = g.Topo.WireOneWay(rng, primary, target, req, netUtil)
	b[trace.RespNetworkWire] = g.Topo.WireOneWay(rng, target, primary, resp, netUtil)

	appCPU := m.CPUCost.Sample(rng) * 0.5
	g.Prof.Record(m.Service.Name, m.Name, gwp.Application, appCPU)

	span := &trace.Span{
		TraceID:       tid,
		SpanID:        g.newSpanID(),
		ParentID:      parent,
		Method:        m.Name,
		Service:       m.Service.Name,
		ClientCluster: primary.Name,
		ServerCluster: target.Name,
		Start:         at,
		Breakdown:     b,
		RequestBytes:  req,
		ResponseBytes: resp,
		CPUCycles:     appCPU,
		Tier:          m.Tier,
		Motif:         trace.MotifReplica,
	}
	span.CPUByCategory[gwp.Application] = appCPU
	if opts.Observe != nil && opts.Materialize {
		opts.Observe(CallObservation{
			Span: span, Method: m, Server: target, Client: primary, Exo: exo,
			Descendants: 0, Ancestors: depth,
		})
	}
	return b.Total()
}

// cacheHitFor decides a cache-aside branch as a pure hash of the call's
// identity — no RNG draw — so the same (seed, trace, span) always takes
// the same branch and graph shapes replay exactly.
func cacheHitFor(tid trace.TraceID, id trace.SpanID, rate float64) bool {
	x := uint64(tid) ^ uint64(id)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11)/(1<<53) < rate
}

// HedgedCancellation generates a standalone cancelled duplicate for a
// method — used by volume runs where trees are not materialized but the
// fleet-wide error mix still needs its hedging-induced cancellations.
func (g *Generator) HedgedCancellation(m *fleet.Method, at time.Duration) *trace.Span {
	obs := g.Call(m, CallOptions{At: at, MaxDepth: 1, Budget: 2})
	span := obs.Span
	span.Hedged = true
	span.Err = trace.Cancelled
	frac := 0.4 + 0.6*g.rng.Float64()
	for i := range span.Breakdown {
		span.Breakdown[i] = time.Duration(float64(span.Breakdown[i]) * frac)
	}
	return span
}
