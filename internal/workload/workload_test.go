package workload

import (
	"bytes"
	"context"
	"math"
	"testing"
	"time"

	"rpcscale/internal/fleet"
	"rpcscale/internal/monarch"
	"rpcscale/internal/sim"
	"rpcscale/internal/stats"
	"rpcscale/internal/trace"
)

var (
	testTopo = sim.NewTopology(sim.DefaultTopology())
	testCat  = fleet.New(fleet.Config{Methods: 400, Clusters: len(testTopo.Clusters), Seed: 11})
)

func newGen(seed uint64) *Generator { return NewGenerator(testCat, testTopo, nil, seed) }

func TestCallProducesCompleteSpan(t *testing.T) {
	gen := newGen(1)
	m := testCat.MethodByName("networkdisk/Write")
	obs := gen.Call(m, CallOptions{At: time.Hour})
	s := obs.Span
	if s == nil {
		t.Fatal("no span")
	}
	if s.Method != "networkdisk/Write" || s.Service != "networkdisk" {
		t.Errorf("identity %q/%q", s.Method, s.Service)
	}
	if s.ClientCluster == "" || s.ServerCluster == "" {
		t.Error("missing placement")
	}
	if s.RequestBytes < 64 || s.ResponseBytes < 64 {
		t.Error("sizes below floor")
	}
	if s.CPUCycles <= 0 {
		t.Error("no CPU cost")
	}
	for c, v := range s.Breakdown {
		if v < 0 {
			t.Errorf("negative component %v", trace.Component(c))
		}
	}
	if s.Breakdown.Total() <= 0 {
		t.Error("zero total latency")
	}
	if s.Breakdown[trace.ServerApp] <= 0 {
		t.Error("zero app time")
	}
}

func TestCallDeterministicPerSeed(t *testing.T) {
	m := testCat.Methods[50]
	a := newGen(7).Call(m, CallOptions{At: time.Hour})
	b := newGen(7).Call(m, CallOptions{At: time.Hour})
	if a.Span.Breakdown != b.Span.Breakdown || a.Span.RequestBytes != b.Span.RequestBytes {
		t.Fatal("same seed produced different spans")
	}
}

func TestSameClusterOnly(t *testing.T) {
	gen := newGen(2)
	m := testCat.MethodByName("bigtable/SearchValue")
	for i := 0; i < 50; i++ {
		obs := gen.Call(m, CallOptions{At: time.Hour, SameClusterOnly: true})
		if !obs.Span.SameCluster() {
			t.Fatal("SameClusterOnly violated")
		}
	}
}

func TestServerInHomeClusters(t *testing.T) {
	gen := newGen(3)
	m := testCat.Methods[200]
	homes := make(map[string]bool)
	for _, h := range m.HomeClusters {
		homes[testTopo.Clusters[h].Name] = true
	}
	for i := 0; i < 100; i++ {
		obs := gen.Call(m, CallOptions{At: time.Hour})
		if !homes[obs.Span.ServerCluster] {
			t.Fatalf("server %s not in home set", obs.Span.ServerCluster)
		}
	}
}

func TestMaterializedTreeLinks(t *testing.T) {
	gen := newGen(4)
	// Pick a high-layer method so trees are non-trivial.
	var root *fleet.Method
	for _, m := range testCat.Methods {
		if m.Layer >= 3 && len(m.Callees) > 0 {
			root = m
			break
		}
	}
	if root == nil {
		t.Skip("no layer-3 method in test catalog")
	}
	col := trace.NewCollector(1, 0)
	var spanCount int
	for i := 0; i < 20; i++ {
		gen.Call(root, CallOptions{
			At: time.Hour, Materialize: true, MaxDepth: 6, Budget: 500,
			Observe: func(o CallObservation) {
				col.Collect(o.Span)
				spanCount++
			},
		})
	}
	trees := trace.BuildTrees(col.Spans())
	if len(trees) != 20 {
		t.Fatalf("trees = %d, want 20 (children mis-linked?)", len(trees))
	}
	var multi bool
	for _, tr := range trees {
		if tr.Spans > 1 {
			multi = true
		}
		if tr.Root.Span.Method != root.Name && !tr.Root.Span.Hedged {
			t.Errorf("root method = %q", tr.Root.Span.Method)
		}
	}
	if !multi {
		t.Error("no tree had nested calls")
	}
}

func TestBudgetBoundsTreeSize(t *testing.T) {
	gen := newGen(5)
	var root *fleet.Method
	for _, m := range testCat.Methods {
		if m.Layer >= 3 {
			root = m
			break
		}
	}
	if root == nil {
		t.Skip("no deep method")
	}
	for i := 0; i < 50; i++ {
		count := 0
		gen.Call(root, CallOptions{
			At: time.Hour, Materialize: true, Budget: 100, MaxDepth: 8,
			Observe: func(CallObservation) { count++ },
		})
		// Hedged duplicates can add a few beyond the budget.
		if count > 130 {
			t.Fatalf("tree size %d far exceeds budget 100", count)
		}
	}
}

func TestParentAppIncludesChildren(t *testing.T) {
	gen := newGen(6)
	var root *fleet.Method
	for _, m := range testCat.Methods {
		if m.Layer >= 2 && len(m.Callees) > 0 && m.LeafProb < 0.5 {
			root = m
			break
		}
	}
	if root == nil {
		t.Skip("no fan-out method")
	}
	col := trace.NewCollector(1, 0)
	for i := 0; i < 30; i++ {
		gen.Call(root, CallOptions{
			At: time.Hour, Materialize: true, MaxDepth: 4, Budget: 200,
			Observe: func(o CallObservation) { col.Collect(o.Span) },
		})
	}
	for _, tr := range trace.BuildTrees(col.Spans()) {
		if tr.Root.Span.Err.IsError() {
			continue // an erroring parent abandons its children early
		}
		for _, child := range tr.Root.Children {
			if child.Span.Hedged {
				continue
			}
			// The parent's app time covers its children, except for
			// extreme stragglers that the generator models as hedged
			// away (the parent returns from a backup while the
			// straggler runs to completion); those retain at least a
			// fifth of the excess.
			app := tr.Root.Span.Breakdown[trace.ServerApp]
			if app < child.Span.Latency() && 5*app < child.Span.Latency() {
				t.Fatalf("parent app %v far below child latency %v", app, child.Span.Latency())
			}
		}
	}
}

func TestCrossClusterWireLatency(t *testing.T) {
	gen := newGen(7)
	m := testCat.MethodByName("spanner/ReadRows")
	var sameWire, crossWire stats.Sample
	for i := 0; i < 3000; i++ {
		obs := gen.Call(m, CallOptions{At: time.Hour})
		w := float64(obs.Span.Breakdown.Wire())
		if obs.Span.SameCluster() {
			sameWire.Add(w)
		} else {
			crossWire.Add(w)
		}
	}
	if sameWire.Len() == 0 || crossWire.Len() == 0 {
		t.Skip("locality produced only one placement kind")
	}
	if crossWire.Quantile(0.5) <= sameWire.Quantile(0.5) {
		t.Errorf("cross-cluster wire median %v <= same-cluster %v",
			time.Duration(int64(crossWire.Quantile(0.5))), time.Duration(int64(sameWire.Quantile(0.5))))
	}
}

func TestGenerateCancellation(t *testing.T) {
	// A pre-cancelled context stops every shard at its first sample
	// boundary: the run returns promptly with far less than the full
	// dataset, and what it does return is well-formed.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := RunConfig{
		Seed: 1, MethodSamples: 50, StudiedSamples: 100,
		VolumeRoots: 200000, Trees: 500, MaxDepth: 6, TreeBudget: 400,
	}
	ds := Generate(ctx, testCat, testTopo, cfg)
	if got := len(ds.VolumeSpans); got >= cfg.VolumeRoots/10 {
		t.Fatalf("cancelled run produced %d of %d volume spans — cancellation did not stop the shards", got, cfg.VolumeRoots)
	}
	for _, s := range ds.VolumeSpans {
		if s.Method == "" {
			t.Fatal("partial dataset contains an unfinished span")
		}
	}
}

func TestGenerateDataset(t *testing.T) {
	ds := Generate(context.Background(), testCat, testTopo, RunConfig{
		Seed: 1, MethodSamples: 30, StudiedSamples: 100,
		VolumeRoots: 4000, Trees: 60, MaxDepth: 6, TreeBudget: 400,
	})
	if len(ds.MethodSpans) != len(testCat.Methods) {
		t.Fatalf("method span sets = %d", len(ds.MethodSpans))
	}
	for name, spans := range ds.MethodSpans {
		if len(spans) < 30 {
			t.Fatalf("%s has %d spans", name, len(spans))
		}
	}
	if len(ds.VolumeSpans) < 4000 {
		t.Fatalf("volume spans = %d", len(ds.VolumeSpans))
	}
	if len(ds.Trees) == 0 || len(ds.TreeSpans) == 0 {
		t.Fatal("no trees materialized")
	}
	if ds.Profile == nil || ds.Profile.Total() == 0 {
		t.Fatal("no CPU profile")
	}
	// Studied methods have boosted samples and exo observations.
	for _, s := range fleet.EightServices() {
		if len(ds.MethodSpans[s.Method]) < 100 {
			t.Errorf("studied %s has %d samples", s.Method, len(ds.MethodSpans[s.Method]))
		}
		if len(ds.ExoByMethod[s.Method]) == 0 {
			t.Errorf("no exo observations for %s", s.Method)
		}
	}
	// Shape samples exist for every method.
	if len(ds.DescendantsByMethod) < len(testCat.Methods) {
		t.Errorf("descendant samples only for %d methods", len(ds.DescendantsByMethod))
	}
}

func TestVolumeMixMatchesPopularity(t *testing.T) {
	ds := Generate(context.Background(), testCat, testTopo, RunConfig{
		Seed: 2, MethodSamples: 5, StudiedSamples: 5,
		VolumeRoots: 30000, Trees: 10, MaxDepth: 3, TreeBudget: 100,
	})
	counts := make(map[string]int)
	total := 0
	for _, s := range ds.VolumeSpans {
		if s.Hedged {
			continue
		}
		counts[s.Method]++
		total++
	}
	write := testCat.MethodByName("networkdisk/Write")
	got := float64(counts["networkdisk/Write"]) / float64(total)
	if math.Abs(got-write.Popularity) > 0.02 {
		t.Errorf("Write volume share = %.3f, want %.3f", got, write.Popularity)
	}
}

func TestErrorMixInVolume(t *testing.T) {
	ds := Generate(context.Background(), testCat, testTopo, RunConfig{
		Seed: 3, MethodSamples: 5, StudiedSamples: 5,
		VolumeRoots: 60000, Trees: 10, MaxDepth: 3, TreeBudget: 100,
	})
	var errs, cancelled, total int
	for _, s := range ds.VolumeSpans {
		total++
		if s.Err.IsError() {
			errs++
			if s.Err == trace.Cancelled {
				cancelled++
			}
		}
	}
	errRate := float64(errs) / float64(total)
	if errRate < 0.008 || errRate > 0.04 {
		t.Errorf("fleet error rate = %.4f, want ~0.019", errRate)
	}
	cancelShare := float64(cancelled) / float64(errs)
	if cancelShare < 0.25 || cancelShare > 0.65 {
		t.Errorf("cancelled share of errors = %.3f, want ~0.45", cancelShare)
	}
}

func TestCycleTaxShares(t *testing.T) {
	ds := Generate(context.Background(), testCat, testTopo, RunConfig{
		Seed: 4, MethodSamples: 10, StudiedSamples: 10,
		VolumeRoots: 10000, Trees: 20, MaxDepth: 4, TreeBudget: 200,
	})
	p := ds.Profile
	if got := p.TaxShare(); got < 0.05 || got > 0.10 {
		t.Errorf("cycle tax share = %.4f, want ~0.071", got)
	}
	// Category ordering: compression > networking > serialization > lib.
	comp := p.CategoryShare(1)
	net := p.CategoryShare(2)
	ser := p.CategoryShare(3)
	lib := p.CategoryShare(4)
	if !(comp > net && net > ser && ser > lib) {
		t.Errorf("category order wrong: %.4f %.4f %.4f %.4f", comp, net, ser, lib)
	}
}

func TestDescendantsWiderThanDeep(t *testing.T) {
	ds := Generate(context.Background(), testCat, testTopo, RunConfig{
		Seed: 5, MethodSamples: 40, StudiedSamples: 40,
		VolumeRoots: 2000, Trees: 150, MaxDepth: 8, TreeBudget: 2000,
	})
	// Ancestors are bounded (trees are shallow)...
	var maxAnc float64
	for _, s := range ds.AncestorsByMethod {
		if v := s.Quantile(1); v > maxAnc {
			maxAnc = v
		}
	}
	if maxAnc > 12 {
		t.Errorf("max ancestors = %v, want <= depth cap", maxAnc)
	}
	// ...while descendants are heavy-tailed: some method's P99 must be
	// far above the fleet median (wider than deep).
	var medians, p99s stats.Sample
	for _, s := range ds.DescendantsByMethod {
		medians.Add(s.Quantile(0.5))
		p99s.Add(s.Quantile(0.99))
	}
	if med := medians.Quantile(0.5); med > 30 {
		t.Errorf("median-of-median descendants = %v, want small (<=13-ish)", med)
	}
	if p99s.Quantile(0.9) < 20 {
		t.Errorf("descendant tails too light: P90 of P99s = %v", p99s.Quantile(0.9))
	}
}

func TestGrowthHistory(t *testing.T) {
	db := monarch.New(24*time.Hour, 800*24*time.Hour)
	if err := DeclareMetrics(db); err != nil {
		t.Fatal(err)
	}
	if err := WriteGrowthHistory(db, GrowthConfig{Days: 700, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	rps := db.Query(MetricRPS, nil, time.Time{}, time.Time{})
	cpu := db.Query(MetricCPU, nil, time.Time{}, time.Time{})
	if len(rps) != 1 || len(cpu) != 1 {
		t.Fatalf("series: rps=%d cpu=%d", len(rps), len(cpu))
	}
	if len(rps[0].Points) != 700 {
		t.Fatalf("rps points = %d", len(rps[0].Points))
	}
	// Ratio growth: last-30-day mean ratio vs first-30-day mean ratio
	// should be ~1.64x (paper: +64% over 700 days).
	ratio := func(points []monarch.Point, cpuPts []monarch.Point, from, to int) float64 {
		var sum float64
		for i := from; i < to; i++ {
			sum += points[i].Value / cpuPts[i].Value
		}
		return sum / float64(to-from)
	}
	start := ratio(rps[0].Points, cpu[0].Points, 0, 30)
	end := ratio(rps[0].Points, cpu[0].Points, 670, 700)
	growth := end / start
	if growth < 1.45 || growth > 1.90 {
		t.Errorf("700-day RPS/CPU growth = %.2fx, want ~1.64x", growth)
	}
}

func TestDiurnalDay(t *testing.T) {
	db := monarch.New(30*time.Minute, 0)
	if err := DeclareMetrics(db); err != nil {
		t.Fatal(err)
	}
	gen := newGen(8)
	// Use the most loaded cluster: diurnal effects are strongest where
	// the superlinear load terms bite.
	cl := testTopo.Clusters[0]
	for _, c := range testTopo.Clusters {
		if c.Exo.MeanUtil() > cl.Exo.MeanUtil() {
			cl = c
		}
	}
	if err := WriteDiurnalDay(db, gen, "bigtable/SearchValue", cl, 200); err != nil {
		t.Fatal(err)
	}
	lat := db.Query(MetricLatP95, monarch.Labels{"cluster": cl.Name}, time.Time{}, time.Time{})
	if len(lat) != 1 || len(lat[0].Points) != 48 {
		t.Fatalf("latency windows = %+v", lat)
	}
	util := db.Query(MetricCPUUtil, nil, time.Time{}, time.Time{})
	if len(util) != 1 || len(util[0].Points) != 48 {
		t.Fatal("missing exo gauges")
	}
	// Latency and utilization must co-move over the day (Fig. 18).
	var xs, ys []float64
	for i := range util[0].Points {
		xs = append(xs, util[0].Points[i].Value)
		ys = append(ys, lat[0].Points[i].Value)
	}
	if r := stats.Pearson(xs, ys); r < 0.1 {
		t.Errorf("util-latency correlation over the day = %.3f, want positive", r)
	}
	if err := WriteDiurnalDay(db, gen, "nope/Nope", cl, 10); err == nil {
		t.Error("unknown method should error")
	}
}

func TestHedgedCancellationSpan(t *testing.T) {
	gen := newGen(9)
	m := testCat.MethodByName("networkdisk/Write")
	s := gen.HedgedCancellation(m, time.Hour)
	if !s.Hedged || s.Err != trace.Cancelled {
		t.Fatalf("hedged cancellation wrong: hedged=%v err=%v", s.Hedged, s.Err)
	}
	if s.CPUCycles <= 0 {
		t.Error("cancellation should still burn cycles")
	}
}

func TestQueueHeavyServiceShape(t *testing.T) {
	// ssdcache (QueueFactor 8) must show queue-dominated latency far
	// more often than kvstore (QueueFactor 0.5).
	gen := newGen(10)
	frac := func(name string) float64 {
		m := testCat.MethodByName(name)
		queueDominant := 0
		const n = 800
		for i := 0; i < n; i++ {
			obs := gen.Call(m, CallOptions{At: time.Hour, SameClusterOnly: true})
			if obs.Span.Breakdown.Queue() > obs.Span.Breakdown[trace.ServerApp] {
				queueDominant++
			}
		}
		return float64(queueDominant) / n
	}
	ssd, kv := frac("ssdcache/Lookup"), frac("kvstore/Search")
	if ssd <= kv {
		t.Errorf("ssdcache queue-dominance %.3f <= kvstore %.3f", ssd, kv)
	}
}

func TestLoadDatasetRoundTrip(t *testing.T) {
	ds := Generate(context.Background(), testCat, testTopo, RunConfig{
		Seed: 31, MethodSamples: 10, StudiedSamples: 10,
		VolumeRoots: 2000, Trees: 40, MaxDepth: 5, TreeBudget: 200,
	})
	var buf bytes.Buffer
	spans := ds.AllSpans()
	if err := trace.WriteSpans(&buf, spans); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.VolumeSpans) != len(spans) {
		t.Fatalf("loaded %d spans, wrote %d", len(loaded.VolumeSpans), len(spans))
	}
	if len(loaded.Trees) == 0 {
		t.Fatal("no trees reconstructed")
	}
	if loaded.Profile == nil || loaded.Profile.Total() <= 0 {
		t.Fatal("no profile synthesized")
	}
	// Per-method grouping preserved.
	for name, spans := range loaded.MethodSpans {
		for _, s := range spans {
			if s.Method != name {
				t.Fatalf("span %s grouped under %s", s.Method, name)
			}
		}
	}
	// Shape samples exist for multi-span trees.
	if len(loaded.DescendantsByMethod) == 0 {
		t.Fatal("no shape samples reconstructed")
	}
}

func TestLoadDatasetEmpty(t *testing.T) {
	if _, err := LoadDataset(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty dump should error")
	}
}

func TestColocateBoostReducesCrossRate(t *testing.T) {
	// Entry methods whose callees are widely placed; a tier-C method with
	// three home clusters genuinely cannot be co-located, so those are
	// not the interesting population.
	var entries []*fleet.Method
	for _, m := range testCat.Methods {
		if m.Layer >= 2 && len(m.Callees) > 0 {
			entries = append(entries, m)
		}
	}
	if len(entries) == 0 {
		t.Skip("no entry methods")
	}
	rate := func(boost float64) float64 {
		gen := newGen(55)
		gen.ColocateBoost = boost
		var nested, cross float64
		for i := 0; i < 150; i++ {
			m := entries[i%len(entries)]
			gen.Call(m, CallOptions{
				At: time.Hour, MaxDepth: 5, Budget: 300, Materialize: true,
				Observe: func(o CallObservation) {
					if o.Span.ParentID == 0 {
						return
					}
					nested++
					if !o.Span.SameCluster() {
						cross++
					}
				},
			})
		}
		if nested == 0 {
			return 0
		}
		return cross / nested
	}
	if high, none := rate(0.95), rate(0); high >= none {
		t.Errorf("boosted cross rate %.3f >= unboosted %.3f", high, none)
	}
}

func TestExportMethodDistributions(t *testing.T) {
	ds := Generate(context.Background(), testCat, testTopo, RunConfig{
		Seed: 41, MethodSamples: 10, StudiedSamples: 10,
		VolumeRoots: 500, Trees: 5, MaxDepth: 3, TreeBudget: 50,
	})
	db := monarch.New(30*time.Minute, 0)
	if err := ExportMethodDistributions(db, ds, Epoch); err != nil {
		t.Fatal(err)
	}
	// Per-method query returns that method's distribution.
	series := db.Query(MetricLatencyDist, monarch.Labels{"method": "networkdisk/Write"}, time.Time{}, time.Time{})
	if len(series) != 1 || series[0].Points[0].Dist.Count() == 0 {
		t.Fatalf("missing distribution for networkdisk/Write: %+v", series)
	}
	// Fleet-wide merge across all methods reconstructs the full mix.
	all := db.Query(MetricLatencyDist, nil, time.Time{}, time.Time{})
	merged := monarch.MergeDistAcross(all)
	if merged == nil || merged.Count() < uint64(len(testCat.Methods)*5) {
		t.Fatalf("merged count = %v", merged)
	}
	if merged.Percentile(99) <= merged.Percentile(50) {
		t.Fatal("merged distribution degenerate")
	}
}
