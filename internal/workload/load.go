package workload

import (
	"fmt"
	"io"

	"rpcscale/internal/gwp"
	"rpcscale/internal/stats"
	"rpcscale/internal/trace"
)

// DatasetFromSpans rebuilds an analyzable Dataset from a flat span dump
// (e.g., one written by cmd/fleetgen). The reconstruction is lossy
// relative to a live generation run:
//
//   - every span is used both for per-method distributions and for the
//     volume mix (a dump does not distinguish stratified from volume
//     sampling);
//   - descendant/ancestor samples come from reconstructed trees, so
//     methods that only appear as isolated spans have sparse shape data;
//   - exogenous observations are absent, so Figs. 17/18 are unavailable.
//
// GWP category attribution survives when spans carry the per-category
// cycle split (cpu_by_cat in the dump schema); dumps written before the
// split fall back to attributing all cycles to Application, in which
// case Fig. 20 reports ~0 tax.
//
// Analyses that need the missing parts detect the absence and skip.
func DatasetFromSpans(spans []*trace.Span) *Dataset {
	ds := &Dataset{
		MethodSpans:         make(map[string][]*trace.Span),
		VolumeSpans:         spans,
		DescendantsByMethod: make(map[string]*stats.Sample),
		AncestorsByMethod:   make(map[string]*stats.Sample),
		ExoByMethod:         make(map[string][]ExoObservation),
	}
	prof := gwp.New()
	for _, s := range spans {
		ds.MethodSpans[s.Method] = append(ds.MethodSpans[s.Method], s)
		switch {
		case s.HasCPUSplit():
			for cat, cycles := range s.CPUByCategory {
				prof.Record(s.Service, s.Method, gwp.Category(cat), cycles)
			}
		case s.CPUCycles > 0:
			prof.Record(s.Service, s.Method, gwp.Application, s.CPUCycles)
		}
	}
	ds.Profile = prof.Snapshot()
	// Graph shapes: rebuild DAGs (primary spanning tree plus linked-parent
	// in-edges) and summarize each multi-span graph. Isolated spans are
	// stratified/volume samples in disguise, not one-node graphs, so they
	// are excluded to keep the size CCDF meaningful.
	for _, gr := range trace.BuildGraphs(spans) {
		if gr.Spans < 2 {
			continue
		}
		ds.GraphStats = append(ds.GraphStats, GraphStatOf(gr))
	}
	ds.Trees = trace.BuildTrees(spans)
	for _, tr := range ds.Trees {
		if tr.Spans < 2 {
			continue // isolated spans carry no shape information
		}
		ds.TreeSpans = appendTreeSpans(ds.TreeSpans, tr.Root)
		tr.Root.Walk(func(n *trace.Node, ancestors int) {
			m := n.Span.Method
			d := ds.DescendantsByMethod[m]
			if d == nil {
				d = stats.NewSample(0)
				ds.DescendantsByMethod[m] = d
			}
			d.Add(float64(n.Descendants()))
			a := ds.AncestorsByMethod[m]
			if a == nil {
				a = stats.NewSample(0)
				ds.AncestorsByMethod[m] = a
			}
			a.Add(float64(ancestors))
		})
	}
	return ds
}

func appendTreeSpans(out []*trace.Span, n *trace.Node) []*trace.Span {
	out = append(out, n.Span)
	for _, c := range n.Children {
		out = appendTreeSpans(out, c)
	}
	return out
}

// LoadDataset reads a JSON-lines span dump and rebuilds a Dataset.
func LoadDataset(r io.Reader) (*Dataset, error) {
	spans, err := trace.ReadSpans(r)
	if err != nil {
		return nil, err
	}
	if len(spans) == 0 {
		return nil, fmt.Errorf("workload: span dump is empty")
	}
	return DatasetFromSpans(spans), nil
}
