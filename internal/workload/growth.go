package workload

import (
	"math"
	"time"

	"rpcscale/internal/monarch"
	"rpcscale/internal/sim"
	"rpcscale/internal/stats"
)

// Monarch metric names exported by the fleet.
const (
	MetricRPS     = "fleet/rps"           // Counter: RPCs per window
	MetricCPU     = "fleet/cpu_cycles"    // Counter: cycles per window
	MetricLatP95  = "service/latency_p95" // Gauge: windowed P95, ns
	MetricCPUUtil = "cluster/cpu_util"    // Gauge
	MetricMemBW   = "cluster/mem_bw"      // Gauge, GB/s
	MetricWakeup  = "cluster/long_wakeup" // Gauge, fraction
	MetricCPI     = "cluster/cpi"         // Gauge
)

// DeclareMetrics registers the fleet metrics on a Monarch DB.
func DeclareMetrics(db *monarch.DB) error {
	for m, k := range map[string]monarch.Kind{
		MetricRPS:     monarch.Counter,
		MetricCPU:     monarch.Counter,
		MetricLatP95:  monarch.Gauge,
		MetricCPUUtil: monarch.Gauge,
		MetricMemBW:   monarch.Gauge,
		MetricWakeup:  monarch.Gauge,
		MetricCPI:     monarch.Gauge,
	} {
		if err := db.Declare(m, k); err != nil {
			return err
		}
	}
	return nil
}

// GrowthConfig parameterizes the 700-day fleet history (Fig. 1).
type GrowthConfig struct {
	Days int // observation period; the paper uses 700
	Seed uint64

	// AnnualRPSGrowth and AnnualCPUGrowth are the yearly growth rates of
	// call volume and cycle consumption. The paper's headline — RPS per
	// CPU cycle grows ~30%/yr — is their ratio: RPC volume grows faster
	// than the compute serving it.
	AnnualRPSGrowth float64
	AnnualCPUGrowth float64
}

// DefaultGrowth matches the paper's observation.
func DefaultGrowth() GrowthConfig {
	return GrowthConfig{Days: 700, Seed: 1, AnnualRPSGrowth: 0.82, AnnualCPUGrowth: 0.40}
}

// WriteGrowthHistory writes daily fleet RPS and CPU-cycle counters over
// the configured period, with weekly seasonality and day-to-day noise.
// Analyses recover Fig. 1 by querying the two series and taking their
// normalized ratio.
func WriteGrowthHistory(db *monarch.DB, cfg GrowthConfig) error {
	if cfg.Days <= 0 {
		cfg.Days = 700
	}
	if cfg.AnnualRPSGrowth == 0 {
		cfg.AnnualRPSGrowth = DefaultGrowth().AnnualRPSGrowth
	}
	if cfg.AnnualCPUGrowth == 0 {
		cfg.AnnualCPUGrowth = DefaultGrowth().AnnualCPUGrowth
	}
	rng := stats.NewRNG(cfg.Seed).Child("growth")
	labels := monarch.Labels{"scope": "fleet"}
	const baseRPS = 1e9 // calls/day at day zero (arbitrary unit)
	const baseCPU = 5e9 // cycles/day at day zero
	for d := 0; d < cfg.Days; d++ {
		at := Epoch.Add(time.Duration(d) * 24 * time.Hour)
		years := float64(d) / 365.0
		weekly := 1.0
		switch at.Weekday() {
		case time.Saturday, time.Sunday:
			weekly = 0.88 // weekend dip in interactive traffic
		}
		noiseR := 1 + 0.03*rng.NormFloat64()
		noiseC := 1 + 0.03*rng.NormFloat64()
		rps := baseRPS * pow(1+cfg.AnnualRPSGrowth, years) * weekly * noiseR
		cpu := baseCPU * pow(1+cfg.AnnualCPUGrowth, years) * weekly * noiseC
		if err := db.Write(MetricRPS, labels, at, rps); err != nil {
			return err
		}
		if err := db.Write(MetricCPU, labels, at, cpu); err != nil {
			return err
		}
	}
	return nil
}

func pow(base, exp float64) float64 { return math.Pow(base, exp) }

// WriteDiurnalDay generates the Fig. 18 dataset: for one studied method
// and one cluster, 24 hours of 30-minute windows, each with the cluster's
// exogenous gauges and the window's P95 RPC latency.
func WriteDiurnalDay(db *monarch.DB, gen *Generator, method string, cluster *sim.Cluster, samplesPerWindow int) error {
	m := gen.Cat.MethodByName(method)
	if m == nil {
		return errNoMethod(method)
	}
	if samplesPerWindow <= 0 {
		samplesPerWindow = 150
	}
	labels := monarch.Labels{"method": method, "cluster": cluster.Name}
	for w := 0; w < 48; w++ {
		at := time.Duration(w) * 30 * time.Minute
		wall := Epoch.Add(at)
		lat := stats.NewSample(samplesPerWindow)
		var exoSum sim.Exo
		for i := 0; i < samplesPerWindow; i++ {
			obs := gen.Call(m, CallOptions{Client: cluster, SameClusterOnly: true, At: at, MaxDepth: 3, Budget: 64})
			lat.Add(float64(obs.Span.Latency()))
			exoSum.CPUUtil += obs.Exo.CPUUtil
			exoSum.MemBW += obs.Exo.MemBW
			exoSum.LongWakeupRate += obs.Exo.LongWakeupRate
			exoSum.CPI += obs.Exo.CPI
		}
		n := float64(samplesPerWindow)
		for metric, v := range map[string]float64{
			MetricLatP95:  lat.Quantile(0.95),
			MetricCPUUtil: exoSum.CPUUtil / n,
			MetricMemBW:   exoSum.MemBW / n,
			MetricWakeup:  exoSum.LongWakeupRate / n,
			MetricCPI:     exoSum.CPI / n,
		} {
			if err := db.Write(metric, labels, wall, v); err != nil {
				return err
			}
		}
	}
	return nil
}

type errNoMethod string

func (e errNoMethod) Error() string { return "workload: unknown method " + string(e) }

// MetricLatencyDist is the per-method completion-time distribution metric
// (Monarch's distribution-valued points, the representation the paper's
// per-method figures are computed from in production).
const MetricLatencyDist = "method/latency_dist"

// ExportMethodDistributions writes each method's completion-time
// histogram into Monarch as one distribution point per method at the
// given time. Queries can then merge across methods or windows with
// monarch.MergeDistAcross — the production path for Figs. 2/12/13.
func ExportMethodDistributions(db *monarch.DB, ds *Dataset, at time.Time) error {
	if err := db.Declare(MetricLatencyDist, monarch.Distribution); err != nil {
		return err
	}
	for method, spans := range ds.MethodSpans {
		h := stats.NewLatencyHist()
		for _, s := range spans {
			if s.Err.IsError() {
				continue
			}
			h.Add(float64(s.Breakdown.Total()))
		}
		if h.Count() == 0 {
			continue
		}
		labels := monarch.Labels{"method": method}
		if err := db.WriteDist(MetricLatencyDist, labels, at, h); err != nil {
			return err
		}
	}
	return nil
}
