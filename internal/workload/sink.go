package workload

import (
	"rpcscale/internal/sim"
	"rpcscale/internal/stats"
	"rpcscale/internal/trace"
)

// SpanSink receives a generation shard's output as it is produced,
// instead of buffering it into a Dataset first. This is the streaming
// analog of the paper's pipelines: Dapper aggregates its samples in
// flight rather than materializing them, so the observation plane runs at
// bounded memory no matter the stream volume.
//
// Run gives each shard its own sink (built by a per-shard factory), calls
// it from that shard's goroutine only, and leaves merging to the caller,
// who folds the shard sinks together in shard-index order. Because each
// shard's stream depends only on its own derived seed and the merge order
// is fixed, any sink whose Merge is a deterministic fold produces results
// that are reproducible for a fixed (Seed, Shards) pair — and identical
// to feeding the materialized Dataset through the same accumulator.
//
// Within one shard the emission order is fixed: stratified per-method
// samples first (MethodSpan, then TreeShape, then ExoSample for studied
// methods), then the volume mix (VolumeSpan, including hedged
// cancellations), then materialized trees (TreeSpan then TreeShape per
// span, in call order).
type SpanSink interface {
	// MethodSpan receives one stratified per-method sample.
	MethodSpan(s *trace.Span)
	// VolumeSpan receives one span of the popularity-weighted fleet mix.
	VolumeSpan(s *trace.Span)
	// TreeSpan receives one span of a materialized call tree.
	TreeSpan(s *trace.Span)
	// TreeShape receives the (descendants, ancestors) counts of one call
	// observation — the raw material of the Fig. 5/6 shape analysis.
	TreeShape(method string, descendants, ancestors int)
	// GraphShape receives the whole-graph summary of one root call: node
	// count, depth/width of the primary spanning tree, fan-in edges, and
	// per-motif node counts. Emitted once per stratified and materialized
	// root (volume roots are depth-truncated and carry no graph shape).
	GraphShape(g GraphStat)
	// ExoSample receives a studied-method span paired with the exogenous
	// state of its serving cluster at call time (Fig. 17/18).
	ExoSample(method string, s *trace.Span, exo sim.Exo)
}

// datasetSink buffers one shard's stream into Dataset-shaped state; it is
// how Generate retains full spans on top of Run.
type datasetSink struct {
	methodSpans map[string][]*trace.Span
	volume      []*trace.Span
	treeSpans   []*trace.Span
	desc        map[string]*stats.Sample
	anc         map[string]*stats.Sample
	exo         map[string][]ExoObservation
	graphs      []GraphStat
}

func newDatasetSink() *datasetSink {
	return &datasetSink{
		methodSpans: make(map[string][]*trace.Span),
		desc:        make(map[string]*stats.Sample),
		anc:         make(map[string]*stats.Sample),
		exo:         make(map[string][]ExoObservation),
	}
}

func (d *datasetSink) MethodSpan(s *trace.Span) {
	//rpclint:ignore sinkobserve datasetSink is the retention sink: buffering spans into the Dataset is its contract
	d.methodSpans[s.Method] = append(d.methodSpans[s.Method], s)
}

//rpclint:ignore sinkobserve datasetSink is the retention sink: buffering spans into the Dataset is its contract
func (d *datasetSink) VolumeSpan(s *trace.Span) { d.volume = append(d.volume, s) }

//rpclint:ignore sinkobserve datasetSink is the retention sink: buffering spans into the Dataset is its contract
func (d *datasetSink) TreeSpan(s *trace.Span) { d.treeSpans = append(d.treeSpans, s) }

func (d *datasetSink) TreeShape(method string, descendants, ancestors int) {
	ds := d.desc[method]
	if ds == nil {
		ds = stats.NewSample(0)
		d.desc[method] = ds
	}
	ds.Add(float64(descendants))
	as := d.anc[method]
	if as == nil {
		as = stats.NewSample(0)
		d.anc[method] = as
	}
	as.Add(float64(ancestors))
}

func (d *datasetSink) GraphShape(g GraphStat) { d.graphs = append(d.graphs, g) }

func (d *datasetSink) ExoSample(method string, s *trace.Span, exo sim.Exo) {
	//rpclint:ignore sinkobserve datasetSink is the retention sink: buffering spans into the Dataset is its contract
	d.exo[method] = append(d.exo[method], ExoObservation{Span: s, Exo: exo})
}

// teeSink fans one shard's stream out to several sinks in order.
type teeSink []SpanSink

func (t teeSink) MethodSpan(s *trace.Span) {
	for _, sk := range t {
		sk.MethodSpan(s)
	}
}

func (t teeSink) VolumeSpan(s *trace.Span) {
	for _, sk := range t {
		sk.VolumeSpan(s)
	}
}

func (t teeSink) TreeSpan(s *trace.Span) {
	for _, sk := range t {
		sk.TreeSpan(s)
	}
}

func (t teeSink) TreeShape(method string, descendants, ancestors int) {
	for _, sk := range t {
		sk.TreeShape(method, descendants, ancestors)
	}
}

func (t teeSink) GraphShape(g GraphStat) {
	for _, sk := range t {
		sk.GraphShape(g)
	}
}

func (t teeSink) ExoSample(method string, s *trace.Span, exo sim.Exo) {
	for _, sk := range t {
		sk.ExoSample(method, s, exo)
	}
}

// nopSink discards the stream (a Run with neither sinks nor retention
// still exercises the generator and produces a CPU profile).
type nopSink struct{}

func (nopSink) MethodSpan(*trace.Span)                 {}
func (nopSink) VolumeSpan(*trace.Span)                 {}
func (nopSink) TreeSpan(*trace.Span)                   {}
func (nopSink) TreeShape(string, int, int)             {}
func (nopSink) GraphShape(GraphStat)                   {}
func (nopSink) ExoSample(string, *trace.Span, sim.Exo) {}
