package analysis

import (
	"fmt"
	"sort"
)

// Finding is one reported diagnostic in driver-friendly form; the JSON
// field names are the machine-readable contract of `rpclint -json`.
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// RunAnalyzers applies the analyzers to every package, resolves
// //rpclint:ignore suppressions, and returns the surviving findings
// sorted by position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	mod := &Module{Pkgs: pkgs}
	for _, pkg := range pkgs {
		var pkgFindings []Finding
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Mod:       mod,
			}
			pass.Report = func(d Diagnostic) {
				p := pkg.Fset.Position(d.Pos)
				pkgFindings = append(pkgFindings, Finding{
					File:     p.Filename,
					Line:     p.Line,
					Col:      p.Column,
					Analyzer: a.Name,
					Message:  d.Message,
				})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
		dirs := collectDirectives(pkg.Fset, pkg.Files)
		findings = append(findings, applySuppressions(pkgFindings, dirs)...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return findings, nil
}
