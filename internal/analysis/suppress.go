package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignorePrefix introduces a suppression directive. The full form is
//
//	//rpclint:ignore <analyzer[,analyzer...]> <reason>
//
// placed on the flagged line or on the line directly above it. "all"
// suppresses every analyzer. The reason is mandatory: a directive without
// one suppresses nothing and is itself reported (analyzer name "ignore"),
// so every silenced finding carries its justification in the source.
const ignorePrefix = "rpclint:ignore"

// IgnoreAnalyzerName is the analyzer name under which malformed
// //rpclint:ignore directives are reported.
const IgnoreAnalyzerName = "ignore"

// directive is one parsed //rpclint:ignore comment.
type directive struct {
	pos    token.Pos
	file   string
	line   int
	names  map[string]bool
	reason string
}

func (d *directive) covers(analyzer string) bool {
	return d.names["all"] || d.names[analyzer]
}

// collectDirectives extracts every rpclint:ignore directive from the
// files' comments.
func collectDirectives(fset *token.FileSet, files []*ast.File) []directive {
	var out []directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue // block comments do not carry directives
				}
				text, ok = strings.CutPrefix(strings.TrimPrefix(text, " "), ignorePrefix)
				if !ok {
					continue
				}
				d := parseDirective(text)
				p := fset.Position(c.Pos())
				d.pos, d.file, d.line = c.Pos(), p.Filename, p.Line
				out = append(out, d)
			}
		}
	}
	return out
}

// parseDirective parses the part after "rpclint:ignore": an analyzer
// list, then the free-form reason. Fixture files embed "// want ..."
// expectations in the same comment; anything from such a marker on is
// not part of the reason.
func parseDirective(text string) directive {
	if i := strings.Index(text, "// want"); i >= 0 {
		text = text[:i]
	}
	d := directive{names: make(map[string]bool)}
	fields := strings.Fields(text)
	if len(fields) == 0 {
		return d
	}
	for _, n := range strings.Split(fields[0], ",") {
		if n != "" {
			d.names[n] = true
		}
	}
	d.reason = strings.Join(fields[1:], " ")
	return d
}

// applySuppressions drops findings covered by a well-formed directive on
// their own line or the line above, and appends one "ignore" finding per
// directive that lacks a reason or names no analyzer.
func applySuppressions(findings []Finding, dirs []directive) []Finding {
	type key struct {
		file string
		line int
	}
	byLine := make(map[key][]*directive)
	for i := range dirs {
		d := &dirs[i]
		byLine[key{d.file, d.line}] = append(byLine[key{d.file, d.line}], d)
	}
	suppressed := func(f Finding) bool {
		for _, line := range [2]int{f.Line, f.Line - 1} {
			for _, d := range byLine[key{f.File, line}] {
				if d.reason != "" && d.covers(f.Analyzer) {
					return true
				}
			}
		}
		return false
	}
	out := findings[:0]
	for _, f := range findings {
		if !suppressed(f) {
			out = append(out, f)
		}
	}
	for _, d := range dirs {
		switch {
		case len(d.names) == 0:
			out = append(out, Finding{
				File: d.file, Line: d.line, Analyzer: IgnoreAnalyzerName,
				Message: "rpclint:ignore names no analyzer; write //rpclint:ignore <analyzer> <reason>",
			})
		case d.reason == "":
			out = append(out, Finding{
				File: d.file, Line: d.line, Analyzer: IgnoreAnalyzerName,
				Message: "rpclint:ignore without a reason suppresses nothing; write //rpclint:ignore <analyzer> <reason>",
			})
		}
	}
	return out
}
