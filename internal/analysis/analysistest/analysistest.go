// Package analysistest runs rpclint analyzers over fixture packages and
// checks their findings against `// want` expectations, mirroring
// golang.org/x/tools/go/analysis/analysistest on this repo's
// dependency-free framework.
//
// Fixtures live under <testdata>/src/<importpath>/*.go (GOPATH layout).
// A line expecting diagnostics carries a trailing comment of the form
//
//	// want "regexp" `another regexp`
//
// with one pattern per expected diagnostic on that line; each pattern is
// matched against "analyzer: message". The run includes the suppression
// pipeline, so //rpclint:ignore directives in fixtures behave exactly as
// they do under cmd/rpclint.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"runtime"
	"strings"
	"testing"

	"rpcscale/internal/analysis"
)

// TestData returns the caller package's testdata directory.
func TestData() string {
	_, file, _, ok := runtime.Caller(1)
	if !ok {
		panic("analysistest: cannot locate caller")
	}
	return filepath.Join(filepath.Dir(file), "testdata")
}

// expectation is one want pattern at a file line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads the fixture packages named by patterns (import paths under
// testdata/src) and reports every mismatch between analyzer findings and
// want expectations through t.
func Run(t *testing.T, testdata string, analyzers []*analysis.Analyzer, patterns ...string) {
	t.Helper()
	loader, err := analysis.NewSourceLoader(filepath.Join(testdata, "src"))
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		t.Fatalf("analysistest: load: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("analysistest: patterns %v matched no fixture packages under %s", patterns, testdata)
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("analysistest: fixture %s does not type-check: %v", pkg.PkgPath, terr)
		}
	}
	findings, err := analysis.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		t.Fatalf("analysistest: run: %v", err)
	}

	var wants []*expectation
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			ws, err := collectWants(pkg.Fset, file)
			if err != nil {
				t.Fatalf("analysistest: %v", err)
			}
			wants = append(wants, ws...)
		}
	}

	for _, f := range findings {
		text := f.Analyzer + ": " + f.Message
		if w := matchWant(wants, f.File, f.Line, text); w != nil {
			w.matched = true
			continue
		}
		t.Errorf("%s:%d: unexpected diagnostic: %s", f.File, f.Line, text)
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}

func matchWant(wants []*expectation, file string, line int, text string) *expectation {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.re.MatchString(text) {
			return w
		}
	}
	return nil
}

// wantRE extracts the pattern list after a "want" marker: double-quoted
// or backquoted strings.
var wantRE = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

func collectWants(fset *token.FileSet, file *ast.File) ([]*expectation, error) {
	var out []*expectation
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := c.Text
			idx := strings.Index(text, "// want ")
			if idx < 0 {
				if !strings.HasPrefix(text, "// want ") {
					continue
				}
				idx = 0
			}
			pos := fset.Position(c.Pos())
			for _, q := range wantRE.FindAllString(text[idx+len("// want "):], -1) {
				raw := q[1 : len(q)-1]
				if q[0] == '"' {
					raw = strings.ReplaceAll(raw, `\"`, `"`)
					raw = strings.ReplaceAll(raw, `\\`, `\`)
				}
				re, err := regexp.Compile(raw)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, raw, err)
				}
				out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: raw})
			}
		}
	}
	return out, nil
}
