// Package analysis is rpclint: a small static-analysis framework plus
// the eight analyzers that machine-enforce this repository's correctness
// invariants — the properties that make every figure of the reproduction
// credible but that no compiler checks:
//
//   - wallclock: deterministic packages must use the injected/virtual
//     clock, never the wall clock, or golden tests stop being
//     byte-replayable from a seed.
//   - rngsource: randomness must flow from a threaded, seed-derived
//     *rand.Rand; the global math/rand source is process-wide mutable
//     state that breaks replay (and crypto/rand belongs to internal/secure
//     alone).
//   - lockheld: no blocking channel operations, network I/O, or RPC
//     issue/dispatch while a sync.Mutex/RWMutex is held — the stack's hot
//     paths serialize on these locks.
//   - statuserr: errors crossing the stubby public boundary must be
//     canonical *Status errors so trace.Collector.SeenByCode classifies
//     every failure.
//   - sinkobserve: streaming accumulator observe methods must not retain
//     their argument, protecting the 0 allocs/op observe path.
//   - bufown: pooled buffers (wire.GetBuf and friends) must be released,
//     returned, or handed off on every path — use-after-release,
//     double-release, leaks, and undocumented escapes into fields or
//     goroutines are flagged, with //rpclint:owns and //rpclint:transfers
//     making sanctioned transfers machine-checked (DESIGN.md §15).
//   - goroleak: a `go` statement must not spawn a condition-less loop
//     with no shutdown edge; such goroutines outlive their spawner and
//     accumulate under churn.
//   - lockorder: the module-wide mutex acquisition graph must be
//     acyclic — opposite-order acquisitions of two lock classes are a
//     latent deadlock even when no test hits the interleaving.
//
// The first five are single-package syntactic/type-based checks; the
// last three are interprocedural, building per-function summaries
// (ownership, lock sets) across the whole module. Under `go vet
// -vettool` the interprocedural analyzers degrade gracefully to the
// one-package-at-a-time view the unitchecker protocol provides.
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic) but is hand-rolled on go/ast and go/types:
// this module is intentionally dependency-free, so rpclint loads and
// type-checks packages itself (see Loader) using the standard library's
// source importer for out-of-module imports.
//
// Any diagnostic can be suppressed with a justified directive on the
// flagged line or the line above:
//
//	//rpclint:ignore <analyzer[,analyzer...]> <reason>
//
// The reason is mandatory; a reason-less directive does not suppress and
// is itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one named check. Mirrors x/tools' analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //rpclint:ignore directives.
	Name string
	// Doc is a one-paragraph description, shown by `rpclint -help`.
	Doc string
	// Run applies the check to one package and reports findings via
	// pass.Report.
	Run func(*Pass) error
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
	// Mod shares cross-package state (function index, ownership and lock
	// summaries) between the passes of one RunAnalyzers invocation. The
	// dataflow analyzers (bufown, goroleak, lockorder) resolve callees and
	// summaries through it; under `go vet -vettool` the module holds a
	// single package and they degrade to intra-package precision plus the
	// seeded seam tables.
	Mod *Module
}

// Module returns the shared module state, building a single-package one
// on demand so a Pass constructed by hand (tests) still works.
func (p *Pass) Module() *Module {
	if p.Mod == nil {
		p.Mod = &Module{Pkgs: []*Package{{
			Fset:      p.Fset,
			Files:     p.Files,
			Types:     p.Pkg,
			TypesInfo: p.TypesInfo,
			PkgPath:   pkgPathOf(p.Pkg),
		}}}
	}
	return p.Mod
}

func pkgPathOf(p *types.Package) string {
	if p == nil {
		return ""
	}
	return p.Path()
}

// Reportf reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding within a package.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Analyzers returns the full rpclint suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		WallclockAnalyzer,
		RngsourceAnalyzer,
		LockheldAnalyzer,
		StatuserrAnalyzer,
		SinkobserveAnalyzer,
		BufownAnalyzer,
		GoroleakAnalyzer,
		LockorderAnalyzer,
	}
}

// PackageList is a flag-settable list of package-path patterns. An entry
// matches an import path if it equals the path, is a path-segment suffix
// of it ("internal/sim" matches "rpcscale/internal/sim"), or is a parent
// of it (subpackages match).
type PackageList struct {
	entries []string
}

// NewPackageList builds a list from its default entries.
func NewPackageList(entries ...string) *PackageList {
	return &PackageList{entries: entries}
}

// String implements flag.Value.
func (p *PackageList) String() string {
	if p == nil {
		return ""
	}
	return strings.Join(p.entries, ",")
}

// Set implements flag.Value: a comma-separated list replaces the default.
func (p *PackageList) Set(s string) error {
	p.entries = nil
	for _, e := range strings.Split(s, ",") {
		if e = strings.TrimSpace(e); e != "" {
			p.entries = append(p.entries, e)
		}
	}
	return nil
}

// Entries returns a copy of the current pattern list.
func (p *PackageList) Entries() []string {
	return append([]string(nil), p.entries...)
}

// Match reports whether path matches any entry.
func (p *PackageList) Match(path string) bool {
	for _, e := range p.entries {
		if path == e ||
			strings.HasSuffix(path, "/"+e) ||
			strings.HasPrefix(path, e+"/") {
			return true
		}
	}
	return false
}

// FuncList is a flag-settable list of function patterns. An entry is
// "pkg.Func" or "pkg.Type.Method", where pkg matches an import path by
// equality or path-segment suffix ("wire.GetBuf" matches both
// "rpcscale/internal/wire" and a fixture package named "wire"), and the
// receiver type is matched with pointers unwrapped.
type FuncList struct {
	entries []string
}

// NewFuncList builds a list from its default entries.
func NewFuncList(entries ...string) *FuncList {
	return &FuncList{entries: entries}
}

// String implements flag.Value.
func (l *FuncList) String() string {
	if l == nil {
		return ""
	}
	return strings.Join(l.entries, ",")
}

// Set implements flag.Value: a comma-separated list replaces the default.
func (l *FuncList) Set(s string) error {
	l.entries = nil
	for _, e := range strings.Split(s, ",") {
		if e = strings.TrimSpace(e); e != "" {
			l.entries = append(l.entries, e)
		}
	}
	return nil
}

// Match reports whether fn matches any entry.
func (l *FuncList) Match(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	pkg := funcPkgPath(fn)
	recv := recvTypeName(fn)
	for _, e := range l.entries {
		parts := strings.Split(e, ".")
		var ePkg, eRecv, eName string
		switch len(parts) {
		case 2:
			ePkg, eName = parts[0], parts[1]
		case 3:
			ePkg, eRecv, eName = parts[0], parts[1], parts[2]
		default:
			continue
		}
		if eName != fn.Name() || eRecv != recv {
			continue
		}
		if pkg == ePkg || strings.HasSuffix(pkg, "/"+ePkg) {
			return true
		}
	}
	return false
}

// recvTypeName returns the name of fn's receiver type (pointers
// unwrapped), or "" for package-level functions.
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	if n := namedOrPointee(sig.Recv().Type()); n != nil {
		return n.Obj().Name()
	}
	return ""
}

// StringSet is a flag-settable set of names.
type StringSet struct {
	names map[string]bool
}

// NewStringSet builds a set from its default members.
func NewStringSet(names ...string) *StringSet {
	s := &StringSet{names: make(map[string]bool)}
	for _, n := range names {
		s.names[n] = true
	}
	return s
}

// String implements flag.Value.
func (s *StringSet) String() string {
	if s == nil {
		return ""
	}
	names := make([]string, 0, len(s.names))
	for n := range s.names {
		names = append(names, n)
	}
	// Deterministic order for -help output.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return strings.Join(names, ",")
}

// Set implements flag.Value: a comma-separated list replaces the default.
func (s *StringSet) Set(v string) error {
	s.names = make(map[string]bool)
	for _, n := range strings.Split(v, ",") {
		if n = strings.TrimSpace(n); n != "" {
			s.names[n] = true
		}
	}
	return nil
}

// Has reports membership.
func (s *StringSet) Has(name string) bool { return s.names[name] }

// calleeFunc resolves the function or method a call expression invokes,
// or nil when the callee is not a declared func (e.g. a func-typed field,
// a conversion, or a builtin).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// funcPkgPath returns the import path of the package declaring fn, or "".
func funcPkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// isPackageLevel reports whether fn is a package-level function (not a
// method).
func isPackageLevel(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// isRefType reports whether storing a value of type t aliases memory the
// source expression also references: pointers, slices, maps, channels,
// functions, and interfaces retain; value copies (including strings,
// which are immutable) do not.
func isRefType(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	}
	return false
}

// namedOrPointee unwraps one level of pointer and returns the named type
// beneath, or nil.
func namedOrPointee(t types.Type) *types.Named {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// isSyncLock reports whether t is sync.Mutex or sync.RWMutex (or a
// pointer to one).
func isSyncLock(t types.Type) bool {
	n := namedOrPointee(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	if n.Obj().Pkg().Path() != "sync" {
		return false
	}
	name := n.Obj().Name()
	return name == "Mutex" || name == "RWMutex"
}
