package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SinkObserveMethods are the streaming-accumulator method names whose
// implementations must fold their argument into bounded state without
// retaining it: the workload.SpanSink interface plus the telemetry/trace
// Observe hooks. Settable via -sinkobserve.methods.
var SinkObserveMethods = NewStringSet(
	"Observe",
	"MethodSpan",
	"VolumeSpan",
	"TreeSpan",
	"ExoSample",
)

// SinkobserveAnalyzer flags observe-path methods that store their
// argument (or a pointer/slice/map reachable from it) into receiver
// state. The observe path runs once per span at full stream volume; a
// retained span pins its allocation, breaking the 0 allocs/op
// steady-state contract the streaming benchmarks assert. Sinks whose
// contract is retention (the dataset buffer, the studied-method sample)
// must say so with //rpclint:ignore sinkobserve <reason>.
//
// A store counts when an assignment's left side is rooted at the
// receiver and its right side references the argument through a
// reference type: the argument itself, its address, a pointer/slice/map
// field of it, or an append/composite literal containing one. Copies of
// scalar and string fields pass.
var SinkobserveAnalyzer = &Analyzer{
	Name: "sinkobserve",
	Doc: "accumulator methods (" + SinkObserveMethods.String() + ") must not retain their argument " +
		"in receiver state; copy the fields the figure needs so the steady-state observe path stays 0 allocs/op",
	Run: runSinkobserve,
}

func runSinkobserve(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || fn.Recv == nil || !SinkObserveMethods.Has(fn.Name.Name) {
				continue
			}
			recv := receiverObject(pass, fn)
			if recv == nil {
				continue
			}
			params := refParams(pass, fn)
			if len(params) == 0 {
				continue
			}
			checkRetention(pass, fn, recv, params)
		}
	}
	return nil
}

// receiverObject returns the receiver variable's object, or nil for an
// anonymous receiver.
func receiverObject(pass *Pass, fn *ast.FuncDecl) types.Object {
	if len(fn.Recv.List) == 0 || len(fn.Recv.List[0].Names) == 0 {
		return nil
	}
	return pass.TypesInfo.Defs[fn.Recv.List[0].Names[0]]
}

// refParams returns the parameter objects whose values can be retained
// (pointer-, slice-, map-, or interface-typed).
func refParams(pass *Pass, fn *ast.FuncDecl) map[types.Object]bool {
	params := make(map[types.Object]bool)
	for _, field := range fn.Type.Params.List {
		for _, name := range field.Names {
			obj := pass.TypesInfo.Defs[name]
			if obj != nil && isRefType(obj.Type()) {
				params[obj] = true
			}
		}
	}
	return params
}

func checkRetention(pass *Pass, fn *ast.FuncDecl, recv types.Object, params map[types.Object]bool) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		storesToRecv := false
		for _, lhs := range as.Lhs {
			if rootObject(pass.TypesInfo, lhs) == recv {
				storesToRecv = true
				break
			}
		}
		if !storesToRecv {
			return true
		}
		for _, rhs := range as.Rhs {
			if ref := retainingRef(pass.TypesInfo, rhs, params); ref != nil {
				pass.Reportf(as.Pos(),
					"%s stores %s in receiver state, retaining the observed argument past the call; copy the needed fields instead (0 allocs/op observe contract)",
					fn.Name.Name, types.ExprString(ref))
				return true
			}
		}
		return true
	})
}

// rootObject follows a selector/index/star/paren chain to its base
// identifier's object.
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return info.Uses[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// retainingRef finds a subexpression of e that aliases one of the
// parameters through a reference type, returning it (or nil). An
// identifier use of the parameter counts when the maximal selector chain
// it roots has reference type: `s` and `s.Child` retain, `s.Method`
// (string) and `s.Count` (scalar) are copies.
func retainingRef(info *types.Info, e ast.Expr, params map[types.Object]bool) ast.Expr {
	var found ast.Expr
	// parents maps each selector's operand to the selector, letting the
	// ident visitor climb to the maximal chain it roots.
	parents := make(map[ast.Expr]ast.Expr)
	ast.Inspect(e, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			parents[sel.X] = sel
		}
		if u, ok := n.(*ast.UnaryExpr); ok && u.Op == token.AND {
			parents[u.X] = u
		}
		return true
	})
	ast.Inspect(e, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || !params[info.Uses[id]] {
			return true
		}
		// Climb to the maximal selector/address chain rooted here.
		var chain ast.Expr = id
		for p, ok := parents[chain]; ok; p, ok = parents[chain] {
			chain = p
		}
		if tv, ok := info.Types[chain]; ok && !isRefType(tv.Type) {
			return true // value copy of a field: no retention
		}
		found = chain
		return false
	})
	return found
}
