package analysis

import (
	"go/ast"
	"go/types"
)

// Module is the cross-package state shared by every pass of one
// RunAnalyzers invocation: the loaded packages plus lazily built
// interprocedural facts. Standalone `rpclint ./...` loads the whole
// module here; under the go vet unitchecker protocol the module holds a
// single package, and the dataflow analyzers fall back to the seeded
// seam tables for anything out of view.
type Module struct {
	Pkgs []*Package

	idx  *funcIndex
	own  *ownFacts
	lock *lockFacts
}

// declInfo locates one function declaration and the package (with its
// own TypesInfo) it belongs to.
type declInfo struct {
	decl *ast.FuncDecl
	pkg  *Package
}

// funcIndex resolves *types.Func objects to their declarations across
// every package in the module. Object identity holds across packages
// because the standalone loader memoizes: the importing package and the
// declaring package see the same *types.Package.
type funcIndex struct {
	decls map[*types.Func]declInfo
}

// Index returns the module's function index, building it on first use.
func (m *Module) Index() *funcIndex {
	if m.idx != nil {
		return m.idx
	}
	idx := &funcIndex{decls: make(map[*types.Func]declInfo)}
	for _, pkg := range m.Pkgs {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					idx.decls[fn] = declInfo{decl: fd, pkg: pkg}
				}
			}
		}
	}
	m.idx = idx
	return idx
}

// lookup returns the declaration of fn, or a zero declInfo when fn is
// declared outside the module's loaded packages.
func (x *funcIndex) lookup(fn *types.Func) declInfo {
	if fn == nil {
		return declInfo{}
	}
	return x.decls[fn]
}

// eachDecl visits every indexed declaration in deterministic order
// (packages are sorted by path, files and decls in source order).
func (m *Module) eachDecl(visit func(fn *types.Func, fd *ast.FuncDecl, pkg *Package)) {
	idx := m.Index()
	for _, pkg := range m.Pkgs {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				if _, indexed := idx.decls[fn]; indexed {
					visit(fn, fd, pkg)
				}
			}
		}
	}
}

// moduleReport is a diagnostic computed module-wide but owned by one
// package: each pass emits only the reports filed under its own package,
// so suppression and ordering stay per-package.
type moduleReport struct {
	pkg *Package
	d   Diagnostic
}

// emitFor forwards the reports belonging to pass's package.
func emitFor(pass *Pass, reports []moduleReport) {
	for _, r := range reports {
		if r.pkg.Types == pass.Pkg {
			pass.Report(r.d)
		}
	}
}
