package analysis_test

import (
	"path/filepath"
	"strings"
	"testing"

	"rpcscale/internal/analysis"
	"rpcscale/internal/analysis/analysistest"
)

// overrideList points a flag-settable package list at fixture import
// paths for one test, restoring the real configuration afterwards.
func overrideList(t *testing.T, list *analysis.PackageList, entries string) {
	t.Helper()
	old := strings.Join(list.Entries(), ",")
	if err := list.Set(entries); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { list.Set(old) })
}

func TestWallclock(t *testing.T) {
	overrideList(t, analysis.DeterministicPackages, "wallclock/det")
	analysistest.Run(t, analysistest.TestData(),
		[]*analysis.Analyzer{analysis.WallclockAnalyzer},
		"wallclock/det", "wallclock/free")
}

func TestRngsource(t *testing.T) {
	overrideList(t, analysis.CryptoRandPackages, "rngsource/allowed")
	analysistest.Run(t, analysistest.TestData(),
		[]*analysis.Analyzer{analysis.RngsourceAnalyzer},
		"rngsource", "rngsource/allowed")
}

func TestLockheld(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(),
		[]*analysis.Analyzer{analysis.LockheldAnalyzer},
		"lockheld")
}

func TestStatuserr(t *testing.T) {
	overrideList(t, analysis.StatusBoundaryPackages, "statuserr")
	analysistest.Run(t, analysistest.TestData(),
		[]*analysis.Analyzer{analysis.StatuserrAnalyzer},
		"statuserr")
}

func TestSinkobserve(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(),
		[]*analysis.Analyzer{analysis.SinkobserveAnalyzer},
		"sinkobserve")
}

// TestBufown covers the ownership dataflow: leak/use-after-release/
// double-release true positives, the //rpclint:owns and
// //rpclint:transfers vocabulary (including a malformed directive),
// inferred alias and release summaries, and suppression placement. The
// fixture's bufown/wire package matches the default wire.* seeds by
// path-segment suffix, so no flag overrides are needed.
func TestBufown(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(),
		[]*analysis.Analyzer{analysis.BufownAnalyzer},
		"bufown")
}

func TestGoroleak(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(),
		[]*analysis.Analyzer{analysis.GoroleakAnalyzer},
		"goroleak")
}

func TestLockorder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(),
		[]*analysis.Analyzer{analysis.LockorderAnalyzer},
		"lockorder")
}

// TestSuppression runs the full suite over the suppress fixture: justified
// directives (line-above, same-line, other-analyzer, "all") silence their
// findings, while reason-less and analyzer-less directives suppress
// nothing and are reported themselves.
func TestSuppression(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.Analyzers(), "suppress")
}

// TestRepoClean is the machine-enforced invariant itself: the full
// analyzer suite over the whole module must report nothing — every
// violation is either fixed or carries a justified //rpclint:ignore.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	loader, err := analysis.NewLoader(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; loader is missing the module", len(pkgs))
	}
	findings, err := analysis.RunAnalyzers(pkgs, analysis.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("repo not rpclint-clean: %s", f)
	}
}
