package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockheldIOPackages lists the packages whose I/O entry points must not
// be reached while a mutex is held. Settable via -lockheld.iopackages.
var LockheldIOPackages = NewPackageList(
	"net",
	"rpcscale/internal/wire",
)

// RPCCallNames are the method names treated as RPC issue/dispatch points
// by lockheld. Settable via -lockheld.callnames.
var RPCCallNames = NewStringSet("Invoke", "Call", "CallHedged", "CallStream")

// LockheldAnalyzer flags blocking operations — channel sends/receives,
// network and wire I/O, RPC dispatch — reachable while a sync.Mutex or
// sync.RWMutex is held in the same function body.
//
// The analysis is intraprocedural and interval-based: a lock is held from
// its Lock/RLock call to the matching Unlock/RUnlock in the same body (to
// the end of the body when the release is deferred or absent). Channel
// operations in a `select` that has a `default` clause are non-blocking
// and exempt. Goroutine and closure bodies (func literals) are analyzed
// as their own scopes: a lock held at `go func(){...}()` spawn time is
// not held inside the goroutine.
var LockheldAnalyzer = &Analyzer{
	Name: "lockheld",
	Doc: "flag channel operations, " + LockheldIOPackages.String() + " I/O, and " +
		RPCCallNames.String() + " dispatch while a sync.Mutex/RWMutex is held in the same " +
		"function body; blocking under a lock stalls every other path through it",
	Run: runLockheld,
}

// ioNamePrefixes select the I/O-performing functions of
// LockheldIOPackages; pure helpers (net.JoinHostPort, wire frame
// constructors) pass.
var ioNamePrefixes = []string{"Read", "Write", "Dial", "Listen", "Accept", "Send", "Recv", "Flush"}

func isIOName(name string) bool {
	for _, p := range ioNamePrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// lockEvent is one Lock/Unlock (or RLock/RUnlock) call on a sync lock.
type lockEvent struct {
	pos      token.Pos
	key      string // printed receiver expression, "/R" suffix for read locks
	acquire  bool
	deferred bool
}

// riskOp is one potentially blocking operation.
type riskOp struct {
	pos  token.Pos
	desc string
}

// heldRegion is one [acquire, release] interval.
type heldRegion struct {
	from, to token.Pos
	key      string
	line     int
}

func runLockheld(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					lockheldScope(pass, fn.Body)
				}
			case *ast.FuncLit:
				lockheldScope(pass, fn.Body)
				// Children that are themselves func literals are found by
				// the enclosing Inspect; scopes never nest here because
				// lockheldScope does not descend into literals.
			}
			return true
		})
	}
	return nil
}

// lockheldScope analyzes one function body, treating nested func literals
// as opaque.
func lockheldScope(pass *Pass, body *ast.BlockStmt) {
	var (
		events []lockEvent
		ops    []riskOp
		exempt []span // comm headers of selects that have a default clause
	)
	var walk func(n ast.Node, inDefer bool)
	collect := func(n ast.Node, inDefer bool) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false // separate scope, lock not held inside
		case *ast.DeferStmt:
			walk(x.Call, true)
			return false
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if hasDefault {
				for _, c := range x.Body.List {
					cc := c.(*ast.CommClause)
					if cc.Comm != nil {
						exempt = append(exempt, span{cc.Comm.Pos(), cc.Comm.End()})
					}
				}
			}
		case *ast.SendStmt:
			ops = append(ops, riskOp{x.Arrow, "channel send"})
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				ops = append(ops, riskOp{x.OpPos, "channel receive"})
			}
		case *ast.CallExpr:
			if ev, ok := lockCall(pass.TypesInfo, x); ok {
				ev.deferred = inDefer && !ev.acquire
				events = append(events, ev)
				return true
			}
			if desc, ok := riskyCall(pass.TypesInfo, x); ok {
				ops = append(ops, riskOp{x.Pos(), desc})
			}
		}
		return true
	}
	walk = func(n ast.Node, inDefer bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			if m == nil {
				return false
			}
			return collect(m, inDefer)
		})
	}
	walk(body, false)
	if len(events) == 0 || len(ops) == 0 {
		return
	}

	regions := pairRegions(events, body.End())
	for i := range regions {
		regions[i].line = pass.Fset.Position(regions[i].from).Line
	}
	inExempt := func(p token.Pos) bool {
		for _, s := range exempt {
			if s.from <= p && p < s.to {
				return true
			}
		}
		return false
	}
	for _, op := range ops {
		if strings.HasPrefix(op.desc, "channel") && inExempt(op.pos) {
			continue
		}
		for _, r := range regions {
			if r.from < op.pos && op.pos < r.to {
				pass.Reportf(op.pos,
					"%s while %s is held (locked at line %d); move the blocking operation outside the critical section or //rpclint:ignore with a reason",
					op.desc, strings.TrimSuffix(r.key, "/R"), r.line)
				break
			}
		}
	}
}

type span struct{ from, to token.Pos }

// lockCall recognizes X.Lock/RLock/Unlock/RUnlock where X is a
// sync.Mutex or sync.RWMutex.
func lockCall(info *types.Info, call *ast.CallExpr) (lockEvent, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockEvent{}, false
	}
	name := sel.Sel.Name
	if name != "Lock" && name != "RLock" && name != "Unlock" && name != "RUnlock" {
		return lockEvent{}, false
	}
	tv, ok := info.Types[sel.X]
	if !ok || !isSyncLock(tv.Type) {
		return lockEvent{}, false
	}
	key := types.ExprString(sel.X)
	if strings.HasPrefix(name, "R") {
		key += "/R"
	}
	return lockEvent{
		pos:     call.Pos(),
		key:     key,
		acquire: name == "Lock" || name == "RLock",
	}, true
}

// riskyCall classifies a call as I/O or RPC dispatch.
func riskyCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(info, call)
	if fn != nil {
		if pkg := funcPkgPath(fn); pkg != "" && LockheldIOPackages.Match(pkg) && isIOName(fn.Name()) {
			return pkg + "." + fn.Name() + " I/O", true
		}
	}
	// RPC dispatch is matched by name so that func-typed fields
	// (interceptor chains) count too.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && RPCCallNames.Has(sel.Sel.Name) {
		return "RPC dispatch via " + sel.Sel.Name, true
	}
	if fn != nil && fn.Signature().Recv() != nil && RPCCallNames.Has(fn.Name()) {
		return "RPC dispatch via " + fn.Name(), true
	}
	return "", false
}

// pairRegions matches acquires to releases in position order (LIFO per
// lock key); an acquire whose release is deferred or missing holds to the
// end of the body.
func pairRegions(events []lockEvent, bodyEnd token.Pos) []heldRegion {
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	open := make(map[string][]int) // key -> stack of indexes into regions
	var regions []heldRegion
	for _, ev := range events {
		if ev.acquire {
			open[ev.key] = append(open[ev.key], len(regions))
			regions = append(regions, heldRegion{from: ev.pos, to: bodyEnd, key: ev.key})
			continue
		}
		if ev.deferred {
			continue // holds to end of body, which is the default
		}
		if stack := open[ev.key]; len(stack) > 0 {
			idx := stack[len(stack)-1]
			open[ev.key] = stack[:len(stack)-1]
			regions[idx].to = ev.pos
		}
	}
	return regions
}
