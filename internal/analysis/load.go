package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// PkgPath is the import path ("rpcscale/internal/sim"; for
	// GOPATH-style fixture roots, the path relative to the root).
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	// TypesInfo holds resolved uses/defs/types for Files. Type errors do
	// not abort loading — analyzers degrade to whatever was resolved —
	// but are retained in TypeErrors.
	TypesInfo  *types.Info
	TypeErrors []error
}

// Loader parses and type-checks packages without the go command or any
// external dependency. Module-local imports are resolved by the loader
// itself (recursively, from source); everything else goes through the
// standard library's source importer, which reads GOROOT — so loading
// works offline and without export data.
type Loader struct {
	// Root is the directory patterns are resolved against: a module root
	// (go.mod present) or a GOPATH-style src directory for test fixtures.
	Root string
	// ModPath is the module path from go.mod, or "" for a GOPATH-style
	// root, where import paths are root-relative directories.
	ModPath string
	// IncludeTests adds in-package _test.go files of the requested
	// packages (external _test packages are never loaded).
	IncludeTests bool

	fset  *token.FileSet
	std   types.ImporterFrom
	cache map[string]*loadResult
	// roots marks the packages requested via patterns (as opposed to
	// dependencies pulled in by imports); only roots get test files.
	roots map[string]bool
}

type loadResult struct {
	pkg *Package
	err error
}

// NewLoader builds a loader rooted at dir. If dir (or an ancestor)
// contains a go.mod, the module root and path are used; otherwise dir is
// treated as a GOPATH-style source root.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, modPath := findModule(abs)
	if root == "" {
		root, modPath = abs, ""
	}
	return newLoader(root, modPath)
}

// NewSourceLoader builds a loader that treats dir itself as a
// GOPATH-style source root, skipping module discovery. Fixture roots
// (testdata/src) live inside the repository, where NewLoader's ancestor
// walk would find the enclosing module's go.mod and resolve every
// pattern against the wrong root.
func NewSourceLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return newLoader(abs, "")
}

func newLoader(root, modPath string) (*Loader, error) {
	fset := token.NewFileSet()
	// The source importer type-checks GOROOT packages from source; with
	// cgo disabled it selects the pure-Go files, which is all the
	// analyzers need and the only configuration that works without
	// invoking the cgo tool.
	build.Default.CgoEnabled = false
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("analysis: source importer unavailable")
	}
	return &Loader{
		Root:    root,
		ModPath: modPath,
		fset:    fset,
		std:     std,
		cache:   make(map[string]*loadResult),
		roots:   make(map[string]bool),
	}, nil
}

// findModule walks up from dir looking for go.mod; it returns the module
// root and module path, or "", "".
func findModule(dir string) (root, modPath string) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if after, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(after)
				}
			}
			return d, ""
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", ""
		}
		d = parent
	}
}

// Load resolves patterns ("./...", "./internal/stubby", "internal/sim")
// to package directories under Root and returns them type-checked, in
// deterministic (import path) order.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}
	for _, dir := range dirs {
		l.roots[l.importPath(dir)] = true
	}
	var pkgs []*Package
	for _, dir := range dirs {
		path := l.importPath(dir)
		res := l.load(path, dir)
		if res.err != nil {
			return nil, fmt.Errorf("%s: %w", path, res.err)
		}
		if res.pkg != nil {
			pkgs = append(pkgs, res.pkg)
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].PkgPath < pkgs[j].PkgPath })
	return pkgs, nil
}

// expand turns patterns into package directories (directories containing
// at least one non-test .go file).
func (l *Loader) expand(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] && hasGoFiles(dir) {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(pat, "/...")
		} else if pat == "..." {
			recursive, pat = true, "."
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(l.Root, pat)
		}
		if !recursive {
			add(dir)
			continue
		}
		err := filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != dir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			add(p)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") &&
			!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".") {
			return true
		}
	}
	return false
}

// importPath maps a package directory under Root to its import path.
func (l *Loader) importPath(dir string) string {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil || rel == "." {
		rel = ""
	}
	rel = filepath.ToSlash(rel)
	switch {
	case l.ModPath == "":
		return rel
	case rel == "":
		return l.ModPath
	default:
		return l.ModPath + "/" + rel
	}
}

// dirFor maps an import path back to a directory under Root, or "" when
// the path is not local.
func (l *Loader) dirFor(path string) string {
	if l.ModPath == "" {
		// GOPATH-style root: every single- or multi-segment path is a
		// candidate directory.
		dir := filepath.Join(l.Root, filepath.FromSlash(path))
		if hasGoFiles(dir) {
			return dir
		}
		return ""
	}
	if path == l.ModPath {
		return l.Root
	}
	if after, ok := strings.CutPrefix(path, l.ModPath+"/"); ok {
		return filepath.Join(l.Root, filepath.FromSlash(after))
	}
	return ""
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.Root, 0)
}

// ImportFrom implements types.ImporterFrom: module-local paths load from
// source through the loader; everything else defers to the stdlib source
// importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if local := l.dirFor(path); local != "" {
		res := l.load(path, local)
		if res.err != nil {
			return nil, res.err
		}
		return res.pkg.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// load parses and type-checks one local package (memoized).
func (l *Loader) load(path, dir string) *loadResult {
	if res, ok := l.cache[path]; ok {
		return res
	}
	// Mark in-progress to fail fast on import cycles instead of
	// recursing forever.
	l.cache[path] = &loadResult{err: fmt.Errorf("import cycle through %s", path)}
	res := l.check(path, dir)
	l.cache[path] = res
	return res
}

func (l *Loader) check(path, dir string) *loadResult {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return &loadResult{err: err}
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		if strings.HasSuffix(name, "_test.go") && !(l.IncludeTests && l.roots[path]) {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	var files []*ast.File
	var pkgName string
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return &loadResult{err: err}
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		}
		if f.Name.Name != pkgName && f.Name.Name != pkgName+"_test" {
			continue // ignore stray-package files (e.g. main in a lib dir)
		}
		if f.Name.Name != pkgName {
			continue // external test package files
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return &loadResult{err: fmt.Errorf("no Go files in %s", dir)}
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if tpkg == nil {
		return &loadResult{err: err}
	}
	return &loadResult{pkg: &Package{
		PkgPath:    path,
		Fset:       l.fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
		TypeErrors: typeErrs,
	}}
}
