package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
)

// LockorderAnalyzer builds the interprocedural mutex acquisition graph
// of the module and reports cycles — the deadlock shape lockheld's
// intra-procedural view cannot see. Locks are grouped into classes by
// owner type and field ("stubby.transport.sendMu") or package-level
// variable; per-function summaries record which classes a call may
// acquire (propagated to a fixpoint through the call graph), and an edge
// A→B means B is acquired — directly or through a callee — while A is
// held. Any edge on a cycle is reported at its acquisition site. Func
// literals are separate scopes (a goroutine does not inherit its
// spawner's held locks), matching lockheld's model.
var LockorderAnalyzer = &Analyzer{
	Name: "lockorder",
	Doc: "build the module-wide mutex acquisition-order graph (lock classes by owner type and " +
		"field, callee acquisitions propagated through summaries) and flag cycles: two lock " +
		"classes taken in both orders can deadlock under contention",
	Run: runLockorder,
}

// lockFacts caches the module's computed cycle reports.
type lockFacts struct {
	reports []moduleReport
}

// lockScope is one analyzed body: its class-keyed lock events and the
// resolvable calls it makes.
type lockScope struct {
	events []lockEvent
	calls  []lockCallSite
	end    token.Pos
	pkg    *Package
}

type lockCallSite struct {
	pos token.Pos
	fn  *types.Func
}

func runLockorder(pass *Pass) error {
	emitFor(pass, pass.Module().lockorder().reports)
	return nil
}

func (m *Module) lockorder() *lockFacts {
	if m.lock != nil {
		return m.lock
	}
	facts := &lockFacts{}
	m.lock = facts

	// Collect per-function scopes (named declarations feed summaries)
	// plus anonymous func-literal scopes (edges only).
	var scopes []*lockScope
	direct := make(map[*types.Func]map[string]bool)
	byFunc := make(map[*types.Func]*lockScope)
	m.eachDecl(func(fn *types.Func, fd *ast.FuncDecl, pkg *Package) {
		sc := scanLockScope(pkg, fd.Body)
		scopes = append(scopes, sc)
		byFunc[fn] = sc
		for _, ev := range sc.events {
			if ev.acquire {
				if direct[fn] == nil {
					direct[fn] = make(map[string]bool)
				}
				direct[fn][ev.key] = true
			}
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				scopes = append(scopes, scanLockScope(pkg, lit.Body))
				return false
			}
			return true
		})
	})

	// Summary fixpoint: acquires(fn) = direct(fn) ∪ acquires(callees).
	acquires := make(map[*types.Func]map[string]bool, len(direct))
	for fn, set := range direct {
		cp := make(map[string]bool, len(set))
		for k := range set {
			cp[k] = true
		}
		acquires[fn] = cp
	}
	for changed := true; changed; {
		changed = false
		for fn, sc := range byFunc {
			for _, cs := range sc.calls {
				for class := range acquires[cs.fn] {
					if !acquires[fn][class] {
						if acquires[fn] == nil {
							acquires[fn] = make(map[string]bool)
						}
						acquires[fn][class] = true
						changed = true
					}
				}
			}
		}
	}

	// Edges: anything acquired (directly or via a callee summary) inside
	// a held region. First witness per ordered class pair wins.
	type lockEdge struct {
		pos token.Pos
		pkg *Package
		via string
	}
	edges := make(map[[2]string]lockEdge)
	addEdge := func(from, to string, e lockEdge) {
		key := [2]string{from, to}
		if old, ok := edges[key]; !ok || e.pos < old.pos {
			edges[key] = e
		}
	}
	for _, sc := range scopes {
		regions := pairRegions(append([]lockEvent(nil), sc.events...), sc.end)
		for _, r := range regions {
			for _, ev := range sc.events {
				if ev.acquire && r.from < ev.pos && ev.pos < r.to {
					addEdge(r.key, ev.key, lockEdge{pos: ev.pos, pkg: sc.pkg})
				}
			}
			for _, cs := range sc.calls {
				if !(r.from < cs.pos && cs.pos < r.to) {
					continue
				}
				for class := range acquires[cs.fn] {
					addEdge(r.key, class, lockEdge{pos: cs.pos, pkg: sc.pkg, via: funcDisplay(cs.fn)})
				}
			}
		}
	}

	// Transitive closure over the (small) class graph, then report every
	// edge that closes a cycle.
	classes := make(map[string]bool)
	for key := range edges {
		classes[key[0]] = true
		classes[key[1]] = true
	}
	reach := make(map[string]map[string]bool, len(classes))
	for a := range classes {
		reach[a] = make(map[string]bool)
	}
	for key := range edges {
		reach[key[0]][key[1]] = true
	}
	for k := range classes {
		for i := range classes {
			if !reach[i][k] {
				continue
			}
			for j := range classes {
				if reach[k][j] {
					reach[i][j] = true
				}
			}
		}
	}

	keys := make([][2]string, 0, len(edges))
	for key := range edges {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, key := range keys {
		from, to := key[0], key[1]
		if !reach[to][from] {
			continue
		}
		e := edges[key]
		via := ""
		if e.via != "" {
			via = fmt.Sprintf(" (via call to %s)", e.via)
		}
		var msg string
		switch rev, hasRev := edges[[2]string{to, from}]; {
		case from == to:
			msg = fmt.Sprintf(
				"nested acquisition of lock class %s while another %s is held%s; instance order is unenforced and two goroutines can deadlock on the crossed pair",
				to, from, via)
		case hasRev:
			rp := rev.pkg.Fset.Position(rev.pos)
			msg = fmt.Sprintf(
				"lock order cycle: %s acquired while %s is held%s, but the opposite order occurs at %s:%d; acquire them in one consistent order",
				to, from, via, filepath.Base(rp.Filename), rp.Line)
		default:
			msg = fmt.Sprintf(
				"%s acquired while %s is held%s closes a lock-order cycle (%s already reaches %s through other acquisitions); acquire them in one consistent order",
				to, from, via, to, from)
		}
		facts.reports = append(facts.reports, moduleReport{e.pkg, Diagnostic{Pos: e.pos, Message: msg}})
	}
	return facts
}

// scanLockScope collects one body's lock events (class-keyed) and
// resolvable call sites, treating nested func literals as opaque.
func scanLockScope(pkg *Package, body *ast.BlockStmt) *lockScope {
	sc := &lockScope{end: body.End(), pkg: pkg}
	var walk func(n ast.Node, inDefer bool)
	collect := func(n ast.Node, inDefer bool) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			walk(x.Call, true)
			return false
		case *ast.CallExpr:
			if ev, ok := classLockCall(pkg.TypesInfo, x); ok {
				ev.deferred = inDefer && !ev.acquire
				sc.events = append(sc.events, ev)
				return true
			}
			if fn := calleeFunc(pkg.TypesInfo, x); fn != nil {
				sc.calls = append(sc.calls, lockCallSite{pos: x.Pos(), fn: fn})
			}
		}
		return true
	}
	walk = func(n ast.Node, inDefer bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			if m == nil {
				return false
			}
			return collect(m, inDefer)
		})
	}
	walk(body, false)
	return sc
}

// classLockCall recognizes X.Lock/RLock/Unlock/RUnlock on a sync lock
// and keys the event by lock class rather than receiver expression.
// Locks on local variables have no stable class and are skipped.
func classLockCall(info *types.Info, call *ast.CallExpr) (lockEvent, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockEvent{}, false
	}
	name := sel.Sel.Name
	if name != "Lock" && name != "RLock" && name != "Unlock" && name != "RUnlock" {
		return lockEvent{}, false
	}
	tv, ok := info.Types[sel.X]
	if !ok || !isSyncLock(tv.Type) {
		return lockEvent{}, false
	}
	class := lockClassOf(info, sel.X)
	if class == "" {
		return lockEvent{}, false
	}
	return lockEvent{
		pos:     call.Pos(),
		key:     class,
		acquire: name == "Lock" || name == "RLock",
	}, true
}

// lockClassOf names the lock class of a mutex expression:
// "pkg.Type.field" for a field of a named type, "pkg.var" for a
// package-level mutex, "" otherwise.
func lockClassOf(info *types.Info, e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if n := namedOrPointee(typeOf(info, e.X)); n != nil && n.Obj().Pkg() != nil {
			return n.Obj().Pkg().Name() + "." + n.Obj().Name() + "." + e.Sel.Name
		}
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok && v.Pkg() != nil &&
			v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Name() + "." + v.Name()
		}
	}
	return ""
}
