package analysis

import (
	"go/ast"
	"go/types"
)

// CryptoRandPackages lists the packages allowed to touch crypto/rand.
// Everything else derives randomness from the threaded seed so runs
// replay; key material generation is internal/secure's job alone.
// Settable via -rngsource.cryptopackages.
var CryptoRandPackages = NewPackageList(
	"rpcscale/internal/secure",
)

// rngAllowedConstructors are the math/rand(/v2) package-level functions
// that build an explicit, seedable source — the approved way to obtain
// randomness. Everything else at package level draws from the shared
// global source.
var rngAllowedConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewPCG":     true,
	"NewChaCha8": true,
	"NewZipf":    true,
}

// RngsourceAnalyzer forbids the global math/rand source everywhere and
// crypto/rand outside its allowed packages.
var RngsourceAnalyzer = &Analyzer{
	Name: "rngsource",
	Doc: "forbid the process-global math/rand source (rand.Intn, rand.Float64, rand.Seed, ...) — " +
		"thread a *rand.Rand built from a derived seed instead — and forbid crypto/rand outside " +
		CryptoRandPackages.String() + "; both are unseedable shared state that breaks deterministic replay",
	Run: runRngsource,
}

func runRngsource(pass *Pass) error {
	cryptoOK := CryptoRandPackages.Match(pass.Pkg.Path())
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			switch obj.Pkg().Path() {
			case "math/rand", "math/rand/v2":
				fn, ok := obj.(*types.Func)
				if !ok || !isPackageLevel(fn) {
					return true // methods on a threaded *rand.Rand are the point
				}
				if rngAllowedConstructors[fn.Name()] {
					return true
				}
				pass.Reportf(id.Pos(),
					"global math/rand source (%s.%s): thread a *rand.Rand derived from the run seed instead, so results replay",
					obj.Pkg().Name(), fn.Name())
			case "crypto/rand":
				if cryptoOK {
					return true
				}
				if _, isType := obj.(*types.TypeName); isType {
					return true
				}
				pass.Reportf(id.Pos(),
					"crypto/rand outside %s: entropy is not replayable; derive randomness from the run seed (crypto/rand belongs to internal/secure alone)",
					CryptoRandPackages.String())
			}
			return true
		})
	}
	return nil
}
