package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroleakExitCalls are callee names that bound a goroutine loop from
// the outside: blocking reads that return an error when the peer or
// owner closes the underlying resource. Settable via -goroleak.exitcalls.
var GoroleakExitCalls = NewStringSet(
	"Accept", "Copy", "Next", "Read", "ReadByte", "ReadFrame", "ReadFull",
	"Recv", "Scan", "Wait", "recv",
)

// GoroleakAnalyzer flags `go` statements whose goroutine can outlive its
// spawning scope: the body (a func literal, or a same-module function
// resolved through the call) contains a condition-less `for` loop with
// no shutdown edge inside it. A shutdown edge is anything that lets the
// owner stop the loop or that ends when the connection does: a channel
// receive (including `select` with comm cases and `range` over a
// channel), use of a context.Context, a sync.WaitGroup Done/Wait, or a
// blocking conn/reader call (see -goroleak.exitcalls). Tuned to the real
// loop shapes in internal/stubby (sendLoop/readLoop/worker) and
// internal/cluster (child supervisors): those all pass; a bare
// `for { work() }` poller does not.
var GoroleakAnalyzer = &Analyzer{
	Name: "goroleak",
	Doc: "flag go statements spawning loops with no shutdown edge (channel receive, select, " +
		"context, WaitGroup, or " + GoroleakExitCalls.String() + " call); such goroutines " +
		"outlive their spawner and accumulate under churn",
	Run: runGoroleak,
}

func runGoroleak(pass *Pass) error {
	idx := pass.Module().Index()
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body, info := goroutineBody(pass, idx, g)
			if body == nil {
				return true
			}
			for _, loop := range endlessLoops(body) {
				if hasShutdownEdge(info, loop.Body) {
					continue
				}
				pass.Reportf(g.Pos(),
					"goroutine loops forever (line %d) with no shutdown edge: no channel receive, select, context, WaitGroup, or conn/reader call bounds it, so it outlives its spawner; wire a done channel or context case",
					pass.Fset.Position(loop.Pos()).Line)
			}
			return true
		})
	}
	return nil
}

// goroutineBody resolves what the spawned goroutine runs: a func
// literal's body, or the declaration of a module function named in the
// call (cross-package via the module index). Unresolvable callees
// (func-typed values, out-of-module functions) are skipped.
func goroutineBody(pass *Pass, idx *funcIndex, g *ast.GoStmt) (*ast.BlockStmt, *types.Info) {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		return lit.Body, pass.TypesInfo
	}
	if di := idx.lookup(calleeFunc(pass.TypesInfo, g.Call)); di.decl != nil {
		return di.decl.Body, di.pkg.TypesInfo
	}
	return nil, nil
}

// endlessLoops collects the condition-less for loops of a body, treating
// nested func literals as separate goroutine candidates.
func endlessLoops(body *ast.BlockStmt) []*ast.ForStmt {
	var loops []*ast.ForStmt
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			if n.Cond == nil {
				loops = append(loops, n)
			}
		}
		return true
	})
	return loops
}

// hasShutdownEdge scans a loop body for anything that bounds it. Bodies
// of further `go` statements don't count: an edge inside a goroutine
// spawned per-iteration does not stop the loop itself.
func hasShutdownEdge(info *types.Info, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.SelectStmt:
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
					found = true
				}
			}
		case *ast.Ident:
			if tv, ok := info.Types[n]; ok && isContextType(tv.Type) {
				found = true
			}
		case *ast.SelectorExpr:
			if tv, ok := info.Types[n]; ok && isContextType(tv.Type) {
				found = true
			}
		case *ast.CallExpr:
			if isShutdownCall(info, n) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	n, _ := t.(*types.Named)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "context" && n.Obj().Name() == "Context"
}

// isShutdownCall recognizes WaitGroup joins and the blocking
// conn/reader calls of GoroleakExitCalls (matched by name so interface
// methods and func fields count too).
func isShutdownCall(info *types.Info, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if n := namedOrPointee(typeOf(info, fun.X)); n != nil &&
			n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync" && n.Obj().Name() == "WaitGroup" &&
			(fun.Sel.Name == "Done" || fun.Sel.Name == "Wait") {
			return true
		}
		return GoroleakExitCalls.Has(fun.Sel.Name)
	case *ast.Ident:
		return GoroleakExitCalls.Has(fun.Name)
	}
	return false
}

// typeOf returns the resolved type of e, or nil.
func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}
