package analysis

import (
	"go/ast"
	"go/types"
)

// DeterministicPackages lists the packages whose behavior must be a pure
// function of their inputs and seed: the simulation, the figure
// accumulators, the generator, the fault plane, and the statistics
// kernels. Golden tests replay these byte-for-byte, which a single wall
// clock read would break. Settable via -wallclock.packages.
var DeterministicPackages = NewPackageList(
	"rpcscale/internal/sim",
	"rpcscale/internal/core",
	"rpcscale/internal/workload",
	"rpcscale/internal/faultplane",
	"rpcscale/internal/stats",
)

// wallclockBanned are the time package entry points that read or depend
// on the wall clock (or the runtime timer heap). Pure constructors like
// time.Date and time.Duration arithmetic are fine.
var wallclockBanned = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// WallclockAnalyzer forbids wall-clock access in deterministic packages.
var WallclockAnalyzer = &Analyzer{
	Name: "wallclock",
	Doc: "forbid time.Now/Since/Sleep/After/NewTimer/... in deterministic packages " +
		"(" + DeterministicPackages.String() + "); thread the virtual clock " +
		"(sim.Engine.Now, an injected now func) instead, so seeded runs replay byte-for-byte",
	Run: runWallclock,
}

func runWallclock(pass *Pass) error {
	if !DeterministicPackages.Match(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
			if !ok || funcPkgPath(fn) != "time" || !isPackageLevel(fn) {
				return true
			}
			if wallclockBanned[fn.Name()] {
				pass.Reportf(id.Pos(),
					"time.%s in deterministic package %s: use the injected clock (virtual time) so seeded runs replay byte-for-byte",
					fn.Name(), pass.Pkg.Path())
			}
			return true
		})
	}
	return nil
}
