package analysis

import (
	"go/ast"
	"go/types"
)

// StatusBoundaryPackages lists the packages whose exported API is an RPC
// boundary: every error they return must be a canonical status error so
// trace.Collector.SeenByCode classifies the failure instead of lumping it
// into Internal. Settable via -statuserr.packages.
var StatusBoundaryPackages = NewPackageList(
	"rpcscale/internal/stubby",
)

// StatuserrAnalyzer flags bare error constructions returned across an
// exported boundary of a status-disciplined package: fmt.Errorf,
// errors.New, errors.Join, and raw ctx.Err() results are all classified
// as Internal by StatusFromError, erasing the paper's error taxonomy.
//
// The check is intraprocedural and syntactic on the returned expression;
// errors propagated through variables are covered at runtime by the
// stubby boundary table test (TestExportedBoundariesReturnStatusErrors).
var StatuserrAnalyzer = &Analyzer{
	Name: "statuserr",
	Doc: "exported functions and methods of " + StatusBoundaryPackages.String() + " must return " +
		"canonical status errors (Errorf(code, ...), *Status), never bare fmt.Errorf/errors.New/ctx.Err(), " +
		"so SeenByCode sees a classified code on every failure path",
	Run: runStatuserr,
}

func runStatuserr(pass *Pass) error {
	if !StatusBoundaryPackages.Match(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isExportedBoundary(pass, fn) {
				continue
			}
			errIdx := lastErrorResult(pass, fn)
			if errIdx < 0 {
				continue
			}
			checkBoundaryReturns(pass, fn, errIdx)
		}
	}
	return nil
}

// isExportedBoundary reports whether fn is callable from outside the
// package: an exported top-level func, or an exported method on an
// exported type.
func isExportedBoundary(pass *Pass, fn *ast.FuncDecl) bool {
	if !fn.Name.IsExported() {
		return false
	}
	if fn.Recv == nil {
		return true
	}
	obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := obj.Signature()
	if sig.Recv() == nil {
		return false
	}
	named := namedOrPointee(sig.Recv().Type())
	return named != nil && named.Obj().Exported()
}

// lastErrorResult returns the index of the trailing error result of fn,
// or -1.
func lastErrorResult(pass *Pass, fn *ast.FuncDecl) int {
	obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func)
	if !ok {
		return -1
	}
	results := obj.Signature().Results()
	n := results.Len()
	if n == 0 {
		return -1
	}
	last := results.At(n - 1).Type()
	named, ok := last.(*types.Named)
	if !ok || named.Obj().Pkg() != nil || named.Obj().Name() != "error" {
		return -1
	}
	return n - 1
}

func checkBoundaryReturns(pass *Pass, fn *ast.FuncDecl, errIdx int) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // closures return to their own callers
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) <= errIdx {
			return true
		}
		expr := ast.Unparen(ret.Results[errIdx])
		call, ok := expr.(*ast.CallExpr)
		if !ok {
			return true
		}
		if kind, ok := bareErrorConstructor(pass.TypesInfo, call); ok {
			pass.Reportf(expr.Pos(),
				"%s returned across the exported %s boundary: StatusFromError classifies it as Internal; construct a status error (Errorf(trace.<Code>, ...)) instead",
				kind, fn.Name.Name)
		}
		return true
	})
}

// bareErrorConstructor recognizes error values that carry no status code.
func bareErrorConstructor(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(info, call)
	if fn == nil {
		return "", false
	}
	switch funcPkgPath(fn) {
	case "fmt":
		if fn.Name() == "Errorf" {
			return "fmt.Errorf", true
		}
	case "errors":
		if fn.Name() == "New" || fn.Name() == "Join" {
			return "errors." + fn.Name(), true
		}
	case "context":
		// (context.Context).Err: a raw cancellation error instead of the
		// canonical Cancelled/DeadlineExceeded status.
		if fn.Name() == "Err" && !isPackageLevel(fn) {
			return "ctx.Err()", true
		}
	}
	return "", false
}
