// Package goroleak exercises the goroutine-leak analyzer: spawned
// condition-less loops with no shutdown edge are flagged; loops bounded
// by a channel, select, context, WaitGroup, or blocking reader are not.
package goroleak

import (
	"context"
	"io"
	"sync"
)

var tick int

func work() { tick++ }

func spinForever() {
	for {
		work()
	}
}

func SpawnNamed() {
	go spinForever() // want `goroleak: goroutine loops forever \(line \d+\) with no shutdown edge`
}

func SpawnLiteral() {
	go func() { // want `goroleak: goroutine loops forever \(line \d+\) with no shutdown edge`
		for {
			tick++
		}
	}()
}

// A justified suppression on the go statement mutes the finding.
func SpawnSuppressed() {
	go spinForever() //rpclint:ignore goroleak fixture: process-lifetime daemon by design
}

// Receiving from a channel is a shutdown edge: the spawner can close it.
func drain(ch chan int) {
	for {
		v, ok := <-ch
		if !ok {
			return
		}
		tick += v
	}
}

func SpawnChannel(ch chan int) {
	go drain(ch)
}

// A select gives the loop an exit arm.
func SpawnSelect(done chan struct{}) {
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				work()
			}
		}
	}()
}

// Touching a context inside the loop counts as a shutdown edge.
func pollCtx(ctx context.Context) {
	for {
		if ctx.Err() != nil {
			return
		}
		work()
	}
}

func SpawnContext(ctx context.Context) {
	go pollCtx(ctx)
}

// A blocking reader call bounds the loop: closing the source unblocks it.
func pump(r io.Reader) {
	buf := make([]byte, 64)
	for {
		if _, err := r.Read(buf); err != nil {
			return
		}
	}
}

func SpawnReader(r io.Reader) {
	go pump(r)
}

// A WaitGroup join inside the loop bounds each iteration; an edge
// outside the loop (say, a defer) would not stop it and does not count.
func SpawnWaited(wg *sync.WaitGroup) {
	go func() {
		for {
			wg.Wait()
			work()
		}
	}()
}

// A conditioned loop terminates on its own; only `for {` is suspect.
func countdown(n int) {
	for n > 0 {
		n--
	}
}

func SpawnConditioned() {
	go countdown(1000)
}
