// Package statuserr exercises the statuserr analyzer (the test points
// StatusBoundaryPackages here): exported functions and methods must not
// return bare error constructors or raw ctx.Err(); status-coded
// constructors, unexported helpers, and unexported receiver types pass.
package statuserr

import (
	"context"
	"errors"
	"fmt"
)

// Status stands in for the repository's canonical status error.
type Status struct {
	Code int
	Msg  string
}

func (s *Status) Error() string { return s.Msg }

// Errorf mirrors stubby.Errorf: a status-coded constructor.
func Errorf(code int, format string, args ...any) error {
	return &Status{Code: code, Msg: fmt.Sprintf(format, args...)}
}

func Bare() error {
	return errors.New("boom") // want `statuserr: errors\.New returned across the exported Bare boundary`
}

func Wrapped(err error) error {
	return fmt.Errorf("call: %w", err) // want `statuserr: fmt\.Errorf returned across the exported Wrapped boundary`
}

func Joined(a, b error) error {
	return errors.Join(a, b) // want `statuserr: errors\.Join returned across the exported Joined boundary`
}

func Cancelled(ctx context.Context) error {
	return ctx.Err() // want `statuserr: ctx\.Err\(\) returned across the exported Cancelled boundary`
}

// Coded returns a status error: the approved shape.
func Coded() error {
	return Errorf(1, "unavailable")
}

// helper is unexported: not a boundary.
func helper() (int, error) {
	return 0, errors.New("internal detail")
}

type Channel struct{}

func (c *Channel) Ping(ctx context.Context) (int, error) {
	if ctx.Err() != nil {
		return 0, fmt.Errorf("cancelled") // want `statuserr: fmt\.Errorf returned across the exported Ping boundary`
	}
	n, err := helper()
	return n, err // propagated variable: covered by the runtime boundary table test
}

type conn struct{}

// Close is an exported method on an unexported type: not a boundary.
func (conn) Close() error {
	return errors.New("not reachable from outside the package")
}
