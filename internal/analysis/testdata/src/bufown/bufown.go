// Package bufown exercises the buffer-ownership analyzer: leaks,
// use-after-release, double-release, undocumented escapes to fields and
// goroutines, the //rpclint:owns and //rpclint:transfers vocabulary,
// and the inferred alias/release summaries.
package bufown

import "bufown/wire"

// Leak: acquired, appended into, never released or handed off.
func Leak() int {
	buf := wire.GetBuf(64) // want `bufown: pooled buffer from wire\.GetBuf is never released, returned, or handed off`
	buf = append(buf, 1)
	return len(buf)
}

// Released on every path: clean.
func RoundTrip() {
	buf := wire.GetBuf(64)
	buf = append(buf, 2)
	wire.PutBuf(buf)
}

// Returning the buffer hands it to the caller: clean.
func Handout() []byte {
	buf := wire.GetBuf(64)
	return append(buf, 3)
}

func UseAfterPut() byte {
	buf := wire.GetBuf(64)
	buf = append(buf, 7)
	wire.PutBuf(buf)
	return buf[0] // want `bufown: use of buf after wire\.PutBuf released it at line \d+`
}

func DoublePut() {
	buf := wire.GetBuf(64)
	wire.PutBuf(buf)
	wire.PutBuf(buf) // want `bufown: buf released twice: already passed to wire\.PutBuf at line \d+`
}

// A release inside one branch does not poison the fall-through path.
func ConditionalRelease(fail bool) []byte {
	buf := wire.GetBuf(64)
	if fail {
		wire.PutBuf(buf)
		return nil
	}
	return buf
}

type holder struct {
	data []byte
	//rpclint:owns documented pooled payload; released by put()
	owned []byte
}

func (h *holder) put() {
	wire.PutBuf(h.owned)
	h.owned = nil
}

func StoreUnannotated(h *holder) {
	h.data = wire.GetBuf(32) // want `bufown: pooled buffer stored in field data without //rpclint:owns`
}

// Annotated field: the store is a sanctioned transfer.
func StoreAnnotated(h *holder) {
	h.owned = wire.GetBuf(32)
}

// Composite literals check fields the same way.
func Composite() *holder {
	return &holder{owned: wire.GetBuf(8)}
}

// NewToken's annotation makes its result owned at every call site.
//
//rpclint:owns the caller must recycle the token
func NewToken() []byte {
	return append(wire.GetBuf(16), 0xA5)
}

func LeakFromAnnotated() int {
	tok := NewToken() // want `bufown: pooled buffer from bufown\.NewToken is never released, returned, or handed off`
	return len(tok)
}

func RecycleFromAnnotated() {
	tok := NewToken()
	wire.PutBuf(tok)
}

// consumeAsync declares the hand-off, so spawning it with an owned
// buffer is a documented transfer.
//
//rpclint:transfers buf the spawned consumer recycles it
func consumeAsync(buf []byte) {
	wire.PutBuf(buf)
}

func plainSink(buf []byte) { _ = len(buf) }

func HandoffDocumented() {
	buf := wire.GetBuf(64)
	go consumeAsync(buf)
}

func HandoffUndocumented() {
	buf := wire.GetBuf(64)
	go plainSink(buf) // want `bufown: pooled buffer passed to goroutine bufown\.plainSink without //rpclint:transfers on the parameter`
}

func CaptureUndocumented() {
	buf := wire.GetBuf(64)
	go func() {
		_ = buf // want `bufown: pooled buffer buf captured by spawned goroutine without a documented transfer`
	}()
}

// seal's alias-through shape (every return rooted at dst) is inferred,
// so ownership flows from buf to out and the release is seen.
func seal(dst []byte) []byte {
	return append(dst, 0xAA)
}

func AliasThrough() {
	buf := wire.GetBuf(16)
	out := seal(buf)
	wire.PutBuf(out)
}

// recycle's unconditional release is inferred, making it a hard release
// point at its call sites.
func recycle(b []byte) {
	wire.PutBuf(b)
}

func UseAfterHelperRelease() byte {
	buf := wire.GetBuf(16)
	recycle(buf)
	return buf[0] // want `bufown: use of buf after bufown\.recycle released it at line \d+`
}

// A justified suppression on the flagged line mutes the finding.
func SuppressedLeak() int {
	buf := wire.GetBuf(8) //rpclint:ignore bufown fixture demonstrates a deliberately leaked buffer
	return cap(buf)
}

// A malformed transfers directive is reported, not silently dropped.
//
//rpclint:transfers data // want `bufown: rpclint:transfers names unknown parameter data`
func renamedParam(payload []byte) {
	wire.PutBuf(payload)
}
