// Package wire is a fixture stand-in for the real pool: the bufown
// seeds ("wire.GetBuf", "wire.PutBuf") match it by path-segment suffix.
package wire

func GetBuf(n int) []byte { return make([]byte, 0, n) }

func PutBuf(b []byte) {}
