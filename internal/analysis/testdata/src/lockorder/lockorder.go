// Package lockorder exercises the module-wide lock-order analyzer:
// opposite-order acquisitions of two lock classes, nested same-class
// acquisitions, and an inversion reached through a callee.
package lockorder

import "sync"

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

func ab(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock() // want `lockorder: lock order cycle: lockorder\.B\.mu acquired while lockorder\.A\.mu is held, but the opposite order occurs at lockorder\.go:\d+`
	b.mu.Unlock()
	a.mu.Unlock()
}

func ba(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock() // want `lockorder: lock order cycle: lockorder\.A\.mu acquired while lockorder\.B\.mu is held, but the opposite order occurs at lockorder\.go:\d+`
	a.mu.Unlock()
	b.mu.Unlock()
}

// Nested acquisition of one class: instance order is unenforced, so two
// goroutines merging in opposite directions deadlock on the crossed pair.
func (p *A) Merge(o *A) {
	o.mu.Lock()
	p.mu.Lock() // want `lockorder: nested acquisition of lock class lockorder\.A\.mu while another lockorder\.A\.mu is held`
	p.mu.Unlock()
	o.mu.Unlock()
}

type C struct{ mu sync.Mutex }

type D struct{ mu sync.Mutex }

func lockD(d *D) {
	d.mu.Lock()
	d.mu.Unlock()
}

// The C→D edge is established through lockD's summary, not a direct
// acquisition in this scope.
func cd(c *C, d *D) {
	c.mu.Lock()
	lockD(d) // want `lockorder: lock order cycle: lockorder\.D\.mu acquired while lockorder\.C\.mu is held \(via call to lockorder\.lockD\), but the opposite order occurs at lockorder\.go:\d+`
	c.mu.Unlock()
}

func dc(c *C, d *D) {
	d.mu.Lock()
	c.mu.Lock() // want `lockorder: lock order cycle: lockorder\.C\.mu acquired while lockorder\.D\.mu is held, but the opposite order occurs at lockorder\.go:\d+`
	c.mu.Unlock()
	d.mu.Unlock()
}

type E struct{ mu sync.Mutex }

type F struct{ mu sync.Mutex }

// Consistent order across every function: clean.
func efOne(e *E, f *F) {
	e.mu.Lock()
	f.mu.Lock()
	f.mu.Unlock()
	e.mu.Unlock()
}

func efTwo(e *E, f *F) {
	e.mu.Lock()
	defer e.mu.Unlock()
	f.mu.Lock()
	defer f.mu.Unlock()
}

// A spawned goroutine is a separate acquisition scope: the E held here
// does not order against the F taken inside the literal.
func efSpawn(e *E, f *F) {
	e.mu.Lock()
	go func() {
		f.mu.Lock()
		f.mu.Unlock()
	}()
	e.mu.Unlock()
}
