// Package lockheld exercises the lockheld analyzer: blocking channel
// operations, net I/O, and RPC dispatch inside a mutex critical section
// are flagged; released locks, select-with-default, and goroutine bodies
// pass.
package lockheld

import (
	"net"
	"sync"
)

type Conn struct {
	mu    sync.Mutex
	ch    chan int
	calls int
}

func (c *Conn) SendLocked(v int) {
	c.mu.Lock()
	c.ch <- v // want `lockheld: channel send while c\.mu is held`
	c.mu.Unlock()
}

func (c *Conn) SendAfter(v int) {
	c.mu.Lock()
	c.calls++
	c.mu.Unlock()
	c.ch <- v // lock released before the send: fine
}

func (c *Conn) RecvDeferred() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return <-c.ch // want `lockheld: channel receive while c\.mu is held`
}

// TryPut sends inside a select that has a default clause: non-blocking.
func (c *Conn) TryPut(v int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	select {
	case c.ch <- v:
		return true
	default:
		return false
	}
}

func (c *Conn) DialLocked(addr string) (net.Conn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return net.Dial("tcp", addr) // want `lockheld: net\.Dial I/O while c\.mu is held`
}

// Spawn holds the lock only at goroutine spawn time; the literal's body
// is its own scope.
func (c *Conn) Spawn(v int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.ch <- v
	}()
}

type stub struct{}

func (stub) Invoke(method string) error { return nil }

func (c *Conn) CallLocked(s stub) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return s.Invoke("m") // want `lockheld: RPC dispatch via Invoke while c\.mu is held`
}

func (c *Conn) ReadLocked() int {
	var mu sync.RWMutex
	mu.RLock()
	v := <-c.ch // want `lockheld: channel receive while mu is held`
	mu.RUnlock()
	return v
}
