// Package sinkobserve exercises the sinkobserve analyzer: observe-path
// methods that store their argument (or a reference-typed field of it)
// into receiver state are flagged; scalar/string field copies and
// non-observe methods pass.
package sinkobserve

// Span stands in for a trace span observed at full stream volume.
type Span struct {
	Method string
	Dur    int64
	Tags   []string
	Child  *Span
}

type keeper struct {
	last *Span
}

func (k *keeper) Observe(s *Span) {
	k.last = s // want `sinkobserve: Observe stores s in receiver state`
}

type appender struct {
	spans []*Span
}

func (a *appender) MethodSpan(s *Span) {
	a.spans = append(a.spans, s) // want `sinkobserve: MethodSpan stores s in receiver state`
}

type mapper struct {
	byName map[string][]*Span
}

func (m *mapper) VolumeSpan(s *Span) {
	m.byName[s.Method] = append(m.byName[s.Method], s) // want `sinkobserve: VolumeSpan stores s in receiver state`
}

type fielder struct {
	tags  []string
	child *Span
}

func (f *fielder) TreeSpan(s *Span) {
	f.tags = s.Tags   // want `sinkobserve: TreeSpan stores s\.Tags in receiver state`
	f.child = s.Child // want `sinkobserve: TreeSpan stores s\.Child in receiver state`
}

type folder struct {
	total int64
	name  string
	count int
}

// folder copies the fields its figure needs: the approved shape.
func (f *folder) Observe(s *Span) {
	f.total += s.Dur
	f.name = s.Method
	f.count++
}

type other struct {
	last *Span
}

// Retain is not an observe-path method name: out of scope.
func (o *other) Retain(s *Span) {
	o.last = s
}
