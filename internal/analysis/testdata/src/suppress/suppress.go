// Package suppress exercises the //rpclint:ignore pipeline under the
// full analyzer suite: a justified directive on the flagged line or the
// line above silences the finding; a reason-less or analyzer-less
// directive suppresses nothing and is itself reported.
package suppress

import (
	"math/rand/v2"
	"sync"
)

type buf struct {
	mu sync.Mutex
	ch chan int
}

func (b *buf) Put(v int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	//rpclint:ignore lockheld the channel is buffered larger than any burst and drained by a dedicated goroutine
	b.ch <- v
}

func (b *buf) PutInline(v int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ch <- v //rpclint:ignore lockheld a same-line directive covers the finding too
}

func (b *buf) PutBare(v int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	//rpclint:ignore lockheld // want `ignore: rpclint:ignore without a reason`
	b.ch <- v // want `lockheld: channel send while b\.mu is held`
}

func Jitter() float64 {
	//rpclint:ignore rngsource fixture demonstrates a justified suppression of another analyzer
	return rand.Float64()
}

func JitterAll() float64 {
	//rpclint:ignore all a blanket suppression with a reason covers every analyzer
	return rand.Float64()
}

//rpclint:ignore // want `ignore: rpclint:ignore names no analyzer`
func Unsuppressed() float64 {
	return rand.Float64() // want `rngsource: global math/rand source`
}
