// Package free is not in the deterministic list: wall-clock reads are
// fine here and must produce no findings.
package free

import "time"

func Stamp() time.Time { return time.Now() }
