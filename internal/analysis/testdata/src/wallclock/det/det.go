// Package det is a fixture configured as a deterministic package (the
// wallclock test points DeterministicPackages here): every wall-clock
// entry point must be flagged; pure time constructors and an injected
// clock must pass.
package det

import "time"

var epoch = time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC) // pure constructor: fine

func Tick() time.Duration {
	t := time.Now()              // want `wallclock: time\.Now in deterministic package`
	time.Sleep(time.Millisecond) // want `wallclock: time\.Sleep in deterministic package`
	return time.Since(t)         // want `wallclock: time\.Since in deterministic package`
}

func Wait() {
	<-time.After(time.Second)      // want `wallclock: time\.After in deterministic package`
	_ = time.NewTimer(time.Second) // want `wallclock: time\.NewTimer in deterministic package`
}

// Virtual threads an injected clock: the approved shape.
func Virtual(now func() time.Time) time.Duration {
	return now().Sub(epoch)
}
