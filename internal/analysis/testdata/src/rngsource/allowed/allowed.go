// Package allowed is on the crypto/rand allow-list (the test points
// CryptoRandPackages here): real entropy is its job, no findings.
package allowed

import "crypto/rand"

func Key() []byte {
	buf := make([]byte, 32)
	rand.Read(buf)
	return buf
}
