// Package rngsource exercises the rngsource analyzer: package-level
// math/rand draws use the process-global source and are flagged
// everywhere; methods on a threaded *rand.Rand and the explicit source
// constructors pass; crypto/rand is flagged outside its allowed packages.
package rngsource

import (
	crand "crypto/rand"
	"math/rand/v2"
)

func Global() float64 {
	return rand.Float64() // want `rngsource: global math/rand source`
}

func Pick(n int) int {
	return rand.IntN(n) // want `rngsource: global math/rand source`
}

// Threaded builds an explicit seedable source: the approved shape.
func Threaded(seed uint64) float64 {
	rng := rand.New(rand.NewPCG(seed, 0))
	return rng.Float64()
}

func Entropy(buf []byte) {
	crand.Read(buf) // want `rngsource: crypto/rand outside`
}
