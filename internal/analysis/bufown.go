package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// BufownAcquireFuncs are the pool seams whose result is an owned buffer.
// Settable via -bufown.acquire.
var BufownAcquireFuncs = NewFuncList("wire.GetBuf")

// BufownReleaseFuncs recycle their first argument; the caller must not
// touch the buffer afterwards. Settable via -bufown.release.
var BufownReleaseFuncs = NewFuncList("wire.PutBuf", "stubby.FreeResponse")

// BufownAliasFuncs return a buffer that aliases their first argument
// (append-style seal/open in place), so ownership flows through them.
// Settable via -bufown.alias.
var BufownAliasFuncs = NewFuncList(
	"secure.Session.OpenAppend", "secure.Session.OpenAppendAAD",
	"secure.Session.SealAppend", "secure.Session.SealAppendAAD",
	"secure.Worker.SealAppendAAD",
)

// BufownAnalyzer enforces the DESIGN.md §11/§12 buffer-ownership
// contract: values acquired from the wire pool (or derived from one
// through append/seal/open aliasing) are tracked through assignments and
// call sites using per-function ownership summaries. It reports
//
//   - uses and re-releases of a buffer after wire.PutBuf/FreeResponse on
//     the same statement path (use-after-release, double-release);
//   - owned buffers stored into struct fields or captured by spawned
//     goroutines without a documented transfer (//rpclint:owns on the
//     field, //rpclint:transfers on the callee parameter);
//   - owned buffers that are never released, returned, or handed off.
//
// Summaries are inferred module-wide (alias-through returns,
// unconditional releases of parameters) and seeded for the known wire
// and secure seams, so the analysis stays useful per-package under
// `go vet -vettool`.
var BufownAnalyzer = &Analyzer{
	Name: "bufown",
	Doc: "track pool-owned buffers (" + BufownAcquireFuncs.String() + ") through assignments and " +
		"calls; flag use-after-release, double-release, undocumented escapes to fields or " +
		"goroutines, and paths that leak an owned buffer",
	Run: runBufown,
}

// ownSummary is one function's inferred ownership behavior.
type ownSummary struct {
	returnsOwned bool         // first result is a pool-owned buffer
	aliasParam   int          // first result aliases this param, or -1
	releases     map[int]bool // params released on every path (top-level)
}

// ownFacts is the module-wide ownership model: annotations plus the
// summary fixpoint.
type ownFacts struct {
	ann  *annotations
	sums map[*types.Func]*ownSummary
}

// ownership returns the module's ownership facts, computing them on
// first use: parse annotations, seed summaries, then propagate
// alias-through and unconditional-release facts to a fixpoint.
func (m *Module) ownership() *ownFacts {
	if m.own != nil {
		return m.own
	}
	facts := &ownFacts{ann: parseAnnotations(m), sums: make(map[*types.Func]*ownSummary)}
	m.own = facts
	m.eachDecl(func(fn *types.Func, fd *ast.FuncDecl, pkg *Package) {
		facts.sums[fn] = &ownSummary{
			returnsOwned: facts.ann.ownsResult[fn],
			aliasParam:   -1,
			releases:     make(map[int]bool),
		}
	})
	for changed := true; changed; {
		changed = false
		m.eachDecl(func(fn *types.Func, fd *ast.FuncDecl, pkg *Package) {
			s := facts.sums[fn]
			if s.aliasParam < 0 {
				if i := facts.inferAlias(fn, fd, pkg); i >= 0 {
					s.aliasParam = i
					changed = true
				}
			}
			if facts.inferReleases(fn, fd, pkg, s) {
				changed = true
			}
		})
	}
	return facts
}

// returnsOwned reports whether calling fn yields a buffer the caller
// owns.
func (f *ownFacts) returnsOwned(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	if BufownAcquireFuncs.Match(fn) {
		return true
	}
	if s := f.sums[fn]; s != nil && s.returnsOwned {
		return true
	}
	return f.ann.ownsResult[fn]
}

// releasesParam reports whether fn unconditionally recycles param i.
func (f *ownFacts) releasesParam(fn *types.Func, i int) bool {
	if fn == nil {
		return false
	}
	if i == 0 && BufownReleaseFuncs.Match(fn) {
		return true
	}
	s := f.sums[fn]
	return s != nil && s.releases[i]
}

// aliasParam returns the param index fn's first result aliases, or -1.
func (f *ownFacts) aliasParam(fn *types.Func) int {
	if fn == nil {
		return -1
	}
	if BufownAliasFuncs.Match(fn) {
		return 0
	}
	if s := f.sums[fn]; s != nil {
		return s.aliasParam
	}
	return -1
}

// transfersParam reports whether fn's param i is an annotated hand-off.
func (f *ownFacts) transfersParam(fn *types.Func, i int) bool {
	if fn == nil {
		return false
	}
	t := f.ann.transfers[fn]
	return t != nil && t[i]
}

// paramObjs maps fn's parameter objects to their indices.
func paramObjs(fn *types.Func) map[types.Object]int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	out := make(map[types.Object]int, sig.Params().Len())
	for i := 0; i < sig.Params().Len(); i++ {
		out[sig.Params().At(i)] = i
	}
	return out
}

// isByteSlice reports whether t is []byte (possibly named).
func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// inferAlias detects append-style functions whose first result always
// derives from the same parameter (every return is rooted at it through
// append, slicing, or another alias-through call).
func (f *ownFacts) inferAlias(fn *types.Func, fd *ast.FuncDecl, pkg *Package) int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 || !isByteSlice(sig.Results().At(0).Type()) {
		return -1
	}
	params := paramObjs(fn)
	root := -2 // unset
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		r := -1
		if len(ret.Results) > 0 {
			r = f.rootParam(ret.Results[0], pkg.TypesInfo, params)
		}
		switch {
		case r < 0:
			root = -1
		case root == -2:
			root = r
		case root != r:
			root = -1
		}
		return true
	})
	if root < 0 {
		return -1
	}
	return root
}

// rootParam resolves the parameter an expression's storage derives from,
// or -1.
func (f *ownFacts) rootParam(e ast.Expr, info *types.Info, params map[types.Object]int) int {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if i, ok := params[info.Uses[e]]; ok {
			return i
		}
	case *ast.SliceExpr:
		return f.rootParam(e.X, info, params)
	case *ast.CallExpr:
		if isBuiltin(info, e, "append") && len(e.Args) > 0 {
			return f.rootParam(e.Args[0], info, params)
		}
		if k := f.aliasParam(calleeFunc(info, e)); k >= 0 && k < len(e.Args) {
			return f.rootParam(e.Args[k], info, params)
		}
	}
	return -1
}

// inferReleases records parameters that fn hard-releases at the top
// level of its body (unconditionally, directly or through a callee whose
// summary already says so). Reports whether the summary grew.
func (f *ownFacts) inferReleases(fn *types.Func, fd *ast.FuncDecl, pkg *Package, s *ownSummary) bool {
	params := paramObjs(fn)
	changed := false
	for _, st := range fd.Body.List {
		var call *ast.CallExpr
		switch st := st.(type) {
		case *ast.ExprStmt:
			call, _ = st.X.(*ast.CallExpr)
		case *ast.DeferStmt:
			call = st.Call
		}
		if call == nil {
			continue
		}
		callee := calleeFunc(pkg.TypesInfo, call)
		for j, arg := range call.Args {
			if !f.releasesParam(callee, j) {
				continue
			}
			id, ok := ast.Unparen(arg).(*ast.Ident)
			if !ok {
				continue
			}
			if i, ok := params[pkg.TypesInfo.Uses[id]]; ok && !s.releases[i] {
				s.releases[i] = true
				changed = true
			}
		}
	}
	return changed
}

func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// funcDisplay prints fn as "pkg.Name" or "pkg.Type.Name".
func funcDisplay(fn *types.Func) string {
	if fn == nil {
		return "?"
	}
	name := fn.Name()
	if r := recvTypeName(fn); r != "" {
		name = r + "." + name
	}
	if fn.Pkg() != nil {
		name = fn.Pkg().Name() + "." + name
	}
	return name
}

func runBufown(pass *Pass) error {
	facts := pass.Module().ownership()
	emitFor(pass, facts.ann.reports)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					bufownBody(pass, facts, fn.Body)
				}
			case *ast.FuncLit:
				bufownBody(pass, facts, fn.Body)
			}
			return true
		})
	}
	return nil
}

// ownedBuf is one tracked acquisition within a function scope.
type ownedBuf struct {
	pos      token.Pos
	src      string // the seam it came from, e.g. "wire.GetBuf"
	consumed bool   // released, returned, stored, or handed to a call
}

// relInfo records one hard release on the current statement path.
type relInfo struct {
	line int
	by   string
}

type bufScope struct {
	pass  *Pass
	facts *ownFacts
	info  *types.Info
	owned map[types.Object]*ownedBuf
}

// bufownBody analyzes one function (or func literal) body as its own
// scope. Pass one finds acquisitions in source order; pass two walks the
// statement structure checking the release discipline.
func bufownBody(pass *Pass, facts *ownFacts, body *ast.BlockStmt) {
	s := &bufScope{pass: pass, facts: facts, info: pass.TypesInfo, owned: make(map[types.Object]*ownedBuf)}
	s.collectAcquisitions(body)
	s.scanList(body.List, make(map[string]relInfo))
	var leaks []*ownedBuf
	for _, ob := range s.owned {
		if !ob.consumed {
			leaks = append(leaks, ob)
		}
	}
	sort.Slice(leaks, func(i, j int) bool { return leaks[i].pos < leaks[j].pos })
	for _, ob := range leaks {
		pass.Reportf(ob.pos,
			"pooled buffer from %s is never released, returned, or handed off; every path must recycle it or document the transfer",
			ob.src)
	}
}

// varObj resolves id to the variable it defines or uses, or nil.
func (s *bufScope) varObj(id *ast.Ident) *types.Var {
	obj := s.info.Uses[id]
	if obj == nil {
		obj = s.info.Defs[id]
	}
	v, _ := obj.(*types.Var)
	if v == nil || v.IsField() {
		return nil
	}
	return v
}

// ownedRoot resolves the ownership origin of an expression: an owned
// local (possibly through slicing, append, or an alias-through call) or
// a direct acquiring call.
func (s *bufScope) ownedRoot(e ast.Expr) (src string, from types.Object, ok bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v := s.varObj(e); v != nil {
			if ob := s.owned[v]; ob != nil {
				return ob.src, v, true
			}
		}
	case *ast.SliceExpr:
		return s.ownedRoot(e.X)
	case *ast.CallExpr:
		callee := calleeFunc(s.info, e)
		if s.facts.returnsOwned(callee) {
			return funcDisplay(callee), nil, true
		}
		if isBuiltin(s.info, e, "append") && len(e.Args) > 0 {
			return s.ownedRoot(e.Args[0])
		}
		if k := s.facts.aliasParam(callee); k >= 0 && k < len(e.Args) {
			return s.ownedRoot(e.Args[k])
		}
	}
	return "", nil, false
}

// collectAcquisitions records every assignment that makes a local an
// owned buffer, in source order so alias chains resolve forward.
func (s *bufScope) collectAcquisitions(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // separate scope
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		obj := s.varObj(id)
		if obj == nil || !isByteSlice(obj.Type()) {
			return true
		}
		src, from, owned := s.ownedRoot(as.Rhs[0])
		if !owned {
			return true
		}
		if from == types.Object(obj) {
			return true // buf = append(buf, ...): same buffer, still owned
		}
		if from != nil {
			s.owned[from].consumed = true // moved into the new variable
		}
		if s.owned[obj] == nil {
			s.owned[obj] = &ownedBuf{pos: id.Pos(), src: src}
		}
		return true
	})
}

// trackPath prints an ident-or-selector chain rooted at a variable
// ("buf", "b.env"), the key space of the release map.
func (s *bufScope) trackPath(e ast.Expr) (string, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if s.varObj(e) != nil {
			return e.Name, true
		}
	case *ast.SelectorExpr:
		if root, ok := s.trackPath(e.X); ok {
			return root + "." + e.Sel.Name, true
		}
	}
	return "", false
}

// checkUse reports a read of a path whose buffer was released earlier on
// this statement path.
func (s *bufScope) checkUse(path string, pos token.Pos, released map[string]relInfo) {
	for k, r := range released {
		if path == k || strings.HasPrefix(path, k+".") {
			s.pass.Reportf(pos,
				"use of %s after %s released it at line %d; the buffer may already be recycled into another call",
				path, r.by, r.line)
			return
		}
	}
}

// kill invalidates a path (and everything below it) on assignment.
func kill(released map[string]relInfo, path string) {
	delete(released, path)
	for k := range released {
		if strings.HasPrefix(k, path+".") {
			delete(released, k)
		}
	}
}

// scanList walks one statement list. Releases registered by nested
// blocks are conditional and roll back when the block exits; kills
// (reassignments) persist.
func (s *bufScope) scanList(stmts []ast.Stmt, released map[string]relInfo) {
	var added []string
	for _, st := range stmts {
		s.scanStmt(st, released, &added)
	}
	for _, k := range added {
		delete(released, k)
	}
}

func (s *bufScope) scanStmt(st ast.Stmt, released map[string]relInfo, added *[]string) {
	switch st := st.(type) {
	case nil:
	case *ast.BlockStmt:
		s.scanList(st.List, released)
	case *ast.LabeledStmt:
		s.scanStmt(st.Stmt, released, added)
	case *ast.IfStmt:
		s.scanStmt(st.Init, released, added)
		s.scanExpr(st.Cond, false, released, nil)
		s.scanList(st.Body.List, released)
		s.scanStmt(st.Else, released, added)
	case *ast.ForStmt:
		s.scanStmt(st.Init, released, added)
		s.scanExpr(st.Cond, false, released, nil)
		s.scanList(st.Body.List, released)
		s.scanStmt(st.Post, released, added)
	case *ast.RangeStmt:
		s.scanExpr(st.X, false, released, nil)
		s.scanList(st.Body.List, released)
	case *ast.SwitchStmt:
		s.scanStmt(st.Init, released, added)
		s.scanExpr(st.Tag, false, released, nil)
		for _, c := range st.Body.List {
			cc := c.(*ast.CaseClause)
			for _, e := range cc.List {
				s.scanExpr(e, false, released, nil)
			}
			s.scanList(cc.Body, released)
		}
	case *ast.TypeSwitchStmt:
		s.scanStmt(st.Init, released, added)
		s.scanStmt(st.Assign, released, added)
		for _, c := range st.Body.List {
			s.scanList(c.(*ast.CaseClause).Body, released)
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			cc := c.(*ast.CommClause)
			var commAdded []string
			s.scanStmt(cc.Comm, released, &commAdded)
			s.scanList(cc.Body, released)
		}
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok && s.scanReleaseCall(call, released, added) {
			return
		}
		s.scanExpr(st.X, false, released, nil)
	case *ast.AssignStmt:
		s.scanAssign(st, released)
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			s.scanExpr(r, true, released, nil)
		}
	case *ast.SendStmt:
		s.scanExpr(st.Chan, false, released, nil)
		s.scanExpr(st.Value, true, released, nil)
	case *ast.DeferStmt:
		s.scanExpr(st.Call, false, released, nil)
	case *ast.GoStmt:
		if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
			s.checkGoCapture(lit)
		} else {
			// An owned buffer crossing into a goroutine needs the callee
			// to declare the hand-off with //rpclint:transfers.
			callee := calleeFunc(s.info, st.Call)
			for i, arg := range st.Call.Args {
				if _, _, ok := s.ownedRoot(arg); ok && !s.facts.transfersParam(callee, i) {
					s.pass.Reportf(arg.Pos(),
						"pooled buffer passed to goroutine %s without //rpclint:transfers on the parameter; document the hand-off",
						funcDisplay(callee))
				}
			}
		}
		s.scanExpr(st.Call, false, released, nil)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						s.scanExpr(v, true, released, nil)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		s.scanExpr(st.X, false, released, nil)
	}
}

// scanReleaseCall handles a top-level hard-release call: double-release
// detection, registration on this path, and consumption. Reports
// whether the call released anything.
func (s *bufScope) scanReleaseCall(call *ast.CallExpr, released map[string]relInfo, added *[]string) bool {
	callee := calleeFunc(s.info, call)
	handled := false
	for j, arg := range call.Args {
		if !s.facts.releasesParam(callee, j) {
			s.scanExpr(arg, true, released, nil)
			continue
		}
		handled = true
		s.consume(arg)
		path, ok := s.trackPath(arg)
		if !ok {
			continue
		}
		if prev, dup := released[path]; dup {
			s.pass.Reportf(arg.Pos(),
				"%s released twice: already passed to %s at line %d", path, prev.by, prev.line)
			continue
		}
		released[path] = relInfo{line: s.pass.Fset.Position(call.Pos()).Line, by: funcDisplay(callee)}
		*added = append(*added, path)
	}
	return handled
}

// consume marks the owned root of e (if any) as handed off.
func (s *bufScope) consume(e ast.Expr) {
	if _, from, ok := s.ownedRoot(e); ok && from != nil {
		s.owned[from].consumed = true
	}
}

func (s *bufScope) scanAssign(as *ast.AssignStmt, released map[string]relInfo) {
	// buf = append(buf, ...) keeps ownership in place; exempt the self
	// root from consumption.
	var selfObj types.Object
	if len(as.Rhs) == 1 && len(as.Lhs) >= 1 {
		if id, ok := as.Lhs[0].(*ast.Ident); ok {
			if v := s.varObj(id); v != nil {
				if _, from, ok := s.ownedRoot(as.Rhs[0]); ok && from == types.Object(v) {
					selfObj = v
				}
			}
		}
	}
	for _, r := range as.Rhs {
		s.scanExpr(r, true, released, selfObj)
	}
	for i, l := range as.Lhs {
		// A store into a struct field must target a documented owner.
		if sel, ok := ast.Unparen(l).(*ast.SelectorExpr); ok {
			if rhs := pairedRhs(as, i); rhs != nil {
				if _, _, ok := s.ownedRoot(rhs); ok {
					s.checkFieldStore(sel.Sel, sel.Pos())
				}
			}
			s.scanExpr(sel.X, false, released, nil)
		}
		if ix, ok := ast.Unparen(l).(*ast.IndexExpr); ok {
			s.scanExpr(ix.X, false, released, nil)
			s.scanExpr(ix.Index, false, released, nil)
		}
		if path, ok := s.trackPath(l); ok {
			kill(released, path)
		}
	}
}

// pairedRhs returns the RHS expression feeding LHS i, handling both 1:1
// and multi-value (single call) assignments.
func pairedRhs(as *ast.AssignStmt, i int) ast.Expr {
	if len(as.Lhs) == len(as.Rhs) {
		return as.Rhs[i]
	}
	if len(as.Rhs) == 1 && i == 0 {
		return as.Rhs[0]
	}
	return nil
}

// checkFieldStore reports a store of an owned buffer into a field that
// is not annotated as the documented owner.
func (s *bufScope) checkFieldStore(fieldIdent *ast.Ident, pos token.Pos) {
	obj := s.info.Uses[fieldIdent]
	if obj == nil {
		return
	}
	if v, ok := obj.(*types.Var); !ok || !v.IsField() {
		return
	}
	if s.facts.ann.fieldOwns[obj] {
		return
	}
	s.pass.Reportf(pos,
		"pooled buffer stored in field %s without //rpclint:owns; the recycling contract needs a documented owner (DESIGN.md §11)",
		obj.Name())
}

// checkGoCapture flags owned buffers referenced inside a spawned
// goroutine: the pool contract needs an explicit hand-off, not an
// implicit closure share.
func (s *bufScope) checkGoCapture(lit *ast.FuncLit) {
	reported := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v := s.varObj(id)
		if v == nil || reported[v] {
			return true
		}
		if ob := s.owned[v]; ob != nil {
			reported[v] = true
			ob.consumed = true // the goroutine owns it now; don't double-report as a leak
			s.pass.Reportf(id.Pos(),
				"pooled buffer %s captured by spawned goroutine without a documented transfer; release it before spawning or hand it off explicitly",
				id.Name)
		}
		return true
	})
}

// scanExpr walks an expression: use-after-release checks on every
// tracked path read, consumption marking when the context retains the
// value (consuming=true).
func (s *bufScope) scanExpr(e ast.Expr, consuming bool, released map[string]relInfo, skipConsume types.Object) {
	switch e := e.(type) {
	case nil:
	case *ast.Ident:
		if v := s.varObj(e); v != nil {
			s.checkUse(e.Name, e.Pos(), released)
			if consuming && types.Object(v) != skipConsume {
				if ob := s.owned[v]; ob != nil {
					ob.consumed = true
				}
			}
		}
	case *ast.SelectorExpr:
		if path, ok := s.trackPath(e); ok {
			s.checkUse(path, e.Pos(), released)
			return
		}
		s.scanExpr(e.X, false, released, nil)
	case *ast.CallExpr:
		s.scanExpr(e.Fun, false, released, nil)
		switch {
		case isBuiltin(s.info, e, "len") || isBuiltin(s.info, e, "cap") || isBuiltin(s.info, e, "copy"):
			for _, a := range e.Args {
				s.scanExpr(a, false, released, nil)
			}
		case isBuiltin(s.info, e, "append"):
			for i, a := range e.Args {
				// The base slice is consumed only if the result is; the
				// appended values are retained either way.
				s.scanExpr(a, consuming || i > 0, released, skipConsume)
			}
		default:
			for _, a := range e.Args {
				s.scanExpr(a, true, released, skipConsume)
			}
		}
	case *ast.CompositeLit:
		s.scanComposite(e, released)
	case *ast.KeyValueExpr:
		s.scanExpr(e.Value, consuming, released, skipConsume)
	case *ast.UnaryExpr:
		s.scanExpr(e.X, e.Op == token.AND, released, nil)
	case *ast.StarExpr:
		s.scanExpr(e.X, consuming, released, skipConsume)
	case *ast.ParenExpr:
		s.scanExpr(e.X, consuming, released, skipConsume)
	case *ast.TypeAssertExpr:
		s.scanExpr(e.X, consuming, released, skipConsume)
	case *ast.BinaryExpr:
		s.scanExpr(e.X, false, released, nil)
		s.scanExpr(e.Y, false, released, nil)
	case *ast.IndexExpr:
		s.scanExpr(e.X, false, released, nil)
		s.scanExpr(e.Index, false, released, nil)
	case *ast.SliceExpr:
		s.scanExpr(e.X, consuming, released, skipConsume)
		s.scanExpr(e.Low, false, released, nil)
		s.scanExpr(e.High, false, released, nil)
		s.scanExpr(e.Max, false, released, nil)
	case *ast.FuncLit:
		// Separate scope; but a closure may release or retain captured
		// owned buffers, so treat every captured owned local as consumed.
		ast.Inspect(e.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if v := s.varObj(id); v != nil {
					if ob := s.owned[v]; ob != nil {
						ob.consumed = true
					}
				}
			}
			return true
		})
	}
}

// scanComposite checks struct literals for owned buffers landing in
// unannotated fields; all elements are consuming positions.
func (s *bufScope) scanComposite(cl *ast.CompositeLit, released map[string]relInfo) {
	st, _ := s.structOf(cl)
	for i, elt := range cl.Elts {
		value := elt
		var field *types.Var
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			value = kv.Value
			if key, ok := kv.Key.(*ast.Ident); ok && st != nil {
				field, _ = s.info.Uses[key].(*types.Var)
			}
		} else if st != nil && i < st.NumFields() {
			field = st.Field(i)
		}
		if field != nil {
			if _, _, ok := s.ownedRoot(value); ok && !s.facts.ann.fieldOwns[field] {
				s.pass.Reportf(value.Pos(),
					"pooled buffer stored in field %s without //rpclint:owns; the recycling contract needs a documented owner (DESIGN.md §11)",
					field.Name())
			}
		}
		s.scanExpr(value, true, released, nil)
	}
}

// structOf resolves the struct type a composite literal builds, or nil.
func (s *bufScope) structOf(cl *ast.CompositeLit) (*types.Struct, bool) {
	tv, ok := s.info.Types[cl]
	if !ok {
		return nil, false
	}
	st, ok := tv.Type.Underlying().(*types.Struct)
	return st, ok
}
