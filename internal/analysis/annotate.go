package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Ownership annotations make the buffer hand-off contract of DESIGN.md
// §11/§12 machine-checkable. Two directives, placed in doc comments:
//
//	//rpclint:owns [note]
//
// on a function: its first result is a pooled buffer the caller now
// owns (release it, return it, or hand it off). On a struct field: the
// field is the documented owner of a pooled buffer, so storing an owned
// buffer into it is a sanctioned transfer, not an escape.
//
//	//rpclint:transfers <param[,param...]> [note]
//
// on a function: ownership of the named []byte parameters moves to the
// callee (it releases them or stores them under a documented owner);
// callers must not flag the hand-off as a leak.
const (
	ownsPrefix      = "rpclint:owns"
	transfersPrefix = "rpclint:transfers"
)

// annotations is the module-wide view of the ownership vocabulary.
type annotations struct {
	ownsResult map[*types.Func]bool
	transfers  map[*types.Func]map[int]bool
	fieldOwns  map[types.Object]bool
	reports    []moduleReport // malformed directives
}

// cutDirective strips "//" and the given prefix from a comment, with the
// same tolerance for a leading space as rpclint:ignore. It only matches
// the exact directive word: "rpclint:ownship" is not "rpclint:owns".
func cutDirective(c *ast.Comment, prefix string) (string, bool) {
	text, ok := strings.CutPrefix(c.Text, "//")
	if !ok {
		return "", false
	}
	text, ok = strings.CutPrefix(strings.TrimPrefix(text, " "), prefix)
	if !ok || (text != "" && text[0] != ' ' && text[0] != '\t') {
		return "", false
	}
	return strings.TrimSpace(text), true
}

// parseAnnotations scans every doc comment in the module for ownership
// directives. Unknown parameter names and directives on the wrong kind
// of declaration are reported rather than silently ignored: a typo in a
// transfer annotation must not silently unannotate a seam.
func parseAnnotations(m *Module) *annotations {
	ann := &annotations{
		ownsResult: make(map[*types.Func]bool),
		transfers:  make(map[*types.Func]map[int]bool),
		fieldOwns:  make(map[types.Object]bool),
	}
	for _, pkg := range m.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch d := n.(type) {
				case *ast.FuncDecl:
					ann.funcDirectives(pkg, d)
				case *ast.StructType:
					ann.fieldDirectives(pkg, d)
				}
				return true
			})
		}
	}
	return ann
}

func (a *annotations) funcDirectives(pkg *Package, fd *ast.FuncDecl) {
	if fd.Doc == nil {
		return
	}
	fn, _ := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
	for _, c := range fd.Doc.List {
		if _, ok := cutDirective(c, ownsPrefix); ok {
			if fn != nil {
				a.ownsResult[fn] = true
			}
			continue
		}
		args, ok := cutDirective(c, transfersPrefix)
		if !ok {
			continue
		}
		names := strings.Fields(args)
		if len(names) == 0 {
			a.reports = append(a.reports, moduleReport{pkg, Diagnostic{
				Pos:     c.Pos(),
				Message: "rpclint:transfers names no parameter; write //rpclint:transfers <param[,param...]>",
			}})
			continue
		}
		for _, name := range strings.Split(names[0], ",") {
			if name == "" {
				continue
			}
			idx := paramIndex(fn, name)
			if idx < 0 {
				a.reports = append(a.reports, moduleReport{pkg, Diagnostic{
					Pos:     c.Pos(),
					Message: "rpclint:transfers names unknown parameter " + name,
				}})
				continue
			}
			if fn != nil {
				if a.transfers[fn] == nil {
					a.transfers[fn] = make(map[int]bool)
				}
				a.transfers[fn][idx] = true
			}
		}
	}
}

func (a *annotations) fieldDirectives(pkg *Package, st *ast.StructType) {
	for _, field := range st.Fields.List {
		for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
			if cg == nil {
				continue
			}
			for _, c := range cg.List {
				if _, ok := cutDirective(c, ownsPrefix); !ok {
					continue
				}
				for _, name := range field.Names {
					if obj := pkg.TypesInfo.Defs[name]; obj != nil {
						a.fieldOwns[obj] = true
					}
				}
			}
		}
	}
}

// paramIndex resolves a parameter name to its index in fn's signature,
// or -1.
func paramIndex(fn *types.Func, name string) int {
	if fn == nil {
		return -1
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return -1
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i).Name() == name {
			return i
		}
	}
	return -1
}
