package stats

import (
	"testing"
)

func TestBottomKOrderIndependent(t *testing.T) {
	// Feeding the same items in two different orders must retain the
	// identical set — the property Algorithm R reservoirs lack.
	const n, k = 10000, 64
	fwd, rev := NewBottomK(k), NewBottomK(k)
	for i := 0; i < n; i++ {
		key := Mix64(uint64(i))
		fwd.Offer(key, uint64(i), [3]float64{float64(i), 0, 0})
	}
	for i := n - 1; i >= 0; i-- {
		key := Mix64(uint64(i))
		rev.Offer(key, uint64(i), [3]float64{float64(i), 0, 0})
	}
	a, b := fwd.Items(), rev.Items()
	if len(a) != k || len(b) != k {
		t.Fatalf("retained %d and %d items, want %d", len(a), len(b), k)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("item %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	if fwd.Seen() != n {
		t.Errorf("seen = %d, want %d", fwd.Seen(), n)
	}
}

func TestBottomKMergeEqualsSingleStream(t *testing.T) {
	// Sharding the stream and merging must retain exactly what a single
	// sketch over the whole stream retains, regardless of merge order.
	const n, k, shards = 5000, 128, 7
	whole := NewBottomK(k)
	parts := make([]*BottomK, shards)
	for s := range parts {
		parts[s] = NewBottomK(k)
	}
	for i := 0; i < n; i++ {
		key := Mix64(uint64(i) * 2654435761)
		vals := [3]float64{float64(i), float64(i * 2), float64(i * 3)}
		whole.Offer(key, uint64(i), vals)
		parts[i%shards].Offer(key, uint64(i), vals)
	}
	merged := NewBottomK(k)
	for _, p := range parts {
		merged.Merge(p)
	}
	a, b := whole.Items(), merged.Items()
	if len(a) != len(b) {
		t.Fatalf("retained %d vs %d items", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("item %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	if merged.Seen() != whole.Seen() {
		t.Errorf("seen = %d, want %d", merged.Seen(), whole.Seen())
	}
}

func TestBottomKFewerThanK(t *testing.T) {
	b := NewBottomK(100)
	for i := 0; i < 10; i++ {
		b.Offer(uint64(10-i), uint64(i), [3]float64{})
	}
	items := b.Items()
	if len(items) != 10 {
		t.Fatalf("retained %d items, want 10", len(items))
	}
	for i := 1; i < len(items); i++ {
		if items[i].Key <= items[i-1].Key {
			t.Fatalf("items not sorted by key: %v", items)
		}
	}
}

func TestHistBucketIndex(t *testing.T) {
	h := NewHist(100, 2)
	cases := []struct {
		v    float64
		want int
	}{
		{-1, -1}, {0, -1}, {50, -1}, // underflow
		{100, 0}, {150, 0}, {200, 1}, {399, 1}, {400, 2},
	}
	for _, c := range cases {
		if got := h.BucketIndex(c.v); got != c.want {
			t.Errorf("BucketIndex(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestHistRankBucket(t *testing.T) {
	h := NewLatencyHist()
	if got := h.RankBucket(0.95); got != -1 {
		t.Fatalf("empty RankBucket = %d, want -1", got)
	}
	for i := 1; i <= 1000; i++ {
		h.Add(float64(i) * 1000)
	}
	// The P95 rank bucket must contain the value Quantile(0.95) returns.
	b := h.RankBucket(0.95)
	if b < 0 {
		t.Fatal("RankBucket(0.95) = -1 for non-empty hist")
	}
	if got := h.BucketIndex(h.Quantile(0.95)); got != b {
		t.Errorf("Quantile(0.95) lands in bucket %d, RankBucket says %d", got, b)
	}
	// All-underflow histogram: rank sits in the underflow bucket.
	u := NewLatencyHist()
	u.Add(-1)
	u.Add(0)
	if got := u.RankBucket(0.5); got != -1 {
		t.Errorf("underflow RankBucket = %d, want -1", got)
	}
}
