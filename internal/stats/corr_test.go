package stats

import (
	"math"
	"testing"
)

func TestMomentsPerfectCorrelation(t *testing.T) {
	var m Moments
	for i := 0; i < 100; i++ {
		x := float64(i)
		m.Add(x, 3*x+5)
	}
	if r := m.Pearson(); math.Abs(r-1) > 1e-9 {
		t.Errorf("Pearson = %v, want 1", r)
	}
	if s := m.Slope(); math.Abs(s-3) > 1e-9 {
		t.Errorf("slope = %v, want 3", s)
	}
	if b := m.Intercept(); math.Abs(b-5) > 1e-9 {
		t.Errorf("intercept = %v, want 5", b)
	}
}

func TestMomentsAntiCorrelation(t *testing.T) {
	var m Moments
	for i := 0; i < 50; i++ {
		m.Add(float64(i), -2*float64(i))
	}
	if r := m.Pearson(); math.Abs(r+1) > 1e-9 {
		t.Errorf("Pearson = %v, want -1", r)
	}
}

func TestMomentsConstantInput(t *testing.T) {
	var m Moments
	for i := 0; i < 10; i++ {
		m.Add(5, float64(i))
	}
	if r := m.Pearson(); r != 0 {
		t.Errorf("Pearson with constant x = %v, want 0", r)
	}
	if s := m.Slope(); s != 0 {
		t.Errorf("slope with constant x = %v", s)
	}
}

func TestMomentsIndependence(t *testing.T) {
	rng := NewRNG(11)
	var m Moments
	for i := 0; i < 100000; i++ {
		m.Add(rng.Float64(), rng.Float64())
	}
	if r := m.Pearson(); math.Abs(r) > 0.02 {
		t.Errorf("independent Pearson = %v, want ~0", r)
	}
	if math.Abs(m.MeanX()-0.5) > 0.01 || math.Abs(m.MeanY()-0.5) > 0.01 {
		t.Errorf("means (%v, %v) deviate from 0.5", m.MeanX(), m.MeanY())
	}
	if math.Abs(m.VarX()-1.0/12) > 0.005 {
		t.Errorf("variance %v deviates from 1/12", m.VarX())
	}
}

func TestPearsonSliceEdgeCases(t *testing.T) {
	if Pearson([]float64{1}, []float64{2}) != 0 {
		t.Error("short slice should give 0")
	}
	if Pearson([]float64{1, 2}, []float64{3}) != 0 {
		t.Error("mismatched length should give 0")
	}
}

func TestSpearmanMonotoneNonlinear(t *testing.T) {
	// Spearman is 1 for any monotone relationship, even wildly nonlinear.
	xs, ys := make([]float64, 100), make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = math.Exp(float64(i) / 10)
	}
	if r := SpearmanRank(xs, ys); math.Abs(r-1) > 1e-9 {
		t.Errorf("Spearman = %v, want 1", r)
	}
}

func TestSpearmanTies(t *testing.T) {
	xs := []float64{1, 2, 2, 3}
	ys := []float64{10, 20, 20, 30}
	if r := SpearmanRank(xs, ys); math.Abs(r-1) > 1e-9 {
		t.Errorf("Spearman with ties = %v, want 1", r)
	}
}

func TestSpearmanUncorrelatedHeavyTail(t *testing.T) {
	rng := NewRNG(12)
	p := Pareto{Min: 1, Alpha: 0.8} // infinite-variance tail
	xs, ys := make([]float64, 5000), make([]float64, 5000)
	for i := range xs {
		xs[i] = p.Sample(rng)
		ys[i] = p.Sample(rng)
	}
	if r := SpearmanRank(xs, ys); math.Abs(r) > 0.05 {
		t.Errorf("Spearman of independent heavy tails = %v, want ~0", r)
	}
}

func TestBucketize(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	ys := []float64{0, 10, 20, 30, 40, 50, 60, 70, 80, 90}
	centers, means := Bucketize(xs, ys, 5)
	if len(centers) != 5 {
		t.Fatalf("got %d buckets, want 5", len(centers))
	}
	for i := 1; i < len(means); i++ {
		if means[i] <= means[i-1] {
			t.Errorf("bucket means not increasing: %v", means)
		}
	}
}

func TestBucketizeEdgeCases(t *testing.T) {
	if c, _ := Bucketize(nil, nil, 5); c != nil {
		t.Error("nil input should return nil")
	}
	c, m := Bucketize([]float64{3, 3, 3}, []float64{1, 2, 3}, 4)
	if len(c) != 1 || c[0] != 3 || math.Abs(m[0]-2) > 1e-9 {
		t.Errorf("constant-x bucketize = %v %v", c, m)
	}
}

func TestReservoirExactUnderCapacity(t *testing.T) {
	r := NewReservoir(100, NewRNG(13))
	for i := 0; i < 50; i++ {
		r.Add(float64(i))
	}
	if r.Seen() != 50 || len(r.Values()) != 50 {
		t.Fatalf("seen=%d len=%d", r.Seen(), len(r.Values()))
	}
}

func TestReservoirUniformity(t *testing.T) {
	// Each of the first 1000 values should survive with p = cap/1000.
	const trials = 300
	const capN = 50
	const stream = 1000
	hitsFirst := 0
	for trial := 0; trial < trials; trial++ {
		r := NewReservoir(capN, NewRNG(uint64(trial)))
		for i := 0; i < stream; i++ {
			r.Add(float64(i))
		}
		for _, v := range r.Values() {
			if v == 0 {
				hitsFirst++
			}
		}
	}
	got := float64(hitsFirst) / trials
	want := float64(capN) / stream
	if math.Abs(got-want) > 0.03 {
		t.Errorf("retention of first element = %v, want ~%v", got, want)
	}
}

func TestItemReservoir(t *testing.T) {
	type trace struct{ id int }
	r := NewItemReservoir[trace](10, NewRNG(14))
	for i := 0; i < 1000; i++ {
		r.Add(trace{id: i})
	}
	if len(r.Items()) != 10 {
		t.Fatalf("len = %d", len(r.Items()))
	}
	if r.Seen() != 1000 {
		t.Fatalf("seen = %d", r.Seen())
	}
}

func TestReservoirSampleConversion(t *testing.T) {
	r := NewReservoir(10, NewRNG(15))
	for i := 1; i <= 5; i++ {
		r.Add(float64(i))
	}
	s := r.Sample()
	if s.Len() != 5 {
		t.Fatalf("sample len = %d", s.Len())
	}
	if got := s.Quantile(1); got != 5 {
		t.Errorf("max = %v", got)
	}
}
