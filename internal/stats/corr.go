package stats

import "math"

// Moments accumulates streaming mean/variance/covariance for paired
// observations (x, y). It backs the exogenous-variable correlation
// analysis (Fig. 17/18): x is the exogenous variable (CPU utilization,
// memory bandwidth, ...), y the RPC latency.
type Moments struct {
	n                  uint64
	meanX, meanY       float64
	m2X, m2Y, covXYSum float64
}

// Add records one (x, y) pair using Welford's online update.
func (m *Moments) Add(x, y float64) {
	m.n++
	dx := x - m.meanX
	m.meanX += dx / float64(m.n)
	m.m2X += dx * (x - m.meanX)
	dy := y - m.meanY
	m.meanY += dy / float64(m.n)
	m.m2Y += dy * (y - m.meanY)
	m.covXYSum += dx * (y - m.meanY)
}

// N returns the number of pairs.
func (m *Moments) N() uint64 { return m.n }

// MeanX returns the mean of x.
func (m *Moments) MeanX() float64 { return m.meanX }

// MeanY returns the mean of y.
func (m *Moments) MeanY() float64 { return m.meanY }

// VarX returns the population variance of x.
func (m *Moments) VarX() float64 {
	if m.n == 0 {
		return 0
	}
	return m.m2X / float64(m.n)
}

// VarY returns the population variance of y.
func (m *Moments) VarY() float64 {
	if m.n == 0 {
		return 0
	}
	return m.m2Y / float64(m.n)
}

// Cov returns the population covariance.
func (m *Moments) Cov() float64 {
	if m.n == 0 {
		return 0
	}
	return m.covXYSum / float64(m.n)
}

// Pearson returns the Pearson correlation coefficient, or 0 when either
// variable is constant.
func (m *Moments) Pearson() float64 {
	sx, sy := math.Sqrt(m.VarX()), math.Sqrt(m.VarY())
	if sx == 0 || sy == 0 {
		return 0
	}
	return m.Cov() / (sx * sy)
}

// Slope returns the least-squares slope of y on x.
func (m *Moments) Slope() float64 {
	vx := m.VarX()
	if vx == 0 {
		return 0
	}
	return m.Cov() / vx
}

// Intercept returns the least-squares intercept of y on x.
func (m *Moments) Intercept() float64 { return m.meanY - m.Slope()*m.meanX }

// Pearson computes the correlation of two equal-length slices. It is a
// convenience over Moments for batch analyses; it returns 0 when the
// slices are shorter than 2 or either is constant.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	var m Moments
	for i := range xs {
		m.Add(xs[i], ys[i])
	}
	return m.Pearson()
}

// SpearmanRank computes Spearman's rank correlation, which the CPU-cost
// analysis (Fig. 21) uses to show that neither RPC size nor latency
// predicts CPU cost: rank correlation is robust to the heavy tails that
// would dominate Pearson.
func SpearmanRank(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	return Pearson(ranks(xs), ranks(ys))
}

// ranks returns average ranks (1-based, ties averaged).
func ranks(vals []float64) []float64 {
	n := len(vals)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	// Insertion-free sort of indices by value.
	quicksortIdx(vals, idx)
	out := make([]float64, n)
	i := 0
	for i < n {
		j := i
		for j+1 < n && vals[idx[j+1]] == vals[idx[i]] {
			j++
		}
		avg := (float64(i) + float64(j)) / 2.0
		for k := i; k <= j; k++ {
			out[idx[k]] = avg + 1
		}
		i = j + 1
	}
	return out
}

func quicksortIdx(vals []float64, idx []int) {
	if len(idx) < 2 {
		return
	}
	// Median-of-three pivot to avoid quadratic behavior on sorted input.
	mid := len(idx) / 2
	if vals[idx[mid]] < vals[idx[0]] {
		idx[mid], idx[0] = idx[0], idx[mid]
	}
	if vals[idx[len(idx)-1]] < vals[idx[0]] {
		idx[len(idx)-1], idx[0] = idx[0], idx[len(idx)-1]
	}
	if vals[idx[len(idx)-1]] < vals[idx[mid]] {
		idx[len(idx)-1], idx[mid] = idx[mid], idx[len(idx)-1]
	}
	pivot := vals[idx[mid]]
	i, j := 0, len(idx)-1
	for i <= j {
		for vals[idx[i]] < pivot {
			i++
		}
		for vals[idx[j]] > pivot {
			j--
		}
		if i <= j {
			idx[i], idx[j] = idx[j], idx[i]
			i++
			j--
		}
	}
	quicksortIdx(vals, idx[:j+1])
	quicksortIdx(vals, idx[i:])
}

// Bucketize groups paired observations by x into nBuckets equal-width
// buckets over [min(x), max(x)] and returns, for each non-empty bucket,
// its center and the mean of y. This is the aggregation behind Fig. 17's
// exogenous-variable panels.
func Bucketize(xs, ys []float64, nBuckets int) (centers, meanYs []float64) {
	if len(xs) != len(ys) || len(xs) == 0 || nBuckets <= 0 {
		return nil, nil
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if hi == lo {
		return []float64{lo}, []float64{mean(ys)}
	}
	width := (hi - lo) / float64(nBuckets)
	sums := make([]float64, nBuckets)
	counts := make([]int, nBuckets)
	for i, x := range xs {
		b := int((x - lo) / width)
		if b >= nBuckets {
			b = nBuckets - 1
		}
		sums[b] += ys[i]
		counts[b]++
	}
	for b := 0; b < nBuckets; b++ {
		if counts[b] == 0 {
			continue
		}
		centers = append(centers, lo+(float64(b)+0.5)*width)
		meanYs = append(meanYs, sums[b]/float64(counts[b]))
	}
	return centers, meanYs
}

func mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var s float64
	for _, v := range vals {
		s += v
	}
	return s / float64(len(vals))
}
