package stats

// Reservoir keeps a uniform random sample of a stream of float64 values
// using Vitter's Algorithm R. Dapper-style tracing cannot retain every
// span, so per-method analyses that need raw values (exact quantiles,
// correlation) sample with a reservoir, exactly as the paper's tracing
// service samples full RPC trees.
type Reservoir struct {
	cap  int
	seen uint64
	vals []float64
	rng  *RNG
}

// NewReservoir returns a reservoir holding at most capacity values.
func NewReservoir(capacity int, rng *RNG) *Reservoir {
	if capacity <= 0 {
		panic("stats: reservoir capacity must be positive")
	}
	return &Reservoir{cap: capacity, vals: make([]float64, 0, capacity), rng: rng}
}

// Add offers one value to the reservoir.
func (r *Reservoir) Add(v float64) {
	r.seen++
	if len(r.vals) < r.cap {
		r.vals = append(r.vals, v)
		return
	}
	j := r.rng.Uint64() % r.seen
	if j < uint64(r.cap) {
		r.vals[j] = v
	}
}

// Seen returns how many values were offered in total.
func (r *Reservoir) Seen() uint64 { return r.seen }

// Values returns the retained sample. Callers must not modify it.
func (r *Reservoir) Values() []float64 { return r.vals }

// Sample converts the reservoir contents into a Sample for exact-quantile
// queries.
func (r *Reservoir) Sample() *Sample {
	s := NewSample(len(r.vals))
	for _, v := range r.vals {
		s.Add(v)
	}
	return s
}

// ItemReservoir is a generic uniform reservoir over arbitrary items, used
// to retain whole trace trees rather than scalar values.
type ItemReservoir[T any] struct {
	cap   int
	seen  uint64
	items []T
	rng   *RNG
}

// NewItemReservoir returns a reservoir holding at most capacity items.
func NewItemReservoir[T any](capacity int, rng *RNG) *ItemReservoir[T] {
	if capacity <= 0 {
		panic("stats: reservoir capacity must be positive")
	}
	return &ItemReservoir[T]{cap: capacity, items: make([]T, 0, capacity), rng: rng}
}

// Add offers one item.
func (r *ItemReservoir[T]) Add(item T) {
	r.seen++
	if len(r.items) < r.cap {
		r.items = append(r.items, item)
		return
	}
	j := r.rng.Uint64() % r.seen
	if j < uint64(r.cap) {
		r.items[j] = item
	}
}

// Seen returns how many items were offered.
func (r *ItemReservoir[T]) Seen() uint64 { return r.seen }

// Items returns the retained items. Callers must not modify the slice.
func (r *ItemReservoir[T]) Items() []T { return r.items }
