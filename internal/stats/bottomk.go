package stats

import "sort"

// BottomK keeps the k items with the smallest (Key, Tie) pairs seen so
// far. When Key is a hash of a stable per-item identifier, the retained
// set is a uniform sample of the stream that — unlike Algorithm R
// reservoirs — does not depend on observation order, needs no RNG, and
// merges exactly: Merge(a, b) retains precisely the items that a single
// sketch fed both streams would retain. That makes it the right
// subsampling primitive for sharded, streaming analyses that must produce
// identical results regardless of how the stream was partitioned.
type BottomK struct {
	k     int
	seen  uint64
	items []BottomKItem
}

// BottomKItem is one retained item: the hash key it was ordered by, a
// tiebreaker for items with equal keys, and a small fixed payload.
type BottomKItem struct {
	Key  uint64
	Tie  uint64
	Vals [3]float64
}

// NewBottomK returns a sketch retaining at most k items.
func NewBottomK(k int) *BottomK {
	if k <= 0 {
		panic("stats: bottom-k capacity must be positive")
	}
	return &BottomK{k: k, items: make([]BottomKItem, 0, 2*k)}
}

// Mix64 is a SplitMix64-style finalizer suitable for deriving BottomK
// keys from structured identifiers (trace and span IDs).
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Offer records one item. Items that cannot be among the k smallest are
// discarded lazily: the buffer is pruned whenever it reaches 2k, keeping
// amortized O(log k) cost per offer.
func (b *BottomK) Offer(key, tie uint64, vals [3]float64) {
	b.seen++
	b.items = append(b.items, BottomKItem{Key: key, Tie: tie, Vals: vals})
	if len(b.items) >= 2*b.k {
		b.prune()
	}
}

// Merge folds another sketch into b. The result retains exactly the items
// a single sketch observing both streams would retain.
func (b *BottomK) Merge(other *BottomK) {
	if other == nil {
		return
	}
	b.seen += other.seen
	b.items = append(b.items, other.items...)
	if len(b.items) > b.k {
		b.prune()
	}
}

// prune sorts the buffer and keeps only the k smallest items. Discarded
// items are ranked above the current kth smallest and so can never
// re-enter the final set.
func (b *BottomK) prune() {
	sortBottomK(b.items)
	if len(b.items) > b.k {
		b.items = b.items[:b.k]
	}
}

// Seen returns how many items were offered in total.
func (b *BottomK) Seen() uint64 { return b.seen }

// Items returns the retained items sorted ascending by (Key, Tie). The
// returned slice aliases the sketch; callers must not modify it.
func (b *BottomK) Items() []BottomKItem {
	b.prune()
	return b.items
}

func sortBottomK(items []BottomKItem) {
	sort.Slice(items, func(i, j int) bool {
		if items[i].Key != items[j].Key {
			return items[i].Key < items[j].Key
		}
		return items[i].Tie < items[j].Tie
	})
}
