package stats

import (
	"fmt"
	"math"
	"sort"
)

// Hist is a log-bucketed histogram for positive values spanning many orders
// of magnitude (nanosecond latencies through multi-second tails, or byte
// sizes from 64 B through hundreds of MB). Bucket boundaries grow
// geometrically by Growth per bucket, giving a bounded relative error on
// quantile estimates of roughly (Growth-1)/2.
//
// Hist is the distribution value type stored in Monarch time-series points
// and is the working representation for every per-method analysis. The
// zero value is not usable; construct with NewHist or NewLatencyHist.
type Hist struct {
	min    float64 // lower bound of bucket 0
	growth float64 // geometric bucket growth factor
	logG   float64 // cached log(growth)

	counts  []uint64 // counts[i] covers [min*growth^i, min*growth^(i+1))
	under   uint64   // values below min
	total   uint64
	sum     float64
	sumSq   float64
	maxSeen float64
	minSeen float64
}

// DefaultGrowth gives ~2.5% relative quantile error, which is far below the
// run-to-run variance of any latency distribution we model.
const DefaultGrowth = 1.05

// NewHist returns a histogram whose first bucket starts at min and whose
// buckets grow by the given factor. min must be positive and growth > 1.
func NewHist(min, growth float64) *Hist {
	if min <= 0 || growth <= 1 {
		panic(fmt.Sprintf("stats: invalid histogram shape min=%v growth=%v", min, growth))
	}
	return &Hist{min: min, growth: growth, logG: math.Log(growth), minSeen: math.Inf(1)}
}

// NewLatencyHist returns a histogram tuned for latencies expressed in
// nanoseconds: first bucket at 100 ns, default growth.
func NewLatencyHist() *Hist { return NewHist(100, DefaultGrowth) }

// NewSizeHist returns a histogram tuned for message sizes in bytes: first
// bucket at 1 B, default growth.
func NewSizeHist() *Hist { return NewHist(1, DefaultGrowth) }

// bucket returns the bucket index for v (which must be >= h.min).
func (h *Hist) bucket(v float64) int {
	return int(math.Log(v/h.min) / h.logG)
}

// Add records one observation. Non-positive and NaN values are recorded in
// the underflow bucket so totals still reconcile.
func (h *Hist) Add(v float64) { h.AddN(v, 1) }

// AddN records n observations of value v.
func (h *Hist) AddN(v float64, n uint64) {
	if n == 0 {
		return
	}
	h.total += n
	if !(v > 0) || math.IsNaN(v) { // catches v <= 0 and NaN
		h.under += n
		return
	}
	h.sum += v * float64(n)
	h.sumSq += v * v * float64(n)
	if v > h.maxSeen {
		h.maxSeen = v
	}
	if v < h.minSeen {
		h.minSeen = v
	}
	if v < h.min {
		h.under += n
		return
	}
	b := h.bucket(v)
	if b >= len(h.counts) {
		grown := make([]uint64, b+1)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[b] += n
}

// Merge adds all observations recorded in other into h. The histograms must
// have identical shape (min and growth).
func (h *Hist) Merge(other *Hist) {
	if other == nil || other.total == 0 {
		return
	}
	if h.min != other.min || h.growth != other.growth {
		panic("stats: merging histograms with different shapes")
	}
	if len(other.counts) > len(h.counts) {
		grown := make([]uint64, len(other.counts))
		copy(grown, h.counts)
		h.counts = grown
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.under += other.under
	h.total += other.total
	h.sum += other.sum
	h.sumSq += other.sumSq
	if other.maxSeen > h.maxSeen {
		h.maxSeen = other.maxSeen
	}
	if other.minSeen < h.minSeen {
		h.minSeen = other.minSeen
	}
}

// Count returns the total number of observations.
func (h *Hist) Count() uint64 { return h.total }

// Sum returns the sum of all positive observations.
func (h *Hist) Sum() float64 { return h.sum }

// Mean returns the arithmetic mean of positive observations, or 0 when
// there are none.
func (h *Hist) Mean() float64 {
	n := h.total - h.under
	if n == 0 {
		return 0
	}
	return h.sum / float64(n)
}

// Stddev returns the (population) standard deviation of positive
// observations.
func (h *Hist) Stddev() float64 {
	n := float64(h.total - h.under)
	if n < 1 {
		return 0
	}
	m := h.sum / n
	v := h.sumSq/n - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Max returns the largest observation seen (exact, not bucketed).
func (h *Hist) Max() float64 { return h.maxSeen }

// Min returns the smallest positive observation seen, or +Inf when empty.
func (h *Hist) Min() float64 { return h.minSeen }

// Quantile returns an estimate of the q-quantile (0 <= q <= 1) using
// within-bucket geometric interpolation. Underflow observations are treated
// as h.min. Returns 0 for an empty histogram.
func (h *Hist) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank in [1, total].
	rank := uint64(math.Ceil(q * float64(h.total)))
	if rank == 0 {
		rank = 1
	}
	if rank <= h.under {
		return math.Min(h.min, h.minSeen)
	}
	seen := h.under
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		if seen+c >= rank {
			lo := h.min * math.Pow(h.growth, float64(i))
			hi := lo * h.growth
			// Interpolate geometrically within the bucket.
			frac := float64(rank-seen) / float64(c)
			est := lo * math.Pow(hi/lo, frac)
			// Clamp to the exact observed extrema for tighter tails.
			if est > h.maxSeen {
				est = h.maxSeen
			}
			if est < h.minSeen {
				est = h.minSeen
			}
			return est
		}
		seen += c
	}
	return h.maxSeen
}

// Percentile is Quantile with p expressed in percent (P50 => 50).
func (h *Hist) Percentile(p float64) float64 { return h.Quantile(p / 100) }

// BucketIndex returns the index of the bucket that counts v, or -1 when v
// lands in the underflow bucket (non-positive, NaN, or below the
// histogram floor). It lets accumulators maintain per-bucket side state
// (e.g. conditional sums) in parallel with the histogram's own counts.
func (h *Hist) BucketIndex(v float64) int {
	if !(v > 0) || math.IsNaN(v) || v < h.min {
		return -1
	}
	return h.bucket(v)
}

// RankBucket returns the index of the bucket holding the q-quantile's
// rank — the same rank Quantile walks to — or -1 when that rank falls in
// the underflow bucket or the histogram is empty. Combined with
// BucketIndex it supports tail-conditional aggregation ("sum of X over
// observations at or above P95") without retaining raw values.
func (h *Hist) RankBucket(q float64) int {
	if h.total == 0 {
		return -1
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(h.total)))
	if rank == 0 {
		rank = 1
	}
	if rank <= h.under {
		return -1
	}
	seen := h.under
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		if seen+c >= rank {
			return i
		}
		seen += c
	}
	return len(h.counts) - 1
}

// CountAbove returns how many observations fall in buckets whose lower
// bound is >= v (approximate to bucket resolution).
func (h *Hist) CountAbove(v float64) uint64 {
	if h.total == 0 {
		return 0
	}
	if v <= h.min {
		return h.total - h.under
	}
	b := h.bucket(v)
	var n uint64
	for i := b; i < len(h.counts); i++ {
		n += h.counts[i]
	}
	return n
}

// Fraction returns the fraction of observations at or below v.
func (h *Hist) Fraction(v float64) float64 {
	if h.total == 0 {
		return 0
	}
	above := h.CountAbove(v)
	return 1 - float64(above)/float64(h.total)
}

// Buckets calls fn for every non-empty bucket with its bounds and count,
// in increasing value order. Used by renderers and by Monarch encoding.
func (h *Hist) Buckets(fn func(lo, hi float64, count uint64)) {
	if h.under > 0 {
		fn(0, h.min, h.under)
	}
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		lo := h.min * math.Pow(h.growth, float64(i))
		fn(lo, lo*h.growth, c)
	}
}

// HistDump is the serializable form of a Hist: everything needed to
// reconstruct the histogram in another process, JSON-tagged so
// cross-process telemetry merges (the cluster harness's child → parent
// reports) can ship distributions over a pipe.
type HistDump struct {
	Min     float64  `json:"min"`
	Growth  float64  `json:"growth"`
	Counts  []uint64 `json:"counts,omitempty"`
	Under   uint64   `json:"under,omitempty"`
	Total   uint64   `json:"total"`
	Sum     float64  `json:"sum"`
	SumSq   float64  `json:"sum_sq"`
	MaxSeen float64  `json:"max_seen"`
	MinSeen float64  `json:"min_seen"` // +Inf is encoded as 0 with Total==Under
}

// Export returns a serializable copy of the histogram's full state.
func (h *Hist) Export() HistDump {
	minSeen := h.minSeen
	if math.IsInf(minSeen, 1) {
		minSeen = 0 // JSON cannot carry +Inf; Import restores it
	}
	return HistDump{
		Min:     h.min,
		Growth:  h.growth,
		Counts:  append([]uint64(nil), h.counts...),
		Under:   h.under,
		Total:   h.total,
		Sum:     h.sum,
		SumSq:   h.sumSq,
		MaxSeen: h.maxSeen,
		MinSeen: minSeen,
	}
}

// Import reconstructs a histogram from an exported dump. The zero dump
// yields an empty latency-shaped histogram.
func Import(d HistDump) *Hist {
	if d.Min <= 0 || d.Growth <= 1 {
		return NewLatencyHist()
	}
	h := NewHist(d.Min, d.Growth)
	h.counts = append([]uint64(nil), d.Counts...)
	h.under = d.Under
	h.total = d.Total
	h.sum = d.Sum
	h.sumSq = d.SumSq
	h.maxSeen = d.MaxSeen
	if d.MinSeen > 0 {
		h.minSeen = d.MinSeen
	}
	return h
}

// Clone returns a deep copy of h.
func (h *Hist) Clone() *Hist {
	c := *h
	c.counts = append([]uint64(nil), h.counts...)
	return &c
}

// Reset removes all observations, keeping the bucket shape.
func (h *Hist) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.counts = h.counts[:0]
	h.under, h.total = 0, 0
	h.sum, h.sumSq = 0, 0
	h.maxSeen, h.minSeen = 0, math.Inf(1)
}

// Summary holds the standard percentile summary reported for each method
// in the paper's per-method figures.
type Summary struct {
	Count             uint64
	Mean              float64
	P1, P10, P25, P50 float64
	P75, P90, P95     float64
	P99, P999         float64
	Max               float64
}

// Summarize computes the standard percentile summary.
func (h *Hist) Summarize() Summary {
	return Summary{
		Count: h.Count(),
		Mean:  h.Mean(),
		P1:    h.Percentile(1),
		P10:   h.Percentile(10),
		P25:   h.Percentile(25),
		P50:   h.Percentile(50),
		P75:   h.Percentile(75),
		P90:   h.Percentile(90),
		P95:   h.Percentile(95),
		P99:   h.Percentile(99),
		P999:  h.Percentile(99.9),
		Max:   h.Max(),
	}
}

// QuantileOf returns the empirical quantile of v: the fraction of samples
// strictly below v's bucket plus half of v's own bucket. Useful for
// locating a value inside a distribution (e.g., tail classification).
func (h *Hist) QuantileOf(v float64) float64 {
	if h.total == 0 {
		return 0
	}
	if !(v > 0) || v < h.min {
		return float64(h.under) / (2 * float64(h.total))
	}
	b := h.bucket(v)
	seen := h.under
	for i, c := range h.counts {
		if i >= b {
			if i == b {
				seen += c / 2
			}
			break
		}
		seen += c
	}
	return float64(seen) / float64(h.total)
}

// Sample holds raw observations and computes exact quantiles. It is used
// where the paper needs exact per-trace statistics (what-if analysis,
// small per-service breakdowns) rather than bucketed aggregates.
type Sample struct {
	vals   []float64
	sorted bool
}

// NewSample returns an empty sample set with the given capacity hint.
func NewSample(capacity int) *Sample {
	return &Sample{vals: make([]float64, 0, capacity)}
}

// Add appends one observation.
func (s *Sample) Add(v float64) {
	s.vals = append(s.vals, v)
	s.sorted = false
}

// Len returns the number of observations.
func (s *Sample) Len() int { return len(s.vals) }

// Values returns the underlying observations in insertion order when the
// sample has never been sorted, or in ascending order afterwards. Callers
// must not modify the returned slice.
func (s *Sample) Values() []float64 { return s.vals }

func (s *Sample) sort() {
	if !s.sorted {
		sort.Float64s(s.vals)
		s.sorted = true
	}
}

// Quantile returns the exact q-quantile using linear interpolation between
// order statistics. Returns 0 for an empty sample.
func (s *Sample) Quantile(q float64) float64 {
	if len(s.vals) == 0 {
		return 0
	}
	s.sort()
	if q <= 0 {
		return s.vals[0]
	}
	if q >= 1 {
		return s.vals[len(s.vals)-1]
	}
	pos := q * float64(len(s.vals)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(s.vals) {
		return s.vals[len(s.vals)-1]
	}
	return s.vals[i]*(1-frac) + s.vals[i+1]*frac
}

// Percentile is Quantile with p in percent.
func (s *Sample) Percentile(p float64) float64 { return s.Quantile(p / 100) }

// Mean returns the arithmetic mean, or 0 when empty.
func (s *Sample) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.vals {
		sum += v
	}
	return sum / float64(len(s.vals))
}

// Sum returns the total of all observations.
func (s *Sample) Sum() float64 {
	var sum float64
	for _, v := range s.vals {
		sum += v
	}
	return sum
}
