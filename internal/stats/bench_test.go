package stats

import "testing"

func BenchmarkHistAdd(b *testing.B) {
	h := NewLatencyHist()
	rng := NewRNG(1)
	vals := make([]float64, 4096)
	for i := range vals {
		vals[i] = LogNormal{Mu: 13, Sigma: 2}.Sample(rng)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Add(vals[i&4095])
	}
}

func BenchmarkHistQuantile(b *testing.B) {
	h := NewLatencyHist()
	rng := NewRNG(2)
	for i := 0; i < 100000; i++ {
		h.Add(LogNormal{Mu: 13, Sigma: 2}.Sample(rng))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if h.Quantile(0.99) <= 0 {
			b.Fatal("bad quantile")
		}
	}
}

func BenchmarkBottomKOffer(b *testing.B) {
	k := NewBottomK(1 << 14)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := Mix64(uint64(i))
		k.Offer(x, uint64(i), [3]float64{float64(i), float64(i * 2), float64(i * 3)})
	}
}

func BenchmarkLogNormalSample(b *testing.B) {
	rng := NewRNG(3)
	d := LogNormal{Mu: 13, Sigma: 1.5}
	for i := 0; i < b.N; i++ {
		if d.Sample(rng) <= 0 {
			b.Fatal("bad sample")
		}
	}
}

func BenchmarkMixtureSample(b *testing.B) {
	rng := NewRNG(4)
	m := NewMixture(
		[]Dist{LogNormal{Mu: 10, Sigma: 1}, LogNormal{Mu: 14, Sigma: 0.6}, Pareto{Min: 1e6, Alpha: 1.2, Max: 1e10}},
		[]float64{0.6, 0.35, 0.05},
	)
	for i := 0; i < b.N; i++ {
		if m.Sample(rng) <= 0 {
			b.Fatal("bad sample")
		}
	}
}

func BenchmarkZipfSample(b *testing.B) {
	rng := NewRNG(5)
	z := NewZipf(10000, 1.2, 2)
	for i := 0; i < b.N; i++ {
		if z.Sample(rng) < 0 {
			b.Fatal("bad rank")
		}
	}
}
