package stats

import (
	"math"
	"testing"
	"testing/quick"
)

// sampleQuantile estimates a quantile by drawing n samples.
func sampleQuantile(d Dist, rng *RNG, n int, q float64) float64 {
	s := NewSample(n)
	for i := 0; i < n; i++ {
		s.Add(d.Sample(rng))
	}
	return s.Quantile(q)
}

func TestLogNormalFromMedianP99(t *testing.T) {
	ln := LogNormalFromMedianP99(1e6, 100e6) // 1ms median, 100ms P99
	if got := ln.Quantile(0.5); math.Abs(got-1e6)/1e6 > 1e-6 {
		t.Errorf("analytic median = %v", got)
	}
	if got := ln.Quantile(0.99); math.Abs(got-100e6)/100e6 > 1e-6 {
		t.Errorf("analytic P99 = %v", got)
	}
	rng := NewRNG(1)
	med := sampleQuantile(ln, rng, 50000, 0.5)
	if math.Abs(med-1e6)/1e6 > 0.05 {
		t.Errorf("sampled median = %v, want ~1e6", med)
	}
}

func TestLogNormalFromQuantiles(t *testing.T) {
	ln := LogNormalFromQuantiles(0.1, 100, 0.9, 10000)
	if got := ln.Quantile(0.1); math.Abs(got-100)/100 > 1e-6 {
		t.Errorf("Q10 = %v, want 100", got)
	}
	if got := ln.Quantile(0.9); math.Abs(got-10000)/10000 > 1e-6 {
		t.Errorf("Q90 = %v, want 10000", got)
	}
}

func TestLogNormalBadAnchorsPanic(t *testing.T) {
	for _, fn := range []func(){
		func() { LogNormalFromMedianP99(-1, 5) },
		func() { LogNormalFromMedianP99(10, 5) },
		func() { LogNormalFromQuantiles(0.9, 1, 0.1, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for bad anchors")
				}
			}()
			fn()
		}()
	}
}

func TestParetoQuantileInversion(t *testing.T) {
	p := Pareto{Min: 64, Alpha: 1.3, Max: 1 << 28}
	rng := NewRNG(2)
	for _, q := range []float64{0.1, 0.5, 0.9} {
		analytic := p.Quantile(q)
		sampled := sampleQuantile(p, rng, 80000, q)
		if math.Abs(sampled-analytic)/analytic > 0.08 {
			t.Errorf("q=%v sampled %v vs analytic %v", q, sampled, analytic)
		}
	}
	// Bounds respected.
	for i := 0; i < 1000; i++ {
		v := p.Sample(rng)
		if v < p.Min || v > p.Max {
			t.Fatalf("sample %v outside [%v,%v]", v, p.Min, p.Max)
		}
	}
}

func TestParetoUnboundedMean(t *testing.T) {
	p := Pareto{Min: 1, Alpha: 0.9}
	if !math.IsInf(p.Mean(), 1) {
		t.Errorf("alpha<1 unbounded mean should be +Inf, got %v", p.Mean())
	}
	p2 := Pareto{Min: 2, Alpha: 3}
	if got, want := p2.Mean(), 3.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("mean = %v, want %v", got, want)
	}
}

func TestExponentialAndConstantAndUniform(t *testing.T) {
	rng := NewRNG(3)
	e := Exponential{MeanVal: 50}
	m := 0.0
	n := 50000
	for i := 0; i < n; i++ {
		m += e.Sample(rng)
	}
	m /= float64(n)
	if math.Abs(m-50)/50 > 0.05 {
		t.Errorf("exp mean = %v, want ~50", m)
	}
	if got := e.Quantile(0.5); math.Abs(got-50*math.Ln2)/got > 1e-9 {
		t.Errorf("exp median = %v", got)
	}

	c := Constant{V: 7}
	if c.Sample(rng) != 7 || c.Quantile(0.9) != 7 || c.Mean() != 7 {
		t.Error("constant distribution misbehaved")
	}

	u := Uniform{Lo: 10, Hi: 20}
	for i := 0; i < 1000; i++ {
		v := u.Sample(rng)
		if v < 10 || v >= 20 {
			t.Fatalf("uniform sample %v out of range", v)
		}
	}
	if got := u.Quantile(0.5); got != 15 {
		t.Errorf("uniform median = %v", got)
	}
}

func TestShiftedScaled(t *testing.T) {
	base := Exponential{MeanVal: 10}
	sh := Shifted{Base: base, Offset: 100}
	if got := sh.Mean(); math.Abs(got-110) > 1e-9 {
		t.Errorf("shifted mean = %v", got)
	}
	if got := sh.Quantile(0.5); got <= 100 {
		t.Errorf("shifted quantile %v <= offset", got)
	}
	sc := Scaled{Base: base, Factor: 3}
	if got := sc.Mean(); math.Abs(got-30) > 1e-9 {
		t.Errorf("scaled mean = %v", got)
	}
}

func TestMixtureSamplingWeights(t *testing.T) {
	rng := NewRNG(4)
	m := NewMixture(
		[]Dist{Constant{V: 1}, Constant{V: 1000}},
		[]float64{0.9, 0.1},
	)
	small := 0
	n := 20000
	for i := 0; i < n; i++ {
		if m.Sample(rng) == 1 {
			small++
		}
	}
	frac := float64(small) / float64(n)
	if math.Abs(frac-0.9) > 0.02 {
		t.Errorf("component 0 fraction = %v, want ~0.9", frac)
	}
}

func TestMixtureQuantileNumeric(t *testing.T) {
	m := NewMixture(
		[]Dist{LogNormal{Mu: 0, Sigma: 0.5}, LogNormal{Mu: 5, Sigma: 0.5}},
		[]float64{0.5, 0.5},
	)
	// The 25th percentile must come from the low mode, the 75th from the
	// high mode.
	q25, q75 := m.Quantile(0.25), m.Quantile(0.75)
	if q25 > 3 {
		t.Errorf("Q25 = %v, want low mode (~1)", q25)
	}
	if q75 < 50 {
		t.Errorf("Q75 = %v, want high mode (~150)", q75)
	}
	// CDF(Quantile(q)) ~ q round trip.
	rng := NewRNG(5)
	for _, q := range []float64{0.1, 0.5, 0.9} {
		v := m.Quantile(q)
		// Empirical check.
		below := 0
		n := 30000
		for i := 0; i < n; i++ {
			if m.Sample(rng) <= v {
				below++
			}
		}
		got := float64(below) / float64(n)
		if math.Abs(got-q) > 0.03 {
			t.Errorf("CDF(Quantile(%v)) = %v", q, got)
		}
	}
}

func TestMixtureMean(t *testing.T) {
	m := NewMixture([]Dist{Constant{V: 10}, Constant{V: 20}}, []float64{1, 3})
	if got := m.Mean(); math.Abs(got-17.5) > 1e-9 {
		t.Errorf("mixture mean = %v, want 17.5", got)
	}
}

func TestMixtureValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewMixture(nil, nil) },
		func() { NewMixture([]Dist{Constant{V: 1}}, []float64{-1}) },
		func() { NewMixture([]Dist{Constant{V: 1}}, []float64{0}) },
		func() { NewMixture([]Dist{Constant{V: 1}}, []float64{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for invalid mixture")
				}
			}()
			fn()
		}()
	}
}

func TestNormQuantileRoundTrip(t *testing.T) {
	for _, q := range []float64{0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999} {
		z := NormQuantile(q)
		back := normCDF(z)
		if math.Abs(back-q) > 1e-8 {
			t.Errorf("normCDF(NormQuantile(%v)) = %v", q, back)
		}
	}
	if !math.IsInf(NormQuantile(0), -1) || !math.IsInf(NormQuantile(1), 1) {
		t.Error("extreme quantiles should be infinite")
	}
	if NormQuantile(0.5) != 0 && math.Abs(NormQuantile(0.5)) > 1e-9 {
		t.Errorf("NormQuantile(0.5) = %v", NormQuantile(0.5))
	}
}

func TestZipfShares(t *testing.T) {
	z := NewZipf(1000, 1.2, 2)
	// Shares must sum to 1 and decrease with rank.
	var total float64
	prev := math.Inf(1)
	for i := 0; i < z.N; i++ {
		s := z.Share(i)
		if s > prev+1e-12 {
			t.Fatalf("share not monotone at rank %d: %v > %v", i, s, prev)
		}
		prev = s
		total += s
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("shares sum to %v", total)
	}
	if z.CumShare(0) != 0 || z.CumShare(z.N) != 1 {
		t.Error("CumShare boundary conditions wrong")
	}
	// Sampling distribution matches shares.
	rng := NewRNG(6)
	count0 := 0
	n := 50000
	for i := 0; i < n; i++ {
		if z.Sample(rng) == 0 {
			count0++
		}
	}
	want := z.Share(0)
	got := float64(count0) / float64(n)
	if math.Abs(got-want) > 0.02 {
		t.Errorf("rank-0 frequency %v, want %v", got, want)
	}
}

func TestDistQuantileMonotoneProperty(t *testing.T) {
	dists := []Dist{
		LogNormal{Mu: 10, Sigma: 2},
		Pareto{Min: 64, Alpha: 1.5, Max: 1e9},
		Exponential{MeanVal: 123},
		Uniform{Lo: 5, Hi: 50},
		Shifted{Base: Exponential{MeanVal: 10}, Offset: 3},
		Scaled{Base: LogNormal{Mu: 1, Sigma: 1}, Factor: 7},
	}
	f := func(a, b float64) bool {
		qa := math.Mod(math.Abs(a), 1)
		qb := math.Mod(math.Abs(b), 1)
		if qa > qb {
			qa, qb = qb, qa
		}
		if qa == 0 || qb >= 1 {
			return true
		}
		for _, d := range dists {
			if d.Quantile(qa) > d.Quantile(qb)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
