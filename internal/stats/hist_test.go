package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHistEmpty(t *testing.T) {
	h := NewLatencyHist()
	if h.Count() != 0 {
		t.Fatalf("empty count = %d", h.Count())
	}
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v", q)
	}
	if m := h.Mean(); m != 0 {
		t.Fatalf("empty mean = %v", m)
	}
}

func TestHistSingleValue(t *testing.T) {
	h := NewLatencyHist()
	h.Add(1e6) // 1ms in ns
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		got := h.Quantile(q)
		if math.Abs(got-1e6)/1e6 > 0.06 {
			t.Errorf("Quantile(%v) = %v, want ~1e6", q, got)
		}
	}
	if h.Max() != 1e6 {
		t.Errorf("Max = %v", h.Max())
	}
	if h.Min() != 1e6 {
		t.Errorf("Min = %v", h.Min())
	}
}

func TestHistQuantileAccuracy(t *testing.T) {
	// Against a known uniform grid the quantile estimate must stay within
	// bucket resolution.
	h := NewHist(1, DefaultGrowth)
	n := 10000
	for i := 1; i <= n; i++ {
		h.Add(float64(i))
	}
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		want := q * float64(n)
		got := h.Quantile(q)
		if math.Abs(got-want)/want > 0.06 {
			t.Errorf("Quantile(%v) = %v, want ~%v", q, got, want)
		}
	}
}

func TestHistUnderflow(t *testing.T) {
	h := NewHist(100, DefaultGrowth)
	h.Add(5)  // below min
	h.Add(-3) // non-positive: counted but valueless
	h.Add(math.NaN())
	h.Add(200)
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	// Median should fall in the underflow region -> reported as <= min.
	if q := h.Quantile(0.25); q > 100 {
		t.Errorf("low quantile = %v, want <= min", q)
	}
	if q := h.Quantile(1); math.Abs(q-200) > 15 {
		t.Errorf("max quantile = %v, want ~200", q)
	}
}

func TestHistMergeMatchesCombined(t *testing.T) {
	rng := NewRNG(42)
	a, b, both := NewLatencyHist(), NewLatencyHist(), NewLatencyHist()
	for i := 0; i < 5000; i++ {
		v := math.Exp(10 + 3*rng.NormFloat64())
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
		both.Add(v)
	}
	a.Merge(b)
	if a.Count() != both.Count() {
		t.Fatalf("merged count %d != %d", a.Count(), both.Count())
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		qa, qb := a.Quantile(q), both.Quantile(q)
		if math.Abs(qa-qb)/qb > 1e-9 {
			t.Errorf("Quantile(%v): merged %v vs combined %v", q, qa, qb)
		}
	}
	if math.Abs(a.Sum()-both.Sum()) > both.Sum()*1e-12 {
		t.Errorf("merged sum %v vs %v", a.Sum(), both.Sum())
	}
}

func TestHistMergeShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	a := NewHist(1, 1.05)
	b := NewHist(2, 1.05)
	b.Add(10)
	a.Merge(b)
}

func TestHistQuantilesMonotonic(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		h := NewLatencyHist()
		n := 100 + rng.Intn(1000)
		for i := 0; i < n; i++ {
			h.Add(math.Exp(8 + 4*rng.NormFloat64()))
		}
		prev := 0.0
		for q := 0.0; q <= 1.0; q += 0.01 {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHistQuantileWithinObservedRange(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		h := NewLatencyHist()
		lo, hi := math.Inf(1), 0.0
		for i := 0; i < 500; i++ {
			v := 200 + 1e9*rng.Float64()
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
			h.Add(v)
		}
		for _, q := range []float64{0, 0.001, 0.5, 0.999, 1} {
			v := h.Quantile(q)
			if v < lo || v > hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHistMeanStddev(t *testing.T) {
	h := NewHist(1, DefaultGrowth)
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		h.Add(v)
	}
	if m := h.Mean(); math.Abs(m-5) > 1e-12 {
		t.Errorf("mean = %v, want 5", m)
	}
	if s := h.Stddev(); math.Abs(s-2) > 1e-9 {
		t.Errorf("stddev = %v, want 2", s)
	}
}

func TestHistCountAboveAndFraction(t *testing.T) {
	h := NewHist(1, DefaultGrowth)
	for i := 1; i <= 100; i++ {
		h.Add(float64(i))
	}
	above := h.CountAbove(50)
	if above < 45 || above > 55 {
		t.Errorf("CountAbove(50) = %d, want ~50", above)
	}
	fr := h.Fraction(50)
	if fr < 0.45 || fr > 0.55 {
		t.Errorf("Fraction(50) = %v, want ~0.5", fr)
	}
}

func TestHistCloneIndependent(t *testing.T) {
	h := NewLatencyHist()
	h.Add(1000)
	c := h.Clone()
	c.Add(2000)
	if h.Count() != 1 || c.Count() != 2 {
		t.Fatalf("clone not independent: h=%d c=%d", h.Count(), c.Count())
	}
}

func TestHistReset(t *testing.T) {
	h := NewLatencyHist()
	h.Add(123456)
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("reset did not clear histogram")
	}
	h.Add(1e6)
	if h.Count() != 1 {
		t.Fatal("histogram unusable after reset")
	}
}

func TestHistBucketsIteration(t *testing.T) {
	h := NewHist(1, 2) // coarse buckets for an easy check
	h.Add(1.5)
	h.Add(3)
	h.Add(0.1) // underflow
	var total uint64
	var nBuckets int
	h.Buckets(func(lo, hi float64, count uint64) {
		if hi <= lo {
			t.Errorf("bucket hi %v <= lo %v", hi, lo)
		}
		total += count
		nBuckets++
	})
	if total != 3 {
		t.Errorf("bucket total = %d, want 3", total)
	}
	if nBuckets != 3 {
		t.Errorf("bucket count = %d, want 3 (underflow + 2)", nBuckets)
	}
}

func TestHistQuantileOf(t *testing.T) {
	h := NewHist(1, DefaultGrowth)
	for i := 1; i <= 1000; i++ {
		h.Add(float64(i))
	}
	q := h.QuantileOf(500)
	if q < 0.4 || q > 0.6 {
		t.Errorf("QuantileOf(500) = %v, want ~0.5", q)
	}
	if q := h.QuantileOf(0.5); q > 0.01 {
		t.Errorf("QuantileOf(below min) = %v, want ~0", q)
	}
}

func TestHistSummarizeOrdering(t *testing.T) {
	rng := NewRNG(7)
	h := NewLatencyHist()
	for i := 0; i < 10000; i++ {
		h.Add(LogNormal{Mu: 13, Sigma: 1.5}.Sample(rng))
	}
	s := h.Summarize()
	ordered := []float64{s.P1, s.P10, s.P25, s.P50, s.P75, s.P90, s.P95, s.P99, s.P999}
	for i := 1; i < len(ordered); i++ {
		if ordered[i] < ordered[i-1] {
			t.Fatalf("summary percentiles not monotonic: %+v", s)
		}
	}
	if s.Max < s.P999 {
		t.Errorf("max %v < P999 %v", s.Max, s.P999)
	}
	if s.Count != 10000 {
		t.Errorf("count = %d", s.Count)
	}
}

func TestSampleQuantiles(t *testing.T) {
	s := NewSample(0)
	for i := 100; i >= 1; i-- { // reverse order to exercise sorting
		s.Add(float64(i))
	}
	if got := s.Quantile(0); got != 1 {
		t.Errorf("Q0 = %v", got)
	}
	if got := s.Quantile(1); got != 100 {
		t.Errorf("Q1 = %v", got)
	}
	if got := s.Percentile(50); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("P50 = %v, want 50.5", got)
	}
	if got := s.Mean(); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("mean = %v, want 50.5", got)
	}
	if got := s.Sum(); math.Abs(got-5050) > 1e-9 {
		t.Errorf("sum = %v, want 5050", got)
	}
}

func TestSampleEmptyAndAfterSortAdd(t *testing.T) {
	s := NewSample(4)
	if s.Quantile(0.5) != 0 || s.Mean() != 0 {
		t.Fatal("empty sample should report zeros")
	}
	s.Add(3)
	s.Add(1)
	_ = s.Quantile(0.5) // forces sort
	s.Add(2)            // insertion after sort must re-sort lazily
	if got := s.Quantile(0.5); got != 2 {
		t.Errorf("median after re-add = %v, want 2", got)
	}
}
