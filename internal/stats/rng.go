// Package stats provides the statistical substrate for the RPC
// characterization study: deterministic random number generation,
// log-bucketed histograms, exact-quantile sample sets, heavy-tailed
// distribution samplers, reservoir sampling, and correlation measures.
//
// Everything in this package is deliberately deterministic: the fleet
// simulator must produce identical datasets for identical seeds so that
// experiments in EXPERIMENTS.md are reproducible bit-for-bit.
package stats

import "math"

// splitmix64 advances the given state and returns the next value of the
// SplitMix64 sequence. It is used both as a seed deriver for child RNGs
// and as the core mixing function of RNG itself.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256** seeded via SplitMix64). It is splittable: Child derives an
// independent stream from a label, which lets the simulator give every
// machine, method, and workload source its own stream without any
// cross-contamination when components are added or reordered.
//
// RNG is not safe for concurrent use; give each goroutine its own child.
type RNG struct {
	s    [4]uint64
	seed uint64 // the original seed, so Child is stable under draws
}

// NewRNG returns a generator seeded from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{seed: seed}
	state := seed
	for i := range r.s {
		r.s[i] = splitmix64(&state)
	}
	// xoshiro must not be seeded with all zeros.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Child derives an independent generator from this generator's seed space
// and the given label. Calling Child with the same label always yields the
// same stream, regardless of how many values have been drawn from r.
func (r *RNG) Child(label string) *RNG {
	h := uint64(14695981039346656037) // FNV-64 offset basis
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	// Mix with the parent's original seed (not its evolving state) so the
	// derived stream does not depend on how many values the parent has
	// already drawn.
	state := r.seed ^ rotl(h, 23)
	return NewRNG(splitmix64(&state))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// NormFloat64 returns a standard normal variate using the polar
// (Marsaglia) method.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }
