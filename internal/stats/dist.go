package stats

import (
	"fmt"
	"math"
	"sort"
)

// Dist is a sampleable distribution over positive reals. All the per-method
// models in the fleet catalog (latency, size, CPU cost, fan-out) are
// expressed as Dists so that the simulator can draw from them uniformly.
type Dist interface {
	// Sample draws one value using the given generator.
	Sample(r *RNG) float64
	// Quantile returns the (analytic or numeric) q-quantile, used by the
	// catalog calibrator to place methods against the paper's anchors.
	Quantile(q float64) float64
	// Mean returns the distribution mean (possibly +Inf for very heavy
	// tails).
	Mean() float64
}

// LogNormal is the workhorse distribution of this study: RPC latencies and
// sizes in the paper span orders of magnitude with roughly straight-line
// log-scale CDFs, which lognormal mixtures capture well.
type LogNormal struct {
	Mu    float64 // mean of log(x)
	Sigma float64 // stddev of log(x)
}

// LogNormalFromMedianP99 fits a lognormal from two quantile anchors, the
// median and the 99th percentile. This is how the catalog turns the
// paper's published anchor pairs into samplers.
func LogNormalFromMedianP99(median, p99 float64) LogNormal {
	if median <= 0 || p99 < median {
		panic(fmt.Sprintf("stats: bad lognormal anchors median=%v p99=%v", median, p99))
	}
	// z(0.99) = 2.3263; log(p99) = mu + sigma*z.
	const z99 = 2.3263478740408408
	mu := math.Log(median)
	sigma := (math.Log(p99) - mu) / z99
	if sigma < 1e-9 {
		sigma = 1e-9
	}
	return LogNormal{Mu: mu, Sigma: sigma}
}

// LogNormalFromQuantiles fits a lognormal through two arbitrary quantile
// anchors (q1, v1) and (q2, v2) with q1 < q2 and v1 <= v2.
func LogNormalFromQuantiles(q1, v1, q2, v2 float64) LogNormal {
	if v1 <= 0 || v2 < v1 || q2 <= q1 {
		panic(fmt.Sprintf("stats: bad lognormal quantile anchors (%v,%v) (%v,%v)", q1, v1, q2, v2))
	}
	z1, z2 := NormQuantile(q1), NormQuantile(q2)
	sigma := (math.Log(v2) - math.Log(v1)) / (z2 - z1)
	if sigma < 1e-9 {
		sigma = 1e-9
	}
	mu := math.Log(v1) - sigma*z1
	return LogNormal{Mu: mu, Sigma: sigma}
}

// Sample draws a lognormal variate.
func (ln LogNormal) Sample(r *RNG) float64 {
	return math.Exp(ln.Mu + ln.Sigma*r.NormFloat64())
}

// Quantile returns the analytic q-quantile.
func (ln LogNormal) Quantile(q float64) float64 {
	return math.Exp(ln.Mu + ln.Sigma*NormQuantile(q))
}

// Mean returns exp(mu + sigma^2/2).
func (ln LogNormal) Mean() float64 {
	return math.Exp(ln.Mu + ln.Sigma*ln.Sigma/2)
}

// Pareto is a bounded Pareto distribution used for heavy-tailed components
// such as elephant message sizes and expensive-query CPU costs.
type Pareto struct {
	Min   float64 // scale (left edge)
	Alpha float64 // shape; smaller alpha = heavier tail
	Max   float64 // truncation bound (0 = unbounded)
}

// Sample draws a (bounded) Pareto variate by inversion.
func (p Pareto) Sample(r *RNG) float64 {
	u := r.Float64()
	if p.Max > p.Min {
		// Bounded Pareto inversion.
		la := math.Pow(p.Min, p.Alpha)
		ha := math.Pow(p.Max, p.Alpha)
		return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/p.Alpha)
	}
	return p.Min / math.Pow(1-u, 1/p.Alpha)
}

// Quantile returns the q-quantile by inversion.
func (p Pareto) Quantile(q float64) float64 {
	if p.Max > p.Min {
		la := math.Pow(p.Min, p.Alpha)
		ha := math.Pow(p.Max, p.Alpha)
		return math.Pow(-(q*ha-q*la-ha)/(ha*la), -1/p.Alpha)
	}
	return p.Min / math.Pow(1-q, 1/p.Alpha)
}

// Mean returns the distribution mean (+Inf when alpha <= 1 and unbounded).
func (p Pareto) Mean() float64 {
	if p.Max > p.Min {
		a := p.Alpha
		if a == 1 {
			return p.Min * math.Log(p.Max/p.Min) / (1 - p.Min/p.Max)
		}
		la := math.Pow(p.Min, a)
		return la / (1 - math.Pow(p.Min/p.Max, a)) * a / (a - 1) *
			(1/math.Pow(p.Min, a-1) - 1/math.Pow(p.Max, a-1))
	}
	if p.Alpha <= 1 {
		return math.Inf(1)
	}
	return p.Alpha * p.Min / (p.Alpha - 1)
}

// Exponential has rate 1/MeanVal.
type Exponential struct{ MeanVal float64 }

// Sample draws an exponential variate.
func (e Exponential) Sample(r *RNG) float64 { return e.MeanVal * r.ExpFloat64() }

// Quantile returns the q-quantile.
func (e Exponential) Quantile(q float64) float64 { return -e.MeanVal * math.Log(1-q) }

// Mean returns MeanVal.
func (e Exponential) Mean() float64 { return e.MeanVal }

// Constant always returns V. Used for fixed protocol overheads.
type Constant struct{ V float64 }

// Sample returns V.
func (c Constant) Sample(*RNG) float64 { return c.V }

// Quantile returns V.
func (c Constant) Quantile(float64) float64 { return c.V }

// Mean returns V.
func (c Constant) Mean() float64 { return c.V }

// Uniform is uniform over [Lo, Hi).
type Uniform struct{ Lo, Hi float64 }

// Sample draws a uniform variate.
func (u Uniform) Sample(r *RNG) float64 { return u.Lo + (u.Hi-u.Lo)*r.Float64() }

// Quantile returns the q-quantile.
func (u Uniform) Quantile(q float64) float64 { return u.Lo + (u.Hi-u.Lo)*q }

// Mean returns the midpoint.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// Shifted adds Offset to every draw of Base; used to give components a
// floor (e.g., a minimum serialization cost per message).
type Shifted struct {
	Base   Dist
	Offset float64
}

// Sample draws from Base and shifts.
func (s Shifted) Sample(r *RNG) float64 { return s.Offset + s.Base.Sample(r) }

// Quantile shifts the base quantile.
func (s Shifted) Quantile(q float64) float64 { return s.Offset + s.Base.Quantile(q) }

// Mean shifts the base mean.
func (s Shifted) Mean() float64 { return s.Offset + s.Base.Mean() }

// Scaled multiplies every draw of Base by Factor.
type Scaled struct {
	Base   Dist
	Factor float64
}

// Sample draws from Base and scales.
func (s Scaled) Sample(r *RNG) float64 { return s.Factor * s.Base.Sample(r) }

// Quantile scales the base quantile.
func (s Scaled) Quantile(q float64) float64 { return s.Factor * s.Base.Quantile(q) }

// Mean scales the base mean.
func (s Scaled) Mean() float64 { return s.Factor * s.Base.Mean() }

// Mixture draws from one of its components with the given weights. RPC
// methods in the paper are visibly multi-modal (e.g., cache hit vs. miss,
// small read vs. bulk read), which single lognormals cannot express.
type Mixture struct {
	Components []Dist
	Weights    []float64 // normalized lazily
	cum        []float64
}

// NewMixture builds a mixture, normalizing the weights.
func NewMixture(components []Dist, weights []float64) *Mixture {
	if len(components) == 0 || len(components) != len(weights) {
		panic("stats: mixture needs matching non-empty components and weights")
	}
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("stats: negative mixture weight")
		}
		total += w
	}
	if total <= 0 {
		panic("stats: mixture weights sum to zero")
	}
	cum := make([]float64, len(weights))
	acc := 0.0
	for i, w := range weights {
		acc += w / total
		cum[i] = acc
	}
	cum[len(cum)-1] = 1
	return &Mixture{Components: components, Weights: weights, cum: cum}
}

// Sample picks a component by weight and draws from it.
func (m *Mixture) Sample(r *RNG) float64 {
	u := r.Float64()
	i := sort.SearchFloat64s(m.cum, u)
	if i >= len(m.Components) {
		i = len(m.Components) - 1
	}
	return m.Components[i].Sample(r)
}

// Quantile is computed numerically by bisection on the mixture CDF.
func (m *Mixture) Quantile(q float64) float64 {
	if q <= 0 {
		q = 1e-9
	}
	if q >= 1 {
		q = 1 - 1e-9
	}
	// Bracket using component quantiles.
	lo, hi := math.Inf(1), 0.0
	for _, c := range m.Components {
		if v := c.Quantile(1e-6); v < lo {
			lo = v
		}
		if v := c.Quantile(1 - 1e-6); v > hi {
			hi = v
		}
	}
	if lo <= 0 {
		lo = 1e-12
	}
	cdf := func(x float64) float64 {
		var f float64
		prev := 0.0
		for i, c := range m.Components {
			w := m.cum[i] - prev
			prev = m.cum[i]
			f += w * distCDF(c, x)
		}
		return f
	}
	for i := 0; i < 80; i++ {
		mid := math.Sqrt(lo * hi) // geometric bisection suits log-scale data
		if cdf(mid) < q {
			lo = mid
		} else {
			hi = mid
		}
	}
	return math.Sqrt(lo * hi)
}

// Mean returns the weighted component mean.
func (m *Mixture) Mean() float64 {
	var mean float64
	prev := 0.0
	for i, c := range m.Components {
		w := m.cum[i] - prev
		prev = m.cum[i]
		mean += w * c.Mean()
	}
	return mean
}

// distCDF evaluates a component CDF, analytically where possible and by
// quantile inversion otherwise.
func distCDF(d Dist, x float64) float64 {
	switch t := d.(type) {
	case LogNormal:
		if x <= 0 {
			return 0
		}
		return normCDF((math.Log(x) - t.Mu) / t.Sigma)
	case Exponential:
		if x <= 0 {
			return 0
		}
		return 1 - math.Exp(-x/t.MeanVal)
	case Constant:
		if x >= t.V {
			return 1
		}
		return 0
	case Uniform:
		if x <= t.Lo {
			return 0
		}
		if x >= t.Hi {
			return 1
		}
		return (x - t.Lo) / (t.Hi - t.Lo)
	case Pareto:
		if x <= t.Min {
			return 0
		}
		if t.Max > t.Min {
			if x >= t.Max {
				return 1
			}
			la := math.Pow(t.Min, t.Alpha)
			return (1 - la*math.Pow(x, -t.Alpha)) / (1 - math.Pow(t.Min/t.Max, t.Alpha))
		}
		return 1 - math.Pow(t.Min/x, t.Alpha)
	case Shifted:
		return distCDF(t.Base, x-t.Offset)
	case Scaled:
		return distCDF(t.Base, x/t.Factor)
	default:
		// Numeric inversion: binary search the quantile function.
		lo, hi := 0.0, 1.0
		for i := 0; i < 50; i++ {
			mid := (lo + hi) / 2
			if d.Quantile(mid) < x {
				lo = mid
			} else {
				hi = mid
			}
		}
		return (lo + hi) / 2
	}
}

// normCDF is the standard normal CDF.
func normCDF(z float64) float64 { return 0.5 * math.Erfc(-z/math.Sqrt2) }

// NormQuantile returns the standard normal quantile function Phi^-1(q)
// using the Acklam rational approximation (relative error < 1.15e-9).
func NormQuantile(q float64) float64 {
	if q <= 0 {
		return math.Inf(-1)
	}
	if q >= 1 {
		return math.Inf(1)
	}
	// Coefficients for the central and tail regions.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const plow = 0.02425
	switch {
	case q < plow:
		u := math.Sqrt(-2 * math.Log(q))
		return (((((c[0]*u+c[1])*u+c[2])*u+c[3])*u+c[4])*u + c[5]) /
			((((d[0]*u+d[1])*u+d[2])*u+d[3])*u + 1)
	case q > 1-plow:
		u := math.Sqrt(-2 * math.Log(1-q))
		return -(((((c[0]*u+c[1])*u+c[2])*u+c[3])*u+c[4])*u + c[5]) /
			((((d[0]*u+d[1])*u+d[2])*u+d[3])*u + 1)
	default:
		u := q - 0.5
		t := u * u
		return (((((a[0]*t+a[1])*t+a[2])*t+a[3])*t+a[4])*t + a[5]) * u /
			(((((b[0]*t+b[1])*t+b[2])*t+b[3])*t+b[4])*t + 1)
	}
}

// Zipf draws ranks in [0, N) with probability proportional to
// 1/(rank+Q)^S, the standard model for RPC method popularity skew. The
// paper reports top-10 methods = 58% of calls and top-100 = 91%; the fleet
// catalog fits S and Q against those anchors.
type Zipf struct {
	N   int
	S   float64
	Q   float64
	cum []float64
}

// NewZipf precomputes the cumulative weights.
func NewZipf(n int, s, q float64) *Zipf {
	if n <= 0 {
		panic("stats: Zipf needs n > 0")
	}
	z := &Zipf{N: n, S: s, Q: q, cum: make([]float64, n)}
	acc := 0.0
	for i := 0; i < n; i++ {
		acc += math.Pow(float64(i)+q, -s)
		z.cum[i] = acc
	}
	for i := range z.cum {
		z.cum[i] /= acc
	}
	z.cum[n-1] = 1
	return z
}

// Sample draws one rank.
func (z *Zipf) Sample(r *RNG) int {
	u := r.Float64()
	i := sort.SearchFloat64s(z.cum, u)
	if i >= z.N {
		i = z.N - 1
	}
	return i
}

// CumShare returns the cumulative probability mass of ranks [0, k).
func (z *Zipf) CumShare(k int) float64 {
	if k <= 0 {
		return 0
	}
	if k >= z.N {
		return 1
	}
	return z.cum[k-1]
}

// Share returns the probability mass of a single rank.
func (z *Zipf) Share(rank int) float64 {
	if rank < 0 || rank >= z.N {
		return 0
	}
	if rank == 0 {
		return z.cum[0]
	}
	return z.cum[rank] - z.cum[rank-1]
}
