package stats

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(99), NewRNG(99)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewRNG(100)
	same := true
	a2 := NewRNG(99)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRNGChildIndependence(t *testing.T) {
	parent := NewRNG(1)
	c1 := parent.Child("machine-0")
	c2 := parent.Child("machine-1")
	c1again := NewRNG(1).Child("machine-0")
	if c1.Uint64() != c1again.Uint64() {
		t.Fatal("child streams not reproducible from label")
	}
	// Different labels should diverge immediately (overwhelmingly likely).
	if c1.Uint64() == c2.Uint64() && c1.Uint64() == c2.Uint64() {
		t.Fatal("distinct child labels produced identical streams")
	}
}

func TestRNGChildStableUnderParentDraws(t *testing.T) {
	p1 := NewRNG(5)
	p2 := NewRNG(5)
	p2.Uint64() // advance one parent; children must still match
	a := p1.Child("x").Uint64()
	b := p2.Child("x").Uint64()
	if a != b {
		t.Fatal("Child depends on parent draw position; must be stable")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGUniformity(t *testing.T) {
	r := NewRNG(4)
	const buckets = 10
	counts := make([]int, buckets)
	n := 100000
	for i := 0; i < n; i++ {
		counts[int(r.Float64()*buckets)]++
	}
	want := float64(n) / buckets
	for i, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.05 {
			t.Errorf("bucket %d count %d deviates from %v", i, c, want)
		}
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(5)
	var sum, sumSq float64
	n := 200000
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v", variance)
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(6)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestRNGBool(t *testing.T) {
	r := NewRNG(7)
	hits := 0
	n := 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / float64(n)
	if math.Abs(frac-0.3) > 0.01 {
		t.Errorf("Bool(0.3) frequency = %v", frac)
	}
}
