package cluster

import (
	"bytes"
	"context"
	"os"
	"strings"
	"testing"
	"time"

	"rpcscale/internal/leakcheck"
)

// TestMain lets the supervisor re-execute this test binary as a cluster
// child — the standard helper-process pattern.
func TestMain(m *testing.M) {
	if IsChild() {
		os.Exit(RunChild())
	}
	os.Exit(m.Run())
}

func testBin(t *testing.T) string {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	return exe
}

// TestSupervisorPropagatesChildFailure spawns a child with a malformed
// environment and checks the run fails with the child's exit code
// surfaced (satellite: a crashing child must fail the run).
func TestSupervisorPropagatesChildFailure(t *testing.T) {
	leakcheck.Check(t)
	p, err := Spawn("broken", testBin(t), nil, []string{
		envRole + "=client",
		envDuration + "=bogus", // unparseable → child exits 2
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Wait(); err == nil {
		t.Fatal("child with malformed env exited 0")
	}
	if code := p.ExitCode(); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if _, err := p.Result(time.Second); err == nil {
		t.Fatal("Result succeeded for a crashed child")
	} else if !strings.Contains(err.Error(), "exit status 2") {
		t.Fatalf("Result error %q does not surface the exit code", err)
	}
}

// TestSupervisorUnknownRole checks the role-dispatch failure path (exit 1).
func TestSupervisorUnknownRole(t *testing.T) {
	leakcheck.Check(t)
	p, err := Spawn("mystery", testBin(t), nil, []string{envRole + "=gateway"})
	if err != nil {
		t.Fatal(err)
	}
	p.Wait()
	if code := p.ExitCode(); code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
}

// TestServerReadyAndDrain spawns one real server child, checks the READY
// handshake, and drains it via Stop (SIGTERM + stdin close), expecting a
// clean exit with a RESULT line.
func TestServerReadyAndDrain(t *testing.T) {
	leakcheck.Check(t)
	p, err := Spawn("server-0", testBin(t), nil, []string{
		envRole + "=server",
		envSeed + "=7",
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := p.WaitReady(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(addr, ":") {
		t.Fatalf("READY addr = %q, not host:port", addr)
	}
	if err := p.Stop(5 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
	res, err := p.Result(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res, "served") {
		t.Fatalf("server RESULT %q missing served count", res)
	}
}

// TestClusterEndToEnd runs the full harness small: 2 servers, 1 client,
// one policy, a second of traffic. It validates the whole protocol chain —
// spawn, READY, control RPC sampling, client RESULT merge, drain — and
// that the report carries real traffic.
func TestClusterEndToEnd(t *testing.T) {
	leakcheck.Check(t)
	if testing.Short() {
		t.Skip("spawns processes and drives ~1s of traffic")
	}
	var buf bytes.Buffer
	rep, err := Run(context.Background(), Config{
		Servers:   2,
		Clients:   1,
		Duration:  time.Second,
		TimeScale: 600,
		BaseRate:  500,
		Policies:  []string{"round-robin"},
		Seed:      42,
		Bin:       testBin(t),
		Out:       &buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Policies) != 1 {
		t.Fatalf("policies = %d, want 1", len(rep.Policies))
	}
	pr := rep.Policies[0]
	if pr.Calls == 0 {
		t.Fatal("no calls recorded")
	}
	if pr.Errors > pr.Calls/10 {
		t.Fatalf("errors = %d of %d calls", pr.Errors, pr.Calls)
	}
	var served uint64
	for _, n := range pr.Served {
		served += n
	}
	if served == 0 {
		t.Fatal("control RPC sampled zero served calls")
	}
	if pr.Imbalance < 1.0 {
		t.Fatalf("imbalance = %v, must be >= 1 when traffic flowed", pr.Imbalance)
	}
	if rep.CallsPerSec <= 0 {
		t.Fatalf("aggregate calls/s = %v", rep.CallsPerSec)
	}
	out := buf.String()
	if !strings.Contains(out, "round-robin") || !strings.Contains(out, "imbalance") {
		t.Fatalf("report table missing policy row:\n%s", out)
	}
}
