package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rpcscale/internal/fleet"
	"rpcscale/internal/loadbalance"
	"rpcscale/internal/stats"
	"rpcscale/internal/stubby"
	"rpcscale/internal/telemetry"
)

// ClientResult is the client child's RESULT payload: issue/error counts,
// per-backend pick counts, and the full telemetry snapshot the parent
// merges across processes.
type ClientResult struct {
	Policy      string             `json:"policy"`
	ClientID    int                `json:"client_id"`
	Issued      uint64             `json:"issued"`
	Errors      uint64             `json:"errors"`
	Picks       map[string]uint64  `json:"picks"`
	WallSeconds float64            `json:"wall_seconds"`
	Snapshot    telemetry.Snapshot `json:"snapshot"`
}

// maxOutstanding bounds a client's concurrent in-flight calls so an
// overloaded backend back-pressures the generator instead of exhausting
// goroutines — the open loop stays open up to this cap.
const maxOutstanding = 512

// clientPayloadCap keeps harness request payloads under the bulk-lane
// threshold: the policy comparison is about balancing, not bulk transfer.
const clientPayloadCap = 8 << 10

// RunClient runs the client child role: dial a pool to every server,
// drive the open-loop diurnal schedule from the method catalog, balance
// picks with the configured policy, and emit the RESULT snapshot when the
// duration elapses (or SIGTERM/stdin-EOF asks for an early drain).
func RunClient(cfg ChildConfig) error {
	if len(cfg.Servers) == 0 {
		return fmt.Errorf("cluster: client needs at least one server address")
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 10 * time.Second
	}
	if cfg.BaseRate <= 0 {
		cfg.BaseRate = 2000
	}
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = 2
	}
	if cfg.Policy == "" {
		cfg.Policy = "round-robin"
	}

	policy, err := loadbalance.ByName(cfg.Policy, cfg.ClientID)
	if err != nil {
		return err
	}

	cat := fleet.New(fleet.Config{Methods: cfg.Methods, Clusters: 4, Seed: cfg.Seed})
	plane := telemetry.New()
	opts := plane.Apply(stubby.Options{
		ClusterName: fmt.Sprintf("client-%d", cfg.ClientID),
		ConnStripes: cfg.Stripes,
	})

	pools := make([]*stubby.Pool, 0, len(cfg.Servers))
	endpoints := make([]loadbalance.Endpoint, 0, len(cfg.Servers))
	poolIndex := make(map[*stubby.Pool]int, len(cfg.Servers))
	for i, addr := range cfg.Servers {
		p, err := stubby.NewPool(addr, fmt.Sprintf("server-%d", i), cfg.PoolSize, opts)
		if err != nil {
			for _, q := range pools {
				q.Close()
			}
			return fmt.Errorf("cluster: dialing %s: %w", addr, err)
		}
		pools = append(pools, p)
		endpoints = append(endpoints, p)
		poolIndex[p] = i
	}
	defer func() {
		for _, p := range pools {
			p.Close()
		}
	}()

	driver := fleet.NewDriver(cat, fleet.DriveConfig{
		BaseRate:   cfg.BaseRate,
		TimeScale:  cfg.TimeScale,
		Amplitude:  0.25,
		PhaseHours: 6, // peak mid-cycle, like the paper's weekday trace
		MaxPayload: clientPayloadCap,
		Seed:       cfg.Seed + uint64(cfg.ClientID)*0x9e37 + 1,
	})

	// Shared read-only payload source; each call slices its sampled size.
	payload := make([]byte, clientPayloadCap)
	fillRNG := stats.NewRNG(cfg.Seed).Child("payload")
	for i := range payload {
		payload[i] = byte(fillRNG.Uint64())
	}

	stop := make(chan struct{})
	var stopOnce sync.Once
	waitDrain := armDrainSignal()
	go func() {
		waitDrain()
		stopOnce.Do(func() { close(stop) })
	}()

	pickRNG := stats.NewRNG(cfg.Seed).Child(fmt.Sprintf("pick%d", cfg.ClientID))
	picks := make([]atomic.Uint64, len(pools))
	var issued, errs atomic.Uint64
	var wg sync.WaitGroup
	sem := make(chan struct{}, maxOutstanding)

	start := time.Now()
	end := start.Add(cfg.Duration)
	next := start

dispatch:
	for {
		m, reqBytes, gap := driver.Next()
		next = next.Add(gap)
		if next.After(end) {
			break
		}
		if d := time.Until(next); d > 0 {
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-stop:
				t.Stop()
				break dispatch
			}
		} else {
			select {
			case <-stop:
				break dispatch
			default:
			}
		}

		pool := policy.Pick(pickRNG, endpoints).(*stubby.Pool)
		picks[poolIndex[pool]].Add(1)
		issued.Add(1)

		select {
		case sem <- struct{}{}:
		case <-stop:
			issued.Add(^uint64(0)) // never dispatched
			picks[poolIndex[pool]].Add(^uint64(0))
			break dispatch
		}
		wg.Add(1)
		go func(method string, n int) {
			defer wg.Done()
			defer func() { <-sem }()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if _, err := pool.Call(ctx, method, payload[:n]); err != nil {
				errs.Add(1)
			}
		}(m.Name, reqBytes)
	}
	wg.Wait()

	res := ClientResult{
		Policy:      cfg.Policy,
		ClientID:    cfg.ClientID,
		Issued:      issued.Load(),
		Errors:      errs.Load(),
		Picks:       make(map[string]uint64, len(pools)),
		WallSeconds: time.Since(start).Seconds(),
		Snapshot:    plane.Snapshot(),
	}
	for i, addr := range cfg.Servers {
		res.Picks[addr] = picks[i].Load()
	}
	out, err := json.Marshal(res)
	if err != nil {
		return err
	}
	fmt.Printf("%s%s\n", resultPrefix, out)
	return nil
}
