package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"rpcscale/internal/fleet"
	"rpcscale/internal/stats"
	"rpcscale/internal/stubby"
)

// ControlMethod is the harness's control RPC: it returns a ServerStats
// JSON payload, letting the parent sample per-server served counts around
// each policy phase without disturbing the data path.
const ControlMethod = "cluster.Control/Stats"

// ServerStats is the control RPC's response payload.
type ServerStats struct {
	// Served counts data-path calls completed (control calls excluded).
	Served uint64 `json:"served"`
	// Load is the server's instantaneous load estimate (queue + in-flight).
	Load int `json:"load"`
}

// ServerResult is the server child's RESULT payload.
type ServerResult struct {
	Served uint64 `json:"served"`
}

// RunServer runs the server child role: build the method catalog, register
// an echo handler for every method plus the control RPC, bind a loopback
// listener, announce READY, and serve until SIGTERM/SIGINT or stdin EOF —
// then drain in-flight work and emit RESULT.
func RunServer(cfg ChildConfig) error {
	cat := fleet.New(fleet.Config{Methods: cfg.Methods, Clusters: 4, Seed: cfg.Seed})

	srv := stubby.NewServer(stubby.Options{Workers: cfg.Workers})
	var served atomic.Uint64

	// appRNG drives per-call handler-time sampling when AppTimeScale > 0:
	// occupying a worker for the method's (scaled) application time is what
	// makes backend load real enough for load-aware policies to act on.
	var appMu sync.Mutex
	appRNG := stats.NewRNG(cfg.Seed + uint64(cfg.ClientID)*0x9e3779b9).Child("apptime")

	for _, m := range cat.Methods {
		m := m
		srv.Register(m.Name, func(ctx context.Context, payload []byte) ([]byte, error) {
			if cfg.AppTimeScale > 0 {
				appMu.Lock()
				d := time.Duration(float64(m.SampleAppTime(appRNG)) * cfg.AppTimeScale)
				appMu.Unlock()
				if d > 0 {
					t := time.NewTimer(d)
					select {
					case <-t.C:
					case <-ctx.Done():
						t.Stop()
					}
				}
			}
			served.Add(1)
			return payload, nil
		})
	}
	srv.Register(ControlMethod, func(ctx context.Context, payload []byte) ([]byte, error) {
		return json.Marshal(ServerStats{Served: served.Load(), Load: srv.Load()})
	})

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("cluster: server listen: %w", err)
	}
	go srv.Serve(l)

	wait := armDrainSignal()
	fmt.Printf("%saddr=%s\n", readyPrefix, l.Addr())

	wait()

	// Drain: stop accepting, let in-flight handlers finish.
	srv.Close()
	out, err := json.Marshal(ServerResult{Served: served.Load()})
	if err != nil {
		return err
	}
	fmt.Printf("%s%s\n", resultPrefix, out)
	return nil
}

// armDrainSignal installs the child's two shutdown paths — SIGTERM/SIGINT
// and stdin EOF (the parent died or closed the pipe) — and returns a
// function that blocks until one fires. Arming is split from waiting so a
// child can subscribe before announcing READY: otherwise a parent that
// reacts to READY with an immediate Stop can deliver SIGTERM while the
// default handler is still in place, killing the child instead of
// draining it.
func armDrainSignal() (wait func()) {
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, os.Interrupt)

	eof := make(chan struct{})
	go func() {
		_, _ = io.Copy(io.Discard, os.Stdin)
		close(eof)
	}()

	// The subscription stays armed for the life of the process — never
	// signal.Stop: the parent's Stop closes stdin and sends SIGTERM
	// together, and dropping the last registration restores the default
	// disposition, so a SIGTERM landing just after the EOF-triggered
	// return would kill the draining child instead of being absorbed.
	return func() {
		select {
		case <-sigCh:
		case <-eof:
		}
	}
}
