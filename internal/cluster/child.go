package cluster

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// Environment keys of the child protocol. The parent re-executes its own
// binary with these set; flags never reach the child, so any binary that
// calls RunChildIfSpawned early in main (cmd/rpccluster, the test binary)
// can host a role.
const (
	envRole         = "CLUSTERCTL_ROLE"
	envSeed         = "CLUSTERCTL_SEED"
	envMethods      = "CLUSTERCTL_METHODS"
	envWorkers      = "CLUSTERCTL_WORKERS"
	envAppTimeScale = "CLUSTERCTL_APPTIME_SCALE"
	envServers      = "CLUSTERCTL_SERVERS"
	envPolicy       = "CLUSTERCTL_POLICY"
	envClientID     = "CLUSTERCTL_CLIENT_ID"
	envDuration     = "CLUSTERCTL_DURATION"
	envTimeScale    = "CLUSTERCTL_TIME_SCALE"
	envBaseRate     = "CLUSTERCTL_BASE_RATE"
	envPool         = "CLUSTERCTL_POOL"
	envStripes      = "CLUSTERCTL_STRIPES"
)

// ChildConfig is a child role's full configuration, decoded from the
// CLUSTERCTL_* environment.
type ChildConfig struct {
	Role         string
	Seed         uint64
	Methods      int
	Workers      int
	AppTimeScale float64

	// ClientID is the child's index within its role — it decorrelates
	// per-process RNG streams for servers too, despite the name.
	ClientID int

	// Client-only.
	Servers   []string
	Policy    string
	Duration  time.Duration
	TimeScale float64
	BaseRate  float64
	PoolSize  int
	Stripes   int
}

// IsChild reports whether this process was spawned as a cluster child.
func IsChild() bool { return os.Getenv(envRole) != "" }

// childConfigFromEnv decodes the CLUSTERCTL_* environment.
func childConfigFromEnv() (ChildConfig, error) {
	cfg := ChildConfig{Role: os.Getenv(envRole)}
	var err error
	parseU64 := func(key string, dst *uint64) {
		if v := os.Getenv(key); v != "" && err == nil {
			*dst, err = strconv.ParseUint(v, 10, 64)
			if err != nil {
				err = fmt.Errorf("cluster: %s=%q: %w", key, v, err)
			}
		}
	}
	parseInt := func(key string, dst *int) {
		if v := os.Getenv(key); v != "" && err == nil {
			*dst, err = strconv.Atoi(v)
			if err != nil {
				err = fmt.Errorf("cluster: %s=%q: %w", key, v, err)
			}
		}
	}
	parseF64 := func(key string, dst *float64) {
		if v := os.Getenv(key); v != "" && err == nil {
			*dst, err = strconv.ParseFloat(v, 64)
			if err != nil {
				err = fmt.Errorf("cluster: %s=%q: %w", key, v, err)
			}
		}
	}
	parseU64(envSeed, &cfg.Seed)
	parseInt(envMethods, &cfg.Methods)
	parseInt(envWorkers, &cfg.Workers)
	parseF64(envAppTimeScale, &cfg.AppTimeScale)
	parseInt(envClientID, &cfg.ClientID)
	parseF64(envTimeScale, &cfg.TimeScale)
	parseF64(envBaseRate, &cfg.BaseRate)
	parseInt(envPool, &cfg.PoolSize)
	parseInt(envStripes, &cfg.Stripes)
	if v := os.Getenv(envServers); v != "" {
		cfg.Servers = strings.Split(v, ",")
	}
	cfg.Policy = os.Getenv(envPolicy)
	if v := os.Getenv(envDuration); v != "" && err == nil {
		cfg.Duration, err = time.ParseDuration(v)
		if err != nil {
			err = fmt.Errorf("cluster: %s=%q: %w", envDuration, v, err)
		}
	}
	return cfg, err
}

// RunChild dispatches the child role selected by the environment and
// returns the process exit code. Call it only when IsChild() is true.
func RunChild() int {
	cfg, err := childConfigFromEnv()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	switch cfg.Role {
	case "server":
		err = RunServer(cfg)
	case "client":
		err = RunClient(cfg)
	default:
		err = fmt.Errorf("cluster: unknown role %q", cfg.Role)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return 0
}
