package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"rpcscale/internal/stats"
	"rpcscale/internal/stubby"
	"rpcscale/internal/telemetry"
)

// Config is the parent harness configuration (cmd/rpccluster's flags map
// onto it one-to-one).
type Config struct {
	Servers  int           // server processes to spawn
	Clients  int           // client processes per policy phase
	Duration time.Duration // wall time per policy phase

	// TimeScale compresses the diurnal cycle: 600 runs a 24h cycle in
	// 144s of wall time.
	TimeScale float64
	// BaseRate is each client's mean issue rate in calls/s at the diurnal
	// midpoint.
	BaseRate float64
	// AppTimeScale compresses catalog application times on the servers;
	// 0.001 keeps a smoke run fast while preserving relative method cost.
	AppTimeScale float64

	// Policies to compare, one phase each. Empty means the paper's
	// Fig. 13–15 set.
	Policies []string

	Methods  int
	Seed     uint64
	PoolSize int // channels per client-server pool
	Workers  int // server worker goroutines (0 = stubby default)
	Stripes  int // TCP connections per client channel (0/1 = single)

	// Bin is the binary to re-execute for children; empty means
	// os.Executable().
	Bin string
	// Out receives the rendered report table; nil means os.Stdout.
	Out io.Writer
}

// DefaultPolicies is the Fig. 13–15 comparison set.
var DefaultPolicies = []string{"round-robin", "random", "power-of-two", "least-loaded", "subset"}

func (c *Config) withDefaults() Config {
	cfg := *c
	if cfg.Servers <= 0 {
		cfg.Servers = 4
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 2
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 10 * time.Second
	}
	if cfg.TimeScale <= 0 {
		cfg.TimeScale = 600
	}
	if cfg.BaseRate <= 0 {
		cfg.BaseRate = 2000
	}
	if cfg.AppTimeScale < 0 {
		cfg.AppTimeScale = 0
	}
	if len(cfg.Policies) == 0 {
		cfg.Policies = append([]string(nil), DefaultPolicies...)
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = 2
	}
	if cfg.Out == nil {
		cfg.Out = os.Stdout
	}
	return cfg
}

// PolicyReport is one policy phase's merged result.
type PolicyReport struct {
	Policy      string  `json:"policy"`
	Calls       uint64  `json:"calls"`
	Errors      uint64  `json:"errors"`
	CallsPerSec float64 `json:"calls_per_sec"`
	P50Ms       float64 `json:"p50_ms"`
	P99Ms       float64 `json:"p99_ms"`

	// Imbalance is max/mean of per-server served-call deltas over the
	// phase — the metric behind the paper's Fig. 13–15 comparison
	// (1.0 = perfectly balanced).
	Imbalance float64 `json:"imbalance"`
	// Served maps server address to its served-call delta for the phase.
	Served map[string]uint64 `json:"served"`
}

// Report is the harness's full output: one entry per policy plus the
// aggregate throughput/latency series the bench job records.
type Report struct {
	Servers   int            `json:"servers"`
	Clients   int            `json:"clients"`
	TimeScale float64        `json:"time_scale"`
	Duration  string         `json:"duration"`
	Policies  []PolicyReport `json:"policies"`

	// CallsPerSec and P99Ms aggregate across all phases; benchjson lifts
	// them into the cluster_calls_per_sec / cluster_p99_ms series.
	CallsPerSec float64 `json:"calls_per_sec"`
	P99Ms       float64 `json:"p99_ms"`
}

// Run executes the full harness: spawn the server fleet once, then for
// each policy run a phase of client processes, merging their telemetry and
// sampling per-server served counts around the phase to compute imbalance.
// Cancelling ctx kills all children and aborts.
func Run(ctx context.Context, c Config) (*Report, error) {
	cfg := c.withDefaults()
	bin := cfg.Bin
	if bin == "" {
		exe, err := os.Executable()
		if err != nil {
			return nil, fmt.Errorf("cluster: resolving own binary: %w", err)
		}
		bin = exe
	}

	// Spawn the server fleet.
	servers := make([]*Proc, 0, cfg.Servers)
	defer func() {
		for _, p := range servers {
			p.Kill()
		}
	}()
	for i := 0; i < cfg.Servers; i++ {
		env := []string{
			envRole + "=server",
			fmt.Sprintf("%s=%d", envSeed, cfg.Seed),
			fmt.Sprintf("%s=%d", envMethods, cfg.Methods),
			fmt.Sprintf("%s=%d", envWorkers, cfg.Workers),
			fmt.Sprintf("%s=%g", envAppTimeScale, cfg.AppTimeScale),
			fmt.Sprintf("%s=%d", envClientID, i),
		}
		p, err := Spawn(fmt.Sprintf("server-%d", i), bin, nil, env)
		if err != nil {
			return nil, err
		}
		servers = append(servers, p)
	}
	addrs := make([]string, len(servers))
	for i, p := range servers {
		addr, err := p.WaitReady(10 * time.Second)
		if err != nil {
			return nil, err
		}
		addrs[i] = addr
	}

	// Control pools let the parent sample per-server served counts
	// around each phase without touching the data path's accounting.
	control := make([]*stubby.Pool, len(addrs))
	for i, addr := range addrs {
		p, err := stubby.NewPool(addr, "control", 1, stubby.Options{ClusterName: "parent"})
		if err != nil {
			return nil, fmt.Errorf("cluster: control dial %s: %w", addr, err)
		}
		control[i] = p
	}
	defer func() {
		for _, p := range control {
			p.Close()
		}
	}()

	// ctx cancellation tears the fleet down even mid-phase.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			for _, p := range servers {
				p.Kill()
			}
		case <-watchDone:
		}
	}()

	rep := &Report{
		Servers:   cfg.Servers,
		Clients:   cfg.Clients,
		TimeScale: cfg.TimeScale,
		Duration:  cfg.Duration.String(),
	}
	allHist := stats.NewLatencyHist()
	var totalCalls uint64
	var totalWall float64

	for _, policy := range cfg.Policies {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		pr, err := runPhase(ctx, cfg, bin, policy, addrs, control)
		if err != nil {
			return nil, fmt.Errorf("cluster: policy %s: %w", policy, err)
		}
		rep.Policies = append(rep.Policies, pr.report)
		allHist.Merge(pr.hist)
		totalCalls += pr.report.Calls
		totalWall += pr.wall // phases run sequentially
	}

	// Drain the fleet and surface any non-zero exit.
	fleet := servers
	servers = nil // disarm the Kill defer
	if err := StopAll(fleet, 5*time.Second); err != nil {
		return nil, fmt.Errorf("cluster: server drain: %w", err)
	}
	for _, p := range fleet {
		if code := p.ExitCode(); code != 0 {
			return nil, fmt.Errorf("cluster: %s exited with code %d", p.Name, code)
		}
	}

	if totalWall > 0 {
		rep.CallsPerSec = float64(totalCalls) / totalWall
	}
	rep.P99Ms = allHist.Percentile(99) / float64(time.Millisecond)

	RenderReport(cfg.Out, rep)
	return rep, nil
}

// phaseResult carries one phase's report plus the raw pieces Run
// aggregates across phases.
type phaseResult struct {
	report PolicyReport
	hist   *stats.Hist
	wall   float64
}

// runPhase runs one policy phase: sample served counts, run the client
// wave to completion, sample again, merge the clients' snapshots.
func runPhase(ctx context.Context, cfg Config, bin, policy string, addrs []string, control []*stubby.Pool) (*phaseResult, error) {
	before, err := sampleServed(ctx, control)
	if err != nil {
		return nil, err
	}

	clients := make([]*Proc, 0, cfg.Clients)
	defer func() {
		for _, p := range clients {
			p.Kill()
		}
	}()
	for j := 0; j < cfg.Clients; j++ {
		env := []string{
			envRole + "=client",
			fmt.Sprintf("%s=%d", envSeed, cfg.Seed),
			fmt.Sprintf("%s=%d", envMethods, cfg.Methods),
			fmt.Sprintf("%s=%d", envClientID, j),
			envServers + "=" + strings.Join(addrs, ","),
			envPolicy + "=" + policy,
			envDuration + "=" + cfg.Duration.String(),
			fmt.Sprintf("%s=%g", envTimeScale, cfg.TimeScale),
			fmt.Sprintf("%s=%g", envBaseRate, cfg.BaseRate),
			fmt.Sprintf("%s=%d", envPool, cfg.PoolSize),
			fmt.Sprintf("%s=%d", envStripes, cfg.Stripes),
		}
		p, err := Spawn(fmt.Sprintf("client-%s-%d", policy, j), bin, nil, env)
		if err != nil {
			return nil, err
		}
		clients = append(clients, p)
	}

	resultWait := cfg.Duration + 30*time.Second
	results := make([]ClientResult, 0, len(clients))
	for _, p := range clients {
		raw, err := p.Result(resultWait)
		if err != nil {
			return nil, err
		}
		var cr ClientResult
		if err := json.Unmarshal([]byte(raw), &cr); err != nil {
			return nil, fmt.Errorf("%s result: %w", p.Name, err)
		}
		results = append(results, cr)
	}
	wave := clients
	clients = nil // disarm the Kill defer
	if err := StopAll(wave, 5*time.Second); err != nil {
		return nil, err
	}
	for _, p := range wave {
		if code := p.ExitCode(); code != 0 {
			return nil, fmt.Errorf("%s exited with code %d", p.Name, code)
		}
	}

	after, err := sampleServed(ctx, control)
	if err != nil {
		return nil, err
	}

	pr := PolicyReport{Policy: policy, Served: make(map[string]uint64, len(addrs))}
	snaps := make([]telemetry.Snapshot, 0, len(results))
	var wall float64
	for _, cr := range results {
		pr.Calls += cr.Issued
		pr.Errors += cr.Errors
		snaps = append(snaps, cr.Snapshot)
		if cr.WallSeconds > wall {
			wall = cr.WallSeconds
		}
	}
	deltas := make([]float64, len(addrs))
	for i, addr := range addrs {
		d := after[i] - before[i]
		pr.Served[addr] = d
		deltas[i] = float64(d)
	}
	pr.Imbalance = maxOverMean(deltas)

	merged := telemetry.MergeSnapshots(snaps)
	hist := merged.LatencyHist()
	pr.P50Ms = hist.Percentile(50) / float64(time.Millisecond)
	pr.P99Ms = hist.Percentile(99) / float64(time.Millisecond)
	if wall > 0 {
		pr.CallsPerSec = float64(pr.Calls) / wall
	}
	return &phaseResult{report: pr, hist: hist, wall: wall}, nil
}

// sampleServed reads every server's served-call counter via the control
// RPC.
func sampleServed(ctx context.Context, control []*stubby.Pool) ([]uint64, error) {
	out := make([]uint64, len(control))
	for i, pool := range control {
		cctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		raw, err := pool.Call(cctx, ControlMethod, nil)
		cancel()
		if err != nil {
			return nil, fmt.Errorf("control stats from %s: %w", pool.Addr(), err)
		}
		var st ServerStats
		if err := json.Unmarshal(raw, &st); err != nil {
			return nil, fmt.Errorf("control stats from %s: %w", pool.Addr(), err)
		}
		out[i] = st.Served
	}
	return out, nil
}

// maxOverMean is the load-imbalance metric: peak server load over mean
// server load, 1.0 when perfectly balanced, 0 when nothing was served.
func maxOverMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, max float64
	for _, x := range xs {
		sum += x
		if x > max {
			max = x
		}
	}
	if sum == 0 {
		return 0
	}
	return max / (sum / float64(len(xs)))
}

// RenderReport writes the per-policy comparison table (the live-traffic
// analogue of the simulator's Fig. 13–15 output) plus the aggregate line.
func RenderReport(w io.Writer, rep *Report) {
	fmt.Fprintf(w, "cluster: %d servers, %d clients/phase, %s per phase, time-scale %gx\n\n",
		rep.Servers, rep.Clients, rep.Duration, rep.TimeScale)
	fmt.Fprintf(w, "%-16s %10s %8s %9s %9s %10s\n",
		"policy", "calls/s", "errors", "p50 ms", "p99 ms", "imbalance")
	for _, pr := range rep.Policies {
		fmt.Fprintf(w, "%-16s %10.0f %8d %9.2f %9.2f %10.3f\n",
			pr.Policy, pr.CallsPerSec, pr.Errors, pr.P50Ms, pr.P99Ms, pr.Imbalance)
	}
	fmt.Fprintf(w, "\naggregate: %.0f calls/s, p99 %.2f ms\n", rep.CallsPerSec, rep.P99Ms)

	// Per-server served counts, most loaded first, for the worst phase.
	worst := -1
	for i, pr := range rep.Policies {
		if worst < 0 || pr.Imbalance > rep.Policies[worst].Imbalance {
			worst = i
		}
	}
	if worst >= 0 {
		pr := rep.Policies[worst]
		type kv struct {
			addr string
			n    uint64
		}
		rows := make([]kv, 0, len(pr.Served))
		for a, n := range pr.Served {
			rows = append(rows, kv{a, n})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].n > rows[j].n })
		fmt.Fprintf(w, "\nworst-imbalance phase (%s) per-server served:\n", pr.Policy)
		for _, r := range rows {
			fmt.Fprintf(w, "  %-22s %d\n", r.addr, r.n)
		}
	}
}
