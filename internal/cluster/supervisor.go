// Package cluster is the multi-process harness behind cmd/rpccluster: it
// runs the real stubby stack as a fleet — N server processes and M client
// processes over real TCP — drives it from the synthetic method catalog
// with time-compressed diurnal load, and renders the paper's Fig. 13–15
// per-policy load-imbalance comparison from live traffic instead of the
// discrete-event simulator.
//
// Topology and protocol (DESIGN.md §13): the parent re-executes its own
// binary with CLUSTERCTL_* environment variables selecting a child role.
// Children speak a line protocol on stdout — "CLUSTERCTL READY addr=..."
// after binding, "CLUSTERCTL RESULT <json>" on completion — and treat
// SIGTERM or stdin EOF as the drain signal, so an orphaned child exits as
// soon as its parent dies.
package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"time"
)

// Stdout markers of the child line protocol. Everything else a child
// writes to stdout is forwarded to the parent's stderr as a log line.
const (
	readyPrefix  = "CLUSTERCTL READY "
	resultPrefix = "CLUSTERCTL RESULT "
)

// Proc is one supervised child process.
type Proc struct {
	// Name labels the child in logs and errors ("server-0", "client-2").
	Name string

	cmd   *exec.Cmd
	stdin io.WriteCloser

	readyCh  chan string // buffered; the addr from the READY line
	resultCh chan string // buffered; the raw JSON from the RESULT line

	waitOnce sync.Once
	waitErr  error
	done     chan struct{} // closed when the process exited and stdout drained

	scanDone chan struct{}
}

// Spawn starts bin with the given extra environment (os.Environ is
// inherited) and supervises it: stdout is scanned for protocol lines,
// stderr passes through to the parent's stderr, and stdin is held open as
// the orphan-prevention channel — if the parent dies, the child sees EOF
// and drains.
func Spawn(name, bin string, args []string, extraEnv []string) (*Proc, error) {
	cmd := exec.Command(bin, args...)
	cmd.Env = append(os.Environ(), extraEnv...)
	cmd.Stderr = os.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, fmt.Errorf("cluster: %s stdin: %w", name, err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, fmt.Errorf("cluster: %s stdout: %w", name, err)
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("cluster: starting %s: %w", name, err)
	}
	p := &Proc{
		Name:     name,
		cmd:      cmd,
		stdin:    stdin,
		readyCh:  make(chan string, 1),
		resultCh: make(chan string, 1),
		done:     make(chan struct{}),
		scanDone: make(chan struct{}),
	}
	go p.scan(stdout)
	go func() {
		<-p.scanDone
		p.waitOnce.Do(func() { p.waitErr = cmd.Wait() })
		close(p.done)
	}()
	return p, nil
}

// scan reads the child's stdout, routing protocol lines to their channels
// and forwarding everything else to stderr.
func (p *Proc) scan(r io.Reader) {
	defer close(p.scanDone)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 4<<20) // RESULT lines carry histograms
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, readyPrefix):
			addr := strings.TrimPrefix(strings.TrimSpace(strings.TrimPrefix(line, readyPrefix)), "addr=")
			select {
			case p.readyCh <- addr:
			default:
			}
		case strings.HasPrefix(line, resultPrefix):
			select {
			case p.resultCh <- strings.TrimPrefix(line, resultPrefix):
			default:
			}
		default:
			fmt.Fprintf(os.Stderr, "[%s] %s\n", p.Name, line)
		}
	}
}

// WaitReady blocks until the child prints its READY line and returns the
// advertised address. A child that exits first fails with its exit error.
func (p *Proc) WaitReady(timeout time.Duration) (string, error) {
	select {
	case addr := <-p.readyCh:
		return addr, nil
	case <-p.done:
		return "", fmt.Errorf("cluster: %s exited before READY: %w", p.Name, p.exitErr())
	case <-time.After(timeout):
		return "", fmt.Errorf("cluster: %s not ready after %v", p.Name, timeout)
	}
}

// Result blocks until the child prints its RESULT line and returns the raw
// JSON. A child that exits without one fails with its exit error.
func (p *Proc) Result(timeout time.Duration) (string, error) {
	select {
	case res := <-p.resultCh:
		return res, nil
	case <-p.done:
		// The process exited; a buffered RESULT may still have raced in.
		select {
		case res := <-p.resultCh:
			return res, nil
		default:
		}
		return "", fmt.Errorf("cluster: %s exited without a result: %w", p.Name, p.exitErr())
	case <-time.After(timeout):
		return "", fmt.Errorf("cluster: %s produced no result after %v", p.Name, timeout)
	}
}

// exitErr normalizes the child's exit status into a non-nil error carrying
// the exit code.
func (p *Proc) exitErr() error {
	if p.waitErr == nil {
		return errors.New("exit status 0")
	}
	return p.waitErr
}

// ExitCode returns the child's exit code once it has exited, -1 before.
func (p *Proc) ExitCode() int {
	select {
	case <-p.done:
	default:
		return -1
	}
	if p.waitErr == nil {
		return 0
	}
	var ee *exec.ExitError
	if errors.As(p.waitErr, &ee) {
		return ee.ExitCode()
	}
	return -1
}

// Wait blocks for process exit and returns its exit error (nil on status
// 0). Safe to call multiple times.
func (p *Proc) Wait() error {
	<-p.done
	return p.waitErr
}

// Stop asks the child to drain — SIGTERM plus closing its stdin — then
// waits up to grace before escalating to SIGKILL. It returns the child's
// exit error (nil for a clean exit).
func (p *Proc) Stop(grace time.Duration) error {
	_ = p.stdin.Close()
	if p.cmd.Process != nil {
		_ = p.cmd.Process.Signal(syscall.SIGTERM)
	}
	select {
	case <-p.done:
		return p.waitErr
	case <-time.After(grace):
	}
	if p.cmd.Process != nil {
		_ = p.cmd.Process.Kill()
	}
	<-p.done
	return fmt.Errorf("cluster: %s did not drain within %v (killed)", p.Name, grace)
}

// Kill terminates the child immediately, for teardown on error paths.
func (p *Proc) Kill() {
	_ = p.stdin.Close()
	if p.cmd.Process != nil {
		_ = p.cmd.Process.Kill()
	}
	<-p.done
}

// StopAll drains procs concurrently, returning the first failure.
func StopAll(procs []*Proc, grace time.Duration) error {
	var wg sync.WaitGroup
	errCh := make(chan error, len(procs))
	for _, p := range procs {
		if p == nil {
			continue
		}
		wg.Add(1)
		go func(p *Proc) {
			defer wg.Done()
			if err := p.Stop(grace); err != nil {
				errCh <- fmt.Errorf("%s: %w", p.Name, err)
			}
		}(p)
	}
	wg.Wait()
	close(errCh)
	return <-errCh
}
