package testutil

import "rpcscale/internal/sanitize"

// Instrumented reports whether runtime instrumentation that perturbs
// allocation behavior is compiled in: the race detector or the sanitize
// shims (-tags sanitize). Allocation-floor tests skip under either —
// the floors assert the production build, not the instrumented one.
const Instrumented = RaceEnabled || sanitize.Enabled
