//go:build race

// Package testutil holds small helpers shared by tests across packages.
package testutil

// RaceEnabled reports whether the race detector is compiled in. Allocation
// budget tests skip under the race detector: its instrumentation changes
// allocation counts and would make testing.AllocsPerRun assertions
// meaningless.
const RaceEnabled = true
