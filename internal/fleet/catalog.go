package fleet

import (
	"fmt"
	"math"
	"sort"
	"time"

	"rpcscale/internal/stats"
	"rpcscale/internal/trace"
)

// Config sizes a synthetic catalog.
type Config struct {
	// Methods is the catalog size. The paper studies "over 10,000"
	// methods; tests default to 1,000, which preserves every
	// distributional shape at lower cost.
	Methods int
	// Clusters is the number of clusters in the topology the catalog
	// will run on (methods get home clusters assigned here).
	Clusters int
	// Seed drives all randomized choices.
	Seed uint64
}

// DefaultConfig returns the test-scale configuration.
func DefaultConfig() Config { return Config{Methods: 1000, Clusters: 36, Seed: 1} }

// Catalog is the synthetic fleet: methods indexed by latency rank, their
// services, the popularity sampler, and the error mix.
type Catalog struct {
	// Methods is ordered by latency rank (median completion time
	// ascending), the x-axis ordering of the paper's per-method figures.
	Methods  []*Method
	Services map[string]*Service
	ErrMix   *ErrorMix

	popCum []float64 // cumulative popularity for sampling
}

// Latency tier boundaries (§2.3 calibration; see DESIGN.md §4).
const (
	fastTierEnd = 0.10 // methods below this rank fraction are sub-10.7ms
	slowTierBeg = 0.95 // methods above are the multi-second tier
)

var (
	fastTierLo = 150 * time.Microsecond
	fastTierHi = 10700 * time.Microsecond // 10.7 ms — the paper's median floor for 90% of methods
	mainTierHi = 400 * time.Millisecond
	slowTierHi = 3 * time.Second
)

// namedSpec pins the paper's named services (Table 1 and §2.6) to
// explicit popularity shares and latency ranks.
type namedSpec struct {
	method     string
	service    string
	class      ServiceClass
	popularity float64
	// rankFrac places the method on the latency axis (fraction of the
	// catalog; small = fast). Ranks < lowLatencyGroup place the method
	// in the "100 lowest-latency methods" set.
	rankFrac float64
	layer    Layer
	// cpuMedian is the median normalized CPU cost per call.
	cpuMedian float64
	reqSize   int64 // typical request bytes (Table 1)
	respSize  int64
	// queueFactor scales server queue waits (queue-heavy services > 1).
	queueFactor float64
}

// namedSpecs encodes the calibration targets:
//   - networkdisk totals 35% of calls (Write alone 28%), §2.6
//   - top-10 methods total 58% of calls, §2.3
//   - the eight studied services of Table 1 exist with their classes
//   - ML Inference is rare (0.17% of calls) but CPU-heavy (§2.6)
func namedSpecs() []namedSpec {
	return []namedSpec{
		{"networkdisk/Write", "networkdisk", Storage, 0.28, 0.002, 0, 0.010, 32 * 1024, 256, 1.0},
		{"networkdisk/Read", "networkdisk", Storage, 0.05, 0.105, 0, 0.012, 256, 32 * 1024, 1.0},
		{"networkdisk/Stat", "networkdisk", Storage, 0.02, 0.004, 0, 0.006, 128, 128, 1.0},
		{"spanner/ReadRows", "spanner", Storage, 0.05, 0.18, 0, 0.030, 800, 4096, 1.0},
		{"spanner/Commit", "spanner", Storage, 0.03, 0.30, 0, 0.045, 2048, 128, 1.0},
		{"kvstore/Search", "kvstore", LatencySensitive, 0.04, 0.0005, 0, 0.008, 128, 512, 0.5},
		{"kvstore/Set", "kvstore", LatencySensitive, 0.02, 0.001, 0, 0.008, 512, 64, 0.5},
		{"f1/ProcessPacket", "f1", Compute, 0.04, 0.35, 2, 0.150, 75, 4096, 1.2},
		{"bigtable/SearchValue", "bigtable", Storage, 0.03, 0.15, 1, 0.025, 1024, 2048, 1.0},
		{"bigquery/Exec", "bigquery", Analytics, 0.02, 0.55, 2, 0.120, 4096, 16384, 1.0},
		{"ssdcache/Lookup", "ssdcache", Storage, 0.015, 0.007, 0, 0.009, 400, 2048, 8.0},
		{"videometadata/GetMetadata", "videometadata", Storage, 0.005, 0.12, 1, 0.020, 32 * 1024, 8192, 6.0},
		{"mlinference/Infer", "mlinference", Compute, 0.0017, 0.060, 0, 2.0, 512, 1024, 0.8},
	}
}

// New generates a calibrated catalog.
func New(cfg Config) *Catalog {
	if cfg.Methods < 200 {
		cfg.Methods = 200
	}
	if cfg.Clusters <= 0 {
		cfg.Clusters = 36
	}
	root := stats.NewRNG(cfg.Seed)
	cat := &Catalog{Services: make(map[string]*Service), ErrMix: DefaultErrorMix()}

	n := cfg.Methods
	specs := namedSpecs()

	// --- Latency-rank reservation for named methods. ---
	nameAtRank := make(map[int]*namedSpec, len(specs))
	for i := range specs {
		rank := int(specs[i].rankFrac * float64(n))
		for nameAtRank[rank] != nil {
			rank++
		}
		nameAtRank[rank] = &specs[i]
	}

	// --- Popularity for the generic tail. ---
	var namedMass float64
	for _, s := range specs {
		namedMass += s.popularity
	}
	genericCount := n - len(specs)
	genericMass := 1 - namedMass
	// Fit the Zipf exponent so the top-87 generic methods carry enough
	// mass for the paper's "top-100 methods = 91% of calls" anchor:
	// named mass (~61%) + top-87 generic must reach ~91%.
	genericTopK := 100 - len(specs)
	targetTopFrac := (0.91 - namedMass) / genericMass
	zipfS := fitZipfShare(genericCount, genericTopK, targetTopFrac)
	genericZipf := stats.NewZipf(genericCount, zipfS, 2)

	// Cap generic weights below the 10th named weight so the top-10
	// anchor (58%) holds by construction.
	capWeight := 0.019
	genericWeights := make([]float64, genericCount)
	var gw float64
	for i := range genericWeights {
		w := genericZipf.Share(i)
		if w*genericMass > capWeight {
			w = capWeight / genericMass
		}
		genericWeights[i] = w
		gw += w
	}
	for i := range genericWeights {
		genericWeights[i] = genericWeights[i] / gw * genericMass
	}

	// --- Generic services. ---
	genericServices := n / 50
	if genericServices < 8 {
		genericServices = 8
	}

	// Assign generic popularity ranks to latency ranks: biased toward
	// low latency for popular methods (the paper's fast-and-popular
	// head), with the slowest decile capped to ~1.1% of calls below.
	freeRanks := make([]int, 0, genericCount)
	for r := 0; r < n; r++ {
		if nameAtRank[r] == nil {
			freeRanks = append(freeRanks, r)
		}
	}
	assignRng := root.Child("latency-assign")
	// Popularity rank p gets a latency position drawn with a Beta-like
	// skew. The "100 lowest-latency methods = 40% of calls" mass is
	// carried by the named storage/KV methods pinned there, so popular
	// generics are biased toward the low-middle of the axis (above the
	// bottom decile), and unpopular generics fill uniformly.
	latencyOf := make([]int, genericCount)
	taken := make([]bool, len(freeRanks))
	place := func(p int, frac float64) {
		pos := int(frac * float64(len(freeRanks)))
		if pos >= len(freeRanks) {
			pos = len(freeRanks) - 1
		}
		for i := 0; i < len(freeRanks); i++ {
			j := (pos + i) % len(freeRanks)
			if !taken[j] {
				taken[j] = true
				latencyOf[p] = freeRanks[j]
				return
			}
		}
	}
	for p := 0; p < genericCount; p++ {
		if p < genericCount/3 {
			// Popular third: low-biased but kept above the bottom decile.
			u := math.Pow(assignRng.Float64(), 1.0+2.0*(1-3*float64(p)/float64(genericCount)))
			place(p, 0.10+0.90*u)
		} else {
			place(p, assignRng.Float64())
		}
	}

	// --- Build methods. ---
	cat.Methods = make([]*Method, n)
	buildRng := root.Child("method-models")
	genericIdx := 0
	slowCut := int(slowTierBeg * float64(n))
	for rank := 0; rank < n; rank++ {
		if spec := nameAtRank[rank]; spec != nil {
			cat.Methods[rank] = buildNamedMethod(cat, spec, rank, n, buildRng)
		}
	}
	// Generic methods: popularity rank order is perm-independent; walk
	// popularity ranks and drop each into its assigned latency rank.
	for p := 0; p < genericCount; p++ {
		rank := latencyOf[p]
		svcName := fmt.Sprintf("svc%03d", genericIdx%genericServices)
		m := buildGenericMethod(cat, svcName, rank, n, genericWeights[p], buildRng)
		cat.Methods[rank] = m
		genericIdx++
	}

	// --- Slow-decile popularity cap: slowest 10% of methods carry 1.1%
	// of calls (§2.3), redistributing the excess to the fast half. ---
	rebalanceSlowTail(cat.Methods, slowCut, 0.011)

	// --- Layers, callees, placement, tiers. ---
	wireRng := root.Child("wiring")
	assignLayersAndCallees(cat.Methods, wireRng)
	assignPlacement(cat.Methods, cfg.Clusters, wireRng)
	for _, m := range cat.Methods {
		m.Tier = tierForClass(m.Service.Class)
	}

	// --- Normalize popularity and build the sampler. ---
	var total float64
	for _, m := range cat.Methods {
		total += m.Popularity
	}
	cat.popCum = make([]float64, n)
	acc := 0.0
	for i, m := range cat.Methods {
		m.Popularity /= total
		m.LatencyRank = i
		acc += m.Popularity
		cat.popCum[i] = acc
	}
	cat.popCum[n-1] = 1
	return cat
}

// medianForRank maps a latency rank to the method's target median RCT.
func medianForRank(rank, n int) time.Duration {
	r := float64(rank) / float64(n)
	logLerp := func(lo, hi time.Duration, f float64) time.Duration {
		return time.Duration(float64(lo) * math.Pow(float64(hi)/float64(lo), f))
	}
	switch {
	case r < fastTierEnd:
		return logLerp(fastTierLo, fastTierHi, r/fastTierEnd)
	case r < slowTierBeg:
		return logLerp(fastTierHi, mainTierHi, (r-fastTierEnd)/(slowTierBeg-fastTierEnd))
	default:
		return logLerp(mainTierHi, slowTierHi, (r-slowTierBeg)/(1-slowTierBeg))
	}
}

// latencyModel builds the per-method application-time distribution for a
// target median. The mixture structure implements the paper's per-method
// shape: a small fast-path mode (cache hits) that pins P1 under ~657 us
// for 90% of methods, a main lognormal body, and a slow-tail mode that
// produces the multi-second P99s of the slowest tier.
func latencyModel(rank, n int, rng *stats.RNG) stats.Dist {
	r := float64(rank) / float64(n)
	median := float64(medianForRank(rank, n))

	// Main body: P99/median spread. The emergent per-method P99 also
	// absorbs queue, wire, and straggler-child tails, so the body factor
	// is kept modest to land the paper's "50% of methods have P99 >=
	// 225 ms" crossing near the median-rank method.
	tf := math.Exp(math.Log(1.6) + rng.Float64()*math.Log(2.8)) // 1.6x..4.5x
	main := stats.LogNormalFromMedianP99(median, median*tf)

	components := []stats.Dist{main}
	weights := []float64{1}

	if r < 0.92 {
		// Fast path: several percent of calls short-circuit (cache hits)
		// in under ~300 us, which pins method P1s near the paper's
		// 657 us bound even after stack/wire floors are added.
		fastMedian := float64(100*time.Microsecond) * (0.7 + 0.6*rng.Float64())
		if fastMedian > median {
			fastMedian = median * 0.8
		}
		fast := stats.LogNormal{Mu: math.Log(fastMedian), Sigma: 0.4}
		w := 0.04 + 0.08*rng.Float64()
		components = append(components, fast)
		weights = append(weights, w)
		weights[0] -= w
	}

	// Slow tail: stragglers well beyond the body. The slowest tier gets
	// a heavier, longer tail (multi-second to minute-scale), which also
	// drives the "slowest 10% of methods consume 89% of RPC time"
	// anchor through their inflated means.
	slowFactor := 3 + 5*rng.Float64()
	slowWeight := 0.003 + 0.005*rng.Float64()
	if r >= slowTierBeg {
		// Tier C: P99 lands >= 5s and means reach tens of seconds, which
		// is what lets ~1% of calls carry most of the total RPC time.
		slowFactor = 30 + 50*rng.Float64()
		slowWeight = 0.10 + 0.08*rng.Float64()
	}
	slow := stats.LogNormal{Mu: math.Log(median * slowFactor), Sigma: 0.6}
	components = append(components, slow)
	weights = append(weights, slowWeight)
	weights[0] -= slowWeight

	return stats.NewMixture(components, weights)
}

// sizeModel builds request/response size distributions. Method-median
// request sizes are log-spread around ~1.5 KB with responses around
// ~300 B (§2.5), each with an in-method heavy tail reaching the paper's
// P99 196 KB / 563 KB fleet scale.
func sizeModel(rng *stats.RNG, reqTypical, respTypical int64) (req, resp stats.Dist) {
	build := func(typical int64, tailMax float64) stats.Dist {
		med := float64(typical)
		body := stats.LogNormal{Mu: math.Log(med), Sigma: 0.5 + 0.6*rng.Float64()}
		tail := stats.Pareto{Min: med * 8, Alpha: 1.1, Max: tailMax}
		w := 0.02 + 0.04*rng.Float64()
		return stats.NewMixture([]stats.Dist{body, tail}, []float64{1 - w, w})
	}
	return build(reqTypical, 4e6), build(respTypical, 1.2e7)
}

// genericSizes draws a generic method's typical sizes: most methods are
// write-dominant (median response below median request, §2.5).
func genericSizes(rng *stats.RNG) (reqTypical, respTypical int64) {
	req := math.Exp(math.Log(100) + rng.Float64()*math.Log(300)) // 100B..30KB
	ratio := math.Exp(rng.NormFloat64()*1.1 - 0.8)               // median ~0.45, heavy both ways
	resp := req * ratio
	if resp < 64 {
		resp = 64
	}
	return int64(req), int64(resp)
}

// cpuModel builds the per-call CPU cost distribution: a floor near the
// paper's ~0.017 normalized-cycle cheapest calls plus a heavy-tailed
// variable part whose P99 is one-to-two orders above the median (§4.2).
func cpuModel(rng *stats.RNG, median float64) stats.Dist {
	sigma := 1.0 + 1.0*rng.Float64() // P99/median ~ 10x..100x
	body := stats.LogNormal{Mu: math.Log(median), Sigma: sigma}
	return stats.Shifted{Base: body, Offset: 0.016}
}

func buildNamedMethod(cat *Catalog, spec *namedSpec, rank, n int, rng *stats.RNG) *Method {
	svc := cat.service(spec.service, spec.class)
	mRng := rng.Child(spec.method)
	req, resp := sizeModel(mRng, spec.reqSize, spec.respSize)
	m := &Method{
		Name:        spec.method,
		Service:     svc,
		Index:       rank,
		Popularity:  spec.popularity,
		Layer:       spec.layer,
		AppTime:     latencyModel(rank, n, mRng),
		StackBase:   stackModel(mRng, spec.class),
		ReqSize:     req,
		RespSize:    resp,
		CPUCost:     cpuModel(mRng, spec.cpuMedian),
		QueueFactor: spec.queueFactor,
		ErrorRate:   0.012 + 0.015*mRng.Float64(),
		HedgeProb:   hedgeProbFor(spec.class, mRng),
		Locality:    localityFor(spec.class, mRng),
	}
	svc.Methods = append(svc.Methods, m)
	return m
}

func buildGenericMethod(cat *Catalog, svcName string, rank, n int, popularity float64, rng *stats.RNG) *Method {
	classes := []ServiceClass{Storage, Compute, Analytics, Generic, Generic}
	mRng := rng.Child(fmt.Sprintf("generic-%d", rank))
	class := classes[mRng.Intn(len(classes))]
	svc := cat.service(svcName, class)
	reqTyp, respTyp := genericSizes(mRng)
	req, resp := sizeModel(mRng, reqTyp, respTyp)
	cpuMedian := math.Exp(math.Log(0.008) + mRng.Float64()*math.Log(30)) // 0.008..0.24
	m := &Method{
		Name:        fmt.Sprintf("%s/M%04d", svcName, rank),
		Service:     svc,
		Index:       rank,
		Popularity:  popularity,
		AppTime:     latencyModel(rank, n, mRng),
		StackBase:   stackModel(mRng, class),
		ReqSize:     req,
		RespSize:    resp,
		CPUCost:     cpuModel(mRng, cpuMedian),
		QueueFactor: genericQueueFactor(mRng),
		ErrorRate:   0.008 + 0.022*mRng.Float64(),
		HedgeProb:   hedgeProbFor(class, mRng),
		Locality:    localityFor(class, mRng),
	}
	svc.Methods = append(svc.Methods, m)
	return m
}

// stackModel gives the per-call RPC processing base cost.
// Latency-sensitive services are stack-heavy relative to their tiny app
// time (§3.3's KV-Store category).
func stackModel(rng *stats.RNG, class ServiceClass) stats.Dist {
	base := float64(15*time.Microsecond) * (0.6 + 0.8*rng.Float64())
	if class == LatencySensitive {
		base *= 3
	}
	return stats.Shifted{
		Base:   stats.Exponential{MeanVal: base * 0.5},
		Offset: base,
	}
}

// genericQueueFactor makes most pools lightly queued with a minority of
// congested, queue-dominated pools.
func genericQueueFactor(rng *stats.RNG) float64 {
	if rng.Bool(0.15) {
		return 3 + 6*rng.Float64()
	}
	return 0.6 + 0.8*rng.Float64()
}

func hedgeProbFor(class ServiceClass, rng *stats.RNG) float64 {
	switch class {
	case Storage, LatencySensitive:
		return 0.10 + 0.15*rng.Float64()
	default:
		return 0.02 + 0.05*rng.Float64()
	}
}

func localityFor(class ServiceClass, rng *stats.RNG) float64 {
	switch class {
	case LatencySensitive:
		return 0.92 + 0.06*rng.Float64()
	case Storage:
		return 0.75 + 0.15*rng.Float64()
	default:
		return 0.60 + 0.25*rng.Float64()
	}
}

func (c *Catalog) service(name string, class ServiceClass) *Service {
	svc := c.Services[name]
	if svc == nil {
		svc = &Service{Name: name, Class: class}
		c.Services[name] = svc
	}
	return svc
}

// rebalanceSlowTail rescales the popularity of methods at or beyond
// slowCut so they total targetMass, returning the excess to the rest
// proportionally.
func rebalanceSlowTail(methods []*Method, slowCut int, targetMass float64) {
	var slowMass, fastMass float64
	for i, m := range methods {
		if i >= slowCut {
			slowMass += m.Popularity
		} else {
			fastMass += m.Popularity
		}
	}
	if slowMass <= targetMass || fastMass == 0 {
		return
	}
	scaleSlow := targetMass / slowMass
	scaleFast := (fastMass + slowMass - targetMass) / fastMass
	for i, m := range methods {
		if i >= slowCut {
			m.Popularity *= scaleSlow
		} else {
			m.Popularity *= scaleFast
		}
	}
}

// assignLayersAndCallees gives every method a layer and a callee set from
// strictly lower layers (layer-0 methods may call other layer-0 methods
// of lower latency rank, modeling replication sub-calls; the strict
// ordering guarantees termination together with the workload depth cap).
func assignLayersAndCallees(methods []*Method, rng *stats.RNG) {
	// Layer distribution for generic methods (named ones are pinned).
	layerWeights := []float64{0.40, 0.22, 0.16, 0.13, 0.09}
	var byLayer [NumLayers][]*Method
	for _, m := range methods {
		if m.Layer == 0 && !isNamed(m) {
			u := rng.Float64()
			acc := 0.0
			for l, w := range layerWeights {
				acc += w
				if u <= acc {
					m.Layer = Layer(l)
					break
				}
			}
		}
		byLayer[m.Layer] = append(byLayer[m.Layer], m)
	}
	for _, m := range methods {
		var pool []*Method
		if m.Layer == 0 {
			// Replication peers: earlier layer-0 methods only.
			for _, peer := range byLayer[0] {
				if peer.Index < m.Index {
					pool = append(pool, peer)
				}
			}
			pool = fasterThan(pool, m)
			m.LeafProb = 0.55 + 0.25*rng.Float64()
			m.FanOut = stats.NewMixture(
				[]stats.Dist{
					stats.LogNormal{Mu: math.Log(2.5), Sigma: 0.5},
					stats.Pareto{Min: 8, Alpha: 1.4, Max: 200},
				},
				[]float64{0.93, 0.07},
			)
		} else {
			for l := Layer(0); l < m.Layer; l++ {
				pool = append(pool, byLayer[l]...)
			}
			// A parent's application time includes its nested calls
			// (§2.1), and its latency model was calibrated as the
			// total, so callees must be faster methods: partition/
			// aggregate parents wait on quick storage leaves, not on
			// peers slower than themselves.
			pool = fasterThan(pool, m)
			m.LeafProb = 0.15 + 0.25*rng.Float64()
			if m.Index < len(methods)/10 {
				// Sub-10ms methods cannot orchestrate thousand-way
				// fan-outs; their trees are modest.
				m.FanOut = stats.NewMixture(
					[]stats.Dist{
						stats.LogNormal{Mu: math.Log(2.5), Sigma: 0.6},
						stats.Pareto{Min: 8, Alpha: 1.5, Max: 64},
					},
					[]float64{0.95, 0.05},
				)
			} else {
				medianFan := 3 + 10*rng.Float64()
				m.FanOut = stats.NewMixture(
					[]stats.Dist{
						stats.LogNormal{Mu: math.Log(medianFan), Sigma: 0.7},
						stats.Pareto{Min: 40, Alpha: 1.2, Max: 2000},
					},
					[]float64{0.90, 0.10},
				)
			}
		}
		if len(pool) == 0 {
			m.LeafProb = 1
			continue
		}
		// Pick 2-6 callees, popularity-biased: popular methods are
		// called from many places.
		want := 2 + rng.Intn(5)
		if want > len(pool) {
			want = len(pool)
		}
		seen := make(map[*Method]bool, want)
		for len(seen) < want {
			cand := pool[rng.Intn(len(pool))]
			if rng.Bool(0.5) {
				// Popularity-biased draw: resample proportional-ish.
				best := cand
				for t := 0; t < 2; t++ {
					alt := pool[rng.Intn(len(pool))]
					if alt.Popularity > best.Popularity {
						best = alt
					}
				}
				cand = best
			}
			seen[cand] = true
		}
		m.Callees = make([]*Method, 0, len(seen))
		for cm := range seen {
			m.Callees = append(m.Callees, cm)
		}
		sort.Slice(m.Callees, func(i, j int) bool { return m.Callees[i].Index < m.Callees[j].Index })
	}
}

// fasterThan filters a callee pool to methods with a strictly lower
// latency rank than m (children are faster than their parents, so nested
// waiting fits inside the parent's calibrated application time).
func fasterThan(pool []*Method, m *Method) []*Method {
	out := pool[:0]
	for _, p := range pool {
		if p.Index < m.Index {
			out = append(out, p)
		}
	}
	return out
}

// tierForClass derives a method's default tier from its service class:
// storage and analytics services own durable state, the in-memory
// KV/latency-sensitive services are the memcached tier, and compute plus
// the generic long tail are stateless. Motif packs may retag.
func tierForClass(class ServiceClass) trace.Tier {
	switch class {
	case Storage, Analytics:
		return trace.TierStateful
	case LatencySensitive:
		return trace.TierCache
	default:
		return trace.TierStateless
	}
}

func isNamed(m *Method) bool {
	switch m.Service.Name {
	case "networkdisk", "spanner", "kvstore", "f1", "bigtable", "bigquery", "ssdcache", "videometadata", "mlinference":
		return true
	}
	return false
}

// assignPlacement gives every method a set of home clusters and, within
// the home set, its serving footprint. Popular services run in many
// clusters, long-tail services in few (driving Fig. 16's per-cluster
// sample spreads).
func assignPlacement(methods []*Method, clusters int, rng *stats.RNG) {
	for _, m := range methods {
		want := 3 + int(m.Popularity*float64(clusters)*40)
		if isNamed(m) {
			want = clusters * 3 / 4 // studied services are everywhere
		}
		if want > clusters {
			want = clusters
		}
		if want < 1 {
			want = 1
		}
		perm := rng.Perm(clusters)
		m.HomeClusters = append([]int(nil), perm[:want]...)
		sort.Ints(m.HomeClusters)
	}
}

// fitZipfShare bisects the Zipf exponent s so that the top k of n ranks
// carry the target share of mass.
func fitZipfShare(n, k int, target float64) float64 {
	if k <= 0 || k >= n || target <= 0 || target >= 1 {
		return 1.0
	}
	lo, hi := 0.01, 4.0
	for i := 0; i < 40; i++ {
		mid := (lo + hi) / 2
		z := stats.NewZipf(n, mid, 2)
		if z.CumShare(k) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// SampleMethod draws a method by popularity.
func (c *Catalog) SampleMethod(rng *stats.RNG) *Method {
	u := rng.Float64()
	i := sort.SearchFloat64s(c.popCum, u)
	if i >= len(c.Methods) {
		i = len(c.Methods) - 1
	}
	return c.Methods[i]
}

// MethodByName finds a method by its fully qualified name, or nil.
func (c *Catalog) MethodByName(name string) *Method {
	for _, m := range c.Methods {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// TopByPopularity returns the k most popular methods, descending.
func (c *Catalog) TopByPopularity(k int) []*Method {
	sorted := append([]*Method(nil), c.Methods...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Popularity > sorted[j].Popularity })
	if k > len(sorted) {
		k = len(sorted)
	}
	return sorted[:k]
}

// PopularityShare returns the combined call share of the k most popular
// methods.
func (c *Catalog) PopularityShare(k int) float64 {
	var total float64
	for _, m := range c.TopByPopularity(k) {
		total += m.Popularity
	}
	return total
}

// ServiceShare returns a service's share of fleet calls.
func (c *Catalog) ServiceShare(service string) float64 {
	svc := c.Services[service]
	if svc == nil {
		return 0
	}
	var total float64
	for _, m := range svc.Methods {
		total += m.Popularity
	}
	return total
}
