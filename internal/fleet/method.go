package fleet

import (
	"time"

	"rpcscale/internal/stats"
	"rpcscale/internal/trace"
)

// Layer places a method in the call hierarchy: higher layers call lower
// ones, so call trees terminate. Storage leaves sit at layer 0, frontends
// at the top.
type Layer int

// NumLayers is the height of the calling hierarchy. With fan-out mostly
// at the top two layers, emergent tree depths land in the paper's
// "wider than deep" regime (P99 depth < 10 for half of methods).
const NumLayers = 5

// Method is one RPC method of the synthetic fleet with its behavioral
// models. All distributions are sampled with the caller's RNG so the
// catalog itself is immutable and safe for concurrent use.
type Method struct {
	Name    string
	Service *Service
	Index   int // position in the catalog (stable identity)

	// LatencyRank is the method's position when sorted by median
	// latency (the x-axis of the paper's per-method figures).
	LatencyRank int

	// Popularity is the method's share of fleet call volume (sums to 1
	// across the catalog).
	Popularity float64

	Layer Layer

	// AppTime models handler processing time (ns) on a nominal-speed,
	// idle cluster; the simulator scales it by cluster speed and
	// exogenous slowdown. For non-leaf methods this is the local
	// compute only — nested calls add on top, and the span generator
	// folds child latencies into the parent's application time exactly
	// as Dapper does.
	AppTime stats.Dist

	// StackBase is the per-call RPC processing cost (ns) excluding the
	// per-byte serialization work, which scales with message size.
	StackBase stats.Dist

	// ReqSize and RespSize model message sizes (bytes, >= 64).
	ReqSize  stats.Dist
	RespSize stats.Dist

	// LeafProb is the probability an invocation makes no nested calls.
	LeafProb float64
	// FanOut is the number of child calls when not a leaf.
	FanOut stats.Dist
	// Callees are the methods children are drawn from (uniformly).
	Callees []*Method

	// CPUCost models normalized CPU cycles per call. Drawn
	// independently of latency and size, reproducing the paper's
	// finding that neither predicts CPU cost (§4.2).
	CPUCost stats.Dist

	// QueueFactor scales server-side queue waits for this method's
	// serving pool. The paper's queue-heavy services (SSD cache, Video
	// Metadata, §3.3.1) run light handlers behind deep queues; a factor
	// above 1 models that pool's congestion.
	QueueFactor float64

	// ErrorRate is the per-call probability of a non-OK outcome.
	ErrorRate float64

	// HedgeProb is the probability a call is issued with hedging
	// enabled, the main source of Cancelled outcomes (§4.4).
	HedgeProb float64

	// Locality is the probability the client runs in the same cluster
	// as the server.
	Locality float64

	// HomeClusters are indices (into the topology's cluster list) where
	// the method's servers run.
	HomeClusters []int

	// Tier is the method's state discipline (stateless/stateful/cache),
	// following the three-tier decomposition of "Complexity at Scale".
	// The catalog derives it from the service class; motif packs may
	// retag methods (cache-aside promotes its lookup tier to cache).
	Tier trace.Tier

	// --- Motif wiring, set by ApplyMotifs (all zero without motifs). ---

	// SharedDep marks a fan-in target: within one call graph the method
	// is invoked at most once, and every further caller links to the
	// existing span (an extra in-edge) instead of spawning a new subtree.
	SharedDep bool

	// Cache configures cache-aside: calls consult Cache.Method first and
	// branch deterministically on hit/miss.
	Cache *CacheAside

	// SidecarProb is the probability a call to this method is routed
	// through a sidecar proxy hop (an extra span between caller and
	// callee).
	SidecarProb float64

	// Replicas is the cross-datacenter replication factor: each call
	// additionally writes to this many replicas in other datacenters.
	Replicas int
}

// CacheAside is the cache-aside motif configuration of one method.
type CacheAside struct {
	// Method is the cache-tier method consulted before the handler runs.
	Method *Method
	// HitRate is the deterministic hit probability: the branch is a pure
	// function of (trace ID, span ID), so a graph's shape replays
	// exactly for a fixed seed.
	HitRate float64
}

// SampleAppTime draws handler time as a duration.
func (m *Method) SampleAppTime(rng *stats.RNG) time.Duration {
	return time.Duration(m.AppTime.Sample(rng))
}

// SampleSizes draws request and response sizes, clamped to the paper's
// 64-byte minimum (a cache line).
func (m *Method) SampleSizes(rng *stats.RNG) (req, resp int64) {
	req = int64(m.ReqSize.Sample(rng))
	resp = int64(m.RespSize.Sample(rng))
	if req < 64 {
		req = 64
	}
	if resp < 64 {
		resp = 64
	}
	return req, resp
}

// SampleFanOut draws the number of nested calls for one invocation.
func (m *Method) SampleFanOut(rng *stats.RNG) int {
	if len(m.Callees) == 0 || rng.Bool(m.LeafProb) {
		return 0
	}
	n := int(m.FanOut.Sample(rng))
	if n < 1 {
		n = 1
	}
	return n
}

// PickCallee selects a child method for a nested call.
func (m *Method) PickCallee(rng *stats.RNG) *Method {
	return m.Callees[rng.Intn(len(m.Callees))]
}

// SampleError draws the outcome of one call. Cancelled is oversampled for
// hedged calls; the catalog-level error mix is calibrated in catalog.go.
func (m *Method) SampleError(rng *stats.RNG, errMix *ErrorMix) trace.ErrorCode {
	if !rng.Bool(m.ErrorRate) {
		return trace.OK
	}
	return errMix.Sample(rng)
}

// ErrorMix is the fleet-wide distribution of error types (Fig. 23).
type ErrorMix struct {
	codes []trace.ErrorCode
	cum   []float64
}

// DefaultErrorMix reproduces the paper's Fig. 23 count shares: Cancelled
// 45%, EntityNotFound 20%, and the remainder split across resource,
// permission, deadline, availability, and internal errors.
func DefaultErrorMix() *ErrorMix {
	codes := []trace.ErrorCode{
		trace.Cancelled, trace.EntityNotFound, trace.NoResource,
		trace.NoPermission, trace.DeadlineExceeded, trace.Unavailable,
		trace.Internal, trace.InvalidArgument,
	}
	weights := []float64{0.45, 0.20, 0.09, 0.08, 0.07, 0.05, 0.04, 0.02}
	return NewErrorMix(codes, weights)
}

// NewErrorMix builds a mix from codes and weights (normalized).
func NewErrorMix(codes []trace.ErrorCode, weights []float64) *ErrorMix {
	if len(codes) == 0 || len(codes) != len(weights) {
		panic("fleet: error mix needs matching codes and weights")
	}
	var total float64
	for _, w := range weights {
		total += w
	}
	cum := make([]float64, len(weights))
	acc := 0.0
	for i, w := range weights {
		acc += w / total
		cum[i] = acc
	}
	cum[len(cum)-1] = 1
	return &ErrorMix{codes: codes, cum: cum}
}

// Sample draws one error code.
func (e *ErrorMix) Sample(rng *stats.RNG) trace.ErrorCode {
	u := rng.Float64()
	for i, c := range e.cum {
		if u <= c {
			return e.codes[i]
		}
	}
	return e.codes[len(e.codes)-1]
}

// Share returns the probability of a code in the mix.
func (e *ErrorMix) Share(code trace.ErrorCode) float64 {
	prev := 0.0
	for i, c := range e.codes {
		if c == code {
			return e.cum[i] - prev
		}
		prev = e.cum[i]
	}
	return 0
}
