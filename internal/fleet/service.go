// Package fleet defines the synthetic fleet standing in for the
// production workload the paper measured: a catalog of RPC methods with
// per-method latency, size, fan-out, CPU-cost, and error models, grouped
// into services, with a popularity model calibrated against every anchor
// the paper publishes (DESIGN.md §4 lists them). The catalog is pure
// data + distributions; internal/workload executes it against the
// simulator to produce traces.
package fleet

// ServiceClass groups services by their dominant bottleneck, following
// the paper's §3.3 categorization.
type ServiceClass uint8

// Service classes.
const (
	// Storage services are application-processing- or queue-heavy and
	// move the most bytes (Network Disk, Spanner, Bigtable, ...).
	Storage ServiceClass = iota
	// Compute services are dominated by handler processing time
	// (F1 query execution, ML inference).
	Compute
	// LatencySensitive services are in-memory and RPC-stack-heavy
	// (KV-Store).
	LatencySensitive
	// Analytics services are batch-flavored with low byte volume
	// relative to their call count.
	Analytics
	// Generic is the long tail of internal services.
	Generic
)

// String returns the class name.
func (c ServiceClass) String() string {
	switch c {
	case Storage:
		return "storage"
	case Compute:
		return "compute"
	case LatencySensitive:
		return "latency-sensitive"
	case Analytics:
		return "analytics"
	default:
		return "generic"
	}
}

// Service is one application service owning a set of RPC methods.
type Service struct {
	Name    string
	Class   ServiceClass
	Methods []*Method
}

// StudiedService is one row of the paper's Table 1: the eight production
// services selected for the in-depth latency analysis.
type StudiedService struct {
	Service     string
	Client      string // typical caller
	RPCSize     int64  // typical request size, bytes
	Method      string // the studied method (fully qualified)
	Description string
	Class       ServiceClass
	// Dominant is the latency component category the paper found
	// dominant: "app", "queue", or "stack" (§3.3.1).
	Dominant string
}

// EightServices reproduces Table 1.
func EightServices() []StudiedService {
	return []StudiedService{
		{"bigtable", "kvstore", 1024, "bigtable/SearchValue", "Search value", Storage, "app"},
		{"networkdisk", "bigtable", 32 * 1024, "networkdisk/Write", "Read from SSD", Storage, "app"},
		{"ssdcache", "bigquery", 400, "ssdcache/Lookup", "Look up streaming data", Storage, "queue"},
		{"videometadata", "videosearch", 32 * 1024, "videometadata/GetMetadata", "Get metadata", Storage, "queue"},
		{"spanner", "netinfo", 800, "spanner/ReadRows", "Read rows", Storage, "app"},
		{"f1", "f1", 75, "f1/ProcessPacket", "Process data packet", Compute, "app"},
		{"mlinference", "mlclient", 512, "mlinference/Infer", "Perform inference", Compute, "app"},
		{"kvstore", "recommender", 128, "kvstore/Search", "Search value", LatencySensitive, "stack"},
	}
}
