package fleet

import (
	"fmt"
	"sort"
	"strings"

	"rpcscale/internal/stats"
	"rpcscale/internal/trace"
)

// Motif is one composable call-graph rewrite: applied to a catalog, it
// rewrites a set of methods' downstream edge behavior so the generated
// traces take production DAG shapes instead of pure trees ("Complexity
// at Scale": shared subtrees, cache-aside branching, sidecar hops,
// cross-datacenter replication). Motifs mutate only the motif-wiring
// fields of Method (SharedDep, Cache, SidecarProb, Replicas, Tier), so
// the catalog's calibrated latency/size/popularity models are untouched
// and a no-motif run is byte-identical to the pre-DAG generator.
type Motif interface {
	// Name is the stable pack name used by the -motifs CLI flag.
	Name() string
	// Apply rewires the catalog and returns how many methods it tagged.
	// All randomized choices draw from rng, so a (catalog, seed) pair
	// yields one deterministic rewiring.
	Apply(cat *Catalog, rng *stats.RNG) int
}

// FanInMotif marks the most popular low-layer methods as shared
// dependencies: within one call graph each is invoked at most once, and
// every further caller links to the existing span. This is the fan-in /
// shared-subtree structure that makes production call graphs DAGs.
type FanInMotif struct {
	// Targets is how many methods become shared dependencies (0 selects
	// the default of 12).
	Targets int
}

// Name implements Motif.
func (f FanInMotif) Name() string { return "fanin" }

// Apply implements Motif: the Targets most popular layer-0/1 methods
// with at least one caller become shared dependencies.
func (f FanInMotif) Apply(cat *Catalog, rng *stats.RNG) int {
	targets := f.Targets
	if targets <= 0 {
		targets = 12
	}
	callers := calleeCounts(cat)
	var pool []*Method
	for _, m := range cat.Methods {
		if m.Layer <= 1 && callers[m] >= 2 {
			pool = append(pool, m)
		}
	}
	sort.Slice(pool, func(i, j int) bool {
		if pool[i].Popularity != pool[j].Popularity {
			return pool[i].Popularity > pool[j].Popularity
		}
		return pool[i].Index < pool[j].Index
	})
	if targets > len(pool) {
		targets = len(pool)
	}
	for _, m := range pool[:targets] {
		m.SharedDep = true
	}
	return targets
}

// CacheAsideMotif puts a cache tier in front of stateful methods: a
// deterministic fraction of calls hit the cache (one fast cache span, no
// backing subtree), the rest miss (cache span plus the normal subtree).
type CacheAsideMotif struct {
	// Fraction of eligible (stateful, non-leaf-layer) methods fronted by
	// a cache (0 selects 0.35).
	Fraction float64
	// HitRate is the deterministic per-call hit probability (0 selects
	// 0.80, memcached-tier territory).
	HitRate float64
}

// Name implements Motif.
func (c CacheAsideMotif) Name() string { return "cache" }

// Apply implements Motif: eligible stateful methods get a cache-tier
// lookup method (drawn from the fastest decile) consulted before the
// handler; the lookup methods are retagged TierCache.
func (c CacheAsideMotif) Apply(cat *Catalog, rng *stats.RNG) int {
	fraction := c.Fraction
	if fraction <= 0 {
		fraction = 0.35
	}
	hitRate := c.HitRate
	if hitRate <= 0 {
		hitRate = 0.80
	}
	// The memcached stand-ins: fast methods from the lowest-latency
	// decile, preferring ones already tagged cache-tier (the in-memory
	// KV class).
	var lookups []*Method
	cut := len(cat.Methods) / 10
	if cut < 1 {
		cut = 1
	}
	for _, m := range cat.Methods[:cut] {
		if m.Tier == trace.TierCache {
			lookups = append(lookups, m)
		}
	}
	if len(lookups) == 0 {
		for _, m := range cat.Methods[:cut] {
			lookups = append(lookups, m)
		}
	}
	if len(lookups) == 0 {
		return 0
	}
	tagged := 0
	for _, m := range cat.Methods {
		if m.Tier != trace.TierStateful || m.SharedDep {
			continue
		}
		if !rng.Bool(fraction) {
			continue
		}
		lookup := lookups[rng.Intn(len(lookups))]
		if lookup == m {
			continue
		}
		lookup.Tier = trace.TierCache
		m.Cache = &CacheAside{Method: lookup, HitRate: hitRate}
		tagged++
	}
	return tagged
}

// SidecarMotif routes calls through service-mesh sidecar proxies: tagged
// methods gain an extra proxy span between caller and callee.
type SidecarMotif struct {
	// Fraction of methods behind a mesh (0 selects 0.25).
	Fraction float64
	// Prob is the per-call probability the hop is taken once a method is
	// meshed (0 selects 1.0 — a mesh proxies everything).
	Prob float64
}

// Name implements Motif.
func (s SidecarMotif) Name() string { return "sidecar" }

// Apply implements Motif.
func (s SidecarMotif) Apply(cat *Catalog, rng *stats.RNG) int {
	fraction := s.Fraction
	if fraction <= 0 {
		fraction = 0.25
	}
	prob := s.Prob
	if prob <= 0 {
		prob = 1.0
	}
	tagged := 0
	for _, m := range cat.Methods {
		if rng.Bool(fraction) {
			m.SidecarProb = prob
			tagged++
		}
	}
	return tagged
}

// ReplicationMotif adds cross-datacenter replication to stateful write
// paths: each call to a tagged method fans out replica writes to other
// datacenters.
type ReplicationMotif struct {
	// Replicas per call (0 selects 2 — three copies total).
	Replicas int
	// Fraction of stateful methods replicated (0 selects 0.20).
	Fraction float64
}

// Name implements Motif.
func (r ReplicationMotif) Name() string { return "replica" }

// Apply implements Motif.
func (r ReplicationMotif) Apply(cat *Catalog, rng *stats.RNG) int {
	replicas := r.Replicas
	if replicas <= 0 {
		replicas = 2
	}
	fraction := r.Fraction
	if fraction <= 0 {
		fraction = 0.20
	}
	tagged := 0
	for _, m := range cat.Methods {
		if m.Tier != trace.TierStateful || len(m.HomeClusters) < 2 {
			continue
		}
		if rng.Bool(fraction) {
			m.Replicas = replicas
			tagged++
		}
	}
	return tagged
}

// DefaultMotifs returns every pack at its default tuning, in application
// order.
func DefaultMotifs() []Motif {
	return []Motif{FanInMotif{}, CacheAsideMotif{}, SidecarMotif{}, ReplicationMotif{}}
}

// ParseMotifs resolves a comma-separated pack list ("fanin,cache",
// "all", "" for none) to motifs at default tuning.
func ParseMotifs(spec string) ([]Motif, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "none" {
		return nil, nil
	}
	if spec == "all" {
		return DefaultMotifs(), nil
	}
	byName := make(map[string]Motif)
	for _, m := range DefaultMotifs() {
		byName[m.Name()] = m
	}
	var out []Motif
	seen := make(map[string]bool)
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" || seen[name] {
			continue
		}
		m, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("fleet: unknown motif pack %q (have fanin, cache, sidecar, replica, all)", name)
		}
		seen[name] = true
		out = append(out, m)
	}
	return out, nil
}

// ApplyMotifs rewires the catalog with the given packs, in order, using
// randomness derived from seed alone — a fixed (catalog config, packs,
// seed) triple always yields the same DAG wiring. It returns per-pack
// tag counts keyed by pack name.
func ApplyMotifs(cat *Catalog, motifs []Motif, seed uint64) map[string]int {
	counts := make(map[string]int, len(motifs))
	root := stats.NewRNG(seed).Child("motifs")
	for _, m := range motifs {
		counts[m.Name()] += m.Apply(cat, root.Child(m.Name()))
	}
	return counts
}

// calleeCounts returns, per method, how many catalog methods list it as
// a callee (its static in-degree).
func calleeCounts(cat *Catalog) map[*Method]int {
	counts := make(map[*Method]int, len(cat.Methods))
	for _, m := range cat.Methods {
		for _, c := range m.Callees {
			counts[c]++
		}
	}
	return counts
}
