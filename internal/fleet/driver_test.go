package fleet

import (
	"math"
	"testing"
	"time"
)

func driverCatalog(t *testing.T) *Catalog {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Methods = 200
	return New(cfg)
}

func TestDriverDeterministic(t *testing.T) {
	cat := driverCatalog(t)
	mk := func() (names []string, gaps []time.Duration) {
		d := NewDriver(cat, DriveConfig{BaseRate: 500, TimeScale: 600, Amplitude: 0.25, Seed: 7})
		for i := 0; i < 200; i++ {
			m, _, gap := d.Next()
			names = append(names, m.Name)
			gaps = append(gaps, gap)
		}
		return
	}
	n1, g1 := mk()
	n2, g2 := mk()
	for i := range n1 {
		if n1[i] != n2[i] || g1[i] != g2[i] {
			t.Fatalf("arrival %d differs across identical drivers", i)
		}
	}
}

func TestDriverRateFollowsDiurnalCycle(t *testing.T) {
	cat := driverCatalog(t)
	d := NewDriver(cat, DriveConfig{BaseRate: 1000, TimeScale: 600, Amplitude: 0.25, Seed: 1})
	// At 600× compression a full 24 h cycle spans 144 s of wall time. The
	// rate must swing above and below base across the cycle.
	var lo, hi = math.Inf(1), math.Inf(-1)
	for s := 0; s <= 144; s++ {
		r := d.Rate(time.Duration(s) * time.Second)
		lo = math.Min(lo, r)
		hi = math.Max(hi, r)
	}
	if hi < 1000*1.2 || lo > 1000*0.8 {
		t.Errorf("diurnal swing too small: lo=%.0f hi=%.0f", lo, hi)
	}
	// Mean gap over many arrivals ≈ 1/rate near the mean.
	var total time.Duration
	const n = 5000
	for i := 0; i < n; i++ {
		_, _, gap := d.Next()
		total += gap
	}
	meanGap := total.Seconds() / n
	if meanGap <= 0 || meanGap > 3.0/1000*2 {
		t.Errorf("mean gap %.6fs implausible for ~1000/s base rate", meanGap)
	}
}

func TestDriverPayloadCap(t *testing.T) {
	cat := driverCatalog(t)
	d := NewDriver(cat, DriveConfig{BaseRate: 100, MaxPayload: 4096, Seed: 3})
	for i := 0; i < 2000; i++ {
		_, req, _ := d.Next()
		if req > 4096 {
			t.Fatalf("payload %d exceeds cap", req)
		}
		if req <= 0 {
			t.Fatalf("payload %d not positive", req)
		}
	}
	if d.Elapsed() <= 0 {
		t.Error("virtual clock did not advance")
	}
}

func TestDriverDefaults(t *testing.T) {
	cat := driverCatalog(t)
	d := NewDriver(cat, DriveConfig{})
	m, req, gap := d.Next()
	if m == nil || req <= 0 || gap < 0 {
		t.Fatalf("defaulted driver produced m=%v req=%d gap=%v", m, req, gap)
	}
	// Amplitude clamps to 0.9 so the rate never goes negative.
	d2 := NewDriver(cat, DriveConfig{BaseRate: 100, Amplitude: 5})
	for s := 0; s < 90000; s += 600 {
		if r := d2.Rate(time.Duration(s) * time.Second); r <= 0 {
			t.Fatalf("rate %f not positive at %ds", r, s)
		}
	}
}
