package fleet

import (
	"math"
	"time"

	"rpcscale/internal/stats"
)

// DriveConfig shapes an open-loop load generator over a method catalog:
// Poisson arrivals whose rate follows the paper's diurnal cycle (Fig. 4),
// time-compressed so a 24 h cycle fits a CI run.
type DriveConfig struct {
	// BaseRate is the mean arrival rate in calls per second of *wall*
	// time (after compression), around which the diurnal cycle swings.
	BaseRate float64
	// TimeScale compresses the diurnal cycle: virtual time advances
	// TimeScale× faster than wall time, so at 600× a 24 h cycle completes
	// in 144 s. 0 or 1 leaves time uncompressed.
	TimeScale float64
	// Amplitude is the relative swing of the diurnal cycle: rate(t) =
	// BaseRate × (1 + Amplitude·sin(...)). The paper's weekday cycle
	// swings roughly ±25% around the mean; 0 disables the cycle.
	Amplitude float64
	// PhaseHours shifts the cycle so its peak lands mid-virtual-day.
	PhaseHours float64
	// MaxPayload caps sampled request sizes (bytes), keeping harness
	// traffic under the bulk-lane threshold; 0 means no cap.
	MaxPayload int
	// Seed makes the arrival schedule deterministic.
	Seed uint64
}

// Driver generates one client's open-loop call schedule: each Next returns
// which method to call, how big its request payload is, and how long to
// wait before issuing it. The schedule is deterministic for a given seed —
// the driver advances its own virtual clock from the sampled gaps and
// never reads the wall clock.
type Driver struct {
	cfg DriveConfig
	cat *Catalog
	rng *stats.RNG
	// now is the driver's virtual wall-time position in seconds (the time
	// the next arrival will be issued, before compression).
	now float64
}

// NewDriver builds a driver over the catalog. BaseRate must be positive.
func NewDriver(cat *Catalog, cfg DriveConfig) *Driver {
	if cfg.BaseRate <= 0 {
		cfg.BaseRate = 100
	}
	if cfg.TimeScale <= 0 {
		cfg.TimeScale = 1
	}
	if cfg.Amplitude < 0 {
		cfg.Amplitude = 0
	}
	if cfg.Amplitude > 0.9 {
		cfg.Amplitude = 0.9
	}
	return &Driver{cfg: cfg, cat: cat, rng: stats.NewRNG(cfg.Seed).Child("drive")}
}

// Rate returns the instantaneous target arrival rate (calls/s of wall
// time) at wall-time offset t into the run: the diurnal model of
// internal/sim's exogenous load, compressed by TimeScale.
func (d *Driver) Rate(t time.Duration) float64 {
	virtualHours := t.Seconds() * d.cfg.TimeScale / 3600
	swing := d.cfg.Amplitude * math.Sin(2*math.Pi*(virtualHours-d.cfg.PhaseHours)/24)
	return d.cfg.BaseRate * (1 + swing)
}

// Next returns the next arrival: the method to call, its sampled request
// payload size, and the gap to sleep before issuing it (relative to the
// previous arrival). Gaps are exponential with the instantaneous diurnal
// rate, so the schedule is an inhomogeneous Poisson process.
func (d *Driver) Next() (m *Method, reqBytes int, gap time.Duration) {
	rate := d.Rate(time.Duration(d.now * float64(time.Second)))
	if rate <= 0 {
		rate = 1
	}
	gapSec := d.rng.ExpFloat64() / rate
	// Bound pathological gaps so a tiny rate cannot stall the driver.
	if gapSec > 10 {
		gapSec = 10
	}
	d.now += gapSec

	m = d.cat.SampleMethod(d.rng)
	req, _ := m.SampleSizes(d.rng)
	reqBytes = int(req)
	if d.cfg.MaxPayload > 0 && reqBytes > d.cfg.MaxPayload {
		reqBytes = d.cfg.MaxPayload
	}
	return m, reqBytes, time.Duration(gapSec * float64(time.Second))
}

// Elapsed returns the driver's virtual wall-time position: the sum of all
// gaps handed out so far.
func (d *Driver) Elapsed() time.Duration {
	return time.Duration(d.now * float64(time.Second))
}
