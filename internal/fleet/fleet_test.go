package fleet

import (
	"math"
	"testing"
	"time"

	"rpcscale/internal/stats"
	"rpcscale/internal/trace"
)

// testCatalog builds one catalog per test binary; generation is the
// expensive part and the catalog is immutable.
var testCat = New(Config{Methods: 1000, Clusters: 36, Seed: 42})

func TestCatalogShape(t *testing.T) {
	if len(testCat.Methods) != 1000 {
		t.Fatalf("methods = %d", len(testCat.Methods))
	}
	seen := make(map[string]bool)
	for i, m := range testCat.Methods {
		if m == nil {
			t.Fatalf("nil method at rank %d", i)
		}
		if m.LatencyRank != i {
			t.Errorf("rank mismatch at %d", i)
		}
		if seen[m.Name] {
			t.Errorf("duplicate method name %q", m.Name)
		}
		seen[m.Name] = true
		if m.Service == nil {
			t.Errorf("%s has no service", m.Name)
		}
		if len(m.HomeClusters) == 0 {
			t.Errorf("%s has no home clusters", m.Name)
		}
	}
}

func TestCatalogDeterministic(t *testing.T) {
	a := New(Config{Methods: 300, Clusters: 12, Seed: 9})
	b := New(Config{Methods: 300, Clusters: 12, Seed: 9})
	for i := range a.Methods {
		if a.Methods[i].Name != b.Methods[i].Name ||
			a.Methods[i].Popularity != b.Methods[i].Popularity {
			t.Fatal("catalog generation not deterministic")
		}
	}
}

func TestPopularitySumsToOne(t *testing.T) {
	var total float64
	for _, m := range testCat.Methods {
		total += m.Popularity
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("popularity sums to %v", total)
	}
}

func TestPopularityAnchors(t *testing.T) {
	// Paper §2.3: top-10 = 58%, top-100 = 91% of calls.
	if got := testCat.PopularityShare(10); math.Abs(got-0.58) > 0.03 {
		t.Errorf("top-10 share = %.3f, want ~0.58", got)
	}
	if got := testCat.PopularityShare(100); math.Abs(got-0.91) > 0.04 {
		t.Errorf("top-100 share = %.3f, want ~0.91", got)
	}
	// Network Disk Write alone is 28% of calls.
	write := testCat.MethodByName("networkdisk/Write")
	if write == nil {
		t.Fatal("networkdisk/Write missing")
	}
	if math.Abs(write.Popularity-0.28) > 0.02 {
		t.Errorf("Write share = %.3f, want ~0.28", write.Popularity)
	}
}

func TestServiceShareAnchors(t *testing.T) {
	// §2.6: Network Disk is 35% of RPCs; top-8 services ~60%.
	if got := testCat.ServiceShare("networkdisk"); math.Abs(got-0.35) > 0.03 {
		t.Errorf("networkdisk share = %.3f, want ~0.35", got)
	}
	var top8 float64
	for _, s := range EightServices() {
		top8 += testCat.ServiceShare(s.Service)
	}
	if top8 < 0.52 || top8 > 0.68 {
		t.Errorf("eight studied services share = %.3f, want ~0.60", top8)
	}
	// ML Inference is rare.
	if got := testCat.ServiceShare("mlinference"); got > 0.01 {
		t.Errorf("mlinference share = %.4f, want ~0.0017", got)
	}
}

func TestLowLatencyMethodsPopular(t *testing.T) {
	// §2.3: the 100 lowest-latency methods account for ~40% of calls.
	var share float64
	for _, m := range testCat.Methods[:100] {
		share += m.Popularity
	}
	if share < 0.32 || share > 0.55 {
		t.Errorf("lowest-100 share = %.3f, want ~0.40", share)
	}
}

func TestSlowTailCallShare(t *testing.T) {
	// §2.3: the slowest 10% of methods account for ~1.1% of calls.
	var share float64
	for _, m := range testCat.Methods[900:] {
		share += m.Popularity
	}
	if share > 0.03 {
		t.Errorf("slowest-decile share = %.4f, want ~0.011", share)
	}
}

func TestSlowTailTimeShare(t *testing.T) {
	// §2.3: the slowest methods dominate total RPC time (89% in the
	// paper). Estimate with distribution means.
	var slowTime, totalTime float64
	for i, m := range testCat.Methods {
		mt := m.Popularity * m.AppTime.Mean()
		totalTime += mt
		if i >= 900 {
			slowTime += mt
		}
	}
	if frac := slowTime / totalTime; frac < 0.5 {
		t.Errorf("slow-decile time share = %.3f, want dominant (~0.89)", frac)
	}
}

func TestMedianLatencyMonotoneAcrossRanks(t *testing.T) {
	// Median must broadly increase with rank (sorted axis). Compare
	// decile medians.
	var prev float64
	for d := 0; d < 10; d++ {
		m := testCat.Methods[d*100+50]
		med := m.AppTime.Quantile(0.5)
		if med < prev*0.5 { // allow mixture noise, forbid big inversions
			t.Errorf("decile %d median %.3gms below previous", d, med/1e6)
		}
		if med > prev {
			prev = med
		}
	}
}

func TestLatencyTierAnchors(t *testing.T) {
	// 90% of methods have median >= 10.7ms.
	count := 0
	for _, m := range testCat.Methods[100:] {
		if m.AppTime.Quantile(0.5) >= float64(10*time.Millisecond) {
			count++
		}
	}
	if frac := float64(count) / 900; frac < 0.95 {
		t.Errorf("methods above 10.7ms median = %.3f of non-fast tier", frac)
	}

	// 90% of methods have P1 <= 657us (fast-path mixture).
	p1ok := 0
	for _, m := range testCat.Methods {
		if m.AppTime.Quantile(0.01) <= float64(700*time.Microsecond) {
			p1ok++
		}
	}
	if frac := float64(p1ok) / 1000; frac < 0.80 {
		t.Errorf("P1<=657us fraction = %.3f, want ~0.90", frac)
	}

	// 99.5% of methods have P99 >= 1ms. The paper measures emergent RCT
	// (queue/wire floors included), so the application-time model alone
	// only needs to get close; the emergent check lives in core.
	p99ok := 0
	for _, m := range testCat.Methods {
		if m.AppTime.Quantile(0.99) >= float64(500*time.Microsecond) {
			p99ok++
		}
	}
	if frac := float64(p99ok) / 1000; frac < 0.97 {
		t.Errorf("P99>=0.5ms fraction = %.3f, want ~1", frac)
	}

	// Slowest 5%: P99 >= 5s, P1 >= ~100ms.
	for _, m := range testCat.Methods[960:] {
		if p99 := m.AppTime.Quantile(0.99); p99 < float64(3*time.Second) {
			t.Errorf("slow-tier %s P99 = %v, want >= ~5s", m.Name, time.Duration(p99))
		}
	}
}

func TestP99MedianCrossing(t *testing.T) {
	// ~50% of methods have P99 >= 225ms.
	count := 0
	for _, m := range testCat.Methods {
		if m.AppTime.Quantile(0.99) >= float64(225*time.Millisecond) {
			count++
		}
	}
	frac := float64(count) / 1000
	if frac < 0.30 || frac > 0.75 {
		t.Errorf("P99>=225ms fraction = %.3f, want ~0.50", frac)
	}
}

func TestSizeAnchors(t *testing.T) {
	rng := stats.NewRNG(3)
	var reqMedians, respMedians stats.Sample
	writeDominant := 0
	for _, m := range testCat.Methods {
		reqMed := m.ReqSize.Quantile(0.5)
		respMed := m.RespSize.Quantile(0.5)
		reqMedians.Add(reqMed)
		respMedians.Add(respMed)
		if respMed < reqMed {
			writeDominant++
		}
	}
	// Half of methods: median request under ~1530B, response under ~315B.
	if med := reqMedians.Quantile(0.5); med < 300 || med > 6000 {
		t.Errorf("median-of-request-medians = %.0fB, want ~1.5KB", med)
	}
	if med := respMedians.Quantile(0.5); med < 100 || med > 3000 {
		t.Errorf("median-of-response-medians = %.0fB, want ~315B", med)
	}
	// Most methods are write-dominant (§2.5).
	if frac := float64(writeDominant) / 1000; frac < 0.5 {
		t.Errorf("write-dominant fraction = %.3f, want > 0.5", frac)
	}
	// Sizes have heavy in-method tails: sampled P99 well above median.
	m := testCat.Methods[500]
	s := stats.NewSample(2000)
	for i := 0; i < 2000; i++ {
		req, _ := m.SampleSizes(rng)
		s.Add(float64(req))
	}
	if s.Quantile(0.99) < 4*s.Quantile(0.5) {
		t.Errorf("request size tail too light: P99 %.0f vs median %.0f",
			s.Quantile(0.99), s.Quantile(0.5))
	}
	// Minimum size is one cache line.
	for i := 0; i < 500; i++ {
		req, resp := m.SampleSizes(rng)
		if req < 64 || resp < 64 {
			t.Fatal("size below 64B floor")
		}
	}
}

func TestCPUCostAnchors(t *testing.T) {
	// Per-method cost floor near 0.016 normalized cycles; heavy tails.
	for _, idx := range []int{50, 300, 700, 950} {
		m := testCat.Methods[idx]
		if q := m.CPUCost.Quantile(0.001); q < 0.016 {
			t.Errorf("%s cost floor = %v", m.Name, q)
		}
		med := m.CPUCost.Quantile(0.5)
		p99 := m.CPUCost.Quantile(0.99)
		if p99 < 5*med {
			t.Errorf("%s CPU tail too light: P99/median = %.1f", m.Name, p99/med)
		}
	}
	// CPU cost uncorrelated with latency rank (§4.2): Spearman of
	// median cost vs rank should be weak.
	var ranks, costs []float64
	for i, m := range testCat.Methods {
		if isNamed(m) {
			continue // named methods have hand-set costs
		}
		ranks = append(ranks, float64(i))
		costs = append(costs, m.CPUCost.Quantile(0.5))
	}
	if r := stats.SpearmanRank(ranks, costs); math.Abs(r) > 0.2 {
		t.Errorf("latency-CPU rank correlation = %.3f, want ~0", r)
	}
	// ML inference is CPU-heavy vs its call volume.
	ml := testCat.MethodByName("mlinference/Infer")
	nd := testCat.MethodByName("networkdisk/Write")
	if ml.CPUCost.Quantile(0.5) < 20*nd.CPUCost.Quantile(0.5) {
		t.Error("mlinference should be far more expensive per call than networkdisk")
	}
}

func TestCallGraphAcyclicAndLayered(t *testing.T) {
	for _, m := range testCat.Methods {
		for _, c := range m.Callees {
			if c == m {
				t.Fatalf("%s calls itself", m.Name)
			}
			if m.Layer == 0 {
				if c.Layer != 0 || c.Index >= m.Index {
					t.Fatalf("%s (layer0) calls %s (layer %d, index %d >= %d)",
						m.Name, c.Name, c.Layer, c.Index, m.Index)
				}
			} else if c.Layer >= m.Layer {
				t.Fatalf("%s (layer %d) calls %s (layer %d)", m.Name, m.Layer, c.Name, c.Layer)
			}
		}
		if m.LeafProb < 1 && len(m.Callees) == 0 {
			t.Errorf("%s can fan out but has no callees", m.Name)
		}
	}
}

func TestFanOutSampling(t *testing.T) {
	rng := stats.NewRNG(4)
	// A layer-2+ method must produce both leaves and wide fan-outs.
	var m *Method
	for _, cand := range testCat.Methods {
		if cand.Layer >= 2 && len(cand.Callees) > 0 {
			m = cand
			break
		}
	}
	if m == nil {
		t.Fatal("no high-layer method found")
	}
	wide := 0
	for i := 0; i < 2000; i++ {
		n := m.SampleFanOut(rng)
		if n < 0 {
			t.Fatal("negative fan-out")
		}
		if n > 40 {
			wide++
		}
	}
	if wide == 0 {
		t.Error("fan-out never exceeded 40 in 2000 draws; tail too light")
	}
	// PickCallee stays within the callee set.
	for i := 0; i < 100; i++ {
		c := m.PickCallee(rng)
		found := false
		for _, want := range m.Callees {
			if c == want {
				found = true
			}
		}
		if !found {
			t.Fatal("PickCallee returned non-callee")
		}
	}
}

func TestErrorMix(t *testing.T) {
	mix := DefaultErrorMix()
	if got := mix.Share(trace.Cancelled); math.Abs(got-0.45) > 1e-9 {
		t.Errorf("cancelled share = %v", got)
	}
	if got := mix.Share(trace.EntityNotFound); math.Abs(got-0.20) > 1e-9 {
		t.Errorf("not-found share = %v", got)
	}
	if got := mix.Share(trace.OK); got != 0 {
		t.Errorf("OK share = %v", got)
	}
	rng := stats.NewRNG(5)
	counts := make(map[trace.ErrorCode]int)
	for i := 0; i < 20000; i++ {
		counts[mix.Sample(rng)]++
	}
	if frac := float64(counts[trace.Cancelled]) / 20000; math.Abs(frac-0.45) > 0.02 {
		t.Errorf("sampled cancelled = %.3f", frac)
	}
}

func TestErrorRatesNearFleetTarget(t *testing.T) {
	// §4.4: 1.9% of all RPCs error. Popularity-weighted mean error rate.
	var weighted float64
	for _, m := range testCat.Methods {
		weighted += m.Popularity * m.ErrorRate
	}
	if weighted < 0.008 || weighted > 0.035 {
		t.Errorf("fleet error rate = %.4f, want ~0.019", weighted)
	}
}

func TestSampleMethodDistribution(t *testing.T) {
	rng := stats.NewRNG(6)
	counts := make(map[*Method]int)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[testCat.SampleMethod(rng)]++
	}
	write := testCat.MethodByName("networkdisk/Write")
	if frac := float64(counts[write]) / n; math.Abs(frac-write.Popularity) > 0.02 {
		t.Errorf("Write sample frequency = %.3f, want %.3f", frac, write.Popularity)
	}
}

func TestEightServicesTable(t *testing.T) {
	rows := EightServices()
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if testCat.MethodByName(r.Method) == nil {
			t.Errorf("studied method %s missing from catalog", r.Method)
		}
		if r.Dominant != "app" && r.Dominant != "queue" && r.Dominant != "stack" {
			t.Errorf("%s has bad dominant class %q", r.Service, r.Dominant)
		}
	}
}

func TestStudiedClassBehavior(t *testing.T) {
	kv := testCat.MethodByName("kvstore/Search")
	// Latency-sensitive: highly local, fast.
	if kv.Locality < 0.9 {
		t.Errorf("kvstore locality = %v", kv.Locality)
	}
	if med := kv.AppTime.Quantile(0.5); med > float64(2*time.Millisecond) {
		t.Errorf("kvstore median = %v, want sub-ms-ish", time.Duration(med))
	}
	// ML Inference runs at the paper's Fig. 14f scale (single-digit ms).
	ml := testCat.MethodByName("mlinference/Infer")
	if med := ml.AppTime.Quantile(0.5); med < float64(500*time.Microsecond) || med > float64(60*time.Millisecond) {
		t.Errorf("mlinference median = %v, want ~2-30ms", time.Duration(med))
	}
}

func TestHedgeProbabilities(t *testing.T) {
	for _, m := range testCat.Methods {
		if m.HedgeProb < 0 || m.HedgeProb > 0.3 {
			t.Fatalf("%s hedge prob %v out of range", m.Name, m.HedgeProb)
		}
	}
	nd := testCat.MethodByName("networkdisk/Write")
	if nd.HedgeProb < 0.05 {
		t.Error("storage should hedge aggressively")
	}
}

func TestServiceClassString(t *testing.T) {
	for c, want := range map[ServiceClass]string{
		Storage: "storage", Compute: "compute",
		LatencySensitive: "latency-sensitive", Analytics: "analytics", Generic: "generic",
	} {
		if c.String() != want {
			t.Errorf("%d -> %q", c, c.String())
		}
	}
}

func TestMinimumCatalogSize(t *testing.T) {
	c := New(Config{Methods: 10, Clusters: 4, Seed: 1}) // below floor
	if len(c.Methods) < 200 {
		t.Fatalf("catalog floor not applied: %d", len(c.Methods))
	}
}
