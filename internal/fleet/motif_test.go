package fleet

import (
	"testing"

	"rpcscale/internal/trace"
)

func TestParseMotifs(t *testing.T) {
	for _, spec := range []string{"", "none"} {
		if got, err := ParseMotifs(spec); err != nil || got != nil {
			t.Errorf("ParseMotifs(%q) = %v, %v; want nil, nil", spec, got, err)
		}
	}
	all, err := ParseMotifs("all")
	if err != nil || len(all) != len(DefaultMotifs()) {
		t.Errorf("ParseMotifs(all) = %d packs, %v; want %d", len(all), err, len(DefaultMotifs()))
	}
	got, err := ParseMotifs("fanin, cache")
	if err != nil {
		t.Fatalf("ParseMotifs(fanin, cache): %v", err)
	}
	if len(got) != 2 || got[0].Name() != "fanin" || got[1].Name() != "cache" {
		t.Errorf("ParseMotifs(fanin, cache) = %v", got)
	}
	// Repeats collapse to one pack.
	if got, _ := ParseMotifs("sidecar,sidecar"); len(got) != 1 {
		t.Errorf("duplicate pack not collapsed: %v", got)
	}
	if _, err := ParseMotifs("fanin,bogus"); err == nil {
		t.Error("unknown pack name must error")
	}
}

func TestApplyMotifsDeterministic(t *testing.T) {
	wire := func() *Catalog {
		cat := New(Config{Methods: 400, Clusters: 36, Seed: 11})
		ApplyMotifs(cat, DefaultMotifs(), 11)
		return cat
	}
	a, b := wire(), wire()
	for i := range a.Methods {
		ma, mb := a.Methods[i], b.Methods[i]
		if ma.SharedDep != mb.SharedDep || ma.SidecarProb != mb.SidecarProb ||
			ma.Replicas != mb.Replicas || ma.Tier != mb.Tier ||
			(ma.Cache == nil) != (mb.Cache == nil) {
			t.Fatalf("motif wiring not deterministic at method %d (%s)", i, ma.Name)
		}
		if ma.Cache != nil && ma.Cache.Method.Name != mb.Cache.Method.Name {
			t.Fatalf("cache lookup differs at method %d (%s)", i, ma.Name)
		}
	}
}

func TestApplyMotifsInvariants(t *testing.T) {
	cat := New(Config{Methods: 400, Clusters: 36, Seed: 11})
	counts := ApplyMotifs(cat, DefaultMotifs(), 11)
	for _, pack := range []string{"fanin", "cache", "sidecar", "replica"} {
		if counts[pack] == 0 {
			t.Errorf("pack %s tagged 0 methods", pack)
		}
	}
	for _, m := range cat.Methods {
		if m.SharedDep && m.Layer > 1 {
			t.Errorf("%s: shared dep at layer %d, want <= 1", m.Name, m.Layer)
		}
		if m.Cache != nil {
			if m.Tier != trace.TierStateful {
				t.Errorf("%s: cache-fronted but tier %s", m.Name, m.Tier)
			}
			if m.Cache.Method.Tier != trace.TierCache {
				t.Errorf("%s: cache lookup %s not retagged TierCache",
					m.Name, m.Cache.Method.Name)
			}
			if m.Cache.HitRate <= 0 || m.Cache.HitRate >= 1 {
				t.Errorf("%s: hit rate %v outside (0,1)", m.Name, m.Cache.HitRate)
			}
		}
		if m.Replicas > 0 {
			if m.Tier != trace.TierStateful {
				t.Errorf("%s: replicated but tier %s", m.Name, m.Tier)
			}
			if len(m.HomeClusters) < 2 {
				t.Errorf("%s: replicated with %d home clusters", m.Name, len(m.HomeClusters))
			}
		}
	}
}

func TestNoMotifCatalogStaysTreeShaped(t *testing.T) {
	cat := New(Config{Methods: 400, Clusters: 36, Seed: 11})
	for _, m := range cat.Methods {
		if m.SharedDep || m.Cache != nil || m.SidecarProb != 0 || m.Replicas != 0 {
			t.Fatalf("%s has motif wiring before ApplyMotifs", m.Name)
		}
	}
}
