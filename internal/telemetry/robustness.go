package telemetry

import (
	"rpcscale/internal/stubby"
)

// The Plane implements stubby.RobustnessObserver, so the stack's retry
// budget, circuit breakers, and load shedding report into the same
// Monarch DB as the call metrics. Plane.Apply wires it in.
var _ stubby.RobustnessObserver = (*Plane)(nil)

// RetryAttempt records one retry the stack issued for method.
func (p *Plane) RetryAttempt(method string) {
	p.retriesAttempted.Add(1)
	p.record(aggKey{kind: kindRetry, method: method}, false, 0)
}

// RetrySuppressed records one retry the budget refused for method.
func (p *Plane) RetrySuppressed(method string) {
	p.retriesSuppressed.Add(1)
	p.record(aggKey{kind: kindRetrySuppressed, method: method}, false, 0)
}

// BreakerTransition records one circuit-breaker state change. The
// endpoints land in the metric's from/to labels.
func (p *Plane) BreakerTransition(method string, from, to stubby.BreakerState) {
	p.breakerTransitions.Add(1)
	p.record(aggKey{
		kind: kindBreaker, method: method,
		client: from.String(), server: to.String(),
	}, false, 0)
}

// CallShed records one request the server shed before handling.
func (p *Plane) CallShed(method string) {
	p.shedCalls.Add(1)
	p.record(aggKey{kind: kindShed, method: method}, false, 0)
}

// RetriesAttempted returns the total retries the stack issued.
func (p *Plane) RetriesAttempted() uint64 { return p.retriesAttempted.Load() }

// RetriesSuppressed returns the total retries the budget refused.
func (p *Plane) RetriesSuppressed() uint64 { return p.retriesSuppressed.Load() }

// BreakerTransitions returns the total circuit-breaker state changes.
func (p *Plane) BreakerTransitions() uint64 { return p.breakerTransitions.Load() }

// ShedCalls returns the total requests servers shed under overload.
func (p *Plane) ShedCalls() uint64 { return p.shedCalls.Load() }
