package telemetry

import (
	"time"

	"rpcscale/internal/monarch"
	"rpcscale/internal/stats"
	"rpcscale/internal/trace"
)

// Snapshot is a compact, JSON-serializable summary of everything one
// Plane observed: call and error volume, the outcome-code mix, and the
// merged latency distribution. It is the unit of cross-process telemetry
// transfer — each cluster-harness child serializes a Snapshot over its
// result pipe, and the parent merges them with MergeSnapshots to render
// fleet-wide numbers from real traffic.
type Snapshot struct {
	// Calls and Errors count spans observed (sampled or not).
	Calls  uint64 `json:"calls"`
	Errors uint64 `json:"errors"`
	// ByCode is the outcome mix, keyed by trace.ErrorCode name; zero
	// counts are omitted.
	ByCode map[string]uint64 `json:"by_code,omitempty"`
	// Latency is the merged rpc/latency distribution (ns) across every
	// (service, method, cluster) stream the plane recorded.
	Latency stats.HistDump `json:"latency"`
}

// Snapshot flushes the plane and summarizes its state. The latency
// histogram merges every rpc/latency stream in the Monarch DB, so it
// covers all methods and clusters this plane observed.
func (p *Plane) Snapshot() Snapshot {
	s := Snapshot{
		Calls:  p.Calls(),
		Errors: p.Errors(),
		ByCode: make(map[string]uint64),
	}
	for code, n := range p.col.SeenByCode() {
		if n > 0 {
			s.ByCode[trace.ErrorCode(code).String()] = n
		}
	}
	lat := monarch.MergeDistAcross(p.Monarch().Query(MetricLatency, nil, time.Time{}, time.Time{}))
	if lat == nil {
		lat = stats.NewLatencyHist()
	}
	s.Latency = lat.Export()
	return s
}

// LatencyHist reconstructs the snapshot's latency distribution.
func (s *Snapshot) LatencyHist() *stats.Hist {
	return stats.Import(s.Latency)
}

// MergeSnapshots folds per-process snapshots into one fleet-wide view:
// counts add, code mixes add, and latency histograms merge (they share
// the NewLatencyHist shape).
func MergeSnapshots(snaps []Snapshot) Snapshot {
	out := Snapshot{ByCode: make(map[string]uint64)}
	lat := stats.NewLatencyHist()
	for i := range snaps {
		s := &snaps[i]
		out.Calls += s.Calls
		out.Errors += s.Errors
		for code, n := range s.ByCode {
			out.ByCode[code] += n
		}
		lat.Merge(s.LatencyHist())
	}
	out.Latency = lat.Export()
	return out
}
