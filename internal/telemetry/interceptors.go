package telemetry

import (
	"context"
	"time"

	"rpcscale/internal/stats"
	"rpcscale/internal/stubby"
	"rpcscale/internal/trace"
)

// Apply returns a copy of opts with the plane plugged in: span export
// flows through the Telemetry hook, and the stack's compressor and
// encryption byte accounting land in the plane's counters (which the GWP
// attribution calibrates against). Fields the caller already set are left
// alone.
func (p *Plane) Apply(opts stubby.Options) stubby.Options {
	opts.Telemetry = p
	if opts.CompressorStats == nil {
		opts.CompressorStats = p.comp
	}
	if opts.EncryptionStats == nil {
		opts.EncryptionStats = p.enc
	}
	if opts.Robustness == nil {
		opts.Robustness = p
	}
	if opts.DataPlane == nil {
		opts.DataPlane = p
	}
	return opts
}

// ServerInterceptor returns a server interceptor recording the server's
// own view of each request — volume and handler time, keyed by method and
// the serving cluster — into MetricServerCount / MetricServerApp. This is
// the Monarch surface a service owner watches, as opposed to the
// client-observed spans flowing through Observe.
func (p *Plane) ServerInterceptor(cluster string) stubby.ServerInterceptor {
	return func(ctx context.Context, method string, payload []byte, next stubby.Handler) ([]byte, error) {
		start := p.now()
		out, err := next(ctx, payload)
		p.record(aggKey{kind: kindServer, method: method, server: cluster},
			err == nil, float64(p.now().Sub(start)))
		return out, err
	}
}

// ClientInterceptor returns a client interceptor recording the
// caller-perceived outcome of each logical call into MetricClientCalls /
// MetricClientLatency: one sample per Call invocation, however many
// attempts (retries, hedges) the stack made underneath. Compose it
// outside WithRetry via Channel.Intercepted.
func (p *Plane) ClientInterceptor() stubby.ClientInterceptor {
	return func(ctx context.Context, method string, payload []byte, next stubby.CallFunc) ([]byte, error) {
		start := p.now()
		out, err := next(ctx, method, payload)
		code := trace.OK
		if err != nil {
			code = stubby.Code(err)
		}
		p.record(aggKey{kind: kindClient, method: method, code: code},
			err == nil, float64(p.now().Sub(start)))
		return out, err
	}
}

// record folds one interceptor observation into its window aggregate.
func (p *Plane) record(key aggKey, ok bool, latencyNs float64) {
	now := p.now()
	p.mu.Lock()
	defer p.mu.Unlock()
	a := p.window(key, now)
	a.count++
	if ok {
		if a.lat == nil {
			a.lat = stats.NewLatencyHist()
		}
		a.lat.Add(latencyNs)
	}
}

// Since reports how long the plane has been observing (the live analog of
// the paper's observation window).
func (p *Plane) Since() time.Duration {
	now := p.now()
	p.mu.Lock()
	defer p.mu.Unlock()
	return now.Sub(p.start)
}
