package telemetry

import (
	"testing"
	"time"

	"rpcscale/internal/monarch"
	"rpcscale/internal/stubby"
)

// sum adds every point of every series matching the query.
func sum(db *monarch.DB, metric string, labels monarch.Labels, from, to time.Time) float64 {
	var total float64
	for _, s := range db.Query(metric, labels, from, to) {
		for _, pt := range s.Points {
			total += pt.Value
		}
	}
	return total
}

func TestRobustnessMetrics(t *testing.T) {
	clk := &fakeClock{at: time.Unix(10_000_000, 0)}
	p := New(WithClock(clk.now))
	const m = "svc/Get"

	for i := 0; i < 3; i++ {
		p.RetryAttempt(m)
	}
	p.RetrySuppressed(m)
	p.RetrySuppressed(m)
	p.BreakerTransition(m, stubby.BreakerClosed, stubby.BreakerOpen)
	p.CallShed(m)

	if p.RetriesAttempted() != 3 || p.RetriesSuppressed() != 2 ||
		p.BreakerTransitions() != 1 || p.ShedCalls() != 1 {
		t.Fatalf("totals = (%d, %d, %d, %d), want (3, 2, 1, 1)",
			p.RetriesAttempted(), p.RetriesSuppressed(),
			p.BreakerTransitions(), p.ShedCalls())
	}

	db := p.Monarch()
	from, to := clk.at.Add(-time.Hour), clk.at.Add(time.Hour)
	if got := sum(db, MetricRetries, monarch.Labels{"method": m}, from, to); got != 3 {
		t.Fatalf("client/retries = %.0f, want 3", got)
	}
	if got := sum(db, MetricRetriesSuppressed, monarch.Labels{"method": m}, from, to); got != 2 {
		t.Fatalf("client/retries_suppressed = %.0f, want 2", got)
	}
	if got := sum(db, MetricBreakerTransitions, monarch.Labels{
		"method": m, "from": "closed", "to": "open",
	}, from, to); got != 1 {
		t.Fatalf("client/breaker_transitions{closed->open} = %.0f, want 1", got)
	}
	if got := sum(db, MetricShed, monarch.Labels{"method": m}, from, to); got != 1 {
		t.Fatalf("server/shed = %.0f, want 1", got)
	}

	p.Reset()
	if p.RetriesAttempted() != 0 || p.RetriesSuppressed() != 0 ||
		p.BreakerTransitions() != 0 || p.ShedCalls() != 0 {
		t.Fatal("Reset left robustness totals standing")
	}
}

// Apply must install the plane as the stack's robustness observer unless
// the caller provided one.
func TestApplySetsRobustness(t *testing.T) {
	p := New()
	opts := p.Apply(stubby.Options{})
	if opts.Robustness != stubby.RobustnessObserver(p) {
		t.Fatal("Apply did not install the plane as RobustnessObserver")
	}
	own := &stubby.NopRobustnessObserver{}
	opts = p.Apply(stubby.Options{Robustness: own})
	if opts.Robustness != stubby.RobustnessObserver(own) {
		t.Fatal("Apply overwrote a caller-provided RobustnessObserver")
	}
}
