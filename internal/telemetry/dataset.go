package telemetry

import (
	"rpcscale/internal/workload"
)

// Dataset assembles a workload.Dataset from the live telemetry: the
// retained spans become the per-method and volume samples (via
// workload.DatasetFromSpans, which also reconstructs call trees from
// parent links), and the GWP profile is the plane's own attribution —
// which saw every call, not just the sampled ones — so Fig. 20's cycle
// tax is exact even under span sampling.
//
// The result feeds core.FullReport directly: the same figure-by-figure
// pipeline that renders simulated fleets renders live traffic.
func (p *Plane) Dataset() *workload.Dataset {
	p.Flush()
	ds := workload.DatasetFromSpans(p.col.Spans())
	ds.Profile = p.prof.Snapshot()
	return ds
}
