package telemetry

import (
	"rpcscale/internal/stubby"
)

// The Plane implements stubby.DataPlaneObserver, so the multi-core data
// plane (DESIGN.md §16) reports codec-pool utilization and adaptive
// compression skips into the same Monarch DB as the call metrics.
// Plane.Apply wires it in.
var _ stubby.DataPlaneObserver = (*Plane)(nil)

// CodecJobEnqueued records one seal/open job handed to a connection's
// codec workers, with the queue depth observed at submit time — the live
// signal for whether the pipelined data plane is keeping its workers fed
// or backing up.
func (p *Plane) CodecJobEnqueued(queued int) {
	p.codecJobs.Add(1)
	p.record(aggKey{kind: kindCodecJob}, true, float64(queued))
}

// CompressSkipped records one payload the adaptive compression gate sent
// uncompressed for method — compression-tax cycles not spent.
func (p *Plane) CompressSkipped(method string, bytes int) {
	p.compressSkips.Add(1)
	p.compressSkippedBytes.Add(uint64(bytes))
	p.record(aggKey{kind: kindCompressSkip, method: method}, false, 0)
}

// CodecJobs returns the total jobs submitted to codec worker pools.
func (p *Plane) CodecJobs() uint64 { return p.codecJobs.Load() }

// CompressSkips returns the total payloads adaptive compression skipped.
func (p *Plane) CompressSkips() uint64 { return p.compressSkips.Load() }

// CompressSkippedBytes returns the total payload bytes those skips
// covered.
func (p *Plane) CompressSkippedBytes() uint64 { return p.compressSkippedBytes.Load() }
