package telemetry

import (
	"encoding/json"
	"testing"
	"time"

	"rpcscale/internal/trace"
)

func observeSpan(p *Plane, method string, code trace.ErrorCode, latency time.Duration) {
	s := &trace.Span{
		TraceID: 1, SpanID: 2,
		Method:  method,
		Service: "svc",
		Err:     code,
	}
	s.Breakdown[trace.ServerApp] = latency
	p.Observe(s)
}

func TestSnapshotRoundTrip(t *testing.T) {
	p := New()
	for i := 0; i < 100; i++ {
		observeSpan(p, "svc/M", trace.OK, time.Duration(1+i)*time.Millisecond)
	}
	observeSpan(p, "svc/M", trace.Unavailable, time.Millisecond)

	snap := p.Snapshot()
	if snap.Calls != 101 || snap.Errors != 1 {
		t.Fatalf("snapshot calls=%d errors=%d", snap.Calls, snap.Errors)
	}
	if snap.ByCode["Unavailable"] != 1 {
		t.Errorf("by_code = %v", snap.ByCode)
	}

	// Survive the JSON pipe the harness ships snapshots over.
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	h := back.LatencyHist()
	if h.Count() != 100 {
		t.Fatalf("latency count = %d, want 100 (errors excluded)", h.Count())
	}
	p50 := h.Percentile(50)
	if p50 < float64(30*time.Millisecond) || p50 > float64(80*time.Millisecond) {
		t.Errorf("p50 = %v ns implausible for 1..100ms uniform", p50)
	}
}

func TestMergeSnapshots(t *testing.T) {
	mk := func(n int, lat time.Duration) Snapshot {
		p := New()
		for i := 0; i < n; i++ {
			observeSpan(p, "svc/M", trace.OK, lat)
		}
		observeSpan(p, "svc/M", trace.DeadlineExceeded, lat)
		return p.Snapshot()
	}
	merged := MergeSnapshots([]Snapshot{mk(10, time.Millisecond), mk(30, 4*time.Millisecond)})
	if merged.Calls != 42 || merged.Errors != 2 {
		t.Fatalf("merged calls=%d errors=%d", merged.Calls, merged.Errors)
	}
	if merged.ByCode["DeadlineExceeded"] != 2 {
		t.Errorf("merged by_code = %v", merged.ByCode)
	}
	h := merged.LatencyHist()
	if h.Count() != 40 {
		t.Fatalf("merged latency count = %d", h.Count())
	}
	// 75% of samples at 4ms → p90 near 4ms, p25 near 1ms.
	if p90 := h.Percentile(90); p90 < float64(3*time.Millisecond) {
		t.Errorf("p90 = %v", p90)
	}
}

func TestMergeSnapshotsEmpty(t *testing.T) {
	merged := MergeSnapshots(nil)
	if merged.Calls != 0 || merged.LatencyHist().Count() != 0 {
		t.Fatal("empty merge not empty")
	}
}
