package telemetry

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"rpcscale/internal/core"
	"rpcscale/internal/gwp"
	"rpcscale/internal/monarch"
	"rpcscale/internal/stubby"
	"rpcscale/internal/trace"
)

// fakeClock is a settable clock for deterministic window tests.
type fakeClock struct{ at time.Time }

func (f *fakeClock) now() time.Time { return f.at }

// span fabricates a successful client span with the given total latency
// split across stack and application components.
func span(method string, total time.Duration) *trace.Span {
	s := &trace.Span{
		TraceID: 1, SpanID: 1,
		Method: method, Service: strings.SplitN(method, "/", 2)[0],
		ClientCluster: "c1", ServerCluster: "c1",
		RequestBytes: 1000, ResponseBytes: 2000,
	}
	s.Breakdown[trace.ServerApp] = total / 2
	s.Breakdown[trace.ReqProcStack] = total / 4
	s.Breakdown[trace.RespProcStack] = total / 4
	return s
}

func TestObserveExportsMonarch(t *testing.T) {
	clk := &fakeClock{at: time.Unix(10_000_000, 0)}
	p := New(WithClock(clk.now))

	for i := 0; i < 50; i++ {
		p.Observe(span("svc/Get", time.Millisecond))
	}
	bad := span("svc/Get", time.Millisecond)
	bad.Err = trace.Unavailable
	p.Observe(bad)

	db := p.Monarch()
	from, to := clk.at.Add(-time.Hour), clk.at.Add(time.Hour)

	counts := db.Query(MetricRPCCount, monarch.Labels{"method": "svc/Get"}, from, to)
	var calls float64
	for _, s := range counts {
		for _, pt := range s.Points {
			calls += pt.Value
		}
	}
	if calls != 51 {
		t.Fatalf("rpc/count = %.0f, want 51 (errors counted, §2.1)", calls)
	}

	errs := db.Query(MetricRPCErrors, monarch.Labels{"code": "Unavailable"}, from, to)
	if len(errs) != 1 || errs[0].Last().Value != 1 {
		t.Fatalf("rpc/errors{Unavailable} = %v, want one series with value 1", errs)
	}

	lats := db.Query(MetricLatency, monarch.Labels{"method": "svc/Get"}, from, to)
	if len(lats) != 1 {
		t.Fatalf("rpc/latency: %d series, want 1", len(lats))
	}
	d := lats[0].Last().Dist
	if d == nil || d.Count() != 50 {
		t.Fatalf("latency dist count = %v, want 50 (error latency excluded)", d)
	}
	p50 := d.Quantile(0.5)
	if p50 < 0.9e6 || p50 > 1.1e6 {
		t.Fatalf("latency P50 = %.0fns, want ~1ms", p50)
	}

	sizes := db.Query(MetricReqBytes, nil, from, to)
	if len(sizes) != 1 || sizes[0].Last().Dist.Mean() != 1000 {
		t.Fatalf("request size dist wrong: %+v", sizes)
	}
}

func TestWindowAlignment(t *testing.T) {
	base := time.Unix(0, 0).Add(1000 * time.Hour)
	clk := &fakeClock{at: base.Add(29 * time.Minute)}
	p := New(WithClock(clk.now), WithWindow(30*time.Minute))

	p.Observe(span("svc/Get", time.Millisecond)) // lands in window [base, base+30m)
	clk.at = base.Add(31 * time.Minute)
	p.Observe(span("svc/Get", time.Millisecond)) // rolls into the next window

	db := p.Monarch()
	series := db.Query(MetricRPCCount, monarch.Labels{"method": "svc/Get"}, base.Add(-time.Hour), base.Add(2*time.Hour))
	if len(series) != 1 {
		t.Fatalf("got %d series, want 1", len(series))
	}
	pts := series[0].Points
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2 (one per 30m window)", len(pts))
	}
	if !pts[0].At.Equal(base) || !pts[1].At.Equal(base.Add(30*time.Minute)) {
		t.Fatalf("window starts %v, %v; want %v, %v", pts[0].At, pts[1].At, base, base.Add(30*time.Minute))
	}
	if got := pts[1].At.Sub(pts[0].At); got != db.Window() {
		t.Fatalf("point spacing %v != window %v", got, db.Window())
	}
}

func TestAttribution(t *testing.T) {
	p := New()

	// A live span with no split: application gets ServerApp, the tax is
	// spread over the stack components, nothing on the waiting components.
	s := span("svc/Get", 2*time.Millisecond)
	p.Observe(s)
	if !s.HasCPUSplit() {
		t.Fatal("Observe should attribute cycles on spans without a split")
	}
	if got, want := s.CPUByCategory[gwp.Application], float64(s.Breakdown[trace.ServerApp]); got != want {
		t.Fatalf("Application cycles = %v, want handler time %v", got, want)
	}
	var total float64
	for _, v := range s.CPUByCategory {
		total += v
	}
	if total != s.CPUCycles {
		t.Fatalf("CPUCycles %v != sum of categories %v", s.CPUCycles, total)
	}
	if s.CPUByCategory[gwp.Compression] != 0 {
		t.Fatalf("no compressed bytes seen, but Compression got %v cycles", s.CPUByCategory[gwp.Compression])
	}
	if s.CPUByCategory[gwp.Networking] <= 0 || s.CPUByCategory[gwp.RPCLibrary] <= 0 {
		t.Fatal("stack tax should land on Networking and RPCLibrary")
	}

	// Once the stack's compressor reports bytes, compression earns cycles.
	p2 := New()
	p2.CompressorStats().BytesIn.Add(3000) // == payload bytes of one span
	s2 := span("svc/Get", 2*time.Millisecond)
	p2.Observe(s2)
	if s2.CPUByCategory[gwp.Compression] <= 0 {
		t.Fatal("compressed traffic should attribute cycles to Compression")
	}

	// A span that already carries a split (e.g. simulator output) is
	// recorded as-is.
	s3 := span("svc/Get", time.Millisecond)
	s3.CPUByCategory[gwp.Application] = 42
	s3.CPUCycles = 42
	p.Observe(s3)
	if s3.CPUByCategory[gwp.Application] != 42 || s3.CPUCycles != 42 {
		t.Fatal("pre-attributed span was rewritten")
	}

	snap := p.Profiler().Snapshot()
	if snap.Total() <= 0 || snap.TaxShare() <= 0 {
		t.Fatalf("profiler saw nothing: total=%v tax=%v", snap.Total(), snap.TaxShare())
	}
}

func TestReset(t *testing.T) {
	p := New()
	p.Observe(span("svc/Get", time.Millisecond))
	p.Reset()
	if p.Calls() != 0 {
		t.Fatalf("Calls() = %d after Reset", p.Calls())
	}
	if got := p.Profiler().Snapshot().Total(); got != 0 {
		t.Fatalf("profiler total = %v after Reset", got)
	}
	db := p.Monarch()
	if s := db.Query(MetricRPCCount, nil, time.Now().Add(-24*time.Hour), time.Now().Add(24*time.Hour)); len(s) != 0 {
		t.Fatalf("monarch still has %d series after Reset", len(s))
	}
}

// TestLoopbackRoundTrip drives real traffic through the stack with the
// plane plugged in and checks every leg: spans, Monarch series from all
// three recording surfaces, GWP attribution, and the Dataset -> FullReport
// round trip.
func TestLoopbackRoundTrip(t *testing.T) {
	plane := New()
	opts := plane.Apply(stubby.Options{ClusterName: "test-cl", Workers: 4})

	srv := stubby.NewServer(opts)
	srv.Intercept(plane.ServerInterceptor("test-cl"))
	srv.Register("kv.Store/Get", func(ctx context.Context, p []byte) ([]byte, error) {
		return append(p, p...), nil
	})
	srv.Register("kv.Store/Fail", func(ctx context.Context, p []byte) ([]byte, error) {
		return nil, stubby.Errorf(trace.EntityNotFound, "nope")
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()

	ch, err := stubby.Dial(l.Addr().String(), "test-cl", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer ch.Close()
	call := ch.Intercepted(plane.ClientInterceptor())

	const n = 120
	payload := make([]byte, 256)
	ctx := context.Background()
	for i := 0; i < n; i++ {
		if _, err := call(ctx, "kv.Store/Get", payload); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if _, err := call(ctx, "kv.Store/Fail", payload); err == nil {
			t.Fatal("Fail should fail")
		}
	}

	if got := plane.Calls(); got != n+5 {
		t.Fatalf("plane saw %d calls, want %d", got, n+5)
	}
	if got := plane.Errors(); got != 5 {
		t.Fatalf("plane saw %d errors, want 5", got)
	}

	db := plane.Monarch()
	from, to := time.Now().Add(-time.Hour), time.Now().Add(time.Hour)

	// Span surface: per-method latency series keyed by serving cluster.
	lats := db.Query(MetricLatency, monarch.Labels{"method": "kv.Store/Get", "cluster": "test-cl"}, from, to)
	var latCount uint64
	for _, s := range lats {
		for _, pt := range s.Points {
			latCount += pt.Dist.Count()
		}
	}
	if latCount != n {
		t.Fatalf("rpc/latency count = %d, want %d", latCount, n)
	}

	// Server interceptor surface.
	sc := db.Query(MetricServerCount, monarch.Labels{"method": "kv.Store/Get"}, from, to)
	var served float64
	for _, s := range sc {
		for _, pt := range s.Points {
			served += pt.Value
		}
	}
	if served != n {
		t.Fatalf("server/requests = %.0f, want %d", served, n)
	}

	// Client interceptor surface, including the per-code error counter.
	cc := db.Query(MetricClientCalls, monarch.Labels{"method": "kv.Store/Fail", "code": "EntityNotFound"}, from, to)
	var failed float64
	for _, s := range cc {
		for _, pt := range s.Points {
			failed += pt.Value
		}
	}
	if failed != 5 {
		t.Fatalf("client/calls{EntityNotFound} = %.0f, want 5", failed)
	}

	// GWP attribution saw real cycles in tax categories.
	snap := plane.Profiler().Snapshot()
	if snap.TaxCycles() <= 0 {
		t.Fatal("no tax cycles attributed from live traffic")
	}

	// The dataset round trip: live traffic renders the full report.
	ds := plane.Dataset()
	if len(ds.VolumeSpans) == 0 {
		t.Fatal("dataset has no spans")
	}
	if ds.Profile == nil || ds.Profile.Total() <= 0 {
		t.Fatal("dataset carries no CPU profile")
	}
	report := core.FullReport(ds, core.ReportOptions{DB: db})
	for _, want := range []string{
		"RPC completion time", // Fig. 2
		"request size",        // Fig. 6
		"RPC latency tax",     // Fig. 10
		"RPC cycle tax",       // Fig. 20
		"RPC errors",          // Fig. 23
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q section", want)
		}
	}
	if !strings.Contains(report, "EntityNotFound") {
		t.Error("report error analysis missing the live error code")
	}
}
