// Package telemetry is the unified observability plane for the real RPC
// stack: the live counterpart of the three systems the paper's entire
// methodology rests on. One Plane aggregates
//
//   - Monarch-style monitoring: every call becomes distribution-valued
//     time series keyed by (service, method, cluster, code), aligned to
//     the paper's 30-minute windows (internal/monarch);
//   - Dapper-style tracing: spans with the nine-component breakdown are
//     retained under head-based sampling (internal/trace);
//   - GWP-style profiling: the cycles each call burned are attributed
//     across the Fig. 20 taxonomy (application, compression, networking,
//     serialization, RPC library), folding in the stack's compressor and
//     encryption byte accounting (internal/gwp).
//
// A Plane plugs into the stack through the single stubby.Options.Telemetry
// hook (see Plane.Apply); Plane.Dataset then assembles a workload.Dataset
// so core.FullReport renders the paper's figure-by-figure analyses over
// real traffic instead of simulated fleets.
package telemetry

import (
	"sync"
	"sync/atomic"
	"time"

	"rpcscale/internal/compressor"
	"rpcscale/internal/gwp"
	"rpcscale/internal/monarch"
	"rpcscale/internal/secure"
	"rpcscale/internal/stats"
	"rpcscale/internal/trace"
)

// Metric names the plane exports to its Monarch DB.
const (
	// MetricRPCCount counts calls per window. Counter; labels: service,
	// method, client, server, code.
	MetricRPCCount = "rpc/count"
	// MetricRPCErrors counts failed calls per window. Counter; labels:
	// service, method, code.
	MetricRPCErrors = "rpc/errors"
	// MetricLatency is the completion-time distribution of successful
	// calls, ns. Distribution; labels: service, method, cluster.
	MetricLatency = "rpc/latency"
	// MetricReqBytes / MetricRespBytes are payload size distributions.
	// Distribution; labels: service, method.
	MetricReqBytes  = "rpc/request_bytes"
	MetricRespBytes = "rpc/response_bytes"
	// MetricServerCount / MetricServerApp are the server-side view
	// recorded by ServerInterceptor: request volume and handler time.
	// Counter / Distribution; labels: method, cluster.
	MetricServerCount = "server/requests"
	MetricServerApp   = "server/app_latency"
	// MetricClientCalls / MetricClientLatency are the caller-perceived
	// view recorded by ClientInterceptor: one sample per logical call
	// (retries and hedges included), as opposed to one span per attempt.
	// Counter / Distribution; labels: method (+ code on the counter).
	MetricClientCalls   = "client/calls"
	MetricClientLatency = "client/latency"
	// MetricRetries / MetricRetriesSuppressed count retry attempts the
	// stack issued and retries the budget refused — together the live
	// retry-amplification accounting. Counter; labels: method.
	MetricRetries           = "client/retries"
	MetricRetriesSuppressed = "client/retries_suppressed"
	// MetricBreakerTransitions counts circuit-breaker state changes.
	// Counter; labels: method, from, to.
	MetricBreakerTransitions = "client/breaker_transitions"
	// MetricShed counts requests the server rejected by load shedding
	// before they reached the worker pool. Counter; labels: method.
	MetricShed = "server/shed"
	// MetricCodecJobs counts seal/open jobs submitted to codec worker
	// pools (the pipelined data plane, DESIGN.md §16). Counter; no labels.
	MetricCodecJobs = "rpc/codec_jobs"
	// MetricCodecQueueDepth is the distribution of codec job-queue depth
	// observed at submit time. Distribution; no labels.
	MetricCodecQueueDepth = "rpc/codec_queue_depth"
	// MetricCompressSkipped counts payloads the adaptive compression gate
	// sent uncompressed. Counter; labels: method.
	MetricCompressSkipped = "rpc/compress_skipped"
)

// config collects construction-time settings.
type config struct {
	window      time.Duration
	retention   time.Duration
	sampleEvery uint64
	capacity    int
	now         func() time.Time
}

// Option configures a Plane built with New.
type Option func(*config)

// WithWindow sets the Monarch alignment window (default: the paper's 30
// minutes). Non-positive values keep the default.
func WithWindow(d time.Duration) Option {
	return func(c *config) {
		if d > 0 {
			c.window = d
		}
	}
}

// WithRetention sets the Monarch retention horizon (default: the paper's
// 700 days). Non-positive values keep the default.
func WithRetention(d time.Duration) Option {
	return func(c *config) {
		if d > 0 {
			c.retention = d
		}
	}
}

// WithSampleEvery keeps 1-in-n traces in the span store (head-based, by
// trace ID, as Dapper samples). Monarch series and GWP attribution still
// see every call. Default 1 (keep everything).
func WithSampleEvery(n uint64) Option {
	return func(c *config) { c.sampleEvery = n }
}

// WithSpanCapacity bounds retained spans (0 = unbounded, the default).
func WithSpanCapacity(n int) Option {
	return func(c *config) { c.capacity = n }
}

// WithClock substitutes the wall clock, letting tests place samples on
// chosen Monarch windows deterministically.
func WithClock(now func() time.Time) Option {
	return func(c *config) {
		if now != nil {
			c.now = now
		}
	}
}

// Plane is the observability plane. It is safe for concurrent use from
// any number of channels and servers.
type Plane struct {
	db   *monarch.DB
	prof *gwp.Profiler
	col  *trace.Collector
	comp *compressor.Stats
	enc  *secure.Stats

	now   func() time.Time
	start time.Time

	payloadBytes atomic.Uint64 // all payload bytes observed (split calibration)

	// Robustness totals (the RobustnessObserver surface; see robustness.go).
	retriesAttempted   atomic.Uint64
	retriesSuppressed  atomic.Uint64
	breakerTransitions atomic.Uint64
	shedCalls          atomic.Uint64

	// Data-plane totals (the DataPlaneObserver surface; see dataplane.go).
	codecJobs            atomic.Uint64
	compressSkips        atomic.Uint64
	compressSkippedBytes atomic.Uint64

	mu   sync.Mutex
	aggs map[aggKey]*winAgg
}

// aggKey identifies one windowed aggregation stream. kind distinguishes
// the three recording surfaces (span observer, server interceptor, client
// interceptor) so their metrics stay separate.
type aggKey struct {
	kind    uint8
	service string
	method  string
	client  string
	server  string
	code    trace.ErrorCode
}

const (
	kindRPC uint8 = iota
	kindServer
	kindClient
	kindRetry
	kindRetrySuppressed
	kindBreaker
	kindShed
	kindCodecJob
	kindCompressSkip
)

// winAgg buffers one stream's current window; it is flushed into Monarch
// when the window rolls over or Flush is called.
type winAgg struct {
	window time.Time // aligned window start
	count  float64
	lat    *stats.Hist // ns; nil until first success
	req    *stats.Hist // bytes
	resp   *stats.Hist // bytes
}

// New returns a Plane with a fresh Monarch DB, GWP profiler, span
// collector, and stack byte accounting.
func New(opts ...Option) *Plane {
	cfg := config{sampleEvery: 1, now: time.Now}
	for _, o := range opts {
		o(&cfg)
	}
	p := &Plane{
		db:   newDeclaredDB(cfg.window, cfg.retention),
		prof: gwp.New(),
		col: trace.New(
			trace.WithSampleEvery(cfg.sampleEvery),
			trace.WithCapacity(cfg.capacity),
		),
		comp: &compressor.Stats{},
		enc:  &secure.Stats{},
		now:  cfg.now,
		aggs: make(map[aggKey]*winAgg),
	}
	p.start = p.now()
	return p
}

// newDeclaredDB builds a Monarch DB with every plane metric declared.
func newDeclaredDB(window, retention time.Duration) *monarch.DB {
	db := monarch.NewDB(monarch.WithWindow(window), monarch.WithRetention(retention))
	for m, k := range map[string]monarch.Kind{
		MetricRPCCount:           monarch.Counter,
		MetricRPCErrors:          monarch.Counter,
		MetricLatency:            monarch.Distribution,
		MetricReqBytes:           monarch.Distribution,
		MetricRespBytes:          monarch.Distribution,
		MetricServerCount:        monarch.Counter,
		MetricServerApp:          monarch.Distribution,
		MetricClientCalls:        monarch.Counter,
		MetricClientLatency:      monarch.Distribution,
		MetricRetries:            monarch.Counter,
		MetricRetriesSuppressed:  monarch.Counter,
		MetricBreakerTransitions: monarch.Counter,
		MetricShed:               monarch.Counter,
		MetricCodecJobs:          monarch.Counter,
		MetricCodecQueueDepth:    monarch.Distribution,
		MetricCompressSkipped:    monarch.Counter,
	} {
		if err := db.Declare(m, k); err != nil {
			panic(err) // fresh DB; only a telemetry-internal bug can fail
		}
	}
	return db
}

// Reset discards everything observed so far — retained spans, Monarch
// series, GWP samples, pending window aggregates, and the stack byte
// accounting — and restarts the observation clock. Benchmarks call it
// after warmup so the report covers only the measured phase. Holders of a
// previously returned Monarch DB keep the old, frozen store; call Monarch
// again for the live one.
func (p *Plane) Reset() {
	p.mu.Lock()
	p.aggs = make(map[aggKey]*winAgg)
	p.db = newDeclaredDB(p.db.Window(), p.db.Retention())
	p.start = p.now()
	p.mu.Unlock()
	p.col.Reset()
	p.prof.Reset()
	p.payloadBytes.Store(0)
	p.retriesAttempted.Store(0)
	p.retriesSuppressed.Store(0)
	p.breakerTransitions.Store(0)
	p.shedCalls.Store(0)
	p.codecJobs.Store(0)
	p.compressSkips.Store(0)
	p.compressSkippedBytes.Store(0)
	p.comp.CompressCalls.Store(0)
	p.comp.DecompressCalls.Store(0)
	p.comp.BytesIn.Store(0)
	p.comp.BytesOut.Store(0)
	p.comp.Skips.Store(0)
	p.comp.SkippedBytes.Store(0)
	p.enc.Seals.Store(0)
	p.enc.Opens.Store(0)
	p.enc.BytesEncrypted.Store(0)
}

// Monarch returns the plane's monitoring DB with all pending window
// aggregates flushed, so queries see every observed call.
func (p *Plane) Monarch() *monarch.DB {
	p.Flush()
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.db
}

// Profiler returns the plane's GWP profiler.
func (p *Plane) Profiler() *gwp.Profiler { return p.prof }

// Collector returns the plane's span store.
func (p *Plane) Collector() *trace.Collector { return p.col }

// CompressorStats returns the compression byte accounting shared with the
// stack (Plane.Apply wires it into stubby.Options).
func (p *Plane) CompressorStats() *compressor.Stats { return p.comp }

// EncryptionStats returns the encryption byte accounting shared with the
// stack.
func (p *Plane) EncryptionStats() *secure.Stats { return p.enc }

// Calls returns the number of spans observed (sampled or not).
func (p *Plane) Calls() uint64 { return p.col.Seen() }

// Errors returns the number of error spans observed.
func (p *Plane) Errors() uint64 { return p.col.ErrorsSeen() }

// Observe receives one completed span from the stack (the
// stubby.SpanObserver hook). It attributes the span's cycles across the
// GWP taxonomy, folds the call into the Monarch window aggregates, and
// offers the span to the sampling collector.
func (p *Plane) Observe(s *trace.Span) {
	now := p.now()
	if s.Start == 0 {
		p.mu.Lock()
		s.Start = now.Sub(p.start)
		p.mu.Unlock()
	}
	p.payloadBytes.Add(uint64(s.RequestBytes + s.ResponseBytes))

	// GWP attribution sees every call, sampled or not, mirroring how GWP
	// samples independently of Dapper.
	if !s.HasCPUSplit() {
		s.CPUByCategory = p.attribute(s)
		var total float64
		for _, v := range s.CPUByCategory {
			total += v
		}
		s.CPUCycles = total
	}
	for cat, cycles := range s.CPUByCategory {
		p.prof.Record(s.Service, s.Method, gwp.Category(cat), cycles)
	}

	key := aggKey{
		kind:    kindRPC,
		service: s.Service,
		method:  s.Method,
		client:  s.ClientCluster,
		server:  s.ServerCluster,
		code:    s.Err,
	}
	p.mu.Lock()
	a := p.window(key, now)
	a.count++
	if s.Err == trace.OK {
		// The paper excludes error-call latency from distributions but
		// still counts error volume (§2.1); sizes follow latency.
		if a.lat == nil {
			a.lat = stats.NewLatencyHist()
			a.req = stats.NewSizeHist()
			a.resp = stats.NewSizeHist()
		}
		a.lat.Add(float64(s.Breakdown.Total()))
		a.req.Add(float64(s.RequestBytes))
		a.resp.Add(float64(s.ResponseBytes))
	}
	p.mu.Unlock()

	p.col.Collect(s)
}

// attribute splits one live span's measured CPU-side work across the
// Fig. 20 taxonomy, in normalized cycle units (ns of CPU time). The
// application cost is the handler's own time; the cycle tax lives in the
// processing-stack components (marshal, compress, encrypt, frame) — the
// queue and wire components are waiting, not cycles. Per-byte work is
// divided among serialization, compression (weighted by the fraction of
// payload bytes the stack's compressor actually processed, from the live
// byte accounting), and encryption+framing (networking); the remaining
// per-call base is the RPC library itself.
func (p *Plane) attribute(s *trace.Span) [gwp.NumCategories]float64 {
	var out [gwp.NumCategories]float64
	out[gwp.Application] = float64(s.Breakdown[trace.ServerApp])
	stack := float64(s.Breakdown.Stack())
	if stack <= 0 {
		return out
	}
	bytes := float64(s.RequestBytes + s.ResponseBytes)
	// Relative per-byte costs: DEFLATE ~15ns/B when engaged, AES-GCM +
	// framing ~1ns/B, marshal/copy ~0.5ns/B; per-call library base ~3us.
	wComp := 15.0 * bytes * p.compressedFraction()
	wNet := 1.0*bytes + 2000
	wSer := 0.5 * bytes
	wLib := 3000.0
	wTot := wComp + wNet + wSer + wLib
	out[gwp.Compression] = stack * wComp / wTot
	out[gwp.Networking] = stack * wNet / wTot
	out[gwp.Serialization] = stack * wSer / wTot
	out[gwp.RPCLibrary] = stack * wLib / wTot
	return out
}

// compressedFraction estimates, from the stack's live byte accounting,
// what fraction of observed payload bytes passed through the compressor.
func (p *Plane) compressedFraction() float64 {
	seen := p.payloadBytes.Load()
	if seen == 0 {
		return 0
	}
	frac := float64(p.comp.BytesIn.Load()) / float64(seen)
	if frac > 1 {
		frac = 1
	}
	return frac
}

// window returns the aggregate for key's current window, flushing the
// previous window if time rolled past it. Caller holds p.mu.
func (p *Plane) window(key aggKey, now time.Time) *winAgg {
	aligned := now.Truncate(p.db.Window())
	a := p.aggs[key]
	if a != nil && !a.window.Equal(aligned) {
		p.flushLocked(key, a)
		a = nil
	}
	if a == nil {
		a = &winAgg{window: aligned}
		p.aggs[key] = a
	}
	return a
}

// Flush pushes every pending window aggregate into the Monarch DB. It is
// called automatically when a window rolls over and by Monarch/Dataset;
// call it directly before ad-hoc queries mid-window.
func (p *Plane) Flush() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for key, a := range p.aggs {
		p.flushLocked(key, a)
	}
	p.aggs = make(map[aggKey]*winAgg)
}

// flushLocked writes one aggregate's metrics. Caller holds p.mu. The
// monarch DB has its own lock; lock order is always plane -> db.
func (p *Plane) flushLocked(key aggKey, a *winAgg) {
	if a.count == 0 {
		return
	}
	switch key.kind {
	case kindRPC:
		p.write(MetricRPCCount, monarch.Labels{
			"service": key.service, "method": key.method,
			"client": key.client, "server": key.server,
			"code": key.code.String(),
		}, a.window, a.count)
		if key.code != trace.OK {
			p.write(MetricRPCErrors, monarch.Labels{
				"service": key.service, "method": key.method,
				"code": key.code.String(),
			}, a.window, a.count)
		}
		if a.lat != nil {
			labels := monarch.Labels{
				"service": key.service, "method": key.method,
				"cluster": key.server,
			}
			p.writeDist(MetricLatency, labels, a.window, a.lat)
			sizeLabels := monarch.Labels{"service": key.service, "method": key.method}
			p.writeDist(MetricReqBytes, sizeLabels, a.window, a.req)
			p.writeDist(MetricRespBytes, sizeLabels, a.window, a.resp)
		}
	case kindServer:
		labels := monarch.Labels{"method": key.method, "cluster": key.server}
		p.write(MetricServerCount, labels, a.window, a.count)
		if a.lat != nil {
			p.writeDist(MetricServerApp, labels, a.window, a.lat)
		}
	case kindClient:
		p.write(MetricClientCalls, monarch.Labels{
			"method": key.method, "code": key.code.String(),
		}, a.window, a.count)
		if a.lat != nil {
			p.writeDist(MetricClientLatency, monarch.Labels{"method": key.method}, a.window, a.lat)
		}
	case kindRetry:
		p.write(MetricRetries, monarch.Labels{"method": key.method}, a.window, a.count)
	case kindRetrySuppressed:
		p.write(MetricRetriesSuppressed, monarch.Labels{"method": key.method}, a.window, a.count)
	case kindBreaker:
		// The transition endpoints ride in the cluster label slots.
		p.write(MetricBreakerTransitions, monarch.Labels{
			"method": key.method, "from": key.client, "to": key.server,
		}, a.window, a.count)
	case kindShed:
		p.write(MetricShed, monarch.Labels{"method": key.method}, a.window, a.count)
	case kindCodecJob:
		p.write(MetricCodecJobs, nil, a.window, a.count)
		if a.lat != nil {
			// The "latency" histogram carries queue depths here; same
			// windowed distribution machinery, different unit.
			p.writeDist(MetricCodecQueueDepth, nil, a.window, a.lat)
		}
	case kindCompressSkip:
		p.write(MetricCompressSkipped, monarch.Labels{"method": key.method}, a.window, a.count)
	}
}

func (p *Plane) write(metric string, labels monarch.Labels, at time.Time, v float64) {
	if err := p.db.Write(metric, labels, at, v); err != nil {
		panic(err) // metrics are declared in New; only a plane bug can fail
	}
}

func (p *Plane) writeDist(metric string, labels monarch.Labels, at time.Time, h *stats.Hist) {
	if err := p.db.WriteDist(metric, labels, at, h); err != nil {
		panic(err)
	}
}
