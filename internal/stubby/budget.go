package stubby

import (
	"sync"
	"sync/atomic"
)

// RetryBudget is a token bucket capping retry amplification, the
// mechanism gRPC calls retry throttling. Unbounded retries convert a
// partial outage into a self-sustaining retry storm: the paper's §7
// overload analysis shows amplified attempts arriving exactly when the
// server can least afford them. The budget bounds that feedback loop.
//
// Every attempt outcome feeds the bucket: a failure drains one token, a
// success refunds SuccessCredit (a fraction of a token). Retries are
// permitted only while the bucket holds more than half its capacity, so
// a burst of failures quickly drives the budget into suppression and
// sustained retry volume is bounded by roughly SuccessCredit retries
// per successful call — Cap reports that bound as an amplification
// factor.
//
// A budget is shared: give every channel of a pool (or every channel to
// one backend) the same *RetryBudget so the cap covers the aggregate
// stream, not each connection separately. It is safe for concurrent use.
type RetryBudget struct {
	mu     sync.Mutex
	tokens float64
	max    float64
	credit float64

	attempted  atomic.Uint64
	suppressed atomic.Uint64
}

// NewRetryBudget returns a budget holding maxTokens (the burst
// allowance; <=0 selects 10) that refunds successCredit tokens per
// success (<=0 selects 0.1).
func NewRetryBudget(maxTokens, successCredit float64) *RetryBudget {
	if maxTokens <= 0 {
		maxTokens = 10
	}
	if successCredit <= 0 {
		successCredit = 0.1
	}
	return &RetryBudget{tokens: maxTokens, max: maxTokens, credit: successCredit}
}

// OnOutcome feeds one attempt outcome into the bucket.
func (b *RetryBudget) OnOutcome(failed bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if failed {
		b.tokens--
		if b.tokens < 0 {
			b.tokens = 0
		}
		return
	}
	b.tokens += b.credit
	if b.tokens > b.max {
		b.tokens = b.max
	}
}

// AllowRetry reports whether a retry may be attempted now, recording the
// verdict in the attempted/suppressed counters.
func (b *RetryBudget) AllowRetry() bool {
	b.mu.Lock()
	ok := b.tokens > b.max/2
	b.mu.Unlock()
	if ok {
		b.attempted.Add(1)
	} else {
		b.suppressed.Add(1)
	}
	return ok
}

// Tokens returns the current token level.
func (b *RetryBudget) Tokens() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens
}

// Attempted returns how many retries the budget has admitted.
func (b *RetryBudget) Attempted() uint64 { return b.attempted.Load() }

// Suppressed returns how many retries the budget has refused.
func (b *RetryBudget) Suppressed() uint64 { return b.suppressed.Load() }

// Cap returns the sustained retry-amplification bound the budget
// enforces: attempts per logical call approach at most 1+SuccessCredit
// once the initial burst allowance is spent.
func (b *RetryBudget) Cap() float64 { return 1 + b.credit }
