package stubby

import (
	"context"
	"sync"
)

// Per-stream credit-based flow control, the HTTP/2 WINDOW_UPDATE model:
// the sender spends credit for every message it sends and blocks at zero;
// the receiver grants credit back as the application consumes messages.
// One stalled stream therefore buffers at most its window on the receiver
// and then stops — without blocking the shared connection, whose reader
// never waits on any stream (see DESIGN.md §12).

// creditWindow tracks one direction's send credit. grant and kill may be
// called from any goroutine; take blocks until enough credit is
// available, the window is killed, or ctx is done.
type creditWindow struct {
	mu    sync.Mutex
	avail int64
	err   error         // terminal: the stream died
	wait  chan struct{} // closed and replaced on every grant/kill
}

func newCreditWindow(initial int64) *creditWindow {
	return &creditWindow{avail: initial}
}

// take blocks until n credits are available and consumes them. It returns
// the kill error if the window dies first, or the context's status error
// if ctx is done first. The lock is never held while blocking: waiters
// snapshot the wait channel and select outside the critical section.
func (w *creditWindow) take(n int64, ctx context.Context) error {
	w.mu.Lock()
	for {
		if w.err != nil {
			err := w.err
			w.mu.Unlock()
			return err
		}
		if w.avail >= n {
			w.avail -= n
			w.mu.Unlock()
			return nil
		}
		if w.wait == nil {
			w.wait = make(chan struct{})
		}
		ch := w.wait
		w.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return ctxErrToStatus(ctx.Err())
		}
		w.mu.Lock()
	}
}

// grant adds n credits and wakes blocked senders.
func (w *creditWindow) grant(n int64) {
	w.mu.Lock()
	w.avail += n
	if w.wait != nil {
		close(w.wait)
		w.wait = nil
	}
	w.mu.Unlock()
}

// kill terminates the window: blocked and future takes return err.
// Subsequent kills keep the first error.
func (w *creditWindow) kill(err error) {
	w.mu.Lock()
	if w.err == nil {
		w.err = err
	}
	if w.wait != nil {
		close(w.wait)
		w.wait = nil
	}
	w.mu.Unlock()
}
