package stubby

// Striped-connection robustness (DESIGN.md §16): bulk frames and stream
// chunks interleave across K TCP connections, so reassembly must hold
// per-stripe affinity, and a single stripe dying must condemn the whole
// logical channel with a coded *Status — promptly, never a hang. Every
// test here is deadline-bounded.

import (
	"bytes"
	"context"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"rpcscale/internal/leakcheck"
	"rpcscale/internal/trace"
)

// stripedSetup starts an echo server plus a bidi pump and returns a
// channel dialed with the given stripe count.
func stripedSetup(t *testing.T, stripes int) *Channel {
	t.Helper()
	leakcheck.Check(t)
	opts := Options{Workers: 4, ConnStripes: stripes}
	srv := NewServer(opts)
	srv.Register("stripe/Echo", func(ctx context.Context, p []byte) ([]byte, error) {
		return p, nil
	})
	srv.RegisterBidi("stripe/Pump", func(ctx context.Context, st *Stream) error {
		for {
			msg, err := st.Recv()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
			if err := st.Send(msg); err != nil {
				return err
			}
		}
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	ch, err := Dial(l.Addr().String(), "stripe-test", opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ch.Close()
		srv.Close()
	})
	return ch
}

// TestStripedInterleavedReassembly drives concurrent bulk calls and
// streams over a 3-stripe channel: chunk frames from many transfers are
// in flight on every stripe at once, and each transfer must reassemble
// its own bytes exactly (per-call stripe affinity keeps one transfer's
// chunks ordered on one connection).
func TestStripedInterleavedReassembly(t *testing.T) {
	ch := stripedSetup(t, 3)
	if len(ch.stripes) != 3 {
		t.Fatalf("dialed %d stripes, want 3", len(ch.stripes))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	errs := make(chan error, 32)
	// Bulk callers: distinct pattern per caller so cross-stripe mixups
	// corrupt payloads detectably.
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			payload := make([]byte, 96<<10)
			for i := range payload {
				payload[i] = byte(i*7 + w*131)
			}
			for i := 0; i < 8; i++ {
				out, err := ch.Call(ctx, "stripe/Echo", payload, WithBulkLane(true))
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(out, payload) {
					errs <- Errorf(trace.Internal, "caller %d: bulk echo corrupted", w)
					FreeResponse(out)
					return
				}
				FreeResponse(out)
			}
		}(w)
	}
	// Stream pumpers interleave chunk frames with the bulk transfers.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st, err := ch.OpenStream(ctx, "stripe/Pump")
			if err != nil {
				errs <- err
				return
			}
			defer st.Close()
			msg := make([]byte, 8<<10)
			for i := range msg {
				msg[i] = byte(i + w)
			}
			for i := 0; i < 20; i++ {
				if err := st.Send(msg); err != nil {
					errs <- err
					return
				}
				got, err := st.Recv()
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, msg) {
					errs <- Errorf(trace.Internal, "stream %d: echo corrupted", w)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestStripedConnTruncationFailsCoded kills one stripe's TCP connection
// while bulk transfers are mid-flight on all of them: every outstanding
// and subsequent call must fail with a coded *Status within the deadline
// — a truncated chunk sequence on one stripe must never strand a caller.
func TestStripedConnTruncationFailsCoded(t *testing.T) {
	ch := stripedSetup(t, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	payload := make([]byte, 256<<10)
	for i := range payload {
		payload[i] = byte(i)
	}
	var wg sync.WaitGroup
	codes := make(chan error, 16)
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := ch.Call(ctx, "stripe/Echo", payload, WithBulkLane(true)); err != nil {
					codes <- err
					return
				}
			}
		}()
	}
	// Let transfers get in flight on every stripe, then cut one stripe's
	// socket out from under them, truncating its in-flight chunk frames.
	time.Sleep(50 * time.Millisecond)
	ch.stripes[1].tr.close()
	wg.Wait()
	close(stop)
	close(codes)
	n := 0
	for err := range codes {
		n++
		var st *Status
		if !asStatus(err, &st) {
			t.Fatalf("stripe-kill error not a *Status: %v", err)
		}
		if st.Code == trace.OK {
			t.Fatalf("stripe-kill produced an OK status: %v", err)
		}
	}
	if n == 0 {
		t.Fatal("no caller observed the stripe failure")
	}
	// The condemned channel fails new calls fast with a coded status.
	if _, err := ch.Call(ctx, "stripe/Echo", []byte("x")); Code(err) == trace.OK {
		t.Fatalf("call on condemned channel: %v, want coded failure", err)
	}
	if ctx.Err() != nil {
		t.Fatal("test overran its deadline: a caller hung on the truncated stripe")
	}
}

// asStatus reports whether err unwraps to a *Status.
func asStatus(err error, out **Status) bool {
	for ; err != nil; err = unwrap(err) {
		if st, ok := err.(*Status); ok {
			*out = st
			return true
		}
	}
	return false
}

func unwrap(err error) error {
	u, ok := err.(interface{ Unwrap() error })
	if !ok {
		return nil
	}
	return u.Unwrap()
}
