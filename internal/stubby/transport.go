package stubby

import (
	"fmt"
	"net"
	"sync"

	"rpcscale/internal/secure"
	"rpcscale/internal/wire"
)

// transport wraps a net.Conn with framing and per-direction AES-GCM
// encryption. Frame headers (type, stream ID, length) are in the clear —
// as in TLS record framing — while every payload is encrypted.
//
// Key establishment uses a pre-shared secret configured on both ends
// (Options.Secret): each direction derives its own session key. A real
// deployment would run a handshake (ALTS/TLS); the cryptographic work per
// message, which is what the cycle tax measures, is identical.
type transport struct {
	conn net.Conn

	sendMu  sync.Mutex
	sendKey *secure.Session

	recvMu  sync.Mutex
	recvKey *secure.Session
	reader  *wire.Reader
}

// newTransport builds a transport over conn. dirSend/dirRecv label the key
// derivation directions and must be mirrored on the peer.
func newTransport(conn net.Conn, psk []byte, dirSend, dirRecv string, stats *secure.Stats) (*transport, error) {
	sendSess, err := secure.NewSession(secure.DeriveKey(psk, dirSend), stats)
	if err != nil {
		return nil, fmt.Errorf("stubby: send session: %w", err)
	}
	recvSess, err := secure.NewSession(secure.DeriveKey(psk, dirRecv), stats)
	if err != nil {
		return nil, fmt.Errorf("stubby: recv session: %w", err)
	}
	return &transport{
		conn:    conn,
		sendKey: sendSess,
		recvKey: recvSess,
		reader:  wire.NewReader(conn),
	}, nil
}

// send encrypts payload and writes one frame. Safe for concurrent use.
func (t *transport) send(frameType byte, streamID uint64, payload []byte) error {
	t.sendMu.Lock()
	defer t.sendMu.Unlock()
	sealed := t.sendKey.Seal(payload)
	//rpclint:ignore lockheld sendMu exists to serialize frame writes on the shared conn; holding it across the write is the point
	return wire.WriteFrame(t.conn, &wire.Frame{Type: frameType, StreamID: streamID, Payload: sealed})
}

// recv reads and decrypts the next frame. Only one goroutine may call recv.
func (t *transport) recv() (*wire.Frame, []byte, error) {
	t.recvMu.Lock()
	defer t.recvMu.Unlock()
	//rpclint:ignore lockheld recvMu serializes reads of the shared frame reader; the read must happen under it
	f, err := t.reader.ReadFrame()
	if err != nil {
		return nil, nil, err
	}
	plain, err := t.recvKey.Open(f.Payload)
	if err != nil {
		return nil, nil, err
	}
	return f, plain, nil
}

// close tears down the underlying connection.
func (t *transport) close() error { return t.conn.Close() }
