package stubby

import (
	"fmt"
	"net"
	"sync"

	"rpcscale/internal/secure"
	"rpcscale/internal/wire"
)

// transport wraps a net.Conn with framing and per-direction AES-GCM
// encryption. Frame headers (type, stream ID, length) are in the clear —
// as in TLS record framing — while every payload is encrypted.
//
// Key establishment uses a pre-shared secret configured on both ends
// (Options.Secret): each direction derives its own session key. A real
// deployment would run a handshake (ALTS/TLS); the cryptographic work per
// message, which is what the cycle tax measures, is identical.
//
// The send side is a batching drain: frames are sealed directly into the
// wire.Writer's buffer under sendMu and flushed with one Write. Batching
// callers (the client sendLoop and server writeLoop) hold the lock across
// several appendLocked calls and a single flushLocked; one-shot callers
// use send.
type transport struct {
	conn net.Conn

	sendMu  sync.Mutex
	sendKey *secure.Session
	writer  *wire.Writer

	recvMu  sync.Mutex
	recvKey *secure.Session
	reader  *wire.Reader
}

// newTransport builds a transport over conn. dirSend/dirRecv label the key
// derivation directions and must be mirrored on the peer.
func newTransport(conn net.Conn, psk []byte, dirSend, dirRecv string, stats *secure.Stats) (*transport, error) {
	sendSess, err := secure.NewSession(secure.DeriveKey(psk, dirSend), stats)
	if err != nil {
		return nil, fmt.Errorf("stubby: send session: %w", err)
	}
	recvSess, err := secure.NewSession(secure.DeriveKey(psk, dirRecv), stats)
	if err != nil {
		return nil, fmt.Errorf("stubby: recv session: %w", err)
	}
	return &transport{
		conn:    conn,
		sendKey: sendSess,
		writer:  wire.NewWriter(conn),
		recvKey: recvSess,
		reader:  wire.NewReader(conn),
	}, nil
}

// lockSend acquires the send lock for a batching sequence of appendLocked
// calls ending in flushLocked; unlockSend releases it.
func (t *transport) lockSend()   { t.sendMu.Lock() }
func (t *transport) unlockSend() { t.sendMu.Unlock() }

// appendLocked seals payload directly into the write buffer as one frame,
// without flushing. Caller must hold the send lock.
func (t *transport) appendLocked(frameType byte, streamID uint64, payload []byte) error {
	buf, err := t.writer.BeginFrame(frameType, streamID, len(payload)+secure.Overhead)
	if err != nil {
		return err
	}
	buf = t.sendKey.SealAppend(buf, payload)
	return t.writer.EndFrame(buf)
}

// flushLocked writes every appended frame with a single Write. Caller
// must hold the send lock: sendMu exists to serialize frame writes on the
// shared conn, and holding it across the flush is the point.
func (t *transport) flushLocked() error {
	return t.writer.Flush()
}

// send encrypts payload and writes one frame with a single Write. Safe
// for concurrent use.
func (t *transport) send(frameType byte, streamID uint64, payload []byte) error {
	t.sendMu.Lock()
	defer t.sendMu.Unlock()
	if err := t.appendLocked(frameType, streamID, payload); err != nil {
		return err
	}
	return t.flushLocked()
}

// recv reads and decrypts the next frame. Only one goroutine may call
// recv. The returned plaintext sits in a buffer from the wire buffer
// pool: ownership transfers to the caller, who must release it with
// wire.PutBuf once nothing references the bytes (see DESIGN.md §11).
func (t *transport) recv() (*wire.Frame, []byte, error) {
	t.recvMu.Lock()
	defer t.recvMu.Unlock()
	//rpclint:ignore lockheld recvMu serializes reads of the shared frame reader; holding it across the read is the point
	f, err := t.reader.ReadFrame()
	if err != nil {
		return nil, nil, err
	}
	buf := wire.GetBuf(len(f.Payload))
	plain, err := t.recvKey.OpenAppend(buf, f.Payload)
	if err != nil {
		wire.PutBuf(buf)
		return nil, nil, err
	}
	return f, plain, nil
}

// close tears down the underlying connection.
func (t *transport) close() error { return t.conn.Close() }
