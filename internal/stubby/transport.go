package stubby

import (
	"fmt"
	"net"
	"sync"

	"rpcscale/internal/sanitize"
	"rpcscale/internal/secure"
	"rpcscale/internal/wire"
)

// transport wraps a net.Conn with framing and per-direction AES-GCM
// encryption. Frame headers (type, stream ID, length) are in the clear —
// as in TLS record framing — while every payload is encrypted.
//
// Key establishment uses a pre-shared secret configured on both ends
// (Options.Secret): each direction derives its own session key. A real
// deployment would run a handshake (ALTS/TLS); the cryptographic work per
// message, which is what the cycle tax measures, is identical.
//
// The send side is a batching drain: frames are sealed directly into the
// wire.Writer's buffer under sendMu and flushed with one Write. Batching
// callers (the client sendLoop and server writeLoop) hold the lock across
// several appendLocked calls and a single flushLocked; one-shot callers
// use send.
//
// Bulk-lane chunk frames take the scatter-gather path instead: the chunk
// is sealed straight from the caller's buffer into a pooled buffer —
// exactly one cipher pass over the payload — and queued by reference on
// the wire.Writer, whose Flush hands the kernel a writev iovec list. The
// pooled chunk buffers come back through the writer's flush hook.
type transport struct {
	conn net.Conn

	// codec, when non-nil, is the connection's seal/open worker pool
	// (DESIGN.md §16): large frames are ciphered concurrently off the
	// loops, harvested in submission order so the wire sees the same
	// frame sequence as the inline path. Set by startCodec before the
	// connection's loops start; nil means the fully inline data plane.
	codec *codecPool

	sendMu  sync.Mutex
	sendKey *secure.Session
	writer  *wire.Writer
	// aad is scratch for the chunk flags byte sealed as additional
	// authenticated data; sendMu serializes access.
	aad [1]byte

	recvMu  sync.Mutex
	recvKey *secure.Session
	reader  *wire.Reader
}

// Chunk flags: the single clear-text byte leading every FrameStreamChunk
// payload, authenticated as AAD so it cannot be flipped in flight.
const (
	// chunkEndMsg marks the final chunk of one application message.
	chunkEndMsg = 0x01
	// chunkEndStream marks the sender's half-close: no further chunks
	// follow in this direction.
	chunkEndStream = 0x02
	// chunkStatus marks a chunk whose plaintext is a response envelope
	// carrying the stream's final status rather than application data.
	chunkStatus = 0x04
)

// bulkChunkSize is the chunking granularity of the bulk lane. 64 KiB
// amortizes per-chunk seal and frame overhead to well under 1% while
// keeping per-chunk pool buffers within the pool's size classes.
const bulkChunkSize = 64 << 10

// newTransport builds a transport over conn. dirSend/dirRecv label the key
// derivation directions and must be mirrored on the peer.
func newTransport(conn net.Conn, psk []byte, dirSend, dirRecv string, stats *secure.Stats) (*transport, error) {
	sendSess, err := secure.NewSession(secure.DeriveKey(psk, dirSend), stats)
	if err != nil {
		return nil, fmt.Errorf("stubby: send session: %w", err)
	}
	recvSess, err := secure.NewSession(secure.DeriveKey(psk, dirRecv), stats)
	if err != nil {
		return nil, fmt.Errorf("stubby: recv session: %w", err)
	}
	w := wire.NewWriter(conn)
	// Chunk buffers queued by reference are released once the kernel has
	// consumed them (per the DESIGN.md §11 ownership contract, the writer
	// holds them between append and flush).
	w.SetFlushHook(func(segs [][]byte) {
		for _, s := range segs {
			wire.PutBuf(s)
		}
	})
	return &transport{
		conn:    conn,
		sendKey: sendSess,
		writer:  w,
		recvKey: recvSess,
		reader:  wire.NewReader(conn),
	}, nil
}

// lockSend acquires the send lock for a batching sequence of appendLocked
// calls ending in flushLocked; unlockSend releases it. Under the sanitize
// tag they also track the lock's rank for inversion checking.
func (t *transport) lockSend() {
	t.sendMu.Lock()
	if sanitize.Enabled {
		sanitize.LockAcquired(sanitize.RankTransportSend, "stubby.transport.sendMu")
	}
}

func (t *transport) unlockSend() {
	if sanitize.Enabled {
		sanitize.LockReleased(sanitize.RankTransportSend)
	}
	t.sendMu.Unlock()
}

// appendLocked seals payload directly into the write buffer as one frame,
// without flushing. Caller must hold the send lock.
func (t *transport) appendLocked(frameType byte, streamID uint64, payload []byte) error {
	buf, err := t.writer.BeginFrame(frameType, streamID, len(payload)+secure.Overhead)
	if err != nil {
		return err
	}
	buf = t.sendKey.SealAppend(buf, payload)
	return t.writer.EndFrame(buf)
}

// appendChunkLocked seals one bulk-lane chunk and queues it by reference:
// flags travel in the clear as the first payload byte, authenticated as
// AAD; data is ciphered straight from the caller's buffer into a pooled
// buffer that the writer returns to the pool after its flush. Caller must
// hold the send lock and must not modify data until flushLocked returns.
func (t *transport) appendChunkLocked(streamID uint64, flags byte, data []byte) error {
	buf := wire.GetBuf(1 + len(data) + secure.Overhead)
	buf = append(buf, flags)
	t.aad[0] = flags
	buf = t.sendKey.SealAppendAAD(buf, data, t.aad[:])
	if err := t.writer.AppendFrameVec(wire.FrameStreamChunk, streamID, buf); err != nil {
		wire.PutBuf(buf)
		return err
	}
	return nil
}

// appendChunkedLocked splits data into bulk chunks and queues them all,
// marking the last with endFlags in addition to chunkEndMsg. Caller must
// hold the send lock. An empty data still produces one (empty) chunk so
// the message boundary reaches the peer.
func (t *transport) appendChunkedLocked(streamID uint64, data []byte, endFlags byte) error {
	for off := 0; ; {
		end := off + bulkChunkSize
		var flags byte
		if end >= len(data) {
			end = len(data)
			flags = chunkEndMsg | endFlags
		}
		if err := t.appendChunkLocked(streamID, flags, data[off:end]); err != nil {
			return err
		}
		if end == len(data) {
			return nil
		}
		off = end
	}
}

// startCodec attaches a codec worker pool of the given size (0 leaves
// the transport fully inline). Call before the connection's loops start.
func (t *transport) startCodec(workers int, obs DataPlaneObserver) {
	if workers > 0 {
		t.codec = newCodecPool(workers, t.sendKey, t.recvKey, obs)
	}
}

// stopCodec shuts the worker pool down, waiting for in-flight cycles.
// Nil-safe and idempotent; call after the connection's loops have exited
// (or at least after the conn is closed, so the loops are unwinding).
func (t *transport) stopCodec() {
	if t.codec != nil {
		t.codec.close()
	}
}

// appendSealedLocked harvests seal jobs in submission order and queues
// each sealed chunk by reference — the in-order completion point of the
// pipelined send path. The actual sealing ran (or still runs) on the
// codec workers; harvesting in order under the send lock makes the wire
// byte-identical to the inline path. Every job is always harvested and
// recycled, even after an error or with discard set (the caller's error
// path); undelivered buffers go back to the pool here.
func (t *transport) appendSealedLocked(streamID uint64, jobs []*codecJob, discard bool) error {
	var err error
	for _, j := range jobs {
		<-j.done
		out := j.out
		j.out = nil
		t.codec.putJob(j)
		if discard || err != nil {
			wire.PutBuf(out)
			continue
		}
		if aerr := t.writer.AppendFrameVec(wire.FrameStreamChunk, streamID, out); aerr != nil {
			wire.PutBuf(out)
			err = aerr
		}
	}
	return err
}

// flushLocked writes every appended frame with a single (possibly
// vectored) write. Caller must hold the send lock: sendMu exists to
// serialize frame writes on the shared conn, and holding it across the
// flush is the point.
func (t *transport) flushLocked() error {
	return t.writer.Flush()
}

// send encrypts payload and writes one frame with a single Write. Safe
// for concurrent use.
func (t *transport) send(frameType byte, streamID uint64, payload []byte) error {
	t.lockSend()
	defer t.unlockSend()
	if err := t.appendLocked(frameType, streamID, payload); err != nil {
		return err
	}
	return t.flushLocked()
}

// sendChunks seals data as one stream message (one or more chunk frames,
// the last carrying chunkEndMsg|endFlags) and flushes with one vectored
// write. Safe for concurrent use. With a codec pool attached, large
// messages are sealed concurrently by the workers while this goroutine
// takes the send lock; harvest order preserves chunk order.
func (t *transport) sendChunks(streamID uint64, data []byte, endFlags byte) error {
	if p := t.codec; p != nil && len(data) > codecInlineMax && p.enter() {
		var arr [8]*codecJob
		jobs := p.submitSealChunks(arr[:0], streamID, data, endFlags)
		t.lockSend()
		err := t.appendSealedLocked(streamID, jobs, false)
		if err == nil {
			err = t.flushLocked()
		}
		t.unlockSend()
		p.exit()
		return err
	}
	t.lockSend()
	defer t.unlockSend()
	if err := t.appendChunkedLocked(streamID, data, endFlags); err != nil {
		return err
	}
	return t.flushLocked()
}

// sendHalfClose emits the bare end-of-direction marker (no message).
func (t *transport) sendHalfClose(streamID uint64) error {
	t.lockSend()
	defer t.unlockSend()
	if err := t.appendChunkLocked(streamID, chunkEndStream, nil); err != nil {
		return err
	}
	return t.flushLocked()
}

// sendReset aborts a stream in both directions: the payload is the sealed
// error code followed by the message text.
func (t *transport) sendReset(streamID uint64, st *Status) error {
	buf := wire.GetBuf(len(st.Message) + 16)
	buf = wire.AppendUvarint(buf, uint64(st.Code))
	buf = append(buf, st.Message...)
	err := t.send(wire.FrameReset, streamID, buf)
	wire.PutBuf(buf)
	return err
}

// recvMsg is one decoded inbound frame: the frame metadata plus the
// decrypted payload in a pooled buffer whose ownership transfers to the
// caller (release with wire.PutBuf; see DESIGN.md §11). For chunk frames,
// flags holds the authenticated clear-text flags byte.
type recvMsg struct {
	typ      byte
	streamID uint64
	flags    byte
	//rpclint:owns decrypted payload; the recv caller releases it with
	// wire.PutBuf or hands it onward (DESIGN.md §11).
	plain []byte
}

// recv reads and decrypts the next frame. Only one goroutine may call
// recv.
func (t *transport) recv() (recvMsg, error) {
	t.recvMu.Lock()
	defer t.recvMu.Unlock()
	if sanitize.Enabled {
		sanitize.LockAcquired(sanitize.RankTransportRecv, "stubby.transport.recvMu")
		defer sanitize.LockReleased(sanitize.RankTransportRecv)
	}
	//rpclint:ignore lockheld recvMu serializes reads of the shared frame reader; holding it across the read is the point
	f, err := t.reader.ReadFrame()
	if err != nil {
		return recvMsg{}, err
	}
	m := recvMsg{typ: f.Type, streamID: f.StreamID}
	sealed := f.Payload
	var aad []byte
	if f.Type == wire.FrameStreamChunk {
		if len(sealed) < 1 {
			return recvMsg{}, secure.ErrDecrypt
		}
		m.flags = sealed[0]
		aad, sealed = f.Payload[:1], sealed[1:]
	}
	buf := wire.GetBuf(len(sealed))
	plain, err := t.recvKey.OpenAppendAAD(buf, sealed, aad)
	if err != nil {
		wire.PutBuf(buf)
		return recvMsg{}, err
	}
	m.plain = plain
	return m, nil
}

// recvItem is one inbound frame moving through the pipelined open path:
// either already decrypted (job == nil, msg.plain set) or pending on the
// codec workers (msg carries the frame metadata; harvest the plaintext
// with finishOpen).
type recvItem struct {
	msg recvMsg
	job *codecJob
}

// recvPipelineDepth bounds how far the receive pump reads ahead of the
// dispatching loop, and with it the sealed-copy memory pinned in flight.
const recvPipelineDepth = 16

// recvPump reads frames and feeds items until the connection fails,
// returning the terminal error: small frames are opened inline, large
// ones are copied out and submitted to the codec pool so decryption
// overlaps the read-ahead. Exactly one goroutine runs the pump, and the
// consumer must harvest every item it receives — even when tearing down —
// so job buffers stay accounted.
func (t *transport) recvPump(items chan<- recvItem) error {
	p := t.codec
	if !p.enter() {
		return ErrUnavailable // pool already closing: connection is going down
	}
	defer p.exit()
	for {
		m, j, err := t.recvStep(p)
		if err != nil {
			return err
		}
		items <- recvItem{msg: m, job: j}
	}
}

// recvStep reads and routes one frame under recvMu for the pump.
func (t *transport) recvStep(p *codecPool) (recvMsg, *codecJob, error) {
	t.recvMu.Lock()
	defer t.recvMu.Unlock()
	if sanitize.Enabled {
		sanitize.LockAcquired(sanitize.RankTransportRecv, "stubby.transport.recvMu")
		defer sanitize.LockReleased(sanitize.RankTransportRecv)
	}
	//rpclint:ignore lockheld recvMu serializes reads of the shared frame reader; holding it across the read is the point
	f, err := t.reader.ReadFrame()
	if err != nil {
		return recvMsg{}, nil, err
	}
	m := recvMsg{typ: f.Type, streamID: f.StreamID}
	sealed := f.Payload
	var aad []byte
	if f.Type == wire.FrameStreamChunk {
		if len(sealed) < 1 {
			return recvMsg{}, nil, secure.ErrDecrypt
		}
		m.flags = sealed[0]
		aad, sealed = f.Payload[:1], sealed[1:]
	}
	if len(sealed) > codecInlineMax {
		// ReadFrame's payload is only valid until the next read: copy the
		// sealed bytes into a pooled buffer the job owns, and let a codec
		// worker decrypt while this loop reads ahead.
		j := p.getJob()
		j.op = codecOpen
		j.typ = m.typ
		j.flags = m.flags
		j.in = append(wire.GetBuf(len(sealed)), sealed...)
		p.submit(j)
		return m, j, nil
	}
	buf := wire.GetBuf(len(sealed))
	plain, err := t.recvKey.OpenAppendAAD(buf, sealed, aad)
	if err != nil {
		wire.PutBuf(buf)
		return recvMsg{}, nil, err
	}
	m.plain = plain
	return m, nil, nil
}

// finishOpen harvests an open job: the decrypted payload (ownership
// transfers to the caller) or the decrypt error.
func (t *transport) finishOpen(j *codecJob) ([]byte, error) {
	<-j.done
	out, err := j.out, j.err
	j.out = nil
	t.codec.putJob(j)
	return out, err
}

// close tears down the underlying connection.
func (t *transport) close() error { return t.conn.Close() }
