package stubby

import (
	"errors"
	"fmt"
	"time"

	"rpcscale/internal/codec"
	"rpcscale/internal/trace"
	"rpcscale/internal/wire"
)

// Wire message descriptors for the RPC protocol itself. These are the
// stack's own "protos": the request and response envelopes that carry
// user payloads plus tracing and instrumentation metadata.

// Request envelope field numbers.
const (
	reqMethod     = 1
	reqTraceID    = 2
	reqSpanID     = 3
	reqParentSpan = 4
	reqDeadlineNs = 5
	reqPayload    = 6
	reqCompressed = 7
	reqHedged     = 8
	reqCallSeq    = 9
	reqAttempt    = 10
	reqWindow     = 11
	reqBulkSize   = 12
)

// Response envelope field numbers.
const (
	respCode        = 1
	respMessage     = 2
	respPayload     = 3
	respCompressed  = 4
	respRecvQueueNs = 5
	respAppNs       = 6
	respSendQueueNs = 7
	respProcNs      = 8
	respElapsedNs   = 9
	respMore        = 10
	respBulkSize    = 11
	respLoad        = 12
)

var requestDesc = codec.MustDescriptor("stubby.Request",
	codec.Field{Number: reqMethod, Name: "method", Type: codec.TypeString},
	codec.Field{Number: reqTraceID, Name: "trace_id", Type: codec.TypeUint64},
	codec.Field{Number: reqSpanID, Name: "span_id", Type: codec.TypeUint64},
	codec.Field{Number: reqParentSpan, Name: "parent_span_id", Type: codec.TypeUint64},
	codec.Field{Number: reqDeadlineNs, Name: "deadline_ns", Type: codec.TypeUint64},
	codec.Field{Number: reqPayload, Name: "payload", Type: codec.TypeBytes},
	codec.Field{Number: reqCompressed, Name: "compressed", Type: codec.TypeBool},
	codec.Field{Number: reqHedged, Name: "hedged", Type: codec.TypeBool},
	codec.Field{Number: reqCallSeq, Name: "call_seq", Type: codec.TypeUint64},
	codec.Field{Number: reqAttempt, Name: "attempt", Type: codec.TypeUint64},
	codec.Field{Number: reqWindow, Name: "stream_window", Type: codec.TypeUint64},
	codec.Field{Number: reqBulkSize, Name: "bulk_size", Type: codec.TypeUint64},
)

var responseDesc = codec.MustDescriptor("stubby.Response",
	codec.Field{Number: respCode, Name: "code", Type: codec.TypeUint64},
	codec.Field{Number: respMessage, Name: "message", Type: codec.TypeString},
	codec.Field{Number: respPayload, Name: "payload", Type: codec.TypeBytes},
	codec.Field{Number: respCompressed, Name: "compressed", Type: codec.TypeBool},
	codec.Field{Number: respRecvQueueNs, Name: "recv_queue_ns", Type: codec.TypeUint64},
	codec.Field{Number: respAppNs, Name: "app_ns", Type: codec.TypeUint64},
	codec.Field{Number: respSendQueueNs, Name: "send_queue_ns", Type: codec.TypeUint64},
	codec.Field{Number: respProcNs, Name: "resp_proc_ns", Type: codec.TypeUint64},
	codec.Field{Number: respElapsedNs, Name: "server_elapsed_ns", Type: codec.TypeUint64},
	codec.Field{Number: respMore, Name: "more", Type: codec.TypeBool},
	codec.Field{Number: respBulkSize, Name: "bulk_size", Type: codec.TypeUint64},
	codec.Field{Number: respLoad, Name: "load", Type: codec.TypeUint64},
)

// request is the decoded request envelope.
type request struct {
	Method     string
	TraceID    trace.TraceID
	SpanID     trace.SpanID
	ParentSpan trace.SpanID
	Deadline   time.Duration // 0 = none; nanoseconds relative to epoch
	Payload    []byte
	Compressed bool
	Hedged     bool
	// CallSeq carries the caller's logical call ID plus one (0 = no ID
	// assigned); Attempt is the retry attempt number with the hedge bit.
	// Together they key the server-side fault plane's deterministic
	// decisions and let servers account retry amplification.
	CallSeq uint64
	Attempt uint32
	// Window, on a stream-open envelope, is the initial per-direction
	// credit window in bytes (see DESIGN.md §12).
	Window uint32
	// BulkSize, on a bulk-request envelope, is the total payload size that
	// follows as stream chunks; the envelope itself carries no payload.
	BulkSize uint64
}

// marshalReference encodes r through the generic codec layer. It is the
// specification of the request wire format; appendRequest is the
// hand-rolled production encoder pinned byte-identical to it by
// TestEnvelopeFastPathParity.
func (r *request) marshalReference() ([]byte, error) {
	m := codec.NewMessage(requestDesc).
		Set(reqMethod, r.Method).
		Set(reqTraceID, uint64(r.TraceID)).
		Set(reqSpanID, uint64(r.SpanID)).
		Set(reqPayload, r.Payload)
	if r.ParentSpan != 0 {
		m.Set(reqParentSpan, uint64(r.ParentSpan))
	}
	if r.Deadline > 0 {
		m.Set(reqDeadlineNs, uint64(r.Deadline))
	}
	if r.Compressed {
		m.Set(reqCompressed, true)
	}
	if r.Hedged {
		m.Set(reqHedged, true)
	}
	if r.CallSeq != 0 {
		m.Set(reqCallSeq, r.CallSeq)
	}
	if r.Attempt != 0 {
		m.Set(reqAttempt, uint64(r.Attempt))
	}
	if r.Window != 0 {
		m.Set(reqWindow, uint64(r.Window))
	}
	if r.BulkSize != 0 {
		m.Set(reqBulkSize, r.BulkSize)
	}
	return codec.Marshal(m)
}

// Append-style field encoders: the codec's wire format (protobuf-style
// key = number<<3 | wiretype) emitted straight into a caller-provided
// buffer, playing the role generated code plays for a .proto file.

func appendUintField(dst []byte, num, v uint64) []byte {
	dst = wire.AppendUvarint(dst, num<<3) // wiretype 0: varint
	return wire.AppendUvarint(dst, v)
}

func appendBoolField(dst []byte, num uint64, v bool) []byte {
	dst = wire.AppendUvarint(dst, num<<3)
	b := uint64(0)
	if v {
		b = 1
	}
	return wire.AppendUvarint(dst, b)
}

func appendStringField(dst []byte, num uint64, s string) []byte {
	dst = wire.AppendUvarint(dst, num<<3|2) // wiretype 2: length-delimited
	dst = wire.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendBytesField(dst []byte, num uint64, b []byte) []byte {
	dst = wire.AppendUvarint(dst, num<<3|2)
	dst = wire.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// envelopeOverhead bounds the encoded size of every envelope field except
// the method string and the payload, so send paths can size one pooled
// buffer for the whole marshalled message.
const envelopeOverhead = 128

// appendRequest encodes r onto dst — byte-identical to marshalReference —
// and returns the extended slice. It allocates only if dst lacks
// capacity.
func appendRequest(dst []byte, r *request) []byte {
	dst = appendStringField(dst, reqMethod, r.Method)
	dst = appendUintField(dst, reqTraceID, uint64(r.TraceID))
	dst = appendUintField(dst, reqSpanID, uint64(r.SpanID))
	if r.ParentSpan != 0 {
		dst = appendUintField(dst, reqParentSpan, uint64(r.ParentSpan))
	}
	if r.Deadline > 0 {
		dst = appendUintField(dst, reqDeadlineNs, uint64(r.Deadline))
	}
	dst = appendBytesField(dst, reqPayload, r.Payload)
	if r.Compressed {
		dst = appendBoolField(dst, reqCompressed, true)
	}
	if r.Hedged {
		dst = appendBoolField(dst, reqHedged, true)
	}
	if r.CallSeq != 0 {
		dst = appendUintField(dst, reqCallSeq, r.CallSeq)
	}
	if r.Attempt != 0 {
		dst = appendUintField(dst, reqAttempt, uint64(r.Attempt))
	}
	if r.Window != 0 {
		dst = appendUintField(dst, reqWindow, uint64(r.Window))
	}
	if r.BulkSize != 0 {
		dst = appendUintField(dst, reqBulkSize, r.BulkSize)
	}
	return dst
}

var errTruncatedEnvelope = errors.New("stubby: truncated envelope")

// parseRequestInto decodes buf into r without going through the dynamic
// codec message. r.Payload aliases buf: the caller owns buf and must keep
// it alive until the payload is no longer referenced. intern, when
// non-nil, maps the method-name bytes to a string (the server passes its
// registered-name interner so steady-state requests allocate no method
// string); nil falls back to a plain string copy. Unknown fields are
// skipped, mirroring codec.Unmarshal.
func parseRequestInto(r *request, buf []byte, intern func([]byte) string) error {
	*r = request{}
	for len(buf) > 0 {
		key, n := wire.Uvarint(buf)
		if n <= 0 {
			return errTruncatedEnvelope
		}
		buf = buf[n:]
		num, wt := key>>3, key&0x7
		switch wt {
		case 0: // varint
			x, n := wire.Uvarint(buf)
			if n <= 0 {
				return errTruncatedEnvelope
			}
			buf = buf[n:]
			switch num {
			case reqTraceID:
				r.TraceID = trace.TraceID(x)
			case reqSpanID:
				r.SpanID = trace.SpanID(x)
			case reqParentSpan:
				r.ParentSpan = trace.SpanID(x)
			case reqDeadlineNs:
				r.Deadline = time.Duration(x)
			case reqCompressed:
				r.Compressed = x != 0
			case reqHedged:
				r.Hedged = x != 0
			case reqCallSeq:
				r.CallSeq = x
			case reqAttempt:
				r.Attempt = uint32(x)
			case reqWindow:
				r.Window = uint32(x)
			case reqBulkSize:
				r.BulkSize = x
			}
		case 2: // length-delimited
			length, n := wire.Uvarint(buf)
			if n <= 0 || uint64(len(buf)-n) < length {
				return errTruncatedEnvelope
			}
			field := buf[n : n+int(length)]
			buf = buf[n+int(length):]
			switch num {
			case reqMethod:
				if intern != nil {
					r.Method = intern(field)
				} else {
					r.Method = string(field)
				}
			case reqPayload:
				r.Payload = field
			}
		case 1: // 64-bit fixed (no such request field; skip unknowns)
			if len(buf) < 8 {
				return errTruncatedEnvelope
			}
			buf = buf[8:]
		default:
			return fmt.Errorf("stubby: request envelope: unknown wire type %d", wt)
		}
	}
	return nil
}

// parseRequest decodes buf into a fresh request. The payload aliases buf.
func parseRequest(buf []byte) (*request, error) {
	r := new(request)
	if err := parseRequestInto(r, buf, nil); err != nil {
		return nil, fmt.Errorf("stubby: parsing request: %w", err)
	}
	return r, nil
}

// serverTimings carries the server-measured latency components back to the
// client inside the response envelope, so the client can assemble the full
// nine-component breakdown.
type serverTimings struct {
	RecvQueue time.Duration // ServerRecvQueue (incl. decode)
	App       time.Duration // ServerApp
	SendQueue time.Duration // ServerSendQueue
	RespProc  time.Duration // RespProcStack measured server-side
	Elapsed   time.Duration // total server residence (read-done to write-done)
}

// response is the decoded response envelope.
type response struct {
	Code       trace.ErrorCode
	Message    string
	Payload    []byte
	Compressed bool
	// More marks an intermediate item of a server stream; the final
	// message of a stream (and every unary response) has More = false
	// and carries the server timings.
	More    bool
	Timings serverTimings
	// BulkSize, on a bulk-response envelope, is the total payload size
	// that follows as stream chunks (the envelope carries no payload).
	BulkSize uint64
	// Load is the server's instantaneous load report (recv-queue depth
	// plus in-flight handlers) piggybacked on every response, feeding
	// client-side load-aware balancing (DESIGN.md §13).
	Load uint32
}

// marshalReference encodes r through the generic codec layer — the
// specification appendResponse is pinned byte-identical to.
func (r *response) marshalReference() ([]byte, error) {
	m := codec.NewMessage(responseDesc).
		Set(respCode, uint64(r.Code)).
		Set(respPayload, r.Payload)
	if r.Message != "" {
		m.Set(respMessage, r.Message)
	}
	if r.Compressed {
		m.Set(respCompressed, true)
	}
	if r.More {
		m.Set(respMore, true)
	}
	m.Set(respRecvQueueNs, uint64(r.Timings.RecvQueue)).
		Set(respAppNs, uint64(r.Timings.App)).
		Set(respSendQueueNs, uint64(r.Timings.SendQueue)).
		Set(respProcNs, uint64(r.Timings.RespProc)).
		Set(respElapsedNs, uint64(r.Timings.Elapsed))
	if r.BulkSize != 0 {
		m.Set(respBulkSize, r.BulkSize)
	}
	if r.Load != 0 {
		m.Set(respLoad, uint64(r.Load))
	}
	return codec.Marshal(m)
}

// appendResponse encodes r onto dst — byte-identical to marshalReference
// — and returns the extended slice.
func appendResponse(dst []byte, r *response) []byte {
	dst = appendUintField(dst, respCode, uint64(r.Code))
	if r.Message != "" {
		dst = appendStringField(dst, respMessage, r.Message)
	}
	dst = appendBytesField(dst, respPayload, r.Payload)
	if r.Compressed {
		dst = appendBoolField(dst, respCompressed, true)
	}
	dst = appendUintField(dst, respRecvQueueNs, uint64(r.Timings.RecvQueue))
	dst = appendUintField(dst, respAppNs, uint64(r.Timings.App))
	dst = appendUintField(dst, respSendQueueNs, uint64(r.Timings.SendQueue))
	dst = appendUintField(dst, respProcNs, uint64(r.Timings.RespProc))
	dst = appendUintField(dst, respElapsedNs, uint64(r.Timings.Elapsed))
	if r.More {
		dst = appendBoolField(dst, respMore, true)
	}
	if r.BulkSize != 0 {
		dst = appendUintField(dst, respBulkSize, r.BulkSize)
	}
	if r.Load != 0 {
		dst = appendUintField(dst, respLoad, uint64(r.Load))
	}
	return dst
}

// parseResponseInto decodes buf into r. r.Payload and r.Message's backing
// follow the same aliasing rule as parseRequestInto: the payload aliases
// buf, so the caller must keep buf alive until it is copied out.
func parseResponseInto(r *response, buf []byte) error {
	*r = response{}
	for len(buf) > 0 {
		key, n := wire.Uvarint(buf)
		if n <= 0 {
			return errTruncatedEnvelope
		}
		buf = buf[n:]
		num, wt := key>>3, key&0x7
		switch wt {
		case 0: // varint
			x, n := wire.Uvarint(buf)
			if n <= 0 {
				return errTruncatedEnvelope
			}
			buf = buf[n:]
			switch num {
			case respCode:
				r.Code = trace.ErrorCode(x)
			case respCompressed:
				r.Compressed = x != 0
			case respMore:
				r.More = x != 0
			case respRecvQueueNs:
				r.Timings.RecvQueue = time.Duration(x)
			case respAppNs:
				r.Timings.App = time.Duration(x)
			case respSendQueueNs:
				r.Timings.SendQueue = time.Duration(x)
			case respProcNs:
				r.Timings.RespProc = time.Duration(x)
			case respElapsedNs:
				r.Timings.Elapsed = time.Duration(x)
			case respBulkSize:
				r.BulkSize = x
			case respLoad:
				r.Load = uint32(x)
			}
		case 2: // length-delimited
			length, n := wire.Uvarint(buf)
			if n <= 0 || uint64(len(buf)-n) < length {
				return errTruncatedEnvelope
			}
			field := buf[n : n+int(length)]
			buf = buf[n+int(length):]
			switch num {
			case respMessage:
				r.Message = string(field)
			case respPayload:
				r.Payload = field
			}
		case 1: // 64-bit fixed (no such response field; skip unknowns)
			if len(buf) < 8 {
				return errTruncatedEnvelope
			}
			buf = buf[8:]
		default:
			return fmt.Errorf("stubby: response envelope: unknown wire type %d", wt)
		}
	}
	return nil
}
