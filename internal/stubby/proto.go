package stubby

import (
	"fmt"
	"time"

	"rpcscale/internal/codec"
	"rpcscale/internal/trace"
)

// Wire message descriptors for the RPC protocol itself. These are the
// stack's own "protos": the request and response envelopes that carry
// user payloads plus tracing and instrumentation metadata.

// Request envelope field numbers.
const (
	reqMethod     = 1
	reqTraceID    = 2
	reqSpanID     = 3
	reqParentSpan = 4
	reqDeadlineNs = 5
	reqPayload    = 6
	reqCompressed = 7
	reqHedged     = 8
	reqCallSeq    = 9
	reqAttempt    = 10
)

// Response envelope field numbers.
const (
	respCode        = 1
	respMessage     = 2
	respPayload     = 3
	respCompressed  = 4
	respRecvQueueNs = 5
	respAppNs       = 6
	respSendQueueNs = 7
	respProcNs      = 8
	respElapsedNs   = 9
	respMore        = 10
)

var requestDesc = codec.MustDescriptor("stubby.Request",
	codec.Field{Number: reqMethod, Name: "method", Type: codec.TypeString},
	codec.Field{Number: reqTraceID, Name: "trace_id", Type: codec.TypeUint64},
	codec.Field{Number: reqSpanID, Name: "span_id", Type: codec.TypeUint64},
	codec.Field{Number: reqParentSpan, Name: "parent_span_id", Type: codec.TypeUint64},
	codec.Field{Number: reqDeadlineNs, Name: "deadline_ns", Type: codec.TypeUint64},
	codec.Field{Number: reqPayload, Name: "payload", Type: codec.TypeBytes},
	codec.Field{Number: reqCompressed, Name: "compressed", Type: codec.TypeBool},
	codec.Field{Number: reqHedged, Name: "hedged", Type: codec.TypeBool},
	codec.Field{Number: reqCallSeq, Name: "call_seq", Type: codec.TypeUint64},
	codec.Field{Number: reqAttempt, Name: "attempt", Type: codec.TypeUint64},
)

var responseDesc = codec.MustDescriptor("stubby.Response",
	codec.Field{Number: respCode, Name: "code", Type: codec.TypeUint64},
	codec.Field{Number: respMessage, Name: "message", Type: codec.TypeString},
	codec.Field{Number: respPayload, Name: "payload", Type: codec.TypeBytes},
	codec.Field{Number: respCompressed, Name: "compressed", Type: codec.TypeBool},
	codec.Field{Number: respRecvQueueNs, Name: "recv_queue_ns", Type: codec.TypeUint64},
	codec.Field{Number: respAppNs, Name: "app_ns", Type: codec.TypeUint64},
	codec.Field{Number: respSendQueueNs, Name: "send_queue_ns", Type: codec.TypeUint64},
	codec.Field{Number: respProcNs, Name: "resp_proc_ns", Type: codec.TypeUint64},
	codec.Field{Number: respElapsedNs, Name: "server_elapsed_ns", Type: codec.TypeUint64},
	codec.Field{Number: respMore, Name: "more", Type: codec.TypeBool},
)

// request is the decoded request envelope.
type request struct {
	Method     string
	TraceID    trace.TraceID
	SpanID     trace.SpanID
	ParentSpan trace.SpanID
	Deadline   time.Duration // 0 = none; nanoseconds relative to epoch
	Payload    []byte
	Compressed bool
	Hedged     bool
	// CallSeq carries the caller's logical call ID plus one (0 = no ID
	// assigned); Attempt is the retry attempt number with the hedge bit.
	// Together they key the server-side fault plane's deterministic
	// decisions and let servers account retry amplification.
	CallSeq uint64
	Attempt uint32
}

func (r *request) marshal() ([]byte, error) {
	m := codec.NewMessage(requestDesc).
		Set(reqMethod, r.Method).
		Set(reqTraceID, uint64(r.TraceID)).
		Set(reqSpanID, uint64(r.SpanID)).
		Set(reqPayload, r.Payload)
	if r.ParentSpan != 0 {
		m.Set(reqParentSpan, uint64(r.ParentSpan))
	}
	if r.Deadline > 0 {
		m.Set(reqDeadlineNs, uint64(r.Deadline))
	}
	if r.Compressed {
		m.Set(reqCompressed, true)
	}
	if r.Hedged {
		m.Set(reqHedged, true)
	}
	if r.CallSeq != 0 {
		m.Set(reqCallSeq, r.CallSeq)
	}
	if r.Attempt != 0 {
		m.Set(reqAttempt, uint64(r.Attempt))
	}
	return codec.Marshal(m)
}

func parseRequest(buf []byte) (*request, error) {
	m, err := codec.Unmarshal(requestDesc, buf)
	if err != nil {
		return nil, fmt.Errorf("stubby: parsing request: %w", err)
	}
	return &request{
		Method:     m.GetString(reqMethod),
		TraceID:    trace.TraceID(m.GetUint64(reqTraceID)),
		SpanID:     trace.SpanID(m.GetUint64(reqSpanID)),
		ParentSpan: trace.SpanID(m.GetUint64(reqParentSpan)),
		Deadline:   time.Duration(m.GetUint64(reqDeadlineNs)),
		Payload:    m.GetBytes(reqPayload),
		Compressed: m.GetBool(reqCompressed),
		Hedged:     m.GetBool(reqHedged),
		CallSeq:    m.GetUint64(reqCallSeq),
		Attempt:    uint32(m.GetUint64(reqAttempt)),
	}, nil
}

// serverTimings carries the server-measured latency components back to the
// client inside the response envelope, so the client can assemble the full
// nine-component breakdown.
type serverTimings struct {
	RecvQueue time.Duration // ServerRecvQueue (incl. decode)
	App       time.Duration // ServerApp
	SendQueue time.Duration // ServerSendQueue
	RespProc  time.Duration // RespProcStack measured server-side
	Elapsed   time.Duration // total server residence (read-done to write-done)
}

// response is the decoded response envelope.
type response struct {
	Code       trace.ErrorCode
	Message    string
	Payload    []byte
	Compressed bool
	// More marks an intermediate item of a server stream; the final
	// message of a stream (and every unary response) has More = false
	// and carries the server timings.
	More    bool
	Timings serverTimings
}

func (r *response) marshal() ([]byte, error) {
	m := codec.NewMessage(responseDesc).
		Set(respCode, uint64(r.Code)).
		Set(respPayload, r.Payload)
	if r.Message != "" {
		m.Set(respMessage, r.Message)
	}
	if r.Compressed {
		m.Set(respCompressed, true)
	}
	if r.More {
		m.Set(respMore, true)
	}
	m.Set(respRecvQueueNs, uint64(r.Timings.RecvQueue)).
		Set(respAppNs, uint64(r.Timings.App)).
		Set(respSendQueueNs, uint64(r.Timings.SendQueue)).
		Set(respProcNs, uint64(r.Timings.RespProc)).
		Set(respElapsedNs, uint64(r.Timings.Elapsed))
	return codec.Marshal(m)
}

func parseResponse(buf []byte) (*response, error) {
	m, err := codec.Unmarshal(responseDesc, buf)
	if err != nil {
		return nil, fmt.Errorf("stubby: parsing response: %w", err)
	}
	return &response{
		Code:       trace.ErrorCode(m.GetUint64(respCode)),
		Message:    m.GetString(respMessage),
		Payload:    m.GetBytes(respPayload),
		Compressed: m.GetBool(respCompressed),
		More:       m.GetBool(respMore),
		Timings: serverTimings{
			RecvQueue: time.Duration(m.GetUint64(respRecvQueueNs)),
			App:       time.Duration(m.GetUint64(respAppNs)),
			SendQueue: time.Duration(m.GetUint64(respSendQueueNs)),
			RespProc:  time.Duration(m.GetUint64(respProcNs)),
			Elapsed:   time.Duration(m.GetUint64(respElapsedNs)),
		},
	}, nil
}
