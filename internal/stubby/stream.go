package stubby

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"rpcscale/internal/secure"
	"rpcscale/internal/trace"
	"rpcscale/internal/wire"
)

// Server-streaming RPCs: one request, a sequence of response messages
// terminated by a final status. The paper's tracing methodology excludes
// streaming RPCs from its sampling ("the sampling omits some RPC classes,
// such as streaming RPCs that are used for some bulk-data transfers",
// §2.1); this implementation mirrors that — streams do not emit trace
// spans — while giving the stack the bulk-transfer class those services
// actually use.

// StreamHandler serves a server-streaming method: it sends zero or more
// messages via send and returns the final status. send blocks when the
// connection's send queue is full and fails once the client cancels.
type StreamHandler func(ctx context.Context, payload []byte, send func([]byte) error) error

// RegisterStream installs a server-streaming handler. Unary and streaming
// methods share one namespace.
func (s *Server) RegisterStream(method string, h StreamHandler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.handlers[method]; dup {
		panic(fmt.Sprintf("stubby: duplicate handler for %q", method))
	}
	if _, dup := s.streamHandlers[method]; dup {
		panic(fmt.Sprintf("stubby: duplicate stream handler for %q", method))
	}
	if s.streamHandlers == nil {
		s.streamHandlers = make(map[string]StreamHandler)
	}
	s.streamHandlers[method] = h
	s.methodNames[method] = method
}

// handleStream runs a streaming call on a worker.
func (s *Server) handleStream(call *serverCall, req *request, h StreamHandler, recvQueue time.Duration) {
	ctx := ContextWithTrace(context.Background(), TraceContext{
		TraceID: req.TraceID,
		SpanID:  req.SpanID,
	})
	var cancel context.CancelFunc
	if req.Deadline > 0 {
		ctx, cancel = context.WithTimeout(ctx, req.Deadline)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	call.conn.storeCancel(call.streamID, cancel)
	defer func() {
		call.conn.deleteCancel(call.streamID)
		cancel()
	}()

	appStart := time.Now()
	send := func(item []byte) error {
		if err := ctx.Err(); err != nil {
			return ctxErrToStatus(err)
		}
		resp := response{Code: trace.OK, Payload: item, More: true}
		buf := appendResponse(wire.GetBuf(len(item)+envelopeOverhead), &resp)
		if len(buf)+secure.Overhead > wire.MaxFrameSize {
			wire.PutBuf(buf)
			return Errorf(trace.InvalidArgument, "stream item exceeds max frame size")
		}
		select {
		case call.conn.sendQ <- &serverResponse{streamID: call.streamID, raw: buf}:
			// buf ownership moves to the write loop, which releases it
			// after sealing the frame.
			return nil
		case <-call.conn.closed:
			wire.PutBuf(buf)
			return ErrUnavailable
		case <-ctx.Done():
			wire.PutBuf(buf)
			return ctxErrToStatus(ctx.Err())
		}
	}

	herr := h(ctx, req.Payload, send)
	// The handler is done with the request payload; the pooled envelope
	// backing it can be recycled before the final status is queued.
	wire.PutBuf(call.raw)
	call.raw = nil
	if herr == nil && ctx.Err() != nil {
		herr = ctxErrToStatus(ctx.Err())
	}
	appDone := time.Now()
	st := StatusFromError(herr)
	sr := &serverResponse{
		streamID:  call.streamID,
		appDone:   appDone,
		readDone:  call.readDone,
		recvQueue: recvQueue,
		app:       appDone.Sub(appStart),
	}
	sr.resp.Code = st.Code
	if st.Code != trace.OK {
		sr.resp.Message = st.Message
	}
	select {
	case call.conn.sendQ <- sr:
	case <-call.conn.closed:
	}
}

// ServerStream is the client's view of a server-streaming call.
type ServerStream struct {
	c        *Channel
	streamID uint64

	items  chan *response // delivered by the channel's read loop
	doneCh chan struct{}  // closed on failure, Close, or final status
	once   sync.Once

	mu     sync.Mutex
	err    error // terminal error; nil + closed doneCh = clean EOF
	cancel func()
}

// CallStream starts a server-streaming RPC. Read messages with Recv until
// io.EOF (clean end) or an error; call Close to abandon early.
func (c *Channel) CallStream(ctx context.Context, method string, payload []byte) (*ServerStream, error) {
	parent, ok := TraceFromContext(ctx)
	tc := TraceContext{SpanID: nextSpanID()}
	if ok {
		tc.TraceID = parent.TraceID
	} else {
		tc.TraceID = nextTraceID()
	}
	deadline := c.opts.DefaultDeadline
	if dl, has := ctx.Deadline(); has {
		deadline = time.Until(dl)
	}
	if deadline <= 0 {
		return nil, ErrDeadlineExceeded
	}
	req := &request{
		Method:   method,
		TraceID:  tc.TraceID,
		SpanID:   tc.SpanID,
		Deadline: deadline,
		Payload:  payload,
	}
	buf := appendRequest(wire.GetBuf(len(payload)+len(method)+envelopeOverhead), req)
	if len(buf)+secure.Overhead > wire.MaxFrameSize {
		wire.PutBuf(buf)
		return nil, Errorf(trace.InvalidArgument, "request exceeds max frame size")
	}

	streamID := c.nextStream.Add(1)
	st := &ServerStream{
		c:        c,
		streamID: streamID,
		items:    make(chan *response, 16),
		doneCh:   make(chan struct{}),
	}
	streamCtx, cancel := context.WithCancel(ctx)
	st.cancel = cancel

	c.mu.Lock()
	select {
	case <-c.closed:
		c.mu.Unlock()
		cancel()
		return nil, ErrUnavailable
	default:
	}
	if c.streams == nil {
		c.streams = make(map[uint64]*ServerStream)
	}
	c.streams[streamID] = st
	c.mu.Unlock()

	// Streams bypass the unary send queue: the request goes out
	// immediately (stream setup is not part of the unary queue study).
	err := c.tr.send(wire.FrameRequest, streamID, buf)
	wire.PutBuf(buf)
	if err != nil {
		c.dropStream(streamID)
		cancel()
		return nil, ErrUnavailable
	}

	// Relay caller cancellation to the server.
	go func() {
		select {
		case <-streamCtx.Done():
			select {
			case <-st.doneCh: // already finished; nothing to cancel
			default:
				_ = c.tr.send(wire.FrameCancel, streamID, nil)
			}
		case <-st.doneCh:
		}
	}()
	return st, nil
}

// deliver routes one response frame into the stream (read loop only).
// A stream that is done discards late frames.
func (st *ServerStream) deliver(resp *response) {
	select {
	case st.items <- resp:
	case <-st.doneCh:
	}
}

// fail terminates the stream; nil err means clean EOF. It reports
// whether this call was the one that terminated it.
func (st *ServerStream) fail(err error) bool {
	st.mu.Lock()
	if st.err == nil {
		st.err = err
	}
	st.mu.Unlock()
	first := false
	st.once.Do(func() {
		close(st.doneCh)
		first = true
	})
	return first
}

// Recv returns the next message. It returns io.EOF after the final status
// of a clean stream, or the terminal error otherwise. Buffered messages
// are drained before the terminal state is reported.
func (st *ServerStream) Recv() ([]byte, error) {
	select {
	case resp := <-st.items:
		return st.consume(resp)
	default:
	}
	select {
	case resp := <-st.items:
		return st.consume(resp)
	case <-st.doneCh:
		return nil, st.terminal()
	}
}

func (st *ServerStream) terminal() error {
	st.mu.Lock()
	err := st.err
	st.mu.Unlock()
	if err == nil {
		return io.EOF
	}
	return err
}

func (st *ServerStream) consume(resp *response) ([]byte, error) {
	if resp.More {
		out := resp.Payload
		if resp.Compressed {
			var derr error
			out, derr = st.c.comp.Decompress(out)
			if derr != nil {
				st.Close()
				return nil, Errorf(trace.Internal, "decompress: %v", derr)
			}
		}
		return out, nil
	}
	// Final status message.
	st.c.dropStream(st.streamID)
	var err error
	if resp.Code != trace.OK {
		err = &Status{Code: resp.Code, Message: resp.Message}
	}
	st.fail(err)
	return nil, st.terminal()
}

// Close abandons the stream: the server's handler context is cancelled
// and further Recv calls return Cancelled (or the clean terminal state if
// the stream had already finished).
func (st *ServerStream) Close() {
	st.c.dropStream(st.streamID)
	if st.fail(ErrCancelled) {
		// We terminated a live stream: tell the server to stop.
		_ = st.c.tr.send(wire.FrameCancel, st.streamID, nil)
	}
	if st.cancel != nil {
		st.cancel()
	}
}

// dropStream unregisters a stream ID.
func (c *Channel) dropStream(streamID uint64) {
	c.mu.Lock()
	delete(c.streams, streamID)
	c.mu.Unlock()
}

// lookupStream finds a live stream.
func (c *Channel) lookupStream(streamID uint64) *ServerStream {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.streams[streamID]
}
