package stubby

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"rpcscale/internal/sanitize"
	"rpcscale/internal/trace"
	"rpcscale/internal/wire"
)

// Bidirectional streaming RPCs over the bulk lane: one stream-open
// envelope, then chunked messages in both directions under per-stream
// credit windows, terminated by a final status chunk from the server (or
// a reset from either side). The paper's tracing methodology excludes
// streaming RPCs from its sampling ("the sampling omits some RPC classes,
// such as streaming RPCs that are used for some bulk-data transfers",
// §2.1); this implementation mirrors that — streams do not emit trace
// spans — while giving the stack the bulk-transfer class those services
// actually use.

// BidiHandler serves a bidirectional streaming method: it exchanges
// messages on stream and returns the final status. The stream's Recv
// returns io.EOF once the client half-closes; Send fails once the client
// resets or the connection dies.
type BidiHandler func(ctx context.Context, stream *Stream) error

// Stream is one end of a bidirectional message stream multiplexed over a
// connection. Send and CloseSend may run concurrently with Recv, but each
// of the two directions expects a single goroutine.
//
// Recv returns a pooled buffer that stays valid until the next Recv or
// Close — the zero-copy window of the extended buffer-ownership contract
// (DESIGN.md §12); callers that retain a message must copy it.
type Stream struct {
	tr       *transport
	streamID uint64
	maxWin   int64

	c  *Channel    // client end; nil on the server
	sc *serverConn // server end; nil on the client

	ctx    context.Context
	cancel context.CancelFunc

	// sendWin is the credit this end may spend; the peer grants it back
	// as its application consumes messages.
	sendWin *creditWindow

	sendMu     sync.Mutex
	sendClosed bool

	// Inbound side. The connection's read loop appends assembled messages
	// to inq and never blocks on a slow consumer — queued bytes are
	// bounded by the credit window, which is only replenished on Recv.
	recvMu  sync.Mutex
	inq     []inboundMsg
	inqHead int
	term    error // terminal status; nil with termSet means clean EOF
	termSet bool
	dead    bool // fully torn down: late deliveries are dropped
	//rpclint:owns partial-message assembly; released by deliver on the
	// final chunk (moves into inq) or by teardown.
	asm       []byte
	asmStatus bool // the message being assembled is a status envelope

	notify chan struct{} // capacity 1: wake for Recv

	// cur is the pooled buffer handed out by the last Recv; released on
	// the next Recv or Close by the receiving goroutine itself, so a
	// remote teardown can never recycle bytes the application still reads.
	//rpclint:owns
	cur []byte

	// grantBuf is scratch for WINDOW_UPDATE payloads (receiver goroutine).
	grantBuf [16]byte

	done     chan struct{}
	doneOnce sync.Once
}

// lockRecv and unlockRecv wrap recvMu with the sanitize rank checker;
// every acquisition of the inbound-side lock goes through them.
func (s *Stream) lockRecv() {
	s.recvMu.Lock()
	if sanitize.Enabled {
		sanitize.LockAcquired(sanitize.RankStreamRecv, "stubby.Stream.recvMu")
	}
}

func (s *Stream) unlockRecv() {
	if sanitize.Enabled {
		sanitize.LockReleased(sanitize.RankStreamRecv)
	}
	s.recvMu.Unlock()
}

// inboundMsg is one fully assembled inbound message and the credit its
// sender spent on it.
type inboundMsg struct {
	data   []byte
	charge int64
}

func newStream(tr *transport, streamID uint64, maxWin int64) *Stream {
	return &Stream{
		tr:       tr,
		streamID: streamID,
		maxWin:   maxWin,
		sendWin:  newCreditWindow(maxWin),
		notify:   make(chan struct{}, 1),
		done:     make(chan struct{}),
	}
}

// msgCharge is the credit one message costs: its payload bytes, minimum 1
// so empty messages cannot bypass flow control.
func msgCharge(n int) int64 {
	if n == 0 {
		return 1
	}
	return int64(n)
}

// OpenStream starts a bidirectional stream. Messages flow with Send and
// Recv; CloseSend half-closes the sending direction (the server's Recv
// then returns io.EOF); Close abandons the stream, resetting it on the
// server. The stream ends when Recv returns io.EOF (clean final status)
// or an error. On a striped channel the stream rides one stripe picked
// round-robin; all its frames stay on that socket.
func (c *Channel) OpenStream(ctx context.Context, method string, opts ...CallOption) (*Stream, error) {
	return c.stripeFor(true).openStreamLocal(ctx, method, opts...)
}

// openStreamLocal opens a stream on this channel's own connection.
func (c *Channel) openStreamLocal(ctx context.Context, method string, opts ...CallOption) (*Stream, error) {
	co := resolveCallOpts(ctx, opts)
	win := int64(c.opts.StreamWindow)
	if co.window > 0 {
		win = int64(co.window)
	}

	parent, ok := TraceFromContext(ctx)
	tc := TraceContext{SpanID: nextSpanID()}
	if ok {
		tc.TraceID = parent.TraceID
	} else {
		tc.TraceID = nextTraceID()
	}
	deadline := c.opts.DefaultDeadline
	if dl, has := ctx.Deadline(); has {
		deadline = time.Until(dl)
	}
	if deadline <= 0 {
		return nil, ErrDeadlineExceeded
	}
	req := &request{
		Method:   method,
		TraceID:  tc.TraceID,
		SpanID:   tc.SpanID,
		Deadline: deadline,
		Window:   uint32(win),
	}
	env := appendRequest(wire.GetBuf(len(method)+envelopeOverhead), req)

	streamID := c.nextStream.Add(1)
	st := newStream(c.tr, streamID, win)
	st.c = c
	st.ctx, st.cancel = context.WithCancel(ctx)

	c.mu.Lock()
	select {
	case <-c.closed:
		c.mu.Unlock()
		st.cancel()
		wire.PutBuf(env)
		return nil, ErrUnavailable
	default:
	}
	if c.streams == nil {
		c.streams = make(map[uint64]*Stream)
	}
	c.streams[streamID] = st
	c.mu.Unlock()

	// Streams bypass the unary send queue: the open frame goes out
	// immediately (stream setup is not part of the unary queue study).
	err := c.tr.send(wire.FrameStreamOpen, streamID, env)
	wire.PutBuf(env)
	if err != nil {
		c.dropStream(streamID)
		st.cancel()
		return nil, ErrUnavailable
	}

	// Relay caller cancellation to the server as a reset.
	go func() {
		select {
		case <-st.ctx.Done():
			st.terminate(codeToError(cancelCode(st.ctx)), true)
		case <-st.done:
		}
	}()
	return st, nil
}

// Send transmits one message. It blocks while the peer's credit window is
// exhausted (the slow-reader backpressure of DESIGN.md §12) and fails if
// the stream or its context ends first. A message larger than the stream
// window cannot be sent; raise it with WithStreamWindow.
func (s *Stream) Send(msg []byte) error {
	charge := msgCharge(len(msg))
	if charge > s.maxWin {
		return Errorf(trace.InvalidArgument,
			"stream message of %d bytes exceeds the %d-byte stream window", len(msg), s.maxWin)
	}
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	if sanitize.Enabled {
		sanitize.LockAcquired(sanitize.RankStreamSend, "stubby.Stream.sendMu")
		defer sanitize.LockReleased(sanitize.RankStreamSend)
	}
	if s.sendClosed {
		return Errorf(trace.InvalidArgument, "send on closed stream")
	}
	if err := s.sendWin.take(charge, s.ctx); err != nil {
		return err
	}
	if err := s.tr.sendChunks(s.streamID, msg, 0); err != nil {
		return ErrUnavailable
	}
	return nil
}

// CloseSend half-closes the stream: the peer's Recv returns io.EOF once
// it drains the messages already sent. Receiving continues normally.
func (s *Stream) CloseSend() error {
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	if sanitize.Enabled {
		sanitize.LockAcquired(sanitize.RankStreamSend, "stubby.Stream.sendMu")
		defer sanitize.LockReleased(sanitize.RankStreamSend)
	}
	if s.sendClosed {
		return nil
	}
	s.sendClosed = true
	select {
	case <-s.done:
		return nil // already torn down; the peer is gone
	default:
	}
	if err := s.tr.sendHalfClose(s.streamID); err != nil {
		return ErrUnavailable
	}
	return nil
}

// Recv returns the next inbound message, blocking until one arrives or
// the stream ends: io.EOF after a clean end (final OK status, or the
// peer's half-close on the server side), the terminal error otherwise.
// Messages already received are drained before the terminal state is
// reported. The returned slice is only valid until the next Recv or
// Close.
func (s *Stream) Recv() ([]byte, error) {
	if s.cur != nil {
		wire.PutBuf(s.cur)
		s.cur = nil
	}
	for {
		s.lockRecv()
		if s.inqHead < len(s.inq) {
			m := s.inq[s.inqHead]
			s.inq[s.inqHead] = inboundMsg{}
			s.inqHead++
			if s.inqHead == len(s.inq) {
				s.inq, s.inqHead = s.inq[:0], 0
			}
			s.unlockRecv()
			s.cur = m.data
			// The application consumed the message: grant its charge back
			// so the sender can proceed.
			s.sendGrant(m.charge)
			return m.data, nil
		}
		if s.termSet {
			term := s.term
			s.unlockRecv()
			if term == nil {
				return nil, io.EOF
			}
			return nil, term
		}
		ch := s.notify
		s.unlockRecv()
		<-ch
	}
}

// sendGrant emits a WINDOW_UPDATE for n consumed credits.
func (s *Stream) sendGrant(n int64) {
	buf := wire.AppendUvarint(s.grantBuf[:0], uint64(n))
	_ = s.tr.send(wire.FrameWindowUpdate, s.streamID, buf)
}

// Close abandons the stream. If it is still live, the peer receives a
// reset: on the server that promptly cancels the handler's context and
// fails its blocked Sends. Close releases every pooled buffer this end
// holds, including the one handed out by the last Recv.
func (s *Stream) Close() error {
	s.terminate(ErrCancelled, true)
	if s.cur != nil {
		wire.PutBuf(s.cur)
		s.cur = nil
	}
	return nil
}

// Context returns the stream's context: the OpenStream context on the
// client, the handler context on the server.
func (s *Stream) Context() context.Context { return s.ctx }

// terminate tears the stream down once: records the terminal state for
// Recv (keeping an earlier one), kills the send window, cancels the
// context, returns pooled buffers, detaches from the owner's stream
// table, and — when notifyPeer is set and the stream is still live —
// sends a reset frame.
func (s *Stream) terminate(err error, notifyPeer bool) {
	s.doneOnce.Do(func() {
		close(s.done)
		s.lockRecv()
		if !s.termSet {
			s.termSet, s.term = true, err
		}
		s.dead = true
		for i := s.inqHead; i < len(s.inq); i++ {
			wire.PutBuf(s.inq[i].data)
			s.inq[i] = inboundMsg{}
		}
		s.inq, s.inqHead = nil, 0
		if s.asm != nil {
			wire.PutBuf(s.asm)
			s.asm = nil
		}
		// cancel is read under recvMu: on the server it is installed by a
		// worker (handleBidi) that may race a reset from the read loop.
		cancel := s.cancel
		s.unlockRecv()
		s.sendWin.kill(err)
		if cancel != nil {
			cancel()
		}
		if notifyPeer {
			_ = s.tr.sendReset(s.streamID, StatusFromError(err))
		}
		if s.c != nil {
			s.c.dropStream(s.streamID)
		}
		if s.sc != nil {
			s.sc.dropStream(s.streamID)
		}
		select {
		case s.notify <- struct{}{}:
		default:
		}
	})
}

// finished reports whether the stream has been torn down.
func (s *Stream) finished() bool {
	select {
	case <-s.done:
		return true
	default:
		return false
	}
}

// deliverChunk routes one inbound chunk into the stream. Only the
// connection's read loop calls it; ownership of data (a pooled buffer)
// transfers here. It never blocks: completed messages queue on inq and
// the credit window bounds how far a slow consumer can fall behind, so a
// stalled stream cannot head-of-line-block the connection.
func (s *Stream) deliverChunk(flags byte, data []byte) {
	s.lockRecv()
	if s.dead {
		s.unlockRecv()
		wire.PutBuf(data)
		return
	}
	var msg []byte
	haveMsg := false
	switch {
	case s.asm == nil && flags&chunkEndMsg != 0:
		// Single-chunk message: hand the pooled buffer through untouched.
		msg, haveMsg = data, true
	case s.asm == nil && len(data) == 0:
		// Bare control chunk (half-close marker): no message payload.
		wire.PutBuf(data)
	default:
		if s.asm == nil {
			s.asm = wire.GetBuf(2 * len(data))
		}
		s.asm = append(s.asm, data...)
		wire.PutBuf(data)
		if flags&chunkEndMsg != 0 {
			msg, haveMsg = s.asm, true
			s.asm = nil
		}
	}
	if flags&chunkStatus != 0 {
		s.asmStatus = true
	}
	if haveMsg {
		if s.asmStatus {
			s.asmStatus = false
			s.applyStatusLocked(msg)
			wire.PutBuf(msg)
		} else {
			s.inq = append(s.inq, inboundMsg{data: msg, charge: msgCharge(len(msg))})
		}
	}
	if flags&chunkEndStream != 0 && !s.termSet {
		s.termSet = true // term stays nil: clean end of direction
	}
	s.unlockRecv()
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// applyStatusLocked records the final status carried in a status chunk.
// Caller holds recvMu.
func (s *Stream) applyStatusLocked(env []byte) {
	var resp response
	var term error
	if perr := parseResponseInto(&resp, env); perr != nil {
		term = Errorf(trace.Internal, "stream status: %v", perr)
	} else if resp.Code != trace.OK {
		term = &Status{Code: resp.Code, Message: resp.Message}
	}
	if !s.termSet {
		s.termSet, s.term = true, term
	}
}

// grantFromPeer applies an inbound WINDOW_UPDATE.
func (s *Stream) grantFromPeer(plain []byte) {
	if n, k := wire.Uvarint(plain); k > 0 && n > 0 {
		s.sendWin.grant(int64(n))
	}
}

// resetFromPeer applies an inbound reset frame: code then message text.
func (s *Stream) resetFromPeer(plain []byte) {
	st := &Status{Code: trace.Cancelled, Message: "stream reset by peer"}
	if code, n := wire.Uvarint(plain); n > 0 {
		st = &Status{Code: trace.ErrorCode(code), Message: string(plain[n:])}
	}
	s.terminate(st, false)
}

// --- Server side ---

// RegisterBidi installs a bidirectional streaming handler. Unary and
// streaming methods share one namespace.
func (s *Server) RegisterBidi(method string, h BidiHandler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.handlers[method]; dup {
		panic(fmt.Sprintf("stubby: duplicate handler for %q", method))
	}
	if _, dup := s.bidiHandlers[method]; dup {
		panic(fmt.Sprintf("stubby: duplicate stream handler for %q", method))
	}
	s.bidiHandlers[method] = h
	s.methodNames[method] = method
}

// handleBidi runs on a worker for a queued stream-open: it decodes the
// envelope, configures the stream's flow control and deadline, and hands
// the handler its own goroutine — a blocked stream Send must not pin a
// worker the unary traffic needs.
func (s *Server) handleBidi(call *serverCall) {
	st := call.stream
	req := &call.req
	s.mu.RLock()
	err := parseRequestInto(req, call.raw, s.intern)
	var bh BidiHandler
	if err == nil {
		bh = s.bidiHandlers[req.Method]
	}
	s.mu.RUnlock()
	// The open envelope carries no payload, so nothing aliases it past
	// the parse.
	wire.PutBuf(call.raw)
	call.raw = nil
	if err != nil {
		st.terminate(Errorf(trace.Internal, "stream open: %v", err), true)
		return
	}

	win := int64(req.Window)
	if win <= 0 {
		win = defaultStreamWindow
	}
	st.maxWin = win
	// The stream was registered with a zero send window before the
	// envelope was decoded; install the client's declared window now.
	st.sendWin.grant(win)

	ctx := ContextWithTrace(context.Background(), TraceContext{
		TraceID: req.TraceID,
		SpanID:  req.SpanID,
	})
	// Install the handler context under recvMu so a concurrent terminate
	// (reset racing the open decode) observes it; if the stream already
	// died, cancel here since terminate could not.
	st.lockRecv()
	if req.Deadline > 0 {
		st.ctx, st.cancel = context.WithTimeout(ctx, req.Deadline)
	} else {
		st.ctx, st.cancel = context.WithCancel(ctx)
	}
	cancel, dead := st.cancel, st.dead
	st.unlockRecv()
	if dead {
		cancel()
		return
	}

	if bh == nil {
		s.finishBidi(st, Errorf(trace.EntityNotFound, "no stream handler for method %q", req.Method))
		return
	}
	go s.runBidi(st, bh)
}

// runBidi hosts one stream handler on its own goroutine.
func (s *Server) runBidi(st *Stream, h BidiHandler) {
	herr := h(st.ctx, st)
	if herr == nil && st.ctx.Err() != nil {
		herr = ctxErrToStatus(st.ctx.Err())
	}
	s.finishBidi(st, herr)
}

// finishBidi sends the final status chunk (unless the stream already died
// to a reset or connection failure) and tears down the server-side state,
// returning every pooled buffer the stream still holds.
func (s *Server) finishBidi(st *Stream, herr error) {
	if !st.finished() {
		stat := StatusFromError(herr)
		resp := response{Code: stat.Code}
		if stat.Code != trace.OK {
			resp.Message = stat.Message
		}
		env := appendResponse(wire.GetBuf(len(resp.Message)+envelopeOverhead), &resp)
		// The status chunk is exempt from flow control, like HTTP/2
		// headers: it must reach a client that has stopped consuming.
		_ = st.tr.sendChunks(st.streamID, env, chunkStatus|chunkEndStream)
		wire.PutBuf(env)
	}
	st.terminate(StatusFromError(herr), false)
	if st.cur != nil {
		wire.PutBuf(st.cur)
		st.cur = nil
	}
}

// --- Deprecated server-streaming shims ---

// StreamHandler serves a server-streaming method: it sends zero or more
// messages via send and returns the final status.
//
// Deprecated: register a BidiHandler with RegisterBidi; it exposes the
// stream itself.
type StreamHandler func(ctx context.Context, payload []byte, send func([]byte) error) error

// RegisterStream installs a server-streaming handler.
//
// Deprecated: use RegisterBidi. RegisterStream adapts h onto the bulk
// lane: the request payload arrives as the stream's first message.
func (s *Server) RegisterStream(method string, h StreamHandler) {
	s.RegisterBidi(method, func(ctx context.Context, st *Stream) error {
		payload, err := st.Recv()
		if err == io.EOF {
			payload = nil
		} else if err != nil {
			return err
		}
		// The handler never Recvs again, so payload (the stream's pooled
		// current buffer) stays valid for its whole lifetime.
		return h(ctx, payload, st.Send)
	})
}

// ServerStream is the client's view of a server-streaming call.
//
// Deprecated: use Stream via Channel.OpenStream.
type ServerStream struct {
	st *Stream
}

// CallStream starts a server-streaming RPC: the payload goes out as the
// single request message and the send direction half-closes. Read
// messages with Recv until io.EOF (clean end) or an error; call Close to
// abandon early.
//
// Deprecated: use OpenStream, which exposes the symmetric Stream.
func (c *Channel) CallStream(ctx context.Context, method string, payload []byte) (*ServerStream, error) {
	st, err := c.OpenStream(ctx, method)
	if err != nil {
		return nil, err
	}
	if err := st.Send(payload); err != nil {
		_ = st.Close()
		return nil, err
	}
	if err := st.CloseSend(); err != nil {
		_ = st.Close()
		return nil, err
	}
	return &ServerStream{st: st}, nil
}

// Recv returns the next message. It returns io.EOF after the final status
// of a clean stream, or the terminal error otherwise. The returned slice
// is the caller's to keep (unlike Stream.Recv, which reuses its buffer).
func (ss *ServerStream) Recv() ([]byte, error) {
	msg, err := ss.st.Recv()
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), msg...), nil
}

// Close abandons the stream: the server's handler context is cancelled
// via a reset frame and further Recv calls return Cancelled (or the
// terminal state if the stream had already finished).
func (ss *ServerStream) Close() { _ = ss.st.Close() }
