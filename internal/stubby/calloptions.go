package stubby

import "context"

// Per-call options for unary calls and streams. They thread through the
// context so the CallFunc signature — which the retry, hedging, and
// breaker layers compose over — stays unchanged: Channel.Call folds its
// variadic options into the context before entering the invoke chain.

// CallOption adjusts one call or stream.
type CallOption func(*callOpts)

// callOpts is the resolved per-call configuration. Zero values defer to
// the endpoint's Options.
type callOpts struct {
	window        int  // stream credit window; 0 = Options.StreamWindow
	bulkThreshold int  // 0 = Options.BulkThreshold; negative = disabled
	bulkSet       bool // WithBulkLane was given
	bulkOn        bool
}

// WithStreamWindow sets the stream's per-direction credit window in
// bytes. It bounds both the unconsumed bytes the peer may buffer and the
// size of a single stream message. Non-positive values are ignored.
func WithStreamWindow(n int) CallOption {
	return func(o *callOpts) {
		if n > 0 {
			o.window = n
		}
	}
}

// WithBulkThreshold routes this call through the bulk lane if its payload
// is at least bytes long, overriding Options.BulkThreshold. Negative
// disables the bulk lane for this call.
func WithBulkThreshold(bytes int) CallOption {
	return func(o *callOpts) {
		if bytes != 0 {
			o.bulkThreshold = bytes
		}
	}
}

// WithBulkLane forces the bulk lane on or off for this call regardless of
// payload size: on routes any payload through it, off keeps the inline
// envelope path even for large payloads.
func WithBulkLane(enabled bool) CallOption {
	return func(o *callOpts) {
		o.bulkSet = true
		o.bulkOn = enabled
	}
}

type callOptsCtxKey struct{}

// ContextWithCallOptions attaches per-call options to a context, for call
// sites that go through a plain CallFunc (interceptor chains, retry
// wrappers) rather than Channel.Call's variadic form.
func ContextWithCallOptions(ctx context.Context, opts ...CallOption) context.Context {
	co := resolveCallOpts(ctx, opts)
	return context.WithValue(ctx, callOptsCtxKey{}, co)
}

// resolveCallOpts folds opts over any options already in ctx.
func resolveCallOpts(ctx context.Context, opts []CallOption) *callOpts {
	var co callOpts
	if prev, ok := ctx.Value(callOptsCtxKey{}).(*callOpts); ok {
		co = *prev
	}
	for _, o := range opts {
		o(&co)
	}
	return &co
}

// useBulkLane decides whether one unary call takes the bulk lane: the
// channel's threshold, overridden per call, with WithBulkLane as a hard
// switch in either direction.
func (c *Channel) useBulkLane(co *callOpts, payloadLen int) bool {
	if co != nil && co.bulkSet {
		return co.bulkOn
	}
	th := c.opts.BulkThreshold
	if co != nil && co.bulkThreshold != 0 {
		th = co.bulkThreshold
	}
	return th > 0 && payloadLen >= th
}
