package stubby

import (
	"bytes"
	"context"
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"rpcscale/internal/leakcheck"
	"rpcscale/internal/secure"
	"rpcscale/internal/testutil"
	"rpcscale/internal/trace"
	"rpcscale/internal/wire"
)

// bidiSetup starts a server with one bidirectional handler and returns a
// connected channel.
func bidiSetup(t *testing.T, opts Options, method string, h BidiHandler) *Channel {
	t.Helper()
	leakcheck.Check(t)
	srv := NewServer(opts)
	srv.RegisterBidi(method, h)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	ch, err := Dial(l.Addr().String(), "bulk-test", opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ch.Close()
		srv.Close()
	})
	return ch
}

// echoSetup starts a unary echo server and returns a connected channel.
func echoSetup(t *testing.T, opts Options) *Channel {
	t.Helper()
	leakcheck.Check(t)
	srv := NewServer(opts)
	srv.Register("bulk/Echo", func(ctx context.Context, p []byte) ([]byte, error) {
		return p, nil
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	ch, err := Dial(l.Addr().String(), "bulk-test", opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ch.Close()
		srv.Close()
	})
	return ch
}

func patternPayload(n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i*7 + i>>8)
	}
	return p
}

// TestBulkUnaryRoundTrip drives unary echoes across the bulk-lane
// threshold and chunking boundaries: below threshold (inline envelope),
// at threshold, exactly one chunk, one byte past a chunk, and several
// chunks.
func TestBulkUnaryRoundTrip(t *testing.T) {
	ch := echoSetup(t, Options{Workers: 4})
	sizes := []int{
		1024,              // inline envelope path
		16 << 10,          // exactly the default threshold: first bulk size
		bulkChunkSize,     // exactly one chunk
		bulkChunkSize + 1, // two chunks, second of 1 byte
		300 << 10,         // several chunks
	}
	for _, n := range sizes {
		payload := patternPayload(n)
		got, err := ch.Call(context.Background(), "bulk/Echo", payload)
		if err != nil {
			t.Fatalf("size %d: %v", n, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("size %d: echo mismatch (got %d bytes)", n, len(got))
		}
	}
}

// TestBulkLaneCallOptions exercises WithBulkLane and WithBulkThreshold:
// forcing small payloads onto the lane, keeping large ones off it, and
// per-call thresholds — every combination must still round-trip.
func TestBulkLaneCallOptions(t *testing.T) {
	ch := echoSetup(t, Options{Workers: 4})
	small, large := patternPayload(256), patternPayload(64<<10)
	cases := []struct {
		name    string
		payload []byte
		opts    []CallOption
	}{
		{"force-on-small", small, []CallOption{WithBulkLane(true)}},
		{"force-off-large", large, []CallOption{WithBulkLane(false)}},
		{"threshold-raised", large, []CallOption{WithBulkThreshold(1 << 20)}},
		{"threshold-lowered", small, []CallOption{WithBulkThreshold(128)}},
		{"threshold-disabled", large, []CallOption{WithBulkThreshold(-1)}},
	}
	for _, tc := range cases {
		got, err := ch.Call(context.Background(), "bulk/Echo", tc.payload, tc.opts...)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !bytes.Equal(got, tc.payload) {
			t.Fatalf("%s: echo mismatch", tc.name)
		}
	}
	// The context form must thread the same options through a CallFunc.
	ctx := ContextWithCallOptions(context.Background(), WithBulkLane(true))
	got, err := ch.Call(ctx, "bulk/Echo", small)
	if err != nil || !bytes.Equal(got, small) {
		t.Fatalf("context options: %v", err)
	}
}

// TestOpenStreamBidi exercises the symmetric surface end to end: the
// client sends, the server echoes with a suffix, half-closes propagate,
// and the final OK status surfaces as io.EOF.
func TestOpenStreamBidi(t *testing.T) {
	ch := bidiSetup(t, Options{Workers: 4}, "svc/Chat", func(ctx context.Context, st *Stream) error {
		for {
			msg, err := st.Recv()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
			if err := st.Send(append(append([]byte(nil), msg...), '!')); err != nil {
				return err
			}
		}
	})
	st, err := ch.OpenStream(context.Background(), "svc/Chat")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		want := patternPayload(100 * (i + 1))
		if err := st.Send(want); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		got, err := st.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if len(got) != len(want)+1 || !bytes.Equal(got[:len(want)], want) || got[len(want)] != '!' {
			t.Fatalf("echo %d mismatch", i)
		}
	}
	if err := st.CloseSend(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Recv(); err != io.EOF {
		t.Fatalf("after clean finish: got %v, want io.EOF", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStreamBackpressure verifies credit flow control end to end: with a
// 4 KiB window and 1 KiB messages, a sender facing a sleeping reader must
// stall near 4 messages in, then resume as Recv grants credit back.
func TestStreamBackpressure(t *testing.T) {
	const total, msgSize, window = 64, 1024, 4096
	var sent atomic.Int64
	ch := bidiSetup(t, Options{Workers: 4}, "svc/Firehose", func(ctx context.Context, st *Stream) error {
		msg := patternPayload(msgSize)
		for i := 0; i < total; i++ {
			if err := st.Send(msg); err != nil {
				return err
			}
			sent.Add(1)
		}
		return nil
	})
	st, err := ch.OpenStream(context.Background(), "svc/Firehose", WithStreamWindow(window))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// No Recv yet: the sender must stop once the window is spent.
	deadline := time.Now().Add(2 * time.Second)
	for sent.Load() < window/msgSize && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(100 * time.Millisecond) // would-be overshoot window
	if n := sent.Load(); n < window/msgSize || n > window/msgSize+1 {
		t.Fatalf("stalled sender sent %d messages, want ~%d (window %d / msg %d)",
			n, window/msgSize, window, msgSize)
	}

	// Draining grants credit back; the sender finishes.
	for i := 0; i < total; i++ {
		if _, err := st.Recv(); err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
	}
	if _, err := st.Recv(); err != io.EOF {
		t.Fatalf("final: got %v, want io.EOF", err)
	}
	if n := sent.Load(); n != total {
		t.Fatalf("sender finished %d/%d", n, total)
	}
}

// TestStreamNoHeadOfLineBlocking runs a stalled stream and a live stream
// on one connection: the stalled stream's unconsumed window must not
// delay the live stream's round trips.
func TestStreamNoHeadOfLineBlocking(t *testing.T) {
	var stalledSent atomic.Int64
	srv := NewServer(Options{Workers: 4})
	srv.RegisterBidi("svc/Stalled", func(ctx context.Context, st *Stream) error {
		msg := patternPayload(1024)
		for {
			if err := st.Send(msg); err != nil {
				return nil // reset by the client at test end
			}
			stalledSent.Add(1)
		}
	})
	srv.RegisterBidi("svc/PingPong", func(ctx context.Context, st *Stream) error {
		for {
			msg, err := st.Recv()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
			if err := st.Send(msg); err != nil {
				return err
			}
		}
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	ch, err := Dial(l.Addr().String(), "hol-test", Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ch.Close()
		srv.Close()
	})

	stalled, err := ch.OpenStream(context.Background(), "svc/Stalled", WithStreamWindow(4096))
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Close()
	// Let the stalled stream exhaust its credit.
	deadline := time.Now().Add(2 * time.Second)
	for stalledSent.Load() < 4 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	// The live stream must interleave freely on the shared connection.
	live, err := ch.OpenStream(context.Background(), "svc/PingPong")
	if err != nil {
		t.Fatal(err)
	}
	msg := patternPayload(512)
	for i := 0; i < 50; i++ {
		if err := live.Send(msg); err != nil {
			t.Fatalf("live send %d: %v", i, err)
		}
		if _, err := live.Recv(); err != nil {
			t.Fatalf("live recv %d: %v", i, err)
		}
	}
	if err := live.CloseSend(); err != nil {
		t.Fatal(err)
	}
	if _, err := live.Recv(); err != io.EOF {
		t.Fatalf("live finish: got %v, want io.EOF", err)
	}
	if n := stalledSent.Load(); n > 8 {
		t.Fatalf("stalled stream advanced to %d sends despite spent window", n)
	}
}

// TestStreamMessageExceedsWindow: a message larger than the stream window
// can never acquire enough credit; Send must fail fast with
// InvalidArgument rather than deadlock.
func TestStreamMessageExceedsWindow(t *testing.T) {
	ch := bidiSetup(t, Options{Workers: 4}, "svc/Sink", func(ctx context.Context, st *Stream) error {
		for {
			if _, err := st.Recv(); err != nil {
				if err == io.EOF {
					return nil
				}
				return err
			}
		}
	})
	st, err := ch.OpenStream(context.Background(), "svc/Sink", WithStreamWindow(1024))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	err = st.Send(patternPayload(2048))
	if Code(err) != trace.InvalidArgument {
		t.Fatalf("oversized send: got %v, want InvalidArgument", err)
	}
	// The stream itself stays usable for conforming messages.
	if err := st.Send(patternPayload(512)); err != nil {
		t.Fatalf("conforming send after oversized: %v", err)
	}
}

// TestStreamCloseCancelsHandler: Close on a mid-flight stream must reach
// the server as a reset that promptly cancels the handler's context.
func TestStreamCloseCancelsHandler(t *testing.T) {
	cancelled := make(chan struct{})
	ch := bidiSetup(t, Options{Workers: 4}, "svc/Hang", func(ctx context.Context, st *Stream) error {
		if err := st.Send([]byte("started")); err != nil {
			return err
		}
		<-ctx.Done()
		close(cancelled)
		return ctx.Err()
	})
	st, err := ch.OpenStream(context.Background(), "svc/Hang")
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the handler to be running before abandoning the stream.
	if _, err := st.Recv(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-cancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("handler context not cancelled within 5s of client Close")
	}
	if _, err := st.Recv(); Code(err) != trace.Cancelled {
		t.Fatalf("Recv after Close: got %v, want Cancelled", err)
	}
}

// TestStreamCloseReturnsPooledBuffers is the leak check on the §11/§12
// ownership contract: across many mid-flight stream closes — queued
// messages, partial assemblies, handed-out Recv buffers — the pool's
// outstanding-buffer count must stay bounded instead of growing with the
// stream count.
func TestStreamCloseReturnsPooledBuffers(t *testing.T) {
	const streams = 60
	ch := bidiSetup(t, Options{Workers: 4}, "svc/Spray", func(ctx context.Context, st *Stream) error {
		msg := patternPayload(2048)
		for {
			if err := st.Send(msg); err != nil {
				return nil
			}
		}
	})
	gets0, puts0 := wire.PoolCounters()
	base := gets0 - puts0
	for i := 0; i < streams; i++ {
		st, err := ch.OpenStream(context.Background(), "svc/Spray", WithStreamWindow(16<<10))
		if err != nil {
			t.Fatal(err)
		}
		// Consume a few messages (leaving one handed out in st.cur), then
		// abandon mid-flight with queued and in-assembly inbound data.
		for j := 0; j < 3; j++ {
			if _, err := st.Recv(); err != nil {
				t.Fatalf("stream %d recv %d: %v", i, j, err)
			}
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}
	// Outstanding buffers must settle back near the baseline: chunks in
	// flight when a reset lands are freed by the receiving loops, so poll
	// briefly. The bound is a small constant (loop scratch, one write
	// batch), independent of the stream count.
	const slack = 32
	deadline := time.Now().Add(5 * time.Second)
	var outstanding int64
	for {
		gets, puts := wire.PoolCounters()
		outstanding = (gets - puts) - base
		if outstanding <= slack || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if outstanding > slack {
		t.Fatalf("pool leak: %d buffers outstanding after %d mid-flight closes (slack %d)",
			outstanding, streams, slack)
	}
}

// TestChunkFrameTruncation feeds the chunk parser frames that violate the
// wire contract — no flags byte, a truncated seal, a flipped flags byte —
// and expects a clean decrypt error, never a panic or a bogus delivery.
func TestChunkFrameTruncation(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	psk := []byte("truncation-test-psk")
	// Only the receiving side goes through a transport; frames are forged
	// directly on the sending conn.
	rt, err := newTransport(c2, psk, "s2c", "c2s", nil)
	if err != nil {
		t.Fatal(err)
	}
	sendSess, err := secure.NewSession(secure.DeriveKey(psk, "c2s"), nil)
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, payload []byte) {
		w := wire.NewWriter(c1)
		done := make(chan error, 1)
		go func() {
			buf, err := w.BeginFrame(wire.FrameStreamChunk, 9, len(payload))
			if err != nil {
				done <- err
				return
			}
			buf = append(buf, payload...)
			if err := w.EndFrame(buf); err != nil {
				done <- err
				return
			}
			done <- w.Flush()
		}()
		if _, err := rt.recv(); err == nil {
			t.Fatalf("%s: recv accepted a malformed chunk", name)
		}
		if err := <-done; err != nil {
			t.Fatalf("%s: forge write: %v", name, err)
		}
	}

	// Empty payload: no room for even the flags byte.
	check("empty", nil)
	// Flags byte present but the seal truncated below nonce+tag.
	check("short-seal", []byte{chunkEndMsg, 1, 2, 3})
	// Valid seal, flipped clear-text flags: GCM must reject the AAD.
	sealed := sendSess.SealAppendAAD([]byte{chunkEndMsg}, []byte("payload"), []byte{chunkEndMsg})
	sealed[0] ^= chunkEndStream
	check("flipped-flags", sealed)
}

// TestStreamControlParserRobustness feeds the window-update and reset
// parsers truncated and garbage payloads; malformed grants are ignored
// and malformed resets still terminate with a usable status.
func TestStreamControlParserRobustness(t *testing.T) {
	for _, grant := range [][]byte{nil, {}, {0x80}, {0x80, 0x80, 0x80}, {0x00}, {0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}} {
		st := newStream(nil, 1, 64)
		st.grantFromPeer(grant)
		if err := st.sendWin.take(64, context.Background()); err != nil {
			t.Fatalf("grant %x corrupted the window: %v", grant, err)
		}
	}
	for _, reset := range [][]byte{nil, {}, {0x80}, {0x05}, append([]byte{0x07}, "boom"...), bytes.Repeat([]byte{0xAA}, 64)} {
		st := newStream(nil, 1, 64)
		st.resetFromPeer(reset)
		_, err := st.Recv()
		if err == nil || err == io.EOF {
			t.Fatalf("reset %x did not terminate the stream (err=%v)", reset, err)
		}
		if Code(err) == trace.OK {
			t.Fatalf("reset %x produced an OK status", reset)
		}
	}
}

// FuzzStreamControlParsers drives the reset and grant parsers plus the
// chunk-delivery state machine with arbitrary bytes: any input must leave
// the stream in a consistent state without panicking.
func FuzzStreamControlParsers(f *testing.F) {
	f.Add([]byte{0x05}, []byte{0x80}, byte(chunkEndMsg), []byte("data"))
	f.Add([]byte{}, []byte{}, byte(0xFF), []byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF}, []byte{0x00}, byte(chunkStatus|chunkEndMsg), bytes.Repeat([]byte{1}, 300))
	f.Fuzz(func(t *testing.T, reset, grant []byte, flags byte, chunk []byte) {
		st := newStream(nil, 1, 1<<20)
		st.grantFromPeer(grant)
		data := append(wire.GetBuf(len(chunk)), chunk...)
		st.deliverChunk(flags, data)
		data2 := append(wire.GetBuf(len(chunk)), chunk...)
		st.deliverChunk(flags|chunkEndMsg, data2)
		st.resetFromPeer(reset)
		if _, err := st.Recv(); err == nil {
			// A message delivered before the reset is fine; the terminal
			// state must still surface next.
			if _, err := st.Recv(); err == nil || err == io.EOF {
				t.Fatal("reset stream did not terminate")
			}
		}
		st.Close()
	})
}

// TestBulkUnaryAllocFloor pins the bulk path's allocation budget. The
// race detector inflates allocation counts, so the floor only runs on
// normal builds.
func TestBulkUnaryAllocFloor(t *testing.T) {
	if testutil.Instrumented {
		t.Skip("allocation floors are meaningless under instrumented builds")
	}
	ch := echoSetup(t, Options{Workers: 4})
	payload := patternPayload(16 << 10)
	call := func() {
		if _, err := ch.Call(context.Background(), "bulk/Echo", payload); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		call() // warm pools and connection state
	}
	// Whole-process allocations per echo, both endpoints included. The
	// inline path measured 18/op at the seed; the bulk lane adds the
	// assembly buffer handed to the caller and little else.
	const floor = 45
	if avg := testing.AllocsPerRun(100, call); avg > floor {
		t.Fatalf("bulk 16KiB echo allocates %.1f/op, budget %d", avg, floor)
	}
}

// TestStreamAllocFloor pins the per-stream allocation budget of the
// acceptance target: a 100-item stream must stay at or under 100
// allocations per full stream.
func TestStreamAllocFloor(t *testing.T) {
	if testutil.Instrumented {
		t.Skip("allocation floors are meaningless under instrumented builds")
	}
	const items = 100
	ch := bidiSetup(t, Options{Workers: 4}, "svc/Items", func(ctx context.Context, st *Stream) error {
		msg := patternPayload(1024)
		for i := 0; i < items; i++ {
			if err := st.Send(msg); err != nil {
				return err
			}
		}
		return nil
	})
	op := func() {
		st, err := ch.OpenStream(context.Background(), "svc/Items")
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for {
			_, err := st.Recv()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			n++
		}
		if n != items {
			t.Fatalf("got %d items, want %d", n, items)
		}
		st.Close()
	}
	for i := 0; i < 20; i++ {
		op() // warm pools, maps, and goroutine stacks
	}
	const floor = 100
	if avg := testing.AllocsPerRun(30, op); avg > floor {
		t.Fatalf("100-item stream allocates %.1f/op, budget %d", avg, floor)
	}
}
