package stubby

import (
	"context"
	"sync/atomic"

	"rpcscale/internal/trace"
)

// TraceContext is the tracing state propagated along a call chain: the
// tree-wide trace ID and the span ID of the current RPC. Server handlers
// receive it in their context; client calls read it to link child spans to
// their parent, which is how Dapper reconstructs nested call trees.
type TraceContext struct {
	TraceID trace.TraceID
	SpanID  trace.SpanID
}

type traceCtxKey struct{}

// callIDCtxKey carries the logical call ID a driver assigned to this
// call; attemptCtxKey carries the retry attempt number.
type (
	callIDCtxKey  struct{}
	attemptCtxKey struct{}
)

// ContextWithCallID tags a context with a driver-assigned logical call
// ID. The ID travels in the request envelope and keys the fault plane's
// decisions, so a driver that assigns IDs deterministically (rpcbench's
// chaos mode numbers worker w's i-th call w*per+i) gets fault schedules
// that replay identically regardless of goroutine interleaving.
func ContextWithCallID(ctx context.Context, id uint64) context.Context {
	return context.WithValue(ctx, callIDCtxKey{}, id)
}

// CallIDFromContext extracts the logical call ID, reporting whether one
// was assigned.
func CallIDFromContext(ctx context.Context) (uint64, bool) {
	id, ok := ctx.Value(callIDCtxKey{}).(uint64)
	return id, ok
}

// contextWithAttempt records the retry attempt number (0 = first try);
// the retry layer sets it so the fault plane can key per-attempt
// decisions.
func contextWithAttempt(ctx context.Context, attempt uint32) context.Context {
	return context.WithValue(ctx, attemptCtxKey{}, attempt)
}

// attemptFromContext extracts the retry attempt number (0 when unset).
func attemptFromContext(ctx context.Context) uint32 {
	a, _ := ctx.Value(attemptCtxKey{}).(uint32)
	return a
}

// hedgeAttemptBit marks a hedged leg's attempt key so primary and hedge
// draw from independent fault-decision streams.
const hedgeAttemptBit uint32 = 1 << 31

// ContextWithTrace attaches tracing state to a context.
func ContextWithTrace(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceFromContext extracts tracing state, reporting whether any exists.
func TraceFromContext(ctx context.Context) (TraceContext, bool) {
	tc, ok := ctx.Value(traceCtxKey{}).(TraceContext)
	return tc, ok
}

// Process-wide ID allocation. Span IDs are sequential; trace IDs are the
// mixed output of a counter so that modulo-based head sampling sees a
// uniform stream.
var (
	spanCounter  atomic.Uint64
	traceCounter atomic.Uint64
)

// nextSpanID allocates a unique span ID (never 0: 0 means "no parent").
func nextSpanID() trace.SpanID { return trace.SpanID(spanCounter.Add(1)) }

// nextTraceID allocates a well-mixed unique trace ID.
func nextTraceID() trace.TraceID {
	x := traceCounter.Add(1)
	// SplitMix64 finalizer for dispersion.
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return trace.TraceID(x ^ (x >> 31))
}
