package stubby

import (
	"context"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rpcscale/internal/trace"
)

func TestClientInterceptorOrder(t *testing.T) {
	ch, _ := testSetup(t, Options{}, map[string]Handler{"svc/Echo": echoHandler})
	var order []string
	var mu sync.Mutex
	mk := func(name string) ClientInterceptor {
		return func(ctx context.Context, method string, p []byte, next CallFunc) ([]byte, error) {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			return next(ctx, method, p)
		}
	}
	call := ch.Intercepted(mk("outer"), mk("inner"))
	if _, err := call(context.Background(), "svc/Echo", []byte("x")); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != "outer" || order[1] != "inner" {
		t.Fatalf("order = %v", order)
	}
}

func TestRetryTransientFailure(t *testing.T) {
	var attempts atomic.Int32
	ch, _ := testSetup(t, Options{}, map[string]Handler{
		"svc/Flaky": func(ctx context.Context, p []byte) ([]byte, error) {
			if attempts.Add(1) < 3 {
				return nil, Errorf(trace.Unavailable, "transient")
			}
			return []byte("ok"), nil
		},
	})
	call := ch.Intercepted(WithRetry(DefaultRetryPolicy()))
	out, err := call(context.Background(), "svc/Flaky", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "ok" || attempts.Load() != 3 {
		t.Fatalf("out=%q attempts=%d", out, attempts.Load())
	}
}

func TestRetryPermanentErrorNotRetried(t *testing.T) {
	var attempts atomic.Int32
	ch, _ := testSetup(t, Options{}, map[string]Handler{
		"svc/Denied": func(ctx context.Context, p []byte) ([]byte, error) {
			attempts.Add(1)
			return nil, Errorf(trace.NoPermission, "no")
		},
	})
	call := ch.Intercepted(WithRetry(DefaultRetryPolicy()))
	_, err := call(context.Background(), "svc/Denied", []byte("x"))
	if Code(err) != trace.NoPermission {
		t.Fatalf("err = %v", err)
	}
	if attempts.Load() != 1 {
		t.Fatalf("permanent error retried %d times", attempts.Load())
	}
}

func TestRetryExhaustion(t *testing.T) {
	var attempts atomic.Int32
	ch, _ := testSetup(t, Options{}, map[string]Handler{
		"svc/Down": func(ctx context.Context, p []byte) ([]byte, error) {
			attempts.Add(1)
			return nil, Errorf(trace.Unavailable, "still down")
		},
	})
	policy := RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond}
	call := ch.Intercepted(WithRetry(policy))
	_, err := call(context.Background(), "svc/Down", []byte("x"))
	if Code(err) != trace.Unavailable {
		t.Fatalf("err = %v", err)
	}
	if attempts.Load() != 4 {
		t.Fatalf("attempts = %d, want 4", attempts.Load())
	}
}

func TestRetryHonorsContextDuringBackoff(t *testing.T) {
	ch, _ := testSetup(t, Options{}, map[string]Handler{
		"svc/Down": func(ctx context.Context, p []byte) ([]byte, error) {
			return nil, Errorf(trace.Unavailable, "down")
		},
	})
	policy := RetryPolicy{MaxAttempts: 10, BaseBackoff: time.Hour}
	call := ch.Intercepted(WithRetry(policy))
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := call(ctx, "svc/Down", []byte("x"))
	if err == nil {
		t.Fatal("expected error")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("backoff ignored the context")
	}
}

func TestRetryableCodesCustom(t *testing.T) {
	p := RetryPolicy{RetryableCodes: []trace.ErrorCode{trace.Internal}}
	if !p.retryable(trace.Internal) || p.retryable(trace.Unavailable) {
		t.Fatal("custom retryable set not honored")
	}
	d := RetryPolicy{}
	if !d.retryable(trace.Unavailable) || !d.retryable(trace.NoResource) || d.retryable(trace.NoPermission) {
		t.Fatal("default retryable set wrong")
	}
}

func poolSetup(t *testing.T, opts Options, handlers map[string]Handler, size int) (*Pool, *Server) {
	t.Helper()
	srv := NewServer(opts)
	for m, h := range handlers {
		srv.Register(m, h)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	pool, err := NewPool(l.Addr().String(), "pool-test", size, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		pool.Close()
		srv.Close()
	})
	return pool, srv
}

func TestPoolBasicCalls(t *testing.T) {
	pool, _ := poolSetup(t, Options{}, map[string]Handler{"svc/Echo": echoHandler}, 4)
	if pool.Size() != 4 {
		t.Fatalf("size = %d", pool.Size())
	}
	for i := 0; i < 20; i++ {
		out, err := pool.Call(context.Background(), "svc/Echo", []byte("hi"))
		if err != nil {
			t.Fatal(err)
		}
		if string(out) != "hi" {
			t.Fatalf("out = %q", out)
		}
	}
}

func TestPoolSurvivesChannelDeath(t *testing.T) {
	pool, _ := poolSetup(t, Options{}, map[string]Handler{"svc/Echo": echoHandler}, 3)
	// Kill one member behind the pool's back.
	pool.mu.Lock()
	victim := pool.channels[0]
	pool.mu.Unlock()
	victim.Close()
	// All subsequent calls must still succeed (retry on another member).
	for i := 0; i < 10; i++ {
		if _, err := pool.Call(context.Background(), "svc/Echo", []byte("x")); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
}

func TestPoolHedgedAcrossMembers(t *testing.T) {
	var n atomic.Int32
	pool, _ := poolSetup(t, Options{Workers: 8}, map[string]Handler{
		"svc/Lumpy": func(ctx context.Context, p []byte) ([]byte, error) {
			if n.Add(1)%2 == 1 {
				select {
				case <-time.After(200 * time.Millisecond):
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}
			return []byte("ok"), nil
		},
	}, 2)
	start := time.Now()
	out, err := pool.CallHedged(context.Background(), "svc/Lumpy", []byte("q"), 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "ok" {
		t.Fatalf("out = %q", out)
	}
	if time.Since(start) > 150*time.Millisecond {
		t.Fatalf("hedge did not rescue the straggler: %v", time.Since(start))
	}
}

func TestPoolCallAfterClose(t *testing.T) {
	pool, _ := poolSetup(t, Options{}, map[string]Handler{"svc/Echo": echoHandler}, 2)
	pool.Close()
	if _, err := pool.Call(context.Background(), "svc/Echo", []byte("x")); Code(err) != trace.Unavailable {
		t.Fatalf("err = %v", err)
	}
	if _, err := pool.Ping(context.Background()); Code(err) != trace.Unavailable {
		t.Fatalf("ping err = %v", err)
	}
}

func TestPoolPing(t *testing.T) {
	pool, _ := poolSetup(t, Options{}, nil, 2)
	rtt, err := pool.Ping(context.Background())
	if err != nil || rtt <= 0 {
		t.Fatalf("rtt=%v err=%v", rtt, err)
	}
}

func TestPoolDialFailure(t *testing.T) {
	if _, err := NewPool("127.0.0.1:1", "x", 2, Options{}); err == nil {
		t.Fatal("expected dial failure")
	}
}

// --- Failure injection on the plain channel ---

func TestServerAbruptCloseFailsPending(t *testing.T) {
	opts := Options{}
	srv := NewServer(opts)
	srv.Register("svc/Hang", func(ctx context.Context, p []byte) ([]byte, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	ch, err := Dial(l.Addr().String(), "x", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer ch.Close()

	done := make(chan error, 1)
	go func() {
		_, err := ch.Call(context.Background(), "svc/Hang", []byte("x"))
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	l.Close()
	srv.Close() // kills connections; client must see Unavailable
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("expected failure after server close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pending call hung after server death")
	}
}

func TestServerOverloadShedsLoad(t *testing.T) {
	// One worker, tiny receive queue: a burst must produce NoResource
	// rejections (the §4.4 "no resource" class), not deadlock.
	release := make(chan struct{})
	opts := Options{Workers: 1, RecvQueueLen: 1, SendQueueLen: 64}
	srv := NewServer(opts)
	srv.Register("svc/Slow", func(ctx context.Context, p []byte) ([]byte, error) {
		<-release
		return p, nil
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()
	ch, err := Dial(l.Addr().String(), "x", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer ch.Close()

	const burst = 16
	errs := make(chan error, burst)
	for i := 0; i < burst; i++ {
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_, err := ch.Call(ctx, "svc/Slow", []byte("x"))
			errs <- err
		}()
	}
	time.Sleep(100 * time.Millisecond)
	close(release)
	shed := 0
	for i := 0; i < burst; i++ {
		if err := <-errs; err != nil && Code(err) == trace.NoResource {
			shed++
		}
	}
	if shed == 0 {
		t.Fatal("overload produced no NoResource rejections")
	}
}

func TestConcurrentCloseRace(t *testing.T) {
	ch, _ := testSetup(t, Options{}, map[string]Handler{"svc/Echo": echoHandler})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			defer cancel()
			_, _ = ch.Call(ctx, "svc/Echo", []byte("x"))
		}()
	}
	wg.Add(2)
	go func() { defer wg.Done(); ch.Close() }()
	go func() { defer wg.Done(); ch.Close() }()
	wg.Wait() // must not panic or deadlock
}
