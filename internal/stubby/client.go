package stubby

import (
	"context"
	"errors"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rpcscale/internal/compressor"
	"rpcscale/internal/faultplane"
	"rpcscale/internal/secure"
	"rpcscale/internal/trace"
	"rpcscale/internal/wire"
)

// Channel is a client connection to one server: it owns a send queue
// drained by a sender goroutine (ClientSendQueue), a reader goroutine
// that dispatches responses to waiting calls (ClientRecvQueue), and the
// per-call instrumentation that assembles the nine-component breakdown.
type Channel struct {
	opts          Options
	serverCluster string
	tr            *transport
	comp          *compressor.Compressor
	// epoch anchors the channel's monotonic per-call timestamps: every
	// instrumentation point records time.Since(epoch) nanoseconds in an
	// atomic int64 instead of boxing a *time.Time per event.
	epoch time.Time

	// invoke is the configured call path: the raw attempt wrapped by the
	// retry layer (Options.Retry) and the circuit breaker
	// (Options.Breaker), when enabled. Call goes through it.
	invoke  CallFunc
	breaker *Breaker

	sendQ      chan *clientCall
	nextStream atomic.Uint64

	mu      sync.Mutex
	pending map[uint64]*clientCall
	streams map[uint64]*ServerStream

	pingMu   sync.Mutex
	pingCh   chan time.Time
	lastPing time.Time

	closed    chan struct{}
	closeOnce sync.Once
	err       atomic.Pointer[channelError] // error that killed the channel
	loops     sync.WaitGroup
}

// clientCall tracks one in-flight RPC. Timestamps are nanoseconds since
// the channel epoch; 0 means "not reached".
type clientCall struct {
	req        request
	streamID   uint64
	dropped    bool  // fault plane: swallow the request instead of sending
	enqueuedNs int64 // entered the send queue
	// deqNs and sentNs are written by the sender goroutine while the
	// calling goroutine may be timing out concurrently, so they are
	// published atomically.
	deqNs    atomic.Int64 // sender dequeued (end of ClientSendQueue)
	sentNs   atomic.Int64 // frame written (end of ReqProcStack)
	resultCh chan *callResult
}

// channelError boxes the error that killed a channel so it can live in an
// atomic.Pointer regardless of its dynamic type.
type channelError struct{ err error }

// callResult is what the reader delivers to a waiting call. resp.Payload
// aliases buf, a pooled recv buffer the waiting call returns with
// wire.PutBuf after copying the payload out.
type callResult struct {
	resp   response
	buf    []byte
	rxAtNs int64 // response frame fully read + decoded
	netErr error
}

// sinceEpoch returns the channel-relative monotonic timestamp, always > 0
// so 0 can mean "not recorded".
func (c *Channel) sinceEpoch() int64 { return int64(time.Since(c.epoch)) + 1 }

// Dial connects to addr over TCP and returns a channel. serverCluster
// labels spans with the callee's placement (a real stack learns it from
// the handshake).
func Dial(addr, serverCluster string, opts Options) (*Channel, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		// Status-code the failure: a refused/unroutable backend is the
		// same Unavailable the paper's taxonomy records for dead peers.
		return nil, Errorf(trace.Unavailable, "dial %s: %v", addr, err)
	}
	return NewChannel(conn, serverCluster, opts)
}

// NewChannel builds a channel over an existing connection (e.g. net.Pipe
// in tests).
func NewChannel(conn net.Conn, serverCluster string, opts Options) (*Channel, error) {
	o := opts.withDefaults()
	tr, err := newTransport(conn, o.Secret, "c2s", "s2c", o.EncryptionStats)
	if err != nil {
		conn.Close()
		return nil, Errorf(trace.Internal, "transport setup: %v", err)
	}
	c := &Channel{
		opts:          o,
		serverCluster: serverCluster,
		tr:            tr,
		comp:          compressor.New(o.Compression, o.CompressorStats),
		epoch:         time.Now(),
		sendQ:         make(chan *clientCall, o.SendQueueLen),
		pending:       make(map[uint64]*clientCall),
		closed:        make(chan struct{}),
	}
	c.invoke = func(ctx context.Context, method string, payload []byte) ([]byte, error) {
		return c.call(ctx, method, payload, false)
	}
	if o.Retry != nil {
		policy, obs, inner := *o.Retry, o.Robustness, c.invoke
		c.invoke = func(ctx context.Context, method string, payload []byte) ([]byte, error) {
			return retryCall(ctx, method, payload, policy, obs, inner)
		}
	}
	if o.Breaker != nil {
		// Breaker outside retry: an open circuit spends no attempts.
		c.breaker = NewBreaker(*o.Breaker, o.Robustness)
		c.invoke = c.breaker.Wrap(c.invoke)
	}
	c.loops.Add(2)
	go c.sendLoop()
	go c.readLoop()
	return c, nil
}

// Call issues a unary RPC and blocks for the response, the context's
// cancellation, or the deadline. When the channel was configured with
// Options.Retry or Options.Breaker, Call goes through those layers;
// CallHedged and hand-built interceptor chains bypass them.
func (c *Channel) Call(ctx context.Context, method string, payload []byte) ([]byte, error) {
	return c.invoke(ctx, method, payload)
}

// Breaker returns the channel's circuit breaker, nil unless
// Options.Breaker was set.
func (c *Channel) Breaker() *Breaker { return c.breaker }

func (c *Channel) call(ctx context.Context, method string, payload []byte, hedged bool) ([]byte, error) {
	// Resolve tracing state: child span of the caller, or a new root.
	parent, ok := TraceFromContext(ctx)
	tc := TraceContext{SpanID: nextSpanID()}
	var parentSpan trace.SpanID
	if ok {
		tc.TraceID = parent.TraceID
		parentSpan = parent.SpanID
	} else {
		tc.TraceID = nextTraceID()
	}

	// Identify the attempt for the fault plane and server-side retry
	// accounting: the driver-assigned call ID (if any) plus the retry
	// attempt number, with hedged legs marked so they draw independent
	// fault decisions.
	attempt := attemptFromContext(ctx)
	if hedged {
		attempt |= hedgeAttemptBit
	}
	callID, haveID := CallIDFromContext(ctx)

	var dec faultplane.Decision
	if c.opts.Faults != nil {
		dec = c.opts.Faults.Decide(faultplane.ScopeClient, method,
			faultplane.Key{Seq: callID, Have: haveID, Attempt: attempt})
		if dec.Reject != trace.OK {
			return nil, c.finish(nil, method, tc, parentSpan, payload, nil, dec.Reject, hedged)
		}
		if dec.Delay > 0 {
			// The injected delay runs in the caller's goroutine (not the
			// sender's) so concurrent calls do not serialize behind it.
			t := time.NewTimer(dec.Delay)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return nil, c.finish(nil, method, tc, parentSpan, payload, nil, cancelCode(ctx), hedged)
			case <-c.closed:
				t.Stop()
				return nil, c.finish(nil, method, tc, parentSpan, payload, nil, trace.Unavailable, hedged)
			}
		}
		if dec.Corrupt {
			// Mangle a copy; the caller's buffer may be reused.
			payload = append([]byte(nil), payload...)
			faultplane.CorruptPayload(payload)
		}
	}

	deadline := c.opts.DefaultDeadline
	if dl, has := ctx.Deadline(); has {
		deadline = time.Until(dl)
	}
	if deadline <= 0 {
		return nil, c.finish(nil, method, tc, parentSpan, payload, nil, trace.DeadlineExceeded, hedged)
	}

	var callSeq uint64
	if haveID {
		callSeq = callID + 1
	}
	call := &clientCall{
		req: request{
			Method:     method,
			TraceID:    tc.TraceID,
			SpanID:     tc.SpanID,
			ParentSpan: parentSpan,
			Deadline:   deadline,
			Payload:    payload,
			Hedged:     hedged,
			CallSeq:    callSeq,
			Attempt:    attempt,
		},
		dropped:    dec.Drop,
		enqueuedNs: c.sinceEpoch(),
		resultCh:   make(chan *callResult, 1),
	}
	streamID := c.nextStream.Add(1)
	call.streamID = streamID

	c.mu.Lock()
	select {
	case <-c.closed:
		c.mu.Unlock()
		return nil, c.finish(nil, method, tc, parentSpan, payload, nil, trace.Unavailable, hedged)
	default:
	}
	c.pending[streamID] = call
	c.mu.Unlock()

	// Enqueue onto the send queue; a full queue is back-pressure, so we
	// block until space, cancellation, or channel death.
	select {
	case c.sendQ <- call:
	case <-ctx.Done():
		c.abandon(streamID)
		return nil, c.finish(call, method, tc, parentSpan, payload, nil, cancelCode(ctx), hedged)
	case <-c.closed:
		c.abandon(streamID)
		return nil, c.finish(call, method, tc, parentSpan, payload, nil, trace.Unavailable, hedged)
	}

	select {
	case res := <-call.resultCh:
		rcvdNs := c.sinceEpoch()
		if res.netErr != nil {
			return nil, c.finish(call, method, tc, parentSpan, payload, nil, trace.Unavailable, hedged)
		}
		resp := &res.resp
		// Copy the payload out of the pooled recv buffer and release it:
		// the caller owns the returned bytes outright.
		out, derr := c.copyOut(resp, res.buf)
		res.buf = nil
		if derr != nil {
			return nil, c.finish(call, method, tc, parentSpan, payload, nil, trace.Internal, hedged)
		}
		if c.opts.Collector != nil || c.opts.Telemetry != nil {
			c.emit(c.buildSpan(call, method, tc, parentSpan, payload, out, resp, res.rxAtNs, rcvdNs, hedged))
		}
		if resp.Code != trace.OK {
			return nil, &Status{Code: resp.Code, Message: resp.Message}
		}
		return out, nil
	case <-ctx.Done():
		c.abandon(streamID)
		_ = c.tr.send(wire.FrameCancel, streamID, nil)
		return nil, c.finish(call, method, tc, parentSpan, payload, nil, cancelCode(ctx), hedged)
	case <-c.closed:
		c.abandon(streamID)
		return nil, c.finish(call, method, tc, parentSpan, payload, nil, trace.Unavailable, hedged)
	}
}

// copyOut materializes the response payload for the caller — who owns the
// returned slice outright — and releases the pooled recv buffer backing
// resp.Payload. resp.Payload must not be used after copyOut returns.
func (c *Channel) copyOut(resp *response, buf []byte) ([]byte, error) {
	out := resp.Payload
	if resp.Compressed {
		dec, err := c.comp.Decompress(out)
		if err != nil {
			wire.PutBuf(buf)
			return nil, err
		}
		if len(dec) > 0 && len(out) > 0 && &dec[0] == &out[0] {
			// Pass-through decompressor: the output still aliases the
			// pooled buffer, so it needs its own copy.
			dec = append([]byte(nil), dec...)
		}
		wire.PutBuf(buf)
		return dec, nil
	}
	var cp []byte
	if out != nil {
		cp = make([]byte, len(out))
		copy(cp, out)
	}
	wire.PutBuf(buf)
	return cp, nil
}

func cancelCode(ctx context.Context) trace.ErrorCode {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return trace.DeadlineExceeded
	}
	return trace.Cancelled
}

// abandon removes a pending call so a late response is dropped.
func (c *Channel) abandon(streamID uint64) {
	c.mu.Lock()
	delete(c.pending, streamID)
	c.mu.Unlock()
}

// finish emits an error span and returns the matching error.
func (c *Channel) finish(call *clientCall, method string, tc TraceContext, parentSpan trace.SpanID, reqPayload, respPayload []byte, code trace.ErrorCode, hedged bool) error {
	span := &trace.Span{
		TraceID:       tc.TraceID,
		SpanID:        tc.SpanID,
		ParentID:      parentSpan,
		Method:        method,
		Service:       ServiceOf(method),
		ClientCluster: c.opts.ClusterName,
		ServerCluster: c.serverCluster,
		RequestBytes:  int64(len(reqPayload)),
		ResponseBytes: int64(len(respPayload)),
		Err:           code,
		Hedged:        hedged,
	}
	if call != nil {
		if deq := call.deqNs.Load(); deq != 0 {
			span.Breakdown[trace.ClientSendQueue] = time.Duration(deq - call.enqueuedNs)
			if sent := call.sentNs.Load(); sent != 0 {
				span.Breakdown[trace.ReqProcStack] = time.Duration(sent - deq)
			}
		}
	}
	c.emit(span)
	switch code {
	case trace.OK:
		return nil
	case trace.Cancelled:
		return ErrCancelled
	case trace.DeadlineExceeded:
		return ErrDeadlineExceeded
	case trace.Unavailable:
		if ce := c.err.Load(); ce != nil && ce.err != nil {
			return &Status{Code: trace.Unavailable, Message: ce.err.Error()}
		}
		return ErrUnavailable
	default:
		return &Status{Code: code, Message: code.String()}
	}
}

// buildSpan assembles the full nine-component breakdown from client
// timestamps and the server-reported timings.
func (c *Channel) buildSpan(call *clientCall, method string, tc TraceContext, parentSpan trace.SpanID, reqPayload, respPayload []byte, resp *response, rxAtNs, rcvdNs int64, hedged bool) *trace.Span {
	var b trace.Breakdown
	deq, sent := call.deqNs.Load(), call.sentNs.Load()
	if deq != 0 {
		b[trace.ClientSendQueue] = time.Duration(deq - call.enqueuedNs)
		if sent != 0 {
			b[trace.ReqProcStack] = time.Duration(sent - deq)
		}
	}
	b[trace.ServerRecvQueue] = resp.Timings.RecvQueue
	b[trace.ServerApp] = resp.Timings.App
	b[trace.ServerSendQueue] = resp.Timings.SendQueue
	b[trace.RespProcStack] = resp.Timings.RespProc
	b[trace.ClientRecvQueue] = time.Duration(rcvdNs - rxAtNs)

	// Wire time is everything between the request leaving the client and
	// the response arriving, minus the server's residence time. Split it
	// between the directions in proportion to bytes moved.
	var wireTotal time.Duration
	if sent != 0 {
		wireTotal = time.Duration(rxAtNs-sent) - resp.Timings.Elapsed
	}
	if wireTotal < 0 {
		wireTotal = 0
	}
	reqB, respB := float64(len(reqPayload)+64), float64(len(respPayload)+64)
	reqFrac := reqB / (reqB + respB)
	b[trace.ReqNetworkWire] = time.Duration(float64(wireTotal) * reqFrac)
	b[trace.RespNetworkWire] = wireTotal - b[trace.ReqNetworkWire]

	return &trace.Span{
		TraceID:       tc.TraceID,
		SpanID:        tc.SpanID,
		ParentID:      parentSpan,
		Method:        method,
		Service:       ServiceOf(method),
		ClientCluster: c.opts.ClusterName,
		ServerCluster: c.serverCluster,
		Breakdown:     b,
		RequestBytes:  int64(len(reqPayload)),
		ResponseBytes: int64(len(respPayload)),
		Err:           resp.Code,
		Hedged:        hedged,
	}
}

func (c *Channel) emit(span *trace.Span) error {
	if c.opts.Collector != nil {
		c.opts.Collector.Collect(span)
	}
	if c.opts.Telemetry != nil {
		c.opts.Telemetry.Observe(span)
	}
	return nil
}

// ServiceOf extracts the service name from a fully qualified method
// ("service.Type/Method" -> "service").
func ServiceOf(method string) string {
	if i := strings.IndexAny(method, "./"); i > 0 {
		return method[:i]
	}
	return method
}

// sendBatchBytes bounds how many marshalled request bytes one drain pass
// of the sendLoop accumulates before flushing, in the style of gRPC's
// loopyWriter: after blocking on the first queued call, further pending
// calls are drained non-blockingly and the whole batch leaves in one
// write, amortizing the syscall across concurrent callers.
const sendBatchBytes = 128 << 10

// sendLoop drains the send queue: compression, marshalling, encryption,
// and the write — the client side of ReqProcStack.
func (c *Channel) sendLoop() {
	defer c.loops.Done()
	batch := make([]*clientCall, 0, 32)
	envs := make([][]byte, 0, 32)
	for {
		select {
		case call := <-c.sendQ:
			batch, envs = batch[:0], envs[:0]
			size := 0
			batch, envs, size = c.prepareCall(call, batch, envs, size)
		drain:
			for size < sendBatchBytes {
				select {
				case next := <-c.sendQ:
					batch, envs, size = c.prepareCall(next, batch, envs, size)
				default:
					break drain
				}
			}
			c.flushBatch(batch, envs)
		case <-c.closed:
			return
		}
	}
}

// prepareCall stamps the dequeue timestamp and marshals one call's
// request envelope into a pooled buffer, appending it to the batch.
func (c *Channel) prepareCall(call *clientCall, batch []*clientCall, envs [][]byte, size int) ([]*clientCall, [][]byte, int) {
	call.deqNs.Store(c.sinceEpoch())
	if call.dropped {
		// Fault plane: the request vanishes. The call stays pending until
		// its deadline expires, exactly like a packet lost past the
		// transport's visibility.
		return batch, envs, size
	}
	req := &call.req
	if c.opts.Compression != compressor.None && len(req.Payload) >= c.opts.CompressThreshold {
		if compressed, err := c.comp.Compress(req.Payload); err == nil && len(compressed) < len(req.Payload) {
			req.Payload = compressed
			req.Compressed = true
		}
	}
	env := appendRequest(wire.GetBuf(len(req.Payload)+len(req.Method)+envelopeOverhead), req)
	if len(env)+secure.Overhead > wire.MaxFrameSize {
		wire.PutBuf(env)
		c.failCall(call, wire.ErrFrameTooLarge)
		return batch, envs, size
	}
	return append(batch, call), append(envs, env), size + len(env)
}

// flushBatch seals every prepared envelope into the transport's write
// buffer and flushes them with a single write.
func (c *Channel) flushBatch(batch []*clientCall, envs [][]byte) {
	if len(batch) == 0 {
		return
	}
	c.mu.Lock()
	for i, call := range batch {
		if _, live := c.pending[call.streamID]; !live {
			batch[i] = nil // abandoned before send
		}
	}
	c.mu.Unlock()
	c.tr.lockSend()
	var err error
	for i, call := range batch {
		if call == nil {
			continue
		}
		if err = c.tr.appendLocked(wire.FrameRequest, call.streamID, envs[i]); err != nil {
			break
		}
	}
	if err == nil {
		err = c.tr.flushLocked()
	}
	c.tr.unlockSend()
	sentNs := c.sinceEpoch()
	for i, call := range batch {
		wire.PutBuf(envs[i])
		if call == nil {
			continue
		}
		if err != nil {
			c.failCall(call, err)
		} else {
			call.sentNs.Store(sentNs)
		}
	}
}

func (c *Channel) failCall(call *clientCall, err error) {
	select {
	case call.resultCh <- &callResult{netErr: err}:
	default:
	}
}

// readLoop dispatches incoming frames to waiting calls.
func (c *Channel) readLoop() {
	defer c.loops.Done()
	for {
		f, plain, err := c.tr.recv()
		if err != nil {
			c.fail(err)
			return
		}
		switch f.Type {
		case wire.FrameResponse:
			rxNs := c.sinceEpoch()
			if st := c.lookupStream(f.StreamID); st != nil {
				resp := new(response)
				if perr := parseResponseInto(resp, plain); perr != nil {
					wire.PutBuf(plain)
					st.fail(perr)
					c.dropStream(f.StreamID)
					continue
				}
				// Stream deliveries outlive this loop iteration, so the
				// payload gets its own copy and the pooled buffer is
				// recycled immediately.
				resp.Payload = append([]byte(nil), resp.Payload...)
				wire.PutBuf(plain)
				st.deliver(resp)
				continue
			}
			c.mu.Lock()
			call := c.pending[f.StreamID]
			delete(c.pending, f.StreamID)
			c.mu.Unlock()
			if call == nil {
				wire.PutBuf(plain)
				continue // cancelled or duplicate
			}
			res := &callResult{buf: plain, rxAtNs: rxNs}
			if perr := parseResponseInto(&res.resp, plain); perr != nil {
				wire.PutBuf(plain)
				c.failCall(call, perr)
				continue
			}
			// Ownership of the pooled buffer travels with the result; the
			// waiting call releases it after copying the payload out.
			call.resultCh <- res
		case wire.FramePong:
			wire.PutBuf(plain)
			c.pingMu.Lock()
			ch := c.pingCh
			c.pingCh = nil
			c.pingMu.Unlock()
			if ch != nil {
				ch <- time.Now()
			}
		case wire.FrameGoAway:
			wire.PutBuf(plain)
			c.fail(ErrUnavailable)
			return
		default:
			wire.PutBuf(plain)
		}
	}
}

// Ping measures transport round-trip time, including encryption but not
// queuing or handlers.
func (c *Channel) Ping(ctx context.Context) (time.Duration, error) {
	ch := make(chan time.Time, 1)
	c.pingMu.Lock()
	if c.pingCh != nil {
		c.pingMu.Unlock()
		return 0, Errorf(trace.NoResource, "ping already in flight")
	}
	c.pingCh = ch
	c.pingMu.Unlock()
	start := time.Now()
	if err := c.tr.send(wire.FramePing, 0, nil); err != nil {
		c.pingMu.Lock()
		c.pingCh = nil
		c.pingMu.Unlock()
		return 0, Errorf(trace.Unavailable, "ping send: %v", err)
	}
	select {
	case end := <-ch:
		return end.Sub(start), nil
	case <-ctx.Done():
		c.pingMu.Lock()
		c.pingCh = nil
		c.pingMu.Unlock()
		return 0, codeToError(cancelCode(ctx))
	case <-c.closed:
		return 0, ErrUnavailable
	}
}

// fail kills the channel: all pending and future calls error out.
func (c *Channel) fail(err error) {
	c.err.Store(&channelError{err: err})
	c.closeOnce.Do(func() { close(c.closed) })
	c.mu.Lock()
	pending := c.pending
	c.pending = make(map[uint64]*clientCall)
	streams := c.streams
	c.streams = nil
	c.mu.Unlock()
	for _, call := range pending {
		c.failCall(call, err)
	}
	for _, st := range streams {
		st.fail(ErrUnavailable)
	}
}

// Close shuts the channel down. Pending calls fail with Unavailable.
func (c *Channel) Close() error {
	c.fail(ErrUnavailable)
	err := c.tr.close()
	c.loops.Wait()
	return err
}
