package stubby

import (
	"context"
	"errors"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rpcscale/internal/compressor"
	"rpcscale/internal/faultplane"
	"rpcscale/internal/secure"
	"rpcscale/internal/trace"
	"rpcscale/internal/wire"
)

// Channel is a client connection to one server: it owns a send queue
// drained by a sender goroutine (ClientSendQueue), a reader goroutine
// that dispatches responses to waiting calls (ClientRecvQueue), and the
// per-call instrumentation that assembles the nine-component breakdown.
type Channel struct {
	opts          Options
	serverCluster string
	tr            *transport
	comp          *compressor.Compressor
	// gate is the adaptive-compression decision state, owned by the
	// sendLoop goroutine; nil when Options.AdaptiveCompression is off.
	gate *compressGate
	// epoch anchors the channel's monotonic per-call timestamps: every
	// instrumentation point records time.Since(epoch) nanoseconds in an
	// atomic int64 instead of boxing a *time.Time per event.
	epoch time.Time

	// invoke is the configured call path: the raw attempt wrapped by the
	// retry layer (Options.Retry) and the circuit breaker
	// (Options.Breaker), when enabled. Call goes through it.
	invoke  CallFunc
	breaker *Breaker

	sendQ      chan *clientCall
	nextStream atomic.Uint64

	// serverLoad caches the most recent load report the server piggybacked
	// on a response envelope (see DESIGN.md §13); balancing policies read
	// it through Pool.Load without any extra wire traffic.
	serverLoad atomic.Int64

	mu      sync.Mutex
	pending map[uint64]*clientCall
	streams map[uint64]*Stream

	pingMu   sync.Mutex
	pingCh   chan time.Time
	lastPing time.Time

	closed    chan struct{}
	closeOnce sync.Once
	err       atomic.Pointer[channelError] // error that killed the channel
	loops     sync.WaitGroup

	// Connection striping (DESIGN.md §16): when Dial opened K stripes,
	// stripes lists them all (this channel is stripes[0]) and bulk calls
	// and streams round-robin across them with per-call affinity. Unary
	// envelope traffic stays on stripe 0. onFail, when set, replaces
	// failLocal so any stripe's death condemns the whole striped channel.
	stripes    []*Channel
	stripeCtr  atomic.Uint32
	stripeOnce sync.Once
	onFail     func(error)
}

// clientCall tracks one in-flight RPC. Timestamps are nanoseconds since
// the channel epoch; 0 means "not reached".
type clientCall struct {
	req      request
	streamID uint64
	dropped  bool // fault plane: swallow the request instead of sending
	// bulk routes this call through the zero-copy bulk lane: the payload
	// leaves as chunk frames after a FrameBulkRequest envelope instead of
	// riding inside it. bulkPayload is set by prepareCall.
	bulk        bool
	bulkPayload []byte
	enqueuedNs  int64 // entered the send queue
	// deqNs and sentNs are written by the sender goroutine while the
	// calling goroutine may be timing out concurrently, so they are
	// published atomically.
	deqNs    atomic.Int64 // sender dequeued (end of ClientSendQueue)
	sentNs   atomic.Int64 // frame written (end of ReqProcStack)
	resultCh chan *callResult
}

// channelError boxes the error that killed a channel so it can live in an
// atomic.Pointer regardless of its dynamic type.
type channelError struct{ err error }

// callResult is what the reader delivers to a waiting call. resp.Payload
// aliases buf, a pooled recv buffer the waiting call returns with
// wire.PutBuf after copying the payload out. For bulk-lane responses
// (bulk set), buf is a dedicated assembly buffer handed to the caller
// outright — no copy-out, no PutBuf (DESIGN.md §12).
type callResult struct {
	resp   response
	buf    []byte
	bulk   bool
	rxAtNs int64 // response frame fully read + decoded
	netErr error
}

// clientBulk assembles one bulk-lane response: the envelope arrives as a
// FrameBulkResponse, the payload as chunk frames on the same stream ID.
type clientBulk struct {
	resp response
	//rpclint:owns pooled chunk assembly; handed to the caller via
	// deliverBulk, who releases it with FreeResponse.
	data []byte
}

// sinceEpoch returns the channel-relative monotonic timestamp, always > 0
// so 0 can mean "not recorded".
func (c *Channel) sinceEpoch() int64 { return int64(time.Since(c.epoch)) + 1 }

// Dial connects to addr over TCP and returns a channel. serverCluster
// labels spans with the callee's placement (a real stack learns it from
// the handshake). With Options.ConnStripes > 1 it opens that many
// connections and stripes bulk calls and streams across them.
func Dial(addr, serverCluster string, opts Options) (*Channel, error) {
	if opts.ConnStripes > 1 {
		return dialStriped(addr, serverCluster, opts)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		// Status-code the failure: a refused/unroutable backend is the
		// same Unavailable the paper's taxonomy records for dead peers.
		return nil, Errorf(trace.Unavailable, "dial %s: %v", addr, err)
	}
	return NewChannel(conn, serverCluster, opts)
}

// dialStriped opens Options.ConnStripes connections to addr and welds
// them into one logical channel: stripes[0] (the returned channel)
// carries all unary envelope traffic and the robustness layers; bulk
// calls and streams round-robin across every stripe. Any stripe failure
// fails them all — the striped channel is one logical connection.
func dialStriped(addr, serverCluster string, opts Options) (*Channel, error) {
	n := opts.ConnStripes
	chans := make([]*Channel, 0, n)
	teardown := func() {
		for _, s := range chans {
			s.failLocal(ErrUnavailable)
			s.tr.close()
			s.tr.stopCodec()
		}
	}
	for i := 0; i < n; i++ {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			teardown()
			return nil, Errorf(trace.Unavailable, "dial %s (stripe %d): %v", addr, i, err)
		}
		so := opts
		if i > 0 {
			// The robustness layers wrap the parent's invoke chain; extra
			// stripes are pure data-plane connections.
			so.Retry, so.Breaker = nil, nil
		}
		s, err := newChannelNoLoops(conn, serverCluster, so.withDefaults())
		if err != nil {
			teardown()
			return nil, err
		}
		chans = append(chans, s)
	}
	parent := chans[0]
	parent.stripes = chans
	for _, s := range chans {
		s.onFail = parent.stripeFail
	}
	for _, s := range chans {
		s.start()
	}
	return parent, nil
}

// stripeFail condemns every stripe of a striped channel exactly once.
func (c *Channel) stripeFail(err error) {
	c.stripeOnce.Do(func() {
		for _, s := range c.stripes {
			s.failLocal(err)
		}
	})
}

// stripeFor picks the stripe one call or stream rides: unary envelope
// traffic keeps stripe 0, bulk transfers and streams round-robin. The
// whole call/stream stays on its stripe (per-call affinity), so frame
// order within it is preserved.
func (c *Channel) stripeFor(bulk bool) *Channel {
	if !bulk || len(c.stripes) == 0 {
		return c
	}
	return c.stripes[int(c.stripeCtr.Add(1))%len(c.stripes)]
}

// NewChannel builds a channel over an existing connection (e.g. net.Pipe
// in tests). Options.ConnStripes is ignored here: a channel built over
// one existing conn cannot dial more.
func NewChannel(conn net.Conn, serverCluster string, opts Options) (*Channel, error) {
	c, err := newChannelNoLoops(conn, serverCluster, opts.withDefaults())
	if err != nil {
		return nil, err
	}
	c.start()
	return c, nil
}

// newChannelNoLoops builds a channel without starting its goroutines, so
// a striped dial can finish wiring cross-stripe state first. o must
// already have defaults applied.
func newChannelNoLoops(conn net.Conn, serverCluster string, o Options) (*Channel, error) {
	tr, err := newTransport(conn, o.Secret, "c2s", "s2c", o.EncryptionStats)
	if err != nil {
		conn.Close()
		return nil, Errorf(trace.Internal, "transport setup: %v", err)
	}
	tr.startCodec(codecWorkerCount(o.CodecWorkers), o.DataPlane)
	c := &Channel{
		opts:          o,
		serverCluster: serverCluster,
		tr:            tr,
		comp:          compressor.New(o.Compression, o.CompressorStats),
		epoch:         time.Now(),
		sendQ:         make(chan *clientCall, o.SendQueueLen),
		pending:       make(map[uint64]*clientCall),
		closed:        make(chan struct{}),
	}
	c.gate = newCompressGate(o.AdaptiveCompression && o.Compression != compressor.None,
		o.DataPlane, c.comp.Stats())
	c.invoke = func(ctx context.Context, method string, payload []byte) ([]byte, error) {
		return c.call(ctx, method, payload, false)
	}
	if o.Retry != nil {
		policy, obs, inner := *o.Retry, o.Robustness, c.invoke
		c.invoke = func(ctx context.Context, method string, payload []byte) ([]byte, error) {
			return retryCall(ctx, method, payload, policy, obs, inner)
		}
	}
	if o.Breaker != nil {
		// Breaker outside retry: an open circuit spends no attempts.
		c.breaker = NewBreaker(*o.Breaker, o.Robustness)
		c.invoke = c.breaker.Wrap(c.invoke)
	}
	return c, nil
}

// start launches the channel's connection goroutines.
func (c *Channel) start() {
	c.loops.Add(2)
	go c.sendLoop()
	go c.readLoop()
}

// Call issues a unary RPC and blocks for the response, the context's
// cancellation, or the deadline. When the channel was configured with
// Options.Retry or Options.Breaker, Call goes through those layers;
// CallHedged and hand-built interceptor chains bypass them. Per-call
// options (WithBulkLane, WithBulkThreshold) travel through the context so
// the CallFunc chain stays oblivious to them.
func (c *Channel) Call(ctx context.Context, method string, payload []byte, opts ...CallOption) ([]byte, error) {
	if len(opts) > 0 {
		ctx = ContextWithCallOptions(ctx, opts...)
	}
	return c.invoke(ctx, method, payload)
}

// Breaker returns the channel's circuit breaker, nil unless
// Options.Breaker was set.
func (c *Channel) Breaker() *Breaker { return c.breaker }

func (c *Channel) call(ctx context.Context, method string, payload []byte, hedged bool) ([]byte, error) {
	// Resolve tracing state: child span of the caller, or a new root.
	parent, ok := TraceFromContext(ctx)
	tc := TraceContext{SpanID: nextSpanID()}
	var parentSpan trace.SpanID
	if ok {
		tc.TraceID = parent.TraceID
		parentSpan = parent.SpanID
	} else {
		tc.TraceID = nextTraceID()
	}

	// Identify the attempt for the fault plane and server-side retry
	// accounting: the driver-assigned call ID (if any) plus the retry
	// attempt number, with hedged legs marked so they draw independent
	// fault decisions.
	attempt := attemptFromContext(ctx)
	if hedged {
		attempt |= hedgeAttemptBit
	}
	callID, haveID := CallIDFromContext(ctx)

	var dec faultplane.Decision
	if c.opts.Faults != nil {
		dec = c.opts.Faults.Decide(faultplane.ScopeClient, method,
			faultplane.Key{Seq: callID, Have: haveID, Attempt: attempt})
		if dec.Reject != trace.OK {
			return nil, c.finish(nil, method, tc, parentSpan, payload, nil, dec.Reject, hedged)
		}
		if dec.Delay > 0 {
			// The injected delay runs in the caller's goroutine (not the
			// sender's) so concurrent calls do not serialize behind it.
			t := time.NewTimer(dec.Delay)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return nil, c.finish(nil, method, tc, parentSpan, payload, nil, cancelCode(ctx), hedged)
			case <-c.closed:
				t.Stop()
				return nil, c.finish(nil, method, tc, parentSpan, payload, nil, trace.Unavailable, hedged)
			}
		}
		if dec.Corrupt {
			// Mangle a copy; the caller's buffer may be reused.
			payload = append([]byte(nil), payload...)
			faultplane.CorruptPayload(payload)
		}
	}

	deadline := c.opts.DefaultDeadline
	if dl, has := ctx.Deadline(); has {
		deadline = time.Until(dl)
	}
	if deadline <= 0 {
		return nil, c.finish(nil, method, tc, parentSpan, payload, nil, trace.DeadlineExceeded, hedged)
	}

	var callSeq uint64
	if haveID {
		callSeq = callID + 1
	}
	call := &clientCall{
		req: request{
			Method:     method,
			TraceID:    tc.TraceID,
			SpanID:     tc.SpanID,
			ParentSpan: parentSpan,
			Deadline:   deadline,
			Payload:    payload,
			Hedged:     hedged,
			CallSeq:    callSeq,
			Attempt:    attempt,
		},
		dropped:    dec.Drop,
		bulk:       c.useBulkLane(resolveCallOpts(ctx, nil), len(payload)),
		enqueuedNs: c.sinceEpoch(),
		resultCh:   make(chan *callResult, 1),
	}
	// Stripe affinity: the whole call — envelope, chunks, response — rides
	// one stripe, so its frames stay ordered on one socket.
	sc := c.stripeFor(call.bulk)
	streamID := sc.nextStream.Add(1)
	call.streamID = streamID

	sc.mu.Lock()
	select {
	case <-sc.closed:
		sc.mu.Unlock()
		return nil, c.finish(nil, method, tc, parentSpan, payload, nil, trace.Unavailable, hedged)
	default:
	}
	sc.pending[streamID] = call
	sc.mu.Unlock()

	// Enqueue onto the send queue; a full queue is back-pressure, so we
	// block until space, cancellation, or channel death.
	select {
	case sc.sendQ <- call:
	case <-ctx.Done():
		sc.abandon(streamID)
		return nil, c.finish(call, method, tc, parentSpan, payload, nil, cancelCode(ctx), hedged)
	case <-sc.closed:
		sc.abandon(streamID)
		return nil, c.finish(call, method, tc, parentSpan, payload, nil, trace.Unavailable, hedged)
	}

	select {
	case res := <-call.resultCh:
		rcvdNs := c.sinceEpoch()
		if res.netErr != nil {
			return nil, c.finish(call, method, tc, parentSpan, payload, nil, trace.Unavailable, hedged)
		}
		resp := &res.resp
		var out []byte
		if res.bulk {
			// Bulk lane: the assembly buffer was built for this call alone,
			// so it transfers to the caller as-is — the zero-copy handoff
			// the lane exists for. It may drop to the GC (legal per the
			// DESIGN.md §11 ownership contract) or be recycled with
			// FreeResponse by high-throughput callers.
			out = resp.Payload
			res.buf = nil
		} else {
			// Copy the payload out of the pooled recv buffer and release
			// it: the caller owns the returned bytes outright.
			var derr error
			out, derr = c.copyOut(resp, res.buf)
			res.buf = nil
			if derr != nil {
				return nil, c.finish(call, method, tc, parentSpan, payload, nil, trace.Internal, hedged)
			}
		}
		if c.opts.Collector != nil || c.opts.Telemetry != nil {
			c.emit(c.buildSpan(call, method, tc, parentSpan, payload, out, resp, res.rxAtNs, rcvdNs, hedged))
		}
		if resp.Code != trace.OK {
			return nil, &Status{Code: resp.Code, Message: resp.Message}
		}
		return out, nil
	case <-ctx.Done():
		sc.abandon(streamID)
		_ = sc.tr.send(wire.FrameCancel, streamID, nil)
		return nil, c.finish(call, method, tc, parentSpan, payload, nil, cancelCode(ctx), hedged)
	case <-sc.closed:
		sc.abandon(streamID)
		return nil, c.finish(call, method, tc, parentSpan, payload, nil, trace.Unavailable, hedged)
	}
}

// copyOut materializes the response payload for the caller — who owns the
// returned slice outright — and releases the pooled recv buffer backing
// resp.Payload. resp.Payload must not be used after copyOut returns.
func (c *Channel) copyOut(resp *response, buf []byte) ([]byte, error) {
	out := resp.Payload
	if resp.Compressed {
		dec, err := c.comp.Decompress(out)
		if err != nil {
			wire.PutBuf(buf)
			return nil, err
		}
		if len(dec) > 0 && len(out) > 0 && &dec[0] == &out[0] {
			// Pass-through decompressor: the output still aliases the
			// pooled buffer, so it needs its own copy.
			dec = append([]byte(nil), dec...)
		}
		wire.PutBuf(buf)
		return dec, nil
	}
	var cp []byte
	if out != nil {
		cp = make([]byte, len(out))
		copy(cp, out)
	}
	wire.PutBuf(buf)
	return cp, nil
}

// FreeResponse hands a response buffer returned by Call back to the data
// plane's buffer pool. Responses that rode the bulk lane arrive in a
// pooled buffer that otherwise drops to the GC when the caller is done;
// high-throughput callers recycle it here to keep the receive path
// allocation-free. The caller must own buf outright (no live aliases)
// and must not touch it afterwards. Freeing is always optional — any
// response buffer may simply go out of scope instead.
func FreeResponse(buf []byte) {
	wire.PutBuf(buf)
}

func cancelCode(ctx context.Context) trace.ErrorCode {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return trace.DeadlineExceeded
	}
	return trace.Cancelled
}

// abandon removes a pending call so a late response is dropped.
func (c *Channel) abandon(streamID uint64) {
	c.mu.Lock()
	delete(c.pending, streamID)
	c.mu.Unlock()
}

// finish emits an error span and returns the matching error.
func (c *Channel) finish(call *clientCall, method string, tc TraceContext, parentSpan trace.SpanID, reqPayload, respPayload []byte, code trace.ErrorCode, hedged bool) error {
	span := &trace.Span{
		TraceID:       tc.TraceID,
		SpanID:        tc.SpanID,
		ParentID:      parentSpan,
		Method:        method,
		Service:       ServiceOf(method),
		ClientCluster: c.opts.ClusterName,
		ServerCluster: c.serverCluster,
		RequestBytes:  int64(len(reqPayload)),
		ResponseBytes: int64(len(respPayload)),
		Err:           code,
		Hedged:        hedged,
	}
	if call != nil {
		if deq := call.deqNs.Load(); deq != 0 {
			span.Breakdown[trace.ClientSendQueue] = time.Duration(deq - call.enqueuedNs)
			if sent := call.sentNs.Load(); sent != 0 {
				span.Breakdown[trace.ReqProcStack] = time.Duration(sent - deq)
			}
		}
	}
	c.emit(span)
	switch code {
	case trace.OK:
		return nil
	case trace.Cancelled:
		return ErrCancelled
	case trace.DeadlineExceeded:
		return ErrDeadlineExceeded
	case trace.Unavailable:
		if ce := c.err.Load(); ce != nil && ce.err != nil {
			return &Status{Code: trace.Unavailable, Message: ce.err.Error()}
		}
		return ErrUnavailable
	default:
		return &Status{Code: code, Message: code.String()}
	}
}

// buildSpan assembles the full nine-component breakdown from client
// timestamps and the server-reported timings.
func (c *Channel) buildSpan(call *clientCall, method string, tc TraceContext, parentSpan trace.SpanID, reqPayload, respPayload []byte, resp *response, rxAtNs, rcvdNs int64, hedged bool) *trace.Span {
	var b trace.Breakdown
	deq, sent := call.deqNs.Load(), call.sentNs.Load()
	if deq != 0 {
		b[trace.ClientSendQueue] = time.Duration(deq - call.enqueuedNs)
		if sent != 0 {
			b[trace.ReqProcStack] = time.Duration(sent - deq)
		}
	}
	b[trace.ServerRecvQueue] = resp.Timings.RecvQueue
	b[trace.ServerApp] = resp.Timings.App
	b[trace.ServerSendQueue] = resp.Timings.SendQueue
	b[trace.RespProcStack] = resp.Timings.RespProc
	b[trace.ClientRecvQueue] = time.Duration(rcvdNs - rxAtNs)

	// Wire time is everything between the request leaving the client and
	// the response arriving, minus the server's residence time. Split it
	// between the directions in proportion to bytes moved.
	var wireTotal time.Duration
	if sent != 0 {
		wireTotal = time.Duration(rxAtNs-sent) - resp.Timings.Elapsed
	}
	if wireTotal < 0 {
		wireTotal = 0
	}
	reqB, respB := float64(len(reqPayload)+64), float64(len(respPayload)+64)
	reqFrac := reqB / (reqB + respB)
	b[trace.ReqNetworkWire] = time.Duration(float64(wireTotal) * reqFrac)
	b[trace.RespNetworkWire] = wireTotal - b[trace.ReqNetworkWire]

	return &trace.Span{
		TraceID:       tc.TraceID,
		SpanID:        tc.SpanID,
		ParentID:      parentSpan,
		Method:        method,
		Service:       ServiceOf(method),
		ClientCluster: c.opts.ClusterName,
		ServerCluster: c.serverCluster,
		Breakdown:     b,
		RequestBytes:  int64(len(reqPayload)),
		ResponseBytes: int64(len(respPayload)),
		Err:           resp.Code,
		Hedged:        hedged,
	}
}

func (c *Channel) emit(span *trace.Span) error {
	if c.opts.Collector != nil {
		c.opts.Collector.Collect(span)
	}
	if c.opts.Telemetry != nil {
		c.opts.Telemetry.Observe(span)
	}
	return nil
}

// ServiceOf extracts the service name from a fully qualified method
// ("service.Type/Method" -> "service").
func ServiceOf(method string) string {
	if i := strings.IndexAny(method, "./"); i > 0 {
		return method[:i]
	}
	return method
}

// sendBatchBytes bounds how many marshalled request bytes one drain pass
// of the sendLoop accumulates before flushing, in the style of gRPC's
// loopyWriter: after blocking on the first queued call, further pending
// calls are drained non-blockingly and the whole batch leaves in one
// write, amortizing the syscall across concurrent callers.
const sendBatchBytes = 128 << 10

// sendLoop drains the send queue: compression, marshalling, encryption,
// and the write — the client side of ReqProcStack.
func (c *Channel) sendLoop() {
	defer c.loops.Done()
	batch := make([]*clientCall, 0, 32)
	envs := make([][]byte, 0, 32)
	var scr sealScratch
	for {
		select {
		case call := <-c.sendQ:
			batch, envs = batch[:0], envs[:0]
			size := 0
			batch, envs, size = c.prepareCall(call, batch, envs, size)
		drain:
			for size < sendBatchBytes {
				select {
				case next := <-c.sendQ:
					batch, envs, size = c.prepareCall(next, batch, envs, size)
				default:
					break drain
				}
			}
			c.flushBatch(batch, envs, &scr)
		case <-c.closed:
			return
		}
	}
}

// prepareCall stamps the dequeue timestamp and marshals one call's
// request envelope into a pooled buffer, appending it to the batch.
func (c *Channel) prepareCall(call *clientCall, batch []*clientCall, envs [][]byte, size int) ([]*clientCall, [][]byte, int) {
	call.deqNs.Store(c.sinceEpoch())
	if call.dropped {
		// Fault plane: the request vanishes. The call stays pending until
		// its deadline expires, exactly like a packet lost past the
		// transport's visibility.
		return batch, envs, size
	}
	req := &call.req
	if call.bulk {
		// Bulk lane: the payload leaves as chunk frames sealed straight
		// from the caller's buffer (stable until the call resolves), so it
		// is never copied into the envelope — and never compressed; bulk
		// payloads are past the size where compression pays its cycles.
		if len(req.Payload) > wire.MaxFrameSize {
			c.failCall(call, wire.ErrFrameTooLarge)
			return batch, envs, size
		}
		call.bulkPayload = req.Payload
		req.Payload = nil
		req.BulkSize = uint64(len(call.bulkPayload))
		env := appendRequest(wire.GetBuf(len(req.Method)+envelopeOverhead), req)
		return append(batch, call), append(envs, env), size + len(env) + len(call.bulkPayload)
	}
	if c.opts.Compression != compressor.None && len(req.Payload) >= c.opts.CompressThreshold &&
		c.gate.shouldCompress(req.Method, req.Payload) {
		inLen := len(req.Payload)
		if compressed, err := c.comp.Compress(req.Payload); err == nil {
			c.gate.observe(req.Method, inLen, len(compressed))
			if len(compressed) < inLen {
				req.Payload = compressed
				req.Compressed = true
			}
		}
	}
	env := appendRequest(wire.GetBuf(len(req.Payload)+len(req.Method)+envelopeOverhead), req)
	if len(env)+secure.Overhead > wire.MaxFrameSize {
		wire.PutBuf(env)
		c.failCall(call, wire.ErrFrameTooLarge)
		return batch, envs, size
	}
	return append(batch, call), append(envs, env), size + len(env)
}

// flushBatch seals every prepared envelope into the transport's write
// buffer and flushes them with a single write. With a codec pool
// attached, large bulk payloads are sealed concurrently by the workers
// while this goroutine appends the inline frames; harvesting jobs in
// submission order under the send lock keeps the envelope-before-chunks
// frame order the bulk protocol requires.
func (c *Channel) flushBatch(batch []*clientCall, envs [][]byte, scr *sealScratch) {
	if len(batch) == 0 {
		return
	}
	c.mu.Lock()
	for i, call := range batch {
		if _, live := c.pending[call.streamID]; !live {
			batch[i] = nil // abandoned before send
		}
	}
	c.mu.Unlock()

	p := c.tr.codec
	pipelined := false
	if p != nil {
		scr.jobs, scr.n = scr.jobs[:0], scr.n[:0]
		if p.enter() {
			pipelined = true
			for _, call := range batch {
				k := 0
				if call != nil && call.bulk && len(call.bulkPayload) > codecInlineMax {
					before := len(scr.jobs)
					scr.jobs = p.submitSealChunks(scr.jobs, call.streamID, call.bulkPayload, 0)
					k = len(scr.jobs) - before
				}
				scr.n = append(scr.n, k)
			}
		}
	}

	c.tr.lockSend()
	var err error
	ji := 0
	for i, call := range batch {
		var k int
		if pipelined {
			k = scr.n[i]
		}
		if call == nil {
			continue // abandoned calls submitted no jobs (k is 0)
		}
		if call.bulk {
			// Envelope first, then the payload chunks on the same stream —
			// all in this batch's single vectored write. Bulk-unary chunks
			// are exempt from stream credit: the response bounds them.
			if err == nil {
				err = c.tr.appendLocked(wire.FrameBulkRequest, call.streamID, envs[i])
			}
			if k > 0 {
				// Jobs must be harvested even after an error so their
				// buffers return to the pool.
				if herr := c.tr.appendSealedLocked(call.streamID, scr.jobs[ji:ji+k], err != nil); err == nil {
					err = herr
				}
				ji += k
			} else if err == nil {
				err = c.tr.appendChunkedLocked(call.streamID, call.bulkPayload, 0)
			}
			continue
		}
		if err == nil {
			err = c.tr.appendLocked(wire.FrameRequest, call.streamID, envs[i])
		}
	}
	if err == nil {
		err = c.tr.flushLocked()
	}
	c.tr.unlockSend()
	if pipelined {
		p.exit()
	}
	sentNs := c.sinceEpoch()
	for i, call := range batch {
		wire.PutBuf(envs[i])
		if call == nil {
			continue
		}
		if err != nil {
			c.failCall(call, err)
		} else {
			call.sentNs.Store(sentNs)
		}
	}
}

func (c *Channel) failCall(call *clientCall, err error) {
	select {
	case call.resultCh <- &callResult{netErr: err}:
	default:
	}
}

// readLoop dispatches incoming frames to waiting calls and streams. It
// owns bulkIn, the bulk-lane response assemblies, so that path takes no
// locks beyond the pending-map lookup. With a codec pool attached it
// splits into a read-ahead pump and this dispatching goroutine.
func (c *Channel) readLoop() {
	defer c.loops.Done()
	bulkIn := make(map[uint64]*clientBulk)
	defer func() {
		for _, b := range bulkIn {
			wire.PutBuf(b.data)
		}
	}()
	if c.tr.codec != nil {
		c.readLoopPipelined(bulkIn)
		return
	}
	for {
		m, err := c.tr.recv()
		if err != nil {
			c.fail(err)
			return
		}
		if !c.dispatchFrame(m, bulkIn) {
			return
		}
	}
}

// readLoopPipelined overlaps frame reads and decryption: recvPump reads
// ahead and hands large frames to the codec workers; this goroutine
// harvests plaintexts in arrival order and dispatches them. Every item
// the pump emits is harvested even during teardown, so the pump never
// wedges on a full channel and no pooled buffer is lost.
func (c *Channel) readLoopPipelined(bulkIn map[uint64]*clientBulk) {
	items := make(chan recvItem, recvPipelineDepth)
	var pumpErr error
	c.loops.Add(1)
	go func() {
		defer c.loops.Done()
		pumpErr = c.tr.recvPump(items)
		close(items)
	}()
	failed := false
	for it := range items {
		if failed {
			if it.job != nil {
				out, _ := c.tr.finishOpen(it.job)
				wire.PutBuf(out)
			} else {
				wire.PutBuf(it.msg.plain)
			}
			continue
		}
		m := it.msg
		if it.job != nil {
			out, err := c.tr.finishOpen(it.job)
			if err != nil {
				c.fail(err)
				// The pump only exits on a read error; force one.
				c.tr.close()
				failed = true
				continue
			}
			m.plain = out
		}
		if !c.dispatchFrame(m, bulkIn) {
			c.tr.close()
			failed = true
		}
	}
	if !failed {
		c.fail(pumpErr)
	}
}

// dispatchFrame routes one decrypted inbound frame, taking ownership of
// m.plain. It returns false when the connection must come down (the
// channel is already failed by then).
func (c *Channel) dispatchFrame(m recvMsg, bulkIn map[uint64]*clientBulk) bool {
	plain := m.plain
	switch m.typ {
	case wire.FrameResponse:
		rxNs := c.sinceEpoch()
		c.mu.Lock()
		call := c.pending[m.streamID]
		delete(c.pending, m.streamID)
		c.mu.Unlock()
		if call == nil {
			wire.PutBuf(plain)
			return true // cancelled or duplicate
		}
		res := &callResult{buf: plain, rxAtNs: rxNs}
		if perr := parseResponseInto(&res.resp, plain); perr != nil {
			wire.PutBuf(plain)
			c.failCall(call, perr)
			return true
		}
		c.serverLoad.Store(int64(res.resp.Load))
		// Ownership of the pooled buffer travels with the result; the
		// waiting call releases it after copying the payload out.
		call.resultCh <- res
	case wire.FrameBulkResponse:
		// Envelope of a bulk-lane response: stash it and collect the
		// payload from the chunk frames that follow.
		b := &clientBulk{}
		if perr := parseResponseInto(&b.resp, plain); perr != nil {
			wire.PutBuf(plain)
			c.failPending(m.streamID, perr)
			return true
		}
		// Message was copied out by the parse; nothing aliases plain.
		b.resp.Payload = nil
		wire.PutBuf(plain)
		if b.resp.BulkSize == 0 {
			c.deliverBulk(m.streamID, b, nil)
			return true
		}
		bulkIn[m.streamID] = b
	case wire.FrameStreamChunk:
		if st := c.lookupStream(m.streamID); st != nil {
			st.deliverChunk(m.flags, plain)
			return true
		}
		b := bulkIn[m.streamID]
		if b == nil {
			wire.PutBuf(plain) // reset or cancelled mid-transfer
			return true
		}
		if b.data == nil && m.flags&chunkEndMsg != 0 {
			b.data = plain // single-chunk response: zero-copy handoff
		} else {
			if b.data == nil {
				b.data = wire.GetBuf(int(b.resp.BulkSize))
			}
			b.data = append(b.data, plain...)
			wire.PutBuf(plain)
		}
		if m.flags&chunkEndMsg != 0 {
			delete(bulkIn, m.streamID)
			c.deliverBulk(m.streamID, b, b.data)
		}
	case wire.FrameWindowUpdate:
		if st := c.lookupStream(m.streamID); st != nil {
			st.grantFromPeer(plain)
		}
		wire.PutBuf(plain)
	case wire.FrameReset:
		if st := c.lookupStream(m.streamID); st != nil {
			st.resetFromPeer(plain)
		}
		wire.PutBuf(plain)
	case wire.FramePong:
		wire.PutBuf(plain)
		c.pingMu.Lock()
		ch := c.pingCh
		c.pingCh = nil
		c.pingMu.Unlock()
		if ch != nil {
			ch <- time.Now()
		}
	case wire.FrameGoAway:
		wire.PutBuf(plain)
		c.fail(ErrUnavailable)
		return false
	default:
		wire.PutBuf(plain)
	}
	return true
}

// deliverBulk completes a bulk-lane response: data (the assembly buffer,
// possibly nil for an empty or error response) transfers to the waiting
// caller.
func (c *Channel) deliverBulk(streamID uint64, b *clientBulk, data []byte) {
	rxNs := c.sinceEpoch()
	c.mu.Lock()
	call := c.pending[streamID]
	delete(c.pending, streamID)
	c.mu.Unlock()
	if call == nil {
		wire.PutBuf(data)
		return
	}
	b.resp.Payload = data
	c.serverLoad.Store(int64(b.resp.Load))
	call.resultCh <- &callResult{resp: b.resp, buf: data, bulk: true, rxAtNs: rxNs}
}

// ServerLoad returns the server's most recently reported load estimate
// (receive-queue depth plus executing handlers), 0 until the first
// response arrives. It is the piggybacked signal load-aware balancing
// policies consume. On a striped channel it is the freshest report any
// stripe has seen — the maximum, since every stripe talks to one server.
func (c *Channel) ServerLoad() int {
	if len(c.stripes) == 0 {
		return int(c.serverLoad.Load())
	}
	load := int64(0)
	for _, s := range c.stripes {
		if l := s.serverLoad.Load(); l > load {
			load = l
		}
	}
	return int(load)
}

// InFlight returns how many calls on this channel await a response,
// summed across stripes.
func (c *Channel) InFlight() int {
	if len(c.stripes) == 0 {
		c.mu.Lock()
		n := len(c.pending)
		c.mu.Unlock()
		return n
	}
	n := 0
	for _, s := range c.stripes {
		s.mu.Lock()
		n += len(s.pending)
		s.mu.Unlock()
	}
	return n
}

// failPending fails the pending call on streamID, if any.
func (c *Channel) failPending(streamID uint64, err error) {
	c.mu.Lock()
	call := c.pending[streamID]
	delete(c.pending, streamID)
	c.mu.Unlock()
	if call != nil {
		c.failCall(call, err)
	}
}

// lookupStream returns the live stream for id, nil if none.
func (c *Channel) lookupStream(id uint64) *Stream {
	c.mu.Lock()
	st := c.streams[id]
	c.mu.Unlock()
	return st
}

// dropStream detaches a stream from the channel's table.
func (c *Channel) dropStream(id uint64) {
	c.mu.Lock()
	delete(c.streams, id)
	c.mu.Unlock()
}

// Ping measures transport round-trip time, including encryption but not
// queuing or handlers.
func (c *Channel) Ping(ctx context.Context) (time.Duration, error) {
	ch := make(chan time.Time, 1)
	c.pingMu.Lock()
	if c.pingCh != nil {
		c.pingMu.Unlock()
		return 0, Errorf(trace.NoResource, "ping already in flight")
	}
	c.pingCh = ch
	c.pingMu.Unlock()
	start := time.Now()
	if err := c.tr.send(wire.FramePing, 0, nil); err != nil {
		c.pingMu.Lock()
		c.pingCh = nil
		c.pingMu.Unlock()
		return 0, Errorf(trace.Unavailable, "ping send: %v", err)
	}
	select {
	case end := <-ch:
		return end.Sub(start), nil
	case <-ctx.Done():
		c.pingMu.Lock()
		c.pingCh = nil
		c.pingMu.Unlock()
		return 0, codeToError(cancelCode(ctx))
	case <-c.closed:
		return 0, ErrUnavailable
	}
}

// fail kills the channel: all pending and future calls error out. On a
// striped channel it condemns every stripe — one logical connection.
func (c *Channel) fail(err error) {
	if c.onFail != nil {
		c.onFail(err)
		return
	}
	c.failLocal(err)
}

// failLocal kills this channel (this stripe) only.
func (c *Channel) failLocal(err error) {
	c.err.Store(&channelError{err: err})
	c.closeOnce.Do(func() { close(c.closed) })
	c.mu.Lock()
	pending := c.pending
	c.pending = make(map[uint64]*clientCall)
	streams := c.streams
	c.streams = nil
	c.mu.Unlock()
	for _, call := range pending {
		c.failCall(call, err)
	}
	for _, st := range streams {
		st.terminate(ErrUnavailable, false)
	}
}

// Close shuts the channel down. Pending calls fail with Unavailable.
func (c *Channel) Close() error {
	if len(c.stripes) > 0 {
		var err error
		for _, s := range c.stripes {
			if e := s.closeLocal(); e != nil && err == nil {
				err = e
			}
		}
		return err
	}
	return c.closeLocal()
}

// closeLocal tears down one channel (one stripe): fail everything, close
// the conn so the loops unwind, join them, then stop the codec workers.
func (c *Channel) closeLocal() error {
	c.fail(ErrUnavailable)
	err := c.tr.close()
	c.loops.Wait()
	c.tr.stopCodec()
	return err
}
