package stubby

import (
	"context"
	"errors"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rpcscale/internal/compressor"
	"rpcscale/internal/faultplane"
	"rpcscale/internal/trace"
	"rpcscale/internal/wire"
)

// Channel is a client connection to one server: it owns a send queue
// drained by a sender goroutine (ClientSendQueue), a reader goroutine
// that dispatches responses to waiting calls (ClientRecvQueue), and the
// per-call instrumentation that assembles the nine-component breakdown.
type Channel struct {
	opts          Options
	serverCluster string
	tr            *transport
	comp          *compressor.Compressor

	// invoke is the configured call path: the raw attempt wrapped by the
	// retry layer (Options.Retry) and the circuit breaker
	// (Options.Breaker), when enabled. Call goes through it.
	invoke  CallFunc
	breaker *Breaker

	sendQ      chan *clientCall
	nextStream atomic.Uint64

	mu      sync.Mutex
	pending map[uint64]*clientCall
	streams map[uint64]*ServerStream

	pingMu   sync.Mutex
	pingCh   chan time.Time
	lastPing time.Time

	closed    chan struct{}
	closeOnce sync.Once
	err       atomic.Pointer[channelError] // error that killed the channel
	loops     sync.WaitGroup
}

// clientCall tracks one in-flight RPC.
type clientCall struct {
	req      *request
	streamID uint64
	payload  []byte // uncompressed request payload (for size accounting)
	dropped  bool   // fault plane: swallow the request instead of sending
	enqueued time.Time
	// deqAt and sentAt are written by the sender goroutine while the
	// calling goroutine may be timing out concurrently, so they are
	// published atomically.
	deqAt    atomic.Pointer[time.Time] // sender dequeued (end of ClientSendQueue)
	sentAt   atomic.Pointer[time.Time] // frame written (end of ReqProcStack)
	resultCh chan *callResult
}

// channelError boxes the error that killed a channel so it can live in an
// atomic.Pointer regardless of its dynamic type.
type channelError struct{ err error }

// callResult is what the reader delivers to a waiting call.
type callResult struct {
	resp   *response
	rxAt   time.Time // response frame fully read + decoded
	netErr error
}

// Dial connects to addr over TCP and returns a channel. serverCluster
// labels spans with the callee's placement (a real stack learns it from
// the handshake).
func Dial(addr, serverCluster string, opts Options) (*Channel, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		// Status-code the failure: a refused/unroutable backend is the
		// same Unavailable the paper's taxonomy records for dead peers.
		return nil, Errorf(trace.Unavailable, "dial %s: %v", addr, err)
	}
	return NewChannel(conn, serverCluster, opts)
}

// NewChannel builds a channel over an existing connection (e.g. net.Pipe
// in tests).
func NewChannel(conn net.Conn, serverCluster string, opts Options) (*Channel, error) {
	o := opts.withDefaults()
	tr, err := newTransport(conn, o.Secret, "c2s", "s2c", o.EncryptionStats)
	if err != nil {
		conn.Close()
		return nil, Errorf(trace.Internal, "transport setup: %v", err)
	}
	c := &Channel{
		opts:          o,
		serverCluster: serverCluster,
		tr:            tr,
		comp:          compressor.New(o.Compression, o.CompressorStats),
		sendQ:         make(chan *clientCall, o.SendQueueLen),
		pending:       make(map[uint64]*clientCall),
		closed:        make(chan struct{}),
	}
	c.invoke = func(ctx context.Context, method string, payload []byte) ([]byte, error) {
		return c.call(ctx, method, payload, false)
	}
	if o.Retry != nil {
		policy, obs, inner := *o.Retry, o.Robustness, c.invoke
		c.invoke = func(ctx context.Context, method string, payload []byte) ([]byte, error) {
			return retryCall(ctx, method, payload, policy, obs, inner)
		}
	}
	if o.Breaker != nil {
		// Breaker outside retry: an open circuit spends no attempts.
		c.breaker = NewBreaker(*o.Breaker, o.Robustness)
		c.invoke = c.breaker.Wrap(c.invoke)
	}
	c.loops.Add(2)
	go c.sendLoop()
	go c.readLoop()
	return c, nil
}

// Call issues a unary RPC and blocks for the response, the context's
// cancellation, or the deadline. When the channel was configured with
// Options.Retry or Options.Breaker, Call goes through those layers;
// CallHedged and hand-built interceptor chains bypass them.
func (c *Channel) Call(ctx context.Context, method string, payload []byte) ([]byte, error) {
	return c.invoke(ctx, method, payload)
}

// Breaker returns the channel's circuit breaker, nil unless
// Options.Breaker was set.
func (c *Channel) Breaker() *Breaker { return c.breaker }

func (c *Channel) call(ctx context.Context, method string, payload []byte, hedged bool) ([]byte, error) {
	// Resolve tracing state: child span of the caller, or a new root.
	parent, ok := TraceFromContext(ctx)
	tc := TraceContext{SpanID: nextSpanID()}
	var parentSpan trace.SpanID
	if ok {
		tc.TraceID = parent.TraceID
		parentSpan = parent.SpanID
	} else {
		tc.TraceID = nextTraceID()
	}

	// Identify the attempt for the fault plane and server-side retry
	// accounting: the driver-assigned call ID (if any) plus the retry
	// attempt number, with hedged legs marked so they draw independent
	// fault decisions.
	attempt := attemptFromContext(ctx)
	if hedged {
		attempt |= hedgeAttemptBit
	}
	callID, haveID := CallIDFromContext(ctx)

	var dec faultplane.Decision
	if c.opts.Faults != nil {
		dec = c.opts.Faults.Decide(faultplane.ScopeClient, method,
			faultplane.Key{Seq: callID, Have: haveID, Attempt: attempt})
		if dec.Reject != trace.OK {
			return nil, c.finish(nil, method, tc, parentSpan, payload, nil, dec.Reject, hedged)
		}
		if dec.Delay > 0 {
			// The injected delay runs in the caller's goroutine (not the
			// sender's) so concurrent calls do not serialize behind it.
			t := time.NewTimer(dec.Delay)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return nil, c.finish(nil, method, tc, parentSpan, payload, nil, cancelCode(ctx), hedged)
			case <-c.closed:
				t.Stop()
				return nil, c.finish(nil, method, tc, parentSpan, payload, nil, trace.Unavailable, hedged)
			}
		}
		if dec.Corrupt {
			// Mangle a copy; the caller's buffer may be reused.
			payload = append([]byte(nil), payload...)
			faultplane.CorruptPayload(payload)
		}
	}

	deadline := c.opts.DefaultDeadline
	if dl, has := ctx.Deadline(); has {
		deadline = time.Until(dl)
	}
	if deadline <= 0 {
		return nil, c.finish(nil, method, tc, parentSpan, payload, nil, trace.DeadlineExceeded, hedged)
	}

	var callSeq uint64
	if haveID {
		callSeq = callID + 1
	}
	call := &clientCall{
		req: &request{
			Method:     method,
			TraceID:    tc.TraceID,
			SpanID:     tc.SpanID,
			ParentSpan: parentSpan,
			Deadline:   deadline,
			Payload:    payload,
			Hedged:     hedged,
			CallSeq:    callSeq,
			Attempt:    attempt,
		},
		payload:  payload,
		dropped:  dec.Drop,
		enqueued: time.Now(),
		resultCh: make(chan *callResult, 1),
	}
	streamID := c.nextStream.Add(1)
	call.streamID = streamID

	c.mu.Lock()
	select {
	case <-c.closed:
		c.mu.Unlock()
		return nil, c.finish(nil, method, tc, parentSpan, payload, nil, trace.Unavailable, hedged)
	default:
	}
	c.pending[streamID] = call
	c.mu.Unlock()

	// Enqueue onto the send queue; a full queue is back-pressure, so we
	// block until space, cancellation, or channel death.
	select {
	case c.sendQ <- call:
	case <-ctx.Done():
		c.abandon(streamID)
		return nil, c.finish(call, method, tc, parentSpan, payload, nil, cancelCode(ctx), hedged)
	case <-c.closed:
		c.abandon(streamID)
		return nil, c.finish(call, method, tc, parentSpan, payload, nil, trace.Unavailable, hedged)
	}

	select {
	case res := <-call.resultCh:
		rcvd := time.Now()
		if res.netErr != nil {
			return nil, c.finish(call, method, tc, parentSpan, payload, nil, trace.Unavailable, hedged)
		}
		resp := res.resp
		out := resp.Payload
		if resp.Compressed {
			var derr error
			out, derr = c.comp.Decompress(out)
			if derr != nil {
				return nil, c.finish(call, method, tc, parentSpan, payload, nil, trace.Internal, hedged)
			}
		}
		span := c.buildSpan(call, method, tc, parentSpan, payload, out, resp, res.rxAt, rcvd, hedged)
		c.emit(span)
		if resp.Code != trace.OK {
			return nil, &Status{Code: resp.Code, Message: resp.Message}
		}
		return out, nil
	case <-ctx.Done():
		c.abandon(streamID)
		_ = c.tr.send(wire.FrameCancel, streamID, nil)
		return nil, c.finish(call, method, tc, parentSpan, payload, nil, cancelCode(ctx), hedged)
	case <-c.closed:
		c.abandon(streamID)
		return nil, c.finish(call, method, tc, parentSpan, payload, nil, trace.Unavailable, hedged)
	}
}

func cancelCode(ctx context.Context) trace.ErrorCode {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return trace.DeadlineExceeded
	}
	return trace.Cancelled
}

// abandon removes a pending call so a late response is dropped.
func (c *Channel) abandon(streamID uint64) {
	c.mu.Lock()
	delete(c.pending, streamID)
	c.mu.Unlock()
}

// finish emits an error span and returns the matching error.
func (c *Channel) finish(call *clientCall, method string, tc TraceContext, parentSpan trace.SpanID, reqPayload, respPayload []byte, code trace.ErrorCode, hedged bool) error {
	span := &trace.Span{
		TraceID:       tc.TraceID,
		SpanID:        tc.SpanID,
		ParentID:      parentSpan,
		Method:        method,
		Service:       ServiceOf(method),
		ClientCluster: c.opts.ClusterName,
		ServerCluster: c.serverCluster,
		RequestBytes:  int64(len(reqPayload)),
		ResponseBytes: int64(len(respPayload)),
		Err:           code,
		Hedged:        hedged,
	}
	if call != nil {
		if deq := call.deqAt.Load(); deq != nil {
			span.Breakdown[trace.ClientSendQueue] = deq.Sub(call.enqueued)
			if sent := call.sentAt.Load(); sent != nil {
				span.Breakdown[trace.ReqProcStack] = sent.Sub(*deq)
			}
		}
	}
	c.emit(span)
	switch code {
	case trace.OK:
		return nil
	case trace.Cancelled:
		return ErrCancelled
	case trace.DeadlineExceeded:
		return ErrDeadlineExceeded
	case trace.Unavailable:
		if ce := c.err.Load(); ce != nil && ce.err != nil {
			return &Status{Code: trace.Unavailable, Message: ce.err.Error()}
		}
		return ErrUnavailable
	default:
		return &Status{Code: code, Message: code.String()}
	}
}

// buildSpan assembles the full nine-component breakdown from client
// timestamps and the server-reported timings.
func (c *Channel) buildSpan(call *clientCall, method string, tc TraceContext, parentSpan trace.SpanID, reqPayload, respPayload []byte, resp *response, rxAt, rcvd time.Time, hedged bool) *trace.Span {
	var b trace.Breakdown
	deq, sent := call.deqAt.Load(), call.sentAt.Load()
	if deq != nil {
		b[trace.ClientSendQueue] = deq.Sub(call.enqueued)
		if sent != nil {
			b[trace.ReqProcStack] = sent.Sub(*deq)
		}
	}
	b[trace.ServerRecvQueue] = resp.Timings.RecvQueue
	b[trace.ServerApp] = resp.Timings.App
	b[trace.ServerSendQueue] = resp.Timings.SendQueue
	b[trace.RespProcStack] = resp.Timings.RespProc
	b[trace.ClientRecvQueue] = rcvd.Sub(rxAt)

	// Wire time is everything between the request leaving the client and
	// the response arriving, minus the server's residence time. Split it
	// between the directions in proportion to bytes moved.
	var wireTotal time.Duration
	if sent != nil {
		wireTotal = rxAt.Sub(*sent) - resp.Timings.Elapsed
	}
	if wireTotal < 0 {
		wireTotal = 0
	}
	reqB, respB := float64(len(reqPayload)+64), float64(len(respPayload)+64)
	reqFrac := reqB / (reqB + respB)
	b[trace.ReqNetworkWire] = time.Duration(float64(wireTotal) * reqFrac)
	b[trace.RespNetworkWire] = wireTotal - b[trace.ReqNetworkWire]

	return &trace.Span{
		TraceID:       tc.TraceID,
		SpanID:        tc.SpanID,
		ParentID:      parentSpan,
		Method:        method,
		Service:       ServiceOf(method),
		ClientCluster: c.opts.ClusterName,
		ServerCluster: c.serverCluster,
		Breakdown:     b,
		RequestBytes:  int64(len(reqPayload)),
		ResponseBytes: int64(len(respPayload)),
		Err:           resp.Code,
		Hedged:        hedged,
	}
}

func (c *Channel) emit(span *trace.Span) error {
	if c.opts.Collector != nil {
		c.opts.Collector.Collect(span)
	}
	if c.opts.Telemetry != nil {
		c.opts.Telemetry.Observe(span)
	}
	return nil
}

// ServiceOf extracts the service name from a fully qualified method
// ("service.Type/Method" -> "service").
func ServiceOf(method string) string {
	if i := strings.IndexAny(method, "./"); i > 0 {
		return method[:i]
	}
	return method
}

// sendLoop drains the send queue: compression, marshalling, encryption,
// and the write — the client side of ReqProcStack.
func (c *Channel) sendLoop() {
	defer c.loops.Done()
	for {
		select {
		case call := <-c.sendQ:
			now := time.Now()
			call.deqAt.Store(&now)
			if call.dropped {
				// Fault plane: the request vanishes. The call stays
				// pending until its deadline expires, exactly like a
				// packet lost past the transport's visibility.
				continue
			}
			req := call.req
			if c.opts.Compression != compressor.None && len(req.Payload) >= c.opts.CompressThreshold {
				if compressed, err := c.comp.Compress(req.Payload); err == nil && len(compressed) < len(req.Payload) {
					req.Payload = compressed
					req.Compressed = true
				}
			}
			buf, err := req.marshal()
			if err != nil {
				c.failCall(call, err)
				continue
			}
			c.mu.Lock()
			_, live := c.pending[call.streamID]
			c.mu.Unlock()
			if !live {
				continue // call abandoned before send
			}
			if err := c.tr.send(wire.FrameRequest, call.streamID, buf); err != nil {
				c.failCall(call, err)
				continue
			}
			sent := time.Now()
			call.sentAt.Store(&sent)
		case <-c.closed:
			return
		}
	}
}

func (c *Channel) failCall(call *clientCall, err error) {
	select {
	case call.resultCh <- &callResult{netErr: err}:
	default:
	}
}

// readLoop dispatches incoming frames to waiting calls.
func (c *Channel) readLoop() {
	defer c.loops.Done()
	for {
		f, plain, err := c.tr.recv()
		if err != nil {
			c.fail(err)
			return
		}
		switch f.Type {
		case wire.FrameResponse:
			rxStart := time.Now()
			resp, perr := parseResponse(plain)
			if st := c.lookupStream(f.StreamID); st != nil {
				if perr != nil {
					st.fail(perr)
					c.dropStream(f.StreamID)
					continue
				}
				st.deliver(resp)
				continue
			}
			c.mu.Lock()
			call := c.pending[f.StreamID]
			delete(c.pending, f.StreamID)
			c.mu.Unlock()
			if call == nil {
				continue // cancelled or duplicate
			}
			if perr != nil {
				c.failCall(call, perr)
				continue
			}
			call.resultCh <- &callResult{resp: resp, rxAt: rxStart}
		case wire.FramePong:
			c.pingMu.Lock()
			ch := c.pingCh
			c.pingCh = nil
			c.pingMu.Unlock()
			if ch != nil {
				ch <- time.Now()
			}
		case wire.FrameGoAway:
			c.fail(ErrUnavailable)
			return
		}
	}
}

// Ping measures transport round-trip time, including encryption but not
// queuing or handlers.
func (c *Channel) Ping(ctx context.Context) (time.Duration, error) {
	ch := make(chan time.Time, 1)
	c.pingMu.Lock()
	if c.pingCh != nil {
		c.pingMu.Unlock()
		return 0, Errorf(trace.NoResource, "ping already in flight")
	}
	c.pingCh = ch
	c.pingMu.Unlock()
	start := time.Now()
	if err := c.tr.send(wire.FramePing, 0, nil); err != nil {
		c.pingMu.Lock()
		c.pingCh = nil
		c.pingMu.Unlock()
		return 0, Errorf(trace.Unavailable, "ping send: %v", err)
	}
	select {
	case end := <-ch:
		return end.Sub(start), nil
	case <-ctx.Done():
		c.pingMu.Lock()
		c.pingCh = nil
		c.pingMu.Unlock()
		return 0, codeToError(cancelCode(ctx))
	case <-c.closed:
		return 0, ErrUnavailable
	}
}

// fail kills the channel: all pending and future calls error out.
func (c *Channel) fail(err error) {
	c.err.Store(&channelError{err: err})
	c.closeOnce.Do(func() { close(c.closed) })
	c.mu.Lock()
	pending := c.pending
	c.pending = make(map[uint64]*clientCall)
	streams := c.streams
	c.streams = nil
	c.mu.Unlock()
	for _, call := range pending {
		c.failCall(call, err)
	}
	for _, st := range streams {
		st.fail(ErrUnavailable)
	}
}

// Close shuts the channel down. Pending calls fail with Unavailable.
func (c *Channel) Close() error {
	c.fail(ErrUnavailable)
	err := c.tr.close()
	c.loops.Wait()
	return err
}
