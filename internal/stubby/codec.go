package stubby

import (
	"runtime"
	"sync"

	"rpcscale/internal/sanitize"
	"rpcscale/internal/secure"
	"rpcscale/internal/wire"
)

// Pipelined crypto (DESIGN.md §16): a bounded pool of per-connection
// codec workers seals and opens large frames off the send/recv loops, so
// the loops only do framing, writev, and reassembly. Ordering is
// preserved structurally — seal jobs are consumed in submission order
// under the transport send lock, and nonces travel inside each message so
// out-of-order sealing is safe (secure.Worker). Small frames never pay
// the hand-off: they stay on the inline path below codecInlineMax.

// codecInlineMax is the frame-payload size at and below which seal/open
// stays inline in the calling loop. Hand-off costs two channel transfers
// and a buffer copy on the open side; below ~4 KiB the AES-GCM work is
// cheaper than the coordination.
const codecInlineMax = 4 << 10

type codecOp uint8

const (
	codecSeal codecOp = iota
	codecOpen
)

// codecJob is one seal or open unit of work. Jobs are pooled (getJob /
// putJob) and completion is signaled on the 1-buffered done channel, so
// workers never block handing a result back and a submitter can harvest
// results in any order it likes — the data plane harvests in submission
// order to keep frame order.
type codecJob struct {
	op    codecOp
	typ   byte // frame type; selects the AAD rule on open
	flags byte // chunk flags; sealed as AAD ahead of the payload
	aad   [1]byte
	// in is the input: for seal, the caller's plaintext (borrowed — the
	// caller keeps it alive until the job completes and never receives
	// ownership back); for open, the sealed bytes in a pooled buffer the
	// job owns and releases.
	//rpclint:owns
	in []byte
	// out is the result: a pooled buffer holding the sealed frame payload
	// (seal) or the decrypted plaintext (open). Ownership transfers to
	// whoever harvests the job via done.
	//rpclint:owns
	out  []byte
	err  error
	done chan struct{}
}

// run executes the job on a worker goroutine. sealW is that worker's
// private sealing state; open sessions are concurrency-safe as-is.
func (j *codecJob) run(sealW *secure.Worker, open *secure.Session) {
	switch j.op {
	case codecSeal:
		buf := wire.GetBuf(1 + len(j.in) + secure.Overhead)
		buf = append(buf, j.flags)
		j.aad[0] = j.flags
		j.out = sealW.SealAppendAAD(buf, j.in, j.aad[:1])
		j.in = nil // borrowed from the submitter; not ours to release
	case codecOpen:
		sealed := j.in
		var aad []byte
		if j.typ == wire.FrameStreamChunk {
			j.aad[0] = j.flags
			aad = j.aad[:1]
		}
		buf := wire.GetBuf(len(sealed) - secure.Overhead)
		out, err := open.OpenAppendAAD(buf, sealed, aad)
		if err != nil {
			wire.PutBuf(buf)
			j.err = err
		} else {
			j.out = out
		}
		j.in = nil
		wire.PutBuf(sealed)
	}
}

// codecPool runs the codec workers for one connection. Shutdown protocol:
// submitters bracket each submit-and-harvest cycle with enter/exit; close
// marks the pool closing (new enter calls fail, callers fall back to the
// inline path), waits for in-flight cycles to finish, then closes the job
// channel — the workers' goroleak shutdown edge — and joins them.
type codecPool struct {
	jobs chan *codecJob
	wg   sync.WaitGroup

	seal *secure.Session
	open *secure.Session
	obs  DataPlaneObserver // optional codec-queue telemetry

	mu      sync.Mutex // rank sanitize.RankCodecQueue
	free    []*codecJob
	subs    int           // submitters currently inside an enter/exit cycle
	closing bool          // set by close; no new cycles may start
	idle    chan struct{} // 1-buffered: last exiting submitter wakes close
}

// newCodecPool starts workers goroutines sealing with seal and opening
// with open. obs may be nil.
func newCodecPool(workers int, seal, open *secure.Session, obs DataPlaneObserver) *codecPool {
	p := &codecPool{
		// Two queued jobs per worker keeps every worker busy while the
		// submitting loop is itself copying or framing.
		jobs: make(chan *codecJob, 2*workers),
		seal: seal,
		open: open,
		obs:  obs,
		free: make([]*codecJob, 0, 4*workers),
		idle: make(chan struct{}, 1),
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// lock and unlock wrap mu with the sanitize rank checker. The pool mutex
// may be held while the buffer-pool leaf lock is taken (putJob callers do
// not, but the rank leaves room), never the other way around.
func (p *codecPool) lock() {
	p.mu.Lock()
	if sanitize.Enabled {
		sanitize.LockAcquired(sanitize.RankCodecQueue, "stubby.codecPool.mu")
	}
}

func (p *codecPool) unlock() {
	if sanitize.Enabled {
		sanitize.LockReleased(sanitize.RankCodecQueue)
	}
	p.mu.Unlock()
}

// worker drains the job channel until close closes it.
func (p *codecPool) worker() {
	defer p.wg.Done()
	w := p.seal.NewWorker()
	for j := range p.jobs {
		j.run(w, p.open)
		j.done <- struct{}{} // 1-buffered: never blocks
	}
}

// enter opens a submit-and-harvest cycle; it returns false when the pool
// is shutting down, in which case the caller must use the inline path.
// Every enter that returns true must be paired with exit after the last
// submitted job has been harvested.
func (p *codecPool) enter() bool {
	p.lock()
	if p.closing {
		p.unlock()
		return false
	}
	p.subs++
	p.unlock()
	return true
}

// exit closes a cycle opened by enter.
func (p *codecPool) exit() {
	p.lock()
	p.subs--
	wake := p.closing && p.subs == 0
	p.unlock()
	if wake {
		select {
		case p.idle <- struct{}{}:
		default:
		}
	}
}

// close shuts the pool down: it fails future enter calls, waits for
// in-flight cycles, stops the workers, and joins them. Idempotent; a
// second caller returns immediately (the first finishes the join).
func (p *codecPool) close() {
	p.lock()
	if p.closing {
		p.unlock()
		return
	}
	p.closing = true
	wait := p.subs > 0
	p.unlock()
	if wait {
		<-p.idle
	}
	close(p.jobs)
	p.wg.Wait()
}

// getJob takes a pooled job (or makes one).
func (p *codecPool) getJob() *codecJob {
	p.lock()
	if n := len(p.free); n > 0 {
		j := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.unlock()
		return j
	}
	p.unlock()
	return &codecJob{done: make(chan struct{}, 1)}
}

// putJob recycles a harvested job. The caller must have taken ownership
// of j.out (or released it) first.
func (p *codecPool) putJob(j *codecJob) {
	j.in, j.out, j.err = nil, nil, nil
	p.lock()
	if len(p.free) < cap(p.free) {
		p.free = append(p.free, j)
	}
	p.unlock()
}

// submit enqueues a job for the workers. The caller must be inside an
// enter/exit cycle, which guarantees the channel is open and a worker
// will complete the job.
func (p *codecPool) submit(j *codecJob) {
	if p.obs != nil {
		p.obs.CodecJobEnqueued(len(p.jobs))
	}
	p.jobs <- j
}

// submitSealChunks splits data into bulk chunks (the appendChunkedLocked
// chunking, including the empty-message chunk) and submits one seal job
// per chunk, appending the jobs to dst in submission order. The caller
// must be inside an enter/exit cycle, must keep data alive and unmodified
// until every job is harvested, and must harvest the jobs in order — the
// transport's appendSealedLocked does both.
func (p *codecPool) submitSealChunks(dst []*codecJob, streamID uint64, data []byte, endFlags byte) []*codecJob {
	_ = streamID // chunks carry no stream state; kept for call-site symmetry
	for first := true; first || len(data) > 0; first = false {
		n := len(data)
		if n > bulkChunkSize {
			n = bulkChunkSize
		}
		var flags byte
		if n == len(data) {
			flags = chunkEndMsg | endFlags
		}
		j := p.getJob()
		j.op = codecSeal
		j.flags = flags
		j.in = data[:n]
		dst = append(dst, j)
		p.submit(j)
		data = data[n:]
	}
	return dst
}

// codecWorkerCount resolves the Options.CodecWorkers knob: n > 0 forces a
// pool of n, n < 0 forces the inline path, and 0 sizes the pool from
// GOMAXPROCS — disabled on a single-proc runtime, where hand-off can only
// lose, and capped so one connection cannot monopolize a large machine.
func codecWorkerCount(n int) int {
	switch {
	case n > 0:
		return n
	case n < 0:
		return 0
	default:
		procs := runtime.GOMAXPROCS(0)
		if procs < 2 {
			return 0
		}
		if procs > maxCodecWorkers {
			return maxCodecWorkers
		}
		return procs
	}
}

// maxCodecWorkers caps the auto-sized per-connection pool.
const maxCodecWorkers = 8

// sealScratch is a batching drain loop's reusable seal-job bookkeeping:
// jobs holds the batch's submitted jobs in order, n the per-entry job
// count (0 = that entry stayed inline).
type sealScratch struct {
	jobs []*codecJob
	n    []int
}
