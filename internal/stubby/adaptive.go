package stubby

import (
	"math"

	"rpcscale/internal/compressor"
)

// Adaptive per-method compression (DESIGN.md §16). The paper's Fig. 20
// puts compression at 3.1% of all fleet cycles — the largest single RPC
// tax component — and for incompressible payloads (media, ciphertext,
// already-compressed blobs) every one of those cycles is pure waste. The
// gate makes a per-method decision from live telemetry: an entropy probe
// on the first bytes catches obviously incompressible payloads before
// the first compression attempt, and a windowed observed-ratio estimator
// (EWMA of out/in) turns methods whose payloads repeatedly fail to
// shrink off, with a periodic forced reprobe so a method whose payload
// mix changes can win compression back.
const (
	// entropyProbeBytes is how many leading payload bytes the entropy
	// probe samples.
	entropyProbeBytes = 512
	// entropySkipBits is the Shannon-entropy threshold (bits/byte) above
	// which a payload is judged incompressible outright. A 512-byte
	// sample of uniform random data measures ~7.55 bits/byte (sampling
	// bias caps it below 8); natural text and structured encodings sit
	// well under 6.
	entropySkipBits = 7.0
	// ratioScale is the fixed-point scale of the EWMA ratio estimator.
	ratioScale = 1024
	// skipRatio is the estimator value (out/in, scaled) above which a
	// method stops compressing: past ~0.92 the byte savings no longer
	// buy back the cycles.
	skipRatio = 940
	// gateMinTrials is how many observed compressions a method needs
	// before the estimator may turn it off.
	gateMinTrials = 4
	// gateReprobeEvery forces one real compression per this many skips,
	// so the estimator keeps tracking a method's live payload mix.
	gateReprobeEvery = 64
)

// methodComp is the per-method estimator state.
type methodComp struct {
	trials uint32 // compressions observed
	ewma   uint32 // out/in ratio, 1/ratioScale fixed point
	skips  uint32 // consecutive ratio-skips since the last reprobe
}

// compressGate decides, per method, whether configured compression is
// worth attempting. It is NOT safe for concurrent use: each batching
// drain goroutine (the client sendLoop, each server connection's
// writeLoop) owns its own gate, so decisions are lock-free on the hot
// path. A nil gate compresses everything (the non-adaptive default).
type compressGate struct {
	obs   DataPlaneObserver
	stats *compressor.Stats
	m     map[string]*methodComp
}

// newCompressGate returns a gate, or nil when adaptive compression is
// off (and the stack behaves exactly as before).
func newCompressGate(enabled bool, obs DataPlaneObserver, stats *compressor.Stats) *compressGate {
	if !enabled {
		return nil
	}
	return &compressGate{obs: obs, stats: stats, m: make(map[string]*methodComp)}
}

// shouldCompress reports whether this payload is worth compressing. A
// false return has already been recorded as a skip.
func (g *compressGate) shouldCompress(method string, payload []byte) bool {
	if g == nil {
		return true
	}
	mc := g.m[method]
	if mc == nil {
		mc = &methodComp{}
		g.m[method] = mc
	}
	if mc.trials >= gateMinTrials && mc.ewma > skipRatio {
		if mc.skips++; mc.skips < gateReprobeEvery {
			g.recordSkip(method, len(payload))
			return false
		}
		mc.skips = 0 // forced reprobe: compress this one and re-measure
		return true
	}
	if entropyIncompressible(payload) {
		g.recordSkip(method, len(payload))
		return false
	}
	return true
}

// observe feeds one compression outcome into the method's estimator.
func (g *compressGate) observe(method string, inLen, outLen int) {
	if g == nil || inLen <= 0 {
		return
	}
	mc := g.m[method] // non-nil: shouldCompress ran first
	r := uint64(outLen) * ratioScale / uint64(inLen)
	if r > 4*ratioScale {
		r = 4 * ratioScale // expansion; clamp so one outlier cannot wedge the EWMA
	}
	if mc.trials == 0 {
		mc.ewma = uint32(r)
	} else {
		mc.ewma = (3*mc.ewma + uint32(r)) / 4
	}
	if mc.trials < math.MaxUint32 {
		mc.trials++
	}
}

// recordSkip accounts one skipped payload in the shared compressor stats
// (reaching telemetry's cpu_by_cat attribution for free) and the data
// plane observer.
func (g *compressGate) recordSkip(method string, n int) {
	if g.stats != nil {
		g.stats.Skips.Add(1)
		g.stats.SkippedBytes.Add(uint64(n))
	}
	if g.obs != nil {
		g.obs.CompressSkipped(method, n)
	}
}

// entropyIncompressible estimates the Shannon entropy of the payload's
// first bytes and reports whether it is too close to random to compress.
func entropyIncompressible(p []byte) bool {
	if len(p) > entropyProbeBytes {
		p = p[:entropyProbeBytes]
	}
	var hist [256]uint16
	for _, b := range p {
		hist[b]++
	}
	n := float64(len(p))
	var h float64
	for _, c := range hist {
		if c == 0 {
			continue
		}
		pr := float64(c) / n
		h -= pr * math.Log2(pr)
	}
	return h > entropySkipBits
}
