package stubby

import (
	"bytes"
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"rpcscale/internal/compressor"
	"rpcscale/internal/leakcheck"
	"rpcscale/internal/trace"
)

// testSetup starts a server on a loopback listener, registers the given
// handlers, and returns a connected channel. Everything is torn down with
// t.Cleanup.
func testSetup(t *testing.T, opts Options, handlers map[string]Handler) (*Channel, *Server) {
	t.Helper()
	leakcheck.Check(t)
	srv := NewServer(opts)
	for m, h := range handlers {
		srv.Register(m, h)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	ch, err := Dial(l.Addr().String(), "test-cluster", opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ch.Close()
		srv.Close()
	})
	return ch, srv
}

func echoHandler(ctx context.Context, payload []byte) ([]byte, error) {
	return payload, nil
}

func TestUnaryCall(t *testing.T) {
	ch, _ := testSetup(t, Options{}, map[string]Handler{"svc.Echo/Echo": echoHandler})
	out, err := ch.Call(context.Background(), "svc.Echo/Echo", []byte("hello rpc"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "hello rpc" {
		t.Fatalf("echo = %q", out)
	}
}

func TestConcurrentCalls(t *testing.T) {
	ch, _ := testSetup(t, Options{Workers: 16}, map[string]Handler{"svc/Echo": echoHandler})
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payload := bytes.Repeat([]byte{byte(i)}, 100+i)
			out, err := ch.Call(context.Background(), "svc/Echo", payload)
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(out, payload) {
				errs <- errors.New("payload mismatch")
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestUnknownMethod(t *testing.T) {
	ch, _ := testSetup(t, Options{}, nil)
	_, err := ch.Call(context.Background(), "svc/Nope", []byte("x"))
	if Code(err) != trace.EntityNotFound {
		t.Fatalf("got %v, want EntityNotFound", err)
	}
}

func TestHandlerError(t *testing.T) {
	ch, _ := testSetup(t, Options{}, map[string]Handler{
		"svc/Fail": func(ctx context.Context, p []byte) ([]byte, error) {
			return nil, Errorf(trace.NoPermission, "denied for %q", p)
		},
	})
	_, err := ch.Call(context.Background(), "svc/Fail", []byte("user"))
	st := StatusFromError(err)
	if st.Code != trace.NoPermission {
		t.Fatalf("code = %v", st.Code)
	}
	if st.Message == "" {
		t.Fatal("message lost")
	}
}

func TestDeadlinePropagation(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	ch, _ := testSetup(t, Options{}, map[string]Handler{
		"svc/Slow": func(ctx context.Context, p []byte) ([]byte, error) {
			select {
			case <-ctx.Done(): // server-side ctx must expire
				return nil, ctx.Err()
			case <-release:
				return p, nil
			}
		},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := ch.Call(ctx, "svc/Slow", []byte("x"))
	if Code(err) != trace.DeadlineExceeded {
		t.Fatalf("got %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline not enforced promptly: %v", elapsed)
	}
}

func TestClientCancellation(t *testing.T) {
	started := make(chan struct{}, 1)
	ch, _ := testSetup(t, Options{}, map[string]Handler{
		"svc/Block": func(ctx context.Context, p []byte) ([]byte, error) {
			started <- struct{}{}
			<-ctx.Done() // must be cancelled via FrameCancel
			return nil, ctx.Err()
		},
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := ch.Call(ctx, "svc/Block", []byte("x"))
		done <- err
	}()
	<-started
	cancel()
	err := <-done
	if Code(err) != trace.Cancelled {
		t.Fatalf("got %v, want Cancelled", err)
	}
}

func TestCompressionRoundTrip(t *testing.T) {
	opts := Options{Compression: compressor.Flate, CompressThreshold: 64}
	big := bytes.Repeat([]byte("compressible! "), 1000)
	ch, _ := testSetup(t, opts, map[string]Handler{"svc/Echo": echoHandler})
	out, err := ch.Call(context.Background(), "svc/Echo", big)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, big) {
		t.Fatal("compressed payload corrupted")
	}
}

func TestCompressionStatsRecorded(t *testing.T) {
	cs := &compressor.Stats{}
	opts := Options{Compression: compressor.Flate, CompressThreshold: 64, CompressorStats: cs}
	big := bytes.Repeat([]byte("abcabcabc "), 500)
	ch, _ := testSetup(t, opts, map[string]Handler{"svc/Echo": echoHandler})
	if _, err := ch.Call(context.Background(), "svc/Echo", big); err != nil {
		t.Fatal(err)
	}
	if cs.CompressCalls.Load() == 0 {
		t.Error("compression not metered")
	}
}

func TestTraceSpansEmitted(t *testing.T) {
	col := trace.NewCollector(1, 0)
	ch, _ := testSetup(t, Options{Collector: col, ClusterName: "client-cl"},
		map[string]Handler{"svc.S/M": func(ctx context.Context, p []byte) ([]byte, error) {
			time.Sleep(5 * time.Millisecond) // measurable app time
			return []byte("resp"), nil
		}})
	if _, err := ch.Call(context.Background(), "svc.S/M", []byte("req!")); err != nil {
		t.Fatal(err)
	}
	spans := col.Spans()
	if len(spans) != 1 {
		t.Fatalf("spans = %d", len(spans))
	}
	s := spans[0]
	if s.Method != "svc.S/M" || s.Service != "svc" {
		t.Errorf("identity = %q/%q", s.Method, s.Service)
	}
	if s.ClientCluster != "client-cl" || s.ServerCluster != "test-cluster" {
		t.Errorf("placement = %q -> %q", s.ClientCluster, s.ServerCluster)
	}
	if s.RequestBytes != 4 || s.ResponseBytes != 4 {
		t.Errorf("sizes = %d/%d", s.RequestBytes, s.ResponseBytes)
	}
	if got := s.Breakdown[trace.ServerApp]; got < 4*time.Millisecond {
		t.Errorf("app time = %v, want >= ~5ms", got)
	}
	if s.Breakdown.Total() < s.Breakdown[trace.ServerApp] {
		t.Error("total < app component")
	}
	if s.Err != trace.OK {
		t.Errorf("err = %v", s.Err)
	}
	// Every component must be non-negative.
	for c, v := range s.Breakdown {
		if v < 0 {
			t.Errorf("component %v negative: %v", trace.Component(c), v)
		}
	}
}

func TestNestedTracePropagation(t *testing.T) {
	col := trace.NewCollector(1, 0)
	opts := Options{Collector: col}

	// Backend server.
	backendSrv := NewServer(opts)
	backendSrv.Register("backend/Leaf", echoHandler)
	bl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go backendSrv.Serve(bl)
	defer backendSrv.Close()

	backendCh, err := Dial(bl.Addr().String(), "backend-cl", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer backendCh.Close()

	// Frontend server whose handler fans out to the backend.
	frontSrv := NewServer(opts)
	frontSrv.Register("front/Root", func(ctx context.Context, p []byte) ([]byte, error) {
		// The ctx carries the incoming trace context; the nested call
		// must become a child span.
		return backendCh.Call(ctx, "backend/Leaf", p)
	})
	fl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go frontSrv.Serve(fl)
	defer frontSrv.Close()

	frontCh, err := Dial(fl.Addr().String(), "front-cl", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer frontCh.Close()

	if _, err := frontCh.Call(context.Background(), "front/Root", []byte("nested")); err != nil {
		t.Fatal(err)
	}

	spans := col.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	trees := trace.BuildTrees(spans)
	if len(trees) != 1 {
		t.Fatalf("trees = %d, want 1 (trace not propagated)", len(trees))
	}
	root := trees[0].Root
	if root.Span.Method != "front/Root" {
		t.Errorf("root = %q", root.Span.Method)
	}
	if len(root.Children) != 1 || root.Children[0].Span.Method != "backend/Leaf" {
		t.Errorf("children = %+v", root.Children)
	}
	// Parent app time must cover the nested call (paper §2.1: nested call
	// time counts as parent application time).
	if root.Span.Breakdown[trace.ServerApp] < root.Children[0].Span.Latency() {
		t.Error("parent app time does not include nested call")
	}
}

func TestHedgedCallWinner(t *testing.T) {
	col := trace.NewCollector(1, 0)
	var n int32
	var mu sync.Mutex
	ch, _ := testSetup(t, Options{Collector: col}, map[string]Handler{
		"svc/Sometimes": func(ctx context.Context, p []byte) ([]byte, error) {
			mu.Lock()
			n++
			first := n == 1
			mu.Unlock()
			if first {
				// First leg hangs until cancelled.
				<-ctx.Done()
				return nil, ctx.Err()
			}
			return []byte("fast"), nil
		},
	})
	out, err := ch.CallHedged(context.Background(), "svc/Sometimes", []byte("q"), 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "fast" {
		t.Fatalf("out = %q", out)
	}
	// Wait for the cancelled leg's span to land.
	deadline := time.After(2 * time.Second)
	for {
		spans := col.Spans()
		var hedged, cancelled bool
		for _, s := range spans {
			if s.Hedged {
				hedged = true
			}
			if s.Err == trace.Cancelled || s.Err == trace.DeadlineExceeded {
				cancelled = true
			}
		}
		if hedged && cancelled {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("hedge spans incomplete: %d spans", len(spans))
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func TestHedgedCallPrimaryFastPath(t *testing.T) {
	ch, _ := testSetup(t, Options{}, map[string]Handler{"svc/Echo": echoHandler})
	out, err := ch.CallHedged(context.Background(), "svc/Echo", []byte("quick"), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "quick" {
		t.Fatalf("out = %q", out)
	}
}

func TestHedgedCallBothFail(t *testing.T) {
	ch, _ := testSetup(t, Options{}, map[string]Handler{
		"svc/Fail": func(ctx context.Context, p []byte) ([]byte, error) {
			return nil, Errorf(trace.Internal, "boom")
		},
	})
	_, err := ch.CallHedged(context.Background(), "svc/Fail", []byte("q"), 5*time.Millisecond)
	if Code(err) != trace.Internal {
		t.Fatalf("got %v, want Internal", err)
	}
}

func TestPing(t *testing.T) {
	ch, _ := testSetup(t, Options{}, nil)
	rtt, err := ch.Ping(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rtt <= 0 || rtt > time.Second {
		t.Fatalf("rtt = %v", rtt)
	}
}

func TestServerInterceptor(t *testing.T) {
	var order []string
	var mu sync.Mutex
	opts := Options{}
	srv := NewServer(opts)
	srv.Intercept(func(ctx context.Context, method string, p []byte, next Handler) ([]byte, error) {
		mu.Lock()
		order = append(order, "outer:"+method)
		mu.Unlock()
		return next(ctx, p)
	})
	srv.Intercept(func(ctx context.Context, method string, p []byte, next Handler) ([]byte, error) {
		mu.Lock()
		order = append(order, "inner")
		mu.Unlock()
		return next(ctx, p)
	})
	srv.Register("svc/M", echoHandler)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()
	ch, err := Dial(l.Addr().String(), "c", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer ch.Close()
	if _, err := ch.Call(context.Background(), "svc/M", []byte("x")); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != "outer:svc/M" || order[1] != "inner" {
		t.Fatalf("interceptor order = %v", order)
	}
}

func TestChannelCloseFailsPending(t *testing.T) {
	ch, _ := testSetup(t, Options{}, map[string]Handler{
		"svc/Hang": func(ctx context.Context, p []byte) ([]byte, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		},
	})
	done := make(chan error, 1)
	go func() {
		_, err := ch.Call(context.Background(), "svc/Hang", []byte("x"))
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	ch.Close()
	select {
	case err := <-done:
		if Code(err) != trace.Unavailable {
			t.Fatalf("got %v, want Unavailable", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pending call not failed by Close")
	}
}

func TestCallAfterClose(t *testing.T) {
	ch, _ := testSetup(t, Options{}, map[string]Handler{"svc/Echo": echoHandler})
	ch.Close()
	_, err := ch.Call(context.Background(), "svc/Echo", []byte("x"))
	if Code(err) != trace.Unavailable {
		t.Fatalf("got %v, want Unavailable", err)
	}
}

func TestServiceOf(t *testing.T) {
	cases := map[string]string{
		"networkdisk.Disk/Write": "networkdisk",
		"svc/M":                  "svc",
		"bare":                   "bare",
	}
	for in, want := range cases {
		if got := ServiceOf(in); got != want {
			t.Errorf("ServiceOf(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	srv := NewServer(Options{})
	defer srv.Close()
	srv.Register("svc/M", echoHandler)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	srv.Register("svc/M", echoHandler)
}

func TestStatusHelpers(t *testing.T) {
	if Code(nil) != trace.OK {
		t.Error("nil error should be OK")
	}
	err := Errorf(trace.NoResource, "n=%d", 5)
	if Code(err) != trace.NoResource {
		t.Error("code lost")
	}
	if StatusFromError(errors.New("plain")).Code != trace.Internal {
		t.Error("plain errors should map to Internal")
	}
	var s *Status = StatusFromError(err)
	if s.Error() == "" {
		t.Error("Error() empty")
	}
}

func TestLargePayload(t *testing.T) {
	ch, _ := testSetup(t, Options{}, map[string]Handler{"svc/Echo": echoHandler})
	big := make([]byte, 2<<20) // 2 MB, beyond the paper's P99 response
	for i := range big {
		big[i] = byte(i * 7)
	}
	out, err := ch.Call(context.Background(), "svc/Echo", big)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, big) {
		t.Fatal("large payload corrupted")
	}
}

func TestWrongSecretFailsCleanly(t *testing.T) {
	srv := NewServer(Options{Secret: []byte("server-secret")})
	srv.Register("svc/Echo", echoHandler)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()
	ch, err := Dial(l.Addr().String(), "c", Options{Secret: []byte("client-secret")})
	if err != nil {
		t.Fatal(err)
	}
	defer ch.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_, err = ch.Call(ctx, "svc/Echo", []byte("x"))
	if err == nil {
		t.Fatal("mismatched secrets should fail")
	}
}
