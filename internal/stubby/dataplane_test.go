package stubby

// Data-plane floors for the multi-core path (DESIGN.md §16): allocation
// budgets for the inline unary path and the pipelined bulk path, and the
// codec-worker shutdown drain. The alloc tests are race-gated like
// TestCallAllocBudget — instrumented builds change allocation counts.

import (
	"bytes"
	"context"
	"testing"

	"rpcscale/internal/testutil"
)

// TestUnaryInlineAllocFloor pins the inline (non-pipelined) unary path:
// a 128 B echo stays at or under 15 allocs per call end to end, the floor
// the ISSUE-10 acceptance criteria state. Small frames must never detour
// through the codec pool (codecInlineMax gates them), so this holds with
// workers configured too.
func TestUnaryInlineAllocFloor(t *testing.T) {
	if testutil.Instrumented {
		t.Skip("allocation counts differ under instrumented builds")
	}
	// The per-benchmark floor is 15 allocs/op; AllocsPerRun additionally
	// observes server-side worker wakeups that the bench loop amortizes,
	// so the test budget carries a small fixed headroom over the floor.
	const budget = 22.0
	ch, _ := testSetup(t, Options{Workers: 2, CodecWorkers: 2},
		map[string]Handler{"svc/Echo": echoHandler})
	payload := bytes.Repeat([]byte{0x42}, 128)
	ctx := context.Background()
	for i := 0; i < 50; i++ {
		if _, err := ch.Call(ctx, "svc/Echo", payload); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(300, func() {
		out, err := ch.Call(ctx, "svc/Echo", payload)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != len(payload) {
			t.Fatalf("echo length %d, want %d", len(out), len(payload))
		}
	})
	if allocs > budget {
		t.Errorf("inline unary 128B: %.1f allocs/op, budget %.0f", allocs, budget)
	}
}

// TestBulkPipelinedAllocFloor pins the pipelined bulk download path with
// the codec pool forced on: a 64 KiB response rides the bulk lane, its
// chunks are sealed/opened by workers, and the response buffer is recycled
// with FreeResponse. The documented floor is 30 allocs per call: the
// inline path's 15 plus the pipelined path's per-chunk job handoffs
// (codec jobs and their done channels recycle through the pool's free
// list, but pump-side recvItem plumbing and occasional free-list misses
// cost a bounded handful more).
func TestBulkPipelinedAllocFloor(t *testing.T) {
	if testutil.Instrumented {
		t.Skip("allocation counts differ under instrumented builds")
	}
	const budget = 30.0
	blob := make([]byte, 64<<10)
	ch, _ := testSetup(t, Options{Workers: 2, CodecWorkers: 2},
		map[string]Handler{"svc/Get": func(ctx context.Context, p []byte) ([]byte, error) {
			return blob, nil
		}})
	ctx := context.Background()
	req := make([]byte, 16)
	for i := 0; i < 50; i++ {
		out, err := ch.Call(ctx, "svc/Get", req)
		if err != nil {
			t.Fatal(err)
		}
		FreeResponse(out)
	}
	allocs := testing.AllocsPerRun(300, func() {
		out, err := ch.Call(ctx, "svc/Get", req)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != len(blob) {
			t.Fatalf("got %d bytes, want %d", len(out), len(blob))
		}
		FreeResponse(out)
	})
	if allocs > budget {
		t.Errorf("pipelined bulk 64KiB: %.1f allocs/op, budget %.0f", allocs, budget)
	}
}

// TestCodecWorkerShutdownDrains proves Channel.Close drains every worker
// the pipelined data plane spawned — codec pools on both ends, stripe
// connections, and the receive pumps — with no goroutine left behind.
// leakcheck (registered by testSetup) fails the test if anything the
// forced CodecWorkers/ConnStripes configuration started outlives Close.
func TestCodecWorkerShutdownDrains(t *testing.T) {
	blob := make([]byte, 128<<10)
	ch, srv := testSetup(t, Options{Workers: 2, CodecWorkers: 2, ConnStripes: 2},
		map[string]Handler{
			"svc/Echo": echoHandler,
			"svc/Get": func(ctx context.Context, p []byte) ([]byte, error) {
				return blob, nil
			},
		})
	ctx := context.Background()
	// Engage every lane: inline unary, pipelined bulk across stripes.
	for i := 0; i < 8; i++ {
		if _, err := ch.Call(ctx, "svc/Echo", []byte("ping")); err != nil {
			t.Fatal(err)
		}
		out, err := ch.Call(ctx, "svc/Get", nil)
		if err != nil {
			t.Fatal(err)
		}
		FreeResponse(out)
	}
	// Close explicitly (the cleanup's Close becomes a no-op) and verify
	// post-close calls fail fast with a coded status instead of hanging
	// on a dead worker pool.
	if err := ch.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := ch.Call(ctx, "svc/Echo", []byte("late")); Code(err) != ErrUnavailable.Code {
		t.Fatalf("post-close call: err = %v, want %v", err, ErrUnavailable)
	}
	srv.Close()
	// leakcheck's cleanup now snapshots goroutines: codec workers on both
	// ends, stripe loops, and recv pumps must all have exited.
}
