package stubby

import (
	"context"
	"time"

	"rpcscale/internal/trace"
)

// ClientInterceptor wraps outgoing calls; interceptors compose
// outermost-first. The CallFunc performs the actual (or next) call.
type ClientInterceptor func(ctx context.Context, method string, payload []byte, next CallFunc) ([]byte, error)

// CallFunc is the signature of a unary call.
type CallFunc func(ctx context.Context, method string, payload []byte) ([]byte, error)

// Intercepted returns a CallFunc that applies the interceptors around the
// channel's Call, outermost first.
func (c *Channel) Intercepted(interceptors ...ClientInterceptor) CallFunc {
	invoke := c.Call
	for i := len(interceptors) - 1; i >= 0; i-- {
		mid, next := interceptors[i], invoke
		invoke = func(ctx context.Context, method string, payload []byte) ([]byte, error) {
			return mid(ctx, method, payload, next)
		}
	}
	return invoke
}

// RetryPolicy configures automatic retries of transient failures.
// Production Stubby retries Unavailable-class errors with exponential
// backoff; errors like NoPermission or InvalidArgument are permanent and
// never retried.
type RetryPolicy struct {
	// MaxAttempts bounds total tries (including the first). <=1 disables.
	MaxAttempts int
	// BaseBackoff is the first retry delay; it doubles per attempt.
	BaseBackoff time.Duration
	// MaxBackoff caps the delay.
	MaxBackoff time.Duration
	// RetryableCodes lists the codes worth retrying. Nil selects the
	// default transient set (Unavailable, NoResource, DeadlineExceeded
	// excluded — the deadline is gone).
	RetryableCodes []trace.ErrorCode
}

// DefaultRetryPolicy retries transient failures up to 3 attempts.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 3,
		BaseBackoff: 2 * time.Millisecond,
		MaxBackoff:  100 * time.Millisecond,
	}
}

func (p RetryPolicy) retryable(code trace.ErrorCode) bool {
	if p.RetryableCodes == nil {
		return code == trace.Unavailable || code == trace.NoResource
	}
	for _, c := range p.RetryableCodes {
		if c == code {
			return true
		}
	}
	return false
}

// WithRetry returns a client interceptor implementing the policy.
func WithRetry(policy RetryPolicy) ClientInterceptor {
	return func(ctx context.Context, method string, payload []byte, next CallFunc) ([]byte, error) {
		var lastErr error
		backoff := policy.BaseBackoff
		attempts := policy.MaxAttempts
		if attempts < 1 {
			attempts = 1
		}
		for attempt := 0; attempt < attempts; attempt++ {
			if attempt > 0 {
				select {
				case <-time.After(backoff):
				case <-ctx.Done():
					return nil, codeToError(cancelCode(ctx))
				}
				backoff *= 2
				if policy.MaxBackoff > 0 && backoff > policy.MaxBackoff {
					backoff = policy.MaxBackoff
				}
			}
			out, err := next(ctx, method, payload)
			if err == nil {
				return out, nil
			}
			lastErr = err
			if !policy.retryable(Code(err)) {
				return nil, err
			}
		}
		return nil, lastErr
	}
}
